// Package fuzz implements the greybox fuzzing exploration mode the paper
// names as future work (§8: "we plan to extend the applicability and
// usefulness of ER-π for tasks such as resource profiling and fuzzing").
//
// The fuzzer is a coverage-guided mutator over interleavings, in the style
// of greybox fuzzers for distributed systems (Mallory/Meng et al., cited
// by the paper): it keeps a corpus of interesting interleavings, derives
// new candidates by order mutations (adjacent swaps, block moves, segment
// reversals), and considers a candidate interesting when its execution
// produces an outcome signature never seen before. Unlike the Rand
// baseline — which samples the n! space uniformly and mostly revisits
// behaviourally equivalent orders — the fuzzer spends its budget on orders
// that change observable behaviour.
package fuzz

import (
	"math/rand"

	"github.com/er-pi/erpi/internal/interleave"
)

// Explorer is a coverage-guided interleaving generator. It implements
// interleave.Explorer; feedback arrives through Report, which the caller
// invokes with a behaviour signature after executing each interleaving.
type Explorer struct {
	space *interleave.Space
	rng   *rand.Rand

	// corpus holds the unit permutations that produced novel behaviour.
	corpus [][]int
	// seen dedups emitted interleavings; coverage dedups signatures.
	seen     map[string]bool
	coverage map[string]bool

	// pendingPerm is the permutation whose outcome Report classifies.
	pendingPerm []int
	explored    int
	maxRetries  int
}

var _ interleave.Explorer = (*Explorer)(nil)

// DefaultRetries bounds consecutive duplicate mutations before giving up.
const DefaultRetries = 100000

// New returns a fuzzing explorer seeded with the recording order.
func New(space *interleave.Space, seed int64) *Explorer {
	identity := make([]int, space.NumUnits())
	for i := range identity {
		identity[i] = i
	}
	return &Explorer{
		space:      space,
		rng:        rand.New(rand.NewSource(seed)),
		corpus:     [][]int{identity},
		seen:       make(map[string]bool),
		coverage:   make(map[string]bool),
		maxRetries: DefaultRetries,
	}
}

// Mode implements interleave.Explorer.
func (f *Explorer) Mode() string { return "fuzz" }

// Explored implements interleave.Explorer.
func (f *Explorer) Explored() int { return f.explored }

// CorpusSize returns the number of behaviour-novel interleavings kept.
func (f *Explorer) CorpusSize() int { return len(f.corpus) }

// Coverage returns the number of distinct behaviour signatures observed.
func (f *Explorer) Coverage() int { return len(f.coverage) }

// SetMaxRetries tunes the consecutive-duplicate bound after which Next
// declares the reachable space exhausted.
func (f *Explorer) SetMaxRetries(n int) {
	if n > 0 {
		f.maxRetries = n
	}
}

// Next implements interleave.Explorer: pick a corpus entry, mutate it
// until an unseen permutation appears, and emit it. The mutation depth
// escalates with consecutive duplicates so the fuzzer escapes saturated
// neighbourhoods of the corpus.
func (f *Explorer) Next() (interleave.Interleaving, bool) {
	for attempt := 0; attempt < f.maxRetries; attempt++ {
		parent := f.corpus[f.rng.Intn(len(f.corpus))]
		depth := 1 + f.rng.Intn(2) + attempt/50
		candidate := f.mutate(parent, depth)
		il := f.space.Flatten(candidate)
		key := il.Key()
		if f.seen[key] {
			continue
		}
		f.seen[key] = true
		f.pendingPerm = candidate
		f.explored++
		return il, true
	}
	return nil, false
}

// Report feeds back the behaviour signature of the most recently emitted
// interleaving. A novel signature admits the permutation into the corpus.
// Any stable digest works as a signature: outcome fingerprints, failed-op
// sets, observation values, or a hash of all three.
func (f *Explorer) Report(signature string) {
	if f.pendingPerm == nil {
		return
	}
	if !f.coverage[signature] {
		f.coverage[signature] = true
		f.corpus = append(f.corpus, f.pendingPerm)
	}
	f.pendingPerm = nil
}

// mutate derives a child permutation by stacking `depth` order mutations.
func (f *Explorer) mutate(parent []int, depth int) []int {
	child := make([]int, len(parent))
	copy(child, parent)
	for d := 0; d < depth; d++ {
		f.mutateOnce(child)
	}
	return child
}

func (f *Explorer) mutateOnce(child []int) {
	n := len(child)
	if n < 2 {
		return
	}
	switch f.rng.Intn(3) {
	case 0: // adjacent swap: the minimal reordering
		i := f.rng.Intn(n - 1)
		child[i], child[i+1] = child[i+1], child[i]
	case 1: // block move: lift one unit to another position (in place)
		from := f.rng.Intn(n)
		to := f.rng.Intn(n)
		u := child[from]
		if from < to {
			copy(child[from:to], child[from+1:to+1])
		} else {
			copy(child[to+1:from+1], child[to:from])
		}
		child[to] = u
	default: // segment reversal
		i := f.rng.Intn(n)
		j := f.rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		for a, b := i, j; a < b; a, b = a+1, b-1 {
			child[a], child[b] = child[b], child[a]
		}
	}
}
