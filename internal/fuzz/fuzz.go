// Package fuzz implements the greybox fuzzing exploration mode the paper
// names as future work (§8: "we plan to extend the applicability and
// usefulness of ER-π for tasks such as resource profiling and fuzzing").
//
// The fuzzer is a coverage-guided mutator over interleavings, in the style
// of greybox fuzzers for distributed systems (Mallory/Meng et al., cited
// by the paper): it keeps a corpus of interesting interleavings, derives
// new candidates by order mutations (adjacent swaps, block moves, segment
// reversals), and considers a candidate interesting when its execution
// produces an outcome signature never seen before. Unlike the Rand
// baseline — which samples the n! space uniformly and mostly revisits
// behaviourally equivalent orders — the fuzzer spends its budget on orders
// that change observable behaviour.
//
// Exploration is organized in generations so the feedback loop
// parallelizes (DESIGN.md §4.14): a whole generation of mutated children
// is synthesized from the current corpus up front — seeded and
// order-deterministic — then executed (by any number of workers, in any
// order), and the corpus evolves exactly once when every child of the
// generation has been classified. Classification is keyed by interleaving
// key, not arrival order, so the corpus trajectory is a pure function of
// (seed, generation size, classification outcomes): identical at Workers
// 1 and 8, across the sequential engine, the pool, and the distributed
// coordinator.
package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"sort"

	"github.com/er-pi/erpi/internal/interleave"
)

// Generation sizing defaults. A fixed size can be configured via
// SetGenerationSize; size 0 selects adaptive sizing, which starts at
// DefaultGenerationSize and reacts to the corpus-novelty rate of each
// completed generation: a cold corpus (almost nothing novel) doubles the
// generation to amortize the evolve barrier, a hot corpus (lots of novel
// behaviour) halves it so children mutate from the freshest corpus.
const (
	DefaultGenerationSize = 32
	minGenerationSize     = 8
	maxGenerationSize     = 256
	// growNoveltyBelow / shrinkNoveltyAbove bound the adaptive band.
	growNoveltyBelow   = 0.05
	shrinkNoveltyAbove = 0.25
)

// DefaultRetries bounds consecutive duplicate mutations before a
// generation is declared as deep as the reachable space allows; an empty
// generation after that bound means the space is exhausted.
const DefaultRetries = 100000

// child is one synthesized interleaving of the current generation,
// tracked from synthesis through classification to corpus evolution.
type child struct {
	perm []int
	il   interleave.Interleaving
	key  string
	sig  string
	done bool // classified: executed (sig set) or dropped
	drop bool // no corpus evidence: dedup/quarantine/fault-armed
}

// Explorer is a coverage-guided interleaving generator. It implements
// interleave.Explorer; feedback arrives keyed by interleaving key through
// ReportOutcome/ReportDropped (or positionally through the legacy Report)
// after executing each emitted interleaving.
type Explorer struct {
	space *interleave.Space
	rng   *rand.Rand

	// corpus holds the unit permutations that produced novel behaviour.
	corpus [][]int
	// seen dedups synthesized interleavings; coverage dedups signatures.
	seen     map[string]bool
	coverage map[string]bool

	// buf is the synthesized-but-not-yet-emitted tail of the current
	// generation; emitted holds the generation's emitted children in emit
	// order, byKey indexes them for classification.
	buf     []*child
	emitted []*child
	byKey   map[string]*child
	pending int // emitted children not yet classified
	fifo    int // scan cursor for the legacy positional Report

	genSize     int // fixed generation size; 0 = adaptive
	curSize     int // current generation size target
	generations int // completed (evolved) generations
	novelty     float64
	explored    int
	maxRetries  int
	exhausted   bool

	// traj folds every corpus admission (generation number, interleaving
	// key, signature) into a running digest — the cross-engine trajectory
	// parity pin.
	traj hash.Hash
}

var _ interleave.Explorer = (*Explorer)(nil)
var _ interleave.PivotExplorer = (*Explorer)(nil)

// New returns a fuzzing explorer seeded with the recording order, using
// adaptive generation sizing.
func New(space *interleave.Space, seed int64) *Explorer {
	identity := make([]int, space.NumUnits())
	for i := range identity {
		identity[i] = i
	}
	return &Explorer{
		space:      space,
		rng:        rand.New(rand.NewSource(seed)),
		corpus:     [][]int{identity},
		seen:       make(map[string]bool),
		coverage:   make(map[string]bool),
		byKey:      make(map[string]*child),
		curSize:    DefaultGenerationSize,
		maxRetries: DefaultRetries,
		traj:       sha256.New(),
	}
}

// Mode implements interleave.Explorer.
func (f *Explorer) Mode() string { return "fuzz" }

// Explored implements interleave.Explorer.
func (f *Explorer) Explored() int { return f.explored }

// CorpusSize returns the number of behaviour-novel interleavings kept.
func (f *Explorer) CorpusSize() int { return len(f.corpus) }

// Coverage returns the number of distinct behaviour signatures observed.
func (f *Explorer) Coverage() int { return len(f.coverage) }

// Generations returns how many generations have completed (evolved).
func (f *Explorer) Generations() int { return f.generations }

// NoveltyRate returns the fraction of the last completed generation's
// executed children whose signature was novel (0 before any generation
// completes).
func (f *Explorer) NoveltyRate() float64 { return f.novelty }

// Exhausted reports that Next declared the reachable mutation space
// exhausted: the retry bound produced no unseen child for a whole
// generation. Classifications for already-emitted children are still
// accepted after exhaustion — nothing pending is silently dropped.
func (f *Explorer) Exhausted() bool { return f.exhausted }

// Pending returns how many emitted children of the current generation are
// not yet classified.
func (f *Explorer) Pending() int { return f.pending }

// GenerationEnd reports that the current generation's synthesis buffer is
// drained: every synthesized child has been emitted, and the corpus must
// evolve (once all emitted children are classified) before Next can
// synthesize the next generation. Engines use it as their quiesce
// barrier.
func (f *Explorer) GenerationEnd() bool {
	return len(f.buf) == 0 && len(f.emitted) > 0
}

// SetMaxRetries tunes the consecutive-duplicate bound after which a
// generation stops growing (and, when it ends up empty, Next declares the
// reachable space exhausted).
func (f *Explorer) SetMaxRetries(n int) {
	if n > 0 {
		f.maxRetries = n
	}
}

// SetGenerationSize fixes the generation size to n children; n <= 0
// restores the default adaptive sizing.
func (f *Explorer) SetGenerationSize(n int) {
	switch {
	case n > 0:
		f.genSize = n
		f.curSize = n
	default:
		f.genSize = 0
		f.curSize = DefaultGenerationSize
	}
}

// Next implements interleave.Explorer: emit the next child of the current
// generation, synthesizing a fresh generation from the corpus when the
// buffer is empty. Synthesis only happens at a generation boundary, after
// the corpus evolved over the previous generation's classifications —
// callers that drive Next concurrently must therefore hold it back until
// the generation is classified (the engines' evolve barrier); emitted
// children may be classified in any order. A driver that crosses the
// boundary with classifications still pending extends the open generation
// instead of evolving (deterministically, from the unevolved corpus) —
// nothing pending is ever dropped.
func (f *Explorer) Next() (interleave.Interleaving, bool) {
	if f.exhausted {
		return nil, false
	}
	if len(f.buf) == 0 {
		f.Evolve()
		f.synthesize()
		if len(f.buf) == 0 {
			f.exhausted = true
			return nil, false
		}
	}
	c := f.buf[0]
	f.buf = f.buf[1:]
	f.emitted = append(f.emitted, c)
	f.byKey[c.key] = c
	f.pending++
	f.explored++
	return c.il, true
}

// NextPivot implements interleave.PivotExplorer: the event depth where
// the next buffered child diverges from the one just emitted. The
// generation is sorted by event sequence, so consecutive children share
// maximal prefixes — the depth the prefix cache should snapshot at.
func (f *Explorer) NextPivot() int {
	if len(f.buf) == 0 || len(f.emitted) == 0 {
		return -1
	}
	prev, next := f.emitted[len(f.emitted)-1].il, f.buf[0].il
	n := 0
	for n < len(prev) && n < len(next) && prev[n] == next[n] {
		n++
	}
	return n
}

// ReportOutcome classifies an emitted child by its interleaving key with
// the behaviour signature its execution produced. Classifications are
// idempotent per key and may arrive in any order; unknown keys are
// ignored. They are accepted even after Next returned ok=false — the
// exhaustion path never silently drops a pending classification.
func (f *Explorer) ReportOutcome(key, signature string) {
	c := f.byKey[key]
	if c == nil || c.done {
		return
	}
	c.done = true
	c.sig = signature
	f.pending--
}

// ReportDropped classifies an emitted child as producing no corpus
// evidence: its execution was skipped (dedup, subsumption), quarantined,
// or ran fault-armed (a fault-carrying replay's signature reflects the
// fault schedule, not the order mutation, so it must not steer the
// corpus — the fuzz analog of the prefix cache's clean-genesis bypass).
func (f *Explorer) ReportDropped(key string) {
	c := f.byKey[key]
	if c == nil || c.done {
		return
	}
	c.done = true
	c.drop = true
	f.pending--
}

// Report feeds back the behaviour signature of the oldest unclassified
// emitted child — the legacy positional protocol for strictly sequential
// drivers (Next, execute, Report, repeat). Engines use the key-addressed
// ReportOutcome/ReportDropped instead.
func (f *Explorer) Report(signature string) {
	for f.fifo < len(f.emitted) && f.emitted[f.fifo].done {
		f.fifo++
	}
	if f.fifo >= len(f.emitted) {
		return
	}
	c := f.emitted[f.fifo]
	c.done = true
	c.sig = signature
	f.pending--
}

// Evolve completes the current generation: every classified-novel child
// joins the corpus (in emit order, so evolution is deterministic), the
// novelty rate adapts the next generation's size, and the trajectory
// digest folds in the admissions. A no-op unless the generation is fully
// emitted AND fully classified — an unclassified child is never silently
// dropped (the bug the pre-generation fuzzer had at space exhaustion);
// its classification can arrive arbitrarily late, even after Next
// declared exhaustion, and the evidence still reaches the corpus at the
// next Evolve. Exported so engines can run it at their quiesce barrier,
// under a telemetry span; Next calls it implicitly at each boundary.
func (f *Explorer) Evolve() {
	if len(f.buf) > 0 || len(f.emitted) == 0 || f.pending > 0 {
		return
	}
	executed, novel := 0, 0
	fmt.Fprintf(f.traj, "g%d:", f.generations+1)
	for _, c := range f.emitted {
		if c.drop {
			continue
		}
		executed++
		if !f.coverage[c.sig] {
			f.coverage[c.sig] = true
			f.corpus = append(f.corpus, c.perm)
			novel++
			fmt.Fprintf(f.traj, "%s=%s;", c.key, c.sig)
		}
	}
	f.novelty = 0
	if executed > 0 {
		f.novelty = float64(novel) / float64(executed)
	}
	if f.genSize == 0 && executed > 0 {
		switch {
		case f.novelty < growNoveltyBelow && f.curSize < maxGenerationSize:
			f.curSize *= 2
		case f.novelty > shrinkNoveltyAbove && f.curSize > minGenerationSize:
			f.curSize /= 2
		}
	}
	f.generations++
	f.emitted = f.emitted[:0]
	f.byKey = make(map[string]*child)
	f.fifo = 0
	f.pending = 0
}

// TrajectoryDigest returns the hex digest of every corpus admission so
// far (generation number, interleaving key, signature, in admission
// order). Two runs with equal digests grew byte-identical corpora through
// identical generations — the pin the Workers 1 vs 8 parity suite and
// BENCH_fuzz.json compare.
func (f *Explorer) TrajectoryDigest() string {
	return hex.EncodeToString(f.traj.Sum(nil))
}

// synthesize fills the next generation's buffer with unseen mutated
// children of the current corpus. The mutation depth escalates with
// consecutive duplicates so the fuzzer escapes saturated neighbourhoods;
// the finished generation is sorted by event sequence so consecutive
// emissions share maximal prefixes (prefix-cache locality — children of
// one corpus parent mostly differ near their mutation point).
func (f *Explorer) synthesize() {
	target := f.curSize
	dup := 0
	for len(f.buf) < target && dup < f.maxRetries {
		parent := f.corpus[f.rng.Intn(len(f.corpus))]
		depth := 1 + f.rng.Intn(2) + dup/50
		candidate := f.mutate(parent, depth)
		il := f.space.Flatten(candidate)
		key := il.Key()
		if f.seen[key] {
			dup++
			continue
		}
		dup = 0
		f.seen[key] = true
		f.buf = append(f.buf, &child{perm: candidate, il: il, key: key})
	}
	sort.Slice(f.buf, func(i, j int) bool {
		a, b := f.buf[i].il, f.buf[j].il
		for n := 0; n < len(a) && n < len(b); n++ {
			if a[n] != b[n] {
				return a[n] < b[n]
			}
		}
		return len(a) < len(b)
	})
}

// mutate derives a child permutation by stacking `depth` order mutations.
func (f *Explorer) mutate(parent []int, depth int) []int {
	child := make([]int, len(parent))
	copy(child, parent)
	for d := 0; d < depth; d++ {
		f.mutateOnce(child)
	}
	return child
}

func (f *Explorer) mutateOnce(child []int) {
	n := len(child)
	if n < 2 {
		return
	}
	switch f.rng.Intn(3) {
	case 0: // adjacent swap: the minimal reordering
		i := f.rng.Intn(n - 1)
		child[i], child[i+1] = child[i+1], child[i]
	case 1: // block move: lift one unit to another position (in place)
		from := f.rng.Intn(n)
		to := f.rng.Intn(n)
		u := child[from]
		if from < to {
			copy(child[from:to], child[from+1:to+1])
		} else {
			copy(child[to+1:from+1], child[to:from])
		}
		child[to] = u
	default: // segment reversal
		i := f.rng.Intn(n)
		j := f.rng.Intn(n)
		if i > j {
			i, j = j, i
		}
		for a, b := i, j; a < b; a, b = a+1, b-1 {
			child[a], child[b] = child[b], child[a]
		}
	}
}
