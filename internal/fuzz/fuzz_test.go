package fuzz

import (
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

func space(t *testing.T, n int) *interleave.Space {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		r := event.ReplicaID("A")
		if i%2 == 1 {
			r = "B"
		}
		evs[i] = event.Event{Kind: event.Update, Replica: r}
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	return interleave.NewSpace(log)
}

func TestFuzzerEmitsDistinctPermutations(t *testing.T) {
	f := New(space(t, 5), 1)
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		il, ok := f.Next()
		if !ok {
			t.Fatalf("exhausted after %d", i)
		}
		if len(il) != 5 {
			t.Fatalf("incomplete interleaving %v", il)
		}
		if seen[il.Key()] {
			t.Fatalf("duplicate %v", il)
		}
		seen[il.Key()] = true
		f.Report("same-behaviour") // no novelty: corpus stays minimal
	}
	if f.Explored() != 60 {
		t.Fatalf("Explored = %d", f.Explored())
	}
	if f.CorpusSize() != 2 { // identity + the single novel signature holder
		t.Fatalf("CorpusSize = %d, want 2", f.CorpusSize())
	}
	if f.Coverage() != 1 {
		t.Fatalf("Coverage = %d, want 1", f.Coverage())
	}
}

func TestFuzzerGrowsCorpusOnNovelty(t *testing.T) {
	f := New(space(t, 5), 2)
	for i := 0; i < 20; i++ {
		il, ok := f.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		f.Report(il.Key()) // every behaviour novel: corpus grows each step
	}
	if f.CorpusSize() != 21 { // identity + 20 novel entries
		t.Fatalf("CorpusSize = %d, want 21", f.CorpusSize())
	}
	if f.Coverage() != 20 {
		t.Fatalf("Coverage = %d, want 20", f.Coverage())
	}
}

func TestFuzzerDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []string {
		f := New(space(t, 6), seed)
		var out []string
		for i := 0; i < 15; i++ {
			il, ok := f.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			out = append(out, il.Key())
			f.Report("x")
		}
		return out
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same sequence")
		}
	}
}

func TestFuzzerExhaustsTinySpace(t *testing.T) {
	f := New(space(t, 2), 3)
	f.SetMaxRetries(500)
	count := 0
	for {
		_, ok := f.Next()
		if !ok {
			break
		}
		count++
		f.Report("x")
	}
	// 2 units → 2 permutations, one of which (identity) is never emitted
	// by Next (only mutations are); at most 2 distinct keys exist.
	if count == 0 || count > 2 {
		t.Fatalf("emitted %d interleavings of a 2-permutation space", count)
	}
}

func TestReportWithoutNextIsNoop(t *testing.T) {
	f := New(space(t, 3), 4)
	f.Report("ghost")
	if f.Coverage() != 1 || f.CorpusSize() != 1 {
		// The first Report records coverage but must not admit a nil perm.
		for _, p := range f.corpus {
			if p == nil {
				t.Fatal("nil permutation admitted to corpus")
			}
		}
	}
}
