package fuzz

import (
	"fmt"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

func space(t *testing.T, n int) *interleave.Space {
	t.Helper()
	evs := make([]event.Event, n)
	for i := range evs {
		r := event.ReplicaID("A")
		if i%2 == 1 {
			r = "B"
		}
		evs[i] = event.Event{Kind: event.Update, Replica: r}
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	return interleave.NewSpace(log)
}

func TestFuzzerEmitsDistinctPermutations(t *testing.T) {
	f := New(space(t, 5), 1)
	seen := map[string]bool{}
	for i := 0; i < 60; i++ {
		il, ok := f.Next()
		if !ok {
			t.Fatalf("exhausted after %d", i)
		}
		if len(il) != 5 {
			t.Fatalf("incomplete interleaving %v", il)
		}
		if seen[il.Key()] {
			t.Fatalf("duplicate %v", il)
		}
		seen[il.Key()] = true
		f.ReportOutcome(il.Key(), "same-behaviour") // no novelty
	}
	if f.Explored() != 60 {
		t.Fatalf("Explored = %d", f.Explored())
	}
	f.Evolve()               // close the trailing generation
	if f.CorpusSize() != 2 { // identity + the single novel signature holder
		t.Fatalf("CorpusSize = %d, want 2", f.CorpusSize())
	}
	if f.Coverage() != 1 {
		t.Fatalf("Coverage = %d, want 1", f.Coverage())
	}
}

func TestFuzzerGrowsCorpusAtGenerationBoundary(t *testing.T) {
	f := New(space(t, 5), 2)
	f.SetGenerationSize(20)
	for i := 0; i < 20; i++ {
		il, ok := f.Next()
		if !ok {
			t.Fatal("exhausted early")
		}
		f.ReportOutcome(il.Key(), il.Key()) // every behaviour novel
		if i < 19 && f.CorpusSize() != 1 {
			t.Fatalf("corpus evolved mid-generation at child %d", i)
		}
	}
	if !f.GenerationEnd() {
		t.Fatal("generation should be fully emitted")
	}
	f.Evolve()
	if f.CorpusSize() != 21 { // identity + 20 novel entries
		t.Fatalf("CorpusSize = %d, want 21", f.CorpusSize())
	}
	if f.Coverage() != 20 {
		t.Fatalf("Coverage = %d, want 20", f.Coverage())
	}
	if f.Generations() != 1 {
		t.Fatalf("Generations = %d, want 1", f.Generations())
	}
	if f.NoveltyRate() != 1 {
		t.Fatalf("NoveltyRate = %v, want 1", f.NoveltyRate())
	}
}

func TestFuzzerDeterministicBySeed(t *testing.T) {
	run := func(seed int64) ([]string, string) {
		f := New(space(t, 6), seed)
		var out []string
		for i := 0; i < 40; i++ {
			il, ok := f.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			out = append(out, il.Key())
			f.ReportOutcome(il.Key(), fmt.Sprintf("sig-%d", i%3))
		}
		f.Evolve()
		return out, f.TrajectoryDigest()
	}
	a, da := run(9)
	b, db := run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same sequence")
		}
	}
	if da != db {
		t.Fatalf("same seed must give same trajectory digest: %s vs %s", da, db)
	}
	c, _ := run(10)
	diff := false
	for i := 0; i < len(a) && i < len(c); i++ {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should give different emission sequences")
	}
}

// TestClassificationOrderInvariance is the unit-level version of the
// Workers 1 vs 8 parity pin: classifying a generation's children in
// reverse arrival order must grow the exact same corpus (same trajectory
// digest) as classifying them in emit order.
func TestClassificationOrderInvariance(t *testing.T) {
	sig := func(il interleave.Interleaving) string {
		// A signature that depends only on the interleaving, with collisions
		// (first two events) so novelty filtering actually engages.
		return fmt.Sprintf("s%d-%d", il[0], il[1])
	}
	run := func(reverse bool) string {
		f := New(space(t, 6), 7)
		f.SetGenerationSize(16)
		for gen := 0; gen < 4; gen++ {
			var batch []interleave.Interleaving
			for len(batch) < 16 {
				il, ok := f.Next()
				if !ok {
					t.Fatal("exhausted early")
				}
				batch = append(batch, il)
			}
			if reverse {
				for i := len(batch) - 1; i >= 0; i-- {
					f.ReportOutcome(batch[i].Key(), sig(batch[i]))
				}
			} else {
				for _, il := range batch {
					f.ReportOutcome(il.Key(), sig(il))
				}
			}
			f.Evolve()
		}
		return f.TrajectoryDigest()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("classification order changed the corpus trajectory: %s vs %s", a, b)
	}
}

// TestDroppedChildrenDoNotSteerCorpus pins the fault-armed/dedup bypass:
// a dropped child contributes nothing to coverage, corpus, or the
// trajectory digest, even when its signature would have been novel.
func TestDroppedChildrenDoNotSteerCorpus(t *testing.T) {
	run := func(dropEven bool) string {
		f := New(space(t, 6), 11)
		f.SetGenerationSize(12)
		for gen := 0; gen < 3; gen++ {
			for i := 0; i < 12; i++ {
				il, ok := f.Next()
				if !ok {
					t.Fatal("exhausted early")
				}
				if dropEven && i%2 == 0 {
					f.ReportDropped(il.Key())
					continue
				}
				f.ReportOutcome(il.Key(), fmt.Sprintf("g%d-i%d", gen, i))
			}
			f.Evolve()
		}
		return f.TrajectoryDigest()
	}
	// Sanity: dropping children changes what is admitted (odd children only)
	// versus classifying everything.
	if run(true) == run(false) {
		t.Fatal("dropping children should change the admission stream")
	}
	// And the drop path itself is deterministic.
	if run(true) != run(true) {
		t.Fatal("drop classification must be deterministic")
	}
}

func TestFuzzerExhaustsTinySpace(t *testing.T) {
	f := New(space(t, 2), 3)
	f.SetMaxRetries(500)
	count := 0
	for {
		il, ok := f.Next()
		if !ok {
			break
		}
		count++
		f.ReportOutcome(il.Key(), "x")
	}
	// 2 units → 2 permutations, one of which (identity) is never emitted
	// by Next (only mutations are); at most 2 distinct keys exist.
	if count == 0 || count > 2 {
		t.Fatalf("emitted %d interleavings of a 2-permutation space", count)
	}
	if !f.Exhausted() {
		t.Fatal("Exhausted() must report the explicit exhausted state")
	}
	if _, ok := f.Next(); ok {
		t.Fatal("Next after exhaustion must keep returning ok=false")
	}
}

// TestClassificationAcceptedAfterExhaustion is the regression test for the
// silent-drop bug: the old fuzzer lost the pending permutation's feedback
// when Next() hit space exhaustion mid-retry-loop. The redesigned explorer
// reports exhaustion explicitly and still accepts classifications for
// every already-emitted child afterwards.
func TestClassificationAcceptedAfterExhaustion(t *testing.T) {
	f := New(space(t, 2), 3)
	f.SetMaxRetries(500)
	var last interleave.Interleaving
	for {
		il, ok := f.Next()
		if !ok {
			break
		}
		if last != nil {
			// Classify all but the newest child, so one is always pending
			// when exhaustion strikes.
			f.ReportOutcome(last.Key(), "x")
		}
		last = il
	}
	if last == nil {
		t.Fatal("space emitted nothing")
	}
	if f.Pending() != 1 {
		t.Fatalf("Pending = %d, want the one unclassified child", f.Pending())
	}
	f.ReportOutcome(last.Key(), "novel-after-exhaustion")
	if f.Pending() != 0 {
		t.Fatal("classification after exhaustion was silently dropped")
	}
	f.Evolve()
	if !f.coverage["novel-after-exhaustion"] {
		t.Fatal("post-exhaustion classification must still reach the corpus")
	}
}

func TestAdaptiveGenerationSizing(t *testing.T) {
	// Cold corpus: nothing novel → the generation doubles.
	f := New(space(t, 6), 5)
	for gen := 0; gen < 2; gen++ {
		want := f.curSize
		got := 0
		for !f.GenerationEnd() {
			il, ok := f.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			got++
			f.ReportOutcome(il.Key(), "cold")
		}
		if got != want {
			t.Fatalf("generation %d emitted %d children, want %d", gen, got, want)
		}
		f.Evolve()
	}
	if f.curSize != 4*DefaultGenerationSize {
		t.Fatalf("cold corpus should double twice: curSize = %d", f.curSize)
	}

	// Hot corpus: everything novel → the generation shrinks to the floor.
	h := New(space(t, 6), 5)
	for gen := 0; gen < 3; gen++ {
		i := 0
		for !h.GenerationEnd() {
			il, ok := h.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			h.ReportOutcome(il.Key(), fmt.Sprintf("hot-%d-%d", gen, i))
			i++
		}
		h.Evolve()
	}
	if h.curSize != minGenerationSize {
		t.Fatalf("hot corpus should shrink to the floor: curSize = %d", h.curSize)
	}

	// Fixed sizing never adapts.
	x := New(space(t, 6), 5)
	x.SetGenerationSize(10)
	for gen := 0; gen < 2; gen++ {
		for !x.GenerationEnd() {
			il, ok := x.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			x.ReportOutcome(il.Key(), "cold")
		}
		x.Evolve()
	}
	if x.curSize != 10 {
		t.Fatalf("fixed generation size must not adapt: curSize = %d", x.curSize)
	}
}

// TestLegacyReportFIFO exercises the positional Report protocol a strictly
// sequential driver uses, interleaved with key-addressed classification.
func TestLegacyReportFIFO(t *testing.T) {
	f := New(space(t, 5), 4)
	f.SetGenerationSize(8)
	a, _ := f.Next()
	b, _ := f.Next()
	c, _ := f.Next()
	f.ReportOutcome(b.Key(), "sig-b") // out-of-order key classification
	f.Report("sig-a")                 // oldest unclassified is a
	f.Report("sig-c")                 // b is done, so the cursor lands on c
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d after classifying all three", f.Pending())
	}
	if f.byKey[a.Key()].sig != "sig-a" || f.byKey[c.Key()].sig != "sig-c" {
		t.Fatal("legacy Report classified the wrong children")
	}
	f.Report("ghost") // nothing unclassified: must be a no-op
	if f.Pending() != 0 {
		t.Fatal("Report on a fully classified generation must not underflow")
	}
}

func TestNextPivotSharesPrefixes(t *testing.T) {
	f := New(space(t, 6), 8)
	f.SetGenerationSize(24)
	prev, ok := f.Next()
	if !ok {
		t.Fatal("exhausted early")
	}
	f.ReportOutcome(prev.Key(), "x")
	sawShared := false
	for !f.GenerationEnd() {
		pivot := f.NextPivot()
		il, ok := f.Next()
		if !ok {
			break
		}
		n := 0
		for n < len(prev) && n < len(il) && prev[n] == il[n] {
			n++
		}
		if pivot != n {
			t.Fatalf("NextPivot = %d, actual common prefix = %d", pivot, n)
		}
		if pivot > 0 {
			sawShared = true
		}
		f.ReportOutcome(il.Key(), "x")
		prev = il
	}
	if !sawShared {
		t.Fatal("sequence-sorted generation should share some prefixes")
	}
}

func TestReportWithoutNextIsNoop(t *testing.T) {
	f := New(space(t, 3), 4)
	f.Report("ghost")
	f.ReportOutcome("no-such-key", "ghost")
	f.ReportDropped("no-such-key")
	if f.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", f.Pending())
	}
	for _, p := range f.corpus {
		if p == nil {
			t.Fatal("nil permutation admitted to corpus")
		}
	}
}
