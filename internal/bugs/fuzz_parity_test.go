package bugs_test

import (
	"reflect"
	"sort"
	"testing"

	"github.com/er-pi/erpi/internal/runner"
)

// fuzzParityCap bounds each fuzz exploration: several generations deep at
// the default adaptive sizing, small enough to keep the 5-subject ×
// 2-worker-count matrix fast.
const fuzzParityCap = 160

// fuzzParitySeed pins the corpus trajectory both worker counts must share.
const fuzzParitySeed = 7

// fuzzExplore runs one ModeFuzz configuration and returns its
// deduplicated, sorted outcome-signature set plus the run counters.
func fuzzExplore(t *testing.T, s runner.Scenario, workers int) ([]string, *runner.Result) {
	t.Helper()
	set := make(map[string]struct{})
	res, err := runner.Run(s, runner.Config{
		Mode:             runner.ModeFuzz,
		Seed:             fuzzParitySeed,
		MaxInterleavings: fuzzParityCap,
		Workers:          workers,
		OnOutcome: func(o *runner.Outcome) {
			set[runner.OutcomeSignature(o)] = struct{}{}
		},
	})
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	sigs := make([]string, 0, len(set))
	for sig := range set {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs, res
}

// TestFuzzGenerationParityAllSubjects is the PR's acceptance pin: for
// every evaluation subject, running the generation-batched fuzzer on the
// eight-worker pool must reproduce the sequential engine exactly — the
// same corpus trajectory digest (admission order and all), the same
// generation and corpus counters, the same deduplicated
// outcome-signature set, and the same explored count. The generation
// barrier is what makes corpus feedback commute with worker count; this
// test is the proof the unclamped pool didn't trade determinism for
// throughput.
func TestFuzzGenerationParityAllSubjects(t *testing.T) {
	subjects := paritySubjects(t)
	names := make([]string, 0, len(subjects))
	for name := range subjects {
		names = append(names, name)
	}
	sort.Strings(names)

	totalGenerations := 0
	for _, name := range names {
		s := subjects[name]
		t.Run(name, func(t *testing.T) {
			seqSigs, seqRes := fuzzExplore(t, s, 1)
			poolSigs, poolRes := fuzzExplore(t, s, 8)
			if seqRes.Fuzz == nil || poolRes.Fuzz == nil {
				t.Fatalf("fuzz stats missing: sequential=%v pool=%v", seqRes.Fuzz, poolRes.Fuzz)
			}
			if poolRes.Explored != seqRes.Explored {
				t.Fatalf("explored diverged: %d at workers=8, %d at workers=1",
					poolRes.Explored, seqRes.Explored)
			}
			if poolRes.Fuzz.TrajectoryDigest != seqRes.Fuzz.TrajectoryDigest {
				t.Fatalf("corpus trajectory diverged:\n workers=8 %s\n workers=1 %s",
					poolRes.Fuzz.TrajectoryDigest, seqRes.Fuzz.TrajectoryDigest)
			}
			for what, pair := range map[string][2]int{
				"generations": {poolRes.Fuzz.Generations, seqRes.Fuzz.Generations},
				"corpus size": {poolRes.Fuzz.CorpusSize, seqRes.Fuzz.CorpusSize},
				"coverage":    {poolRes.Fuzz.Coverage, seqRes.Fuzz.Coverage},
			} {
				if pair[0] != pair[1] {
					t.Fatalf("%s diverged: %d at workers=8, %d at workers=1", what, pair[0], pair[1])
				}
			}
			if !reflect.DeepEqual(poolSigs, seqSigs) {
				t.Fatalf("signature set diverged:\n workers=8 %v\n workers=1 %v", poolSigs, seqSigs)
			}
			totalGenerations += seqRes.Fuzz.Generations
		})
	}
	if totalGenerations == 0 {
		t.Fatal("no subject completed a single generation: the parity assertions never exercised corpus evolution")
	}
}

// TestFuzzGenerationSizeParity pins the explicit-generation-size path the
// same way: a fixed FuzzGenerationSize must also commute with worker
// count, and differ from the adaptive trajectory only in batching (same
// seed, different schedule → same determinism guarantee per config).
func TestFuzzGenerationSizeParity(t *testing.T) {
	subjects := paritySubjects(t)
	s := subjects["Roshi-1"]
	digests := make(map[int]string)
	for _, workers := range []int{1, 8} {
		res, err := runner.Run(s, runner.Config{
			Mode:               runner.ModeFuzz,
			Seed:               fuzzParitySeed,
			FuzzGenerationSize: 24,
			MaxInterleavings:   fuzzParityCap,
			Workers:            workers,
		})
		if err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		if res.Fuzz == nil {
			t.Fatalf("fuzz stats missing at workers=%d", workers)
		}
		digests[workers] = res.Fuzz.TrajectoryDigest
	}
	if digests[1] != digests[8] {
		t.Fatalf("fixed-size trajectory diverged: workers=8 %s, workers=1 %s", digests[8], digests[1])
	}
}
