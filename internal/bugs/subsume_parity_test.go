package bugs_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/miscon"
	"github.com/er-pi/erpi/internal/runner"
)

// parityCap bounds each exploration: large enough that the lexicographic
// frontier revisits states (so subsumption actually fires somewhere),
// small enough to keep the 5-subject × 2-worker-count matrix fast.
const parityCap = 200

// paritySubjects is one workload per evaluation subject. Four ride on
// Table-1 bug benchmarks; the CRDT library has no Table-1 entry, so it
// rides on its misconception scenario.
func paritySubjects(t *testing.T) map[string]runner.Scenario {
	t.Helper()
	out := make(map[string]runner.Scenario)
	for _, name := range []string{"Roshi-1", "OrbitDB-2", "ReplicaDB-1", "Yorkie-1"} {
		b, ok := bugs.ByName(name)
		if !ok {
			t.Fatalf("unknown bug %q", name)
		}
		s, err := b.Build()
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out[name] = s
	}
	for _, sc := range miscon.All() {
		if sc.Name() == "CRDTs#4" {
			s, err := sc.Build()
			if err != nil {
				t.Fatalf("build CRDTs#4: %v", err)
			}
			out["CRDTs#4"] = s
		}
	}
	if len(out) != 5 {
		t.Fatalf("assembled %d subjects, want 5", len(out))
	}
	return out
}

// exploreSigs runs one configuration and returns its deduplicated,
// sorted outcome-signature set plus the run counters.
func exploreSigs(t *testing.T, s runner.Scenario, workers int, subsume bool) ([]string, *runner.Result) {
	t.Helper()
	set := make(map[string]struct{})
	cfg := runner.Config{
		Mode:             runner.ModeDFS,
		MaxInterleavings: parityCap,
		Workers:          workers,
		OnOutcome: func(o *runner.Outcome) {
			set[runner.OutcomeSignature(o)] = struct{}{}
		},
	}
	if subsume {
		cfg.SubsumptionTable = 4 << 20
	}
	res, err := runner.Run(s, cfg)
	if err != nil {
		t.Fatalf("run (workers=%d subsume=%v): %v", workers, subsume, err)
	}
	sigs := make([]string, 0, len(set))
	for sig := range set {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs, res
}

// TestSubsumptionSignatureParityAllSubjects is the PR's acceptance pin:
// for every evaluation subject, turning state-subsumption pruning on must
// leave the deduplicated outcome-signature set — the engine's observable
// behavior inventory — byte-identical to the unpruned run, at one worker
// and at eight. It also pins accounting parity (Explored is unchanged:
// subsumed interleavings still consume indices) and that pruning actually
// fires on at least one subject, so the parity claim is not vacuous.
func TestSubsumptionSignatureParityAllSubjects(t *testing.T) {
	subjects := paritySubjects(t)
	names := make([]string, 0, len(subjects))
	for name := range subjects {
		names = append(names, name)
	}
	sort.Strings(names)

	totalSubsumed := 0
	for _, name := range names {
		s := subjects[name]
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				baseSigs, baseRes := exploreSigs(t, s, workers, false)
				subSigs, subRes := exploreSigs(t, s, workers, true)
				if baseRes.Subsumed != 0 {
					t.Fatalf("baseline reported %d subsumed with the table disabled", baseRes.Subsumed)
				}
				if subRes.Explored != baseRes.Explored {
					t.Fatalf("explored diverged: %d with subsumption, %d without (skipped interleavings must still consume the cap)",
						subRes.Explored, baseRes.Explored)
				}
				if !reflect.DeepEqual(subSigs, baseSigs) {
					t.Fatalf("signature set diverged with subsumption on:\n with    %v\n without %v", subSigs, baseSigs)
				}
				totalSubsumed += subRes.Subsumed
			})
		}
	}
	if totalSubsumed == 0 {
		t.Fatal("no interleaving was subsumed on any subject: the parity assertions never exercised pruning")
	}
}
