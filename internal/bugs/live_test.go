package bugs

import (
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/runner"
)

// TestTriggerLiveReplay replays every benchmark's trigger interleaving
// through the live path — one goroutine per replica, gated by the replay
// proxy — and requires the reported manifestation to reproduce exactly as
// it does under the sequential executor. This ties the full §4.3 pipeline
// (proxy interception + turn ordering + checkpointed replicas) to the RQ1
// experiment.
func TestTriggerLiveReplay(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			reported, err := b.ReportedSignature()
			if err != nil {
				t.Fatal(err)
			}
			s, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			gate := proxy.NewLocalGate()
			outcome, err := runner.ExecuteLive(s, interleave.Interleaving(b.Trigger),
				func(event.ReplicaID) proxy.TurnGate { return gate })
			if err != nil {
				t.Fatal(err)
			}
			if got := b.Sig(outcome); got != reported {
				t.Fatalf("live replay of the trigger does not reproduce the report:\nlive: %s\nreported: %s",
					got, reported)
			}
		})
	}
}
