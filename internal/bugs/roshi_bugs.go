package bugs

import (
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/roshi"
)

func roshiCluster(flags roshi.Flags) func() (*replica.Cluster, error) {
	return func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": roshi.New(flags),
			"B": roshi.New(flags),
			"C": roshi.New(flags),
		}), nil
	}
}

// roshi1 is Roshi issue #18, "incorrect deleted field in response": a
// tombstone that reaches a replica before the corresponding insert is
// recorded with deleted=false, surfacing the member as live at a score
// only a delete ever carried. 9 events.
//
// Reported manifestation: the tombstone sync (3,4) overtakes the insert
// sync (2) to replica C, whose selectAll then lists m@9 as live.
func roshi1() *Benchmark {
	newCluster := roshiCluster(roshi.Flags{BugDeletedField: true})
	return &Benchmark{
		Name: "Roshi-1", Subject: "Roshi", Issue: 18, Events: 9,
		Status: "closed", Reason: "misconception",
		FixedCluster: roshiCluster(roshi.Flags{}),
		Trigger:      ids(0, 1, 3, 4, 2, 5, 6, 7, 8),
		Sig:          fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("Roshi-1", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "insert", "k", "m", "5") // 0
				rec.Sync("A", "B")                       // 1
				rec.Sync("A", "C")                       // 2
				rec.Update("B", "delete", "k", "m", "9") // 3
				rec.Sync("B", "C")                       // 4
				rec.Sync("B", "A")                       // 5
				rec.Update("C", "insert", "k", "w", "4") // 6
				rec.Sync("C", "A")                       // 7
				rec.Observe("C", "selectAll", "k")       // 8
			}, prune.Config{
				Grouping:       groups(ids(0, 1), ids(3, 4), ids(6, 7)),
				TestedReplicas: []event.ReplicaID{"C"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(3, 6)}, // delete(m) and insert(w) commute
				},
			}, nil)
		},
	}
}

// roshi2 is Roshi issue #11, "CRDT semantics violated if same timestamp":
// equal-score conflicts resolve by arrival order, so replicas settle on
// different winners depending on the interleaving. 10 events.
//
// Reported manifestation: B's delete (6,7) executes before A's re-add
// (4,5); opposite arrival orders at A and B leave the member live after
// anti-entropy, where the recorded order leaves it deleted.
func roshi2() *Benchmark {
	newCluster := roshiCluster(roshi.Flags{BugEqualTimestampArrival: true})
	return &Benchmark{
		Name: "Roshi-2", Subject: "Roshi", Issue: 11, Events: 10,
		Status: "closed", Reason: "RDL issue",
		FixedCluster: roshiCluster(roshi.Flags{}),
		Trigger:      ids(0, 1, 2, 3, 6, 7, 4, 5, 8, 9),
		Sig:          fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("Roshi-2", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "insert", "k", "m", "3") // 0
				rec.Sync("B", "A")                       // 1
				rec.Update("C", "insert", "k", "w", "1") // 2
				rec.Sync("C", "A")                       // 3
				rec.Update("A", "insert", "k", "m", "5") // 4
				rec.Sync("A", "B")                       // 5
				rec.Update("B", "delete", "k", "m", "5") // 6
				rec.Sync("B", "A")                       // 7
				rec.Observe("A", "selectAll", "k")       // 8
				rec.Observe("B", "selectAll", "k")       // 9
			}, prune.Config{
				Grouping:       groups(ids(0, 1), ids(2, 3), ids(4, 5)),
				TestedReplicas: []event.ReplicaID{"A"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(0, 2)}, // inserts of distinct members commute
				},
			}, runner.AntiEntropy(2))
		},
	}
}

// roshi3 is Roshi issue #40, "select and map order": equal-score members
// come back in internal arrival order instead of a canonical order, so
// reads depend on the interleaving. 21 events.
//
// Reported manifestation: the fourth and fifth insert rounds swap, so the
// selects at every replica list a2 after b2 — an order the canonical
// comparator never produces.
func roshi3() *Benchmark {
	newCluster := roshiCluster(roshi.Flags{BugMapOrder: true})
	return &Benchmark{
		Name: "Roshi-3", Subject: "Roshi", Issue: 40, Events: 21,
		Status: "closed", Reason: "misconception",
		FixedCluster: roshiCluster(roshi.Flags{}),
		Trigger:      ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 13, 14, 9, 10, 11, 15, 16, 17, 18, 19, 20),
		Sig:          fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("Roshi-3", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "insert", "k", "a1", "5") // 0
				rec.Sync("A", "B")                        // 1
				rec.Sync("A", "C")                        // 2
				rec.Update("B", "insert", "k", "b1", "5") // 3
				rec.Sync("B", "A")                        // 4
				rec.Sync("B", "C")                        // 5
				rec.Update("C", "insert", "k", "c1", "5") // 6
				rec.Sync("C", "A")                        // 7
				rec.Sync("C", "B")                        // 8
				rec.Update("A", "insert", "k", "a2", "5") // 9
				rec.Sync("A", "B")                        // 10
				rec.Sync("A", "C")                        // 11
				rec.Update("B", "insert", "k", "b2", "5") // 12
				rec.Sync("B", "A")                        // 13
				rec.Sync("B", "C")                        // 14
				rec.Update("C", "insert", "k", "c2", "5") // 15
				rec.Sync("C", "A")                        // 16
				rec.Sync("C", "B")                        // 17
				rec.Observe("A", "select", "k")           // 18
				rec.Observe("B", "select", "k")           // 19
				rec.Observe("C", "select", "k")           // 20
			}, prune.Config{
				Grouping: groups(ids(0, 1, 2), ids(3, 4, 5), ids(6, 7, 8),
					ids(9, 10, 11), ids(12, 13, 14), ids(15, 16, 17)),
				TestedReplicas: []event.ReplicaID{"A"},
			}, nil)
		},
	}
}
