// Package bugs defines the twelve bug benchmarks of the paper's Table 1:
// previously reported issues in the five evaluation subjects, re-seeded
// into the re-implemented replication cores with the same interleaved
// event counts.
//
// Reproduction follows the paper's RQ1 framing: "when a bug is experienced
// during the execution of a replicated data system, it might be impossible
// for users to report which of the possible interleavings was in effect
// when the bug manifested itself." Each benchmark therefore carries the
// REPORTED MANIFESTATION — the outcome signature produced by one specific
// trigger interleaving, standing in for the user's bug report — and
// reproduction means finding any interleaving whose outcome matches it.
// The recorded workload order is always clean (its signature differs from
// the report), so reproduction genuinely requires exploration.
package bugs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
)

// Benchmark is one Table-1 entry.
type Benchmark struct {
	// Name is the paper's benchmark label (e.g. "Roshi-1").
	Name string
	// Subject names the evaluation subject.
	Subject string
	// Issue is the upstream issue number.
	Issue int
	// Events is the interleaved event count (Table 1 "#Events").
	Events int
	// Status is the upstream issue status ("closed"/"open").
	Status string
	// Reason is the paper's root-cause class ("misconception",
	// "RDL issue", "misuse", or "—" for open issues).
	Reason string
	// Build records the workload and returns the replay scenario.
	Build func() (runner.Scenario, error)
	// FixedCluster builds the corrected subject (defect flags off); used
	// to verify that reproduction cannot succeed against the fix.
	FixedCluster func() (*replica.Cluster, error)
	// Trigger is the interleaving whose outcome is the reported
	// manifestation (the "bug report").
	Trigger []event.ID
	// Sig extracts the comparison signature from an outcome. Coarse
	// signatures (e.g. one observation) model loosely described reports;
	// full signatures model detailed ones.
	Sig func(*runner.Outcome) string

	once        sync.Once
	reported    string
	reportedErr error
}

// ReportedSignature executes the trigger interleaving once and returns the
// manifestation signature the benchmark hunts for.
func (b *Benchmark) ReportedSignature() (string, error) {
	b.once.Do(func() {
		s, err := b.Build()
		if err != nil {
			b.reportedErr = err
			return
		}
		outcome, err := runner.ExecuteOnce(s, interleave.Interleaving(b.Trigger))
		if err != nil {
			b.reportedErr = fmt.Errorf("bugs: %s trigger: %w", b.Name, err)
			return
		}
		b.reported = b.Sig(outcome)
	})
	return b.reported, b.reportedErr
}

// NewAssertions returns the manifestation-matching assertion: it "fails"
// (reports a violation) exactly when an outcome reproduces the reported
// signature.
func (b *Benchmark) NewAssertions() ([]runner.Assertion, error) {
	want, err := b.ReportedSignature()
	if err != nil {
		return nil, err
	}
	return []runner.Assertion{&manifestationMatch{name: b.Name, sig: b.Sig, want: want}}, nil
}

type manifestationMatch struct {
	name string
	sig  func(*runner.Outcome) string
	want string
}

var _ runner.Assertion = (*manifestationMatch)(nil)

func (m *manifestationMatch) Name() string { return "reproduces(" + m.name + ")" }

func (m *manifestationMatch) Check(o *runner.Outcome) error {
	if m.sig(o) == m.want {
		return errors.New("reported manifestation reproduced")
	}
	return nil
}

// BuildFixed returns the same recorded scenario replayed against the
// corrected subject: the workload's event log is subject-version-agnostic,
// so only the cluster factory changes.
func (b *Benchmark) BuildFixed() (runner.Scenario, error) {
	s, err := b.Build()
	if err != nil {
		return s, err
	}
	if b.FixedCluster == nil {
		return s, fmt.Errorf("bugs: %s has no fixed-subject factory", b.Name)
	}
	s.NewCluster = b.FixedCluster
	return s, nil
}

// All returns the twelve benchmarks in Table-1 order.
func All() []*Benchmark {
	return []*Benchmark{
		roshi1(), roshi2(), roshi3(),
		orbit1(), orbit2(), orbit3(), orbit4(), orbit5(),
		replicadb1(), replicadb2(),
		yorkie1(), yorkie2(),
	}
}

// ByName finds a benchmark by its Table-1 label.
func ByName(name string) (*Benchmark, bool) {
	for _, b := range All() {
		if strings.EqualFold(b.Name, name) {
			return b, true
		}
	}
	return nil, false
}

// buildScenario runs a recording script against a fresh cluster and
// assembles the scenario.
func buildScenario(name string, newCluster func() (*replica.Cluster, error),
	script func(rec *runner.Recorder), pruning prune.Config,
	finalize func(*replica.Cluster) error) (runner.Scenario, error) {

	cluster, err := newCluster()
	if err != nil {
		return runner.Scenario{}, fmt.Errorf("bugs: %s: cluster: %w", name, err)
	}
	rec := runner.NewRecorder(cluster)
	script(rec)
	log, err := rec.Log()
	if err != nil {
		return runner.Scenario{}, fmt.Errorf("bugs: %s: recording: %w", name, err)
	}
	return runner.Scenario{
		Name:       name,
		Log:        log,
		NewCluster: newCluster,
		Pruning:    pruning,
		Finalize:   finalize,
	}, nil
}

// Signature helpers. fullSig models a detailed bug report (every
// observation, every replica state, every rejected op); obsSig and
// failedSig model reports that only mention what the user saw.

func fullSig(o *runner.Outcome) string {
	return strings.Join([]string{obsPart(o, nil), fpPart(o), failedPart(o)}, "|")
}

// obsSig restricts the signature to the given observation events.
func obsSig(events ...event.ID) func(*runner.Outcome) string {
	return func(o *runner.Outcome) string { return obsPart(o, events) }
}

// obsAndFailedSig combines selected observations with the rejected-op set.
func obsAndFailedSig(events ...event.ID) func(*runner.Outcome) string {
	return func(o *runner.Outcome) string {
		return obsPart(o, events) + "|" + failedPart(o)
	}
}

// failedSig is the rejected-op set alone.
func failedSig(o *runner.Outcome) string { return failedPart(o) }

// contentSet renders an observation's comma-separated items as a sorted
// set — the granularity of a report that lists what was visible without
// recalling the exact order.
func contentSet(o *runner.Outcome, ev event.ID) string {
	got, ok := o.Observations[ev]
	if !ok {
		return "<none>"
	}
	items := strings.Split(got, ",")
	sort.Strings(items)
	return strings.Join(items, ",")
}

func obsPart(o *runner.Outcome, only []event.ID) string {
	var keys []int
	if only == nil {
		for id := range o.Observations {
			keys = append(keys, int(id))
		}
	} else {
		for _, id := range only {
			keys = append(keys, int(id))
		}
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v, ok := o.Observations[event.ID(k)]
		if !ok {
			v = "<none>"
		}
		parts = append(parts, fmt.Sprintf("ev%d=%s", k, v))
	}
	return strings.Join(parts, ";")
}

func fpPart(o *runner.Outcome) string {
	var reps []string
	for r := range o.Fingerprints {
		reps = append(reps, string(r))
	}
	sort.Strings(reps)
	parts := make([]string, 0, len(reps))
	for _, r := range reps {
		parts = append(parts, r+"="+o.Fingerprints[event.ReplicaID(r)])
	}
	return strings.Join(parts, ";")
}

func failedPart(o *runner.Outcome) string {
	xs := make([]int, 0, len(o.FailedOps))
	for _, id := range o.FailedOps {
		xs = append(xs, int(id))
	}
	sort.Ints(xs)
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return "failed[" + strings.Join(parts, ",") + "]"
}

// groups is shorthand for a grouping-only pruning config fragment.
func groups(g ...[]event.ID) prune.GroupSpec {
	return prune.GroupSpec{Extra: g}
}

func ids(xs ...int) []event.ID {
	out := make([]event.ID, len(xs))
	for i, x := range xs {
		out[i] = event.ID(x)
	}
	return out
}
