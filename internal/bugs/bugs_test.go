package bugs

import (
	"testing"

	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/runner"
)

// expectedTable1 pins the paper's Table 1 rows.
var expectedTable1 = []struct {
	name   string
	issue  int
	events int
	status string
	reason string
}{
	{"Roshi-1", 18, 9, "closed", "misconception"},
	{"Roshi-2", 11, 10, "closed", "RDL issue"},
	{"Roshi-3", 40, 21, "closed", "misconception"},
	{"OrbitDB-1", 513, 12, "open", "—"},
	{"OrbitDB-2", 512, 8, "open", "—"},
	{"OrbitDB-3", 1153, 15, "closed", "misuse"},
	{"OrbitDB-4", 583, 18, "closed", "misconception"},
	{"OrbitDB-5", 557, 24, "closed", "misconception"},
	{"ReplicaDB-1", 79, 10, "closed", "misuse"},
	{"ReplicaDB-2", 23, 14, "closed", "misconception"},
	{"Yorkie-1", 676, 17, "open", "—"},
	{"Yorkie-2", 663, 22, "closed", "misconception"},
}

func TestTable1Inventory(t *testing.T) {
	all := All()
	if len(all) != len(expectedTable1) {
		t.Fatalf("benchmarks = %d, want %d", len(all), len(expectedTable1))
	}
	for i, want := range expectedTable1 {
		b := all[i]
		if b.Name != want.name || b.Issue != want.issue || b.Events != want.events ||
			b.Status != want.status || b.Reason != want.reason {
			t.Errorf("row %d = %s/#%d/%d/%s/%s, want %s/#%d/%d/%s/%s",
				i, b.Name, b.Issue, b.Events, b.Status, b.Reason,
				want.name, want.issue, want.events, want.status, want.reason)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("roshi-2"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ByName("NotABug"); ok {
		t.Fatal("unknown name must miss")
	}
}

// TestEventCountsMatchTable1 verifies every workload records exactly the
// paper's event count and the trigger is a complete permutation.
func TestEventCountsMatchTable1(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if s.Log.Len() != b.Events {
				t.Fatalf("recorded %d events, Table 1 says %d", s.Log.Len(), b.Events)
			}
			if len(b.Trigger) != b.Events {
				t.Fatalf("trigger has %d events, want %d", len(b.Trigger), b.Events)
			}
			seen := make(map[int]bool, len(b.Trigger))
			for _, id := range b.Trigger {
				if seen[int(id)] || int(id) >= b.Events {
					t.Fatalf("trigger is not a permutation: %v", b.Trigger)
				}
				seen[int(id)] = true
			}
		})
	}
}

// TestRecordedOrderIsClean verifies the recorded interleaving does NOT
// match the reported manifestation, so reproduction genuinely requires
// exploring reorderings.
func TestRecordedOrderIsClean(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			reported, err := b.ReportedSignature()
			if err != nil {
				t.Fatal(err)
			}
			recorded := make(interleave.Interleaving, s.Log.Len())
			for i := range recorded {
				recorded[i] = s.Log.IDs()[i]
			}
			outcome, err := runner.ExecuteOnce(s, recorded)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.Sig(outcome); got == reported {
				t.Fatalf("recorded order already produces the reported manifestation: %s", got)
			}
		})
	}
}

// TestERPiReproducesEveryBug is the paper's RQ1 in miniature: ER-π's
// pruned exploration reproduces all twelve manifestations within the 10K
// cap.
func TestERPiReproducesEveryBug(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			s, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			asserts, err := b.NewAssertions()
			if err != nil {
				t.Fatal(err)
			}
			res, err := runner.Run(s, runner.Config{
				Mode:            runner.ModeERPi,
				StopOnViolation: true,
				Assertions:      asserts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FirstViolation == 0 {
				t.Fatalf("bug not reproduced in %d interleavings (exhausted=%v)", res.Explored, res.Exhausted)
			}
			t.Logf("reproduced at interleaving %d", res.FirstViolation)
		})
	}
}

// TestFixedSubjectsNeverMatch replays each workload against the corrected
// subject: the reported manifestation must be unreachable, so reproducing
// it really requires the defect.
func TestFixedSubjectsNeverMatch(t *testing.T) {
	const sample = 400
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			asserts, err := b.NewAssertions()
			if err != nil {
				t.Fatal(err)
			}
			s, err := b.BuildFixed()
			if err != nil {
				t.Fatal(err)
			}
			// The trigger order itself must not manifest on the fix.
			outcome, err := runner.ExecuteOnce(s, interleave.Interleaving(b.Trigger))
			if err != nil {
				t.Fatal(err)
			}
			reported, _ := b.ReportedSignature()
			if b.Sig(outcome) == reported {
				t.Fatal("trigger order manifests on the corrected subject")
			}
			for _, mode := range []runner.Mode{runner.ModeERPi, runner.ModeRand} {
				res, err := runner.Run(s, runner.Config{
					Mode:             mode,
					Seed:             99,
					MaxInterleavings: sample,
					Assertions:       asserts,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) != 0 {
					t.Fatalf("%s: manifestation reproduced on corrected subject: %v", mode, res.Violations[0])
				}
			}
		})
	}
}
