package bugs

import (
	"strconv"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/yorkie"
)

func yorkieCluster(flags yorkie.Flags) func() (*replica.Cluster, error) {
	return func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": yorkie.New("A", flags),
			"B": yorkie.New("B", flags),
			"C": yorkie.New("C", flags),
		}), nil
	}
}

// yorkie1 is Yorkie issue #676, "Document doesn't converge when using
// Array.MoveAfter": moves are delete+fresh-insert, so concurrent moves of
// the same element leave each replica with only its own relocation.
// 17 events.
//
// Reported manifestation: B's move (11) overtakes A's move-sync (10), so
// both replicas move x concurrently and the document never converges.
func yorkie1() *Benchmark {
	newCluster := yorkieCluster(yorkie.Flags{BugMoveAfter: true})
	return &Benchmark{
		Name: "Yorkie-1", Subject: "Yorkie", Issue: 676, Events: 17,
		Status: "open", Reason: "—",
		FixedCluster: yorkieCluster(yorkie.Flags{}),
		Trigger:      ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 9, 11, 12, 13, 14, 15, 16),
		// The report: three replicas read different arrays AND the
		// divergence survives full anti-entropy — mere propagation lag
		// (reachable on the fixed library) never matches because the
		// post-finalize fingerprints reconcile there.
		Sig: func(o *runner.Outcome) string {
			return obsPart(o, []event.ID{16}) + "|converged=" + strconv.FormatBool(o.Converged)
		},
		Build: func() (runner.Scenario, error) {
			return buildScenario("Yorkie-1", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "arrInsert", "0", "x") // 0
				rec.Update("A", "arrInsert", "1", "y") // 1
				rec.Update("A", "arrInsert", "2", "z") // 2
				rec.Sync("A", "B")                     // 3
				rec.Sync("A", "C")                     // 4
				rec.Update("C", "arrInsert", "3", "w") // 5
				rec.Sync("C", "A")                     // 6
				rec.Sync("C", "B")                     // 7
				rec.Observe("C", "readArr")            // 8
				rec.Update("A", "arrMove", "0", "3")   // 9  A moves x after z
				rec.Sync("A", "B")                     // 10
				rec.Update("B", "arrMove", "0", "2")   // 11 B moves its head after y
				rec.Sync("B", "A")                     // 12
				rec.Sync("B", "C")                     // 13
				rec.Observe("A", "readArr")            // 14
				rec.Observe("B", "readArr")            // 15
				rec.Observe("C", "readArr")            // 16
			}, prune.Config{
				Grouping:       groups(ids(0, 1, 2, 3, 4), ids(5, 6, 7), ids(14, 15, 16)),
				TestedReplicas: []event.ReplicaID{"C"},
			}, runner.AntiEntropy(2))
		},
	}
}

// yorkie2 is Yorkie issue #663, "Modify the set operation to handle nested
// object values": the remote-apply path flattens a nested object whose
// parent has not arrived yet, so out-of-causal-order delivery diverges.
// 22 events.
//
// Reported manifestation: A's sync to C (15) overtakes B's (14), so C
// receives the avatar object before its parent and flattens it to a
// primitive placeholder; the document never converges.
func yorkie2() *Benchmark {
	newCluster := yorkieCluster(yorkie.Flags{BugNestedSet: true})
	return &Benchmark{
		Name: "Yorkie-2", Subject: "Yorkie", Issue: 663, Events: 22,
		Status: "closed", Reason: "misconception",
		FixedCluster: yorkieCluster(yorkie.Flags{}),
		Trigger: ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
			15, 14, 16, 17, 18, 19, 20, 21),
		Sig: fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("Yorkie-2", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "setObject", "profile")        // 0
				rec.Update("A", "set", "title", "doc1")        // 1
				rec.Update("A", "setObject", "profile.avatar") // 2
				rec.Update("A", "set", "alpha", "a1")          // 3
				rec.Update("C", "set", "notes", "n1")          // 4
				rec.Sync("C", "B")                             // 5
				rec.Sync("C", "A")                             // 6
				rec.Observe("C", "read")                       // 7
				rec.Observe("B", "read")                       // 8
				rec.Observe("A", "read")                       // 9
				rec.Update("B", "set", "footer", "end")        // 10
				rec.Update("B", "set", "header", "h")          // 11
				rec.Update("A", "set", "beta", "b2")           // 12
				rec.Observe("A", "read")                       // 13
				rec.Sync("B", "C")                             // 14 parent reaches C first
				rec.Sync("A", "C")                             // 15 nested ops follow
				rec.Sync("A", "B")                             // 16
				rec.Sync("B", "A")                             // 17
				rec.Observe("C", "read")                       // 18
				rec.Update("C", "set", "seen", "yes")          // 19
				rec.Sync("C", "A")                             // 20
				rec.Sync("C", "B")                             // 21
			}, prune.Config{
				Grouping: groups(ids(0), ids(1, 2, 3), ids(4, 5, 6), ids(7, 8, 9),
					ids(10, 11), ids(12, 13), ids(16, 17), ids(19, 20, 21)),
				TestedReplicas: []event.ReplicaID{"C"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(10, 12)}, // disjoint-path sets commute
				},
			}, runner.AntiEntropy(2))
		},
	}
}
