package bugs

import (
	"testing"

	"github.com/er-pi/erpi/internal/runner"
)

// TestFuzzModeReproducesRandHardBugs exercises the §8 future-work greybox
// fuzzing mode on the benchmarks the uniform Rand baseline cannot crack
// within the 10K cap: coverage-guided mutation reaches the reported
// manifestations with orders of magnitude fewer interleavings. Seeds are
// pinned to keep the test deterministic (fuzzing is probabilistic; some
// seeds miss, as Figure-8-style experiments expect).
func TestFuzzModeReproducesRandHardBugs(t *testing.T) {
	cases := []struct {
		bug  string
		seed int64
	}{
		{"Roshi-3", 1},
		{"OrbitDB-4", 2},
		{"OrbitDB-5", 1},
		{"Yorkie-2", 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bug, func(t *testing.T) {
			b, ok := ByName(tc.bug)
			if !ok {
				t.Fatal("unknown bug")
			}
			s, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			asserts, err := b.NewAssertions()
			if err != nil {
				t.Fatal(err)
			}
			res, err := runner.Run(s, runner.Config{
				Mode:            runner.ModeFuzz,
				Seed:            tc.seed,
				StopOnViolation: true,
				Assertions:      asserts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FirstViolation == 0 {
				t.Fatalf("fuzz mode did not reproduce in %d interleavings", res.Explored)
			}
			t.Logf("reproduced at interleaving %d (Rand needs >10000 here)", res.FirstViolation)
		})
	}
}
