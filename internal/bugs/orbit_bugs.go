package bugs

import (
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/orbit"
)

// orbitCluster builds three peers; identities may be overridden so that
// two devices can share one identity (the issue-#513 setup).
func orbitCluster(flags orbit.Flags, identities map[event.ReplicaID]string) func() (*replica.Cluster, error) {
	return func() (*replica.Cluster, error) {
		states := make(map[event.ReplicaID]replica.State, 3)
		for _, rep := range []event.ReplicaID{"A", "B", "C"} {
			id := string(rep)
			if identities != nil {
				if override, ok := identities[rep]; ok {
					id = override
				}
			}
			states[rep] = orbit.New(id, flags)
		}
		return replica.NewCluster(states), nil
	}
}

// orbit1 is OrbitDB issue #513, "ordering tie breaker can cause undefined
// ordering with the same identity": two devices sharing one identity
// append entries with equal clocks; the non-total comparator orders reads
// by arrival. 12 events.
//
// Reported manifestation: B's second entry (and its sync to C) overtakes
// A's, so C reads p4 before p3 where both carry clock 2 and identity W.
func orbit1() *Benchmark {
	shared := map[event.ReplicaID]string{"A": "W", "B": "W"}
	newCluster := orbitCluster(orbit.Flags{BugTieBreaker: true}, shared)
	return &Benchmark{
		Name: "OrbitDB-1", Subject: "OrbitDB", Issue: 513, Events: 12,
		Status: "open", Reason: "—",
		FixedCluster: orbitCluster(orbit.Flags{}, shared),
		Trigger:      ids(0, 1, 2, 3, 4, 5, 8, 9, 6, 7, 10, 11),
		Sig:          obsSig(10),
		Build: func() (runner.Scenario, error) {
			return buildScenario("OrbitDB-1", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "append", "p1") // 0  clock 1 @ identity W
				rec.Sync("A", "C")              // 1
				rec.Update("B", "append", "p2") // 2  clock 1 @ identity W: tie
				rec.Sync("B", "C")              // 3
				rec.Sync("A", "B")              // 4
				rec.Sync("B", "A")              // 5
				rec.Update("A", "append", "p3") // 6  clock 2 @ W
				rec.Sync("A", "C")              // 7
				rec.Update("B", "append", "p4") // 8  clock 2 @ W: tie
				rec.Sync("B", "C")              // 9
				rec.Observe("C", "read")        // 10
				rec.Observe("A", "read")        // 11
			}, prune.Config{
				Grouping:       groups(ids(0, 1), ids(2, 3), ids(6, 7), ids(8, 9)),
				TestedReplicas: []event.ReplicaID{"C"},
			}, nil)
		},
	}
}

// orbit2 is OrbitDB issue #512, "Lamport clock can be set far into future
// making db progress halt": an unguarded join adopts a forged far-future
// clock. 8 events.
//
// Reported manifestation: the infection chain (4,5,6) overtakes C's clock
// check (3), which then reports the far-future clock.
func orbit2() *Benchmark {
	newCluster := orbitCluster(orbit.Flags{BugFutureClock: true}, nil)
	const limit = "1000000"
	return &Benchmark{
		Name: "OrbitDB-2", Subject: "OrbitDB", Issue: 512, Events: 8,
		Status: "open", Reason: "—",
		FixedCluster: orbitCluster(orbit.Flags{}, nil),
		Trigger:      ids(0, 1, 2, 4, 5, 6, 3, 7),
		Sig:          obsSig(1, 3),
		Build: func() (runner.Scenario, error) {
			return buildScenario("OrbitDB-2", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "append", "b1")                          // 0
				rec.Observe("B", "clockBelow", limit)                    // 1
				rec.Update("C", "append", "c1")                          // 2
				rec.Observe("C", "clockBelow", limit)                    // 3
				rec.Update("A", "appendFuture", "evil", "1099511627776") // 4: 2^40
				rec.Sync("A", "B")                                       // 5
				rec.Sync("B", "C")                                       // 6
				rec.Sync("A", "C")                                       // 7
			}, prune.Config{
				Grouping:       groups(ids(4, 5)),
				TestedReplicas: []event.ReplicaID{"C"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(0, 2), NonInterfering: ids(1, 3)},
				},
			}, nil)
		},
	}
}

// orbit3 is OrbitDB issue #1153, "could not append entry although write
// access is granted": a join refreshes the live heads but not the append
// path's cached heads, so the next append is rejected. 15 events.
//
// Reported manifestation: C's late join into A (13, carrying entries A has
// never seen) lands between A's two appends, rejecting the second one.
func orbit3() *Benchmark {
	newCluster := orbitCluster(orbit.Flags{BugStaleHeadCache: true}, nil)
	return &Benchmark{
		Name: "OrbitDB-3", Subject: "OrbitDB", Issue: 1153, Events: 15,
		Status: "closed", Reason: "misuse",
		FixedCluster: orbitCluster(orbit.Flags{}, nil),
		Trigger:      ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 13, 9, 10, 11, 12, 14),
		// The report says: "my second append was rejected, and the final
		// read shows everyone's entries except it" — the rejected-op set
		// plus the content SET of the final read (order-insensitive, as a
		// user would describe it).
		Sig: func(o *runner.Outcome) string {
			return failedPart(o) + "|" + contentSet(o, 12) + "|" + contentSet(o, 14)
		},
		Build: func() (runner.Scenario, error) {
			return buildScenario("OrbitDB-3", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "append", "b1") // 0
				rec.Update("B", "append", "b2") // 1
				rec.Sync("B", "A")              // 2
				rec.Sync("B", "C")              // 3
				rec.Observe("B", "read")        // 4
				rec.Update("C", "append", "c1") // 5 (never synced to A until 13)
				rec.Sync("C", "B")              // 6
				rec.Observe("C", "read")        // 7
				rec.Update("A", "append", "a1") // 8
				rec.Update("A", "append", "a2") // 9
				rec.Sync("A", "B")              // 10
				rec.Sync("A", "C")              // 11
				rec.Observe("A", "read")        // 12
				rec.Sync("C", "A")              // 13 late join carrying c1
				rec.Observe("A", "read")        // 14
			}, prune.Config{
				Grouping:       groups(ids(0, 1, 2, 3), ids(5, 6, 7), ids(10, 11, 12)),
				TestedReplicas: []event.ReplicaID{"A"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(0, 5)}, // appends at distinct peers commute
				},
			}, nil)
		},
	}
}

// orbit4 is OrbitDB issue #583, "head hash didn't match the contents":
// a sync that overtakes the seal of a fresh append ships an entry whose
// payload was annotated after hashing; the receiver rejects the join.
// 18 events.
//
// Reported manifestation: B's sync to A (6) overtakes B's seal (5), so A
// rejects the corrupt b1 and its reads lack it.
func orbit4() *Benchmark {
	newCluster := orbitCluster(orbit.Flags{BugMutateAfterHash: true}, nil)
	return &Benchmark{
		Name: "OrbitDB-4", Subject: "OrbitDB", Issue: 583, Events: 18,
		Status: "closed", Reason: "misconception",
		FixedCluster: orbitCluster(orbit.Flags{}, nil),
		Trigger:      ids(0, 1, 2, 3, 4, 6, 5, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17),
		Sig:          fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("OrbitDB-4", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "append", "a1") // 0
				rec.Update("A", "seal")         // 1
				rec.Sync("A", "B")              // 2
				rec.Sync("A", "C")              // 3
				rec.Update("B", "append", "b1") // 4
				rec.Update("B", "seal")         // 5
				rec.Sync("B", "A")              // 6
				rec.Sync("B", "C")              // 7
				rec.Update("C", "append", "c1") // 8
				rec.Update("C", "seal")         // 9
				rec.Sync("C", "A")              // 10
				rec.Sync("C", "B")              // 11
				rec.Observe("A", "read")        // 12
				rec.Observe("B", "read")        // 13
				rec.Observe("C", "read")        // 14
				rec.Update("A", "append", "a2") // 15
				rec.Update("A", "seal")         // 16
				rec.Observe("A", "verify")      // 17
			}, prune.Config{
				Grouping: groups(ids(0, 1, 2, 3), ids(8, 9, 10, 11),
					ids(12, 13, 14), ids(15, 16, 17)),
				TestedReplicas: []event.ReplicaID{"A"},
			}, nil)
		},
	}
}

// orbit5 is OrbitDB issue #557, "repo folder keeps getting locked": a
// close that overtakes the flush leaks the folder lock; the reopen and
// every later write fail. 24 events. This is the paper's Figure-10
// scalability benchmark.
//
// Reported manifestation: A's close (14) overtakes A's flush (13): the
// reopen (15) and the follow-up append (16) fail.
func orbit5() *Benchmark {
	newCluster := orbitCluster(orbit.Flags{BugLockLeak: true}, nil)
	return &Benchmark{
		Name: "OrbitDB-5", Subject: "OrbitDB", Issue: 557, Events: 24,
		Status: "closed", Reason: "misconception",
		FixedCluster: orbitCluster(orbit.Flags{}, nil),
		Trigger: ids(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
			14, 13, 15, 16, 17, 18, 19, 20, 21, 22, 23),
		Sig: fullSig,
		Build: func() (runner.Scenario, error) {
			return buildScenario("OrbitDB-5", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "append", "b1") // 0
				rec.Update("B", "flush")        // 1
				rec.Update("B", "close")        // 2
				rec.Update("B", "reopen")       // 3
				rec.Update("C", "append", "c1") // 4
				rec.Update("C", "flush")        // 5
				rec.Update("C", "close")        // 6
				rec.Update("C", "reopen")       // 7
				rec.Sync("B", "C")              // 8
				rec.Sync("C", "B")              // 9
				rec.Observe("B", "read")        // 10
				rec.Observe("C", "read")        // 11
				rec.Update("A", "append", "a1") // 12
				rec.Update("A", "flush")        // 13
				rec.Update("A", "close")        // 14
				rec.Update("A", "reopen")       // 15
				rec.Update("A", "append", "a2") // 16
				rec.Sync("A", "B")              // 17
				rec.Sync("A", "C")              // 18
				rec.Sync("B", "A")              // 19
				rec.Sync("C", "A")              // 20
				rec.Observe("A", "read")        // 21
				rec.Update("A", "flush")        // 22
				rec.Observe("A", "verify")      // 23
			}, prune.Config{
				Grouping: groups(ids(0, 1, 2, 3), ids(4, 5, 6, 7),
					ids(8, 9, 10, 11), ids(17, 18, 19, 20), ids(21, 22, 23)),
				TestedReplicas: []event.ReplicaID{"A"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(0, 4)}, // B's and C's local lifecycles commute
				},
			}, nil)
		},
	}
}
