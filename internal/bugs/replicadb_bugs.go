package bugs

import (
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/replicadb"
)

func replicadbCluster(flags replicadb.Flags) func() (*replica.Cluster, error) {
	return func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": replicadb.New(flags),
			"B": replicadb.New(flags),
			"C": replicadb.New(flags),
		}), nil
	}
}

// replicadb1 is ReplicaDB issue #79, "out of memory error": the fetch path
// ignores the buffer bound, so interleavings where fetches outpace the
// drains grow the buffer past the memory budget. 10 events.
//
// Reported manifestation: the second fetch (6) overtakes the first drain
// (5), so the buffer peaks at 6 rows against a 4-row budget.
func replicadb1() *Benchmark {
	const limit = 4
	newCluster := replicadbCluster(replicadb.Flags{BugUnboundedBuffer: true, BufferLimit: limit})
	return &Benchmark{
		Name: "ReplicaDB-1", Subject: "ReplicaDB", Issue: 79, Events: 10,
		Status: "closed", Reason: "misuse",
		FixedCluster: replicadbCluster(replicadb.Flags{BufferLimit: limit}),
		Trigger:      ids(0, 1, 2, 3, 4, 6, 5, 7, 8, 9),
		Sig:          obsSig(8, 9),
		Build: func() (runner.Scenario, error) {
			return buildScenario("ReplicaDB-1", newCluster, func(rec *runner.Recorder) {
				rec.Update("B", "insert", "r1", "x")  // 0
				rec.Sync("B", "A")                    // 1
				rec.Update("A", "insert", "k1", "v1") // 2
				rec.Update("A", "insert", "k2", "v2") // 3
				rec.Update("A", "fetch", "3")         // 4
				rec.Update("A", "drain")              // 5
				rec.Update("A", "fetch", "3")         // 6
				rec.Update("A", "drain")              // 7
				rec.Observe("A", "peakBuffer")        // 8
				rec.Observe("A", "readSink")          // 9
			}, prune.Config{
				Grouping:       groups(ids(0, 1)),
				TestedReplicas: []event.ReplicaID{"A"},
				IndependentSets: []prune.IndependenceSpec{
					{Events: ids(2, 3)}, // inserts of distinct keys commute
				},
			}, nil)
		},
	}
}

// replicadb2 is ReplicaDB issue #23, "deleted records aren't getting
// deleted from the sink tables": incremental mode skips tombstones, so a
// record replicated before its deletion lingers in the sink. 14 events.
//
// Reported manifestation: the complete transfer (10) and its sink read
// (11) overtake the delete block (7-9); the later incremental transfer
// (12) then skips the tombstone and the final read (13) still shows k1.
func replicadb2() *Benchmark {
	newCluster := replicadbCluster(replicadb.Flags{BugMissTombstones: true})
	finalize := func(c *replica.Cluster) error {
		// A deterministic final incremental transfer: the corrected
		// subject always reconciles sink and source here, so the lingering
		// record in the final state is unreachable without the defect.
		node, err := c.Node("A")
		if err != nil {
			return err
		}
		_, err = node.State.Apply(replica.Op{Name: "transferIncremental"})
		return err
	}
	return &Benchmark{
		Name: "ReplicaDB-2", Subject: "ReplicaDB", Issue: 23, Events: 14,
		Status: "closed", Reason: "misconception",
		FixedCluster: replicadbCluster(replicadb.Flags{}),
		Trigger:      ids(0, 1, 2, 3, 4, 5, 6, 10, 11, 7, 8, 9, 12, 13),
		// The report: "the sink still shows the deleted record" — the
		// post-transfer sink read plus the final source/sink state.
		Sig: func(o *runner.Outcome) string {
			return obsPart(o, []event.ID{13}) + "|" + fpPart(o)
		},
		Build: func() (runner.Scenario, error) {
			return buildScenario("ReplicaDB-2", newCluster, func(rec *runner.Recorder) {
				rec.Update("A", "insert", "k1", "v1")  // 0
				rec.Update("A", "insert", "k2", "v2")  // 1
				rec.Update("B", "insert", "k3", "v3")  // 2
				rec.Sync("B", "A")                     // 3
				rec.Update("C", "insert", "k4", "v4")  // 4
				rec.Sync("C", "A")                     // 5
				rec.Observe("A", "readSource")         // 6
				rec.Update("A", "delete", "k1")        // 7
				rec.Update("A", "delete", "k1")        // 8 doomed after 7
				rec.Update("A", "delete", "k1")        // 9 doomed after 7
				rec.Update("A", "transferComplete")    // 10
				rec.Observe("A", "readSink")           // 11
				rec.Update("A", "transferIncremental") // 12
				rec.Observe("A", "readSink")           // 13
			}, prune.Config{
				Grouping:       groups(ids(2, 3), ids(4, 5)),
				TestedReplicas: []event.ReplicaID{"A"},
				FailedOps: []prune.FailedOpsSpec{
					{Predecessors: ids(7), Successors: ids(8, 9)},
				},
			}, finalize)
		},
	}
}
