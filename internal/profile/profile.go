// Package profile implements the resource-profiling extension the paper
// names as future work (§8: "resource profiling and fuzzing"): it measures
// what each explored interleaving costs the replicated system — RDL
// operations executed, synchronization payload bytes shipped, snapshot
// sizes — and aggregates the distribution across an exploration, so that
// order-dependent resource blow-ups (like ReplicaDB's issue-#79 buffer
// growth) show up as outliers even before they violate an assertion.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
)

// Profiler accumulates resource metrics. Wrap the replica states at
// cluster construction and pass OnOutcome to the runner config; both hooks
// are safe for the runner's sequential executor and the live replayer.
type Profiler struct {
	mu sync.Mutex

	// ops counts RDL operations by name.
	ops map[string]int
	// syncBytesOut / syncBytesIn total the payload bytes produced and
	// applied.
	syncBytesOut int64
	syncBytesIn  int64
	// maxPayload is the largest single sync payload seen.
	maxPayload int
	// snapshotBytes totals checkpoint traffic.
	snapshotBytes int64

	// interleavings counts outcomes observed; failedOps totals rejections.
	interleavings int
	failedOps     int
	// maxFailedPerIL is the worst single interleaving by rejections.
	maxFailedPerIL int
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{ops: make(map[string]int)}
}

// Wrap instruments a replica state; all resource flows through the state
// are accounted to the profiler.
func (p *Profiler) Wrap(inner replica.State) replica.State {
	return &profiledState{inner: inner, p: p}
}

// OnOutcome is the runner hook counting per-interleaving outcomes.
func (p *Profiler) OnOutcome(o *runner.Outcome) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interleavings++
	p.failedOps += len(o.FailedOps)
	if len(o.FailedOps) > p.maxFailedPerIL {
		p.maxFailedPerIL = len(o.FailedOps)
	}
}

// Snapshot returns a copy of the current metrics.
func (p *Profiler) Snapshot() Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	ops := make(map[string]int, len(p.ops))
	for k, v := range p.ops {
		ops[k] = v
	}
	return Report{
		Ops:            ops,
		SyncBytesOut:   p.syncBytesOut,
		SyncBytesIn:    p.syncBytesIn,
		MaxPayload:     p.maxPayload,
		SnapshotBytes:  p.snapshotBytes,
		Interleavings:  p.interleavings,
		FailedOps:      p.failedOps,
		MaxFailedPerIL: p.maxFailedPerIL,
	}
}

// Report is a point-in-time view of the metrics.
type Report struct {
	Ops            map[string]int
	SyncBytesOut   int64
	SyncBytesIn    int64
	MaxPayload     int
	SnapshotBytes  int64
	Interleavings  int
	FailedOps      int
	MaxFailedPerIL int
}

// Render formats the report for humans.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interleavings explored: %d\n", r.Interleavings)
	fmt.Fprintf(&b, "failed ops: %d total, worst interleaving %d\n", r.FailedOps, r.MaxFailedPerIL)
	fmt.Fprintf(&b, "sync traffic: %d B out, %d B in, largest payload %d B\n",
		r.SyncBytesOut, r.SyncBytesIn, r.MaxPayload)
	fmt.Fprintf(&b, "checkpoint traffic: %d B\n", r.SnapshotBytes)
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  op %-24s %d\n", name, r.Ops[name])
	}
	return b.String()
}

// profiledState instruments one replica's state.
type profiledState struct {
	inner replica.State
	p     *Profiler
}

var _ replica.State = (*profiledState)(nil)

func (s *profiledState) Apply(op replica.Op) (string, error) {
	s.p.mu.Lock()
	s.p.ops[op.Name]++
	s.p.mu.Unlock()
	return s.inner.Apply(op)
}

func (s *profiledState) SyncPayload() ([]byte, error) {
	payload, err := s.inner.SyncPayload()
	if err == nil {
		s.p.mu.Lock()
		s.p.syncBytesOut += int64(len(payload))
		if len(payload) > s.p.maxPayload {
			s.p.maxPayload = len(payload)
		}
		s.p.mu.Unlock()
	}
	return payload, err
}

func (s *profiledState) ApplySync(payload []byte) error {
	s.p.mu.Lock()
	s.p.syncBytesIn += int64(len(payload))
	s.p.mu.Unlock()
	return s.inner.ApplySync(payload)
}

func (s *profiledState) Snapshot() ([]byte, error) {
	snap, err := s.inner.Snapshot()
	if err == nil {
		s.p.mu.Lock()
		s.p.snapshotBytes += int64(len(snap))
		s.p.mu.Unlock()
	}
	return snap, err
}

func (s *profiledState) Restore(snap []byte) error { return s.inner.Restore(snap) }

func (s *profiledState) Fingerprint() string { return s.inner.Fingerprint() }
