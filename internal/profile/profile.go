// Package profile implements the resource-profiling extension the paper
// names as future work (§8: "resource profiling and fuzzing"): it measures
// what each explored interleaving costs the replicated system — RDL
// operations executed, synchronization payload bytes shipped, snapshot
// sizes — and aggregates the distribution across an exploration, so that
// order-dependent resource blow-ups (like ReplicaDB's issue-#79 buffer
// growth) show up as outliers even before they violate an assertion.
//
// Since the telemetry layer landed, the profiler is a thin veneer over a
// telemetry.Registry: every figure it tracks is an atomic counter or
// running-max gauge under the profile.* namespace, so profiling shares the
// engine's export surface (expvar, /metrics, snapshot merging) and is safe
// for a single Profiler shared across a multi-worker pool, where every
// worker's cluster wraps states against the same instance.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Profiler accumulates resource metrics. Wrap the replica states at
// cluster construction and pass OnOutcome to the runner config; both hooks
// are lock-free and safe from concurrent pool workers.
type Profiler struct {
	reg *telemetry.Registry

	// opCounters caches op-name → counter so Apply never re-derives the
	// metric name or takes the registry's registration lock.
	opCounters sync.Map // string → *telemetry.Counter

	syncBytesOut  *telemetry.Counter
	syncBytesIn   *telemetry.Counter
	snapshotBytes *telemetry.Counter
	interleavings *telemetry.Counter
	failedOps     *telemetry.Counter
	maxPayload    *telemetry.Gauge
	maxFailed     *telemetry.Gauge
}

// New returns a profiler backed by a private registry.
func New() *Profiler { return NewWith(telemetry.New()) }

// NewWith returns a profiler that registers its metrics on reg, so resource
// figures export through the same status server and snapshots as the
// engine's own telemetry. Metric names: profile.op.<name>,
// profile.sync_bytes_{out,in}, profile.snapshot_bytes,
// profile.interleavings, profile.failed_ops, and the running maxima
// profile.max_payload_bytes and profile.max_failed_per_interleaving.
func NewWith(reg *telemetry.Registry) *Profiler {
	return &Profiler{
		reg:           reg,
		syncBytesOut:  reg.Counter("profile.sync_bytes_out"),
		syncBytesIn:   reg.Counter("profile.sync_bytes_in"),
		snapshotBytes: reg.Counter("profile.snapshot_bytes"),
		interleavings: reg.Counter("profile.interleavings"),
		failedOps:     reg.Counter("profile.failed_ops"),
		maxPayload:    reg.Gauge("profile.max_payload_bytes"),
		maxFailed:     reg.Gauge("profile.max_failed_per_interleaving"),
	}
}

// Registry exposes the backing registry (to attach a status server or merge
// snapshots). Nil when the profiler itself is nil.
func (p *Profiler) Registry() *telemetry.Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Wrap instruments a replica state; all resource flows through the state
// are accounted to the profiler.
func (p *Profiler) Wrap(inner replica.State) replica.State {
	return &profiledState{inner: inner, p: p}
}

// OnOutcome is the runner hook counting per-interleaving outcomes.
func (p *Profiler) OnOutcome(o *runner.Outcome) {
	p.interleavings.Inc()
	p.failedOps.Add(int64(len(o.FailedOps)))
	p.maxFailed.Max(int64(len(o.FailedOps)))
}

// opCounter returns the cached counter for an op name.
func (p *Profiler) opCounter(name string) *telemetry.Counter {
	if c, ok := p.opCounters.Load(name); ok {
		return c.(*telemetry.Counter)
	}
	c, _ := p.opCounters.LoadOrStore(name, p.reg.Counter("profile.op."+name))
	return c.(*telemetry.Counter)
}

// Snapshot returns a copy of the current metrics.
func (p *Profiler) Snapshot() Report {
	snap := p.reg.Snapshot()
	ops := make(map[string]int)
	for name, v := range snap.Counters {
		if op, ok := strings.CutPrefix(name, "profile.op."); ok {
			ops[op] = int(v)
		}
	}
	return Report{
		Ops:            ops,
		SyncBytesOut:   p.syncBytesOut.Value(),
		SyncBytesIn:    p.syncBytesIn.Value(),
		MaxPayload:     int(p.maxPayload.Value()),
		SnapshotBytes:  p.snapshotBytes.Value(),
		Interleavings:  int(p.interleavings.Value()),
		FailedOps:      int(p.failedOps.Value()),
		MaxFailedPerIL: int(p.maxFailed.Value()),
	}
}

// Report is a point-in-time view of the metrics.
type Report struct {
	Ops            map[string]int
	SyncBytesOut   int64
	SyncBytesIn    int64
	MaxPayload     int
	SnapshotBytes  int64
	Interleavings  int
	FailedOps      int
	MaxFailedPerIL int
}

// Render formats the report for humans.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "interleavings explored: %d\n", r.Interleavings)
	fmt.Fprintf(&b, "failed ops: %d total, worst interleaving %d\n", r.FailedOps, r.MaxFailedPerIL)
	fmt.Fprintf(&b, "sync traffic: %d B out, %d B in, largest payload %d B\n",
		r.SyncBytesOut, r.SyncBytesIn, r.MaxPayload)
	fmt.Fprintf(&b, "checkpoint traffic: %d B\n", r.SnapshotBytes)
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  op %-24s %d\n", name, r.Ops[name])
	}
	return b.String()
}

// profiledState instruments one replica's state.
type profiledState struct {
	inner replica.State
	p     *Profiler
}

var _ replica.State = (*profiledState)(nil)

func (s *profiledState) Apply(op replica.Op) (string, error) {
	s.p.opCounter(op.Name).Inc()
	return s.inner.Apply(op)
}

func (s *profiledState) SyncPayload() ([]byte, error) {
	payload, err := s.inner.SyncPayload()
	if err == nil {
		s.p.syncBytesOut.Add(int64(len(payload)))
		s.p.maxPayload.Max(int64(len(payload)))
	}
	return payload, err
}

func (s *profiledState) ApplySync(payload []byte) error {
	s.p.syncBytesIn.Add(int64(len(payload)))
	return s.inner.ApplySync(payload)
}

func (s *profiledState) Snapshot() ([]byte, error) {
	snap, err := s.inner.Snapshot()
	if err == nil {
		s.p.snapshotBytes.Add(int64(len(snap)))
	}
	return snap, err
}

func (s *profiledState) Restore(snap []byte) error { return s.inner.Restore(snap) }

func (s *profiledState) Fingerprint() string { return s.inner.Fingerprint() }
