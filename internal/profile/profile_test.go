package profile

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/roshi"
	"github.com/er-pi/erpi/internal/telemetry"
)

// profiledScenario builds a Roshi workload whose replicas are wrapped by
// the profiler.
func profiledScenario(t *testing.T, p *Profiler) runner.Scenario {
	t.Helper()
	newCluster := func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": p.Wrap(roshi.New(roshi.Flags{})),
			"B": p.Wrap(roshi.New(roshi.Flags{})),
		}), nil
	}
	cluster, err := newCluster()
	if err != nil {
		t.Fatal(err)
	}
	rec := runner.NewRecorder(cluster)
	rec.Update("A", "insert", "k", "x", "1")
	rec.Sync("A", "B")
	rec.Update("B", "insert", "k", "y", "2")
	rec.Sync("B", "A")
	log, err := rec.Log()
	if err != nil {
		t.Fatal(err)
	}
	return runner.Scenario{Name: "profiled", Log: log, NewCluster: newCluster}
}

func TestProfilerAccountsExploration(t *testing.T) {
	p := New()
	s := profiledScenario(t, p)
	res, err := runner.Run(s, runner.Config{
		Mode:      runner.ModeDFS,
		OnOutcome: p.OnOutcome,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Explored != 24 {
		t.Fatalf("explored %d, want all 24", res.Explored)
	}
	r := p.Snapshot()
	if r.Interleavings != 24 {
		t.Fatalf("profiled %d interleavings, want 24", r.Interleavings)
	}
	// Every interleaving executes two inserts; the recording adds two more.
	if got := r.Ops["insert"]; got != 2*24+2 {
		t.Fatalf("insert count = %d, want 50", got)
	}
	if r.SyncBytesOut == 0 || r.SyncBytesIn == 0 {
		t.Fatal("sync traffic unaccounted")
	}
	if r.MaxPayload <= 0 || int64(r.MaxPayload) > r.SyncBytesOut {
		t.Fatalf("MaxPayload = %d", r.MaxPayload)
	}
	if r.SnapshotBytes == 0 {
		t.Fatal("checkpoint traffic unaccounted")
	}

	rendered := r.Render()
	for _, want := range []string{"interleavings explored: 24", "sync traffic", "op insert"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

// TestProfilerAggregatesAcrossWorkers: one Profiler shared by every pool
// worker's cluster totals resources exactly as the sequential run does —
// the hooks are atomic, and the pool explores the identical interleaving
// set. Snapshot bytes are excluded: each worker owns a cluster, so
// checkpoint traffic legitimately scales with the pool.
func TestProfilerAggregatesAcrossWorkers(t *testing.T) {
	run := func(workers int) (*Profiler, Report) {
		t.Helper()
		reg := telemetry.New()
		p := NewWith(reg)
		s := profiledScenario(t, p)
		res, err := runner.Run(s, runner.Config{
			Mode:      runner.ModeDFS,
			Workers:   workers,
			OnOutcome: p.OnOutcome,
			Telemetry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exhausted || res.Explored != 24 {
			t.Fatalf("workers=%d explored %d, want all 24", workers, res.Explored)
		}
		return p, p.Snapshot()
	}

	_, seq := run(1)
	p, par := run(8)

	if par.Interleavings != seq.Interleavings || par.Interleavings != 24 {
		t.Fatalf("interleavings: parallel %d, sequential %d", par.Interleavings, seq.Interleavings)
	}
	for name, want := range seq.Ops {
		if got := par.Ops[name]; got != want {
			t.Fatalf("op %s: parallel %d, sequential %d", name, got, want)
		}
	}
	if par.SyncBytesOut != seq.SyncBytesOut || par.SyncBytesIn != seq.SyncBytesIn {
		t.Fatalf("sync traffic: parallel %d/%d, sequential %d/%d",
			par.SyncBytesOut, par.SyncBytesIn, seq.SyncBytesOut, seq.SyncBytesIn)
	}
	if par.MaxPayload != seq.MaxPayload || par.FailedOps != seq.FailedOps {
		t.Fatalf("maxima: parallel payload=%d failed=%d, sequential payload=%d failed=%d",
			par.MaxPayload, par.FailedOps, seq.MaxPayload, seq.FailedOps)
	}
	if par.SnapshotBytes < seq.SnapshotBytes {
		t.Fatalf("snapshot traffic shrank under the pool: %d < %d", par.SnapshotBytes, seq.SnapshotBytes)
	}

	// The profile rides the shared registry: its counters sit next to the
	// engine's own metrics in one snapshot.
	snap := p.Registry().Snapshot()
	if snap.Counters["profile.interleavings"] != 24 {
		t.Fatalf("profile.interleavings = %d on the shared registry", snap.Counters["profile.interleavings"])
	}
	if snap.Counters["runner.explored"] != 24 {
		t.Fatalf("runner.explored = %d on the shared registry", snap.Counters["runner.explored"])
	}
}

func TestProfilerSeesOrderDependentCost(t *testing.T) {
	// The profiler's purpose: resource use varies with the interleaving.
	// Sync payloads carry whatever state exists when the sync runs, so the
	// max payload across exploration exceeds the payload of the leanest
	// order. We verify max > min by profiling two single-interleaving runs.
	lean := New()
	s := profiledScenario(t, lean)
	// Interleaving where syncs run before the inserts: empty payloads.
	if _, err := runner.ExecuteOnce(s, []event.ID{1, 3, 0, 2}); err != nil {
		t.Fatal(err)
	}
	leanBytes := lean.Snapshot().SyncBytesOut

	heavy := New()
	s2 := profiledScenario(t, heavy)
	// Recording order: syncs carry the inserts.
	if _, err := runner.ExecuteOnce(s2, []event.ID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	heavyBytes := heavy.Snapshot().SyncBytesOut

	if heavyBytes <= leanBytes {
		t.Fatalf("expected order-dependent sync cost: heavy=%d lean=%d", heavyBytes, leanBytes)
	}
}
