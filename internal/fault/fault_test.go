package fault

import (
	"errors"
	"testing"

	"github.com/er-pi/erpi/internal/event"
)

func TestValidateRejectsMalformedFaults(t *testing.T) {
	bad := []Fault{
		{Kind: CrashReplica},                       // no replica
		{Kind: Partition, A: "A", B: "A"},          // self-link
		{Kind: Partition, A: "A"},                  // missing peer
		{Kind: TruncatePayload, KeepBytes: -1},     // negative length
		{Kind: CrashReplica, Replica: "A", At: -1}, // negative position
		{Kind: Kind(99)},                           // unknown kind
		{Kind: LockOutage, Duration: -2},           // negative window
		{Kind: CrashReplica, Replica: "A", Prob: 0.5, Interleaving: -1},
	}
	for i, f := range bad {
		if err := (Schedule{Faults: []Fault{f}}).Validate(); err == nil {
			t.Errorf("fault %d (%s) should be rejected", i, f)
		}
	}
	ok := Schedule{Seed: 7, Faults: []Fault{
		{Kind: CrashReplica, Replica: "A", At: 2, Duration: 3},
		{Kind: Partition, A: "A", B: "B", At: 0, Duration: 1},
		{Kind: LockOutage, At: 1},
		{Kind: TruncatePayload, At: 4, KeepBytes: 8},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if _, err := NewInjector(Schedule{Faults: []Fault{bad[0]}}); err == nil {
		t.Fatal("NewInjector must reject invalid schedules")
	}
}

func TestCrashWindow(t *testing.T) {
	in, err := NewInjector(Schedule{Faults: []Fault{
		{Kind: CrashReplica, Replica: "B", At: 2, Duration: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in.Begin(1)
	if acts := in.At(0); len(acts) != 0 {
		t.Fatalf("position 0: unexpected actions %v", acts)
	}
	if in.ReplicaDown("B") {
		t.Fatal("B down before the crash fires")
	}
	in.At(1)
	acts := in.At(2)
	if len(acts) != 1 || acts[0].Kind != ActionCrash || acts[0].Replica != "B" {
		t.Fatalf("position 2: actions = %v, want one crash of B", acts)
	}
	for pos := 2; pos <= 4; pos++ {
		if pos > 2 {
			in.At(pos)
		}
		if !in.ReplicaDown("B") {
			t.Fatalf("position %d: B should be down", pos)
		}
		if in.ReplicaDown("A") {
			t.Fatalf("position %d: A should be up", pos)
		}
	}
	acts = in.At(5)
	if len(acts) != 1 || acts[0].Kind != ActionRestart || acts[0].Replica != "B" {
		t.Fatalf("position 5: actions = %v, want one restart of B", acts)
	}
	if in.ReplicaDown("B") {
		t.Fatal("B still down after its window")
	}

	// An immediate-restart crash rolls back without downtime.
	in2, err := NewInjector(Schedule{Faults: []Fault{
		{Kind: CrashReplica, Replica: "A", At: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	in2.Begin(1)
	in2.At(0)
	acts = in2.At(1)
	if len(acts) != 1 || acts[0].Kind != ActionCrash {
		t.Fatalf("actions = %v, want one crash", acts)
	}
	if in2.ReplicaDown("A") {
		t.Fatal("duration-0 crash must not leave the replica down")
	}
}

func TestInterleavingSelector(t *testing.T) {
	in, err := NewInjector(Schedule{Faults: []Fault{
		{Kind: CrashReplica, Replica: "A", At: 0, Interleaving: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for index := 1; index <= 5; index++ {
		in.Begin(index)
		acts := in.At(0)
		if index == 3 && len(acts) != 1 {
			t.Fatalf("interleaving 3 must crash, got %v", acts)
		}
		if index != 3 && len(acts) != 0 {
			t.Fatalf("interleaving %d must be fault-free, got %v", index, acts)
		}
		in.Finish()
	}
}

func TestProbabilisticArmingIsSeeded(t *testing.T) {
	sched := Schedule{Seed: 99, Faults: []Fault{
		{Kind: LockOutage, At: 0, Duration: 100, Prob: 0.5},
	}}
	roll := func() []bool {
		in, err := NewInjector(sched)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 0, 50)
		for index := 1; index <= 50; index++ {
			in.Begin(index)
			in.At(0)
			out = append(out, in.LockServerDown())
		}
		return out
	}
	a, b := roll(), roll()
	armedCount := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving %d: arming not reproducible", i+1)
		}
		if a[i] {
			armedCount++
		}
	}
	if armedCount == 0 || armedCount == len(a) {
		t.Fatalf("Prob=0.5 armed %d/%d interleavings — not probabilistic", armedCount, len(a))
	}
}

// TestProbabilisticArmingIsOrderIndependent pins the property the parallel
// exploration engine depends on: arming for interleaving N is a pure
// function of (schedule seed, N), not of which interleavings were begun
// before it, so per-worker injector clones visiting indices in any order
// arm exactly like a single sequential injector.
func TestProbabilisticArmingIsOrderIndependent(t *testing.T) {
	sched := Schedule{Seed: 12345, Faults: []Fault{
		{Kind: LockOutage, At: 0, Duration: 100, Prob: 0.5},
	}}
	armedAt := func(in *Injector, index int) bool {
		in.Begin(index)
		in.At(0)
		down := in.LockServerDown()
		in.Finish()
		return down
	}

	// Sequential reference: one injector visiting 1..32 in order.
	seq, err := NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, 33)
	for index := 1; index <= 32; index++ {
		want[index] = armedAt(seq, index)
	}

	// A clone visiting the same indices in reverse, and another sampling
	// only the odd ones, must agree everywhere they look.
	rev, err := NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	for index := 32; index >= 1; index-- {
		if got := armedAt(rev, index); got != want[index] {
			t.Fatalf("index %d: reverse-order clone armed=%v, sequential=%v", index, got, want[index])
		}
	}
	odd, err := NewInjector(sched)
	if err != nil {
		t.Fatal(err)
	}
	for index := 1; index <= 32; index += 2 {
		if got := armedAt(odd, index); got != want[index] {
			t.Fatalf("index %d: sparse clone armed=%v, sequential=%v", index, got, want[index])
		}
	}

	// Retrying (re-Begin) the same index re-rolls the same arming.
	for index := 1; index <= 32; index++ {
		if got := armedAt(seq, index); got != want[index] {
			t.Fatalf("index %d: retry re-rolled differently", index)
		}
	}
}

func TestPartitionWindowDrivesPartitioner(t *testing.T) {
	in, err := NewInjector(Schedule{Faults: []Fault{
		{Kind: Partition, A: "A", B: "B", At: 1, Duration: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingPartitioner{}
	in.Bind(rec)
	in.Begin(1)
	in.At(0)
	if in.Partitioned("A", "B") {
		t.Fatal("partitioned before the window")
	}
	in.At(1)
	if !in.Partitioned("A", "B") || !in.Partitioned("B", "A") {
		t.Fatal("window must sever both directions")
	}
	if in.Partitioned("A", "M") {
		t.Fatal("unrelated link severed")
	}
	in.At(2)
	if !in.Partitioned("A", "B") {
		t.Fatal("window spans [At, At+Duration]")
	}
	in.At(3)
	if in.Partitioned("A", "B") {
		t.Fatal("window must close after At+Duration")
	}
	in.Finish()
	if got := rec.calls; len(got) != 2 || got[0] != "partition(A,B)" || got[1] != "heal(A,B)" {
		t.Fatalf("partitioner saw %v", got)
	}

	// A window still open at the end of the interleaving heals on Finish.
	rec.calls = nil
	in.Begin(2)
	in.At(0)
	in.At(1)
	in.Finish()
	if got := rec.calls; len(got) != 2 || got[1] != "heal(A,B)" {
		t.Fatalf("Finish must heal open windows, partitioner saw %v", got)
	}
}

type recordingPartitioner struct{ calls []string }

func (r *recordingPartitioner) Partition(a, b event.ReplicaID) {
	r.calls = append(r.calls, "partition("+string(a)+","+string(b)+")")
}
func (r *recordingPartitioner) Heal(a, b event.ReplicaID) {
	r.calls = append(r.calls, "heal("+string(a)+","+string(b)+")")
}

func TestLockHookAndPayloadTruncation(t *testing.T) {
	in, err := NewInjector(Schedule{Faults: []Fault{
		{Kind: LockOutage, At: 1, Duration: 1},
		{Kind: TruncatePayload, At: 2, KeepBytes: 3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	hook := in.LockHook()
	in.Begin(1)
	in.At(0)
	if err := hook("SET", nil); err != nil {
		t.Fatalf("outage outside window: %v", err)
	}
	in.At(1)
	if err := hook("SET", nil); !errors.Is(err, ErrLockServerDown) {
		t.Fatalf("hook inside window = %v, want ErrLockServerDown", err)
	}
	payload := []byte("abcdefgh")
	if got := in.Payload(1, payload); len(got) != 8 {
		t.Fatalf("truncation fired at the wrong position: %q", got)
	}
	in.At(2)
	if err := hook("SET", nil); !errors.Is(err, ErrLockServerDown) {
		t.Fatalf("window spans [At, At+Duration]: %v", err)
	}
	got := in.Payload(2, payload)
	if string(got) != "abc" {
		t.Fatalf("truncated payload = %q, want abc", got)
	}
	if string(payload) != "abcdefgh" {
		t.Fatal("input payload mutated")
	}
	in.At(3)
	if err := hook("SET", nil); err != nil {
		t.Fatalf("outage past window: %v", err)
	}
}
