// Package fault is ER-π's deterministic fault-injection subsystem. The
// paper's evaluation ran on a physical three-machine testbed where
// replicas, the lock server, and the network could genuinely fail
// mid-replay; this package reproduces those failure modes as a seeded,
// reproducible Schedule keyed to replay progress, so that the engine's
// graceful degradation is itself testable and every chaotic run can be
// replayed bit-for-bit.
//
// A Schedule declares faults that fire at (exploration index, event
// position) coordinates:
//
//   - CrashReplica: the replica loses all volatile state accumulated since
//     the interleaving began (restored from its durable checkpoint through
//     the cluster's Checkpoint/Reset machinery) and optionally stays down
//     for a window of event positions, during which its events fail with
//     ErrReplicaDown.
//   - LockOutage: the lock-server client's requests fail with
//     ErrLockServerDown for a window, exercising reconnect-with-backoff.
//   - Partition: the link between two replicas is severed for a window;
//     synchronizations across it are dropped. When a Partitioner (e.g.
//     transport.Network) is bound, the window drives its Partition/Heal.
//   - TruncatePayload: a sync payload is cut to KeepBytes bytes in flight,
//     modelling a torn message.
//
// The executor consults one Injector per executor: Begin at each
// interleaving, At before each event, Finish afterwards. Arming — including
// probabilistic arming — is a pure function of (schedule seed, exploration
// index), never of the order in which interleavings are begun, so the
// parallel exploration engine can hand every worker its own Injector built
// from the same Schedule and the injected faults stay bit-identical to a
// sequential run. With an empty Schedule every query is a no-op, so a
// fault-free schedule is observationally identical to running without an
// injector (a soundness property pinned by the runner's tests).
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/telemetry"
)

// ErrReplicaDown marks an event that could not execute because its replica
// (or, for a synchronization, its sender) was crashed at that point of the
// schedule.
var ErrReplicaDown = errors.New("fault: replica down")

// ErrLockServerDown marks a lock-server request rejected by an injected
// outage window.
var ErrLockServerDown = errors.New("fault: lock server unreachable")

// Kind classifies a fault.
type Kind int

// Fault kinds.
const (
	// CrashReplica crashes Replica at position At: state since the
	// interleaving's checkpoint is lost, and the replica stays down for
	// Duration further positions before restarting.
	CrashReplica Kind = iota + 1
	// LockOutage makes the lock server unreachable for positions
	// [At, At+Duration].
	LockOutage
	// Partition severs the A–B link for positions [At, At+Duration].
	Partition
	// TruncatePayload cuts the sync payload executed at position At down
	// to KeepBytes bytes.
	TruncatePayload
)

var kindNames = map[Kind]string{
	CrashReplica:    "crash",
	LockOutage:      "lock-outage",
	Partition:       "partition",
	TruncatePayload: "truncate",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault declares one fault keyed to replay progress.
type Fault struct {
	// Kind selects the failure mode.
	Kind Kind `json:"kind"`
	// Interleaving is the 1-based exploration index the fault arms in;
	// zero arms it in every interleaving.
	Interleaving int `json:"interleaving,omitempty"`
	// At is the 0-based event position within the interleaving at which
	// the fault fires.
	At int `json:"at"`
	// Duration extends the fault over [At, At+Duration] event positions.
	// For CrashReplica, zero means crash-and-restart-immediately: the
	// state rollback happens but no events are lost to downtime.
	Duration int `json:"duration,omitempty"`
	// Replica is the CrashReplica target.
	Replica event.ReplicaID `json:"replica,omitempty"`
	// A and B name the Partition link.
	A event.ReplicaID `json:"a,omitempty"`
	B event.ReplicaID `json:"b,omitempty"`
	// KeepBytes is the TruncatePayload surviving prefix length.
	KeepBytes int `json:"keep_bytes,omitempty"`
	// Prob arms the fault per interleaving with this probability, rolled
	// from the schedule's seeded generator; zero or >= 1 arms it always.
	Prob float64 `json:"prob,omitempty"`
}

func (f Fault) String() string {
	switch f.Kind {
	case CrashReplica:
		return fmt.Sprintf("crash(%s)@%d+%d", f.Replica, f.At, f.Duration)
	case LockOutage:
		return fmt.Sprintf("lock-outage@%d+%d", f.At, f.Duration)
	case Partition:
		return fmt.Sprintf("partition(%s,%s)@%d+%d", f.A, f.B, f.At, f.Duration)
	case TruncatePayload:
		return fmt.Sprintf("truncate(%d)@%d", f.KeepBytes, f.At)
	default:
		return fmt.Sprintf("fault(%d)", int(f.Kind))
	}
}

// Validate rejects malformed faults.
func (f Fault) Validate() error {
	switch {
	case f.Kind == CrashReplica && f.Replica == "":
		return errors.New("fault: crash needs a replica")
	case f.Kind == Partition && (f.A == "" || f.B == "" || f.A == f.B):
		return errors.New("fault: partition needs two distinct replicas")
	case f.Kind == TruncatePayload && f.KeepBytes < 0:
		return errors.New("fault: negative truncation length")
	case f.At < 0 || f.Duration < 0 || f.Interleaving < 0:
		return errors.New("fault: negative schedule coordinate")
	case f.Kind < CrashReplica || f.Kind > TruncatePayload:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
	return nil
}

// Schedule is a reproducible set of faults: equal schedules injected into
// equal runs produce equal behaviour.
type Schedule struct {
	// Seed drives probabilistic arming (Fault.Prob).
	Seed int64 `json:"seed"`
	// Faults are the declared faults.
	Faults []Fault `json:"faults"`
}

// Validate rejects schedules containing malformed faults.
func (s Schedule) Validate() error {
	for i, f := range s.Faults {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// ActionKind classifies an injector action the executor must apply.
type ActionKind int

// Action kinds.
const (
	// ActionCrash asks the executor to roll Replica back to its durable
	// checkpoint.
	ActionCrash ActionKind = iota + 1
	// ActionRestart reports a crashed replica coming back (no executor
	// work: the rollback happened at crash time).
	ActionRestart
)

// Action is one state change the executor applies at an event position.
type Action struct {
	Kind    ActionKind
	Replica event.ReplicaID
}

// Partitioner receives partition windows, letting the injector drive a real
// transport (transport.Network implements it).
type Partitioner interface {
	Partition(a, b event.ReplicaID)
	Heal(a, b event.ReplicaID)
}

type linkKey struct{ a, b event.ReplicaID }

func link(a, b event.ReplicaID) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// Injector evaluates a Schedule against replay progress. Safe for
// concurrent use (the live replay path queries it from one goroutine per
// replica). The zero-cost path matters: with no armed faults every query
// returns immediately.
type Injector struct {
	mu    sync.Mutex
	sched Schedule

	index int    // current 1-based interleaving index
	pos   int    // last position handed to At
	armed []bool // per schedule fault, armed for the current interleaving

	downUntil map[event.ReplicaID]int // position at which a crashed replica restarts
	healed    map[int]bool            // partition faults already healed this interleaving
	partner   Partitioner

	// Telemetry counters (nil-safe; strictly observational — incrementing
	// them must never influence arming or firing decisions).
	ctrArmed *telemetry.Counter // faults armed across interleavings
	ctrFired *telemetry.Counter // fault effects applied
}

// SetCounters attaches telemetry counters for faults armed per
// interleaving and fault effects actually applied (crashes, partition
// cuts, payload truncations, lock-outage rejections). Nil counters (or
// never calling SetCounters) keep the injector unobserved.
func (in *Injector) SetCounters(armed, fired *telemetry.Counter) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ctrArmed = armed
	in.ctrFired = fired
}

// NewInjector builds an injector over a schedule. An invalid schedule
// returns an error; an empty one yields a no-op injector.
func NewInjector(sched Schedule) (*Injector, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	faults := make([]Fault, len(sched.Faults))
	copy(faults, sched.Faults)
	sched.Faults = faults
	return &Injector{
		sched:     sched,
		armed:     make([]bool, len(sched.Faults)),
		downUntil: make(map[event.ReplicaID]int),
		healed:    make(map[int]bool),
	}, nil
}

// armSeed mixes the schedule seed with an exploration index (splitmix64
// finalizer) into the seed of that interleaving's arming stream. Keying the
// stream by index — rather than drawing from one generator in Begin order —
// makes arming independent of exploration order and of how many injector
// clones exist, which is what keeps parallel workers bit-identical to the
// sequential engine.
func armSeed(seed int64, index int) int64 {
	x := uint64(seed) ^ uint64(index)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Bind forwards partition windows to a real transport. Pass nil to detach.
func (in *Injector) Bind(p Partitioner) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.partner = p
}

// Begin arms the schedule for one interleaving (1-based exploration index).
// Probabilistic faults are rolled from a stream keyed by (schedule seed,
// index): arming depends only on the interleaving's index, so injector
// clones on parallel workers arm identically and retries of the same
// interleaving re-roll the same values.
func (in *Injector) Begin(index int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.index = index
	in.pos = -1
	for id := range in.downUntil {
		delete(in.downUntil, id)
	}
	for id := range in.healed {
		delete(in.healed, id)
	}
	var rng *rand.Rand
	for i, f := range in.sched.Faults {
		armed := f.Interleaving == 0 || f.Interleaving == index
		if armed && f.Prob > 0 && f.Prob < 1 {
			if rng == nil {
				rng = rand.New(rand.NewSource(armSeed(in.sched.Seed, index)))
			}
			armed = rng.Float64() < f.Prob
		}
		in.armed[i] = armed
		if armed {
			in.ctrArmed.Inc()
		}
	}
}

// AnyArmed reports whether any fault in the schedule is armed for the
// current interleaving (i.e. since the last Begin). The prefix cache
// uses this to bypass snapshot reuse entirely on fault-carrying
// interleavings: a crash or truncation mid-run makes cached prefix
// states unrepresentative, so those interleavings replay from a clean
// genesis checkpoint.
func (in *Injector) AnyArmed() bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, a := range in.armed {
		if a {
			return true
		}
	}
	return false
}

// At advances the injector to event position pos of the current
// interleaving and returns the actions the executor must apply before
// executing that event. Partition windows bound via Bind are driven here.
func (in *Injector) At(pos int) []Action {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.pos = pos
	var actions []Action
	for rep, until := range in.downUntil {
		if pos >= until {
			delete(in.downUntil, rep)
			actions = append(actions, Action{Kind: ActionRestart, Replica: rep})
		}
	}
	for i, f := range in.sched.Faults {
		if !in.armed[i] {
			continue
		}
		switch f.Kind {
		case CrashReplica:
			if pos == f.At {
				actions = append(actions, Action{Kind: ActionCrash, Replica: f.Replica})
				in.ctrFired.Inc()
				if f.Duration > 0 {
					in.downUntil[f.Replica] = f.At + f.Duration + 1
				}
			}
		case Partition:
			if in.partner == nil {
				continue
			}
			if pos == f.At {
				in.partner.Partition(f.A, f.B)
				in.ctrFired.Inc()
			} else if pos > f.At+f.Duration && !in.healed[i] {
				in.healed[i] = true
				in.partner.Heal(f.A, f.B)
			}
		}
	}
	return actions
}

// Finish closes the current interleaving: any partition window still open
// on a bound transport is healed, so the next interleaving starts clean.
func (in *Injector) Finish() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.partner != nil {
		for i, f := range in.sched.Faults {
			if in.armed[i] && f.Kind == Partition && !in.healed[i] {
				in.healed[i] = true
				in.partner.Heal(f.A, f.B)
			}
		}
	}
	for id := range in.downUntil {
		delete(in.downUntil, id)
	}
}

// ReplicaDown reports whether rep is inside a crash downtime window at the
// current position.
func (in *Injector) ReplicaDown(rep event.ReplicaID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	until, ok := in.downUntil[rep]
	return ok && in.pos < until
}

// Partitioned reports whether the a–b link is severed at the current
// position.
func (in *Injector) Partitioned(a, b event.ReplicaID) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	want := link(a, b)
	for i, f := range in.sched.Faults {
		if !in.armed[i] || f.Kind != Partition {
			continue
		}
		if link(f.A, f.B) == want && in.pos >= f.At && in.pos <= f.At+f.Duration {
			return true
		}
	}
	return false
}

// LockServerDown reports whether a lock-server outage window covers the
// current position.
func (in *Injector) LockServerDown() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.sched.Faults {
		if !in.armed[i] || f.Kind != LockOutage {
			continue
		}
		if in.pos >= f.At && in.pos <= f.At+f.Duration {
			return true
		}
	}
	return false
}

// LockHook adapts the injector into a lockserver client fault hook: during
// an outage window every request fails with ErrLockServerDown.
func (in *Injector) LockHook() func(op string, args []string) error {
	return func(op string, args []string) error {
		if in.LockServerDown() {
			in.mu.Lock()
			in.ctrFired.Inc()
			in.mu.Unlock()
			return ErrLockServerDown
		}
		return nil
	}
}

// Payload applies any armed truncation at position pos to a sync payload,
// returning the (possibly shortened) bytes. The input is never mutated.
func (in *Injector) Payload(pos int, payload []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, f := range in.sched.Faults {
		if !in.armed[i] || f.Kind != TruncatePayload || f.At != pos {
			continue
		}
		if f.KeepBytes < len(payload) {
			payload = payload[:f.KeepBytes:f.KeepBytes]
			in.ctrFired.Inc()
		}
	}
	return payload
}
