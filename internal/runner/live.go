package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/telemetry"
)

// ExecuteLive replays one interleaving the way a deployed ER-π session
// does (paper §4.3): one goroutine per replica invokes that replica's
// proxied RDL functions in the interleaving's order, and a TurnGate — the
// in-process LocalGate or the lock-server-backed DistGate — blocks each
// call until its scheduled turn. The returned outcome is semantically
// identical to the sequential ExecuteOnce (a property pinned by tests);
// the live path exists to exercise the real concurrency and distributed
// locking machinery.
//
// newGate builds one gate per replica; with proxy.NewLocalGate a single
// shared gate works, with DistGate each replica passes its own client.
func ExecuteLive(s Scenario, il interleave.Interleaving, newGate func(rep event.ReplicaID) proxy.TurnGate) (*Outcome, error) {
	return ExecuteLiveContext(context.Background(), s, il, newGate, nil, nil)
}

// ExecuteLiveContext is ExecuteLive with context cancellation, optional
// fault injection, and optional telemetry. Cancelling ctx unblocks every
// replica goroutine waiting on its turn gate (including DMutex.Lock /
// Sequencer.WaitTurn over a lock server), so a wedged replay returns
// promptly instead of hanging. A non-nil injector is consulted before
// every scheduled call, with the same semantics as the sequential
// executor. A non-nil registry records the replay as one execute span plus
// a live.events counter of scheduled calls applied.
func ExecuteLiveContext(ctx context.Context, s Scenario, il interleave.Interleaving, newGate func(rep event.ReplicaID) proxy.TurnGate, inj *fault.Injector, reg *telemetry.Registry) (*Outcome, error) {
	liveSpan := reg.StartSpan(telemetry.StageExecute, 1, telemetry.CoordinatorWorker)
	defer liveSpan.End()
	return executeLive(ctx, s, il, 1, telemetry.CoordinatorWorker,
		func(rep event.ReplicaID) (proxy.TurnGate, error) { return newGate(rep), nil },
		inj, reg)
}

// executeLive is the engine behind ExecuteLiveContext and the live worker
// pool: replay one interleaving at the given exploration index through
// per-replica goroutines ordered by the gates newGate mints. Whatever
// path exits — including a gate factory or StartReplay failure partway
// through setup, or a mid-run replica error — every armed interceptor is
// released and every closable gate (e.g. proxy.DistGate) is closed, so a
// failed session can neither leak its replica goroutines nor hold
// distributed locks until TTL expiry.
func executeLive(ctx context.Context, s Scenario, il interleave.Interleaving, index, worker int, newGate func(rep event.ReplicaID) (proxy.TurnGate, error), inj *fault.Injector, reg *telemetry.Registry) (*Outcome, error) {
	if s.Log == nil || len(il) != s.Log.Len() {
		return nil, fmt.Errorf("runner: live replay needs a complete interleaving")
	}
	liveEvents := reg.Counter("live.events")
	cluster, err := s.NewCluster()
	if err != nil {
		return nil, fmt.Errorf("runner: cluster setup: %w", err)
	}
	if err := cluster.Checkpoint(); err != nil {
		return nil, err
	}

	outcome := &Outcome{
		Index:        index,
		Interleaving: il,
		Observations: make(map[event.ID]string),
	}
	var mu sync.Mutex // guards outcome fields and the pending payloads
	pending := make(map[event.ID][]byte)
	sendFor := make(map[event.ID]event.ID)
	for _, pair := range s.Log.SyncPairs() {
		sendFor[pair[1]] = pair[0]
	}
	if inj != nil {
		inj.Begin(index)
		defer inj.Finish()
	}

	// Per-replica interceptors share the schedule; each replica goroutine
	// re-issues its recorded calls in program order. The deferred release
	// runs on every exit path: interceptors disarm and closable gates free
	// their distributed state (a failed apply skips Advance, leaving the
	// session mutex held — Close releases it instead of waiting out the
	// TTL).
	replicas := s.Log.Replicas()
	interceptors := make(map[event.ReplicaID]*proxy.Interceptor, len(replicas))
	var gates []proxy.TurnGate
	defer func() {
		for _, i := range interceptors {
			i.StopReplay()
		}
		for _, g := range gates {
			if c, ok := g.(interface{ Close() error }); ok {
				_ = c.Close()
			}
		}
	}()
	setupSpan := reg.StartSpan(telemetry.StageLiveSetup, index, worker)
	for _, rep := range replicas {
		gate, err := newGate(rep)
		if err != nil {
			setupSpan.End()
			return nil, fmt.Errorf("runner: live gate %s: %w", rep, err)
		}
		gates = append(gates, gate)
		i := proxy.New()
		if err := i.StartReplay(s.Log, il, gate); err != nil {
			setupSpan.End()
			return nil, err
		}
		interceptors[rep] = i
	}
	setupSpan.End()

	position := make(map[event.ID]int, len(il))
	for turn, id := range il {
		position[id] = turn
	}

	// apply runs under the gate's mutual exclusion: exactly one event
	// executes at a time, in schedule order, so the injector sees strictly
	// increasing positions just like the sequential executor.
	apply := func(ev event.Event) error {
		liveEvents.Inc()
		pos := position[ev.ID]
		if inj != nil {
			for _, a := range inj.At(pos) {
				if a.Kind == fault.ActionCrash {
					if err := cluster.ResetNode(a.Replica); err != nil {
						return fmt.Errorf("fault: crash-restore %s: %w", a.Replica, err)
					}
				}
			}
			if inj.ReplicaDown(ev.Replica) {
				return fmt.Errorf("event %s: %w", ev, fault.ErrReplicaDown)
			}
		}
		node, err := cluster.Node(ev.Replica)
		if err != nil {
			return err
		}
		switch ev.Kind {
		case event.Update, event.Observe:
			result, err := node.State.Apply(replica.Op{Name: ev.Op, Args: ev.Args})
			if err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					mu.Lock()
					outcome.FailedOps = append(outcome.FailedOps, ev.ID)
					mu.Unlock()
					return nil
				}
				return fmt.Errorf("event %s: %w", ev, err)
			}
			if result != "" {
				mu.Lock()
				outcome.Observations[ev.ID] = result
				mu.Unlock()
			}
			return nil
		case event.SyncSend:
			payload, err := node.State.SyncPayload()
			if err != nil {
				return fmt.Errorf("event %s: %w", ev, err)
			}
			if inj != nil {
				payload = inj.Payload(pos, payload)
			}
			mu.Lock()
			pending[ev.ID] = payload
			mu.Unlock()
			return nil
		case event.SyncExec:
			if inj != nil {
				if inj.ReplicaDown(ev.From) {
					return fmt.Errorf("event %s: sender: %w", ev, fault.ErrReplicaDown)
				}
				if inj.Partitioned(ev.From, ev.Replica) {
					mu.Lock()
					outcome.DroppedSyncs = append(outcome.DroppedSyncs, ev.ID)
					mu.Unlock()
					return nil
				}
			}
			var payload []byte
			if sendID, ok := sendFor[ev.ID]; ok {
				mu.Lock()
				payload = pending[sendID]
				mu.Unlock()
			}
			if payload == nil {
				sender, err := cluster.Node(ev.From)
				if err != nil {
					return err
				}
				// Safe without extra locking: the gate's mutual exclusion
				// means no other event executes concurrently.
				payload, err = sender.State.SyncPayload()
				if err != nil {
					return fmt.Errorf("event %s: %w", ev, err)
				}
				if inj != nil {
					payload = inj.Payload(pos, payload)
				}
			}
			if err := node.State.ApplySync(payload); err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					mu.Lock()
					outcome.FailedOps = append(outcome.FailedOps, ev.ID)
					mu.Unlock()
					return nil
				}
				return fmt.Errorf("event %s: %w", ev, err)
			}
			return nil
		default:
			return fmt.Errorf("event %s: unsupported kind", ev)
		}
	}

	// Each replica's proxied functions are invoked in the interleaving's
	// order for that replica (the replay driver drives the proxies; the
	// schedule may reorder a replica's own recorded events).
	//
	// A failing replica cancels the shared context so the others' turn
	// waits unblock instead of hanging on a turn that will never come;
	// cancellation of the caller's ctx propagates the same way.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, len(replicas))
	for _, rep := range replicas {
		ownEvents := make([]event.Event, 0, s.Log.Len())
		for _, id := range s.Log.ByReplica(rep) {
			ownEvents = append(ownEvents, s.Log.Event(id))
		}
		sort.Slice(ownEvents, func(a, b int) bool {
			return position[ownEvents[a].ID] < position[ownEvents[b].ID]
		})
		wg.Add(1)
		go func(rep event.ReplicaID, events []event.Event) {
			defer wg.Done()
			i := interceptors[rep]
			for _, ev := range events {
				ev := ev
				err := i.CallScheduled(ctx, ev.ID, func() error { return apply(ev) })
				if err != nil {
					errCh <- fmt.Errorf("replica %s: %w", rep, err)
					cancel()
					return
				}
			}
		}(rep, ownEvents)
	}
	wg.Wait()
	close(errCh)
	// Drain every replica's error, not just the first: a multi-replica
	// failure (e.g. one replica crashing and the others timing out on their
	// turns) is reported in full. Each message is deterministic for a given
	// interleaving, but arrival order races across goroutines — sort so the
	// joined error (and the quarantine records built from it) is identical
	// on every run and at every session count.
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	if s.Finalize != nil {
		if err := s.Finalize(cluster); err != nil {
			return nil, err
		}
	}
	outcome.Fingerprints = cluster.Fingerprints()
	outcome.Converged = cluster.Converged()
	// Failed ops may arrive out of schedule order across goroutines;
	// normalize for comparison with the sequential executor.
	sortIDs(outcome.FailedOps)
	sortIDs(outcome.DroppedSyncs)
	return outcome, nil
}

func sortIDs(ids []event.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
