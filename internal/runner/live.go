package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/replica"
)

// ExecuteLive replays one interleaving the way a deployed ER-π session
// does (paper §4.3): one goroutine per replica invokes that replica's
// proxied RDL functions in the interleaving's order, and a TurnGate — the
// in-process LocalGate or the lock-server-backed DistGate — blocks each
// call until its scheduled turn. The returned outcome is semantically
// identical to the sequential ExecuteOnce (a property pinned by tests);
// the live path exists to exercise the real concurrency and distributed
// locking machinery.
//
// newGate builds one gate per replica; with proxy.NewLocalGate a single
// shared gate works, with DistGate each replica passes its own client.
func ExecuteLive(s Scenario, il interleave.Interleaving, newGate func(rep event.ReplicaID) proxy.TurnGate) (*Outcome, error) {
	if s.Log == nil || len(il) != s.Log.Len() {
		return nil, fmt.Errorf("runner: live replay needs a complete interleaving")
	}
	cluster, err := s.NewCluster()
	if err != nil {
		return nil, fmt.Errorf("runner: cluster setup: %w", err)
	}
	if err := cluster.Checkpoint(); err != nil {
		return nil, err
	}

	outcome := &Outcome{
		Index:        1,
		Interleaving: il,
		Observations: make(map[event.ID]string),
	}
	var mu sync.Mutex // guards outcome fields and the pending payloads
	pending := make(map[event.ID][]byte)
	sendFor := make(map[event.ID]event.ID)
	for _, pair := range s.Log.SyncPairs() {
		sendFor[pair[1]] = pair[0]
	}

	// Per-replica interceptors share the schedule; each replica goroutine
	// re-issues its recorded calls in program order.
	replicas := s.Log.Replicas()
	interceptors := make(map[event.ReplicaID]*proxy.Interceptor, len(replicas))
	for _, rep := range replicas {
		i := proxy.New()
		if err := i.StartReplay(s.Log, il, newGate(rep)); err != nil {
			return nil, err
		}
		interceptors[rep] = i
	}

	apply := func(ev event.Event) error {
		node, err := cluster.Node(ev.Replica)
		if err != nil {
			return err
		}
		switch ev.Kind {
		case event.Update, event.Observe:
			result, err := node.State.Apply(replica.Op{Name: ev.Op, Args: ev.Args})
			if err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					mu.Lock()
					outcome.FailedOps = append(outcome.FailedOps, ev.ID)
					mu.Unlock()
					return nil
				}
				return fmt.Errorf("event %s: %w", ev, err)
			}
			if result != "" {
				mu.Lock()
				outcome.Observations[ev.ID] = result
				mu.Unlock()
			}
			return nil
		case event.SyncSend:
			payload, err := node.State.SyncPayload()
			if err != nil {
				return fmt.Errorf("event %s: %w", ev, err)
			}
			mu.Lock()
			pending[ev.ID] = payload
			mu.Unlock()
			return nil
		case event.SyncExec:
			var payload []byte
			if sendID, ok := sendFor[ev.ID]; ok {
				mu.Lock()
				payload = pending[sendID]
				mu.Unlock()
			}
			if payload == nil {
				sender, err := cluster.Node(ev.From)
				if err != nil {
					return err
				}
				// Safe without extra locking: the gate's mutual exclusion
				// means no other event executes concurrently.
				payload, err = sender.State.SyncPayload()
				if err != nil {
					return fmt.Errorf("event %s: %w", ev, err)
				}
			}
			if err := node.State.ApplySync(payload); err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					mu.Lock()
					outcome.FailedOps = append(outcome.FailedOps, ev.ID)
					mu.Unlock()
					return nil
				}
				return fmt.Errorf("event %s: %w", ev, err)
			}
			return nil
		default:
			return fmt.Errorf("event %s: unsupported kind", ev)
		}
	}

	// Each replica's proxied functions are invoked in the interleaving's
	// order for that replica (the replay driver drives the proxies; the
	// schedule may reorder a replica's own recorded events).
	position := make(map[event.ID]int, len(il))
	for turn, id := range il {
		position[id] = turn
	}
	// A failing replica cancels the context so the others' turn waits
	// unblock instead of hanging on a turn that will never come.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, len(replicas))
	for _, rep := range replicas {
		ownEvents := make([]event.Event, 0, s.Log.Len())
		for _, id := range s.Log.ByReplica(rep) {
			ownEvents = append(ownEvents, s.Log.Event(id))
		}
		sort.Slice(ownEvents, func(a, b int) bool {
			return position[ownEvents[a].ID] < position[ownEvents[b].ID]
		})
		wg.Add(1)
		go func(rep event.ReplicaID, events []event.Event) {
			defer wg.Done()
			i := interceptors[rep]
			for _, ev := range events {
				ev := ev
				err := i.CallScheduled(ctx, ev.ID, func() error { return apply(ev) })
				if err != nil {
					errCh <- fmt.Errorf("replica %s: %w", rep, err)
					cancel()
					return
				}
			}
		}(rep, ownEvents)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	if s.Finalize != nil {
		if err := s.Finalize(cluster); err != nil {
			return nil, err
		}
	}
	outcome.Fingerprints = cluster.Fingerprints()
	outcome.Converged = cluster.Converged()
	// Failed ops may arrive out of schedule order across goroutines;
	// normalize for comparison with the sequential executor.
	sortIDs(outcome.FailedOps)
	return outcome, nil
}

func sortIDs(ids []event.ID) {
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
}
