package runner

import (
	"crypto/sha256"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/telemetry"
)

const testSubTable = 4 << 20

// signatureSet runs the scenario and returns the deduplicated, sorted
// outcome-signature set — the invariant subsumption must preserve: which
// interleavings execute may change, which behaviors exist may not.
func signatureSet(t *testing.T, s Scenario, cfg Config) ([]string, *Result) {
	t.Helper()
	seen := make(map[string]struct{})
	cfg.OnOutcome = func(o *Outcome) { seen[OutcomeSignature(o)] = struct{}{} }
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make([]string, 0, len(seen))
	for sig := range seen {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs, res
}

func hashOf(b byte) [sha256.Size]byte {
	var h [sha256.Size]byte
	h[0] = b
	return h
}

// msetOf builds a distinct remaining-multiset digest for table tests.
func msetOf(b byte) msetDigest {
	return msetContribution(event.ID(b))
}

// TestSubsumeTableLexRule pins the table's core soundness rule: a frontier
// skips only arrivals via a lexicographically STRICTLY GREATER prefix, the
// same literal prefix never self-subsumes, and a smaller arrival is
// adopted as the entry's new witness.
func TestSubsumeTableLexRule(t *testing.T) {
	tbl := newSubsumeTable(testSubTable)
	ctx, rem := hashOf(1), msetOf(2)

	if skip, delta := tbl.visit(ctx, rem, interleave.Interleaving{2, 1}); skip || delta <= 0 {
		t.Fatalf("first visit: skip=%v delta=%d, want record", skip, delta)
	}
	// Same literal prefix (a re-walk of the recording pass): no skip.
	if skip, _ := tbl.visit(ctx, rem, interleave.Interleaving{2, 1}); skip {
		t.Fatal("same-prefix arrival must not self-subsume")
	}
	// Lexicographically greater arrival: subsumed.
	if skip, _ := tbl.visit(ctx, rem, interleave.Interleaving{3, 0}); !skip {
		t.Fatal("greater-prefix arrival must be subsumed")
	}
	// Lexicographically smaller arrival: adopted, not skipped.
	if skip, _ := tbl.visit(ctx, rem, interleave.Interleaving{1, 2}); skip {
		t.Fatal("smaller-prefix arrival must execute (it becomes the witness)")
	}
	// The old witness is now the greater prefix: subsumed on return.
	if skip, _ := tbl.visit(ctx, rem, interleave.Interleaving{2, 1}); !skip {
		t.Fatal("old witness must be subsumed after adoption")
	}
	// Different frontier (other remaining multiset): independent entry.
	if skip, _ := tbl.visit(ctx, msetOf(3), interleave.Interleaving{3, 0}); skip {
		t.Fatal("distinct frontier must not be subsumed")
	}
	if tbl.len() != 2 {
		t.Fatalf("table has %d entries, want 2", tbl.len())
	}

	if freed := tbl.invalidate(); freed <= 0 || tbl.len() != 0 || tbl.bytesHeld() != 0 {
		t.Fatalf("invalidate freed=%d len=%d bytes=%d, want full flush", freed, tbl.len(), tbl.bytesHeld())
	}
	// After a flush the old frontier records (and executes) again.
	if skip, _ := tbl.visit(ctx, rem, interleave.Interleaving{3, 0}); skip {
		t.Fatal("flushed frontier must not subsume")
	}
}

// TestSubsumeTableEviction pins the byte budget: FIFO eviction keeps the
// table under budget, and an entry larger than the whole budget is
// rejected rather than wedging the table.
func TestSubsumeTableEviction(t *testing.T) {
	budget := int64(3 * (subsumeEntryOverhead + 8*2))
	tbl := newSubsumeTable(budget)
	for i := byte(0); i < 5; i++ {
		tbl.visit(hashOf(i), msetOf(i), interleave.Interleaving{1, 2})
	}
	if tbl.len() != 3 {
		t.Fatalf("table holds %d entries over a 3-entry budget", tbl.len())
	}
	if tbl.bytesHeld() > budget {
		t.Fatalf("bytes %d exceed budget %d", tbl.bytesHeld(), budget)
	}
	// The oldest entries were evicted: frontier 0 records afresh (no skip
	// even on a greater arrival).
	if skip, _ := tbl.visit(hashOf(0), msetOf(0), interleave.Interleaving{2, 1}); skip {
		t.Fatal("evicted frontier must not subsume")
	}

	huge := newSubsumeTable(8)
	if skip, delta := huge.visit(hashOf(9), msetOf(9), interleave.Interleaving{1}); skip || delta != 0 || huge.len() != 0 {
		t.Fatalf("over-budget entry: skip=%v delta=%d len=%d, want rejection", skip, delta, huge.len())
	}
}

// TestSubsumptionSignatureParity is the central soundness pin: with
// subsumption on, the deduplicated outcome-signature set is identical to
// the subsumption-off baseline for both lexicographic modes at Workers 1
// and 8, while the sequential engines actually skip work.
func TestSubsumptionSignatureParity(t *testing.T) {
	for _, mode := range []Mode{ModeERPi, ModeDFS} {
		for _, workers := range []int{1, 8} {
			s := townReportScenario(t)
			base, baseRes := signatureSet(t, s, Config{Mode: mode, Workers: workers})
			sub, subRes := signatureSet(t, s, Config{Mode: mode, Workers: workers, SubsumptionTable: testSubTable})
			if strings.Join(base, "\n") != strings.Join(sub, "\n") {
				t.Fatalf("mode %s workers %d: subsumption changed the behavior set:\n off: %d sigs\n on:  %d sigs",
					mode, workers, len(base), len(sub))
			}
			if baseRes.Explored != subRes.Explored {
				t.Fatalf("mode %s workers %d: explored %d with subsumption vs %d without — skipped interleavings must still count",
					mode, workers, subRes.Explored, baseRes.Explored)
			}
			if baseRes.Subsumed != 0 {
				t.Fatalf("mode %s workers %d: baseline reports %d subsumed without a table", mode, workers, baseRes.Subsumed)
			}
			if workers <= 1 && subRes.Subsumed == 0 {
				t.Fatalf("mode %s sequential: no interleaving was subsumed — the table never pruned", mode)
			}
			if subRes.Subsumed >= subRes.Explored {
				t.Fatalf("mode %s workers %d: %d of %d subsumed — at least the witnesses must execute",
					mode, workers, subRes.Subsumed, subRes.Explored)
			}
		}
	}
}

// TestSubsumptionSequentialDeterminism: with one worker the same run
// subsumes the same interleavings every time (the pool's skip set may
// vary with timing; the sequential engine's may not).
func TestSubsumptionSequentialDeterminism(t *testing.T) {
	s := townReportScenario(t)
	cfg := Config{Mode: ModeERPi, Workers: 1, SubsumptionTable: testSubTable}
	first, firstRes := signatureSet(t, s, cfg)
	second, secondRes := signatureSet(t, s, cfg)
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatal("sequential subsumption produced different behavior sets across runs")
	}
	if firstRes.Subsumed != secondRes.Subsumed || firstRes.Explored != secondRes.Explored {
		t.Fatalf("sequential subsumption not deterministic: %d/%d vs %d/%d subsumed/explored",
			firstRes.Subsumed, firstRes.Explored, secondRes.Subsumed, secondRes.Explored)
	}
}

// TestSubsumptionWithPrefixCache: the two accelerators compose — cache
// snapshot depths double as subsumption checkpoints — without changing
// the behavior set.
func TestSubsumptionWithPrefixCache(t *testing.T) {
	s := townReportScenario(t)
	base, _ := signatureSet(t, s, Config{Mode: ModeERPi})
	both, res := signatureSet(t, s, Config{
		Mode:             ModeERPi,
		SubsumptionTable: testSubTable,
		PrefixCacheBytes: 1 << 20,
	})
	if strings.Join(base, "\n") != strings.Join(both, "\n") {
		t.Fatal("subsumption + prefix cache changed the behavior set")
	}
	if res.Subsumed == 0 {
		t.Fatal("no subsumption happened with the cache supplying snapshot depths")
	}
}

// TestSubsumptionIgnoredOutsideLexicographicModes: ModeRand cannot
// guarantee a witness interleaving runs, so the flag must be a no-op.
func TestSubsumptionIgnoredOutsideLexicographicModes(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{Mode: ModeRand, Seed: 7, MaxInterleavings: 30, SubsumptionTable: testSubTable})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subsumed != 0 {
		t.Fatalf("ModeRand subsumed %d interleavings — the witness argument does not hold there", res.Subsumed)
	}
	if res.Explored != 30 {
		t.Fatalf("explored %d, want 30", res.Explored)
	}
}

// TestSubsumptionAccountingParity: subsumed interleavings count toward
// MaxInterleavings, enter the journal, and resume exactly like executed
// ones — an interrupted pruned session picks up where it left off.
func TestSubsumptionAccountingParity(t *testing.T) {
	s := townReportScenario(t)
	capped, err := Run(s, Config{Mode: ModeERPi, MaxInterleavings: 10, SubsumptionTable: testSubTable})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Explored != 10 || capped.Exhausted {
		t.Fatalf("explored %d (exhausted=%v), want the cap of 10 — subsumed skips must consume budget",
			capped.Explored, capped.Exhausted)
	}

	dir := t.TempDir()
	journal, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(s, Config{Mode: ModeERPi, Journal: journal, SubsumptionTable: testSubTable})
	if err != nil {
		t.Fatal(err)
	}
	if first.Explored != 19 || !first.Exhausted || first.Subsumed == 0 {
		t.Fatalf("journaled run: explored %d exhausted=%v subsumed=%d, want full pruned exhaustion",
			first.Explored, first.Exhausted, first.Subsumed)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	journal2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	resumed, err := Run(s, Config{Mode: ModeERPi, Journal: journal2, SubsumptionTable: testSubTable})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed != 19 || resumed.Explored != 0 {
		t.Fatalf("resume after pruned run: resumed %d explored %d — subsumed interleavings must be journaled",
			resumed.Resumed, resumed.Explored)
	}
}

// TestSubsumptionTelemetry: the subsumed counter matches Result.Subsumed
// and the table-bytes gauge tracks held entries.
func TestSubsumptionTelemetry(t *testing.T) {
	s := townReportScenario(t)
	reg := telemetry.New()
	res, err := Run(s, Config{Mode: ModeERPi, SubsumptionTable: testSubTable, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.subsumed_interleavings"]; got != int64(res.Subsumed) {
		t.Fatalf("counter reports %d subsumed, Result %d", got, res.Subsumed)
	}
	if res.Subsumed == 0 {
		t.Fatal("scenario produced no subsumption to observe")
	}
	if got := snap.Gauges["runner.subsumption_table_bytes"]; got <= 0 {
		t.Fatalf("table bytes gauge = %d, want > 0 after a pruned run", got)
	}
}

// TestSubsumptionFaultArmedBypass: interleavings with armed faults
// neither consult nor populate the table — the quarantine outcome of the
// armed interleaving survives, and the fault-free rest still prunes
// soundly.
func TestSubsumptionFaultArmedBypass(t *testing.T) {
	// One armed interleaving (index 3) that keeps B down: it must be
	// quarantined, exactly as without subsumption — never skipped.
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode: ModeERPi,
		Faults: &fault.Schedule{Faults: []fault.Fault{
			{Kind: fault.CrashReplica, Replica: "B", Interleaving: 3, At: 2, Duration: 10},
		}},
		RetryBackoff:     100 * time.Microsecond,
		SubsumptionTable: testSubTable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Index != 3 {
		t.Fatalf("quarantined %v, want exactly interleaving 3 — an armed interleaving must execute, not be subsumed",
			res.Quarantined)
	}
	if res.Explored != 19 {
		t.Fatalf("explored %d, want 19", res.Explored)
	}
	if res.Subsumed == 0 {
		t.Fatal("the 18 fault-free interleavings should still prune")
	}

	// Every interleaving armed: subsumption must be fully inert, and the
	// outcome stream must match the no-table fault run byte for byte.
	s2 := townReportScenario(t)
	s2.Finalize = AntiEntropy(2)
	crashSchedule := func() *fault.Schedule {
		return &fault.Schedule{Faults: []fault.Fault{
			{Kind: fault.CrashReplica, Replica: "A", At: 3},
		}}
	}
	plain, plainRes := collectOutcomes(t, s2, Config{Mode: ModeERPi, Faults: crashSchedule()})
	pruned, prunedRes := collectOutcomes(t, s2, Config{
		Mode:             ModeERPi,
		Faults:           crashSchedule(),
		SubsumptionTable: testSubTable,
	})
	if prunedRes.Subsumed != 0 {
		t.Fatalf("%d interleavings subsumed with every interleaving fault-armed", prunedRes.Subsumed)
	}
	if string(plain) != string(pruned) || plainRes.Explored != prunedRes.Explored {
		t.Fatal("subsumption table changed outcomes of an all-armed fault run")
	}
}

// TestSubsumptionRePruneFlushesTable: re-pruning rebuilds the exploration
// space, so context hashes recorded against the old enumeration are
// flushed; the run still terminates with the full behavior set.
func TestSubsumptionRePruneFlushesTable(t *testing.T) {
	s := townReportScenario(t)
	base, _ := signatureSet(t, s, Config{Mode: ModeERPi})

	polls := 0
	reg := telemetry.New()
	cfg := Config{
		Mode:             ModeERPi,
		SubsumptionTable: testSubTable,
		PollEvery:        5,
		Telemetry:        reg,
		ConstraintPoll: func() (prune.Config, bool, error) {
			polls++
			if polls == 1 {
				// Report "new" constraints identical to the scenario's: the
				// explorer regenerates (flushing the table) but the space is
				// unchanged, so the behavior set must survive the flush.
				return prune.Config{Grouping: prune.GroupSpec{Extra: [][]event.ID{{0, 1}}}}, true, nil
			}
			return prune.Config{}, false, nil
		},
	}
	pruned, res := signatureSet(t, s, cfg)
	if polls == 0 {
		t.Fatal("constraint poll never ran")
	}
	if strings.Join(base, "\n") != strings.Join(pruned, "\n") {
		t.Fatal("re-pruning with subsumption changed the behavior set")
	}
	if !res.Exhausted {
		t.Fatalf("re-pruned run did not exhaust: explored %d", res.Explored)
	}
}
