package runner

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/forensics"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/logx"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Violation forensics (DESIGN.md §4.13): when an interleaving violates an
// assertion and Config.ForensicDir is set, the engine re-executes that
// one interleaving on a fresh cluster with a step observer attached,
// capturing the per-replica canonical-state timeline after every
// delivered event, then executes the recorded order fault-free for a
// baseline, and writes the whole thing as one JSON bundle.
//
// Capture is strictly post-hoc re-execution: the exploration hot path is
// never instrumented, so determinism pins (Workers 1 vs 8, cache on/off,
// subsumption on/off) and the nil-telemetry zero-alloc guarantee are
// untouched. Replay is deterministic, so the re-execution reproduces the
// violating outcome exactly.

// DefaultMaxForensicBundles caps bundles written per run when
// Config.MaxForensicBundles is zero.
const DefaultMaxForensicBundles = 8

// BuildBundle re-executes one interleaving of the scenario with per-step
// state capture and returns its forensic bundle. cfg supplies Mode, Seed,
// and Faults (the fault plan is re-armed exactly as the engines arm it —
// arming is keyed by the exploration index, so the same index reproduces
// the same faults). violations and spans annotate the bundle; spans may
// be nil.
func BuildBundle(s Scenario, cfg Config, il interleave.Interleaving, index int, violations []forensics.Violation, spans []telemetry.Span) (*forensics.Bundle, error) {
	b := &forensics.Bundle{
		Version:       forensics.BundleVersion,
		Scenario:      s.Name,
		Mode:          string(cfg.Mode),
		Seed:          cfg.Seed,
		Index:         index,
		Key:           il.Key(),
		Interleaving:  ilInts(il),
		RecordedOrder: ilInts(recordedOrder(s.Log)),
		Violations:    violations,
		Faults:        cfg.Faults,
		Spans:         filterSpans(spans, index),
	}
	for _, id := range s.Log.IDs() {
		ev := s.Log.Event(id)
		b.Events = append(b.Events, forensics.EventRecord{
			ID:      int(ev.ID),
			Kind:    ev.Kind.String(),
			Replica: string(ev.Replica),
			From:    string(ev.From),
			To:      string(ev.To),
			Op:      ev.Op,
			Args:    ev.Args,
		})
	}

	// Violating-order replay with full per-step capture.
	final, err := forensicReplay(s, cfg.Faults, il, index, func(cl *replica.Cluster, pos int) error {
		step, err := captureStep(cl, il, pos, true)
		if err != nil {
			return err
		}
		b.Steps = append(b.Steps, step)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("forensics: replay interleaving #%d: %w", index, err)
	}
	b.Final = *final

	// Fault-free recorded-order baseline: hashes only per step (the full
	// state timeline of the healthy run adds bytes, not signal).
	recorded := recordedOrder(s.Log)
	baseline, err := forensicReplay(s, nil, recorded, index, func(cl *replica.Cluster, pos int) error {
		step, err := captureStep(cl, recorded, pos, false)
		if err != nil {
			return err
		}
		b.BaselineStepHashes = append(b.BaselineStepHashes, step.StateHash)
		return nil
	})
	if err != nil {
		// A baseline that cannot execute (e.g. the recorded order itself
		// trips a scenario invariant) degrades the narrative, not the
		// bundle: keep the violating-order capture.
		logx.L().Warn("forensic baseline replay failed",
			"component", "runner", "scenario", s.Name, "err", err)
	} else {
		b.Baseline = baseline
	}
	return b, nil
}

// forensicReplay executes one interleaving on a fresh cluster (bare
// executor: no cache, no subsumption, no telemetry) with the step
// observer attached, finalizes, and returns the outcome as a FinalState.
func forensicReplay(s Scenario, faults *fault.Schedule, il interleave.Interleaving, index int, observe func(*replica.Cluster, int) error) (*forensics.FinalState, error) {
	cluster, err := s.NewCluster()
	if err != nil {
		return nil, err
	}
	if err := cluster.Checkpoint(); err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if faults != nil {
		if inj, err = fault.NewInjector(*faults); err != nil {
			return nil, err
		}
	}
	exec := &executor{log: s.Log, cluster: cluster, inj: inj}
	exec.step = func(pos int) error { return observe(cluster, pos) }
	outcome, err := exec.execute(context.Background(), il, index)
	if err != nil {
		return nil, err
	}
	if s.Finalize != nil {
		if err := s.Finalize(cluster); err != nil {
			return nil, err
		}
		outcome.Fingerprints = cluster.Fingerprints()
		outcome.Converged = cluster.Converged()
	}
	final := &forensics.FinalState{
		Fingerprints: make(map[string]string, len(outcome.Fingerprints)),
		Converged:    outcome.Converged,
	}
	for r, fp := range outcome.Fingerprints {
		final.Fingerprints[string(r)] = fp
	}
	if len(outcome.Observations) > 0 {
		final.Observations = make(map[int]string, len(outcome.Observations))
		for id, v := range outcome.Observations {
			final.Observations[int(id)] = v
		}
	}
	for _, id := range outcome.FailedOps {
		final.FailedOps = append(final.FailedOps, int(id))
	}
	for _, id := range outcome.DroppedSyncs {
		final.DroppedSyncs = append(final.DroppedSyncs, int(id))
	}
	return final, nil
}

// captureStep snapshots the cluster after il[pos]: canonical state hash
// always, per-replica fingerprints and serialized states when full.
func captureStep(cl *replica.Cluster, il interleave.Interleaving, pos int, full bool) (forensics.Step, error) {
	snap, err := cl.CanonicalSnapshot()
	if err != nil {
		return forensics.Step{}, err
	}
	hash := snap.Hash()
	step := forensics.Step{
		Pos:       pos,
		EventID:   int(il[pos]),
		StateHash: hex.EncodeToString(hash[:]),
	}
	if full {
		fps := cl.Fingerprints()
		for i, id := range snap.IDs {
			step.Replicas = append(step.Replicas, forensics.ReplicaState{
				Replica:     string(id),
				Fingerprint: fps[id],
				Snapshot:    snap.Bufs[i].Data,
			})
		}
	}
	return step, nil
}

// captureForensic is the engines' violation hook: write a bundle for one
// violating interleaving under cfg.ForensicDir, bounded by
// cfg.MaxForensicBundles. Failures are logged, never fatal — forensics
// must not take down the run they are diagnosing.
func captureForensic(s Scenario, cfg Config, res *Result, il interleave.Interleaving, index int, violations []Violation) {
	if cfg.ForensicDir == "" {
		return
	}
	maxBundles := cfg.MaxForensicBundles
	if maxBundles <= 0 {
		maxBundles = DefaultMaxForensicBundles
	}
	if len(res.Bundles) >= maxBundles {
		return
	}
	var recs []forensics.Violation
	for _, v := range violations {
		if v.Index != index {
			continue
		}
		recs = append(recs, forensics.Violation{Assertion: v.Assertion, Error: v.Err.Error()})
	}
	spans := cfg.Telemetry.Tracer().Spans()
	b, err := BuildBundle(s, cfg, il, index, recs, spans)
	if err != nil {
		logx.L().Warn("forensic capture failed",
			"component", "runner", "scenario", s.Name, "index", index, "err", err)
		return
	}
	if err := os.MkdirAll(cfg.ForensicDir, 0o755); err != nil {
		logx.L().Warn("forensic dir", "component", "runner", "dir", cfg.ForensicDir, "err", err)
		return
	}
	path := filepath.Join(cfg.ForensicDir, fmt.Sprintf("forensic-%06d.json", index))
	if err := forensics.WriteFile(path, b); err != nil {
		logx.L().Warn("forensic write failed", "component", "runner", "path", path, "err", err)
		return
	}
	res.Bundles = append(res.Bundles, path)
}

// filterSpans keeps the spans attributed to one interleaving index.
func filterSpans(spans []telemetry.Span, index int) []telemetry.Span {
	var out []telemetry.Span
	for _, sp := range spans {
		if int(sp.Index) == index {
			out = append(out, sp)
		}
	}
	return out
}

func ilInts(il interleave.Interleaving) []int {
	out := make([]int, len(il))
	for i, id := range il {
		out[i] = int(id)
	}
	return out
}

// recordedOrder is the log's original delivery order as an interleaving.
func recordedOrder(log *event.Log) interleave.Interleaving {
	return interleave.Interleaving(log.IDs())
}
