package runner

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/forensics"
	"github.com/er-pi/erpi/internal/telemetry"
)

func TestForensicBundleCapturedOnViolation(t *testing.T) {
	s := townReportScenario(t)
	dir := t.TempDir()
	res, err := Run(s, Config{
		Mode:            ModeERPi,
		Assertions:      []Assertion{municipalityInvariant{}},
		StopOnViolation: true,
		ForensicDir:     dir,
		Telemetry:       telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstViolation == 0 {
		t.Fatal("town report did not violate")
	}
	if len(res.Bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly 1 with StopOnViolation", res.Bundles)
	}
	b, err := forensics.Load(res.Bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Scenario != "townreport" || b.Index != res.FirstViolation {
		t.Fatalf("bundle header: scenario=%q index=%d, want townreport #%d", b.Scenario, b.Index, res.FirstViolation)
	}
	if len(b.Violations) == 0 || b.Violations[0].Assertion != "municipality-receives-only-ph" {
		t.Fatalf("bundle violations: %+v", b.Violations)
	}
	if len(b.Events) != s.Log.Len() {
		t.Fatalf("bundle carries %d events, log has %d", len(b.Events), s.Log.Len())
	}
	if len(b.Steps) != len(b.Interleaving) {
		t.Fatalf("timeline has %d steps for %d delivered events", len(b.Steps), len(b.Interleaving))
	}
	for _, step := range b.Steps {
		if step.StateHash == "" || len(step.Replicas) != 3 {
			t.Fatalf("incomplete step: %+v", step)
		}
	}
	if b.Baseline == nil || len(b.BaselineStepHashes) == 0 {
		t.Fatal("bundle is missing the recorded-order baseline")
	}
	// The violating re-execution must reproduce the violating outcome: the
	// municipality saw more than the pothole.
	if got := b.Final.Fingerprints["M"]; got == "ph" {
		t.Fatalf("re-executed final state M=%q does not reproduce the violation", got)
	}
	if base := b.Baseline.Fingerprints["M"]; base != "ph" {
		t.Fatalf("baseline final state M=%q, want ph", base)
	}

	var out bytes.Buffer
	if err := forensics.Explain(&out, b); err != nil {
		t.Fatal(err)
	}
	narrative := out.String()
	for _, want := range []string{
		"municipality-receives-only-ph",
		"first diverges from the recorded schedule at step",
		"DIFFERS from recorded",
		"final replica states",
	} {
		if !strings.Contains(narrative, want) {
			t.Fatalf("explain output missing %q:\n%s", want, narrative)
		}
	}
}

func TestForensicCaptureOffByDefault(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode:            ModeERPi,
		Assertions:      []Assertion{municipalityInvariant{}},
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bundles) != 0 {
		t.Fatalf("bundles captured without ForensicDir: %v", res.Bundles)
	}
}

func TestForensicBundleCap(t *testing.T) {
	s := townReportScenario(t)
	dir := t.TempDir()
	res, err := Run(s, Config{
		Mode:               ModeERPi,
		Assertions:         []Assertion{municipalityInvariant{}},
		ForensicDir:        dir,
		MaxForensicBundles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) <= 2 {
		t.Fatalf("want more violations than the cap, got %d", len(res.Violations))
	}
	if len(res.Bundles) != 2 {
		t.Fatalf("bundles = %d, want capped at 2", len(res.Bundles))
	}
}

func TestForensicBundlesIdenticalAcrossWorkerCounts(t *testing.T) {
	read := func(workers int) []byte {
		t.Helper()
		s := townReportScenario(t)
		dir := t.TempDir()
		res, err := Run(s, Config{
			Mode:            ModeERPi,
			Workers:         workers,
			Assertions:      []Assertion{municipalityInvariant{}},
			StopOnViolation: true,
			ForensicDir:     dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Bundles) != 1 {
			t.Fatalf("workers=%d bundles = %v", workers, res.Bundles)
		}
		data, err := os.ReadFile(res.Bundles[0])
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := read(1)
	pooled := read(4)
	if !bytes.Equal(seq, pooled) {
		t.Fatal("forensic bundle bytes differ between workers=1 and workers=4")
	}
}
