package runner

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
)

// This file is the exported execution facade: the exact worker-side stack
// the pool engine runs (private cluster, injector clone, prefix cache,
// retry-with-seeded-jitter) packaged so out-of-process callers — the
// distributed coordinator's workers foremost — execute interleavings with
// byte-identical semantics to an in-process Workers=N run. The in-process
// engines (runSequential, pool.worker) build their environments through
// the same newWorkerEnv, so there is one definition of "execute an
// interleaving" in the codebase.

// normalizeRetry applies Config's documented retry defaults in place:
// MaxRetries 0 means one retry, negative disables; RetryBackoff defaults
// to 1ms. RunContext and NewExecutor share it so a standalone executor
// retries exactly like the engines.
func normalizeRetry(cfg *Config) {
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 1
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = time.Millisecond
	}
}

// newWorkerEnv builds one worker's private execution environment: fault
// injector (instrumented when telemetry is on), fresh cluster checkpointed
// at genesis, executor with optional prefix cache, and the worker's seeded
// retry-jitter generator. sub is the run's shared subsumption table (nil
// when disabled) — unlike the cache, all workers consult the same table.
// Shared by the sequential engine (w == 0), every pool worker, and the
// exported Executor facade.
func newWorkerEnv(s Scenario, cfg Config, w int, tel *runTelemetry, sub *subsumeTable) (*executor, *rand.Rand, error) {
	var inj *fault.Injector
	if cfg.Faults != nil {
		var err error
		inj, err = fault.NewInjector(*cfg.Faults)
		if err != nil {
			return nil, nil, fmt.Errorf("runner: %w", err)
		}
		tel.instrument(inj)
	}
	cluster, err := s.NewCluster()
	if err != nil {
		return nil, nil, fmt.Errorf("runner: cluster setup: %w", err)
	}
	cluster.SetFullHashing(cfg.FullSnapshotHashing)
	if err := cluster.Checkpoint(); err != nil {
		return nil, nil, err
	}
	exec := &executor{log: s.Log, cluster: cluster, inj: inj, tel: tel, worker: w}
	if cfg.PrefixCacheBytes > 0 {
		// Private per-worker cache: no cross-worker sharing, so what a
		// worker computes never depends on what other workers ran.
		exec.cache = newPrefixCache(cfg.PrefixCacheBytes, cfg.PrefixSnapshotEvery)
		exec.cache.share = !cfg.NoPrefixDeltas
	}
	exec.sub = sub
	exec.subEvery = cfg.PrefixSnapshotEvery
	if exec.subEvery <= 0 {
		exec.subEvery = defaultPrefixSnapshotEvery
	}
	// Per-worker jitter generator: retry timing varies across workers, but
	// which interleavings run and what they compute never depends on it.
	jitter := rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d ^ int64(w+1)<<32))
	if w == 0 {
		jitter = rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))
	}
	return exec, jitter, nil
}

// Executor replays individual interleavings of one scenario with the full
// engine semantics: genesis checkpoint reset (or prefix-cache restore),
// fault injection, Finalize, and retry-with-backoff. It is the unit a
// distributed worker runs per leased range. Not safe for concurrent use;
// build one per goroutine.
type Executor struct {
	s    Scenario
	cfg  Config
	exec *executor
	jit  *rand.Rand
}

// NewExecutor builds a standalone interleaving executor for the scenario.
// Honored Config fields: Seed, Faults, MaxRetries, RetryBackoff,
// InterleavingTimeout, PrefixCacheBytes, PrefixSnapshotEvery,
// SubsumptionTable (with Mode gating it, lexicographic modes only),
// Telemetry. With SubsumptionTable > 0 the executor keeps a private
// visited-frontier table across Execute calls and returns ErrSubsumed for
// skipped interleavings — a distributed worker's per-process equivalent
// of the engines' shared table.
func NewExecutor(s Scenario, cfg Config) (*Executor, error) {
	if s.Log == nil || s.Log.Len() == 0 {
		return nil, fmt.Errorf("runner: scenario has no events")
	}
	if s.NewCluster == nil {
		return nil, fmt.Errorf("runner: scenario has no cluster factory")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeERPi
	}
	normalizeRetry(&cfg)
	tel := newRunTelemetry(cfg.Telemetry)
	exec, jitter, err := newWorkerEnv(s, cfg, 0, tel, newSubsumption(cfg))
	if err != nil {
		return nil, err
	}
	return &Executor{s: s, cfg: cfg, exec: exec, jit: jitter}, nil
}

// Execute replays one interleaving at the given global exploration index
// (the index keys deterministic fault arming, so distributed workers must
// pass the coordinator-assigned index, not a local counter). It returns
// the outcome, the number of attempts made, and the final error when every
// attempt failed — the same triple the engines quarantine on. With
// Telemetry attached, each call counts toward runner.explored and the
// progress snapshot, mirroring the engines' per-index accounting — this
// is what a distributed worker's federation reports are built from.
func (e *Executor) Execute(ctx context.Context, il interleave.Interleaving, index int) (*Outcome, int, error) {
	e.exec.tel.onExplored()
	return executeWithRetry(ctx, e.exec, e.s, e.cfg, il, index, e.jit)
}

// NewExplorer builds the exploration iterator the engine would use for
// this scenario and config (mode, seed, pruning). The distributed
// coordinator enumerates through it exactly as the in-process engines do,
// which is what keeps range carving deterministic across restarts.
func NewExplorer(s Scenario, cfg Config) (interleave.Explorer, error) {
	if cfg.Mode == "" {
		cfg.Mode = ModeERPi
	}
	return newExplorer(s, cfg, s.Pruning)
}
