package runner

import "hash/fnv"

// exploredSet deduplicates interleaving keys under a memory bound. Keys are
// stored as 64-bit FNV-1a fingerprints rather than full strings, so one
// entry costs a fixed ~8 bytes of payload regardless of event-log size, and
// the set is capped at limit entries.
//
// Trade-offs (documented because both degrade dedup, never soundness):
//
//   - A fingerprint collision (~2⁻⁶⁴ per pair) makes a never-executed
//     interleaving look already explored and it is skipped.
//   - Once the cap is reached the set stops recording NEW keys — membership
//     tests still see everything recorded so far, but an order first seen
//     after saturation may be executed (and counted) again. Re-execution is
//     idempotent (the cluster resets before every interleaving), so long
//     ModeRand/ModeFuzz runs degrade to best-effort dedup instead of
//     growing without limit.
type exploredSet struct {
	limit     int
	keys      map[uint64]struct{}
	saturated bool
}

// defaultMaxExploredKeys bounds the dedup set at ~1M entries (tens of MB)
// unless Config.MaxExploredKeys overrides it.
const defaultMaxExploredKeys = 1 << 20

// newExploredSet builds a set capped at limit entries; zero means the
// default cap, negative means unbounded.
func newExploredSet(limit int) *exploredSet {
	if limit == 0 {
		limit = defaultMaxExploredKeys
	}
	return &exploredSet{limit: limit, keys: make(map[uint64]struct{})}
}

func fingerprint(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Has reports whether key was recorded.
func (e *exploredSet) Has(key string) bool {
	_, ok := e.keys[fingerprint(key)]
	return ok
}

// Add records key, unless the set is saturated. Reports whether the key was
// actually recorded.
func (e *exploredSet) Add(key string) bool {
	if e.limit > 0 && len(e.keys) >= e.limit {
		e.saturated = true
		return false
	}
	e.keys[fingerprint(key)] = struct{}{}
	return true
}

// Len returns the number of recorded fingerprints.
func (e *exploredSet) Len() int { return len(e.keys) }

// Saturated reports whether the cap was ever hit.
func (e *exploredSet) Saturated() bool { return e.saturated }
