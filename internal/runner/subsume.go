package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
)

// ErrSubsumed marks an interleaving skipped by state subsumption: its
// execution frontier reached a (state-hash, remaining-event-multiset)
// pair already visited via a lexicographically smaller prefix, so its
// outcome is provably identical to one an executed interleaving produces
// (DESIGN.md §4.12). Engines count it in Result.Subsumed instead of
// quarantining; it is never retried.
var ErrSubsumed = errors.New("runner: interleaving subsumed by visited state")

// subsumeTable is the bounded visited-frontier table behind DPOR-style
// state subsumption (DESIGN.md §4.12). A key is the pair
// (execution-context hash, remaining-event-multiset hash); the entry
// remembers the lexicographically smallest ordered prefix seen reaching
// that frontier. The executor consults it at snapshot depths: when the
// current prefix is lexicographically GREATER than the recorded one the
// rest of the interleaving is skipped — every permutation of the
// remaining events from an identical execution context yields an outcome
// some lexicographically smaller interleaving already produced (the
// strict ordering is what makes witness chains terminate; see §4.12 for
// the argument, including out-of-order pool recording).
//
// Unlike the prefix cache, one table is shared by every worker of a run —
// a frontier visited by any worker prunes all of them — so all methods
// are safe for concurrent use.
type subsumeTable struct {
	mu     sync.Mutex
	budget int64 // max accounted bytes (> 0)
	bytes  int64
	seq    uint64 // insertion tick for FIFO eviction

	entries map[subsumeKey]*subsumeEntry
}

// subsumeKey identifies one exploration frontier.
type subsumeKey struct {
	ctx [sha256.Size]byte // canonical execution-context hash
	rem [sha256.Size]byte // remaining-event-multiset hash (via the prefix multiset)
}

type subsumeEntry struct {
	prefix []event.ID // ordered prefix that recorded this frontier
	seq    uint64
}

// subsumeEntryOverhead approximates the fixed per-entry cost (key bytes,
// map bucket, header) added to the prefix payload when accounting against
// the byte budget.
const subsumeEntryOverhead = 2*sha256.Size + 48

func newSubsumeTable(budget int64) *subsumeTable {
	return &subsumeTable{budget: budget, entries: make(map[subsumeKey]*subsumeEntry)}
}

// visit is the one-shot check-and-record at a snapshot depth. It returns
// skip=true when a recorded prefix for the same frontier is strictly
// lexicographically smaller than the current one — the caller abandons
// the interleaving with ErrSubsumed. Otherwise the frontier is recorded
// (adopting the current prefix when it is the smaller reacher) and
// execution continues. delta is the net change in accounted bytes, for
// the subsumption_table_bytes gauge.
func (t *subsumeTable) visit(ctx, rem [sha256.Size]byte, prefix interleave.Interleaving) (skip bool, delta int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := subsumeKey{ctx: ctx, rem: rem}
	if e, ok := t.entries[key]; ok {
		switch lexCompare(e.prefix, prefix) {
		case -1:
			return true, 0
		case 0:
			// Our own recording pass (or a prefix-cache replay of the same
			// literal prefix): never self-subsume.
			return false, 0
		default:
			// Current prefix is the smaller reacher: adopt it so future
			// arrivals compare against the lexicographic minimum. Same
			// depth, same size — no byte delta.
			copy(e.prefix, prefix)
			return false, 0
		}
	}
	size := int64(subsumeEntryOverhead + 8*len(prefix))
	if size > t.budget {
		return false, 0
	}
	t.seq++
	t.entries[key] = &subsumeEntry{prefix: append([]event.ID(nil), prefix...), seq: t.seq}
	t.bytes += size
	delta = size
	for t.bytes > t.budget {
		delta -= t.evictOldest()
	}
	return false, delta
}

// evictOldest drops the entry with the smallest insertion tick and
// returns the bytes freed. Linear scan: eviction only runs when the
// budget overflows, and dropping entries is always sound (fewer skips).
func (t *subsumeTable) evictOldest() int64 {
	var (
		oldKey subsumeKey
		oldSeq uint64
		found  bool
	)
	for k, e := range t.entries {
		if !found || e.seq < oldSeq {
			oldKey, oldSeq, found = k, e.seq, true
		}
	}
	if !found {
		return 0
	}
	freed := int64(subsumeEntryOverhead + 8*len(t.entries[oldKey].prefix))
	delete(t.entries, oldKey)
	t.bytes -= freed
	return freed
}

// invalidate discards every entry (the re-pruning boundary, mirroring the
// prefix cache) and returns the bytes freed.
func (t *subsumeTable) invalidate() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	freed := t.bytes
	t.entries = make(map[subsumeKey]*subsumeEntry)
	t.bytes = 0
	return freed
}

// bytesHeld reports the accounted table size.
func (t *subsumeTable) bytesHeld() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes
}

// len reports the entry count (tests only).
func (t *subsumeTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// lexCompare orders two equal-length event-ID sequences
// lexicographically: -1 when a < b, 0 when equal, 1 when a > b.
func lexCompare(a []event.ID, b interleave.Interleaving) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// multisetHash digests the unordered multiset of event IDs in prefix.
// All interleavings of one run permute the same event set, so the prefix
// multiset determines the remaining-event multiset.
func multisetHash(prefix interleave.Interleaving) [sha256.Size]byte {
	ids := make([]int, len(prefix))
	for i, id := range prefix {
		ids[i] = int(id)
	}
	sort.Ints(ids)
	h := sha256.New()
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range ids {
		n := binary.PutUvarint(tmp[:], uint64(id))
		h.Write(tmp[:n])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// contextHash digests the full execution context after a prefix: the
// canonical cluster snapshot plus everything else the remaining suffix
// can observe — captured sync payloads, recorded observations, and failed
// ops (exactly the prefixSnapshot capture set; DroppedSyncs are absent
// because fault-armed interleavings bypass subsumption). Each section is
// length-prefixed and sorted so the digest is injective over contexts.
func contextHash(states *replica.ClusterSnapshot, pending map[event.ID][]byte, obs map[event.ID]string, failed []event.ID) [sha256.Size]byte {
	h := sha256.New()
	var tmp [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		h.Write(tmp[:n])
	}
	h.Write(states.AppendCanonical(nil))

	pendIDs := make([]event.ID, 0, len(pending))
	for id := range pending {
		pendIDs = append(pendIDs, id)
	}
	sortEventIDs(pendIDs)
	h.Write([]byte{'P'})
	writeUvarint(uint64(len(pendIDs)))
	for _, id := range pendIDs {
		writeUvarint(uint64(id))
		writeUvarint(uint64(len(pending[id])))
		h.Write(pending[id])
	}

	obsIDs := make([]event.ID, 0, len(obs))
	for id := range obs {
		obsIDs = append(obsIDs, id)
	}
	sortEventIDs(obsIDs)
	h.Write([]byte{'O'})
	writeUvarint(uint64(len(obsIDs)))
	for _, id := range obsIDs {
		writeUvarint(uint64(id))
		writeUvarint(uint64(len(obs[id])))
		h.Write([]byte(obs[id]))
	}

	failedIDs := append([]event.ID(nil), failed...)
	sortEventIDs(failedIDs)
	h.Write([]byte{'F'})
	writeUvarint(uint64(len(failedIDs)))
	for _, id := range failedIDs {
		writeUvarint(uint64(id))
	}

	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func sortEventIDs(ids []event.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
