package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
)

// ErrSubsumed marks an interleaving skipped by state subsumption: its
// execution frontier reached a (state-hash, remaining-event-multiset)
// pair already visited via a lexicographically smaller prefix, so its
// outcome is provably identical to one an executed interleaving produces
// (DESIGN.md §4.12). Engines count it in Result.Subsumed instead of
// quarantining; it is never retried.
var ErrSubsumed = errors.New("runner: interleaving subsumed by visited state")

// subsumeStripes is the lock-stripe count of the shared frontier table.
// The table is hit by every pool worker at every snapshot depth; striping
// by a context-hash byte keeps Workers ≥ 8 off a single global mutex.
// Power of two so the stripe index is a mask.
const subsumeStripes = 32

// subsumeTable is the bounded visited-frontier table behind DPOR-style
// state subsumption (DESIGN.md §4.12). A key is the pair
// (execution-context hash, remaining-event-multiset digest); the entry
// remembers the lexicographically smallest ordered prefix seen reaching
// that frontier. The executor consults it at snapshot depths: when the
// current prefix is lexicographically GREATER than the recorded one the
// rest of the interleaving is skipped — every permutation of the
// remaining events from an identical execution context yields an outcome
// some lexicographically smaller interleaving already produced (the
// strict ordering is what makes witness chains terminate; see §4.12 for
// the argument, including out-of-order pool recording).
//
// Unlike the prefix cache, one table is shared by every worker of a run —
// a frontier visited by any worker prunes all of them — so all methods
// are safe for concurrent use. Entries are sharded into stripes keyed by
// the context hash's first byte; byte accounting and the insertion tick
// are global atomics, and eviction scans all stripes for the globally
// oldest entry (FIFO, same order a single-map table evicted in).
type subsumeTable struct {
	budget int64 // max accounted bytes (> 0)
	bytes  atomic.Int64
	seq    atomic.Uint64 // insertion tick for FIFO eviction

	stripes [subsumeStripes]subsumeStripe
}

type subsumeStripe struct {
	mu      sync.Mutex
	entries map[subsumeKey]*subsumeEntry
}

// subsumeKey identifies one exploration frontier.
type subsumeKey struct {
	ctx [sha256.Size]byte // canonical execution-context hash
	rem msetDigest        // remaining-event-multiset digest (via the prefix multiset)
}

type subsumeEntry struct {
	prefix []event.ID // ordered prefix that recorded this frontier
	seq    uint64
}

// subsumeEntryOverhead approximates the fixed per-entry cost (key bytes,
// map bucket, header) added to the prefix payload when accounting against
// the byte budget.
const subsumeEntryOverhead = 2*sha256.Size + 48

func newSubsumeTable(budget int64) *subsumeTable {
	t := &subsumeTable{budget: budget}
	for i := range t.stripes {
		t.stripes[i].entries = make(map[subsumeKey]*subsumeEntry)
	}
	return t
}

func (t *subsumeTable) stripeFor(key subsumeKey) *subsumeStripe {
	return &t.stripes[key.ctx[0]&(subsumeStripes-1)]
}

// visit is the one-shot check-and-record at a snapshot depth. It returns
// skip=true when a recorded prefix for the same frontier is strictly
// lexicographically smaller than the current one — the caller abandons
// the interleaving with ErrSubsumed. Otherwise the frontier is recorded
// (adopting the current prefix when it is the smaller reacher) and
// execution continues. delta is the net change in accounted bytes, for
// the subsumption_table_bytes gauge. Only the frontier's own stripe is
// locked; eviction (rare — budget overflow only) walks the other stripes
// one at a time afterwards.
func (t *subsumeTable) visit(ctx [sha256.Size]byte, rem msetDigest, prefix interleave.Interleaving) (skip bool, delta int64) {
	key := subsumeKey{ctx: ctx, rem: rem}
	s := t.stripeFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		defer s.mu.Unlock()
		switch lexCompare(e.prefix, prefix) {
		case -1:
			return true, 0
		case 0:
			// Our own recording pass (or a prefix-cache replay of the same
			// literal prefix): never self-subsume.
			return false, 0
		default:
			// Current prefix is the smaller reacher: adopt it so future
			// arrivals compare against the lexicographic minimum. Same
			// depth, same size — no byte delta.
			copy(e.prefix, prefix)
			return false, 0
		}
	}
	size := int64(subsumeEntryOverhead + 8*len(prefix))
	if size > t.budget {
		s.mu.Unlock()
		return false, 0
	}
	s.entries[key] = &subsumeEntry{
		prefix: append([]event.ID(nil), prefix...),
		seq:    t.seq.Add(1),
	}
	s.mu.Unlock()
	t.bytes.Add(size)
	delta = size
	for t.bytes.Load() > t.budget {
		freed := t.evictOldest()
		if freed == 0 {
			break
		}
		delta -= freed
	}
	return false, delta
}

// evictOldest drops the entry with the smallest insertion tick across all
// stripes and returns the bytes freed. Linear scan, one stripe locked at
// a time: eviction only runs when the budget overflows, and dropping
// entries is always sound (fewer skips). Under concurrent eviction the
// chosen entry may already be gone; retry until something is freed or the
// table is empty.
func (t *subsumeTable) evictOldest() int64 {
	for {
		var (
			oldKey    subsumeKey
			oldSeq    uint64
			oldStripe *subsumeStripe
		)
		for i := range t.stripes {
			s := &t.stripes[i]
			s.mu.Lock()
			for k, e := range s.entries {
				if oldStripe == nil || e.seq < oldSeq {
					oldKey, oldSeq, oldStripe = k, e.seq, s
				}
			}
			s.mu.Unlock()
		}
		if oldStripe == nil {
			return 0
		}
		oldStripe.mu.Lock()
		e, ok := oldStripe.entries[oldKey]
		if !ok || e.seq != oldSeq {
			oldStripe.mu.Unlock()
			continue // raced with another evictor; rescan
		}
		freed := int64(subsumeEntryOverhead + 8*len(e.prefix))
		delete(oldStripe.entries, oldKey)
		oldStripe.mu.Unlock()
		t.bytes.Add(-freed)
		return freed
	}
}

// invalidate discards every entry (the re-pruning boundary, mirroring the
// prefix cache) and returns the bytes freed. Called at quiesce barriers
// only, so the stripe-at-a-time sweep is not racing inserts that matter.
func (t *subsumeTable) invalidate() int64 {
	var freed int64
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		for _, e := range s.entries {
			freed += int64(subsumeEntryOverhead + 8*len(e.prefix))
		}
		s.entries = make(map[subsumeKey]*subsumeEntry)
		s.mu.Unlock()
	}
	t.bytes.Add(-freed)
	return freed
}

// bytesHeld reports the accounted table size.
func (t *subsumeTable) bytesHeld() int64 {
	return t.bytes.Load()
}

// len reports the entry count (tests only).
func (t *subsumeTable) len() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// lexCompare orders two equal-length event-ID sequences
// lexicographically: -1 when a < b, 0 when equal, 1 when a > b.
func lexCompare(a []event.ID, b interleave.Interleaving) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// msetDigest is an additive (homomorphic) multiset hash: each event ID
// contributes sha256(uvarint(id)) read as four little-endian uint64
// words, and a multiset's digest is the component-wise sum mod 2^64 of
// its members' contributions. Addition commutes, so the executor keeps a
// rolling digest updated O(1) per executed event instead of re-sorting
// and re-hashing the prefix at every snapshot depth; collision resistance
// is the standard MSet-Add-Hash argument (finding a colliding multiset
// means solving a random subset-sum over 256 bits).
type msetDigest [4]uint64

// add folds one contribution into the digest in place.
func (m *msetDigest) add(c msetDigest) {
	m[0] += c[0]
	m[1] += c[1]
	m[2] += c[2]
	m[3] += c[3]
}

// msetContribution returns one event ID's fixed contribution.
func msetContribution(id event.ID) msetDigest {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(id))
	sum := sha256.Sum256(tmp[:n])
	return msetDigest{
		binary.LittleEndian.Uint64(sum[0:8]),
		binary.LittleEndian.Uint64(sum[8:16]),
		binary.LittleEndian.Uint64(sum[16:24]),
		binary.LittleEndian.Uint64(sum[24:32]),
	}
}

// multisetHash digests the unordered multiset of event IDs in prefix from
// scratch — the reference the executor's rolling digest must always agree
// with (property-tested per subject). All interleavings of one run
// permute the same event set, so the prefix multiset determines the
// remaining-event multiset.
func multisetHash(prefix interleave.Interleaving) msetDigest {
	var m msetDigest
	for _, id := range prefix {
		m.add(msetContribution(id))
	}
	return m
}

// ctxScratch is the reusable working memory of one contextHash call: the
// digest preimage buffer and the event-ID sort area. Pooled so the hot
// path's per-depth hashing allocates nothing in steady state.
type ctxScratch struct {
	buf []byte
	ids []event.ID
}

var ctxScratchPool = sync.Pool{New: func() any { return new(ctxScratch) }}

// contextHash digests the full execution context after a prefix: the
// canonical cluster snapshot plus everything else the remaining suffix
// can observe — captured sync payloads, recorded observations, and failed
// ops (exactly the prefixSnapshot capture set; DroppedSyncs are absent
// because fault-armed interleavings bypass subsumption). The cluster
// enters via its hash-of-hashes encoding (32 bytes per replica, served
// from the per-replica caches) rather than its full serialization; each
// section is length-prefixed and sorted so the digest is injective over
// contexts.
func contextHash(states *replica.ClusterSnapshot, pending map[event.ID][]byte, obs map[event.ID]string, failed []event.ID) [sha256.Size]byte {
	sc := ctxScratchPool.Get().(*ctxScratch)
	b := sc.buf[:0]
	var tmp [binary.MaxVarintLen64]byte
	appendUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		b = append(b, tmp[:n]...)
	}

	b = states.AppendHashEncoding(b)

	ids := sc.ids[:0]
	for id := range pending {
		ids = append(ids, id)
	}
	sortEventIDs(ids)
	b = append(b, 'P')
	appendUvarint(uint64(len(ids)))
	for _, id := range ids {
		appendUvarint(uint64(id))
		appendUvarint(uint64(len(pending[id])))
		b = append(b, pending[id]...)
	}

	ids = ids[:0]
	for id := range obs {
		ids = append(ids, id)
	}
	sortEventIDs(ids)
	b = append(b, 'O')
	appendUvarint(uint64(len(ids)))
	for _, id := range ids {
		appendUvarint(uint64(id))
		appendUvarint(uint64(len(obs[id])))
		b = append(b, obs[id]...)
	}

	ids = append(ids[:0], failed...)
	sortEventIDs(ids)
	b = append(b, 'F')
	appendUvarint(uint64(len(ids)))
	for _, id := range ids {
		appendUvarint(uint64(id))
	}

	out := sha256.Sum256(b)
	sc.buf, sc.ids = b, ids
	ctxScratchPool.Put(sc)
	return out
}

func sortEventIDs(ids []event.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
