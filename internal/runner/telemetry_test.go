package runner

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/telemetry"
)

// TestTelemetryDeterminismPin: telemetry is strictly observational. A run
// with a registry attached produces byte-identical outcome streams to one
// without, and the Workers 1 vs 8 determinism pin holds with telemetry on.
func TestTelemetryDeterminismPin(t *testing.T) {
	base := Config{Mode: ModeERPi, Assertions: []Assertion{municipalityInvariant{}}}

	plain := base
	plain.Workers = 1
	rawPlain, resPlain := collectOutcomes(t, townReportScenario(t), plain)

	one := base
	one.Workers = 1
	one.Telemetry = telemetry.New()
	rawOne, resOne := collectOutcomes(t, townReportScenario(t), one)

	eight := base
	eight.Workers = 8
	eight.Telemetry = telemetry.New()
	rawEight, resEight := collectOutcomes(t, townReportScenario(t), eight)

	if !bytes.Equal(rawPlain, rawOne) {
		t.Fatal("attaching a telemetry registry changed the outcome stream")
	}
	if !bytes.Equal(rawOne, rawEight) {
		t.Fatal("Workers 1 vs 8 outcome streams diverge with telemetry on")
	}
	assertResultsMatch(t, resPlain, resOne)
	assertResultsMatch(t, resOne, resEight)

	for name, res := range map[string]*Result{"sequential": resOne, "pool": resEight} {
		var reg *telemetry.Registry
		if name == "sequential" {
			reg = one.Telemetry
		} else {
			reg = eight.Telemetry
		}
		snap := reg.Snapshot()
		if got := snap.Counters["runner.explored"]; got != int64(res.Explored) {
			t.Fatalf("%s: runner.explored = %d, want %d", name, got, res.Explored)
		}
		if got := snap.Counters["runner.violations"]; got != int64(len(res.Violations)) {
			t.Fatalf("%s: runner.violations = %d, want %d", name, got, len(res.Violations))
		}
		if hs := snap.Histograms["stage.execute_ns"]; hs.Count != int64(res.Explored) {
			t.Fatalf("%s: execute spans = %d, want %d", name, hs.Count, res.Explored)
		}
	}
}

// TestTelemetryNilPathZeroAllocs: with telemetry off, every instrumentation
// call site in the hot loop is a zero-allocation no-op.
func TestTelemetryNilPathZeroAllocs(t *testing.T) {
	var tel *runTelemetry
	allocs := testing.AllocsPerRun(1000, func() {
		gen := tel.span(telemetry.StageGenerate, 1, telemetry.CoordinatorWorker)
		gen.End()
		tel.onExplored()
		tel.setWorker(0, 1)
		sp := tel.span(telemetry.StageExecute, 1, 0)
		sp.End()
		tel.setWorker(0, 0)
		tel.onViolations(0)
	})
	if allocs != 0 {
		t.Fatalf("nil-telemetry hot path allocates %v per interleaving, want 0", allocs)
	}
}

// BenchmarkTelemetryOverhead measures the per-interleaving cost of the
// instrumentation call sites with telemetry off (nil) and on (active).
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, tel *runTelemetry) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gen := tel.span(telemetry.StageGenerate, i, telemetry.CoordinatorWorker)
			gen.End()
			tel.onExplored()
			tel.setWorker(0, i)
			sp := tel.span(telemetry.StageExecute, i, 0)
			sp.End()
			tel.setWorker(0, 0)
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("active", func(b *testing.B) { run(b, newRunTelemetry(telemetry.New())) })
}

// TestJournalFsyncTelemetry: a journaled run records fsync batches, the
// keys they covered, and journal-fsync latency spans.
func TestJournalFsyncTelemetry(t *testing.T) {
	dir, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Close()
	reg := telemetry.New()
	res, err := Run(townReportScenario(t), Config{Mode: ModeERPi, Journal: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["journal.fsync_batches"]; got < 1 {
		t.Fatalf("journal.fsync_batches = %d, want >= 1", got)
	}
	if got := snap.Counters["journal.fsync_keys"]; got != int64(res.Explored) {
		t.Fatalf("journal.fsync_keys = %d, want %d", got, res.Explored)
	}
	if hs := snap.Histograms["stage.journal-fsync_ns"]; hs.Count < 1 {
		t.Fatal("no journal-fsync spans recorded")
	}
}

// TestTraceExportPool: a pool run exports a Chrome trace where execute
// spans land on worker lanes (tid >= 1) and each ConstraintPoll barrier
// shows up as a quiesce event on the coordinator lane.
func TestTraceExportPool(t *testing.T) {
	reg := telemetry.New()
	polls := 0
	res, err := Run(townReportScenario(t), Config{
		Mode:      ModeERPi,
		Workers:   4,
		PollEvery: 5,
		Telemetry: reg,
		ConstraintPoll: func() (prune.Config, bool, error) {
			polls++
			return prune.Config{}, false, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("town report must exhaust, got %+v", res)
	}

	var buf bytes.Buffer
	if err := reg.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	executes, quiesces := 0, 0
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "execute":
			executes++
			if ev.Tid < 1 {
				t.Fatalf("execute span on tid %d, want a worker lane (>= 1)", ev.Tid)
			}
			if _, ok := ev.Args["interleaving"]; !ok {
				t.Fatal("execute span missing interleaving arg")
			}
		case "quiesce":
			quiesces++
			if ev.Tid != 0 {
				t.Fatalf("quiesce span on tid %d, want the coordinator lane (0)", ev.Tid)
			}
		}
	}
	if executes != res.Explored {
		t.Fatalf("trace has %d execute spans, want %d", executes, res.Explored)
	}
	if polls == 0 || quiesces != polls {
		t.Fatalf("trace has %d quiesce spans, want one per poll (%d)", quiesces, polls)
	}
}
