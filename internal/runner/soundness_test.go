package runner

import (
	"reflect"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// TestPruningSemanticSoundness is the semantic half of pruning soundness.
// Replica-specific pruning (Algorithm 2) is scoped by design: it merges
// interleavings that are indistinguishable AT THE TESTED REPLICA ("events
// executed at other replicas without impacting the tested replica can be
// grouped"). So every interleaving the pruned explorer drops on the
// motivating example must leave the MUNICIPALITY in exactly the state its
// canonical representative does — while the other replicas' states may
// legitimately differ, which is why the pruning must only be enabled for
// the replica under test.
func TestPruningSemanticSoundness(t *testing.T) {
	s := townReportScenario(t)

	surviving := make(map[string]bool)
	ex, err := NewPrunedExplorer(s)
	if err != nil {
		t.Fatal(err)
	}
	for {
		il, ok := ex.Next()
		if !ok {
			break
		}
		surviving[il.Key()] = true
	}
	if len(surviving) != 19 {
		t.Fatalf("survivors = %d, want 19", len(surviving))
	}

	// The merged class: the transmission (event 6) first, followed by the
	// three grouped pairs in any order. Canonical representative: pairs
	// ascending.
	units := [][]event.ID{{0, 1}, {2, 3}, {4, 5}}
	canonical := interleave.Interleaving{6, 0, 1, 2, 3, 4, 5}
	if !surviving[canonical.Key()] {
		t.Fatal("canonical representative missing from survivors")
	}
	canonOutcome, err := ExecuteOnce(s, canonical)
	if err != nil {
		t.Fatal(err)
	}

	dropped := 0
	othersDiffer := false
	for _, order := range [][]int{
		{0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	} {
		il := interleave.Interleaving{6}
		for _, u := range order {
			il = append(il, units[u]...)
		}
		if surviving[il.Key()] {
			t.Fatalf("interleaving %s should have been merged away", il.Key())
		}
		dropped++
		o, err := ExecuteOnce(s, il)
		if err != nil {
			t.Fatal(err)
		}
		if o.Fingerprints["M"] != canonOutcome.Fingerprints["M"] {
			t.Fatalf("dropped interleaving %s leaves the tested replica in %q, representative leaves %q",
				il.Key(), o.Fingerprints["M"], canonOutcome.Fingerprints["M"])
		}
		if !reflect.DeepEqual(o.Fingerprints, canonOutcome.Fingerprints) {
			othersDiffer = true
		}
	}
	if dropped != 24-19 {
		t.Fatalf("checked %d dropped interleavings, want 5", dropped)
	}
	// The scoping is real: at least one merged member differs at the OTHER
	// replicas (e.g. B's remove fails when it runs before B learned of the
	// issue), which is exactly why Algorithm 2 applies only to the replica
	// under test.
	if !othersDiffer {
		t.Fatal("expected some merged interleaving to differ at non-tested replicas")
	}
}
