package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/telemetry"
)

// This file is the parallel exploration engine. Exploration of an
// interleaving space parallelizes cleanly because every interleaving
// executes against a private cluster that is reset to the pristine
// checkpoint first: executing interleaving N is a pure function of
// (event log, interleaving, fault schedule, exploration index), never of
// what ran before it on the same worker.
//
// Topology: the coordinator (the caller's goroutine) owns the explorer,
// the dedup set, the journal, the datalog store, and the Result; workers
// own a private cluster, executor, and fault-injector clone each.
// Interleavings are pulled from the explorer in its native order, tagged
// with a stable 1-based index at assignment time, and dispatched over an
// unbuffered channel; results return on a buffered channel and are parked
// in a reorder buffer until every lower index has been processed.
//
// Deterministic regardless of worker count (identical to Workers == 1):
//   - which interleavings execute, their indices, and the journal order;
//   - Outcome delivery order to OnOutcome and to assertions (stateful
//     assertions see the exact sequential history);
//   - Violations, Quarantined, FirstViolation, and — on a completed or
//     StopOnViolation run — Explored;
//   - probabilistic fault arming (keyed by index, not by execution order).
//
// Best-effort (may differ from a sequential run):
//   - Duration, and retry-backoff jitter timing (per-worker generators);
//   - on StopOnViolation, work past the violating index may already have
//     executed; its results are discarded, but journal/store entries for
//     those indices remain (safe over-approximations: a journal key only
//     suppresses re-execution on resume, and store facts are monotone);
//   - on interruption, Explored counts results processed in order before
//     the cancellation was observed, while the explorer may have been
//     pulled further ahead (ModeRand's RandShuffles reflects that
//     ahead-pulling).
//
// ConstraintPoll re-pruning quiesces the pool: the poll boundary index is
// dispatched, the coordinator drains every in-flight execution and
// processes all results, and only then polls and (maybe) regenerates the
// explorer — a barrier, matching the sequential engine's poll points
// exactly at the cost of a bubble in the pipeline every PollEvery
// interleavings.
//
// ModeFuzz reuses those quiesce mechanics as its generation barrier
// (DESIGN.md §4.14): the fuzzer synthesizes a whole generation of mutated
// children up front, the pool pipelines them across all workers, and when
// the synthesis buffer drains the coordinator waits for every in-flight
// child to return and classify before letting the corpus evolve — so
// which permutations enter the corpus depends only on the seed and the
// classified signatures, never on worker count or completion order.
type pool struct {
	ctx      context.Context
	s        Scenario
	cfg      Config
	res      *Result
	explorer interleave.Explorer
	explored *exploredSet
	pruning  prune.Config
	maxNew   int

	workCh  chan workItem
	resCh   chan workResult
	fatalCh chan error

	// tel is nil when telemetry is off; all uses are nil-safe.
	tel *runTelemetry
	// cacheGen increments whenever re-pruning regenerates the explorer;
	// workers compare it before each item and flush their private prefix
	// caches when it moved, mirroring the sequential engine's
	// invalidate-on-re-prune. The quiesce barrier guarantees no execution
	// is in flight while it changes.
	cacheGen atomic.Uint64
	// sub is the run's shared subsumption table (nil when disabled).
	// Unlike the private caches it is flushed directly at the quiesce
	// barrier — no generation handshake needed, since no execution is in
	// flight while poll() runs.
	sub *subsumeTable
	// nextSince / pollSince anchor the dispatch-wait and quiesce-gap spans
	// (coordinator-only, valid only while tel is non-nil).
	nextSince time.Time
	pollSince time.Time

	// Coordinator-only state (no locking: single goroutine).
	assigned int                // indices handed out; the highest index that exists
	nextProc int                // next index to process in order
	pending  map[int]workResult // reorder buffer: arrived, not yet processed
	inflight int                // dispatched and not yet returned
	next     *workItem          // pulled from the explorer, not yet dispatched
	noMore   bool               // no further assignment (cap/exhausted/crash/halt)
	halted   bool               // stop processing too; drain and discard (stop/interrupt)
	stopViol bool               // halted by StopOnViolation
	pollWait bool               // quiescing for a ConstraintPoll boundary
	pollIdx  int                // the boundary index being drained
	pollSkip bool               // boundary index quarantined: skip this poll
	genWait  bool               // quiescing for a fuzz generation boundary
	genSince time.Time          // when the fuzz barrier armed (tel only)
}

// workItem is one interleaving dispatched to a worker, tagged with the
// stable exploration index assigned by the coordinator and the explorer's
// next-pivot hint captured at pull time (-1 when unavailable).
type workItem struct {
	index int
	il    interleave.Interleaving
	pivot int
}

// workResult is one executed interleaving flowing back to the coordinator.
type workResult struct {
	index    int
	il       interleave.Interleaving
	outcome  *Outcome
	attempts int
	err      error
}

// runParallel explores the scenario with a pool of workers, writing into
// res exactly what the sequential engine would have produced (see the
// guarantees above).
func runParallel(ctx context.Context, s Scenario, cfg Config, res *Result, explorer interleave.Explorer, explored *exploredSet, pruning prune.Config, maxNew, workers int, tel *runTelemetry, sub *subsumeTable) error {
	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	p := &pool{
		ctx:      ctx,
		s:        s,
		cfg:      cfg,
		res:      res,
		explorer: explorer,
		explored: explored,
		pruning:  pruning,
		maxNew:   maxNew,
		tel:      tel,
		sub:      sub,
		workCh:   make(chan workItem),
		// resCh and fatalCh hold one slot per worker, so workers always
		// send without blocking (each worker has at most one outstanding
		// result) and shutdown can never deadlock.
		resCh:    make(chan workResult, workers),
		fatalCh:  make(chan error, workers),
		pending:  make(map[int]workResult),
		nextProc: 1,
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.worker(wctx, w)
		}(w)
	}
	err := p.coordinate()
	// Shut the pool down on every exit path: cancel in-flight executions,
	// unblock workers waiting for work, and wait for them to finish. The
	// buffered result channel absorbs any final sends.
	cancelWorkers()
	close(p.workCh)
	wg.Wait()
	if err != nil {
		return err
	}
	p.finalize()
	return nil
}

// worker builds its private execution environment and runs interleavings
// until the work channel closes. Setup failures are fatal for the whole
// run (mirroring the sequential engine's cluster-setup error), execution
// failures are per-interleaving results.
func (p *pool) worker(ctx context.Context, w int) {
	exec, jitter, err := newWorkerEnv(p.s, p.cfg, w, p.tel, p.sub)
	if err != nil {
		p.fatalCh <- err
		return
	}
	var cacheGen uint64
	for item := range p.workCh {
		if exec.cache != nil {
			if g := p.cacheGen.Load(); g != cacheGen {
				cacheGen = g
				freed, stateFreed := exec.cache.invalidate()
				p.tel.onSnapshot(-freed, 0)
				p.tel.onPrefixDeltaBytes(-stateFreed)
				exec.prevIL = nil
			}
		}
		p.tel.setWorker(w, item.index)
		exec.pivot = item.pivot
		execSpan := p.tel.span(telemetry.StageExecute, item.index, w)
		outcome, attempts, err := executeWithRetry(ctx, exec, p.s, p.cfg, item.il, item.index, jitter)
		execSpan.End()
		p.tel.setWorker(w, 0)
		p.resCh <- workResult{index: item.index, il: item.il, outcome: outcome, attempts: attempts, err: err}
	}
}

// coordinate is the producer + aggregator loop.
func (p *pool) coordinate() error {
	for {
		if !p.noMore && !p.pollWait && !p.genWait && p.next == nil {
			if err := p.pull(); err != nil {
				return err
			}
		}
		if p.pollWait && p.inflight == 0 && p.nextProc > p.assigned {
			// Quiesced: everything assigned is executed and processed.
			if err := p.poll(); err != nil {
				return err
			}
			continue
		}
		if p.genWait && p.inflight == 0 && p.nextProc > p.assigned {
			// Fuzz generation quiesced: every child of the generation is
			// executed, processed, and classified — safe to evolve.
			p.fuzzBarrier()
			continue
		}
		if p.next == nil && p.inflight == 0 {
			// Mirror the sequential engine: a generation that completed
			// exactly at the cap still evolves (a partial one never does —
			// evolveFuzz guards GenerationEnd and Pending).
			if ge, ok := p.explorer.(generationExplorer); ok {
				p.evolveFuzz(ge)
			}
			return nil // nothing to dispatch, nothing in flight: done
		}
		if p.next != nil {
			select {
			case p.workCh <- *p.next:
				p.dispatched()
			case r := <-p.resCh:
				p.receive(r)
			case err := <-p.fatalCh:
				return err
			}
		} else {
			select {
			case r := <-p.resCh:
				p.receive(r)
			case err := <-p.fatalCh:
				return err
			}
		}
	}
}

// pull advances the explorer to the next fresh interleaving, assigns its
// index, and journals/records it — the exact sequential prologue of one
// loop iteration. It either sets p.next or stops assignment.
func (p *pool) pull() error {
	for {
		if p.assigned >= p.maxNew {
			p.noMore = true
			return nil
		}
		if err := p.ctx.Err(); err != nil {
			p.res.Interrupted = true
			p.res.InterruptErr = err
			p.stop()
			return nil
		}
		if ge, ok := p.explorer.(generationExplorer); ok && ge.GenerationEnd() {
			// Fuzz generation boundary: the synthesis buffer is empty, so
			// the next Next() would evolve the corpus. That is only sound
			// once every emitted child has executed and classified.
			if p.inflight > 0 || p.nextProc <= p.assigned {
				p.genWait = true
				if p.tel != nil {
					p.genSince = time.Now()
				}
				return nil
			}
			p.evolveFuzz(ge)
		}
		genSpan := p.tel.span(telemetry.StageGenerate, p.assigned+1, telemetry.CoordinatorWorker)
		il, ok := p.explorer.Next()
		genSpan.End()
		if !ok {
			p.res.Exhausted = true
			p.noMore = true
			return nil
		}
		key := il.Key()
		dedupSpan := p.tel.span(telemetry.StageDedup, p.assigned+1, telemetry.CoordinatorWorker)
		dup := p.explored.Has(key)
		if !dup && !p.explored.Add(key) {
			p.tel.onDedupSaturated()
		}
		dedupSpan.End()
		if dup {
			p.tel.onDedupSkipped()
			// A resumed/re-pruned key never executes: classify it as
			// yielding no corpus evidence so a fuzz generation can still
			// complete.
			reportDropped(p.explorer, key)
			continue // journal resume, or re-pruning regenerated the explorer
		}
		p.assigned++
		p.tel.onExplored()
		if p.cfg.Journal != nil {
			if err := p.cfg.Journal.AppendExplored(il); err != nil {
				return err
			}
		}
		if p.cfg.Store != nil {
			if err := p.cfg.Store.Record(il); err != nil {
				if errors.Is(err, datalog.ErrBudgetExhausted) {
					// The crashing index counts as explored but never
					// executes, like the sequential engine's break.
					p.res.Crashed = true
					p.res.CrashErr = err
					p.noMore = true
					return nil
				}
				return err
			}
		}
		p.next = &workItem{index: p.assigned, il: il, pivot: pivotOf(p.explorer)}
		if p.tel != nil {
			p.nextSince = time.Now()
		}
		return nil
	}
}

// dispatched notes that p.next went out and arms the poll barrier when
// the index is a poll boundary.
func (p *pool) dispatched() {
	index := p.next.index
	p.next = nil
	p.inflight++
	if p.tel != nil {
		// Dispatch span: how long the pulled interleaving waited for a free
		// worker — back-pressure from a saturated pool shows up here.
		p.tel.observeSpan(telemetry.StageDispatch, index, telemetry.CoordinatorWorker,
			p.nextSince, time.Since(p.nextSince))
	}
	if p.cfg.ConstraintPoll != nil && p.cfg.Mode == ModeERPi && index%p.cfg.PollEvery == 0 {
		p.pollWait = true
		p.pollIdx = index
		if p.tel != nil {
			p.pollSince = time.Now()
		}
	}
}

// receive parks a result in the reorder buffer and processes every result
// that is now next in index order.
func (p *pool) receive(r workResult) {
	p.inflight--
	p.pending[r.index] = r
	for !p.halted {
		// Observing the context's death here is the parallel analog of the
		// sequential loop-top check: results already processed stand,
		// later ones are discarded.
		if err := p.ctx.Err(); err != nil {
			p.res.Interrupted = true
			p.res.InterruptErr = err
			p.stop()
			return
		}
		next, ok := p.pending[p.nextProc]
		if !ok {
			return
		}
		delete(p.pending, p.nextProc)
		p.nextProc++
		p.process(next)
	}
}

// process handles one result in index order: quarantine, outcome hooks,
// assertions, and the stop-on-violation decision. It runs only on the
// coordinator, so stateful assertions and OnOutcome observers need no
// locking and see outcomes in exactly the sequential order.
func (p *pool) process(r workResult) {
	if r.err != nil {
		if p.ctx.Err() != nil {
			// The execution died with the run's context: interruption,
			// not a quarantine.
			p.res.Interrupted = true
			p.res.InterruptErr = p.ctx.Err()
			p.stop()
			return
		}
		if errors.Is(r.err, ErrSubsumed) {
			// Skipped by state subsumption: the index stands (journal,
			// dedup, cap) but there is no outcome to assert on — exactly
			// the sequential engine's `continue`, which also skips the
			// poll boundary.
			if p.pollWait && r.index == p.pollIdx {
				p.pollSkip = true
			}
			reportDropped(p.explorer, r.il.Key())
			p.res.Subsumed++
			return
		}
		if p.pollWait && r.index == p.pollIdx {
			// The sequential engine skips the poll when the boundary
			// interleaving is quarantined (its `continue` jumps the poll).
			p.pollSkip = true
		}
		reportDropped(p.explorer, r.il.Key())
		p.tel.onQuarantined()
		p.res.Quarantined = append(p.res.Quarantined, ExecError{
			Index:        r.index,
			Interleaving: r.il,
			Attempts:     r.attempts,
			Err:          r.err,
		})
		return
	}
	if p.cfg.OnOutcome != nil {
		p.cfg.OnOutcome(r.outcome)
	}
	reportFeedback(p.explorer, r.il, r.outcome)
	violated := false
	assertSpan := p.tel.span(telemetry.StageAssert, r.index, telemetry.CoordinatorWorker)
	newViolations := 0
	for _, a := range p.cfg.Assertions {
		if err := a.Check(r.outcome); err != nil {
			p.res.Violations = append(p.res.Violations, Violation{
				Index:        r.index,
				Interleaving: r.il,
				Assertion:    a.Name(),
				Err:          err,
			})
			newViolations++
			violated = true
		}
	}
	assertSpan.End()
	p.tel.onViolations(newViolations)
	if violated && p.res.FirstViolation == 0 {
		p.res.FirstViolation = r.index
	}
	if violated {
		// Runs on the coordinator goroutine, in index order, exactly like
		// the sequential engine — bundle numbering is deterministic.
		captureForensic(p.s, p.cfg, p.res, r.il, r.index, p.res.Violations)
	}
	if violated && p.cfg.StopOnViolation {
		p.stopViol = true
		p.stop()
	}
}

// stop halts assignment and processing; in-flight work is drained and
// discarded.
func (p *pool) stop() {
	p.noMore = true
	p.halted = true
	p.next = nil
	p.pollWait = false
	p.genWait = false
}

// fuzzBarrier closes one fuzz generation after the pool drained behind it:
// records the quiesce bubble (from arming the barrier to full drain) and
// evolves the corpus. Mirrors poll() for the ConstraintPoll barrier.
func (p *pool) fuzzBarrier() {
	p.genWait = false
	if p.tel != nil {
		p.tel.observeSpan(telemetry.StageQuiesce, p.assigned, telemetry.CoordinatorWorker,
			p.genSince, time.Since(p.genSince))
	}
	ge, ok := p.explorer.(generationExplorer)
	if !ok {
		return
	}
	p.evolveFuzz(ge)
}

// evolveFuzz folds a fully-classified generation into the fuzzer's corpus
// under a StageFuzzEvolve span and publishes the corpus gauges. Children
// that never executed (assignment crashed mid-generation) leave Pending
// non-zero; the corpus must not evolve on partial evidence, matching the
// sequential engine's break-without-evolve.
func (p *pool) evolveFuzz(ge generationExplorer) {
	if !ge.GenerationEnd() || ge.Pending() != 0 {
		return
	}
	span := p.tel.span(telemetry.StageFuzzEvolve, p.assigned, telemetry.CoordinatorWorker)
	ge.Evolve()
	span.End()
	p.tel.onFuzzGeneration(ge.Generations(), ge.CorpusSize(), ge.NoveltyRate())
}

// poll runs the quiesced ConstraintPoll and regenerates the explorer over
// the merged pruning config when new constraints arrived. Interleavings
// the regenerated explorer re-yields are skipped by the dedup set, as in
// the sequential engine.
func (p *pool) poll() error {
	p.pollWait = false
	if p.tel != nil {
		// Quiesce span: from arming the poll barrier at dispatch of the
		// boundary index until the pool fully drained — the pipeline bubble
		// each ConstraintPoll costs, visible as a coordinator-lane gap in
		// the Chrome trace.
		p.tel.observeSpan(telemetry.StageQuiesce, p.pollIdx, telemetry.CoordinatorWorker,
			p.pollSince, time.Since(p.pollSince))
	}
	if p.pollSkip {
		p.pollSkip = false
		return nil
	}
	extra, found, err := p.cfg.ConstraintPoll()
	if err != nil {
		return fmt.Errorf("runner: constraints: %w", err)
	}
	if found {
		p.pruning.Merge(extra)
		repruneSpan := p.tel.span(telemetry.StagePrune, p.pollIdx, telemetry.CoordinatorWorker)
		explorer, err := newExplorer(p.s, p.cfg, p.pruning)
		repruneSpan.End()
		if err != nil {
			return fmt.Errorf("runner: re-pruning: %w", err)
		}
		p.explorer = explorer
		p.cacheGen.Add(1)
		// The quiesce barrier holds (no execution in flight), so the
		// shared subsumption table can be flushed directly.
		if p.sub != nil {
			p.tel.onSubsumeBytes(-p.sub.invalidate())
		}
	}
	return nil
}

// finalize settles the Result's accounting to match the sequential
// engine's view of the same run.
func (p *pool) finalize() {
	res := p.res
	switch {
	case p.stopViol:
		// The sequential engine never looks past the first violation:
		// truncate to its horizon and drop flags that only later
		// (discarded) work could have set.
		res.Explored = res.FirstViolation
		res.Exhausted = false
		res.Crashed = false
		res.CrashErr = nil
	case res.Interrupted:
		res.Explored = p.nextProc - 1 // results processed in order
	default:
		res.Explored = p.assigned
	}
	if r, ok := p.explorer.(*interleave.RandExplorer); ok {
		res.RandShuffles = r.Shuffles()
	}
}
