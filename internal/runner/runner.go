// Package runner is ER-π's replay engine (paper §4.3–§4.4): it drives a
// scenario's event log through an exploration mode (ER-π pruned, DFS, or
// Rand), executes each interleaving against a fresh replica cluster —
// checkpointing and resetting states between interleavings — and checks
// test assertions after each one, collecting violations.
package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/fuzz"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Mode names an exploration strategy.
type Mode string

// Exploration modes of the paper's §6.3 evaluation.
const (
	// ModeERPi explores the pruned space (grouped units + filters).
	ModeERPi Mode = "erpi"
	// ModeDFS exhaustively explores all n! event orders depth-first.
	ModeDFS Mode = "dfs"
	// ModeRand explores uniformly random event orders with a dedup cache.
	ModeRand Mode = "rand"
	// ModeFuzz is the coverage-guided greybox mode (the paper's §8 future
	// work): order mutations over a corpus of interleavings that produced
	// novel outcome signatures.
	ModeFuzz Mode = "fuzz"
)

// Scenario is one workload to replay exhaustively.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Log is the recorded event log.
	Log *event.Log
	// NewCluster builds fresh replica states for the scenario.
	NewCluster func() (*replica.Cluster, error)
	// Pruning configures ER-π's pruning algorithms (ModeERPi only).
	Pruning prune.Config
	// Finalize, when set, runs after executing each interleaving and
	// before the assertions — typically an anti-entropy round that
	// completes delivery, so that convergence assertions are free of
	// propagation-lag false positives and flag only genuine
	// order-dependent corruption. Outcome fingerprints are recomputed
	// after it runs.
	Finalize func(*replica.Cluster) error
}

// AntiEntropy returns a Finalize function performing `rounds` rounds of
// full pairwise state exchange (every ordered replica pair, in sorted
// order). Two rounds give transitive closure for any replica count.
func AntiEntropy(rounds int) func(*replica.Cluster) error {
	if rounds <= 0 {
		rounds = 2
	}
	return func(c *replica.Cluster) error {
		ids := c.IDs()
		for r := 0; r < rounds; r++ {
			for _, from := range ids {
				for _, to := range ids {
					if from == to {
						continue
					}
					src, err := c.Node(from)
					if err != nil {
						return err
					}
					dst, err := c.Node(to)
					if err != nil {
						return err
					}
					payload, err := src.State.SyncPayload()
					if err != nil {
						return fmt.Errorf("runner: anti-entropy payload %s: %w", from, err)
					}
					if err := dst.State.ApplySync(payload); err != nil && !errors.Is(err, replica.ErrFailedOp) {
						return fmt.Errorf("runner: anti-entropy %s->%s: %w", from, to, err)
					}
				}
			}
		}
		return nil
	}
}

// Outcome captures everything observable from executing one interleaving.
type Outcome struct {
	// Index is the 1-based exploration position.
	Index int
	// Interleaving is the executed event order.
	Interleaving interleave.Interleaving
	// Fingerprints are the final per-replica state digests.
	Fingerprints map[event.ReplicaID]string
	// Observations map Observe/Update event IDs to their returned values.
	Observations map[event.ID]string
	// FailedOps lists events rejected by data-type constraints.
	FailedOps []event.ID
	// DroppedSyncs lists synchronizations dropped by an injected network
	// partition (empty in fault-free runs).
	DroppedSyncs []event.ID
	// Converged reports whether all replicas ended with equal fingerprints.
	Converged bool
	// FaultArmed reports that the fault schedule armed at least one fault
	// for this execution. Fault-armed replays bypass the prefix cache (a
	// crash or truncation makes cached prefix states wrong) and, in
	// ModeFuzz, the corpus feedback batch — their signatures reflect the
	// fault schedule, not the order mutation, so they must not steer the
	// corpus.
	FaultArmed bool
}

// Assertion checks a property after each interleaving. Implementations may
// keep state across interleavings (e.g. comparing a replica's final state
// between different orders, the detector for misconceptions #1 and #5).
type Assertion interface {
	// Name labels the assertion in violation reports.
	Name() string
	// Check returns a non-nil error when the outcome violates the property.
	Check(o *Outcome) error
}

// Violation is one assertion failure.
type Violation struct {
	Index        int
	Interleaving interleave.Interleaving
	Assertion    string
	Err          error
}

func (v Violation) String() string {
	return fmt.Sprintf("interleaving #%d [%s] violates %s: %v",
		v.Index, v.Interleaving.Key(), v.Assertion, v.Err)
}

// Config tunes one exploration run.
type Config struct {
	// Mode selects the exploration strategy (default ModeERPi).
	Mode Mode
	// MaxInterleavings caps exploration (default 10000, the paper's
	// termination threshold). Zero means the default; negative means
	// unbounded. The cap is session-wide: interleavings resumed from a
	// Journal count toward it, so a killed-and-resumed exploration never
	// executes more than MaxInterleavings in total.
	MaxInterleavings int
	// Seed drives ModeRand.
	Seed int64
	// Workers is how many interleavings execute concurrently, each against
	// its own replica cluster built from Scenario.NewCluster (which must
	// therefore be safe for concurrent calls when Workers > 1). Zero or
	// negative means runtime.GOMAXPROCS(0); 1 forces the sequential
	// engine. Exploration order, violation sets, and FirstViolation are
	// identical at every worker count — see pool.go for the ordering
	// guarantees. ModeFuzz explores in generations (whole batches of
	// mutated children synthesized up front, corpus evolution once per
	// generation at a pool quiesce barrier), so its corpus trajectory and
	// signature set are also identical at every worker count.
	Workers int
	// LiveWorkers, when > 0, routes exploration through the live replay
	// path (ExecuteLive semantics: one goroutine per replica re-issues its
	// recorded calls, ordered by a TurnGate) with that many interleavings
	// in flight concurrently, each under its own gate session. The
	// coordinator is the same as the checkpointed pool's, so which
	// interleavings run, outcome delivery order, violations, and
	// FirstViolation are identical at every worker count — and identical
	// to a sequential ExecuteLive loop. ModeFuzz clamps the live path to 1
	// session (live replay cannot batch generations across real gate
	// sessions without changing timing-sensitive semantics). When zero,
	// Workers selects the checkpointed engine as before.
	LiveWorkers int
	// LiveGates supplies each live worker's gate-session factory (nil
	// defaults to in-process LocalGate sessions). Lock-server-backed runs
	// wrap one proxy.DistPool per worker so every session gets its own
	// epoch-fenced key namespace.
	LiveGates LiveGates
	// StopOnViolation ends exploration at the first assertion failure —
	// the bug-reproduction configuration of §6.3.
	StopOnViolation bool
	// Assertions are checked after every interleaving.
	Assertions []Assertion
	// Store, when set, persists every explored interleaving; a full store
	// aborts the run with datalog.ErrBudgetExhausted (the Figure 10
	// "crash").
	Store *datalog.Store
	// ConstraintPoll, when set, is called every PollEvery interleavings;
	// returning new constraints triggers re-pruning (ModeERPi only),
	// regenerating the explorer over the merged config.
	ConstraintPoll func() (prune.Config, bool, error)
	// PollEvery is the constraint polling interval in interleavings
	// (default 100).
	PollEvery int
	// OnOutcome, when set, observes every outcome (tracing hook).
	OnOutcome func(*Outcome)
	// Journal, when set, persists the recorded log and every explored
	// interleaving to the session directory; interleavings already in the
	// journal are skipped, so an interrupted exploration resumes where it
	// left off (paper §4.2: ER-π persists the interleavings).
	Journal *checkpoint.Dir
	// Deadline bounds the whole run's wall-clock time; when it expires
	// the run stops promptly and returns the partial Result with
	// Interrupted set (zero = unbounded).
	Deadline time.Duration
	// InterleavingTimeout bounds each execution attempt of a single
	// interleaving; a timed-out attempt counts as an execution error and
	// goes through the retry/quarantine path (zero = unbounded).
	InterleavingTimeout time.Duration
	// MaxRetries is how many times an errored interleaving is re-executed
	// — with exponential backoff plus seeded jitter — before being
	// quarantined. Zero means the default of 1 retry; negative disables
	// retries entirely.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt with ±50% jitter drawn from the run's seeded generator
	// (default 1ms).
	RetryBackoff time.Duration
	// Faults, when set, injects the deterministic fault schedule into
	// every execution (replica crashes, partitions, payload truncation;
	// see the fault package). A schedule with no faults is observationally
	// identical to running without one.
	Faults *fault.Schedule
	// FuzzGenerationSize fixes how many mutated children ModeFuzz
	// synthesizes per generation (the unit of corpus evolution and the
	// pool's fuzz quiesce barrier). Zero selects adaptive sizing: the
	// generation starts at fuzz.DefaultGenerationSize and grows when the
	// corpus-novelty rate is low (amortizing the barrier) or shrinks when
	// it is high (mutating from the freshest corpus). Both fixed and
	// adaptive sizing depend only on seed and classification outcomes,
	// never on worker count, so the corpus trajectory stays pinned.
	FuzzGenerationSize int
	// MaxExploredKeys caps the in-memory dedup set that prevents
	// re-executing interleavings (default ~1M entries; negative =
	// unbounded). Beyond the cap, dedup degrades to best-effort — an
	// order may run twice — but memory stays bounded, which is what long
	// ModeRand/ModeFuzz explorations want. See exploredSet for the full
	// trade-off.
	MaxExploredKeys int
	// PrefixCacheBytes, when > 0, enables incremental replay: each worker
	// keeps a private bounded trie of mid-run cluster snapshots keyed by
	// executed event-prefix, restores the deepest cached prefix of every
	// interleaving, and replays only the suffix (DESIGN.md §4.9). The
	// value bounds the cached snapshot bytes per worker. Strictly an
	// accelerator: results are byte-identical with the cache on or off,
	// and fault-carrying interleavings always fall back to a clean
	// genesis replay. Zero disables the cache.
	PrefixCacheBytes int64
	// PrefixSnapshotEvery is the cache's snapshot insertion stride in
	// events (default 4): during execution a snapshot is inserted every K
	// events, plus at the divergence depth against the previous
	// interleaving.
	PrefixSnapshotEvery int
	// SubsumptionTable, when > 0, enables DPOR-style state subsumption
	// (DESIGN.md §4.12): at snapshot depths the executor hashes the
	// canonical execution context and skips the rest of any interleaving
	// whose (state-hash, remaining-event-multiset) frontier was already
	// visited via a lexicographically smaller prefix — the skipped
	// interleaving's outcome is provably one an executed interleaving
	// produces. The value bounds the visited-frontier table in bytes,
	// shared across all workers of the run. Skipped interleavings still
	// consume exploration indices (MaxInterleavings, dedup, journal) and
	// are counted in Result.Subsumed; they produce no Outcome, so the
	// deduplicated outcome-signature set is invariant but per-index
	// results are not. Only the lexicographic enumerators honor it
	// (ModeERPi, ModeDFS) — Rand and Fuzz enumeration cannot guarantee a
	// witness runs, so the flag is ignored there, as it is on the live
	// path. Fault-armed interleavings bypass the table both ways. Zero
	// disables subsumption.
	SubsumptionTable int64
	// FullSnapshotHashing disables the incremental snapshot path
	// (DESIGN.md §4.15): every CanonicalSnapshot re-serializes and
	// re-hashes every replica instead of reusing the per-replica
	// version-keyed caches. The hash DEFINITION is identical either way —
	// this is a bisection escape hatch, not a different digest — so all
	// hashes, signatures, and determinism pins are byte-identical with the
	// flag on or off. Default off (incremental).
	FullSnapshotHashing bool
	// NoPrefixDeltas disables delta accounting in the prefix cache: every
	// snapshot is charged its full logical size instead of sharing clean
	// replicas' state buffers with neighboring prefixes. Cache contents
	// and restore semantics are unchanged — only the byte accounting (and
	// therefore eviction pressure) differs. Default off (deltas on).
	NoPrefixDeltas bool
	// Telemetry, when set, receives the run's metrics, live progress, and
	// per-stage spans (see the telemetry package). Strictly observational:
	// a run with telemetry attached explores the same interleavings, in
	// the same order, with the same results as one without, and a nil
	// registry costs nothing on the hot path.
	Telemetry *telemetry.Registry
	// ForensicDir, when set, captures a forensic bundle for each violating
	// interleaving (up to MaxForensicBundles) by re-executing it on a fresh
	// cluster with per-step state capture, and writes the bundles there as
	// JSON for `erpi explain` (DESIGN.md §4.13). Capture is post-hoc
	// re-execution only: the exploration hot path is untouched, so results
	// and determinism pins are identical with forensics on or off. Empty
	// disables capture.
	ForensicDir string
	// MaxForensicBundles caps bundles written per run (default
	// DefaultMaxForensicBundles; forensics are a diagnostic artifact, not
	// an exhaustive violation archive).
	MaxForensicBundles int
}

// DefaultMaxInterleavings is the paper's exploration cap.
const DefaultMaxInterleavings = 10000

// defaultPrefixSnapshotEvery is the default Config.PrefixSnapshotEvery:
// lexicographic neighbors differ in their last ~e≈2.7 positions on
// average, so a stride of 4 keeps a usable restore point near the tail
// of every prefix without snapshotting after every event.
const defaultPrefixSnapshotEvery = 4

// Result summarizes one exploration run.
type Result struct {
	Scenario   string
	Mode       Mode
	Explored   int
	Violations []Violation
	// Exhausted reports that the space ran out before the cap.
	Exhausted bool
	// Crashed reports a resource-budget abort (Figure 10 semantics).
	Crashed bool
	// CrashErr holds the budget error when Crashed.
	CrashErr error
	// Duration is the wall-clock exploration time.
	Duration time.Duration
	// RandShuffles counts total shuffle attempts in ModeRand (wasted work
	// included).
	RandShuffles int
	// FirstViolation is the 1-based index of the first violation (0 if
	// none) — the "interleavings to reproduce the bug" metric of Fig. 8a.
	FirstViolation int
	// Resumed counts interleavings skipped because a journal already held
	// them (0 without a journal).
	Resumed int
	// Subsumed counts interleavings skipped by state subsumption
	// (Config.SubsumptionTable). They are included in Explored — an index
	// was assigned, journaled, and deduped before the skip — but produced
	// no Outcome. Which interleavings are subsumed can vary with worker
	// count and timing; the deduplicated outcome-signature set does not.
	Subsumed int
	// Quarantined lists interleavings whose execution kept failing after
	// retries. Exploration continues past them, so a faulted run always
	// yields partial results instead of aborting at the first error.
	Quarantined []ExecError
	// Interrupted reports that the run stopped early because the context
	// was cancelled or Config.Deadline expired; the Result is the partial
	// progress up to that point.
	Interrupted bool
	// InterruptErr holds the context error when Interrupted.
	InterruptErr error
	// DedupSaturated reports that the in-memory dedup set hit
	// Config.MaxExploredKeys and degraded to best-effort: beyond that
	// point an interleaving may have been executed (and counted) more
	// than once.
	DedupSaturated bool
	// Bundles lists the forensic bundle files written under
	// Config.ForensicDir, one per captured violating interleaving (empty
	// when forensics are off or nothing violated).
	Bundles []string
	// Fuzz holds the corpus statistics of a ModeFuzz run (nil for every
	// other mode).
	Fuzz *FuzzStats
}

// FuzzStats summarizes a ModeFuzz run's corpus evolution. All fields are
// deterministic for a given seed and generation size — identical at every
// worker count — except none: the whole struct is part of the parity pin.
type FuzzStats struct {
	// Generations is how many generations completed (evolved the corpus).
	Generations int
	// CorpusSize is the final corpus size (behaviour-novel interleavings).
	CorpusSize int
	// Coverage is the number of distinct behaviour signatures observed.
	Coverage int
	// NoveltyRate is the last completed generation's novel-signature
	// fraction (drives adaptive generation sizing).
	NoveltyRate float64
	// TrajectoryDigest folds every corpus admission (generation, key,
	// signature, in admission order) into a hex digest — equal digests
	// mean byte-identical corpus evolution.
	TrajectoryDigest string
	// Exhausted reports the fuzzer declared the reachable mutation space
	// exhausted (mirrored into Result.Exhausted by the engines).
	Exhausted bool
}

// ExecError records one quarantined interleaving: an event order whose
// execution kept failing after Config.MaxRetries retries.
type ExecError struct {
	// Index is the 1-based exploration position.
	Index int
	// Interleaving is the failing event order.
	Interleaving interleave.Interleaving
	// Attempts counts the execution attempts made (1 + retries).
	Attempts int
	// Err is the final attempt's error.
	Err error
}

func (e ExecError) String() string {
	return fmt.Sprintf("interleaving #%d [%s] quarantined after %d attempts: %v",
		e.Index, e.Interleaving.Key(), e.Attempts, e.Err)
}

// Run explores a scenario under the config.
func Run(s Scenario, cfg Config) (*Result, error) {
	return RunContext(context.Background(), s, cfg)
}

// RunContext explores a scenario under the config, honoring ctx: when the
// context is cancelled (or Config.Deadline expires) the run stops promptly
// and returns the partial Result with Interrupted set, rather than an
// error — exploration progress is never discarded.
func RunContext(ctx context.Context, s Scenario, cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.Mode == "" {
		cfg.Mode = ModeERPi
	}
	maxIL := cfg.MaxInterleavings
	switch {
	case maxIL == 0:
		maxIL = DefaultMaxInterleavings
	case maxIL < 0:
		maxIL = int(^uint(0) >> 1) // unbounded
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 100
	}
	normalizeRetry(&cfg)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	live := cfg.LiveWorkers > 0
	if live {
		workers = cfg.LiveWorkers
	}
	if cfg.Mode == ModeFuzz && live {
		// Checkpointed fuzzing parallelizes by generation (pool.go's fuzz
		// barrier), but live replay still clamps to one session: live
		// sessions cannot batch generations without changing the
		// timing-sensitive gate semantics the live path exists to test.
		workers = 1
	}
	if s.Log == nil || s.Log.Len() == 0 {
		return nil, errors.New("runner: scenario has no events")
	}
	if s.NewCluster == nil {
		return nil, errors.New("runner: scenario has no cluster factory")
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
	}
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}

	tel := newRunTelemetry(cfg.Telemetry)
	pruning := s.Pruning
	pruneSpan := tel.span(telemetry.StagePrune, 0, telemetry.CoordinatorWorker)
	explorer, err := newExplorer(s, cfg, pruning)
	pruneSpan.End()
	if err != nil {
		return nil, err
	}

	res := &Result{Scenario: s.Name, Mode: cfg.Mode}
	explored := newExploredSet(cfg.MaxExploredKeys)
	if cfg.Journal != nil {
		if err := cfg.Journal.SaveLog(s.Log); err != nil {
			return nil, err
		}
		prior, err := cfg.Journal.LoadExplored()
		if err != nil {
			return nil, err
		}
		for key := range prior {
			explored.Add(key)
		}
		res.Resumed = len(prior)
		if tel != nil {
			cfg.Journal.SetFsyncObserver(tel.fsyncObserver())
			defer cfg.Journal.SetFsyncObserver(nil)
		}
	}
	// The cap is session-wide: what the journal already holds counts
	// toward it, and this run only gets the remainder.
	maxNew := maxIL - res.Resumed
	if maxNew < 0 {
		maxNew = 0
	}
	tel.beginRun(maxNew, workers, res.Resumed)
	defer tel.endRun()

	// One subsumption table is shared by every worker of the run; the live
	// path never consults it (live replay re-issues real calls and cannot
	// abandon an interleaving mid-flight).
	sub := newSubsumption(cfg)

	switch {
	case live:
		err = runLive(ctx, s, cfg, res, explorer, explored, pruning, maxNew, workers, tel)
	case workers > 1:
		err = runParallel(ctx, s, cfg, res, explorer, explored, pruning, maxNew, workers, tel, sub)
	default:
		err = runSequential(ctx, s, cfg, res, explorer, explored, pruning, maxNew, tel, sub)
	}
	if err != nil {
		return nil, err
	}
	if ge, ok := explorer.(generationExplorer); ok {
		res.Fuzz = &FuzzStats{
			Generations:      ge.Generations(),
			CorpusSize:       ge.CorpusSize(),
			Coverage:         ge.Coverage(),
			NoveltyRate:      ge.NoveltyRate(),
			TrajectoryDigest: ge.TrajectoryDigest(),
			Exhausted:        ge.Exhausted(),
		}
	}
	res.DedupSaturated = explored.Saturated()
	if cfg.Journal != nil {
		if err := cfg.Journal.Flush(); err != nil {
			return nil, err
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// runSequential is the one-worker engine: a single cluster and executor
// driven directly by the explorer. With Workers == 1 this is the exact
// pre-parallel code path.
func runSequential(ctx context.Context, s Scenario, cfg Config, res *Result, explorer interleave.Explorer, explored *exploredSet, pruning prune.Config, maxNew int, tel *runTelemetry, sub *subsumeTable) error {
	// The sequential engine executes on its own goroutine; spans attribute
	// that work to worker 0, matching a one-worker pool's timeline. Retry
	// jitter comes from a seeded generator so chaotic runs stay
	// reproducible end to end.
	exec, jitter, err := newWorkerEnv(s, cfg, 0, tel, sub)
	if err != nil {
		return err
	}

	for res.Explored < maxNew {
		if err := ctx.Err(); err != nil {
			res.Interrupted = true
			res.InterruptErr = err
			break
		}
		genSpan := tel.span(telemetry.StageGenerate, res.Explored+1, telemetry.CoordinatorWorker)
		il, ok := explorer.Next()
		genSpan.End()
		if !ok {
			res.Exhausted = true
			break
		}
		key := il.Key()
		dedupSpan := tel.span(telemetry.StageDedup, res.Explored+1, telemetry.CoordinatorWorker)
		dup := explored.Has(key)
		if !dup && !explored.Add(key) {
			tel.onDedupSaturated()
		}
		dedupSpan.End()
		if dup {
			tel.onDedupSkipped()
			// A skipped fuzz child still needs classifying (as dropped) or
			// its generation would never complete.
			reportDropped(explorer, key)
			maybeEvolveFuzz(explorer, tel)
			continue // journal resume, or re-pruning regenerated the explorer
		}
		res.Explored++
		tel.onExplored()
		if cfg.Journal != nil {
			if err := cfg.Journal.AppendExplored(il); err != nil {
				return err
			}
		}

		if cfg.Store != nil {
			if err := cfg.Store.Record(il); err != nil {
				if errors.Is(err, datalog.ErrBudgetExhausted) {
					res.Crashed = true
					res.CrashErr = err
					break
				}
				return err
			}
		}

		tel.setWorker(0, res.Explored)
		exec.pivot = pivotOf(explorer)
		execSpan := tel.span(telemetry.StageExecute, res.Explored, 0)
		outcome, attempts, execErr := executeWithRetry(ctx, exec, s, cfg, il, res.Explored, jitter)
		execSpan.End()
		tel.setWorker(0, 0)
		if execErr != nil {
			if ctx.Err() != nil {
				res.Interrupted = true
				res.InterruptErr = ctx.Err()
				break
			}
			if errors.Is(execErr, ErrSubsumed) {
				// The index, journal entry, and dedup key all stand — the
				// interleaving counted toward the cap before the skip — it
				// just produced no outcome to assert on.
				res.Subsumed++
				reportDropped(explorer, key)
				maybeEvolveFuzz(explorer, tel)
				continue
			}
			// Quarantine instead of aborting: exploration continues and the
			// run yields everything else.
			tel.onQuarantined()
			res.Quarantined = append(res.Quarantined, ExecError{
				Index:        res.Explored,
				Interleaving: il,
				Attempts:     attempts,
				Err:          execErr,
			})
			reportDropped(explorer, key)
			maybeEvolveFuzz(explorer, tel)
			continue
		}
		if cfg.OnOutcome != nil {
			cfg.OnOutcome(outcome)
		}
		reportFeedback(explorer, il, outcome)
		maybeEvolveFuzz(explorer, tel)
		violated := false
		assertSpan := tel.span(telemetry.StageAssert, res.Explored, telemetry.CoordinatorWorker)
		newViolations := 0
		for _, a := range cfg.Assertions {
			if err := a.Check(outcome); err != nil {
				res.Violations = append(res.Violations, Violation{
					Index:        res.Explored,
					Interleaving: il,
					Assertion:    a.Name(),
					Err:          err,
				})
				newViolations++
				violated = true
			}
		}
		assertSpan.End()
		tel.onViolations(newViolations)
		if violated && res.FirstViolation == 0 {
			res.FirstViolation = res.Explored
		}
		if violated {
			captureForensic(s, cfg, res, il, res.Explored, res.Violations)
		}
		if violated && cfg.StopOnViolation {
			break
		}

		if cfg.ConstraintPoll != nil && cfg.Mode == ModeERPi && res.Explored%cfg.PollEvery == 0 {
			extra, found, err := cfg.ConstraintPoll()
			if err != nil {
				return fmt.Errorf("runner: constraints: %w", err)
			}
			if found {
				pruning.Merge(extra)
				repruneSpan := tel.span(telemetry.StagePrune, res.Explored, telemetry.CoordinatorWorker)
				explorer, err = newExplorer(s, cfg, pruning)
				repruneSpan.End()
				if err != nil {
					return fmt.Errorf("runner: re-pruning: %w", err)
				}
				// Re-pruning regenerates the explorer sequence; flush the
				// prefix cache so it does not hold branches the new
				// sequence will never walk, and the subsumption table so
				// skips are justified against the new enumeration only.
				if exec.cache != nil {
					freed, stateFreed := exec.cache.invalidate()
					tel.onSnapshot(-freed, 0)
					tel.onPrefixDeltaBytes(-stateFreed)
					exec.prevIL = nil
				}
				if sub != nil {
					tel.onSubsumeBytes(-sub.invalidate())
				}
			}
		}
	}
	if r, ok := explorer.(*interleave.RandExplorer); ok {
		res.RandShuffles = r.Shuffles()
	}
	return nil
}

// executeAttempt performs one execution attempt: run the interleaving
// (under the per-interleaving timeout, when configured; execute itself
// restores the cluster from a cached prefix or the genesis checkpoint),
// finalize, and recompute the outcome's post-finalize fields.
func executeAttempt(ctx context.Context, exec *executor, s Scenario, cfg Config, il interleave.Interleaving, index int) (*Outcome, error) {
	ilCtx := ctx
	if cfg.InterleavingTimeout > 0 {
		var cancel context.CancelFunc
		ilCtx, cancel = context.WithTimeout(ctx, cfg.InterleavingTimeout)
		defer cancel()
	}
	outcome, err := exec.execute(ilCtx, il, index)
	if err != nil {
		return nil, err
	}
	if s.Finalize != nil {
		if err := s.Finalize(exec.cluster); err != nil {
			return nil, fmt.Errorf("finalize: %w", err)
		}
		outcome.Fingerprints = exec.cluster.Fingerprints()
		outcome.Converged = exec.cluster.Converged()
	}
	return outcome, nil
}

// executeWithRetry drives executeAttempt through the retry policy:
// exponential backoff with seeded ±50% jitter, up to cfg.MaxRetries
// retries, aborting early when ctx dies. It returns the outcome, the
// number of attempts made, and the final error when every attempt failed.
func executeWithRetry(ctx context.Context, exec *executor, s Scenario, cfg Config, il interleave.Interleaving, index int, jitter *rand.Rand) (*Outcome, int, error) {
	attempts := 0
	for {
		attempts++
		outcome, err := executeAttempt(ctx, exec, s, cfg, il, index)
		if err == nil {
			return outcome, attempts, nil
		}
		if ctx.Err() != nil {
			return nil, attempts, ctx.Err()
		}
		if errors.Is(err, ErrSubsumed) {
			// Not a failure: re-executing would reach the same visited
			// frontier and skip again.
			return nil, attempts, err
		}
		if attempts > cfg.MaxRetries {
			return nil, attempts, err
		}
		exec.tel.onRetry()
		select {
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		case <-time.After(retryDelay(cfg.RetryBackoff, attempts, jitter)):
		}
	}
}

// maxRetryBackoff caps the exponential retry backoff. Without it, doubling
// the base per attempt overflows time.Duration after ~63 shifts (sooner
// with large bases), producing a negative delay that panics the jitter
// draw.
const maxRetryBackoff = 30 * time.Second

// retryDelay computes the sleep before retry number `attempt` (1-based):
// exponential backoff from base, clamped to maxRetryBackoff, with seeded
// ±50% jitter.
func retryDelay(base time.Duration, attempt int, jitter *rand.Rand) time.Duration {
	backoff := base
	for i := 1; i < attempt; i++ {
		if backoff >= maxRetryBackoff/2 {
			backoff = maxRetryBackoff
			break
		}
		backoff <<= 1
	}
	if backoff > maxRetryBackoff {
		backoff = maxRetryBackoff
	}
	return backoff/2 + time.Duration(jitter.Int63n(int64(backoff)+1))
}

// NewPrunedExplorer builds the ER-π explorer for a scenario (grouped
// units + pruning filters), for callers that drive exploration themselves.
func NewPrunedExplorer(s Scenario) (interleave.Explorer, error) {
	return prune.NewExplorer(s.Log, s.Pruning)
}

// ExecuteOnce runs a single given interleaving of the scenario (fresh
// cluster, execute, finalize) and returns its outcome. Used to compute the
// reported manifestation of a bug benchmark from its trigger order.
func ExecuteOnce(s Scenario, il interleave.Interleaving) (*Outcome, error) {
	cluster, err := s.NewCluster()
	if err != nil {
		return nil, fmt.Errorf("runner: cluster setup: %w", err)
	}
	if err := cluster.Checkpoint(); err != nil {
		return nil, err
	}
	exec := &executor{log: s.Log, cluster: cluster}
	outcome, err := exec.execute(context.Background(), il, 1)
	if err != nil {
		return nil, err
	}
	if s.Finalize != nil {
		if err := s.Finalize(cluster); err != nil {
			return nil, err
		}
		outcome.Fingerprints = cluster.Fingerprints()
		outcome.Converged = cluster.Converged()
	}
	return outcome, nil
}

// newSubsumption builds the run's shared subsumption table, or nil when
// disabled. Only the lexicographic enumerators get one: the soundness
// argument (DESIGN.md §4.12) needs every lexicographically smaller
// completion of a visited frontier to be enumerated, which ModeRand's
// sampling and ModeFuzz's corpus mutation cannot guarantee.
func newSubsumption(cfg Config) *subsumeTable {
	if cfg.SubsumptionTable <= 0 || !subsumableMode(cfg.Mode) {
		return nil
	}
	return newSubsumeTable(cfg.SubsumptionTable)
}

func subsumableMode(m Mode) bool { return m == ModeERPi || m == ModeDFS }

// pivotOf asks the explorer where its next yield will diverge from the
// one just pulled (-1 when the explorer cannot predict), so the prefix
// cache can snapshot exactly where the next lookup lands.
func pivotOf(e interleave.Explorer) int {
	if p, ok := e.(interleave.PivotExplorer); ok {
		return p.NextPivot()
	}
	return -1
}

// feedbackExplorer is implemented by coverage-guided explorers that want
// the behaviour signature of each executed interleaving, delivered
// positionally (oldest unclassified emission first). The engines prefer
// generationExplorer when available.
type feedbackExplorer interface {
	Report(signature string)
}

// generationExplorer is the engines' contract with the generation-batched
// fuzzer (DESIGN.md §4.14): children are classified by interleaving key —
// so results may arrive in any order from any number of workers — and the
// corpus evolves exactly once per generation, at a point where every
// emitted child is classified (the pool's fuzz quiesce barrier).
type generationExplorer interface {
	interleave.Explorer
	// GenerationEnd reports the synthesis buffer is drained: evolve (after
	// classification completes) before pulling again.
	GenerationEnd() bool
	// Pending counts emitted-but-unclassified children.
	Pending() int
	// ReportOutcome / ReportDropped classify one emitted child by key.
	ReportOutcome(key, signature string)
	ReportDropped(key string)
	// Evolve folds the classified generation into the corpus (idempotent
	// outside a fully-emitted generation).
	Evolve()
	Generations() int
	CorpusSize() int
	Coverage() int
	NoveltyRate() float64
	TrajectoryDigest() string
	Exhausted() bool
}

// reportFeedback classifies one executed interleaving's outcome with the
// explorer. Generation explorers get key-addressed classification —
// fault-armed executions are dropped from the corpus feedback, mirroring
// their prefix-cache bypass — and legacy feedback explorers get the
// positional Report.
func reportFeedback(explorer interleave.Explorer, il interleave.Interleaving, o *Outcome) {
	if ge, ok := explorer.(generationExplorer); ok {
		if o.FaultArmed {
			ge.ReportDropped(il.Key())
		} else {
			ge.ReportOutcome(il.Key(), behaviorSignature(o))
		}
		return
	}
	if fb, ok := explorer.(feedbackExplorer); ok {
		fb.Report(behaviorSignature(o))
	}
}

// reportDropped classifies one emitted interleaving as yielding no corpus
// evidence (dedup skip, subsumption, quarantine). No-op for non-fuzz
// explorers.
func reportDropped(explorer interleave.Explorer, key string) {
	if ge, ok := explorer.(generationExplorer); ok {
		ge.ReportDropped(key)
	}
}

// maybeEvolveFuzz runs the fuzzer's once-per-generation corpus evolution
// when the generation is fully emitted and classified, under a
// StageFuzzEvolve span, publishing the fuzz gauges. The sequential
// engine's analog of the pool's fuzz quiesce barrier.
func maybeEvolveFuzz(explorer interleave.Explorer, tel *runTelemetry) {
	ge, ok := explorer.(generationExplorer)
	if !ok || !ge.GenerationEnd() || ge.Pending() != 0 {
		return
	}
	span := tel.span(telemetry.StageFuzzEvolve, ge.Explored(), telemetry.CoordinatorWorker)
	ge.Evolve()
	span.End()
	tel.onFuzzGeneration(ge.Generations(), ge.CorpusSize(), ge.NoveltyRate())
}

// OutcomeSignature digests an outcome into the engine's stable behaviour
// signature: fingerprints, observations, failed ops, and dropped syncs,
// order-insensitive where execution order is nondeterministic. Equal
// behaviours collapse to equal strings, which is what benchmarks and
// determinism pins compare across engines.
func OutcomeSignature(o *Outcome) string { return behaviorSignature(o) }

// behaviorSignature digests an outcome into a stable string: equal
// behaviours collapse, so coverage-guided exploration can detect novelty.
func behaviorSignature(o *Outcome) string {
	var b strings.Builder
	reps := make([]string, 0, len(o.Fingerprints))
	for r := range o.Fingerprints {
		reps = append(reps, string(r))
	}
	sort.Strings(reps)
	for _, r := range reps {
		b.WriteString(r)
		b.WriteByte('=')
		b.WriteString(o.Fingerprints[event.ReplicaID(r)])
		b.WriteByte(';')
	}
	obs := make([]int, 0, len(o.Observations))
	for id := range o.Observations {
		obs = append(obs, int(id))
	}
	sort.Ints(obs)
	for _, id := range obs {
		fmt.Fprintf(&b, "o%d=%s;", id, o.Observations[event.ID(id)])
	}
	failed := make([]int, 0, len(o.FailedOps))
	for _, id := range o.FailedOps {
		failed = append(failed, int(id))
	}
	sort.Ints(failed)
	for _, id := range failed {
		fmt.Fprintf(&b, "f%d;", id)
	}
	dropped := make([]int, 0, len(o.DroppedSyncs))
	for _, id := range o.DroppedSyncs {
		dropped = append(dropped, int(id))
	}
	sort.Ints(dropped)
	for _, id := range dropped {
		fmt.Fprintf(&b, "d%d;", id)
	}
	return b.String()
}

func newExplorer(s Scenario, cfg Config, pruning prune.Config) (interleave.Explorer, error) {
	switch cfg.Mode {
	case ModeERPi:
		return prune.NewExplorer(s.Log, pruning)
	case ModeDFS:
		return interleave.NewDFS(interleave.NewSpace(s.Log)), nil
	case ModeRand:
		return interleave.NewRand(interleave.NewSpace(s.Log), cfg.Seed), nil
	case ModeFuzz:
		// The fuzzer mutates over the grouped unit space so that causal
		// pairs stay intact, like ER-π's own exploration.
		space, err := prune.GroupedSpace(s.Log, pruning.Grouping)
		if err != nil {
			return nil, err
		}
		f := fuzz.New(space, cfg.Seed)
		f.SetGenerationSize(cfg.FuzzGenerationSize)
		return f, nil
	default:
		return nil, fmt.Errorf("runner: unknown mode %q", cfg.Mode)
	}
}
