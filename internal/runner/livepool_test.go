package runner

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/proxy"
)

// liveSignatures runs the scenario through the live pool and returns the
// outcome-signature stream in coordinator delivery order.
func liveSignatures(t *testing.T, s Scenario, cfg Config) ([]string, *Result) {
	t.Helper()
	var sigs []string
	cfg.OnOutcome = func(o *Outcome) { sigs = append(sigs, OutcomeSignature(o)) }
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sigs, res
}

// TestLivePoolDeterminismPin is the acceptance pin for the sharded live
// engine: LiveWorkers 1 and 8 must match each other byte-for-byte AND
// match a hand-rolled sequential ExecuteLive loop over the same
// exploration — the live pool may not change what the live path computes.
func TestLivePoolDeterminismPin(t *testing.T) {
	run := func(workers int) ([]string, *Result) {
		s := townReportScenario(t)
		return liveSignatures(t, s, Config{
			Mode:        ModeERPi,
			LiveWorkers: workers,
			Assertions:  []Assertion{municipalityInvariant{}},
		})
	}
	one, oneRes := run(1)
	eight, eightRes := run(8)
	if strings.Join(one, "\n") != strings.Join(eight, "\n") {
		t.Fatal("LiveWorkers: 8 changed the live outcome stream")
	}
	assertResultsMatch(t, oneRes, eightRes)
	if len(oneRes.Violations) == 0 {
		t.Fatal("pin is vacuous: the scenario must produce violations")
	}

	// The sequential ExecuteLive reference over the same pruned order.
	s := townReportScenario(t)
	ex, err := NewPrunedExplorer(s)
	if err != nil {
		t.Fatal(err)
	}
	var ref []string
	for {
		il, ok := ex.Next()
		if !ok {
			break
		}
		gate := proxy.NewLocalGate()
		o, err := ExecuteLive(s, il, func(event.ReplicaID) proxy.TurnGate { return gate })
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, OutcomeSignature(o))
	}
	if strings.Join(one, "\n") != strings.Join(ref, "\n") {
		t.Fatal("live pool diverged from the sequential ExecuteLive loop")
	}
}

// TestLivePoolMatchesCheckpointedEngine: the live pool and the
// checkpointed engine explore the same orders and must agree on every
// behavior signature and deterministic Result field.
func TestLivePoolMatchesCheckpointedEngine(t *testing.T) {
	live, liveRes := func() ([]string, *Result) {
		s := townReportScenario(t)
		return liveSignatures(t, s, Config{
			Mode:        ModeERPi,
			LiveWorkers: 4,
			Assertions:  []Assertion{municipalityInvariant{}},
		})
	}()
	s := townReportScenario(t)
	var ckpt []string
	ckptRes, err := Run(s, Config{
		Mode:       ModeERPi,
		Assertions: []Assertion{municipalityInvariant{}},
		OnOutcome:  func(o *Outcome) { ckpt = append(ckpt, OutcomeSignature(o)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(live, "\n") != strings.Join(ckpt, "\n") {
		t.Fatal("live pool and checkpointed engine computed different behaviors")
	}
	assertResultsMatch(t, ckptRes, liveRes)
}

// TestLivePoolDeterminismUnderFaults extends the pin to a seeded fault
// schedule: arming is keyed by exploration index, so every live session
// count reproduces the same chaos, including the quarantined interleaving.
func TestLivePoolDeterminismUnderFaults(t *testing.T) {
	sched := &fault.Schedule{Seed: 11, Faults: []fault.Fault{
		{Kind: fault.CrashReplica, Replica: "A", At: 3},
		{Kind: fault.CrashReplica, Replica: "B", Interleaving: 4, At: 2, Duration: 10},
		{Kind: fault.Partition, A: "A", B: "M", At: 0, Duration: 10, Prob: 0.5},
	}}
	run := func(workers int) ([]string, *Result) {
		s := townReportScenario(t)
		s.Finalize = AntiEntropy(2)
		return liveSignatures(t, s, Config{
			Mode:         ModeERPi,
			LiveWorkers:  workers,
			Seed:         7,
			Faults:       sched,
			Assertions:   []Assertion{municipalityInvariant{}},
			RetryBackoff: 100 * time.Microsecond,
		})
	}
	one, oneRes := run(1)
	eight, eightRes := run(8)
	if strings.Join(one, "\n") != strings.Join(eight, "\n") {
		t.Fatal("LiveWorkers: 8 changed the live outcome stream under faults")
	}
	assertResultsMatch(t, oneRes, eightRes)
	if len(oneRes.Quarantined) != 1 || oneRes.Quarantined[0].Index != 4 {
		t.Fatalf("pin is vacuous: want exactly interleaving 4 quarantined, got %v", oneRes.Quarantined)
	}
}

// TestLivePoolSurvivesLockServerOutage: a mid-run lock-server restart —
// with every session's turn counters and mutexes wiped — must not corrupt
// the run. Wedged attempts time out, retries mint fresh fenced epochs
// against the restarted server, and the outcome stream stays identical to
// an undisturbed sequential live replay.
func TestLivePoolSurvivesLockServerOutage(t *testing.T) {
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var srv2 *lockserver.Server
	defer func() {
		_ = srv.Close()
		if srv2 != nil {
			_ = srv2.Close()
		}
	}()

	const slice = 10
	s := townReportScenario(t)
	var sigs []string
	bounced := false
	res, err := Run(s, Config{
		Mode:                ModeDFS,
		LiveWorkers:         2,
		MaxInterleavings:    slice,
		MaxRetries:          8,
		RetryBackoff:        time.Millisecond,
		InterleavingTimeout: 2 * time.Second,
		LiveGates: func(worker int) (SessionFactory, error) {
			p := proxy.NewDistPool(addr, "outage", worker, 5*time.Second)
			return func() (LiveSession, error) { return p.Session(), nil }, nil
		},
		OnOutcome: func(o *Outcome) {
			sigs = append(sigs, OutcomeSignature(o))
			if len(sigs) == 3 && !bounced {
				bounced = true
				// Kill the server mid-run and restart it empty on the same
				// address: every live session's distributed state vanishes.
				_ = srv.Close()
				srv2 = lockserver.NewServer(lockserver.NewStore())
				if _, err := srv2.Listen(addr); err != nil {
					t.Errorf("relisten on %s: %v", addr, err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bounced {
		t.Fatal("test is vacuous: the outage never happened")
	}
	if res.Explored != slice {
		t.Fatalf("explored %d, want %d", res.Explored, slice)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("outage must heal via retries, not quarantine: %v", res.Quarantined)
	}

	ils := interleave.Collect(interleave.NewDFS(interleave.NewSpace(s.Log)), slice)
	for i, il := range ils {
		gate := proxy.NewLocalGate()
		o, err := ExecuteLive(s, il, func(event.ReplicaID) proxy.TurnGate { return gate })
		if err != nil {
			t.Fatal(err)
		}
		if sigs[i] != OutcomeSignature(o) {
			t.Fatalf("interleaving %d diverged after the outage", i)
		}
	}
}

// closableGate wraps LocalGate with a Close recorder, standing in for a
// DistGate whose distributed state must be released on teardown.
type closableGate struct {
	*proxy.LocalGate
	closed atomic.Bool
}

func (g *closableGate) Close() error {
	g.closed.Store(true)
	return nil
}

// TestLiveSetupFailureReleasesEarlierGates pins the cleanup bugfix: when
// the gate factory fails for a later replica, the gates already minted
// for earlier replicas must still be closed — an early return may not
// leave a session's distributed locks armed until TTL expiry.
func TestLiveSetupFailureReleasesEarlierGates(t *testing.T) {
	s := townReportScenario(t)
	il := interleave.Interleaving{0, 1, 2, 3, 4, 5, 6}
	first := &closableGate{LocalGate: proxy.NewLocalGate()}
	calls := 0
	boom := errors.New("no gate for you")
	_, err := executeLive(context.Background(), s, il, 1, 0,
		func(event.ReplicaID) (proxy.TurnGate, error) {
			calls++
			if calls == 1 {
				return first, nil
			}
			return nil, boom
		}, nil, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("executeLive = %v; want the gate factory error", err)
	}
	if calls < 2 {
		t.Fatalf("gate factory called %d times; scenario needs >= 2 replicas", calls)
	}
	if !first.closed.Load() {
		t.Fatal("earlier replica's gate not closed after a later gate failure")
	}
}

// TestLivePoolFuzzClampsToOneWorker: corpus feedback is order-dependent,
// so ModeFuzz must clamp the live pool to one session like it clamps the
// checkpointed pool.
func TestLivePoolFuzzClampsToOneWorker(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode:             ModeFuzz,
		Seed:             3,
		LiveWorkers:      8,
		MaxInterleavings: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(townReportScenario(t), Config{
		Mode:             ModeFuzz,
		Seed:             3,
		MaxInterleavings: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != ref.Explored {
		t.Fatalf("fuzz under LiveWorkers 8 diverged: explored %d vs %d", res.Explored, ref.Explored)
	}
}
