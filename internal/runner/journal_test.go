package runner

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/prune"
)

// TestJournalResume interrupts an exploration after a few interleavings
// and resumes it from the journal: the second run must skip everything
// already explored and finish the space, with no interleaving executed
// twice in total.
func TestJournalResume(t *testing.T) {
	s := townReportScenario(t)
	dir, err := checkpoint.Open(filepath.Join(t.TempDir(), "session"))
	if err != nil {
		t.Fatal(err)
	}

	first, err := Run(s, Config{
		Mode:             ModeERPi,
		MaxInterleavings: 7,
		Journal:          dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Explored != 7 || first.Resumed != 0 {
		t.Fatalf("first run: explored=%d resumed=%d", first.Explored, first.Resumed)
	}

	second, err := Run(s, Config{
		Mode:    ModeERPi,
		Journal: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 7 {
		t.Fatalf("second run resumed %d, want 7", second.Resumed)
	}
	if second.Explored != 12 {
		t.Fatalf("second run explored %d, want the remaining 12 of 19", second.Explored)
	}
	if !second.Exhausted {
		t.Fatal("second run must exhaust the pruned space")
	}

	// The journal now holds the full space; a third run does nothing new.
	third, err := Run(s, Config{Mode: ModeERPi, Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if third.Explored != 0 || third.Resumed != 19 {
		t.Fatalf("third run explored=%d resumed=%d, want 0/19", third.Explored, third.Resumed)
	}

	// The recorded log survives in the journal for offline inspection.
	loaded, err := dir.LoadLog()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Log.Len() {
		t.Fatalf("journaled log has %d events, want %d", loaded.Len(), s.Log.Len())
	}
}

// TestJournalResumeSurvivesCorruptTail simulates the classic crash
// artifact — a truncated or garbage trailing line in the append-only
// journal — and verifies the resume degrades gracefully: the corrupt line
// is skipped (that interleaving is merely re-explored) and the run still
// finishes the space.
func TestJournalResumeSurvivesCorruptTail(t *testing.T) {
	s := townReportScenario(t)
	path := filepath.Join(t.TempDir(), "session")
	dir, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	first, err := Run(s, Config{Mode: ModeERPi, MaxInterleavings: 7, Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Explored != 7 {
		t.Fatalf("first run explored %d, want 7", first.Explored)
	}

	// A crash mid-append leaves a partial line; tack on binary garbage too.
	f, err := os.OpenFile(filepath.Join(path, "explored.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3,1,4,\n\x00\xffgarbage line\n12,,7\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := Run(s, Config{Mode: ModeERPi, Journal: dir})
	if err != nil {
		t.Fatalf("resume over corrupt journal: %v", err)
	}
	if second.Resumed != 7 {
		t.Fatalf("second run resumed %d, want 7 (corrupt lines must not count)", second.Resumed)
	}
	if second.Explored != 12 {
		t.Fatalf("second run explored %d, want the remaining 12 of 19", second.Explored)
	}
	if !second.Exhausted {
		t.Fatal("second run must exhaust the pruned space")
	}
}

// TestJournalResumeHonorsSessionCap pins the session-wide cap semantics:
// interleavings resumed from the journal count toward MaxInterleavings,
// so a killed-and-resumed exploration never executes more than the cap in
// total (the old engine granted each resume a fresh budget).
func TestJournalResumeHonorsSessionCap(t *testing.T) {
	s := townReportScenario(t)
	dir, err := checkpoint.Open(filepath.Join(t.TempDir(), "session"))
	if err != nil {
		t.Fatal(err)
	}

	first, err := Run(s, Config{Mode: ModeERPi, MaxInterleavings: 7, Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Explored != 7 {
		t.Fatalf("first run explored %d, want 7", first.Explored)
	}

	// Raising the cap to 10 grants the resume only the 3 remaining.
	second, err := Run(s, Config{Mode: ModeERPi, MaxInterleavings: 10, Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 7 || second.Explored != 3 {
		t.Fatalf("second run resumed=%d explored=%d, want 7/3", second.Resumed, second.Explored)
	}

	// A cap at or below what the journal already holds leaves nothing.
	third, err := Run(s, Config{Mode: ModeERPi, MaxInterleavings: 7, Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if third.Resumed != 10 || third.Explored != 0 {
		t.Fatalf("third run resumed=%d explored=%d, want 10/0", third.Resumed, third.Explored)
	}
}

// TestConstraintRepruningShrinksExploration verifies the §5.2 runtime
// constraint path end to end: constraints appearing mid-run regenerate the
// explorer, and the merged pruning shrinks the total exploration below the
// unconstrained space.
func TestConstraintRepruningShrinksExploration(t *testing.T) {
	s := townReportScenario(t)
	// Without the replica-specific constraint: grouped space only.
	base := s
	base.Pruning.TestedReplicas = nil
	plain, err := Run(base, Config{Mode: ModeERPi})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explored != 24 {
		t.Fatalf("unconstrained grouped space = %d, want 24", plain.Explored)
	}

	// The same run, but the tested-replica constraint arrives after five
	// interleavings via the polling hook.
	delivered := false
	constrained, err := Run(base, Config{
		Mode:      ModeERPi,
		PollEvery: 5,
		ConstraintPoll: func() (pcfg prune.Config, found bool, err error) {
			if delivered {
				return pcfg, false, nil
			}
			delivered = true
			pcfg.TestedReplicas = append(pcfg.TestedReplicas, "M")
			return pcfg, true, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !constrained.Exhausted {
		t.Fatal("constrained run must exhaust")
	}
	if constrained.Explored >= plain.Explored {
		t.Fatalf("re-pruning did not shrink exploration: %d vs %d",
			constrained.Explored, plain.Explored)
	}
}
