package runner

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/replica"
)

// collectOutcomes runs the scenario and returns the serialized outcome
// stream plus the result.
func collectOutcomes(t *testing.T, s Scenario, cfg Config) ([]byte, *Result) {
	t.Helper()
	var outcomes []*Outcome
	cfg.OnOutcome = func(o *Outcome) { outcomes = append(outcomes, o) }
	res, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	return raw, res
}

// TestFaultFreeScheduleIsSound pins the soundness property of the fault
// layer: a schedule containing no faults must produce byte-identical
// outcomes to the seed engine running without any injector at all.
func TestFaultFreeScheduleIsSound(t *testing.T) {
	for _, mode := range []Mode{ModeERPi, ModeDFS} {
		s := townReportScenario(t)
		plain, plainRes := collectOutcomes(t, s, Config{Mode: mode})
		faulted, faultedRes := collectOutcomes(t, s, Config{
			Mode:   mode,
			Faults: &fault.Schedule{Seed: 42},
		})
		if string(plain) != string(faulted) {
			t.Fatalf("mode %s: fault-free schedule changed outcomes", mode)
		}
		if plainRes.Explored != faultedRes.Explored || len(faultedRes.Quarantined) != 0 {
			t.Fatalf("mode %s: explored %d vs %d, quarantined %d",
				mode, plainRes.Explored, faultedRes.Explored, len(faultedRes.Quarantined))
		}
	}
}

// TestCrashRecoveryConverges pins the crash-recovery property: a replica
// crashed and restored mid-interleaving (losing its volatile state) must
// still converge with the others after Finalize's anti-entropy rounds.
func TestCrashRecoveryConverges(t *testing.T) {
	s := townReportScenario(t)
	s.Finalize = AntiEntropy(2)

	baseline, _ := collectOutcomes(t, s, Config{Mode: ModeERPi})

	var outcomes []*Outcome
	res, err := Run(s, Config{
		Mode: ModeERPi,
		Faults: &fault.Schedule{Faults: []fault.Fault{
			// Crash A at position 3 of every interleaving with immediate
			// restart: all of A's volatile progress is lost.
			{Kind: fault.CrashReplica, Replica: "A", At: 3},
		}},
		OnOutcome: func(o *Outcome) { outcomes = append(outcomes, o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("crash with immediate restart must not quarantine: %v", res.Quarantined)
	}
	if res.Explored != 19 || len(outcomes) != 19 {
		t.Fatalf("explored %d / %d outcomes, want 19", res.Explored, len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Converged {
			t.Fatalf("interleaving #%d [%s] did not converge after crash-recovery: %v",
				o.Index, o.Interleaving.Key(), o.Fingerprints)
		}
	}
	// The fault was really injected: at least one interleaving converges to
	// a different state than the fault-free run (A's lost updates).
	crashed, err := json.Marshal(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if string(crashed) == string(baseline) {
		t.Fatal("crash schedule was observationally inert")
	}
}

// TestCrashQuarantineYieldsPartialResults is the acceptance scenario: a
// fault schedule that keeps one replica down mid-exploration must populate
// Result.Quarantined for the affected interleaving while the rest of the
// space is still explored — no abort.
func TestCrashQuarantineYieldsPartialResults(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode: ModeERPi,
		Faults: &fault.Schedule{Faults: []fault.Fault{
			// In exploration position 3 only: crash B at event 2 and keep
			// it down for the rest of the interleaving.
			{Kind: fault.CrashReplica, Replica: "B", Interleaving: 3, At: 2, Duration: 10},
		}},
		RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 19 || !res.Exhausted {
		t.Fatalf("explored %d (exhausted=%v), want the full 19", res.Explored, res.Exhausted)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined %d interleavings, want exactly 1: %v", len(res.Quarantined), res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Index != 3 {
		t.Fatalf("quarantined index = %d, want 3", q.Index)
	}
	if q.Attempts != 2 { // 1 attempt + the default 1 retry
		t.Fatalf("attempts = %d, want 2", q.Attempts)
	}
	if !errors.Is(q.Err, fault.ErrReplicaDown) {
		t.Fatalf("quarantine error = %v, want ErrReplicaDown", q.Err)
	}
	if !strings.Contains(q.String(), "quarantined after 2 attempts") {
		t.Fatalf("ExecError string = %q", q.String())
	}
}

// TestPayloadTruncationQuarantines: a truncated sync payload fails to
// decode at the receiver; the affected interleavings are quarantined and
// everything else still executes.
func TestPayloadTruncationQuarantines(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode: ModeERPi,
		Faults: &fault.Schedule{Faults: []fault.Fault{
			{Kind: fault.TruncatePayload, At: 1, KeepBytes: 2},
		}},
		MaxRetries:   -1, // no point retrying a deterministic fault
		RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 19 {
		t.Fatalf("explored %d, want 19", res.Explored)
	}
	if len(res.Quarantined) == 0 || len(res.Quarantined) == 19 {
		t.Fatalf("quarantined %d of 19 — truncation should hit only interleavings with a sync at position 1",
			len(res.Quarantined))
	}
	for _, q := range res.Quarantined {
		if q.Attempts != 1 {
			t.Fatalf("MaxRetries<0 must disable retries, got %d attempts", q.Attempts)
		}
	}
}

// TestPartitionDropsSyncs: syncs across a partitioned link are dropped and
// recorded, not errored — the message simply never arrives.
func TestPartitionDropsSyncs(t *testing.T) {
	s := townReportScenario(t)
	var dropped int
	res, err := Run(s, Config{
		Mode: ModeERPi,
		Faults: &fault.Schedule{Faults: []fault.Fault{
			// Sever A–M for the whole interleaving: the transmission to the
			// municipality (ev6) is always dropped.
			{Kind: fault.Partition, A: "A", B: "M", At: 0, Duration: 10},
		}},
		OnOutcome: func(o *Outcome) { dropped += len(o.DroppedSyncs) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("partitions must not quarantine: %v", res.Quarantined)
	}
	if dropped != res.Explored {
		t.Fatalf("dropped %d syncs over %d interleavings, want one per interleaving", dropped, res.Explored)
	}
}

// TestRunHonorsCancellation: cancelling the context mid-exploration stops
// the run promptly with the partial Result.
func TestRunHonorsCancellation(t *testing.T) {
	s := townReportScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	res, err := RunContext(ctx, s, Config{
		Mode: ModeDFS,
		OnOutcome: func(o *Outcome) {
			seen++
			if seen == 5 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run must report Interrupted")
	}
	if !errors.Is(res.InterruptErr, context.Canceled) {
		t.Fatalf("InterruptErr = %v", res.InterruptErr)
	}
	if res.Explored < 5 || res.Explored > 6 {
		t.Fatalf("explored %d, want the partial 5-6", res.Explored)
	}
}

// slowState delays every Apply, making wall-clock deadlines testable.
type slowState struct {
	*lwwSetState
	delay time.Duration
}

func (s *slowState) Apply(op replica.Op) (string, error) {
	time.Sleep(s.delay)
	return s.lwwSetState.Apply(op)
}

func slowScenario(t *testing.T, delay time.Duration) Scenario {
	t.Helper()
	s := townReportScenario(t)
	s.NewCluster = func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": &slowState{lwwSetState: newLWWSetState("A"), delay: delay},
			"B": &slowState{lwwSetState: newLWWSetState("B"), delay: delay},
			"M": &slowState{lwwSetState: newLWWSetState("M"), delay: delay},
		}), nil
	}
	return s
}

// TestRunDeadline: Config.Deadline bounds the whole exploration; the run
// returns the partial result once it expires.
func TestRunDeadline(t *testing.T) {
	s := slowScenario(t, 5*time.Millisecond)
	start := time.Now()
	res, err := Run(s, Config{Mode: ModeDFS, Deadline: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("deadline expiry must report Interrupted")
	}
	if !errors.Is(res.InterruptErr, context.DeadlineExceeded) {
		t.Fatalf("InterruptErr = %v", res.InterruptErr)
	}
	if res.Explored == 0 {
		t.Fatal("some interleavings must complete before the deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run overran its deadline by far: %v", elapsed)
	}
}

// TestInterleavingTimeoutQuarantines: a single wedged interleaving is
// timed out and quarantined; the run itself keeps its progress.
func TestInterleavingTimeoutQuarantines(t *testing.T) {
	s := slowScenario(t, 30*time.Millisecond)
	res, err := Run(s, Config{
		Mode:                ModeERPi,
		MaxInterleavings:    2,
		InterleavingTimeout: 10 * time.Millisecond,
		MaxRetries:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupted {
		t.Fatal("per-interleaving timeouts must not interrupt the run")
	}
	if len(res.Quarantined) != 2 {
		t.Fatalf("quarantined %d, want both slow interleavings", len(res.Quarantined))
	}
	for _, q := range res.Quarantined {
		if !errors.Is(q.Err, context.DeadlineExceeded) {
			t.Fatalf("quarantine error = %v, want DeadlineExceeded", q.Err)
		}
	}
}

// TestRetrySucceedsAfterTransientFault: a fault armed with probability
// strictly between 0 and 1 can miss on retry; more fundamentally, an error
// that stops recurring lets the retry path succeed without quarantine.
func TestRetrySucceedsAfterTransientFault(t *testing.T) {
	s := townReportScenario(t)
	// A state whose first ApplySync ever fails, then heals: attempt #1 of
	// interleaving #1 errors, the retry succeeds. The failure budget lives
	// outside the cluster factory so it survives resets.
	failures := 1
	s.NewCluster = func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": newLWWSetState("A"),
			"B": newLWWSetState("B"),
			"M": &flakyState{State: newLWWSetState("M"), failures: &failures},
		}), nil
	}
	// Workers: 1 — the shared failure budget above makes the cluster
	// factory unsafe for concurrent calls, and which execution trips the
	// single failure must stay deterministic.
	res, err := Run(s, Config{Mode: ModeERPi, Workers: 1, RetryBackoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("transient failure must be absorbed by retry, got %v", res.Quarantined)
	}
	if res.Explored != 19 {
		t.Fatalf("explored %d, want 19", res.Explored)
	}
}

// flakyState fails ApplySync while *failures > 0, then behaves normally.
type flakyState struct {
	replica.State
	failures *int
}

func (f *flakyState) ApplySync(payload []byte) error {
	if *f.failures > 0 {
		*f.failures--
		return errors.New("transient sync failure")
	}
	return f.State.ApplySync(payload)
}

// TestExploredSetBounded: the dedup set honors its cap and degrades to
// best-effort instead of growing without limit.
func TestExploredSetBounded(t *testing.T) {
	set := newExploredSet(3)
	for _, k := range []string{"a", "b", "c"} {
		if !set.Add(k) {
			t.Fatalf("key %q rejected below the cap", k)
		}
	}
	if set.Add("d") {
		t.Fatal("cap exceeded")
	}
	if !set.Saturated() || set.Len() != 3 {
		t.Fatalf("saturated=%v len=%d", set.Saturated(), set.Len())
	}
	if !set.Has("a") || set.Has("d") {
		t.Fatal("membership wrong after saturation")
	}

	// A saturated run still completes: ModeRand with a tiny cap.
	s := townReportScenario(t)
	res, err := Run(s, Config{Mode: ModeRand, Seed: 7, MaxInterleavings: 30, MaxExploredKeys: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 30 {
		t.Fatalf("explored %d, want 30", res.Explored)
	}
}

// TestLiveReportsAllReplicaErrors: when one replica crashes mid-replay,
// the other replicas' aborted turn-waits are reported too (errors.Join),
// not silently discarded.
func TestLiveReportsAllReplicaErrors(t *testing.T) {
	s := townReportScenario(t)
	il := interleave.Interleaving{0, 1, 2, 3, 4, 5, 6}
	inj, err := fault.NewInjector(fault.Schedule{Faults: []fault.Fault{
		{Kind: fault.CrashReplica, Replica: "B", At: 1, Duration: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	gate := proxy.NewLocalGate()
	_, liveErr := ExecuteLiveContext(context.Background(), s, il,
		func(event.ReplicaID) proxy.TurnGate { return gate }, inj, nil)
	if liveErr == nil {
		t.Fatal("crashed live replay must error")
	}
	if !errors.Is(liveErr, fault.ErrReplicaDown) {
		t.Fatalf("error chain misses ErrReplicaDown: %v", liveErr)
	}
	// B fails at its first turn; A still owes ev3/ev5 and M owes ev6, so
	// at least one more replica reports its cancelled wait.
	if n := strings.Count(liveErr.Error(), "replica "); n < 2 {
		t.Fatalf("joined error reports %d replicas, want >= 2:\n%v", n, liveErr)
	}
}

// TestLiveCancellationUnblocksSequencer: a replay wedged inside
// Sequencer.WaitTurn (the shared counter never reaches the scheduled turn)
// returns promptly when the context deadline fires instead of hanging.
func TestLiveCancellationUnblocksSequencer(t *testing.T) {
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	coord, err := lockserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	// Wedge the schedule: the turn counter sits below every scheduled
	// turn, so WaitTurn polls forever.
	if err := coord.Set("wedged:turn", "-100"); err != nil {
		t.Fatal(err)
	}

	s := townReportScenario(t)
	il := interleave.Interleaving{0, 1, 2, 3, 6, 4, 5}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()

	var clients []*lockserver.Client
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	start := time.Now()
	_, liveErr := ExecuteLiveContext(ctx, s, il, func(rep event.ReplicaID) proxy.TurnGate {
		c, err := lockserver.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		return proxy.NewDistGate(c, "wedged", string(rep))
	}, nil, nil)
	elapsed := time.Since(start)
	if liveErr == nil {
		t.Fatal("wedged replay must error on context expiry")
	}
	if !errors.Is(liveErr, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want DeadlineExceeded in the chain", liveErr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the replay hung", elapsed)
	}
}
