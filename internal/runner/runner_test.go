package runner

import (
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/crdt"
	"github.com/er-pi/erpi/internal/datalog"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
)

// lwwSetState adapts an LWW set to the replica.State interface: the town
// report app of the paper's motivating example, where issues are a
// replicated set.
type lwwSetState struct {
	set   *crdt.LWWSet
	clock *crdt.Clock
	ver   uint64
}

// StateVersion implements replica.Versioned so runner tests exercise the
// incremental snapshot path the way real subjects do.
func (s *lwwSetState) StateVersion() uint64 { return s.ver }

func newLWWSetState(rep string) *lwwSetState {
	return &lwwSetState{set: crdt.NewLWWSet(crdt.BiasAdd), clock: crdt.NewClock(rep)}
}

func (s *lwwSetState) Apply(op replica.Op) (string, error) {
	if op.Name != "set.read" {
		s.ver++
	}
	switch op.Name {
	case "set.add":
		s.set.Add(op.Args[0], s.clock.Now())
		return "", nil
	case "set.remove":
		if !s.set.Contains(op.Args[0]) {
			return "", replica.ErrFailedOp
		}
		s.set.Remove(op.Args[0], s.clock.Now())
		return "", nil
	case "set.read":
		return strings.Join(s.set.Elements(), ","), nil
	default:
		return "", errors.New("unknown op " + op.Name)
	}
}

func (s *lwwSetState) SyncPayload() ([]byte, error) {
	adds, rems := s.set.Dump()
	return json.Marshal(map[string]map[string]crdt.Time{"adds": adds, "rems": rems})
}

func (s *lwwSetState) ApplySync(payload []byte) error {
	s.ver++
	other := crdt.NewLWWSet(crdt.BiasAdd)
	var snap map[string]map[string]crdt.Time
	if err := json.Unmarshal(payload, &snap); err != nil {
		return err
	}
	for e, t := range snap["adds"] {
		other.Add(e, t)
	}
	for e, t := range snap["rems"] {
		other.Remove(e, t)
	}
	s.set.Merge(other)
	return nil
}

// lwwSnapshot is the checkpoint form: unlike the sync payload it carries
// the clock counter, so a restored state issues the same timestamps it
// would have issued when the snapshot was taken (the fidelity contract
// replica.State documents for mid-run prefix restores).
type lwwSnapshot struct {
	Adds  map[string]crdt.Time `json:"adds"`
	Rems  map[string]crdt.Time `json:"rems"`
	Clock uint64               `json:"clock"`
}

func (s *lwwSetState) Snapshot() ([]byte, error) {
	adds, rems := s.set.Dump()
	return json.Marshal(lwwSnapshot{Adds: adds, Rems: rems, Clock: s.clock.Counter()})
}

func (s *lwwSetState) Restore(snapshot []byte) error {
	s.ver++
	var snap lwwSnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return err
	}
	s.set = crdt.NewLWWSet(crdt.BiasAdd)
	for e, t := range snap.Adds {
		s.set.Add(e, t)
	}
	for e, t := range snap.Rems {
		s.set.Remove(e, t)
	}
	s.clock.SetCounter(snap.Clock)
	return nil
}

func (s *lwwSetState) Fingerprint() string {
	return strings.Join(s.set.Elements(), ",")
}

// townReportScenario records the paper's §2.3 motivating example against
// live LWW-set states.
func townReportScenario(t *testing.T) Scenario {
	t.Helper()
	newCluster := func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": newLWWSetState("A"),
			"B": newLWWSetState("B"),
			"M": newLWWSetState("M"),
		}), nil
	}
	cluster, err := newCluster()
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(cluster)
	rec.Update("A", "set.add", "otb")    // ev0  ev_I
	rec.Sync("A", "B")                   // ev1  sync(ev_I)
	rec.Update("B", "set.add", "ph")     // ev2  ev_II
	rec.Sync("B", "A")                   // ev3  sync(ev_II)
	rec.Update("B", "set.remove", "otb") // ev4  ev_III
	rec.Sync("B", "A")                   // ev5  sync(ev_III)
	rec.Sync("A", "M")                   // ev6  ev_IV: transmit to municipality
	log, err := rec.Log()
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		Name:       "townreport",
		Log:        log,
		NewCluster: newCluster,
		Pruning: prune.Config{
			Grouping:       prune.GroupSpec{Extra: [][]event.ID{{0, 1}, {2, 3}, {4, 5}}},
			TestedReplicas: []event.ReplicaID{"M"},
		},
	}
}

// municipalityInvariant: the municipality must receive only the pothole.
type municipalityInvariant struct{}

func (municipalityInvariant) Name() string { return "municipality-receives-only-ph" }
func (municipalityInvariant) Check(o *Outcome) error {
	if got := o.Fingerprints["M"]; got != "ph" {
		return errors.New("municipality received " + got)
	}
	return nil
}

func TestTownReportERPiFindsViolations(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode:       ModeERPi,
		Assertions: []Assertion{municipalityInvariant{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("19 interleavings must be exhausted under the 10K cap")
	}
	if res.Explored != 19 {
		t.Fatalf("explored %d, want 19 (paper §3.1)", res.Explored)
	}
	if len(res.Violations) == 0 {
		t.Fatal("the erroneous-assumption interleavings must violate the invariant")
	}
	// The recording order itself is correct, so not every interleaving
	// violates.
	if len(res.Violations) == 19 {
		t.Fatal("the recorded (correct) interleaving must pass")
	}
	if res.FirstViolation == 0 {
		t.Fatal("FirstViolation must be set")
	}
}

func TestTownReportDFSFindsSameViolationsSlower(t *testing.T) {
	s := townReportScenario(t)
	erpi, err := Run(s, Config{Mode: ModeERPi, Assertions: []Assertion{municipalityInvariant{}}, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := Run(s, Config{Mode: ModeDFS, Assertions: []Assertion{municipalityInvariant{}}, StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if erpi.FirstViolation == 0 || dfs.FirstViolation == 0 {
		t.Fatalf("both modes must find the bug: erpi=%d dfs=%d", erpi.FirstViolation, dfs.FirstViolation)
	}
	if erpi.FirstViolation > dfs.FirstViolation {
		t.Fatalf("ER-π (%d) should not need more interleavings than DFS (%d) here",
			erpi.FirstViolation, dfs.FirstViolation)
	}
}

func TestRandModeExploresDistinctOrders(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{Mode: ModeRand, Seed: 3, MaxInterleavings: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Explored != 50 {
		t.Fatalf("explored %d, want 50", res.Explored)
	}
	if res.RandShuffles < 50 {
		t.Fatalf("shuffles %d < explored", res.RandShuffles)
	}
}

func TestRunPersistsToStore(t *testing.T) {
	s := townReportScenario(t)
	store := datalog.NewStore()
	res, err := Run(s, Config{Mode: ModeERPi, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if store.Count() != res.Explored {
		t.Fatalf("store has %d, explored %d", store.Count(), res.Explored)
	}
}

func TestRunCrashesOnBudget(t *testing.T) {
	s := townReportScenario(t)
	store := datalog.NewStore()
	store.MaxFacts = 30 // a few interleavings of 7 events (8 facts each)
	res, err := Run(s, Config{Mode: ModeDFS, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("run must crash when the store budget is exhausted")
	}
	if !errors.Is(res.CrashErr, datalog.ErrBudgetExhausted) {
		t.Fatalf("CrashErr = %v", res.CrashErr)
	}
}

func TestRunStopOnViolation(t *testing.T) {
	s := townReportScenario(t)
	res, err := Run(s, Config{
		Mode:            ModeERPi,
		Assertions:      []Assertion{municipalityInvariant{}},
		StopOnViolation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly 1 with StopOnViolation", len(res.Violations))
	}
	if res.Explored != res.FirstViolation {
		t.Fatalf("exploration must stop at the violation: %d vs %d", res.Explored, res.FirstViolation)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{}, Config{}); err == nil {
		t.Fatal("empty scenario must be rejected")
	}
	s := townReportScenario(t)
	if _, err := Run(s, Config{Mode: "bogus"}); err == nil {
		t.Fatal("unknown mode must be rejected")
	}
	s2 := s
	s2.NewCluster = nil
	if _, err := Run(s2, Config{}); err == nil {
		t.Fatal("missing cluster factory must be rejected")
	}
}

// TestRetryBackoffDoesNotOverflow is the MaxRetries: 100 regression: the
// old `RetryBackoff << (attempts-1)` overflowed to a negative Duration
// around 63 doublings (far sooner for millisecond-scale bases), and the
// negative bound made the jitter draw panic. The delay must stay positive
// and capped for every attempt number a MaxRetries: 100 run can reach.
func TestRetryBackoffDoesNotOverflow(t *testing.T) {
	jitter := rand.New(rand.NewSource(1))
	for _, base := range []time.Duration{time.Millisecond, time.Second, time.Minute} {
		for attempt := 1; attempt <= 101; attempt++ {
			d := retryDelay(base, attempt, jitter)
			if d <= 0 {
				t.Fatalf("base %v attempt %d: non-positive delay %v", base, attempt, d)
			}
			if max := maxRetryBackoff + maxRetryBackoff/2; d > max {
				t.Fatalf("base %v attempt %d: delay %v beyond the jittered cap %v", base, attempt, d, max)
			}
		}
	}
	// The first few doublings below the cap keep the original schedule.
	noJitter := rand.New(rand.NewSource(1))
	for attempt, want := range map[int]time.Duration{1: time.Millisecond, 4: 8 * time.Millisecond} {
		got := retryDelay(time.Millisecond, attempt, noJitter)
		if got < want/2 || got > want+want/2 {
			t.Fatalf("attempt %d: delay %v outside ±50%% of %v", attempt, got, want)
		}
	}
}

// TestDedupSaturationSurfaces: a run whose dedup set hits its cap must
// say so in the Result instead of silently degrading.
func TestDedupSaturationSurfaces(t *testing.T) {
	s := townReportScenario(t)
	saturated, err := Run(s, Config{Mode: ModeRand, Seed: 7, MaxInterleavings: 30, MaxExploredKeys: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !saturated.DedupSaturated {
		t.Fatal("a run past MaxExploredKeys must report DedupSaturated")
	}
	clean, err := Run(s, Config{Mode: ModeRand, Seed: 7, MaxInterleavings: 30})
	if err != nil {
		t.Fatal(err)
	}
	if clean.DedupSaturated {
		t.Fatal("an unsaturated run must not report DedupSaturated")
	}
}

func TestRecorderFailedOpIsRecorded(t *testing.T) {
	cluster := replica.NewCluster(map[event.ReplicaID]replica.State{
		"A": newLWWSetState("A"),
	})
	rec := NewRecorder(cluster)
	rec.Update("A", "set.remove", "ghost") // fails by constraint, still recorded
	rec.Update("A", "set.add", "x")
	log, err := rec.Log()
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 2 {
		t.Fatalf("log has %d events, want 2 (failed op included)", log.Len())
	}
}

func TestRecorderObserveReturnsIDAndValue(t *testing.T) {
	cluster := replica.NewCluster(map[event.ReplicaID]replica.State{
		"A": newLWWSetState("A"),
	})
	rec := NewRecorder(cluster)
	rec.Update("A", "set.add", "x")
	id, val := rec.Observe("A", "set.read")
	if id != 1 {
		t.Fatalf("observe ID = %d, want 1", id)
	}
	if val != "x" {
		t.Fatalf("observed %q", val)
	}
}

func TestOutcomeRecordsFailedOps(t *testing.T) {
	s := townReportScenario(t)
	var sawFailed bool
	_, err := Run(s, Config{
		Mode: ModeERPi,
		OnOutcome: func(o *Outcome) {
			if len(o.FailedOps) > 0 {
				sawFailed = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// In interleavings where the remove of "otb" executes before the otb
	// add synced to B, the remove fails by set constraint.
	if !sawFailed {
		t.Fatal("expected some interleaving to produce a failed op")
	}
}
