package runner

import (
	"context"
	"fmt"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/replica"
)

// Recorder captures a workload as an event log by routing every RDL call
// through ER-π's proxy interceptor in record mode (paper §4.1: "ER-π
// intercepts which library functions have been invoked in the segment,
// extracting them as events"). The workload executes for real against the
// cluster, so the recording run doubles as the scenario's sanity run.
type Recorder struct {
	cluster     *replica.Cluster
	interceptor *proxy.Interceptor
	ctx         context.Context
	err         error
}

// NewRecorder starts recording against a cluster.
func NewRecorder(cluster *replica.Cluster) *Recorder {
	i := proxy.New()
	i.StartRecording()
	return &Recorder{cluster: cluster, interceptor: i, ctx: context.Background()}
}

// Err returns the first error encountered by any recording call.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Update performs and records a local RDL update, returning its result.
// Failed ops (replica.ErrFailedOp) are recorded like any other event.
func (r *Recorder) Update(rep event.ReplicaID, op string, args ...string) string {
	var result string
	ev := event.Event{Kind: event.Update, Replica: rep, Op: op, Args: args}
	err := r.interceptor.Call(r.ctx, ev, func() error {
		node, err := r.cluster.Node(rep)
		if err != nil {
			return err
		}
		out, err := node.State.Apply(replica.Op{Name: op, Args: args})
		result = out
		if err == replica.ErrFailedOp {
			return nil // constraint rejections are legitimate recordings
		}
		return err
	})
	if err != nil {
		r.fail(fmt.Errorf("runner: record update %s@%s: %w", op, rep, err))
	}
	return result
}

// Observe performs and records an observable read, returning the event ID
// (for anchoring assertions) and the observed value.
func (r *Recorder) Observe(rep event.ReplicaID, op string, args ...string) (event.ID, string) {
	var result string
	ev := event.Event{Kind: event.Observe, Replica: rep, Op: op, Args: args}
	id := event.ID(len(r.interceptor.Recorded()))
	err := r.interceptor.Call(r.ctx, ev, func() error {
		node, err := r.cluster.Node(rep)
		if err != nil {
			return err
		}
		out, err := node.State.Apply(replica.Op{Name: op, Args: args})
		result = out
		return err
	})
	if err != nil {
		r.fail(fmt.Errorf("runner: record observe %s@%s: %w", op, rep, err))
	}
	return id, result
}

// SyncPair performs and records an explicit synchronization exchange: a
// sync_req at the sender followed by the exec_sync at the receiver. Event
// Grouping (Algorithm 1) pairs the two automatically.
func (r *Recorder) SyncPair(from, to event.ReplicaID) {
	var payload []byte
	send := event.Event{Kind: event.SyncSend, Replica: from, From: from, To: to}
	err := r.interceptor.Call(r.ctx, send, func() error {
		node, err := r.cluster.Node(from)
		if err != nil {
			return err
		}
		payload, err = node.State.SyncPayload()
		return err
	})
	if err != nil {
		r.fail(fmt.Errorf("runner: record sync_req %s->%s: %w", from, to, err))
		return
	}
	exec := event.Event{Kind: event.SyncExec, Replica: to, From: from, To: to}
	err = r.interceptor.Call(r.ctx, exec, func() error {
		node, err := r.cluster.Node(to)
		if err != nil {
			return err
		}
		return node.State.ApplySync(payload)
	})
	if err != nil {
		r.fail(fmt.Errorf("runner: record exec_sync %s->%s: %w", from, to, err))
	}
}

// Sync performs and records a standalone synchronization event at the
// receiver (the motivating example's sync(ev) events): during replay its
// payload is captured from the sender at execution time. Returns the event
// ID.
func (r *Recorder) Sync(from, to event.ReplicaID) event.ID {
	id := event.ID(len(r.interceptor.Recorded()))
	ev := event.Event{Kind: event.SyncExec, Replica: to, From: from, To: to}
	err := r.interceptor.Call(r.ctx, ev, func() error {
		sender, err := r.cluster.Node(from)
		if err != nil {
			return err
		}
		payload, err := sender.State.SyncPayload()
		if err != nil {
			return err
		}
		node, err := r.cluster.Node(to)
		if err != nil {
			return err
		}
		return node.State.ApplySync(payload)
	})
	if err != nil {
		r.fail(fmt.Errorf("runner: record sync %s->%s: %w", from, to, err))
	}
	return id
}

// Log finalizes recording and returns the event log.
func (r *Recorder) Log() (*event.Log, error) {
	events := r.interceptor.StopRecording()
	if r.err != nil {
		return nil, r.err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("runner: nothing recorded")
	}
	return event.NewLog(events)
}
