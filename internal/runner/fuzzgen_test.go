package runner

import (
	"testing"

	"github.com/er-pi/erpi/internal/fault"
)

// fuzzRun runs the scenario in ModeFuzz and returns the result plus how
// many executed outcomes were fault-armed.
func fuzzRun(t *testing.T, s Scenario, workers int, sched *fault.Schedule) (*Result, int) {
	t.Helper()
	armed := 0
	res, err := Run(s, Config{
		Mode: ModeFuzz,
		Seed: 11,
		// A small explicit generation keeps synthesis cheap on this tiny
		// log; the adaptive path is pinned by internal/fuzz and the
		// five-subject parity suite.
		FuzzGenerationSize: 4,
		MaxInterleavings:   16,
		Workers:            workers,
		Faults:             sched,
		OnOutcome: func(o *Outcome) {
			if o.FaultArmed {
				armed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fuzz == nil {
		t.Fatal("ModeFuzz result carries no fuzz stats")
	}
	return res, armed
}

// TestFuzzFaultArmedBypassesCorpus pins the two fault-schedule properties
// of the generation batch. Bypass: a fault-armed interleaving's behaviour
// reflects the injected fault, not the mutation, so it must never steer
// the corpus — with every interleaving armed, the corpus never grows past
// the identity seed. Seeded-fault determinism: probabilistic arming is a
// pure function of (schedule seed, exploration index), so under the same
// schedule the corpus trajectory must be byte-identical at one worker and
// at eight.
func TestFuzzFaultArmedBypassesCorpus(t *testing.T) {
	s := townReportScenario(t)

	// Every interleaving armed: pure bypass, the corpus cannot learn.
	always := &fault.Schedule{Faults: []fault.Fault{
		{Kind: fault.CrashReplica, Replica: "A", At: 1},
	}}
	res, armed := fuzzRun(t, s, 1, always)
	if armed != res.Explored || armed == 0 {
		t.Fatalf("always-on schedule armed %d of %d outcomes", armed, res.Explored)
	}
	if res.Fuzz.CorpusSize != 1 || res.Fuzz.Coverage != 0 {
		t.Fatalf("fault-armed outcomes steered the corpus: size %d, coverage %d",
			res.Fuzz.CorpusSize, res.Fuzz.Coverage)
	}

	// Roughly half armed, seeded: the pool must replay the same armed set
	// and land on the same trajectory as the sequential engine.
	half := &fault.Schedule{Seed: 3, Faults: []fault.Fault{
		{Kind: fault.CrashReplica, Replica: "A", At: 1, Prob: 0.5},
	}}
	seq, seqArmed := fuzzRun(t, s, 1, half)
	pool, poolArmed := fuzzRun(t, s, 8, half)
	if seqArmed == 0 || seqArmed == seq.Explored {
		t.Fatalf("probabilistic schedule armed %d of %d outcomes: pin is vacuous", seqArmed, seq.Explored)
	}
	if poolArmed != seqArmed {
		t.Fatalf("armed set diverged: %d at workers=8, %d at workers=1", poolArmed, seqArmed)
	}
	if pool.Fuzz.TrajectoryDigest != seq.Fuzz.TrajectoryDigest {
		t.Fatalf("seeded-fault trajectory diverged:\n workers=8 %s\n workers=1 %s",
			pool.Fuzz.TrajectoryDigest, seq.Fuzz.TrajectoryDigest)
	}
}

// TestFuzzPoolGenerationBarrier pins the pool engine against the
// sequential engine on the same small workload: identical trajectory,
// counters, and explored count at several worker counts, including a
// generation size that does not divide the cap (a trailing partial
// generation that must never evolve).
func TestFuzzPoolGenerationBarrier(t *testing.T) {
	for _, genSize := range []int{4, 5} {
		s := townReportScenario(t)
		var ref *Result
		for _, workers := range []int{1, 2, 8} {
			res, err := Run(s, Config{
				Mode:               ModeFuzz,
				Seed:               5,
				FuzzGenerationSize: genSize,
				MaxInterleavings:   12,
				Workers:            workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Fuzz == nil {
				t.Fatalf("genSize=%d workers=%d: no fuzz stats", genSize, workers)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Fuzz.TrajectoryDigest != ref.Fuzz.TrajectoryDigest ||
				res.Fuzz.Generations != ref.Fuzz.Generations ||
				res.Fuzz.CorpusSize != ref.Fuzz.CorpusSize ||
				res.Explored != ref.Explored {
				t.Fatalf("genSize=%d workers=%d diverged from sequential: %+v vs %+v",
					genSize, workers, res.Fuzz, ref.Fuzz)
			}
		}
	}
}
