package runner

import (
	"crypto/sha256"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
)

// prefixCache is a bounded snapshot trie keyed by executed event-prefix
// (DESIGN.md §4.9). The DFS/pruned explorers emit interleavings in
// lexicographic order, so consecutive interleavings share long common
// prefixes; instead of resetting to the genesis checkpoint and replaying
// from event 0, the executor restores the deepest cached snapshot whose
// prefix matches the next interleaving and executes only the suffix.
//
// The trie's edges are event IDs: the node reached by walking
// il[0], il[1], ..., il[d-1] from the root represents the prefix il[:d],
// and may carry a snapshot of the full execution context after those d
// events. Snapshots hang off an LRU list and are accounted against a
// byte budget; eviction removes the least-recently-used snapshot and
// prunes any trie branch left empty.
//
// Snapshots are stored as deltas by structural sharing: consecutive
// snapshots reuse the same immutable *replica.StateBuf for every replica
// that did not change between them (the cluster's version-keyed caches
// guarantee pointer identity for clean replicas), so the cache refcounts
// buffers and charges each distinct buffer against the byte budget ONCE —
// a node effectively costs only the replicas that differ from other
// cached prefixes, and the same budget holds far more prefixes. Restore
// needs no path composition: every snapshot still carries its complete
// Bufs array, so eviction order is unconstrained.
//
// A prefixCache is owned by exactly one executor (per worker in the
// pool) and is not safe for concurrent use — per-worker ownership is
// what keeps pool results byte-identical to the sequential engine.
type prefixCache struct {
	budget int64 // max total charged snapshot bytes (> 0)
	every  int   // snapshot insertion stride in events (> 0)
	// share enables delta accounting; off (the bisection escape hatch)
	// every snapshot is charged its full logical size.
	share bool

	root  *prefixNode
	bytes int64

	// refs counts cached snapshots referencing each state buffer;
	// stateBytes is the charged (deduplicated) state-payload bytes —
	// the runner.prefix_delta_bytes gauge.
	refs       map[*replica.StateBuf]int
	stateBytes int64

	// LRU list of snapshot-bearing nodes; head is most recently used.
	head, tail *prefixNode
}

// prefixNode is one trie node: the prefix formed by the edge labels from
// the root down to it.
type prefixNode struct {
	parent   *prefixNode
	id       event.ID // edge label from parent (zero value at the root)
	children map[event.ID]*prefixNode
	depth    int

	snap *prefixSnapshot // nil for structural (pass-through) nodes

	prev, next *prefixNode // LRU links, set only while snap != nil
}

// prefixSnapshot captures the full execution context after a prefix:
// the serialized replica states plus the executor-side bookkeeping that
// the remaining suffix can observe (captured sync payloads, recorded
// observations, failed ops). DroppedSyncs are absent by construction —
// they only occur under armed faults, and fault-carrying interleavings
// bypass the cache entirely.
type prefixSnapshot struct {
	states  *replica.ClusterSnapshot
	pending map[event.ID][]byte
	obs     map[event.ID]string
	failed  []event.ID
	size    int64
	// ctxHash is the canonical execution-context digest, computed at
	// capture time when state subsumption is enabled (zero otherwise); a
	// cached prefix re-walk reuses it instead of re-serializing the
	// cluster.
	ctxHash [sha256.Size]byte
	// mset is the rolling multiset digest of the captured prefix, so a
	// restore resumes the executor's O(1) rolling updates without
	// recomputing the prefix multiset.
	mset msetDigest
}

// ownBytes is the snapshot's non-state payload (pending, observations,
// failed ops, bookkeeping) — always charged in full; only the state
// buffers participate in delta sharing.
func (s *prefixSnapshot) ownBytes() int64 {
	if s.states == nil {
		return s.size
	}
	return s.size - s.states.Bytes
}

func newPrefixCache(budget int64, every int) *prefixCache {
	if every <= 0 {
		every = defaultPrefixSnapshotEvery
	}
	return &prefixCache{
		budget: budget,
		every:  every,
		share:  true,
		root:   &prefixNode{},
		refs:   make(map[*replica.StateBuf]int),
	}
}

// lookup walks the trie along il and returns the deepest cached snapshot
// whose prefix strictly precedes the full interleaving (depth < len(il);
// a full-length restore would skip the execution whose outcome the
// caller needs). The returned snapshot is marked most recently used.
func (c *prefixCache) lookup(il interleave.Interleaving) (*prefixSnapshot, int) {
	node := c.root
	var best *prefixNode
	for d := 0; d < len(il)-1; d++ {
		child, ok := node.children[il[d]]
		if !ok {
			break
		}
		node = child
		if node.snap != nil {
			best = node
		}
	}
	if best == nil {
		return nil, 0
	}
	c.touch(best)
	return best.snap, best.depth
}

// cached returns the snapshot already stored for the prefix il[:depth]
// (nil when absent), refreshing its recency. The executor checks this
// before serializing the cluster, so re-walking a hot prefix costs a
// map-walk rather than a snapshot — and the stored context hash lets
// subsumption re-check the frontier without re-serializing either.
func (c *prefixCache) cached(il interleave.Interleaving, depth int) *prefixSnapshot {
	node := c.root
	for d := 0; d < depth; d++ {
		child, ok := node.children[il[d]]
		if !ok {
			return nil
		}
		node = child
	}
	if node.snap == nil {
		return nil
	}
	c.touch(node)
	return node.snap
}

// wantSnapshot reports whether the executor should snapshot at depth
// while executing il: every K events, plus the divergence depth against
// the previous interleaving (the deepest prefix the next lexicographic
// interleaving can possibly share), plus the explorer-announced pivot —
// the depth where the explorer says its next yield will actually
// diverge, so the next lookup hits a snapshot at exactly its maximal
// shared prefix (pivot < 0 when the explorer cannot predict).
func (c *prefixCache) wantSnapshot(depth, divergence, pivot int) bool {
	return depth%c.every == 0 || depth == divergence || depth == pivot
}

// charge accounts a snapshot against the budget: its own bytes in full,
// plus — with delta sharing on — each state buffer only on its first
// reference (refcount 0 → 1).
func (c *prefixCache) charge(snap *prefixSnapshot) {
	if !c.share || snap.states == nil {
		c.bytes += snap.size
		return
	}
	c.bytes += snap.ownBytes()
	for _, buf := range snap.states.Bufs {
		c.refs[buf]++
		if c.refs[buf] == 1 {
			c.bytes += int64(len(buf.Data))
			c.stateBytes += int64(len(buf.Data))
		}
	}
}

// uncharge reverses charge for one snapshot (eviction / invalidation).
func (c *prefixCache) uncharge(snap *prefixSnapshot) {
	if !c.share || snap.states == nil {
		c.bytes -= snap.size
		return
	}
	c.bytes -= snap.ownBytes()
	for _, buf := range snap.states.Bufs {
		c.refs[buf]--
		if c.refs[buf] == 0 {
			delete(c.refs, buf)
			c.bytes -= int64(len(buf.Data))
			c.stateBytes -= int64(len(buf.Data))
		}
	}
}

// insert stores a snapshot for the prefix il[:depth], evicting
// least-recently-used snapshots until the byte budget holds. It returns
// the net change in charged bytes (insertion minus evictions), the net
// change in charged deduplicated state bytes (the prefix_delta_bytes
// gauge), and the number of snapshots evicted. A snapshot whose full
// logical size exceeds the whole budget is rejected outright.
func (c *prefixCache) insert(il interleave.Interleaving, depth int, snap *prefixSnapshot) (delta, stateDelta int64, evicted int) {
	if snap.size > c.budget {
		return 0, 0, 0
	}
	node := c.root
	for d := 0; d < depth; d++ {
		child, ok := node.children[il[d]]
		if !ok {
			if node.children == nil {
				node.children = make(map[event.ID]*prefixNode)
			}
			child = &prefixNode{parent: node, id: il[d], depth: node.depth + 1}
			node.children[il[d]] = child
		}
		node = child
	}
	if node.snap != nil {
		// Executions are pure functions of the prefix, so an existing
		// snapshot is identical to the offered one; keep it.
		c.touch(node)
		return 0, 0, 0
	}
	bytes0, state0 := c.bytes, c.stateBytes
	node.snap = snap
	c.charge(snap)
	c.pushFront(node)
	for c.bytes > c.budget && c.tail != nil && c.tail != node {
		c.drop(c.tail)
		evicted++
	}
	return c.bytes - bytes0, c.stateBytes - state0, evicted
}

// invalidate discards every cached snapshot (ConstraintPoll re-pruning
// boundary) and returns the charged and charged-state bytes freed.
func (c *prefixCache) invalidate() (freed, stateFreed int64) {
	freed, stateFreed = c.bytes, c.stateBytes
	c.root = &prefixNode{}
	c.bytes, c.stateBytes = 0, 0
	c.refs = make(map[*replica.StateBuf]int)
	c.head, c.tail = nil, nil
	return freed, stateFreed
}

// drop removes one snapshot-bearing node from the LRU list and the trie,
// pruning newly-empty ancestors.
func (c *prefixCache) drop(node *prefixNode) {
	c.uncharge(node.snap)
	c.unlink(node)
	node.snap = nil
	for n := node; n.parent != nil && n.snap == nil && len(n.children) == 0; n = n.parent {
		delete(n.parent.children, n.id)
	}
}

func (c *prefixCache) touch(node *prefixNode) {
	if c.head == node {
		return
	}
	c.unlink(node)
	c.pushFront(node)
}

func (c *prefixCache) pushFront(node *prefixNode) {
	node.prev = nil
	node.next = c.head
	if c.head != nil {
		c.head.prev = node
	}
	c.head = node
	if c.tail == nil {
		c.tail = node
	}
}

func (c *prefixCache) unlink(node *prefixNode) {
	if node.prev != nil {
		node.prev.next = node.next
	} else if c.head == node {
		c.head = node.next
	}
	if node.next != nil {
		node.next.prev = node.prev
	} else if c.tail == node {
		c.tail = node.prev
	}
	node.prev, node.next = nil, nil
}

// commonPrefixLen returns the length of the longest common prefix of two
// interleavings.
func commonPrefixLen(a, b interleave.Interleaving) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
