package runner

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/telemetry"
)

// TestRollingMultisetDigestParity is property (c) of the incremental
// suite: the executor's O(1) rolling digest must equal the from-scratch
// multisetHash at every prefix length, and the digest must be order-
// independent (it hashes a multiset, not a sequence).
func TestRollingMultisetDigestParity(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		il := make(interleave.Interleaving, n)
		for i := range il {
			il[i] = event.ID(r.Intn(64)) // duplicates on purpose: multiset, not set
		}
		var rolling msetDigest
		for pos := 0; pos <= n; pos++ {
			if rolling != multisetHash(il[:pos]) {
				t.Fatalf("trial %d: rolling digest diverged from recompute at prefix %d of %v", trial, pos, il)
			}
			if pos < n {
				rolling.add(msetContribution(il[pos]))
			}
		}
		shuffled := append(interleave.Interleaving(nil), il...)
		r.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if multisetHash(il) != multisetHash(shuffled) {
			t.Fatalf("trial %d: digest is order-dependent: %v vs %v", trial, il, shuffled)
		}
		if n > 0 && multisetHash(il) == multisetHash(il[:n-1]) {
			t.Fatalf("trial %d: dropping an element did not change the digest", trial)
		}
	}
}

// TestIncrementalHashingDeterminismPin is the tentpole's acceptance pin
// at the engine level, in two halves per mode × worker count. With the
// prefix cache on (delta accounting both ways), the outcome stream and
// Result are byte-identical between the incremental snapshot path
// (default) and FullSnapshotHashing. With subsumption on too, the
// deduplicated signature set and explored count are pinned — and at
// Workers 1, where the skip set is deterministic (the pool's varies with
// timing, see TestSubsumptionSignatureParity), the exact subsumed count
// and outcome stream as well, which is what proves the context hashes
// are byte-identical.
func TestIncrementalHashingDeterminismPin(t *testing.T) {
	for _, mode := range []Mode{ModeERPi, ModeDFS} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				run := func(full, noDeltas bool, subsume int64) ([]byte, *Result) {
					s := townReportScenario(t)
					return collectOutcomes(t, s, Config{
						Mode:                mode,
						Workers:             workers,
						MaxInterleavings:    400,
						PrefixCacheBytes:    testBudget,
						SubsumptionTable:    subsume,
						FullSnapshotHashing: full,
						NoPrefixDeltas:      noDeltas,
						Assertions:          []Assertion{municipalityInvariant{}},
					})
				}
				inc, incRes := run(false, false, 0)
				full, fullRes := run(true, false, 0)
				if string(inc) != string(full) {
					t.Fatal("incremental hashing changed the outcome stream vs full recompute")
				}
				assertResultsMatch(t, fullRes, incRes)
				noDelta, noDeltaRes := run(false, true, 0)
				if string(inc) != string(noDelta) {
					t.Fatal("prefix-delta accounting changed the outcome stream")
				}
				assertResultsMatch(t, noDeltaRes, incRes)

				subInc, subIncRes := run(false, false, testSubTable)
				subFull, subFullRes := run(true, false, testSubTable)
				if sigSetOf(t, subInc) != sigSetOf(t, subFull) {
					t.Fatal("incremental hashing changed the behavior set under subsumption")
				}
				if subIncRes.Explored != subFullRes.Explored {
					t.Fatalf("explored %d incremental vs %d full under subsumption",
						subIncRes.Explored, subFullRes.Explored)
				}
				if workers == 1 {
					if string(subInc) != string(subFull) {
						t.Fatal("sequential subsumption outcome stream diverged between hash modes")
					}
					if subIncRes.Subsumed != subFullRes.Subsumed {
						t.Fatalf("sequential subsumption diverged: %d skips incremental, %d full — "+
							"the context hashes are not byte-identical", subIncRes.Subsumed, subFullRes.Subsumed)
					}
				}
			})
		}
	}
}

// sigSetOf reduces a serialized outcome stream to its deduplicated,
// sorted fingerprint-signature set (the subsumption invariant).
func sigSetOf(t *testing.T, raw []byte) string {
	t.Helper()
	var outcomes []*Outcome
	if err := json.Unmarshal(raw, &outcomes); err != nil {
		t.Fatal(err)
	}
	set := make(map[string]struct{})
	for _, o := range outcomes {
		set[OutcomeSignature(o)] = struct{}{}
	}
	sigs := make([]string, 0, len(set))
	for s := range set {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\n")
}

// TestIncrementalHashingFaultParity repeats the pin under seeded faults:
// an all-armed crash schedule replays byte-identically with incremental
// hashing on and off (armed interleavings reset nodes mid-run, the
// hardest path for version-keyed caches), at Workers 1 and 8.
func TestIncrementalHashingFaultParity(t *testing.T) {
	crashSchedule := func() *fault.Schedule {
		return &fault.Schedule{Seed: 42, Faults: []fault.Fault{
			{Kind: fault.CrashReplica, Replica: "A", At: 3},
		}}
	}
	for _, workers := range []int{1, 8} {
		s := townReportScenario(t)
		s.Finalize = AntiEntropy(2)
		cfg := Config{
			Mode:             ModeERPi,
			Workers:          workers,
			Faults:           crashSchedule(),
			RetryBackoff:     100 * time.Microsecond,
			PrefixCacheBytes: testBudget,
		}
		inc, incRes := collectOutcomes(t, s, cfg)
		cfgFull := cfg
		cfgFull.Faults = crashSchedule()
		cfgFull.FullSnapshotHashing = true
		full, fullRes := collectOutcomes(t, s, cfgFull)
		if string(inc) != string(full) {
			t.Fatalf("workers=%d: incremental hashing changed a fault run's outcomes", workers)
		}
		assertResultsMatch(t, fullRes, incRes)
	}
}

// TestIncrementalSnapshotTelemetry: an incremental run actually reuses
// cached buffers (bytes_reused > 0, dirty well below replicas×snapshots)
// and the delta gauge stays consistent; a FullSnapshotHashing run reuses
// nothing.
func TestIncrementalSnapshotTelemetry(t *testing.T) {
	run := func(full bool) telemetry.Snapshot {
		s := townReportScenario(t)
		reg := telemetry.New()
		if _, err := Run(s, Config{
			Mode:                ModeERPi,
			PrefixCacheBytes:    testBudget,
			SubsumptionTable:    testSubTable,
			FullSnapshotHashing: full,
			Telemetry:           reg,
		}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	inc := run(false)
	if inc.Counters["snapshot.bytes_reused"] == 0 {
		t.Fatal("incremental run reused no snapshot bytes — the version-keyed caches are not wired")
	}
	if inc.Counters["snapshot.dirty_replicas"] == 0 {
		t.Fatal("dirty_replicas = 0: snapshots were never accounted")
	}
	if g := inc.Gauges["runner.prefix_delta_bytes"]; g <= 0 {
		t.Fatalf("prefix_delta_bytes gauge = %d after a cached run, want > 0", g)
	}
	full := run(true)
	if got := full.Counters["snapshot.bytes_reused"]; got != 0 {
		t.Fatalf("FullSnapshotHashing run reused %d bytes, want 0", got)
	}
	if full.Counters["snapshot.dirty_replicas"] <= inc.Counters["snapshot.dirty_replicas"] {
		t.Fatalf("full run re-serialized %d replicas, incremental %d — incremental should be strictly cheaper",
			full.Counters["snapshot.dirty_replicas"], inc.Counters["snapshot.dirty_replicas"])
	}
}

// TestHashPathAllocBudget is the allocs/op regression gate on the per-
// depth hot path: with per-replica caches warm (clean cluster), one
// CanonicalSnapshot + context hash must stay within a small committed
// allocation budget — the pooled-scratch and hash-of-hashes design is
// what keeps it there, and a regression (e.g. re-serializing clean
// replicas, or a new per-call buffer) fails this test before it shows up
// in benchmarks. CI runs it by name in the bench job.
func TestHashPathAllocBudget(t *testing.T) {
	s := townReportScenario(t)
	cluster, err := s.NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range cluster.IDs() {
		n, _ := cluster.Node(id)
		if _, err := n.State.Apply(replica.Op{Name: "set.add", Args: []string{"x"}}); err != nil {
			t.Fatal(err)
		}
	}
	pending := map[event.ID][]byte{1: []byte("payload")}
	obs := map[event.ID]string{2: "ok"}
	failed := []event.ID{3}
	// Warm the caches and the scratch pool.
	if _, err := cluster.CanonicalSnapshot(); err != nil {
		t.Fatal(err)
	}
	snap, _ := cluster.CanonicalSnapshot()
	_ = contextHash(snap, pending, obs, failed)

	const budget = 12 // committed baseline: clean-cluster snapshot + hash + context digest
	allocs := testing.AllocsPerRun(200, func() {
		snap, err := cluster.CanonicalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Dirty != 0 {
			t.Fatalf("clean cluster re-serialized %d replicas", snap.Dirty)
		}
		_ = snap.Hash()
		_ = contextHash(snap, pending, obs, failed)
	})
	if allocs > budget {
		t.Fatalf("hash hot path allocates %.0f objects/op, budget %d — the incremental path regressed", allocs, budget)
	}
}

// TestSubsumeTableStripedStress hammers the striped table from many
// goroutines — concurrent visits across colliding frontiers, budget
// pressure forcing cross-stripe eviction, and periodic invalidation —
// and checks the global byte accounting lands exactly consistent with
// the surviving entries. CI runs it under -race.
func TestSubsumeTableStripedStress(t *testing.T) {
	const (
		workers = 8
		visits  = 2000
	)
	budget := int64(200 * (subsumeEntryOverhead + 8*4))
	tbl := newSubsumeTable(budget)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			prefix := interleave.Interleaving{0, 1, 2, 3}
			for i := 0; i < visits; i++ {
				ctx := hashOf(byte(r.Intn(64)))
				ctx[1] = byte(r.Intn(8))
				tbl.visit(ctx, msetOf(byte(r.Intn(8))), prefix)
				if i%500 == 250 && w == 0 {
					tbl.invalidate()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := tbl.bytesHeld(); got > budget || got < 0 {
		t.Fatalf("bytes held %d outside [0, %d]", got, budget)
	}
	want := int64(tbl.len()) * int64(subsumeEntryOverhead+8*4)
	if got := tbl.bytesHeld(); got != want {
		t.Fatalf("byte accounting drifted: held %d, %d entries imply %d", got, tbl.len(), want)
	}
	freed := tbl.invalidate()
	if freed != want || tbl.bytesHeld() != 0 || tbl.len() != 0 {
		t.Fatalf("final invalidate freed %d (want %d), left %d bytes / %d entries",
			freed, want, tbl.bytesHeld(), tbl.len())
	}
}
