package runner

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/proxy"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/telemetry"
)

// This file shards the live replay path the way pool.go shards the
// checkpointed one: the coordinator (pull/dedup/journal/reorder-buffer,
// reused verbatim from pool.go) stays identical, so every ordering
// guarantee documented there carries over, and only the worker body
// differs — each worker drives executeLive instead of the checkpointed
// executor, running one goroutine per replica under a gate session of its
// own.
//
// Isolation between concurrent sessions comes from the session, not the
// engine: a LiveGates implementation must hand every session a fresh
// fenced namespace (proxy.DistPool mints sess/<worker>/<epoch> lock keys,
// so a stale WaitTurn or Advance from a cancelled attempt can never order
// the next attempt's events), and the default in-process factory simply
// builds a new LocalGate per session.

// LiveSession is one execution attempt's gate namespace: Gate mints the
// TurnGate for a replica, and Close releases whatever the session still
// holds (armed mutexes, counters). Sessions are single-use.
type LiveSession interface {
	Gate(rep event.ReplicaID) (proxy.TurnGate, error)
	Close() error
}

// SessionFactory mints the gate sessions for one live worker. Each call
// returns the next session, fenced from all of the worker's previous
// ones: nothing a cancelled earlier session still does may be visible to
// it.
type SessionFactory func() (LiveSession, error)

// LiveGates builds the per-worker session factories for the live pool
// (Config.LiveGates). Nil defaults to in-process LocalGate sessions.
type LiveGates func(worker int) (SessionFactory, error)

// localSession is the default in-process session: one LocalGate shared by
// all replicas, isolation by construction (nothing outlives the value).
type localSession struct {
	gate *proxy.LocalGate
}

func (s localSession) Gate(event.ReplicaID) (proxy.TurnGate, error) { return s.gate, nil }
func (s localSession) Close() error                                 { return nil }

func localSessions(int) (SessionFactory, error) {
	return func() (LiveSession, error) {
		return localSession{gate: proxy.NewLocalGate()}, nil
	}, nil
}

// runLive explores the scenario through the live replay path with a pool
// of workers. The coordinator half is pool.go's, untouched; see the
// determinism guarantees there.
func runLive(ctx context.Context, s Scenario, cfg Config, res *Result, explorer interleave.Explorer, explored *exploredSet, pruning prune.Config, maxNew, workers int, tel *runTelemetry) error {
	gatesFor := cfg.LiveGates
	if gatesFor == nil {
		gatesFor = localSessions
	}
	wctx, cancelWorkers := context.WithCancel(ctx)
	defer cancelWorkers()
	p := &pool{
		ctx:      ctx,
		s:        s,
		cfg:      cfg,
		res:      res,
		explorer: explorer,
		explored: explored,
		pruning:  pruning,
		maxNew:   maxNew,
		tel:      tel,
		workCh:   make(chan workItem),
		resCh:    make(chan workResult, workers),
		fatalCh:  make(chan error, workers),
		pending:  make(map[int]workResult),
		nextProc: 1,
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.liveWorker(wctx, w, gatesFor)
		}(w)
	}
	err := p.coordinate()
	cancelWorkers()
	close(p.workCh)
	wg.Wait()
	if err != nil {
		return err
	}
	p.finalize()
	return nil
}

// liveWorker mirrors pool.worker for the live path: private injector and
// jitter generator (same derivations, so fault arming and retry timing
// match the checkpointed pool at equal worker ids), plus a session
// factory in place of a private cluster — executeLive builds its cluster
// per attempt.
func (p *pool) liveWorker(ctx context.Context, w int, gatesFor LiveGates) {
	var inj *fault.Injector
	if p.cfg.Faults != nil {
		var err error
		inj, err = fault.NewInjector(*p.cfg.Faults)
		if err != nil {
			p.fatalCh <- fmt.Errorf("runner: %w", err)
			return
		}
		p.tel.instrument(inj)
	}
	sessions, err := gatesFor(w)
	if err != nil {
		p.fatalCh <- fmt.Errorf("runner: live gates for worker %d: %w", w, err)
		return
	}
	jitter := rand.New(rand.NewSource(p.cfg.Seed ^ 0x5deece66d ^ int64(w+1)<<32))
	for item := range p.workCh {
		p.tel.setWorker(w, item.index)
		execSpan := p.tel.span(telemetry.StageExecute, item.index, w)
		outcome, attempts, err := p.liveExecuteWithRetry(ctx, item, w, sessions, inj, jitter)
		execSpan.End()
		p.tel.setWorker(w, 0)
		p.resCh <- workResult{index: item.index, il: item.il, outcome: outcome, attempts: attempts, err: err}
	}
}

// liveExecuteWithRetry is executeWithRetry's live twin: same retry
// policy, same backoff, but every attempt runs under a fresh session —
// which is what makes retrying safe at all. A failed attempt may leave
// stale goroutines wedged inside WaitTurn until their context dies;
// fencing means the retry cannot hear them.
func (p *pool) liveExecuteWithRetry(ctx context.Context, item workItem, w int, sessions SessionFactory, inj *fault.Injector, jitter *rand.Rand) (*Outcome, int, error) {
	attempts := 0
	for {
		attempts++
		outcome, err := p.liveAttempt(ctx, item, w, sessions, inj)
		if err == nil {
			return outcome, attempts, nil
		}
		if ctx.Err() != nil {
			return nil, attempts, ctx.Err()
		}
		if attempts > p.cfg.MaxRetries {
			return nil, attempts, err
		}
		p.tel.onRetry()
		select {
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		case <-time.After(retryDelay(p.cfg.RetryBackoff, attempts, jitter)):
		}
	}
}

// liveAttempt runs one execution attempt of one interleaving under one
// fresh gate session, honoring InterleavingTimeout and running
// Scenario.Finalize (inside executeLive) like the sequential live path.
func (p *pool) liveAttempt(ctx context.Context, item workItem, w int, sessions SessionFactory, inj *fault.Injector) (*Outcome, error) {
	ilCtx := ctx
	if p.cfg.InterleavingTimeout > 0 {
		var cancel context.CancelFunc
		ilCtx, cancel = context.WithTimeout(ctx, p.cfg.InterleavingTimeout)
		defer cancel()
	}
	sess, err := sessions()
	if err != nil {
		return nil, fmt.Errorf("live session: %w", err)
	}
	p.tel.onLiveSession(1)
	defer func() {
		_ = sess.Close()
		p.tel.onLiveSession(-1)
	}()
	return executeLive(ilCtx, p.s, item.il, item.index, w, sess.Gate, inj, p.tel.registry())
}
