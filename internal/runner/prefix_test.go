package runner

import (
	"fmt"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/telemetry"
)

// testBudget is a prefix-cache byte budget comfortably above what the
// townreport scenario's snapshots need.
const testBudget = 1 << 20

// TestPrefixCacheTrie exercises the snapshot trie directly: deepest-match
// lookup, LRU eviction under the byte budget, branch pruning, and
// invalidation.
func TestPrefixCacheTrie(t *testing.T) {
	il := func(ids ...int) interleave.Interleaving {
		out := make(interleave.Interleaving, len(ids))
		for i, id := range ids {
			out[i] = event.ID(id)
		}
		return out
	}
	snap := func(size int64) *prefixSnapshot { return &prefixSnapshot{size: size} }

	c := newPrefixCache(100, 4)
	if got, depth := c.lookup(il(1, 2, 3, 4)); got != nil || depth != 0 {
		t.Fatalf("empty cache lookup = (%v, %d), want miss", got, depth)
	}
	s2 := snap(40)
	if delta, stateDelta, evicted := c.insert(il(1, 2, 3, 4), 2, s2); delta != 40 || stateDelta != 0 || evicted != 0 {
		t.Fatalf("insert depth 2: delta=%d stateDelta=%d evicted=%d", delta, stateDelta, evicted)
	}
	s3 := snap(40)
	c.insert(il(1, 2, 3, 4), 3, s3)

	// Deepest matching strict prefix wins.
	if got, depth := c.lookup(il(1, 2, 3, 4)); got != s3 || depth != 3 {
		t.Fatalf("lookup = (%p, %d), want (s3, 3)", got, depth)
	}
	// A full-length match must not be returned for the interleaving itself.
	if got, depth := c.lookup(il(1, 2, 3)); got != s2 || depth != 2 {
		t.Fatalf("lookup(len 3) = (%p, %d), want (s2, 2)", got, depth)
	}
	// Diverging interleaving only shares the 2-prefix.
	if got, depth := c.lookup(il(1, 2, 9, 3)); got != s2 || depth != 2 {
		t.Fatalf("diverging lookup = (%p, %d), want (s2, 2)", got, depth)
	}

	// s2 was most recently used (just looked up); inserting 40 more bytes
	// must evict the LRU snapshot, which is s3.
	s5 := snap(40)
	if delta, _, evicted := c.insert(il(9, 8, 7, 6, 5, 4), 5, s5); delta != 0 || evicted != 1 {
		t.Fatalf("evicting insert: delta=%d evicted=%d, want 0, 1", delta, evicted)
	}
	if got, depth := c.lookup(il(1, 2, 3, 4)); got != s2 || depth != 2 {
		t.Fatalf("post-eviction lookup = (%p, %d), want (s2, 2)", got, depth)
	}
	if c.cached(il(9, 8, 7, 6, 5, 4), 5) != s5 {
		t.Fatal("inserted prefix not reported cached")
	}
	if c.cached(il(1, 2, 3, 4), 3) != nil {
		t.Fatal("evicted prefix still reported cached")
	}

	// A snapshot exceeding the whole budget is rejected.
	if delta, _, _ := c.insert(il(4, 4, 4), 2, snap(1000)); delta != 0 {
		t.Fatalf("oversized insert accepted: delta=%d", delta)
	}

	if freed, stateFreed := c.invalidate(); freed != 80 || stateFreed != 0 {
		t.Fatalf("invalidate freed %d/%d, want 80/0", freed, stateFreed)
	}
	if got, _ := c.lookup(il(1, 2, 3, 4)); got != nil {
		t.Fatal("lookup after invalidate still hits")
	}
}

// TestPrefixCacheDeterminismPin is the tentpole's acceptance pin: the
// outcome stream and Result are byte-identical with the prefix cache on
// vs. off, at Workers: 1 and Workers: 8, in both the pruned and the
// exhaustive mode.
func TestPrefixCacheDeterminismPin(t *testing.T) {
	for _, mode := range []Mode{ModeERPi, ModeDFS} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				run := func(cacheBytes int64) ([]byte, *Result) {
					s := townReportScenario(t)
					return collectOutcomes(t, s, Config{
						Mode:             mode,
						Workers:          workers,
						MaxInterleavings: 400,
						PrefixCacheBytes: cacheBytes,
						Assertions:       []Assertion{municipalityInvariant{}},
					})
				}
				off, offRes := run(0)
				on, onRes := run(testBudget)
				if string(off) != string(on) {
					t.Fatal("prefix cache changed the outcome stream")
				}
				assertResultsMatch(t, offRes, onRes)
				if mode == ModeERPi && len(offRes.Violations) == 0 {
					t.Fatal("pin is vacuous: the scenario must produce violations")
				}
			})
		}
	}
}

// TestPrefixCacheDeterminismUnderFaults extends the pin to a seeded
// fault schedule: fault-carrying interleavings (including mid-suffix
// crashes) must fall back to a clean genesis replay, and the run must be
// byte-identical to the cache-off engine. The probabilistic faults make
// armed and unarmed interleavings interleave, so cached snapshots built
// on clean runs sit in the trie while crashes replay from genesis.
func TestPrefixCacheDeterminismUnderFaults(t *testing.T) {
	sched := &fault.Schedule{Seed: 11, Faults: []fault.Fault{
		// Coin-flip crash of A mid-interleaving with immediate restart.
		{Kind: fault.CrashReplica, Replica: "A", At: 3, Prob: 0.5},
		// Interleaving 4 only: B stays down, so index 4 quarantines.
		{Kind: fault.CrashReplica, Replica: "B", Interleaving: 4, At: 2, Duration: 10},
		// Coin-flip partition of the municipality link.
		{Kind: fault.Partition, A: "A", B: "M", At: 0, Duration: 10, Prob: 0.5},
	}}
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(cacheBytes int64) ([]byte, *Result) {
				s := townReportScenario(t)
				s.Finalize = AntiEntropy(2)
				return collectOutcomes(t, s, Config{
					Mode:             ModeERPi,
					Workers:          workers,
					Seed:             7,
					Faults:           sched,
					PrefixCacheBytes: cacheBytes,
					Assertions:       []Assertion{municipalityInvariant{}},
					RetryBackoff:     100 * time.Microsecond,
				})
			}
			off, offRes := run(0)
			on, onRes := run(testBudget)
			if string(off) != string(on) {
				t.Fatal("prefix cache changed the outcome stream under faults")
			}
			assertResultsMatch(t, offRes, onRes)
			if len(offRes.Quarantined) != 1 || offRes.Quarantined[0].Index != 4 {
				t.Fatalf("pin is vacuous: want exactly interleaving 4 quarantined, got %v", offRes.Quarantined)
			}
		})
	}
}

// TestPrefixCacheRepruningParity: ConstraintPoll re-pruning must flush
// the cache (sequential engine directly, pool workers via the cache
// generation), without changing any result.
func TestPrefixCacheRepruningParity(t *testing.T) {
	for _, workers := range []int{1, 8} {
		run := func(cacheBytes int64) *Result {
			s := townReportScenario(t)
			s.Pruning.TestedReplicas = nil
			delivered := false
			res, err := Run(s, Config{
				Mode:             ModeERPi,
				Workers:          workers,
				PollEvery:        5,
				PrefixCacheBytes: cacheBytes,
				ConstraintPoll: func() (pcfg prune.Config, found bool, err error) {
					if delivered {
						return pcfg, false, nil
					}
					delivered = true
					pcfg.TestedReplicas = append(pcfg.TestedReplicas, "M")
					return pcfg, true, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		off := run(0)
		on := run(testBudget)
		assertResultsMatch(t, off, on)
		if !on.Exhausted {
			t.Fatalf("workers=%d: re-pruning parity is vacuous: not exhausted", workers)
		}
	}
}

// TestPrefixCacheTelemetry: a cache-enabled exhaustive run records hits,
// misses, skipped events, the hit-depth histogram, the snapshot-bytes
// gauge (within budget), and restore-prefix spans — and the
// executed/skipped split accounts for every event of every interleaving.
func TestPrefixCacheTelemetry(t *testing.T) {
	s := townReportScenario(t)
	reg := telemetry.New()
	res, err := Run(s, Config{
		Mode:             ModeDFS,
		MaxInterleavings: 200,
		PrefixCacheBytes: testBudget,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	hits := snap.Counters["runner.prefix_cache_hits"]
	misses := snap.Counters["runner.prefix_cache_misses"]
	if hits == 0 {
		t.Fatal("no prefix cache hits on a lexicographic DFS run")
	}
	if hits+misses != int64(res.Explored) {
		t.Fatalf("hits+misses = %d, want explored = %d", hits+misses, res.Explored)
	}
	executed := snap.Counters["runner.events_executed"]
	skipped := snap.Counters["runner.events_skipped"]
	if skipped == 0 {
		t.Fatal("no events skipped")
	}
	perIL := int64(s.Log.Len())
	if executed+skipped != int64(res.Explored)*perIL {
		t.Fatalf("executed+skipped = %d, want %d*%d", executed+skipped, res.Explored, perIL)
	}
	if executed >= int64(res.Explored)*perIL {
		t.Fatal("cache enabled but every event was executed")
	}
	bytes := snap.Gauges["runner.snapshot_bytes"]
	if bytes <= 0 || bytes > testBudget {
		t.Fatalf("runner.snapshot_bytes = %d, want within (0, %d]", bytes, testBudget)
	}
	depth := snap.Histograms["runner.prefix_hit_depth"]
	if depth.Count != hits {
		t.Fatalf("hit-depth histogram count = %d, want %d hits", depth.Count, hits)
	}
	if rp := snap.Histograms["stage.restore-prefix_ns"]; rp.Count != int64(res.Explored) {
		t.Fatalf("restore-prefix spans = %d, want %d", rp.Count, res.Explored)
	}
}

// TestPrefixCacheEviction: a budget far below the working set forces LRU
// evictions while results stay identical to cache-off.
func TestPrefixCacheEviction(t *testing.T) {
	s := townReportScenario(t)
	reg := telemetry.New()
	cfg := Config{
		Mode:             ModeDFS,
		MaxInterleavings: 200,
		PrefixCacheBytes: 2 << 10,
		Telemetry:        reg,
	}
	on, onRes := collectOutcomes(t, s, cfg)
	snap := reg.Snapshot()
	if snap.Counters["runner.prefix_evictions"] == 0 {
		t.Fatalf("no evictions at a %d-byte budget", cfg.PrefixCacheBytes)
	}
	if bytes := snap.Gauges["runner.snapshot_bytes"]; bytes < 0 || bytes > cfg.PrefixCacheBytes {
		t.Fatalf("runner.snapshot_bytes = %d, want within [0, %d]", bytes, cfg.PrefixCacheBytes)
	}
	cfg.PrefixCacheBytes = 0
	cfg.Telemetry = nil
	off, offRes := collectOutcomes(t, townReportScenario(t), cfg)
	if string(on) != string(off) {
		t.Fatal("evicting cache changed the outcome stream")
	}
	assertResultsMatch(t, offRes, onRes)
}

// TestPrefixPivotSnapshotPolicy pins the explorer-informed snapshot
// placement. The periodic stride is pushed out of reach, so the only
// snapshots the cache can take sit at the divergence depth and at the
// explorer-announced pivot — the depth where the NEXT interleaving's
// lookup lands. The cache must still hit, and the outcome stream must be
// byte-identical to the cache-off engine.
func TestPrefixPivotSnapshotPolicy(t *testing.T) {
	run := func(cacheBytes int64) ([]byte, *Result, *telemetry.Registry) {
		s := townReportScenario(t)
		reg := telemetry.New()
		raw, res := collectOutcomes(t, s, Config{
			Mode:                ModeDFS,
			MaxInterleavings:    400,
			PrefixCacheBytes:    cacheBytes,
			PrefixSnapshotEvery: 1 << 20,
			Telemetry:           reg,
		})
		return raw, res, reg
	}
	off, offRes, _ := run(0)
	on, onRes, reg := run(testBudget)
	if string(off) != string(on) {
		t.Fatal("pivot-informed snapshots changed the outcome stream")
	}
	assertResultsMatch(t, offRes, onRes)
	snap := reg.Snapshot()
	if hits := snap.Counters["runner.prefix_cache_hits"]; hits == 0 {
		t.Fatal("no cache hits with the stride disabled: pivot snapshots are not landing")
	}
}

// TestWantSnapshotPolicy is the unit truth table for the snapshot
// placement predicate: periodic stride, divergence depth, and the
// explorer pivot each independently trigger a snapshot.
func TestWantSnapshotPolicy(t *testing.T) {
	c := newPrefixCache(testBudget, 4)
	cases := []struct {
		depth, divergence, pivot int
		want                     bool
	}{
		{4, -1, -1, true},  // stride
		{8, -1, -1, true},  // stride
		{5, 5, -1, true},   // divergence
		{5, -1, 5, true},   // pivot
		{5, -1, -1, false}, // none
		{3, 5, 7, false},   // none at this depth
		{7, 5, 7, true},    // pivot at depth 7
	}
	for _, tc := range cases {
		if got := c.wantSnapshot(tc.depth, tc.divergence, tc.pivot); got != tc.want {
			t.Errorf("wantSnapshot(%d, %d, %d) = %v, want %v",
				tc.depth, tc.divergence, tc.pivot, got, tc.want)
		}
	}
}
