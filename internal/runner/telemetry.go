package runner

import (
	"time"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/telemetry"
)

// runTelemetry pre-resolves every metric the engine touches so the hot
// loop never performs a registry lookup. A nil *runTelemetry (telemetry
// off) makes every method a zero-allocation no-op — the invariant pinned
// by TestTelemetryNilPathZeroAllocs and BenchmarkTelemetryOverhead.
//
// Metric names written by the engine:
//
//	runner.explored            interleavings assigned an exploration index
//	runner.dedup_skipped       explorer yields suppressed by the explored set
//	runner.retries             execution attempts beyond the first
//	runner.quarantined         interleavings that failed all retries
//	runner.violations          assertion failures
//	runner.prefix_cache_hits   executions resumed from a cached prefix snapshot
//	runner.prefix_cache_misses cache-enabled executions replayed from genesis
//	runner.prefix_evictions    snapshots evicted by the LRU byte budget
//	runner.subsumed_interleavings  interleavings skipped by state subsumption
//	runner.subsumption_table_bytes bytes held by the subsumption table (gauge)
//	runner.events_executed     events actually replayed
//	runner.events_skipped      events skipped via prefix restore
//	runner.snapshot_bytes      bytes currently held by prefix caches (gauge)
//	runner.prefix_delta_bytes  deduplicated state bytes charged by prefix caches (gauge)
//	snapshot.dirty_replicas    replicas re-serialized by canonical snapshots
//	snapshot.bytes_reused      snapshot bytes served from per-replica caches
//	runner.prefix_hit_depth    restored prefix depths (histogram, in events)
//	fuzz.generations           completed ModeFuzz corpus generations
//	fuzz.corpus_size           behaviour-novel interleavings in the corpus (gauge)
//	fuzz.novelty_rate_permille last generation's novel fraction × 1000 (gauge)
//	live.sessions              live gate sessions currently open (gauge)
//	journal.fsync_batches      durable journal flushes
//	journal.fsync_keys         appends covered by those flushes
//	fault.armed                faults armed across interleavings
//	fault.fired                fault effects applied (crashes, drops, ...)
//	stage.<stage>_ns           per-stage latency histograms (see telemetry.Stage)
type runTelemetry struct {
	reg *telemetry.Registry

	explored       *telemetry.Counter
	dedupSkipped   *telemetry.Counter
	retries        *telemetry.Counter
	quarantined    *telemetry.Counter
	violations     *telemetry.Counter
	fsyncBatches   *telemetry.Counter
	fsyncKeys      *telemetry.Counter
	prefixHits     *telemetry.Counter
	prefixMisses   *telemetry.Counter
	prefixEvicted  *telemetry.Counter
	eventsExecuted *telemetry.Counter
	eventsSkipped  *telemetry.Counter
	snapshotBytes  *telemetry.Gauge
	prefixDelta    *telemetry.Gauge
	dirtyReplicas  *telemetry.Counter
	bytesReused    *telemetry.Counter
	subsumed       *telemetry.Counter
	subsumeBytes   *telemetry.Gauge
	hitDepth       *telemetry.Histogram
	liveSessions   *telemetry.Gauge
	fuzzGens       *telemetry.Counter
	fuzzCorpus     *telemetry.Gauge
	fuzzNovelty    *telemetry.Gauge
}

// prefixDepthBounds buckets the prefix-hit-depth histogram by restored
// depth in events (not nanoseconds).
var prefixDepthBounds = []int64{1, 2, 4, 6, 8, 12, 16, 20, 24, 32, 48, 64}

func newRunTelemetry(reg *telemetry.Registry) *runTelemetry {
	if reg == nil {
		return nil
	}
	return &runTelemetry{
		reg:            reg,
		explored:       reg.Counter("runner.explored"),
		dedupSkipped:   reg.Counter("runner.dedup_skipped"),
		retries:        reg.Counter("runner.retries"),
		quarantined:    reg.Counter("runner.quarantined"),
		violations:     reg.Counter("runner.violations"),
		fsyncBatches:   reg.Counter("journal.fsync_batches"),
		fsyncKeys:      reg.Counter("journal.fsync_keys"),
		prefixHits:     reg.Counter("runner.prefix_cache_hits"),
		prefixMisses:   reg.Counter("runner.prefix_cache_misses"),
		prefixEvicted:  reg.Counter("runner.prefix_evictions"),
		eventsExecuted: reg.Counter("runner.events_executed"),
		eventsSkipped:  reg.Counter("runner.events_skipped"),
		snapshotBytes:  reg.Gauge("runner.snapshot_bytes"),
		prefixDelta:    reg.Gauge("runner.prefix_delta_bytes"),
		dirtyReplicas:  reg.Counter("snapshot.dirty_replicas"),
		bytesReused:    reg.Counter("snapshot.bytes_reused"),
		subsumed:       reg.Counter("runner.subsumed_interleavings"),
		subsumeBytes:   reg.Gauge("runner.subsumption_table_bytes"),
		hitDepth:       reg.HistogramWithBounds("runner.prefix_hit_depth", prefixDepthBounds),
		liveSessions:   reg.Gauge("live.sessions"),
		fuzzGens:       reg.Counter("fuzz.generations"),
		fuzzCorpus:     reg.Gauge("fuzz.corpus_size"),
		fuzzNovelty:    reg.Gauge("fuzz.novelty_rate_permille"),
	}
}

// registry exposes the underlying registry for engine paths that record
// their own metrics (nil when telemetry is off).
func (t *runTelemetry) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// onLiveSession tracks the live.sessions gauge: +1 when a live gate
// session opens, -1 when it closes.
func (t *runTelemetry) onLiveSession(delta int64) {
	if t == nil {
		return
	}
	t.liveSessions.Add(delta)
}

// span opens a stage span (inert when telemetry is off).
func (t *runTelemetry) span(stage telemetry.Stage, index, worker int) telemetry.SpanStart {
	if t == nil {
		return telemetry.SpanStart{}
	}
	return t.reg.StartSpan(stage, index, worker)
}

// beginRun initializes progress for one exploration.
func (t *runTelemetry) beginRun(total, workers, resumed int) {
	if t == nil {
		return
	}
	p := t.reg.Progress()
	p.BeginRun(total, workers)
	p.SetResumed(int64(resumed))
}

func (t *runTelemetry) endRun() {
	if t == nil {
		return
	}
	t.reg.Progress().EndRun()
}

// onExplored counts one interleaving assigned an exploration index.
func (t *runTelemetry) onExplored() {
	if t == nil {
		return
	}
	t.explored.Inc()
	t.reg.Progress().AddExplored(1)
}

func (t *runTelemetry) onDedupSkipped() {
	if t == nil {
		return
	}
	t.dedupSkipped.Inc()
}

// onDedupSaturated flips the live dedup-saturation flag the first time the
// explored set refuses a key, so /progress shows the degradation while the
// run is still going (Result.DedupSaturated only lands at the end).
func (t *runTelemetry) onDedupSaturated() {
	if t == nil {
		return
	}
	t.reg.Progress().SetDedupSaturated()
}

func (t *runTelemetry) onRetry() {
	if t == nil {
		return
	}
	t.retries.Inc()
}

func (t *runTelemetry) onQuarantined() {
	if t == nil {
		return
	}
	t.quarantined.Inc()
	t.reg.Progress().AddQuarantined()
}

func (t *runTelemetry) onViolations(n int) {
	if t == nil {
		return
	}
	t.violations.Add(int64(n))
	t.reg.Progress().AddViolations(int64(n))
}

// onFuzzGeneration publishes one completed corpus evolution: total
// generations, current corpus size, and the generation's novelty rate
// (stored in permille so the gauge stays integer-valued).
func (t *runTelemetry) onFuzzGeneration(generations, corpus int, rate float64) {
	if t == nil {
		return
	}
	t.fuzzGens.Inc()
	t.fuzzCorpus.Set(int64(corpus))
	permille := int64(rate * 1000)
	t.fuzzNovelty.Set(permille)
	t.reg.Progress().SetFuzz(int64(generations), int64(corpus), permille)
}

// onPrefixHit counts one execution resumed from a cached prefix of the
// given depth.
func (t *runTelemetry) onPrefixHit(depth int) {
	if t == nil {
		return
	}
	t.prefixHits.Inc()
	t.hitDepth.Observe(int64(depth))
}

// onPrefixMiss counts one cache-enabled execution that replayed from the
// genesis checkpoint.
func (t *runTelemetry) onPrefixMiss() {
	if t == nil {
		return
	}
	t.prefixMisses.Inc()
}

// onSubsumed counts one interleaving skipped by state subsumption.
func (t *runTelemetry) onSubsumed() {
	if t == nil {
		return
	}
	t.subsumed.Inc()
}

// onSubsumeBytes applies one subsumption-table operation's byte delta
// (insertions positive, evictions and invalidations negative).
func (t *runTelemetry) onSubsumeBytes(delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.subsumeBytes.Add(delta)
}

// onEvents accounts one execution's replayed vs. prefix-skipped events.
func (t *runTelemetry) onEvents(executed, skipped int) {
	if t == nil {
		return
	}
	t.eventsExecuted.Add(int64(executed))
	t.eventsSkipped.Add(int64(skipped))
}

// onSnapshot applies one cache operation's byte delta (insertions are
// positive, evictions and invalidations negative) and eviction count.
func (t *runTelemetry) onSnapshot(deltaBytes int64, evicted int) {
	if t == nil {
		return
	}
	t.snapshotBytes.Add(deltaBytes)
	t.prefixEvicted.Add(int64(evicted))
}

// onPrefixDeltaBytes applies one cache operation's change in charged
// deduplicated state bytes (the delta-snapshot footprint).
func (t *runTelemetry) onPrefixDeltaBytes(delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.prefixDelta.Add(delta)
}

// onSnapshotWork accounts one CanonicalSnapshot call: how many replicas
// were re-serialized and how many payload bytes came from the
// per-replica caches instead.
func (t *runTelemetry) onSnapshotWork(dirty int, reused int64) {
	if t == nil {
		return
	}
	t.dirtyReplicas.Add(int64(dirty))
	t.bytesReused.Add(reused)
}

// setWorker publishes what worker w is executing (0 = idle).
func (t *runTelemetry) setWorker(w, index int) {
	if t == nil {
		return
	}
	t.reg.Progress().SetWorker(w, index)
}

// observeSpan records a span measured after the fact.
func (t *runTelemetry) observeSpan(stage telemetry.Stage, index, worker int, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.reg.ObserveSpan(stage, index, worker, start, dur)
}

// fsyncObserver adapts the checkpoint journal's flush callback into a
// journal-fsync span plus batch counters.
func (t *runTelemetry) fsyncObserver() checkpoint.FsyncObserver {
	if t == nil {
		return nil
	}
	return func(appends int, took time.Duration) {
		t.fsyncBatches.Inc()
		t.fsyncKeys.Add(int64(appends))
		t.reg.ObserveSpan(telemetry.StageJournalFsync, 0, telemetry.CoordinatorWorker,
			time.Now().Add(-took), took)
	}
}

// instrument attaches the fault armed/fired counters to an injector.
func (t *runTelemetry) instrument(inj *fault.Injector) {
	if t == nil || inj == nil {
		return
	}
	inj.SetCounters(t.reg.Counter("fault.armed"), t.reg.Counter("fault.fired"))
}
