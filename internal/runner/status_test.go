package runner

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/telemetry"
)

// TestStatusServerUnderPooledRun scrapes the per-process status server
// fed by a Workers>1 run: the JSON /metrics default, the negotiated
// Prometheus exposition, and /progress must all agree with the run's
// result.
func TestStatusServerUnderPooledRun(t *testing.T) {
	s := townReportScenario(t)
	reg := telemetry.New()
	srv, err := telemetry.NewStatusServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, err := Run(s, Config{
		Mode:             ModeDFS,
		Workers:          4,
		MaxInterleavings: 200,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	get := func(path, accept string) string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL()+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(get("/metrics", "")), &snap); err != nil {
		t.Fatalf("JSON /metrics: %v", err)
	}
	if got := snap.Counters["runner.explored"]; got != int64(res.Explored) {
		t.Fatalf("scraped explored = %d, run explored %d", got, res.Explored)
	}

	prom := get("/metrics", "text/plain")
	if err := telemetry.ValidatePrometheus(strings.NewReader(prom)); err != nil {
		t.Fatalf("pooled /metrics fails Prometheus validation: %v", err)
	}
	if !strings.Contains(prom, "erpi_runner_explored_total") {
		t.Fatalf("exposition missing explored counter:\n%s", prom)
	}

	var prog telemetry.ProgressSnapshot
	if err := json.Unmarshal([]byte(get("/progress", "")), &prog); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if prog.Explored != int64(res.Explored) {
		t.Fatalf("progress explored = %d, want %d", prog.Explored, res.Explored)
	}
}
