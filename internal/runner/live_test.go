package runner

import (
	"reflect"
	"sort"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/proxy"
)

// TestLiveMatchesSequential replays every pruned interleaving of the
// motivating example both sequentially (ExecuteOnce) and live (one
// goroutine per replica, LocalGate ordering) and requires identical
// outcomes — the property that makes the fast sequential executor a valid
// stand-in for the deployment-shaped path.
func TestLiveMatchesSequential(t *testing.T) {
	s := townReportScenario(t)
	ex, err := NewPrunedExplorer(s)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		il, ok := ex.Next()
		if !ok {
			break
		}
		count++
		seq, err := ExecuteOnce(s, il)
		if err != nil {
			t.Fatal(err)
		}
		gate := proxy.NewLocalGate()
		live, err := ExecuteLive(s, il, func(event.ReplicaID) proxy.TurnGate { return gate })
		if err != nil {
			t.Fatalf("interleaving %s: %v", il.Key(), err)
		}
		sortedSeq := append([]event.ID(nil), seq.FailedOps...)
		sort.Slice(sortedSeq, func(i, j int) bool { return sortedSeq[i] < sortedSeq[j] })
		if !reflect.DeepEqual(live.Fingerprints, seq.Fingerprints) {
			t.Fatalf("interleaving %s: fingerprints diverge: %v vs %v", il.Key(), live.Fingerprints, seq.Fingerprints)
		}
		if !reflect.DeepEqual(live.Observations, seq.Observations) {
			t.Fatalf("interleaving %s: observations diverge: %v vs %v", il.Key(), live.Observations, seq.Observations)
		}
		if !reflect.DeepEqual(live.FailedOps, sortedSeq) && !(len(live.FailedOps) == 0 && len(sortedSeq) == 0) {
			t.Fatalf("interleaving %s: failed ops diverge: %v vs %v", il.Key(), live.FailedOps, sortedSeq)
		}
	}
	if count != 19 {
		t.Fatalf("explored %d interleavings, want 19", count)
	}
}

// TestLiveOverDistributedLock replays one interleaving with per-replica
// DistGates coordinating through a real TCP lock server — the full §4.3
// pipeline: proxy interception + distributed mutex + shared sequencer.
func TestLiveOverDistributedLock(t *testing.T) {
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	s := townReportScenario(t)
	// The bug-triggering order: transmit before the fix syncs.
	il := interleave.Interleaving{0, 1, 2, 3, 6, 4, 5}

	coord, err := lockserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := lockserver.NewSequencer(coord, "live:turn", 1).Reset(); err != nil {
		t.Fatal(err)
	}

	var clients []*lockserver.Client
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	live, err := ExecuteLive(s, il, func(rep event.ReplicaID) proxy.TurnGate {
		c, err := lockserver.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		return proxy.NewDistGate(c, "live", string(rep))
	})
	if err != nil {
		t.Fatal(err)
	}

	seq, err := ExecuteOnce(s, il)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Fingerprints, seq.Fingerprints) {
		t.Fatalf("distributed live replay diverged: %v vs %v", live.Fingerprints, seq.Fingerprints)
	}
	// This order ships both issues to the municipality — the §2.3 bug.
	if got := live.Fingerprints["M"]; got != "otb,ph" {
		t.Fatalf("municipality state = %q, want the buggy otb,ph", got)
	}
}
