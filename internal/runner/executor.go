package runner

import (
	"context"
	"errors"
	"fmt"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/telemetry"
)

// executor applies one interleaving's events to the cluster.
//
// Event semantics during replay:
//   - Update / Observe: apply the RDL op locally; the returned value is
//     recorded as an observation.
//   - SyncSend: capture the sender's sync payload at this instant; the
//     payload travels with the event ID.
//   - SyncExec: apply the payload captured by the paired SyncSend — or,
//     for a standalone sync event (recorded without an explicit send),
//     capture the sender's payload at execution time, modelling a
//     synchronization whose content depends on when it runs.
//
// When a fault injector is attached, it is consulted before every event:
// crash actions roll the target replica back to its durable checkpoint,
// events at (or syncs from) a crashed replica fail with
// fault.ErrReplicaDown, syncs across a partitioned link are dropped and
// recorded in Outcome.DroppedSyncs, and sync payloads may be truncated in
// flight.
type executor struct {
	log     *event.Log
	cluster *replica.Cluster
	// inj, when non-nil, injects scheduled faults into execution.
	inj *fault.Injector
	// sendFor maps each SyncExec ID to its paired SyncSend ID.
	sendFor map[event.ID]event.ID
	built   bool
	// tel (nil when telemetry is off) records stage spans; worker is the
	// pool worker id this executor belongs to (0 for the sequential engine).
	tel    *runTelemetry
	worker int
	// cache, when non-nil, is this executor's private prefix-snapshot trie
	// (DESIGN.md §4.9): execute restores the deepest cached prefix of each
	// interleaving and replays only the suffix. Never shared across
	// executors.
	cache *prefixCache
	// prevIL is the last interleaving this executor ran with the cache
	// engaged; its common prefix with the next interleaving selects the
	// divergence-point snapshot depth.
	prevIL interleave.Interleaving
	// pivot is the explorer-announced depth where the next interleaving
	// will diverge from the current one (-1 when unknown); the cache
	// snapshots there so the next lookup hits its maximal shared prefix.
	pivot int
	// sub, when non-nil, is the run's shared state-subsumption table
	// (DESIGN.md §4.12): at snapshot depths the executor hashes the
	// execution context and abandons the interleaving with ErrSubsumed
	// when the frontier was already visited via a lexicographically
	// smaller prefix. Shared across every worker of the run.
	sub *subsumeTable
	// subEvery is the subsumption check stride in events when no prefix
	// cache supplies snapshot depths.
	subEvery int
	// contrib memoizes each event ID's additive multiset contribution;
	// rolling is the running digest of the executed prefix, updated O(1)
	// per event in place of the per-depth sort-and-rehash. rolling always
	// equals multisetHash(il[:pos]) at the top of the position loop — the
	// invariant the canon property suite pins.
	contrib map[event.ID]msetDigest
	rolling msetDigest
	// step, when non-nil, observes the cluster after every delivered
	// position (forensic re-execution only; nil on every engine hot path).
	step func(pos int) error
}

func (x *executor) buildPairs() {
	x.sendFor = make(map[event.ID]event.ID)
	for _, pair := range x.log.SyncPairs() {
		x.sendFor[pair[1]] = pair[0]
	}
	x.contrib = make(map[event.ID]msetDigest, x.log.Len())
	for _, id := range x.log.IDs() {
		x.contrib[id] = msetContribution(id)
	}
	x.built = true
}

func (x *executor) execute(ctx context.Context, il interleave.Interleaving, index int) (*Outcome, error) {
	if !x.built {
		x.buildPairs()
	}
	armed := false
	if x.inj != nil {
		injSpan := x.tel.span(telemetry.StageFaultInject, index, x.worker)
		x.inj.Begin(index)
		injSpan.End()
		armed = x.inj.AnyArmed()
		defer x.inj.Finish()
	}
	outcome := &Outcome{
		Index:        index,
		Interleaving: il,
		Observations: make(map[event.ID]string),
		FaultArmed:   armed,
	}
	pending := make(map[event.ID][]byte)
	// Prepare the cluster: restore the deepest cached prefix and replay
	// only the suffix, or reset to the genesis checkpoint and replay from
	// event 0. Fault-carrying interleavings always take the clean genesis
	// path — a crash or truncation makes cached prefix states wrong — and
	// neither read nor populate the cache.
	start, divergence := 0, 0
	x.rolling = msetDigest{}
	useCache := x.cache != nil && !armed
	// Fault-armed interleavings bypass subsumption both ways, like the
	// cache: a crash or truncation makes the hashed context wrong, and a
	// fault-free witness would not reproduce the faulted outcome.
	useSub := x.sub != nil && !armed
	if useCache {
		divergence = commonPrefixLen(x.prevIL, il)
		span := x.tel.span(telemetry.StageRestorePrefix, index, x.worker)
		var err error
		if snap, depth := x.cache.lookup(il); snap != nil {
			err = x.restorePrefix(snap, pending, outcome)
			start = depth
			x.rolling = snap.mset
			x.tel.onPrefixHit(depth)
		} else {
			err = x.cluster.Reset()
			x.tel.onPrefixMiss()
		}
		span.End()
		if err != nil {
			return nil, err
		}
	} else {
		span := x.tel.span(telemetry.StageCheckpointReset, index, x.worker)
		err := x.cluster.Reset()
		span.End()
		if err != nil {
			return nil, err
		}
	}
	for pos := start; pos < len(il); pos++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if x.step != nil && pos > start {
			// Observe the state the previous position left behind (the
			// loop's continue paths — failed ops, dropped syncs — land here
			// too, so every position gets exactly one observation).
			if err := x.step(pos - 1); err != nil {
				return nil, err
			}
		}
		if pos > start {
			// Fold the event the previous iteration delivered (or skipped
			// via a continue path — its ID is part of the prefix either
			// way) into the rolling multiset digest.
			x.rolling.add(x.contrib[il[pos-1]])
			wantCache := useCache && x.cache.wantSnapshot(pos, divergence, x.pivot)
			wantSub := useSub && (wantCache || (!useCache && pos%x.subEvery == 0))
			if wantCache || wantSub {
				skip, err := x.contextPoint(il, pos, pending, outcome, wantCache, wantSub)
				if err != nil {
					return nil, err
				}
				if skip {
					// Frontier already visited via a lexicographically
					// smaller prefix: the rest of this interleaving can only
					// reproduce an outcome an executed interleaving already
					// has (DESIGN.md §4.12). Account the events actually
					// replayed and abandon.
					x.tel.onEvents(pos-start, start)
					x.tel.onSubsumed()
					if useCache {
						x.prevIL = il
					}
					return nil, ErrSubsumed
				}
			}
		}
		id := il[pos]
		ev := x.log.Event(id)
		if x.inj != nil {
			for _, a := range x.inj.At(pos) {
				if a.Kind == fault.ActionCrash {
					if err := x.cluster.ResetNode(a.Replica); err != nil {
						return nil, fmt.Errorf("fault: crash-restore %s: %w", a.Replica, err)
					}
				}
			}
			if x.inj.ReplicaDown(ev.Replica) {
				return nil, fmt.Errorf("event %s: %w", ev, fault.ErrReplicaDown)
			}
		}
		node, err := x.cluster.Node(ev.Replica)
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case event.Update, event.Observe:
			result, err := node.State.Apply(replica.Op{Name: ev.Op, Args: ev.Args})
			if err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					outcome.FailedOps = append(outcome.FailedOps, id)
					continue
				}
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
			if result != "" {
				outcome.Observations[id] = result
			}
		case event.SyncSend:
			payload, err := node.State.SyncPayload()
			if err != nil {
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
			if x.inj != nil {
				payload = x.inj.Payload(pos, payload)
			}
			pending[id] = payload
		case event.SyncExec:
			if x.inj != nil {
				if x.inj.ReplicaDown(ev.From) {
					return nil, fmt.Errorf("event %s: sender: %w", ev, fault.ErrReplicaDown)
				}
				if x.inj.Partitioned(ev.From, ev.Replica) {
					outcome.DroppedSyncs = append(outcome.DroppedSyncs, id)
					continue
				}
			}
			payload, ok := x.payloadFor(id, pending)
			if !ok {
				// Standalone sync: capture the sender's state now.
				sender, err := x.cluster.Node(ev.From)
				if err != nil {
					return nil, err
				}
				payload, err = sender.State.SyncPayload()
				if err != nil {
					return nil, fmt.Errorf("event %s: %w", ev, err)
				}
			}
			if x.inj != nil {
				payload = x.inj.Payload(pos, payload)
			}
			if err := node.State.ApplySync(payload); err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					outcome.FailedOps = append(outcome.FailedOps, id)
					continue
				}
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
		default:
			return nil, fmt.Errorf("event %s: unsupported kind", ev)
		}
	}
	if x.step != nil && len(il) > start {
		if err := x.step(len(il) - 1); err != nil {
			return nil, err
		}
	}
	x.tel.onEvents(len(il)-start, start)
	outcome.Fingerprints = x.cluster.Fingerprints()
	outcome.Converged = x.cluster.Converged()
	if useCache {
		x.prevIL = il
	}
	return outcome, nil
}

// restorePrefix rewinds the execution context to a cached prefix: replica
// states, captured sync payloads, and the outcome fields accumulated by
// the prefix's events. Payload slices are shared with the cache — they
// are immutable once captured.
func (x *executor) restorePrefix(snap *prefixSnapshot, pending map[event.ID][]byte, outcome *Outcome) error {
	if err := x.cluster.RestoreSnapshot(snap.states); err != nil {
		return err
	}
	for id, p := range snap.pending {
		pending[id] = p
	}
	for id, v := range snap.obs {
		outcome.Observations[id] = v
	}
	outcome.FailedOps = append(outcome.FailedOps, snap.failed...)
	return nil
}

// contextPoint handles one snapshot depth: capture the execution context
// after il[:depth] into the cache (reusing an existing capture of the
// same literal prefix), and/or run the subsumption check against the
// frontier it represents. skip=true means the interleaving is subsumed.
func (x *executor) contextPoint(il interleave.Interleaving, depth int, pending map[event.ID][]byte, outcome *Outcome, wantCache, wantSub bool) (skip bool, err error) {
	var snap *prefixSnapshot
	if wantCache {
		snap = x.cache.cached(il, depth)
	}
	if snap == nil {
		states, err := x.cluster.CanonicalSnapshot()
		if err != nil {
			return false, err
		}
		x.tel.onSnapshotWork(states.Dirty, states.Reused)
		snap = newPrefixSnapshot(states, pending, outcome)
		snap.mset = x.rolling
		if x.sub != nil {
			// Hash at capture time (even when this depth only feeds the
			// cache): any later re-walk of the same literal prefix reuses
			// the stored hash instead of re-serializing the cluster.
			snap.ctxHash = contextHash(states, pending, outcome.Observations, outcome.FailedOps)
		}
		if wantCache {
			delta, stateDelta, evicted := x.cache.insert(il, depth, snap)
			x.tel.onSnapshot(delta, evicted)
			x.tel.onPrefixDeltaBytes(stateDelta)
		}
	}
	if !wantSub {
		return false, nil
	}
	// x.rolling is multisetHash(il[:depth]) by the loop invariant — the
	// O(1)-maintained replacement for the per-depth sort-and-rehash.
	skip, delta := x.sub.visit(snap.ctxHash, x.rolling, il[:depth])
	x.tel.onSubsumeBytes(delta)
	return skip, nil
}

// newPrefixSnapshot packages the execution context after a prefix —
// canonical cluster snapshot plus the executor-side bookkeeping the
// remaining suffix can observe — with its byte-size accounting.
func newPrefixSnapshot(states *replica.ClusterSnapshot, pending map[event.ID][]byte, outcome *Outcome) *prefixSnapshot {
	snap := &prefixSnapshot{
		states:  states,
		pending: make(map[event.ID][]byte, len(pending)),
		obs:     make(map[event.ID]string, len(outcome.Observations)),
		failed:  append([]event.ID(nil), outcome.FailedOps...),
	}
	size := states.Bytes
	for id, p := range pending {
		snap.pending[id] = p
		size += int64(len(p)) + 8
	}
	for id, v := range outcome.Observations {
		snap.obs[id] = v
		size += int64(len(v)) + 8
	}
	size += int64(len(snap.failed)) * 8
	snap.size = size
	return snap
}

func (x *executor) payloadFor(execID event.ID, pending map[event.ID][]byte) ([]byte, bool) {
	sendID, ok := x.sendFor[execID]
	if !ok {
		return nil, false
	}
	payload, ok := pending[sendID]
	return payload, ok
}
