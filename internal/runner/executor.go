package runner

import (
	"errors"
	"fmt"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/replica"
)

// executor applies one interleaving's events to the cluster.
//
// Event semantics during replay:
//   - Update / Observe: apply the RDL op locally; the returned value is
//     recorded as an observation.
//   - SyncSend: capture the sender's sync payload at this instant; the
//     payload travels with the event ID.
//   - SyncExec: apply the payload captured by the paired SyncSend — or,
//     for a standalone sync event (recorded without an explicit send),
//     capture the sender's payload at execution time, modelling a
//     synchronization whose content depends on when it runs.
type executor struct {
	log     *event.Log
	cluster *replica.Cluster
	// sendFor maps each SyncExec ID to its paired SyncSend ID.
	sendFor map[event.ID]event.ID
	built   bool
}

func (x *executor) buildPairs() {
	x.sendFor = make(map[event.ID]event.ID)
	for _, pair := range x.log.SyncPairs() {
		x.sendFor[pair[1]] = pair[0]
	}
	x.built = true
}

func (x *executor) execute(il interleave.Interleaving, index int) (*Outcome, error) {
	if !x.built {
		x.buildPairs()
	}
	outcome := &Outcome{
		Index:        index,
		Interleaving: il,
		Observations: make(map[event.ID]string),
	}
	pending := make(map[event.ID][]byte)
	for pos, id := range il {
		ev := x.log.Event(id)
		node, err := x.cluster.Node(ev.Replica)
		if err != nil {
			return nil, err
		}
		_ = pos
		switch ev.Kind {
		case event.Update, event.Observe:
			result, err := node.State.Apply(replica.Op{Name: ev.Op, Args: ev.Args})
			if err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					outcome.FailedOps = append(outcome.FailedOps, id)
					continue
				}
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
			if result != "" {
				outcome.Observations[id] = result
			}
		case event.SyncSend:
			payload, err := node.State.SyncPayload()
			if err != nil {
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
			pending[id] = payload
		case event.SyncExec:
			payload, ok := x.payloadFor(id, pending)
			if !ok {
				// Standalone sync: capture the sender's state now.
				sender, err := x.cluster.Node(ev.From)
				if err != nil {
					return nil, err
				}
				payload, err = sender.State.SyncPayload()
				if err != nil {
					return nil, fmt.Errorf("event %s: %w", ev, err)
				}
			}
			if err := node.State.ApplySync(payload); err != nil {
				if errors.Is(err, replica.ErrFailedOp) {
					outcome.FailedOps = append(outcome.FailedOps, id)
					continue
				}
				return nil, fmt.Errorf("event %s: %w", ev, err)
			}
		default:
			return nil, fmt.Errorf("event %s: unsupported kind", ev)
		}
	}
	outcome.Fingerprints = x.cluster.Fingerprints()
	outcome.Converged = x.cluster.Converged()
	return outcome, nil
}

func (x *executor) payloadFor(execID event.ID, pending map[event.ID][]byte) ([]byte, bool) {
	sendID, ok := x.sendFor[execID]
	if !ok {
		return nil, false
	}
	payload, ok := pending[sendID]
	return payload, ok
}
