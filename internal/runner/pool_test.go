package runner

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
)

// TestParallelDeterminismPin is the acceptance pin for the parallel
// engine: the same scenario + seed at Workers: 1 and Workers: 8 must
// yield identical Explored counts, violation sets, FirstViolation, and
// byte-identical outcome streams.
func TestParallelDeterminismPin(t *testing.T) {
	run := func(workers int) ([]byte, *Result) {
		s := townReportScenario(t)
		return collectOutcomes(t, s, Config{
			Mode:       ModeERPi,
			Workers:    workers,
			Assertions: []Assertion{municipalityInvariant{}},
		})
	}
	seq, seqRes := run(1)
	par, parRes := run(8)
	if string(seq) != string(par) {
		t.Fatal("Workers: 8 changed the outcome stream")
	}
	assertResultsMatch(t, seqRes, parRes)
	if len(seqRes.Violations) == 0 {
		t.Fatal("pin is vacuous: the scenario must produce violations")
	}
}

// TestParallelDeterminismUnderFaults extends the pin to a fault schedule
// mixing a deterministic crash, an interleaving-selected crash (which
// quarantines), and a probabilistically armed partition: arming is keyed
// by exploration index, so every worker count reproduces the same chaos.
func TestParallelDeterminismUnderFaults(t *testing.T) {
	sched := &fault.Schedule{Seed: 11, Faults: []fault.Fault{
		// Crash A at position 3 with immediate restart: volatile loss only.
		{Kind: fault.CrashReplica, Replica: "A", At: 3},
		// Interleaving 4 only: B stays down, so index 4 quarantines.
		{Kind: fault.CrashReplica, Replica: "B", Interleaving: 4, At: 2, Duration: 10},
		// Coin-flip partition of the municipality link per interleaving.
		{Kind: fault.Partition, A: "A", B: "M", At: 0, Duration: 10, Prob: 0.5},
	}}
	run := func(workers int) ([]byte, *Result) {
		s := townReportScenario(t)
		s.Finalize = AntiEntropy(2)
		return collectOutcomes(t, s, Config{
			Mode:         ModeERPi,
			Workers:      workers,
			Seed:         7,
			Faults:       sched,
			Assertions:   []Assertion{municipalityInvariant{}},
			RetryBackoff: 100 * time.Microsecond,
		})
	}
	seq, seqRes := run(1)
	par, parRes := run(8)
	if string(seq) != string(par) {
		t.Fatal("Workers: 8 changed the outcome stream under faults")
	}
	assertResultsMatch(t, seqRes, parRes)
	if len(seqRes.Quarantined) != 1 || seqRes.Quarantined[0].Index != 4 {
		t.Fatalf("pin is vacuous: want exactly interleaving 4 quarantined, got %v", seqRes.Quarantined)
	}
	// The probabilistic fault must actually vary across interleavings,
	// otherwise the arming-determinism half of the pin proves nothing.
	s := townReportScenario(t)
	partitioned := 0
	res, err := Run(s, Config{
		Mode:    ModeERPi,
		Workers: 1,
		Faults: &fault.Schedule{Seed: 11, Faults: []fault.Fault{
			{Kind: fault.Partition, A: "A", B: "M", At: 0, Duration: 10, Prob: 0.5},
		}},
		OnOutcome: func(o *Outcome) {
			if len(o.DroppedSyncs) > 0 {
				partitioned++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if partitioned == 0 || partitioned == res.Explored {
		t.Fatalf("Prob=0.5 partition fired in %d/%d interleavings — not probabilistic",
			partitioned, res.Explored)
	}
}

// TestParallelStopOnViolation: with StopOnViolation, the pool must report
// the same first violation and truncate Explored to it, discarding any
// speculative work past that index.
func TestParallelStopOnViolation(t *testing.T) {
	run := func(workers int) *Result {
		s := townReportScenario(t)
		res, err := Run(s, Config{
			Mode:            ModeERPi,
			Workers:         workers,
			Assertions:      []Assertion{municipalityInvariant{}},
			StopOnViolation: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	assertResultsMatch(t, seq, par)
	if len(par.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly 1 with StopOnViolation", len(par.Violations))
	}
	if par.Explored != par.FirstViolation {
		t.Fatalf("exploration must stop at the violation: %d vs %d", par.Explored, par.FirstViolation)
	}
	if par.Exhausted {
		t.Fatal("a stopped run must not report exhaustion")
	}
}

// TestParallelRandMode: ModeRand pulls from one seeded explorer on the
// coordinator, so the explored orders (and even the shuffle count, absent
// early stopping) match the sequential engine exactly.
func TestParallelRandMode(t *testing.T) {
	run := func(workers int) ([]byte, *Result) {
		s := townReportScenario(t)
		return collectOutcomes(t, s, Config{
			Mode:             ModeRand,
			Workers:          workers,
			Seed:             3,
			MaxInterleavings: 50,
		})
	}
	seq, seqRes := run(1)
	par, parRes := run(8)
	if string(seq) != string(par) {
		t.Fatal("Workers: 8 changed ModeRand's outcome stream")
	}
	assertResultsMatch(t, seqRes, parRes)
	if seqRes.RandShuffles != parRes.RandShuffles {
		t.Fatalf("shuffles diverged: %d vs %d", seqRes.RandShuffles, parRes.RandShuffles)
	}
}

// TestParallelRepruningParity: the ConstraintPoll quiesce barrier must
// poll at the same boundaries as the sequential engine, yielding the same
// shrunken exploration.
func TestParallelRepruningParity(t *testing.T) {
	run := func(workers int) *Result {
		s := townReportScenario(t)
		s.Pruning.TestedReplicas = nil
		delivered := false
		res, err := Run(s, Config{
			Mode:      ModeERPi,
			Workers:   workers,
			PollEvery: 5,
			ConstraintPoll: func() (pcfg prune.Config, found bool, err error) {
				if delivered {
					return pcfg, false, nil
				}
				delivered = true
				pcfg.TestedReplicas = append(pcfg.TestedReplicas, "M")
				return pcfg, true, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	assertResultsMatch(t, seq, par)
	if !par.Exhausted || par.Explored >= 24 {
		t.Fatalf("re-pruning parity is vacuous: explored %d (exhausted=%v)", par.Explored, par.Exhausted)
	}
}

// TestParallelCancellation: a context cancelled from the outcome hook
// stops the pool at exactly the results processed so far, like the
// sequential engine's loop-top check.
func TestParallelCancellation(t *testing.T) {
	s := townReportScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	res, err := RunContext(ctx, s, Config{
		Mode:    ModeDFS,
		Workers: 8,
		OnOutcome: func(o *Outcome) {
			seen++
			if seen == 5 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || !errors.Is(res.InterruptErr, context.Canceled) {
		t.Fatalf("interrupted=%v err=%v", res.Interrupted, res.InterruptErr)
	}
	if res.Explored != 5 {
		t.Fatalf("explored %d, want exactly the 5 outcomes processed before the cancel", res.Explored)
	}
}

// TestParallelWorkerSetupFailure: a cluster factory that cannot build a
// worker's private cluster fails the whole run, mirroring the sequential
// engine's setup error.
func TestParallelWorkerSetupFailure(t *testing.T) {
	s := townReportScenario(t)
	setupErr := errors.New("no replicas available")
	s.NewCluster = func() (*replica.Cluster, error) { return nil, setupErr }
	_, err := Run(s, Config{Mode: ModeERPi, Workers: 4})
	if err == nil || !errors.Is(err, setupErr) {
		t.Fatalf("worker setup failure must fail the run, got %v", err)
	}
}

// assertResultsMatch compares every deterministic Result field between a
// sequential and a parallel run of the same exploration.
func assertResultsMatch(t *testing.T, seq, par *Result) {
	t.Helper()
	if seq.Explored != par.Explored {
		t.Fatalf("Explored: %d vs %d", seq.Explored, par.Explored)
	}
	if seq.FirstViolation != par.FirstViolation {
		t.Fatalf("FirstViolation: %d vs %d", seq.FirstViolation, par.FirstViolation)
	}
	if seq.Exhausted != par.Exhausted || seq.Crashed != par.Crashed {
		t.Fatalf("flags: exhausted %v/%v crashed %v/%v",
			seq.Exhausted, par.Exhausted, seq.Crashed, par.Crashed)
	}
	if !reflect.DeepEqual(violationKeys(seq), violationKeys(par)) {
		t.Fatalf("violation sets differ:\nseq: %v\npar: %v", violationKeys(seq), violationKeys(par))
	}
	if !reflect.DeepEqual(quarantineKeys(seq), quarantineKeys(par)) {
		t.Fatalf("quarantine sets differ:\nseq: %v\npar: %v", quarantineKeys(seq), quarantineKeys(par))
	}
}

func violationKeys(r *Result) []string {
	out := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		out = append(out, v.String())
	}
	return out
}

func quarantineKeys(r *Result) []string {
	out := make([]string, 0, len(r.Quarantined))
	for _, q := range r.Quarantined {
		out = append(out, q.String())
	}
	return out
}
