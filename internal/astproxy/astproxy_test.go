package astproxy

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const sampleSource = `package app

func workload() {
	replicaState.Add("otb")
	n := replicaState.Len()
	_ = n
	other.Ignore()
	if replicaState.Contains("x") {
		replicaState.Remove("x")
	}
}
`

func TestRewriteBracketsStatements(t *testing.T) {
	out, rep, err := RewriteSource(sampleSource, Config{Receivers: []string{"replicaState"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`erpiBefore("replicaState.Add")`,
		`erpiAfter("replicaState.Add")`,
		`erpiBefore("replicaState.Len")`,
		`erpiBefore("replicaState.Remove")`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `erpiBefore("other.Ignore")`) {
		t.Error("non-target receiver must not be wrapped")
	}
	if len(rep.Wrapped) != 3 {
		t.Errorf("Wrapped = %v, want 3 sites", rep.Wrapped)
	}
	// The call inside the if-condition cannot be bracketed: reported as
	// skipped.
	if len(rep.Skipped) != 1 || rep.Skipped[0] != "replicaState.Contains" {
		t.Errorf("Skipped = %v", rep.Skipped)
	}
}

func TestRewriteOutputParses(t *testing.T) {
	out, _, err := RewriteSource(sampleSource, Config{
		Receivers:   []string{"replicaState"},
		EmitHelpers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "out.go", out, 0); err != nil {
		t.Fatalf("rewritten source does not parse: %v\n%s", err, out)
	}
	for _, want := range []string{"erpiBefore = func(op string)", "ErpiSetHooks"} {
		if !strings.Contains(out, want) {
			t.Errorf("helpers missing %q", want)
		}
	}
}

func TestRewritePackageQualifier(t *testing.T) {
	src := `package app

func w() {
	crdt.Reset()
	x, ok := crdt.Lookup("k")
	_, _ = x, ok
}
`
	out, rep, err := RewriteSource(src, Config{Packages: []string{"crdt"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `erpiBefore("crdt.Reset")`) {
		t.Errorf("package call not wrapped:\n%s", out)
	}
	if !strings.Contains(out, `erpiBefore("crdt.Lookup")`) {
		t.Errorf("two-value assignment not wrapped:\n%s", out)
	}
	if len(rep.Wrapped) != 2 || len(rep.Skipped) != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestRewritePreservesOrder(t *testing.T) {
	src := `package app

func w() {
	s.A()
	s.B()
}
`
	out, rep, err := RewriteSource(src, Config{Receivers: []string{"s"}})
	if err != nil {
		t.Fatal(err)
	}
	ia := strings.Index(out, `erpiBefore("s.A")`)
	ib := strings.Index(out, `erpiBefore("s.B")`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("bracketing order broken:\n%s", out)
	}
	if got := rep.OpsOf(); len(got) != 2 || got[0] != "s.A" || got[1] != "s.B" {
		t.Fatalf("OpsOf = %v", got)
	}
}

func TestRewriteNoMatchesNoHelpers(t *testing.T) {
	src := "package app\n\nfunc w() { println() }\n"
	out, rep, err := RewriteSource(src, Config{Receivers: []string{"nothing"}, EmitHelpers: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "erpiBefore") {
		t.Error("helpers must not be emitted without matches")
	}
	if len(rep.Wrapped) != 0 {
		t.Errorf("Wrapped = %v", rep.Wrapped)
	}
}

func TestRewriteParseError(t *testing.T) {
	if _, _, err := RewriteSource("not go source", Config{}); err == nil {
		t.Fatal("malformed source must fail")
	}
}

func TestReportSummary(t *testing.T) {
	rep := Report{Wrapped: []string{"s.A", "s.A", "s.B"}, Skipped: []string{"s.C"}}
	sum := rep.Summary()
	for _, want := range []string{"wrapped 3", "s.A, s.B", "skipped 1"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary = %q missing %q", sum, want)
		}
	}
}

// TestRewrittenSemantics executes the bracketed form by evaluating the
// transformation at the AST level: the helper hooks fire around the call
// in the right order. We simulate by rewriting a snippet and checking the
// statement sequence within the function body.
func TestRewrittenStatementSequence(t *testing.T) {
	src := `package app

func w() {
	pre()
	s.Op()
	post()
}
`
	out, _, err := RewriteSource(src, Config{Receivers: []string{"s"}})
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"pre()", `erpiBefore("s.Op")`, "s.Op()", `erpiAfter("s.Op")`, "post()"}
	last := -1
	for _, frag := range wantOrder {
		idx := strings.Index(out, frag)
		if idx < 0 {
			t.Fatalf("missing %q in:\n%s", frag, out)
		}
		if idx < last {
			t.Fatalf("fragment %q out of order in:\n%s", frag, out)
		}
		last = idx
	}
}
