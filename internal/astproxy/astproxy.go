// Package astproxy rewrites Go source so that RDL call sites route through
// ER-π's interception hooks — the Go flavour of the paper's proxy
// generation (§5.1.1: "we use go/ast, which interfaces with the Go compiler
// to expose an Abstract-Syntax Tree; by modifying AST, we introduce the
// needed proxy generation functionality").
//
// The rewriter brackets statements that call configured receivers or
// packages with interception hooks:
//
//	replicaState.Add("x")      →  erpiBefore("replicaState.Add")
//	                              replicaState.Add("x")
//	                              erpiAfter("replicaState.Add")
//	v := replicaState.Get(k)   →  erpiBefore("replicaState.Get")
//	                              v := replicaState.Get(k)
//	                              erpiAfter("replicaState.Get")
//
// The bracketing form is deliberately type-agnostic: it needs no knowledge
// of the callee's result types, so it works on any RDL without type
// checking — mirroring how the paper's proxies wrap library functions
// without modifying their source. Helper declarations (hook variables and
// a setter) are emitted into one file per package; the default hooks are
// no-ops, so rewritten code behaves identically outside ER-π sessions.
package astproxy

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// Config selects which calls to proxy.
type Config struct {
	// Receivers are identifier names whose method calls are proxied
	// (e.g. "replicaState").
	Receivers []string
	// Packages are package qualifiers whose function calls are proxied
	// (e.g. "crdt").
	Packages []string
	// EmitHelpers controls whether the hook declarations are appended.
	// Enable it for exactly one file per package.
	EmitHelpers bool
}

// Report summarizes one rewrite.
type Report struct {
	// Wrapped lists the operation names of proxied call sites in order.
	Wrapped []string
	// Skipped lists matching calls in positions the rewriter does not
	// bracket (expressions nested inside other statements).
	Skipped []string
}

// RewriteFile parses src, brackets matching call statements with hooks,
// and returns the formatted result.
func RewriteFile(filename string, src []byte, cfg Config) ([]byte, Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, Report{}, fmt.Errorf("astproxy: parse %s: %w", filename, err)
	}
	r := &rewriter{cfg: cfg}
	ast.Inspect(file, func(n ast.Node) bool {
		if block, ok := n.(*ast.BlockStmt); ok {
			r.rewriteBlock(block)
		}
		return true
	})
	r.countNested(file)
	if cfg.EmitHelpers && len(r.report.Wrapped) > 0 {
		if err := appendHelpers(fset, file); err != nil {
			return nil, Report{}, err
		}
	}
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, file); err != nil {
		return nil, Report{}, fmt.Errorf("astproxy: format: %w", err)
	}
	return buf.Bytes(), r.report, nil
}

// RewriteSource is a convenience over RewriteFile for string input.
func RewriteSource(src string, cfg Config) (string, Report, error) {
	out, rep, err := RewriteFile("src.go", []byte(src), cfg)
	if err != nil {
		return "", rep, err
	}
	return string(out), rep, nil
}

type rewriter struct {
	cfg     Config
	report  Report
	bracket map[*ast.CallExpr]bool
}

// target reports whether the call expression is a proxied RDL call and
// returns its operation name.
func (r *rewriter) target(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	name := recv.Name + "." + sel.Sel.Name
	for _, want := range r.cfg.Receivers {
		if recv.Name == want {
			return name, true
		}
	}
	for _, want := range r.cfg.Packages {
		if recv.Name == want {
			return name, true
		}
	}
	return "", false
}

func (r *rewriter) rewriteBlock(block *ast.BlockStmt) {
	out := make([]ast.Stmt, 0, len(block.List))
	for _, stmt := range block.List {
		op, call, ok := r.statementCall(stmt)
		if !ok {
			out = append(out, stmt)
			continue
		}
		if r.bracket == nil {
			r.bracket = make(map[*ast.CallExpr]bool)
		}
		r.bracket[call] = true
		out = append(out,
			hookStmt("erpiBefore", op),
			stmt,
			hookStmt("erpiAfter", op),
		)
		r.report.Wrapped = append(r.report.Wrapped, op)
	}
	block.List = out
}

// statementCall recognizes a bracketable statement: a bare call or an
// assignment whose single RHS is a matching call.
func (r *rewriter) statementCall(stmt ast.Stmt) (string, *ast.CallExpr, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := r.target(call); ok {
				return op, call, true
			}
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if op, ok := r.target(call); ok {
					return op, call, true
				}
			}
		}
	}
	return "", nil, false
}

// countNested records matching calls the rewriter could not bracket (e.g.
// inside if-conditions or composite expressions), so users see the
// limitation explicitly.
func (r *rewriter) countNested(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := r.target(call)
		if !ok {
			return true
		}
		if !r.bracket[call] {
			r.report.Skipped = append(r.report.Skipped, op)
		}
		return true
	})
}

func hookStmt(hook, op string) ast.Stmt {
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fun:  ast.NewIdent(hook),
		Args: []ast.Expr{&ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(op)}},
	}}
}

// helperSource holds the hook declarations appended once per package. The
// hooks are replaced by ER-π's interceptor during test setup; the defaults
// are no-ops.
const helperSource = `package stub

// erpiBefore and erpiAfter are ER-π's interception points, bracketing
// every proxied RDL call. The defaults are no-ops so rewritten code
// behaves identically outside ER-π sessions.
var (
	erpiBefore = func(op string) {}
	erpiAfter  = func(op string) {}
)

// ErpiSetHooks installs interception hooks and returns a restore function.
func ErpiSetHooks(before, after func(op string)) (restore func()) {
	prevBefore, prevAfter := erpiBefore, erpiAfter
	if before != nil {
		erpiBefore = before
	}
	if after != nil {
		erpiAfter = after
	}
	return func() { erpiBefore, erpiAfter = prevBefore, prevAfter }
}
`

func appendHelpers(fset *token.FileSet, file *ast.File) error {
	parsed, err := parser.ParseFile(fset, "erpi_helpers.go", helperSource, 0)
	if err != nil {
		return fmt.Errorf("astproxy: internal helper source invalid: %w", err)
	}
	file.Decls = append(file.Decls, parsed.Decls...)
	return nil
}

// OpsOf extracts the distinct wrapped operation names of a report, in
// first-seen order — useful for generating pruning configs.
func (r Report) OpsOf() []string {
	seen := make(map[string]bool)
	var out []string
	for _, op := range r.Wrapped {
		if !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	return out
}

// Summary renders a human-readable report.
func (r Report) Summary() string {
	return fmt.Sprintf("wrapped %d call site(s) [%s], skipped %d",
		len(r.Wrapped), strings.Join(r.OpsOf(), ", "), len(r.Skipped))
}
