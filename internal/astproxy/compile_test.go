package astproxy

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// appSource is a miniature application whose RDL calls (methods on
// `store`) the rewriter proxies. After rewriting, the injected
// erpiBefore/erpiAfter hooks record the call order, which main prints.
const appSource = `package main

import "fmt"

type rdl struct{ items []string }

func (r *rdl) Add(item string)  { r.items = append(r.items, item) }
func (r *rdl) Sync(peer string) {}
func (r *rdl) Len() int         { return len(r.items) }

var store = &rdl{}

var trace []string

func workload() {
	store.Add("otb")
	store.Sync("B")
	n := store.Len()
	_ = n
}

func main() {
	restore := ErpiSetHooks(
		func(op string) { trace = append(trace, "before:"+op) },
		func(op string) { trace = append(trace, "after:"+op) },
	)
	defer restore()
	workload()
	for _, line := range trace {
		fmt.Println(line)
	}
}
`

// TestRewrittenProgramCompilesAndRecords is the end-to-end proxy-generation
// test the paper's §5.1.1 implies: rewrite a real program with go/ast,
// compile it with the Go toolchain, run it, and observe the interception
// hooks firing around every proxied RDL call in program order.
func TestRewrittenProgramCompilesAndRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs a program; skipped in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}

	out, report, err := RewriteSource(appSource, Config{
		Receivers:   []string{"store"},
		EmitHelpers: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Wrapped) != 3 {
		t.Fatalf("wrapped %d call sites, want 3 (%v)", len(report.Wrapped), report.Wrapped)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpapp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("rewritten program failed: %v\n%s\n--- source ---\n%s", err, output, out)
	}

	want := []string{
		"before:store.Add",
		"after:store.Add",
		"before:store.Sync",
		"after:store.Sync",
		"before:store.Len",
		"after:store.Len",
	}
	got := strings.Fields(strings.TrimSpace(string(output)))
	if len(got) != len(want) {
		t.Fatalf("hook trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hook trace = %v, want %v", got, want)
		}
	}
}
