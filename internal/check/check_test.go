package check

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/runner"
)

func outcome(fps map[event.ReplicaID]string, obs map[event.ID]string) *runner.Outcome {
	converged := true
	var first string
	started := false
	for _, fp := range fps {
		if !started {
			first, started = fp, true
			continue
		}
		if fp != first {
			converged = false
		}
	}
	return &runner.Outcome{
		Index:        1,
		Interleaving: interleave.Interleaving{0, 1},
		Fingerprints: fps,
		Observations: obs,
		Converged:    converged,
	}
}

func TestConvergence(t *testing.T) {
	a := Convergence{}
	if err := a.Check(outcome(map[event.ReplicaID]string{"A": "x", "B": "x"}, nil)); err != nil {
		t.Fatalf("converged outcome flagged: %v", err)
	}
	err := a.Check(outcome(map[event.ReplicaID]string{"A": "x", "B": "y"}, nil))
	if err == nil {
		t.Fatal("diverged outcome must be flagged")
	}
	if !strings.Contains(err.Error(), `A="x"`) || !strings.Contains(err.Error(), `B="y"`) {
		t.Fatalf("error must render fingerprints: %v", err)
	}
}

func TestStateStableAcrossInterleavings(t *testing.T) {
	a := &StateStable{Replica: "A"}
	if err := a.Check(outcome(map[event.ReplicaID]string{"A": "s1"}, nil)); err != nil {
		t.Fatalf("first outcome must pass: %v", err)
	}
	if err := a.Check(outcome(map[event.ReplicaID]string{"A": "s1"}, nil)); err != nil {
		t.Fatalf("same state must pass: %v", err)
	}
	if err := a.Check(outcome(map[event.ReplicaID]string{"A": "s2"}, nil)); err == nil {
		t.Fatal("changed state across interleavings must be flagged (misconception #1/#5)")
	}
	if err := a.Check(outcome(map[event.ReplicaID]string{"B": "s1"}, nil)); err == nil {
		t.Fatal("missing replica must be flagged")
	}
}

func TestObservationEquals(t *testing.T) {
	a := ObservationEquals{Event: 3, Want: "ph"}
	if err := a.Check(outcome(nil, map[event.ID]string{3: "ph"})); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(outcome(nil, map[event.ID]string{3: "otb,ph"})); err == nil {
		t.Fatal("wrong observation must be flagged")
	}
	if err := a.Check(outcome(nil, nil)); err == nil {
		t.Fatal("missing observation must be flagged")
	}
}

func TestObservationStable(t *testing.T) {
	a := &ObservationStable{Event: 1}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "v"})); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "v"})); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "w"})); err == nil {
		t.Fatal("unstable observation must be flagged (misconception #2)")
	}
}

func TestNoDuplicates(t *testing.T) {
	a := NoDuplicates{Event: 2}
	if err := a.Check(outcome(nil, map[event.ID]string{2: "a,b,c"})); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(outcome(nil, map[event.ID]string{2: "a,b,a"})); err == nil {
		t.Fatal("duplicate must be flagged (misconception #3)")
	}
	if err := a.Check(outcome(nil, map[event.ID]string{2: ""})); err != nil {
		t.Fatalf("empty list has no duplicates: %v", err)
	}
	if err := a.Check(outcome(nil, nil)); err != nil {
		t.Fatalf("missing observation has nothing to duplicate: %v", err)
	}
	b := NoDuplicates{Event: 2, Sep: "|"}
	if err := b.Check(outcome(nil, map[event.ID]string{2: "x|x"})); err == nil {
		t.Fatal("custom separator duplicates must be flagged")
	}
}

func TestNoClash(t *testing.T) {
	a := NoClash{EventA: 1, EventB: 2}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "id5", 2: "id6"})); err != nil {
		t.Fatal(err)
	}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "id5", 2: "id5"})); err == nil {
		t.Fatal("ID clash must be flagged (misconception #4)")
	}
	if err := a.Check(outcome(nil, map[event.ID]string{1: "id5"})); err == nil {
		t.Fatal("missing observation must be flagged")
	}
}

func TestNoFailedOps(t *testing.T) {
	a := NoFailedOps{}
	o := outcome(nil, nil)
	if err := a.Check(o); err != nil {
		t.Fatal(err)
	}
	o.FailedOps = []event.ID{4}
	if err := a.Check(o); err == nil {
		t.Fatal("failed op must be flagged")
	}
}

func TestCustom(t *testing.T) {
	called := false
	a := Custom{Label: "mine", Fn: func(o *runner.Outcome) error {
		called = true
		return nil
	}}
	if a.Name() != "mine" {
		t.Fatalf("Name = %q", a.Name())
	}
	if err := a.Check(outcome(nil, nil)); err != nil || !called {
		t.Fatal("custom fn must run")
	}
	if (Custom{}).Name() != "custom" {
		t.Fatal("default label")
	}
}

func TestAssertionNames(t *testing.T) {
	names := map[string]runner.Assertion{
		"convergence":             Convergence{},
		"state-stable(A)":         &StateStable{Replica: "A"},
		`observation(ev1)=="x"`:   ObservationEquals{Event: 1, Want: "x"},
		"observation-stable(ev2)": &ObservationStable{Event: 2},
		"no-duplicates(ev3)":      NoDuplicates{Event: 3},
		"no-clash(ev1,ev2)":       NoClash{EventA: 1, EventB: 2},
		"no-failed-ops":           NoFailedOps{},
	}
	for want, a := range names {
		if got := a.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
