// Package check is ER-π's library of test functions (paper §4.4: "ER-π
// provides a test library of commonly held wrong assumptions and
// misconceptions of RDL usage"). Each assertion checks one property of an
// interleaving's outcome; the stateful ones compare outcomes ACROSS
// interleavings, which is how the misconception detectors of §6.2 work
// ("we wrote a test that compares the replica's states, which resulted
// from different interleavings").
package check

import (
	"fmt"
	"strings"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/runner"
)

// Convergence asserts that all replicas end every interleaving with equal
// state fingerprints — the detector for misconceptions #1 and #5 when a
// replica stops coordinating, and for any non-convergent RDL integration.
type Convergence struct{}

var _ runner.Assertion = Convergence{}

// Name implements runner.Assertion.
func (Convergence) Name() string { return "convergence" }

// Check implements runner.Assertion.
func (Convergence) Check(o *runner.Outcome) error {
	if o.Converged {
		return nil
	}
	return fmt.Errorf("replicas diverged: %s", renderFingerprints(o.Fingerprints))
}

// StateStable asserts that one replica's final state is identical across
// every explored interleaving — the paper's misconception #1 and #5 test:
// if different event orders leave the replica in different states, the
// application depended on delivery order.
type StateStable struct {
	// Replica is the replica under test.
	Replica event.ReplicaID

	first    string
	firstSet bool
	firstIL  string
}

var _ runner.Assertion = (*StateStable)(nil)

// Name implements runner.Assertion.
func (s *StateStable) Name() string {
	return fmt.Sprintf("state-stable(%s)", s.Replica)
}

// Check implements runner.Assertion.
func (s *StateStable) Check(o *runner.Outcome) error {
	fp, ok := o.Fingerprints[s.Replica]
	if !ok {
		return fmt.Errorf("no fingerprint for replica %s", s.Replica)
	}
	if !s.firstSet {
		s.first, s.firstSet, s.firstIL = fp, true, o.Interleaving.Key()
		return nil
	}
	if fp != s.first {
		return fmt.Errorf("state differs across interleavings: %q (in [%s]) vs %q (in [%s])",
			s.first, s.firstIL, fp, o.Interleaving.Key())
	}
	return nil
}

// ObservationEquals asserts a specific Observe event always returns the
// expected value — the motivating example's invariant ("only the pothole
// issue is transmitted").
type ObservationEquals struct {
	// Event is the observed event's ID.
	Event event.ID
	// Want is the required observation value.
	Want string
}

var _ runner.Assertion = ObservationEquals{}

// Name implements runner.Assertion.
func (a ObservationEquals) Name() string {
	return fmt.Sprintf("observation(ev%d)==%q", int(a.Event), a.Want)
}

// Check implements runner.Assertion.
func (a ObservationEquals) Check(o *runner.Outcome) error {
	got, ok := o.Observations[a.Event]
	if !ok {
		return fmt.Errorf("event %d produced no observation", int(a.Event))
	}
	if got != a.Want {
		return fmt.Errorf("observed %q, want %q", got, a.Want)
	}
	return nil
}

// ObservationStable asserts an Observe event returns the same value in
// every interleaving (order-independence of a read).
type ObservationStable struct {
	Event event.ID

	first    string
	firstSet bool
}

var _ runner.Assertion = (*ObservationStable)(nil)

// Name implements runner.Assertion.
func (a *ObservationStable) Name() string {
	return fmt.Sprintf("observation-stable(ev%d)", int(a.Event))
}

// Check implements runner.Assertion.
func (a *ObservationStable) Check(o *runner.Outcome) error {
	got, ok := o.Observations[a.Event]
	if !ok {
		return fmt.Errorf("event %d produced no observation", int(a.Event))
	}
	if !a.firstSet {
		a.first, a.firstSet = got, true
		return nil
	}
	if got != a.first {
		return fmt.Errorf("observation differs across interleavings: %q vs %q", a.first, got)
	}
	return nil
}

// NoDuplicates asserts an observation (a rendered collection) contains no
// duplicated items — the misconception #3 detector ("moving items in a
// List doesn't cause duplication").
type NoDuplicates struct {
	// Event is the Observe event rendering the collection.
	Event event.ID
	// Sep splits the observation into items (default ",").
	Sep string
}

var _ runner.Assertion = NoDuplicates{}

// Name implements runner.Assertion.
func (a NoDuplicates) Name() string {
	return fmt.Sprintf("no-duplicates(ev%d)", int(a.Event))
}

// Check implements runner.Assertion.
func (a NoDuplicates) Check(o *runner.Outcome) error {
	got, ok := o.Observations[a.Event]
	if !ok {
		// An empty or reordered-away read has nothing to duplicate.
		return nil
	}
	sep := a.Sep
	if sep == "" {
		sep = ","
	}
	seen := make(map[string]bool)
	for _, item := range strings.Split(got, sep) {
		if item == "" {
			continue
		}
		if seen[item] {
			return fmt.Errorf("duplicated item %q in %q", item, got)
		}
		seen[item] = true
	}
	return nil
}

// NoClash asserts that two observations (e.g. IDs generated at two
// replicas) differ — the misconception #4 detector for sequential-ID
// clashes in concurrently created to-do items.
type NoClash struct {
	// EventA and EventB are the two observed events.
	EventA, EventB event.ID
}

var _ runner.Assertion = NoClash{}

// Name implements runner.Assertion.
func (a NoClash) Name() string {
	return fmt.Sprintf("no-clash(ev%d,ev%d)", int(a.EventA), int(a.EventB))
}

// Check implements runner.Assertion.
func (a NoClash) Check(o *runner.Outcome) error {
	va, oka := o.Observations[a.EventA]
	vb, okb := o.Observations[a.EventB]
	if !oka || !okb {
		return fmt.Errorf("missing observation (ev%d: %v, ev%d: %v)",
			int(a.EventA), oka, int(a.EventB), okb)
	}
	if va == vb {
		return fmt.Errorf("clash: both events produced %q", va)
	}
	return nil
}

// NoFailedOps asserts no operation was rejected by data-type constraints.
type NoFailedOps struct{}

var _ runner.Assertion = NoFailedOps{}

// Name implements runner.Assertion.
func (NoFailedOps) Name() string { return "no-failed-ops" }

// Check implements runner.Assertion.
func (NoFailedOps) Check(o *runner.Outcome) error {
	if len(o.FailedOps) == 0 {
		return nil
	}
	return fmt.Errorf("%d failed op(s): %v", len(o.FailedOps), o.FailedOps)
}

// OrderConsistent asserts that the relative order of any two items in an
// observed collection never flips across interleavings. Observations may
// contain different subsets (propagation lag is legal); only a pairwise
// precedence inversion among items seen together is a violation — the
// detector for nondeterministic read orders (Roshi issue #40, OrbitDB
// issue #513, misconception #2).
type OrderConsistent struct {
	// Event is the Observe event rendering the collection.
	Event event.ID
	// Sep splits the observation into items (default ",").
	Sep string

	// before[a][b] records that a was seen before b.
	before map[string]map[string]bool
}

var _ runner.Assertion = (*OrderConsistent)(nil)

// Name implements runner.Assertion.
func (a *OrderConsistent) Name() string {
	return fmt.Sprintf("order-consistent(ev%d)", int(a.Event))
}

// Check implements runner.Assertion.
func (a *OrderConsistent) Check(o *runner.Outcome) error {
	got, ok := o.Observations[a.Event]
	if !ok {
		return nil // the observe may not have produced output; not an order violation
	}
	sep := a.Sep
	if sep == "" {
		sep = ","
	}
	var items []string
	for _, item := range strings.Split(got, sep) {
		if item != "" {
			items = append(items, item)
		}
	}
	if a.before == nil {
		a.before = make(map[string]map[string]bool)
	}
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			x, y := items[i], items[j]
			if a.before[y][x] {
				return fmt.Errorf("order of %q and %q flipped across interleavings (observation %q)", x, y, got)
			}
			if a.before[x] == nil {
				a.before[x] = make(map[string]bool)
			}
			a.before[x][y] = true
		}
	}
	return nil
}

// NoFailedOpAt asserts that none of the given events was rejected by a
// constraint — a targeted variant of NoFailedOps for scenarios where some
// failed ops are legal outcomes of reordering.
type NoFailedOpAt struct {
	// Events are the event IDs that must never fail.
	Events []event.ID
}

var _ runner.Assertion = NoFailedOpAt{}

// Name implements runner.Assertion.
func (a NoFailedOpAt) Name() string {
	return fmt.Sprintf("no-failed-op-at(%v)", a.Events)
}

// Check implements runner.Assertion.
func (a NoFailedOpAt) Check(o *runner.Outcome) error {
	banned := make(map[event.ID]bool, len(a.Events))
	for _, id := range a.Events {
		banned[id] = true
	}
	for _, id := range o.FailedOps {
		if banned[id] {
			return fmt.Errorf("event %d failed", int(id))
		}
	}
	return nil
}

// Custom wraps an arbitrary predicate as an assertion (paper §4.5:
// developers can specify custom tests passed to ER-π.End()).
type Custom struct {
	// Label names the assertion.
	Label string
	// Fn returns an error on violation.
	Fn func(*runner.Outcome) error
}

var _ runner.Assertion = Custom{}

// Name implements runner.Assertion.
func (c Custom) Name() string {
	if c.Label == "" {
		return "custom"
	}
	return c.Label
}

// Check implements runner.Assertion.
func (c Custom) Check(o *runner.Outcome) error { return c.Fn(o) }

func renderFingerprints(fps map[event.ReplicaID]string) string {
	parts := make([]string, 0, len(fps))
	for _, id := range sortedIDs(fps) {
		parts = append(parts, fmt.Sprintf("%s=%q", id, fps[id]))
	}
	return strings.Join(parts, " ")
}

func sortedIDs(fps map[event.ReplicaID]string) []event.ReplicaID {
	out := make([]event.ReplicaID, 0, len(fps))
	for id := range fps {
		out = append(out, id)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
