// Package datalog implements the deductive store ER-π persists
// interleavings in (paper §5.1: "ER-π manages interleavings in Datalog …
// initially stores the exhaustive set of n! interleavings in Datalog's
// deductive database, using logic queries to perform the applicable
// pruning").
//
// The engine supports stratified Datalog with negation and integer
// comparison builtins, evaluated semi-naively. A parser accepts a
// Soufflé-flavoured text dialect. On top of the engine, Store persists
// interleavings as pos/3 facts with a configurable fact budget — the
// resource that the paper's succeed-or-crash micro-benchmark exhausts.
package datalog

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is a constant or a variable. Variables start with an uppercase
// letter or underscore.
type Term struct {
	Var   bool
	Value string
}

// Const builds a constant term.
func Const(v string) Term { return Term{Value: v} }

// Var builds a variable term.
func Var(name string) Term { return Term{Var: true, Value: name} }

// String renders the term.
func (t Term) String() string {
	if t.Var {
		return t.Value
	}
	if _, err := strconv.Atoi(t.Value); err == nil {
		return t.Value
	}
	return strconv.Quote(t.Value)
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred  string
	Terms []Term
}

// String renders "pred(t1, t2)".
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// CompareOp is a builtin integer comparison.
type CompareOp string

// Builtin comparison operators.
const (
	OpLT CompareOp = "<"
	OpLE CompareOp = "<="
	OpGT CompareOp = ">"
	OpGE CompareOp = ">="
	OpEQ CompareOp = "="
	OpNE CompareOp = "!="
)

// Literal is one body element: a (possibly negated) atom, or a builtin
// comparison between two terms.
type Literal struct {
	Atom    Atom
	Negated bool
	// Builtin comparison: when Compare != "", Atom is unused and Left/Right
	// hold the operands.
	Compare     CompareOp
	Left, Right Term
}

// String renders the literal.
func (l Literal) String() string {
	if l.Compare != "" {
		return l.Left.String() + " " + string(l.Compare) + " " + l.Right.String()
	}
	if l.Negated {
		return "!" + l.Atom.String()
	}
	return l.Atom.String()
}

// Rule is "Head :- Body.". A rule with an empty body is a fact.
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule in source form.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact is a ground tuple of a predicate.
type Fact struct {
	Pred string
	Args []string
}

// String renders the fact in source form.
func (f Fact) String() string {
	terms := make([]Term, len(f.Args))
	for i, a := range f.Args {
		terms[i] = Const(a)
	}
	return Atom{Pred: f.Pred, Terms: terms}.String() + "."
}

func (f Fact) key() string {
	return strings.Join(f.Args, "\x00")
}

// validate checks rule safety: every head variable and every variable in a
// negated or builtin literal must be bound by a positive body atom.
func (r Rule) validate() error {
	bound := make(map[string]bool)
	for _, l := range r.Body {
		if l.Compare == "" && !l.Negated {
			for _, t := range l.Atom.Terms {
				if t.Var {
					bound[t.Value] = true
				}
			}
		}
	}
	check := func(t Term, where string) error {
		if t.Var && !bound[t.Value] {
			return fmt.Errorf("datalog: unsafe rule %s: variable %s in %s not bound by a positive atom", r, t.Value, where)
		}
		return nil
	}
	for _, t := range r.Head.Terms {
		if err := check(t, "head"); err != nil {
			return err
		}
	}
	for _, l := range r.Body {
		if l.Compare != "" {
			if err := check(l.Left, "builtin"); err != nil {
				return err
			}
			if err := check(l.Right, "builtin"); err != nil {
				return err
			}
			continue
		}
		if l.Negated {
			for _, t := range l.Atom.Terms {
				if err := check(t, "negated atom"); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
