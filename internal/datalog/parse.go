package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a Soufflé-flavoured Datalog source: facts
// (`edge("a", "b").`), rules (`path(X, Y) :- edge(X, Z), path(Z, Y).`)
// with negation (`!reached(X)`) and integer comparisons (`X < Y`).
// `.decl` and `.output` directives and `//` comments are tolerated and
// ignored. Returns the ground facts and the rules separately.
func Parse(src string) ([]Fact, []Rule, error) {
	var facts []Fact
	var rules []Rule
	for lineNo, raw := range splitStatements(src) {
		stmt := strings.TrimSpace(raw)
		if stmt == "" || strings.HasPrefix(stmt, ".decl") || strings.HasPrefix(stmt, ".output") || strings.HasPrefix(stmt, ".input") {
			continue
		}
		rule, err := parseStatement(stmt)
		if err != nil {
			return nil, nil, fmt.Errorf("datalog: statement %d: %w", lineNo+1, err)
		}
		if len(rule.Body) == 0 {
			args := make([]string, len(rule.Head.Terms))
			for i, t := range rule.Head.Terms {
				if t.Var {
					return nil, nil, fmt.Errorf("datalog: statement %d: fact with variable %s", lineNo+1, t.Value)
				}
				args[i] = t.Value
			}
			facts = append(facts, Fact{Pred: rule.Head.Pred, Args: args})
			continue
		}
		if err := rule.validate(); err != nil {
			return nil, nil, fmt.Errorf("datalog: statement %d: %w", lineNo+1, err)
		}
		rules = append(rules, rule)
	}
	return facts, rules, nil
}

// splitStatements splits the source on statement-terminating periods,
// respecting quoted strings, and strips // comments.
func splitStatements(src string) []string {
	var lines []string
	for _, line := range strings.Split(src, "\n") {
		if i := indexComment(line); i >= 0 {
			line = line[:i]
		}
		// Directives are line-based and unterminated; drop them here so
		// they cannot swallow the following statement.
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, ".decl") || strings.HasPrefix(trimmed, ".output") || strings.HasPrefix(trimmed, ".input") {
			continue
		}
		lines = append(lines, line)
	}
	joined := strings.Join(lines, "\n")
	var stmts []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(joined); i++ {
		ch := joined[i]
		switch {
		case ch == '"' && (i == 0 || joined[i-1] != '\\'):
			inStr = !inStr
			cur.WriteByte(ch)
		case ch == '.' && !inStr && isStatementEnd(joined, i):
			stmts = append(stmts, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(ch)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		stmts = append(stmts, s)
	}
	return stmts
}

// isStatementEnd distinguishes a terminating '.' from the '.' of a
// directive like ".decl" (directive dots start a token).
func isStatementEnd(s string, i int) bool {
	if i+1 < len(s) {
		next := rune(s[i+1])
		if unicode.IsLetter(next) {
			return false // ".decl" etc.
		}
	}
	return true
}

func indexComment(line string) int {
	inStr := false
	for i := 0; i+1 < len(line); i++ {
		if line[i] == '"' && (i == 0 || line[i-1] != '\\') {
			inStr = !inStr
		}
		if !inStr && line[i] == '/' && line[i+1] == '/' {
			return i
		}
	}
	return -1
}

func parseStatement(stmt string) (Rule, error) {
	headSrc, bodySrc, hasBody := strings.Cut(stmt, ":-")
	head, err := parseAtom(strings.TrimSpace(headSrc))
	if err != nil {
		return Rule{}, err
	}
	rule := Rule{Head: head}
	if !hasBody {
		return rule, nil
	}
	for _, litSrc := range splitTopLevel(bodySrc, ',') {
		lit, err := parseLiteral(strings.TrimSpace(litSrc))
		if err != nil {
			return Rule{}, err
		}
		rule.Body = append(rule.Body, lit)
	}
	return rule, nil
}

func parseLiteral(src string) (Literal, error) {
	if src == "" {
		return Literal{}, fmt.Errorf("empty literal")
	}
	if strings.HasPrefix(src, "!") {
		atom, err := parseAtom(strings.TrimSpace(src[1:]))
		if err != nil {
			return Literal{}, err
		}
		return Literal{Atom: atom, Negated: true}, nil
	}
	// Builtin comparison? Only when the operator appears outside parens.
	for _, op := range []CompareOp{OpLE, OpGE, OpNE, OpLT, OpGT, OpEQ} {
		if idx := indexTopLevel(src, string(op)); idx >= 0 {
			left, err := parseTerm(strings.TrimSpace(src[:idx]))
			if err != nil {
				return Literal{}, err
			}
			right, err := parseTerm(strings.TrimSpace(src[idx+len(op):]))
			if err != nil {
				return Literal{}, err
			}
			return Literal{Compare: op, Left: left, Right: right}, nil
		}
	}
	atom, err := parseAtom(src)
	if err != nil {
		return Literal{}, err
	}
	return Literal{Atom: atom}, nil
}

func parseAtom(src string) (Atom, error) {
	open := strings.IndexByte(src, '(')
	if open < 0 || !strings.HasSuffix(src, ")") {
		return Atom{}, fmt.Errorf("malformed atom %q", src)
	}
	pred := strings.TrimSpace(src[:open])
	if pred == "" {
		return Atom{}, fmt.Errorf("atom without predicate: %q", src)
	}
	inner := src[open+1 : len(src)-1]
	var terms []Term
	if strings.TrimSpace(inner) != "" {
		for _, termSrc := range splitTopLevel(inner, ',') {
			t, err := parseTerm(strings.TrimSpace(termSrc))
			if err != nil {
				return Atom{}, err
			}
			terms = append(terms, t)
		}
	}
	return Atom{Pred: pred, Terms: terms}, nil
}

func parseTerm(src string) (Term, error) {
	if src == "" {
		return Term{}, fmt.Errorf("empty term")
	}
	if src[0] == '"' {
		if len(src) < 2 || src[len(src)-1] != '"' {
			return Term{}, fmt.Errorf("unterminated string %q", src)
		}
		return Const(strings.ReplaceAll(src[1:len(src)-1], `\"`, `"`)), nil
	}
	first := rune(src[0])
	if unicode.IsUpper(first) || first == '_' {
		return Var(src), nil
	}
	return Const(src), nil
}

// splitTopLevel splits on sep outside quotes and parentheses.
func splitTopLevel(src string, sep byte) []string {
	var parts []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(src); i++ {
		switch {
		case src[i] == '"' && (i == 0 || src[i-1] != '\\'):
			inStr = !inStr
		case inStr:
		case src[i] == '(':
			depth++
		case src[i] == ')':
			depth--
		case src[i] == sep && depth == 0:
			parts = append(parts, src[start:i])
			start = i + 1
		}
	}
	parts = append(parts, src[start:])
	return parts
}

// indexTopLevel finds op outside quotes/parens, or -1. Guards against
// matching "<" inside "<=" by requiring the following byte not to extend
// the operator.
func indexTopLevel(src, op string) int {
	depth := 0
	inStr := false
	for i := 0; i+len(op) <= len(src); i++ {
		switch {
		case src[i] == '"' && (i == 0 || src[i-1] != '\\'):
			inStr = !inStr
		case inStr:
		case src[i] == '(':
			depth++
		case src[i] == ')':
			depth--
		case depth == 0 && src[i:i+len(op)] == op:
			if len(op) == 1 && i+1 < len(src) && src[i+1] == '=' {
				continue // "<" inside "<="
			}
			// "!" of "!=" must not be parsed as negation prefix elsewhere;
			// the caller tries two-char ops first, so this is safe.
			return i
		}
	}
	return -1
}
