package datalog

import (
	"errors"
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

func TestAssertAndHolds(t *testing.T) {
	db := NewDB()
	if !db.Assert(Fact{Pred: "edge", Args: []string{"a", "b"}}) {
		t.Fatal("fresh fact must be new")
	}
	if db.Assert(Fact{Pred: "edge", Args: []string{"a", "b"}}) {
		t.Fatal("duplicate fact must not be new")
	}
	if !db.Holds("edge", "a", "b") || db.Holds("edge", "b", "a") {
		t.Fatal("Holds broken")
	}
	if db.Count("edge") != 1 || db.Size() != 1 {
		t.Fatal("counts broken")
	}
}

func TestTransitiveClosure(t *testing.T) {
	db := NewDB()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		db.Assert(Fact{Pred: "edge", Args: []string{e[0], e[1]}})
	}
	prog, err := NewProgram(
		Rule{Head: Atom{Pred: "path", Terms: []Term{Var("X"), Var("Y")}},
			Body: []Literal{{Atom: Atom{Pred: "edge", Terms: []Term{Var("X"), Var("Y")}}}}},
		Rule{Head: Atom{Pred: "path", Terms: []Term{Var("X"), Var("Z")}},
			Body: []Literal{
				{Atom: Atom{Pred: "edge", Terms: []Term{Var("X"), Var("Y")}}},
				{Atom: Atom{Pred: "path", Terms: []Term{Var("Y"), Var("Z")}}},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Count("path") != 6 {
		t.Fatalf("path count = %d, want 6", db.Count("path"))
	}
	if !db.Holds("path", "a", "d") {
		t.Fatal("transitive path a->d missing")
	}
}

func TestStratifiedNegation(t *testing.T) {
	db := NewDB()
	db.Assert(Fact{Pred: "node", Args: []string{"a"}})
	db.Assert(Fact{Pred: "node", Args: []string{"b"}})
	db.Assert(Fact{Pred: "marked", Args: []string{"a"}})
	prog, err := NewProgram(
		Rule{Head: Atom{Pred: "unmarked", Terms: []Term{Var("X")}},
			Body: []Literal{
				{Atom: Atom{Pred: "node", Terms: []Term{Var("X")}}},
				{Atom: Atom{Pred: "marked", Terms: []Term{Var("X")}}, Negated: true},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !db.Holds("unmarked", "b") || db.Holds("unmarked", "a") {
		t.Fatalf("negation broken: %v", db.Facts("unmarked"))
	}
}

func TestNegationCycleRejected(t *testing.T) {
	prog, err := NewProgram(
		Rule{Head: Atom{Pred: "p", Terms: []Term{Var("X")}},
			Body: []Literal{
				{Atom: Atom{Pred: "base", Terms: []Term{Var("X")}}},
				{Atom: Atom{Pred: "q", Terms: []Term{Var("X")}}, Negated: true},
			}},
		Rule{Head: Atom{Pred: "q", Terms: []Term{Var("X")}},
			Body: []Literal{
				{Atom: Atom{Pred: "base", Terms: []Term{Var("X")}}},
				{Atom: Atom{Pred: "p", Terms: []Term{Var("X")}}, Negated: true},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	db.Assert(Fact{Pred: "base", Args: []string{"a"}})
	if err := prog.Eval(db); err == nil {
		t.Fatal("negation cycle must be rejected")
	}
}

func TestUnsafeRuleRejected(t *testing.T) {
	_, err := NewProgram(
		Rule{Head: Atom{Pred: "bad", Terms: []Term{Var("X")}}},
	)
	if err == nil {
		t.Fatal("head variable without body must be unsafe")
	}
	_, err = NewProgram(
		Rule{Head: Atom{Pred: "bad", Terms: []Term{Const("c")}},
			Body: []Literal{{Atom: Atom{Pred: "p", Terms: []Term{Var("Y")}}, Negated: true}}},
	)
	if err == nil {
		t.Fatal("negated-only variable must be unsafe")
	}
}

func TestComparisons(t *testing.T) {
	db := NewDB()
	db.Assert(Fact{Pred: "n", Args: []string{"1"}})
	db.Assert(Fact{Pred: "n", Args: []string{"2"}})
	db.Assert(Fact{Pred: "n", Args: []string{"3"}})
	prog, err := NewProgram(
		Rule{Head: Atom{Pred: "lt", Terms: []Term{Var("X"), Var("Y")}},
			Body: []Literal{
				{Atom: Atom{Pred: "n", Terms: []Term{Var("X")}}},
				{Atom: Atom{Pred: "n", Terms: []Term{Var("Y")}}},
				{Compare: OpLT, Left: Var("X"), Right: Var("Y")},
			}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	if db.Count("lt") != 3 {
		t.Fatalf("lt pairs = %d, want 3", db.Count("lt"))
	}
	if !db.Holds("lt", "1", "3") || db.Holds("lt", "3", "1") {
		t.Fatal("comparison results wrong")
	}
}

func TestParseFactsAndRules(t *testing.T) {
	src := `
// the interleaving store schema
.decl pos(il: symbol, idx: number, ev: symbol)
edge("a", "b").
edge("b", "c").
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
apart(X, Y) :- edge(X, Y), X != Y.
`
	facts, rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 {
		t.Fatalf("facts = %v", facts)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	db := NewDB()
	for _, f := range facts {
		db.Assert(f)
	}
	prog, err := NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !db.Holds("path", "a", "c") {
		t.Fatal("parsed program did not derive path(a,c)")
	}
	if !db.Holds("apart", "a", "b") {
		t.Fatal("parsed != comparison broken")
	}
}

func TestParseNegationAndComparison(t *testing.T) {
	src := `
p("x", 1).
p("y", 2).
q(A) :- p(A, N), N >= 2.
r(A) :- p(A, _), !q(A).
`
	facts, rules, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	for _, f := range facts {
		db.Assert(f)
	}
	prog, err := NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !db.Holds("q", "y") || db.Holds("q", "x") {
		t.Fatalf("q = %v", db.Facts("q"))
	}
	if !db.Holds("r", "x") || db.Holds("r", "y") {
		t.Fatalf("r = %v", db.Facts("r"))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`fact(X).`,              // variable in fact
		`p(a) :- q(.`,           // malformed atom
		`p(X) :- !q(X).`,        // unsafe
		`p("unterminated) :- .`, // bad string
	}
	for _, src := range cases {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Head: Atom{Pred: "drop", Terms: []Term{Var("I")}},
		Body: []Literal{
			{Atom: Atom{Pred: "pos", Terms: []Term{Var("I"), Const("0"), Const("e6")}}},
			{Compare: OpLT, Left: Var("X"), Right: Var("Y")},
			{Atom: Atom{Pred: "keep", Terms: []Term{Var("I")}}, Negated: true},
		},
	}
	s := r.String()
	for _, want := range []string{"drop(I)", ":-", `pos(I, 0, "e6")`, "X < Y", "!keep(I)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Rule.String() = %q missing %q", s, want)
		}
	}
}

func TestStoreRecordAndQuery(t *testing.T) {
	s := NewStore()
	il := interleave.Interleaving{2, 0, 1}
	if err := s.Record(il); err != nil {
		t.Fatal(err)
	}
	if err := s.Record(il); err != nil { // duplicate: no-op
		t.Fatal(err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	if !s.Recorded(il) {
		t.Fatal("Recorded lost the interleaving")
	}
	if s.FactCount() != 4 { // il/1 + three pos/3
		t.Fatalf("FactCount = %d, want 4", s.FactCount())
	}
	if !s.DB().Holds("pos", il.Key(), "0", "e2") {
		t.Fatal("pos fact missing")
	}
}

func TestStoreBudgetExhaustion(t *testing.T) {
	s := NewStore()
	s.MaxFacts = 7 // one 3-event interleaving costs 4 facts; a second doesn't fit
	if err := s.Record(interleave.Interleaving{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	err := s.Record(interleave.Interleaving{2, 1, 0})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

// TestStorePruneMatchesNativeFilter cross-checks the Datalog pruning
// backend against the native Go filter on the same space: the rule
// drop(I) :- pos(I,X,"e0"), pos(I,Y,"e1"), X < Y  keeps exactly the
// interleavings where event 1 precedes event 0 — the same selection as the
// toy filter in the interleave tests.
func TestStorePruneMatchesNativeFilter(t *testing.T) {
	evs := make([]event.Event, 4)
	for i := range evs {
		evs[i] = event.Event{Kind: event.Update, Replica: "A"}
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	dfs := interleave.NewDFS(interleave.NewSpace(log))
	for {
		il, ok := dfs.Next()
		if !ok {
			break
		}
		if err := s.Record(il); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 24 {
		t.Fatalf("recorded %d, want 24", s.Count())
	}
	_, rules, err := Parse(`drop(I) :- pos(I, X, "e0"), pos(I, Y, "e1"), X < Y.`)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := s.Prune(rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 12 {
		t.Fatalf("kept %d, want 12 (half of 24)", len(kept))
	}
	for _, key := range kept {
		// In every kept interleaving "1" must appear before "0".
		i0 := strings.Index(key, "0")
		i1 := strings.Index(key, "1")
		if i1 > i0 {
			t.Fatalf("kept interleaving %s has e0 before e1", key)
		}
	}
}
