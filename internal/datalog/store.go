package datalog

import (
	"errors"
	"fmt"
	"strconv"

	"github.com/er-pi/erpi/internal/interleave"
)

// ErrBudgetExhausted reports that the store's fact budget is spent — the
// "exhausted all allocated resources, causing the system to crash"
// condition of the paper's Figure 10 micro-benchmark.
var ErrBudgetExhausted = errors.New("datalog: fact budget exhausted")

// Store persists interleavings as Datalog facts:
//
//	il("3,0,1,2").
//	pos("3,0,1,2", 0, "e3").
//
// and answers membership and pruning queries over them. MaxFacts, when
// non-zero, bounds the total fact count; Record fails with
// ErrBudgetExhausted beyond it.
type Store struct {
	db       *DB
	MaxFacts int
}

// NewStore returns an empty interleaving store.
func NewStore() *Store {
	return &Store{db: NewDB()}
}

// DB exposes the underlying database for ad-hoc queries.
func (s *Store) DB() *DB { return s.db }

// Record persists one interleaving. Duplicate records are no-ops.
func (s *Store) Record(il interleave.Interleaving) error {
	key := il.Key()
	if s.db.Holds("il", key) {
		return nil
	}
	// One il/1 fact plus one pos/3 fact per event.
	if s.MaxFacts > 0 && s.db.Size()+1+len(il) > s.MaxFacts {
		return fmt.Errorf("recording interleaving %s: %w", key, ErrBudgetExhausted)
	}
	s.db.Assert(Fact{Pred: "il", Args: []string{key}})
	for idx, ev := range il {
		s.db.Assert(Fact{Pred: "pos", Args: []string{
			key,
			strconv.Itoa(idx),
			"e" + strconv.Itoa(int(ev)),
		}})
	}
	return nil
}

// Recorded reports whether an interleaving was persisted.
func (s *Store) Recorded(il interleave.Interleaving) bool {
	return s.db.Holds("il", il.Key())
}

// Count returns the number of persisted interleavings.
func (s *Store) Count() int { return s.db.Count("il") }

// FactCount returns the total number of facts (the budgeted resource).
func (s *Store) FactCount() int { return s.db.Size() }

// Prune evaluates the given rules (which may derive a `drop(I)` predicate
// over interleaving keys) and returns the keys of interleavings NOT
// dropped, sorted.
func (s *Store) Prune(rules []Rule) ([]string, error) {
	prog, err := NewProgram(rules...)
	if err != nil {
		return nil, err
	}
	if err := prog.Eval(s.db); err != nil {
		return nil, err
	}
	var kept []string
	for _, f := range s.db.Facts("il") {
		key := f.Args[0]
		if !s.db.Holds("drop", key) {
			kept = append(kept, key)
		}
	}
	return kept, nil
}
