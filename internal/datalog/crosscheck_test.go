package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/prune"
)

// replicaSpecificRules is the replica-specific pruning rule (paper
// Algorithm 2) expressed in the engine's Soufflé-flavoured dialect over
// the interleaving store schema: an interleaving is dropped when the
// trailing block after the last impacting unit holds ALL the free units
// but not in canonical ascending order. The impacting/3 and free/3 facts
// are provided per space.
const replicaSpecificRules = `
// an impacting unit occurs after position X
laterImp(I, X) :- pos(I, X, _), pos(I, Y, V), impacting(V), X < Y.
// the last impacting position of each interleaving
lastImp(I, X) :- pos(I, X, U), impacting(U), !laterImp(I, X).
// a free unit occurs before the last impacting position
freeBefore(I) :- lastImp(I, X), pos(I, Y, V), free(V), Y < X.
// an inversion inside the trailing block
suffixInv(I) :- lastImp(I, X), pos(I, Y, U), pos(I, Z, V), X < Y, Y < Z, U > V.
// merged away: full free suffix, non-canonical order
drop(I) :- suffixInv(I), !freeBefore(I).
`

// datalogSurvivors enumerates all unit permutations of n units, loads them
// as pos/3 facts plus the impacting/free classification, runs the rule,
// and returns the surviving interleaving keys.
func datalogSurvivors(t *testing.T, n int, impacting []bool) map[string]bool {
	t.Helper()
	db := NewDB()
	for u := 0; u < n; u++ {
		pred := "free"
		if impacting[u] {
			pred = "impacting"
		}
		db.Assert(Fact{Pred: pred, Args: []string{fmt.Sprintf("%d", u)}})
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var record func()
	record = func() {
		key := ""
		for i, u := range perm {
			if i > 0 {
				key += ","
			}
			key += fmt.Sprintf("%d", u)
			db.Assert(Fact{Pred: "pos", Args: []string{keyOf(perm), fmt.Sprintf("%d", i), fmt.Sprintf("%d", u)}})
		}
		db.Assert(Fact{Pred: "il", Args: []string{keyOf(perm)}})
	}
	for {
		record()
		if !nextPerm(perm) {
			break
		}
	}
	_, rules, err := Parse(replicaSpecificRules)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := NewProgram(rules...)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Eval(db); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool)
	for _, f := range db.Facts("il") {
		if !db.Holds("drop", f.Args[0]) {
			out[f.Args[0]] = true
		}
	}
	return out
}

// nativeSurvivors runs the Go filter over the same permutations.
func nativeSurvivors(t *testing.T, space *interleave.Space, filter interleave.Filter, n int) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for {
		if ok, _ := filter.Canonical(perm); ok {
			out[keyOf(perm)] = true
		}
		if !nextPerm(perm) {
			break
		}
	}
	return out
}

func keyOf(perm []int) string {
	key := ""
	for i, u := range perm {
		if i > 0 {
			key += ","
		}
		key += fmt.Sprintf("%d", u)
	}
	return key
}

func nextPerm(p []int) bool {
	n := len(p)
	i := n - 2
	for i >= 0 && p[i] >= p[i+1] {
		i--
	}
	if i < 0 {
		return false
	}
	j := n - 1
	for p[j] <= p[i] {
		j--
	}
	p[i], p[j] = p[j], p[i]
	for a, b := i+1, n-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
	return true
}

// buildSpace makes a unit-per-event space whose events touch replica "X"
// according to the impacting mask (the replica-specific filter classifies
// units by impact on the tested replica).
func buildSpace(t *testing.T, impacting []bool) *interleave.Space {
	t.Helper()
	evs := make([]event.Event, len(impacting))
	for i, imp := range impacting {
		rep := event.ReplicaID(fmt.Sprintf("R%d", i))
		if imp {
			rep = "X"
		}
		evs[i] = event.Event{Kind: event.Update, Replica: rep}
	}
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	return interleave.NewSpace(log)
}

// TestDatalogMatchesNativeReplicaSpecificTownReport cross-checks the two
// pruning backends on the motivating example's grouped space: one
// impacting unit (the transmission to the municipality) and three free
// units must leave exactly 19 of 24 interleavings, identically on both
// sides.
func TestDatalogMatchesNativeReplicaSpecificTownReport(t *testing.T) {
	impacting := []bool{false, false, false, true}
	space := buildSpace(t, impacting)
	filter := prune.NewReplicaSpecific(space, "X")

	fromDatalog := datalogSurvivors(t, 4, impacting)
	fromNative := nativeSurvivors(t, space, filter, 4)

	if len(fromDatalog) != 19 || len(fromNative) != 19 {
		t.Fatalf("survivors: datalog=%d native=%d, want 19 (paper §3.1)",
			len(fromDatalog), len(fromNative))
	}
	for key := range fromNative {
		if !fromDatalog[key] {
			t.Fatalf("native keeps %s, datalog drops it", key)
		}
	}
}

// TestDatalogMatchesNativeRandomized cross-checks the backends on random
// impacting-set assignments over 5-unit spaces — the DESIGN.md promise
// that the deductive and native pruners select identical survivors.
func TestDatalogMatchesNativeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		impacting := make([]bool, 5)
		any := false
		for i := range impacting {
			impacting[i] = rng.Intn(2) == 1
			any = any || impacting[i]
		}
		if !any {
			impacting[rng.Intn(5)] = true
		}
		space := buildSpace(t, impacting)
		filter := prune.NewReplicaSpecific(space, "X")

		fromDatalog := datalogSurvivors(t, 5, impacting)
		fromNative := nativeSurvivors(t, space, filter, 5)

		if len(fromDatalog) != len(fromNative) {
			t.Fatalf("trial %d (%v): datalog=%d native=%d survivors",
				trial, impacting, len(fromDatalog), len(fromNative))
		}
		for key := range fromNative {
			if !fromDatalog[key] {
				t.Fatalf("trial %d (%v): disagreement on %s", trial, impacting, key)
			}
		}
	}
}
