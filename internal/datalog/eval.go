package datalog

import (
	"fmt"
	"sort"
	"strconv"
)

// DB holds the extensional and derived facts of one evaluation.
type DB struct {
	// relations maps predicate -> tuple key -> args.
	relations map[string]map[string][]string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{relations: make(map[string]map[string][]string)}
}

// Assert adds a ground fact, reporting whether it was new.
func (db *DB) Assert(f Fact) bool {
	rel, ok := db.relations[f.Pred]
	if !ok {
		rel = make(map[string][]string)
		db.relations[f.Pred] = rel
	}
	k := f.key()
	if _, dup := rel[k]; dup {
		return false
	}
	args := make([]string, len(f.Args))
	copy(args, f.Args)
	rel[k] = args
	return true
}

// Holds reports whether the exact tuple is present.
func (db *DB) Holds(pred string, args ...string) bool {
	rel, ok := db.relations[pred]
	if !ok {
		return false
	}
	_, present := rel[Fact{Pred: pred, Args: args}.key()]
	return present
}

// Facts returns all tuples of a predicate, sorted for determinism.
func (db *DB) Facts(pred string) []Fact {
	rel := db.relations[pred]
	out := make([]Fact, 0, len(rel))
	for _, args := range rel {
		cp := make([]string, len(args))
		copy(cp, args)
		out = append(out, Fact{Pred: pred, Args: cp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// Count returns the number of tuples of a predicate.
func (db *DB) Count(pred string) int { return len(db.relations[pred]) }

// Size returns the total number of facts across all predicates.
func (db *DB) Size() int {
	n := 0
	for _, rel := range db.relations {
		n += len(rel)
	}
	return n
}

// Program is a set of rules evaluated to fixpoint over a DB.
type Program struct {
	rules []Rule
}

// NewProgram validates and collects rules.
func NewProgram(rules ...Rule) (*Program, error) {
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
	}
	cp := make([]Rule, len(rules))
	copy(cp, rules)
	return &Program{rules: cp}, nil
}

// Rules returns a copy of the program's rules.
func (p *Program) Rules() []Rule {
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// stratify assigns each rule to a stratum such that negated dependencies
// are strictly lower. Returns an error for negation cycles.
func (p *Program) stratify() ([][]Rule, error) {
	// Collect head predicates (IDB).
	idb := make(map[string]bool)
	for _, r := range p.rules {
		idb[r.Head.Pred] = true
	}
	stratum := make(map[string]int)
	changed := true
	n := len(p.rules) + 1
	for iter := 0; changed; iter++ {
		if iter > n*n+1 {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation cycle)")
		}
		changed = false
		for _, r := range p.rules {
			h := r.Head.Pred
			for _, l := range r.Body {
				if l.Compare != "" || !idb[l.Atom.Pred] {
					continue
				}
				need := stratum[l.Atom.Pred]
				if l.Negated {
					need++
				}
				if stratum[h] < need {
					stratum[h] = need
					changed = true
				}
			}
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]Rule, maxS+1)
	for _, r := range p.rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval runs the program to fixpoint over the database, mutating it in
// place. Evaluation is stratum by stratum, semi-naive within each stratum.
func (p *Program) Eval(db *DB) error {
	strata, err := p.stratify()
	if err != nil {
		return err
	}
	for _, rules := range strata {
		if err := evalStratum(db, rules); err != nil {
			return err
		}
	}
	return nil
}

func evalStratum(db *DB, rules []Rule) error {
	// Naive-with-delta: iterate until no rule derives a new fact. The
	// delta optimization tracks which predicates changed last round and
	// skips rules whose positive body mentions none of them.
	changedPreds := make(map[string]bool)
	first := true
	for {
		roundChanged := make(map[string]bool)
		derivedAny := false
		for _, r := range rules {
			if !first && !ruleTouches(r, changedPreds) {
				continue
			}
			bindings := make(map[string]string)
			derived, err := applyRule(db, r, 0, bindings)
			if err != nil {
				return err
			}
			if derived {
				roundChanged[r.Head.Pred] = true
				derivedAny = true
			}
		}
		if !derivedAny {
			return nil
		}
		changedPreds = roundChanged
		first = false
	}
}

func ruleTouches(r Rule, changed map[string]bool) bool {
	for _, l := range r.Body {
		if l.Compare == "" && !l.Negated && changed[l.Atom.Pred] {
			return true
		}
	}
	return false
}

// applyRule enumerates bindings for body literals from index i onward,
// asserting head instantiations; returns whether any new fact was derived.
func applyRule(db *DB, r Rule, i int, bindings map[string]string) (bool, error) {
	if i == len(r.Body) {
		head, err := substituteAtom(r.Head, bindings)
		if err != nil {
			return false, err
		}
		return db.Assert(Fact{Pred: head.Pred, Args: groundArgs(head)}), nil
	}
	l := r.Body[i]
	if l.Compare != "" {
		ok, err := evalCompare(l, bindings)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		return applyRule(db, r, i+1, bindings)
	}
	if l.Negated {
		atom, err := substituteAtom(l.Atom, bindings)
		if err != nil {
			return false, err
		}
		if db.Holds(atom.Pred, groundArgs(atom)...) {
			return false, nil
		}
		return applyRule(db, r, i+1, bindings)
	}
	derived := false
	for _, fact := range db.Facts(l.Atom.Pred) {
		newBindings, ok := unify(l.Atom, fact, bindings)
		if !ok {
			continue
		}
		d, err := applyRule(db, r, i+1, newBindings)
		if err != nil {
			return false, err
		}
		derived = derived || d
	}
	return derived, nil
}

// unify matches an atom pattern against a ground fact under existing
// bindings, returning extended bindings.
func unify(pattern Atom, fact Fact, bindings map[string]string) (map[string]string, bool) {
	if len(pattern.Terms) != len(fact.Args) {
		return nil, false
	}
	out := bindings
	copied := false
	for i, t := range pattern.Terms {
		val := fact.Args[i]
		if !t.Var {
			if t.Value != val {
				return nil, false
			}
			continue
		}
		if t.Value == "_" {
			continue
		}
		if bound, ok := out[t.Value]; ok {
			if bound != val {
				return nil, false
			}
			continue
		}
		if !copied {
			cp := make(map[string]string, len(out)+1)
			for k, v := range out {
				cp[k] = v
			}
			out, copied = cp, true
		}
		out[t.Value] = val
	}
	return out, true
}

func substituteAtom(a Atom, bindings map[string]string) (Atom, error) {
	out := Atom{Pred: a.Pred, Terms: make([]Term, len(a.Terms))}
	for i, t := range a.Terms {
		if !t.Var {
			out.Terms[i] = t
			continue
		}
		v, ok := bindings[t.Value]
		if !ok {
			return Atom{}, fmt.Errorf("datalog: unbound variable %s in %s", t.Value, a)
		}
		out.Terms[i] = Const(v)
	}
	return out, nil
}

func groundArgs(a Atom) []string {
	out := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		out[i] = t.Value
	}
	return out
}

func evalCompare(l Literal, bindings map[string]string) (bool, error) {
	resolve := func(t Term) (string, error) {
		if !t.Var {
			return t.Value, nil
		}
		v, ok := bindings[t.Value]
		if !ok {
			return "", fmt.Errorf("datalog: unbound variable %s in comparison", t.Value)
		}
		return v, nil
	}
	ls, err := resolve(l.Left)
	if err != nil {
		return false, err
	}
	rs, err := resolve(l.Right)
	if err != nil {
		return false, err
	}
	ln, lerr := strconv.Atoi(ls)
	rn, rerr := strconv.Atoi(rs)
	numeric := lerr == nil && rerr == nil
	switch l.Compare {
	case OpEQ:
		return ls == rs, nil
	case OpNE:
		return ls != rs, nil
	}
	if !numeric {
		return false, fmt.Errorf("datalog: ordered comparison %s needs integers, got %q %q", l.Compare, ls, rs)
	}
	switch l.Compare {
	case OpLT:
		return ln < rn, nil
	case OpLE:
		return ln <= rn, nil
	case OpGT:
		return ln > rn, nil
	case OpGE:
		return ln >= rn, nil
	default:
		return false, fmt.Errorf("datalog: unknown comparison %q", l.Compare)
	}
}
