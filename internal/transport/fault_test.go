package transport

import (
	"bytes"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
)

func TestNetworkSendHookDropsAndMutates(t *testing.T) {
	n := NewNetwork(Config{Seed: 1})
	n.SetFault(func(from, to event.ReplicaID, payload []byte) ([]byte, bool) {
		if to == "B" {
			return nil, true // sever everything toward B
		}
		return payload[:2], false // truncate the rest in flight
	})
	n.Send("A", "B", []byte("hello"))
	n.Send("A", "C", []byte("hello"))
	msgs, err := n.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("delivered %d messages; want 1", len(msgs))
	}
	if !bytes.Equal(msgs[0].Payload, []byte("he")) {
		t.Fatalf("payload = %q; want truncated %q", msgs[0].Payload, "he")
	}
	delivered, dropped := n.Stats()
	if delivered != 1 || dropped != 1 {
		t.Fatalf("stats = (%d delivered, %d dropped); want (1, 1)", delivered, dropped)
	}

	// Clearing the hook restores normal delivery.
	n.SetFault(nil)
	n.Send("A", "B", []byte("again"))
	msgs, err = n.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !bytes.Equal(msgs[0].Payload, []byte("again")) {
		t.Fatalf("after clearing hook: %v", msgs)
	}
}

func TestTCPTransportSendHook(t *testing.T) {
	a, err := NewTCPTransport("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("B", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("B", b.Addr())

	drops := 0
	a.SetFault(func(from, to event.ReplicaID, payload []byte) ([]byte, bool) {
		if drops == 0 {
			drops++
			return nil, true
		}
		return payload[:3], false
	})
	// First send is dropped silently — Send still reports success.
	if err := a.Send("B", []byte("lost-message")); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	if err := a.Send("B", []byte("truncate-me")); err != nil {
		t.Fatal(err)
	}

	select {
	case <-b.Notify():
	case <-time.After(2 * time.Second):
		t.Fatal("no message arrived")
	}
	msg, ok := b.Recv()
	if !ok {
		t.Fatal("inbox empty after notify")
	}
	if !bytes.Equal(msg.Payload, []byte("tru")) {
		t.Fatalf("payload = %q; want truncated %q", msg.Payload, "tru")
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("dropped message was delivered")
	}
}
