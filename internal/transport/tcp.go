package transport

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"github.com/er-pi/erpi/internal/event"
)

// TCPTransport is a real socket transport: each replica listens on its own
// port; Send dials the destination and writes one JSON-framed message per
// line. Received messages are queued for Recv.
type TCPTransport struct {
	id       event.ReplicaID
	listener net.Listener

	mu     sync.Mutex
	peers  map[event.ReplicaID]string // replica -> address
	inbox  []Message
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	notify chan struct{}
	hook   SendHook
}

// NewTCPTransport starts a listener for replica id on addr
// ("127.0.0.1:0" picks a free port) and returns the transport.
func NewTCPTransport(id event.ReplicaID, addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCPTransport{
		id:       id,
		listener: ln,
		peers:    make(map[event.ReplicaID]string),
		conns:    make(map[net.Conn]struct{}),
		notify:   make(chan struct{}, 1),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.listener.Addr().String() }

// AddPeer registers the address of another replica.
func (t *TCPTransport) AddPeer(id event.ReplicaID, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = addr
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
		_ = conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for scanner.Scan() {
		var msg Message
		if err := json.Unmarshal(scanner.Bytes(), &msg); err != nil {
			continue // malformed frame: drop
		}
		t.mu.Lock()
		t.inbox = append(t.inbox, msg)
		t.mu.Unlock()
		select {
		case t.notify <- struct{}{}:
		default:
		}
	}
}

// SetFault installs (or, with nil, removes) a fault-injection hook applied
// to every subsequent Send.
func (t *TCPTransport) SetFault(h SendHook) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = h
}

// Send dials the destination replica and delivers one message. A fault
// hook may mutate the payload or drop the message entirely (a drop is
// silent, as on a lossy network: Send reports success).
func (t *TCPTransport) Send(to event.ReplicaID, payload []byte) error {
	t.mu.Lock()
	addr, ok := t.peers[to]
	hook := t.hook
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: unknown peer %s", to)
	}
	if hook != nil {
		out, drop := hook(t.id, to, payload)
		if drop {
			return nil
		}
		payload = out
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", to, err)
	}
	defer conn.Close()
	frame, err := json.Marshal(Message{From: t.id, To: to, Payload: payload})
	if err != nil {
		return err
	}
	frame = append(frame, '\n')
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// Recv pops the oldest queued message, reporting false when the inbox is
// empty.
func (t *TCPTransport) Recv() (Message, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.inbox) == 0 {
		return Message{}, false
	}
	msg := t.inbox[0]
	t.inbox = t.inbox[1:]
	return msg, true
}

// Notify returns a channel that receives a token whenever a message
// arrives; use it to wait without polling.
func (t *TCPTransport) Notify() <-chan struct{} { return t.notify }

// Close stops the listener and all connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	for conn := range t.conns {
		_ = conn.Close()
	}
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}
