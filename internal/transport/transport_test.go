package transport

import (
	"reflect"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
)

func TestNetworkDeliversInOrderWithoutJitter(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, MinDelay: 1, MaxDelay: 1})
	n.Send("A", "B", []byte("m1"))
	n.Send("A", "B", []byte("m2"))
	got := n.Tick()
	if len(got) != 2 || string(got[0].Payload) != "m1" || string(got[1].Payload) != "m2" {
		t.Fatalf("Tick = %v", got)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("sequence numbers wrong: %d %d", got[0].Seq, got[1].Seq)
	}
}

func TestNetworkReordersWithJitter(t *testing.T) {
	// With a wide delay window, some seed must reorder two messages.
	reordered := false
	for seed := int64(0); seed < 20; seed++ {
		n := NewNetwork(Config{Seed: seed, MinDelay: 1, MaxDelay: 10})
		n.Send("A", "B", []byte("first"))
		n.Send("A", "B", []byte("second"))
		msgs, err := n.Drain(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 2 {
			t.Fatalf("lost messages: %v", msgs)
		}
		if string(msgs[0].Payload) == "second" {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Fatal("no seed reordered messages — jitter is broken")
	}
}

func TestNetworkDeterministicBySeed(t *testing.T) {
	run := func() []string {
		n := NewNetwork(Config{Seed: 42, MinDelay: 1, MaxDelay: 5})
		for _, p := range []string{"a", "b", "c", "d"} {
			n.Send("A", "B", []byte(p))
		}
		msgs, err := n.Drain(100)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(msgs))
		for i, m := range msgs {
			out[i] = string(m.Payload)
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same seed must give same delivery order")
	}
}

func TestNetworkDrop(t *testing.T) {
	n := NewNetwork(Config{Seed: 7, MinDelay: 1, MaxDelay: 1, DropProb: 1.0})
	n.Send("A", "B", []byte("doomed"))
	msgs, err := n.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("DropProb=1 must drop everything, delivered %v", msgs)
	}
	delivered, dropped := n.Stats()
	if delivered != 0 || dropped != 1 {
		t.Fatalf("Stats = %d delivered %d dropped", delivered, dropped)
	}
}

func TestNetworkPartitionAndHeal(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, MinDelay: 1, MaxDelay: 1})
	n.Partition("A", "B")
	n.Send("A", "B", []byte("blocked"))
	n.Send("B", "A", []byte("blocked-too")) // partitions are bidirectional
	n.Send("A", "C", []byte("fine"))
	msgs, err := n.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "fine" {
		t.Fatalf("partition leak: %v", msgs)
	}
	n.Heal("A", "B")
	n.Send("A", "B", []byte("after-heal"))
	msgs, err = n.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Payload) != "after-heal" {
		t.Fatalf("heal failed: %v", msgs)
	}
}

func TestNetworkDelayFactorSlowsReplica(t *testing.T) {
	// Replica "pi" has a 5x delay factor (the Raspberry Pi stand-in): a
	// message to it arrives later than one to a fast replica sent at the
	// same instant.
	n := NewNetwork(Config{
		Seed:        1,
		MinDelay:    2,
		MaxDelay:    2,
		DelayFactor: map[event.ReplicaID]int{"pi": 5},
	})
	n.Send("A", "pi", []byte("slow"))
	n.Send("A", "B", []byte("fast"))
	var order []string
	for i := 0; i < 20 && len(order) < 2; i++ {
		for _, m := range n.Tick() {
			order = append(order, string(m.Payload))
		}
	}
	if !reflect.DeepEqual(order, []string{"fast", "slow"}) {
		t.Fatalf("delivery order = %v, want [fast slow]", order)
	}
}

func TestNetworkDrainTimeout(t *testing.T) {
	n := NewNetwork(Config{Seed: 1, MinDelay: 100, MaxDelay: 100})
	n.Send("A", "B", []byte("far-future"))
	if _, err := n.Drain(5); err == nil {
		t.Fatal("Drain must report messages still in flight")
	}
	if n.Pending() != 1 {
		t.Fatalf("Pending = %d", n.Pending())
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	a, err := NewTCPTransport("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("B", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("B", b.Addr())
	b.AddPeer("A", a.Addr())

	if err := a.Send("B", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Notify():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for message")
	}
	msg, ok := b.Recv()
	if !ok {
		t.Fatal("inbox empty after notify")
	}
	if msg.From != "A" || msg.To != "B" || string(msg.Payload) != "hello" {
		t.Fatalf("message = %+v", msg)
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("inbox must be empty")
	}
	if err := a.Send("Z", nil); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
}

func TestTCPTransportMultipleMessagesOrdered(t *testing.T) {
	a, err := NewTCPTransport("A", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPTransport("B", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("B", b.Addr())
	const count = 10
	for i := 0; i < count; i++ {
		if err := a.Send("B", []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	deadline := time.After(3 * time.Second)
	for len(got) < count {
		msg, ok := b.Recv()
		if ok {
			got = append(got, string(msg.Payload))
			continue
		}
		select {
		case <-b.Notify():
		case <-deadline:
			t.Fatalf("received %d of %d messages", len(got), count)
		}
	}
	if len(got) != count {
		t.Fatalf("got %d messages", len(got))
	}
}
