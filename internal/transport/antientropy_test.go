package transport

import (
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/subjects/roshi"
)

// TestAntiEntropyOverLossyNetwork is a failure-injection integration test:
// three Roshi replicas gossip their states over the simulated network with
// message loss, a partition, and heterogeneous delays (the Raspberry Pi
// stand-in). Despite drops and the partition, repeated anti-entropy rounds
// after healing must converge all replicas — the eventual-consistency
// guarantee the subjects build on.
func TestAntiEntropyOverLossyNetwork(t *testing.T) {
	stores := map[event.ReplicaID]*roshi.Store{
		"A":  roshi.New(roshi.Flags{}),
		"B":  roshi.New(roshi.Flags{}),
		"pi": roshi.New(roshi.Flags{}),
	}
	ids := []event.ReplicaID{"A", "B", "pi"}

	net := NewNetwork(Config{
		Seed:        11,
		MinDelay:    1,
		MaxDelay:    4,
		DropProb:    0.3,
		DelayFactor: map[event.ReplicaID]int{"pi": 3},
	})

	// Divergent writes while A—B is partitioned.
	net.Partition("A", "B")
	stores["A"].Insert("k", "fromA", 5)
	stores["B"].Insert("k", "fromB", 6)
	stores["pi"].Insert("k", "fromPi", 4)
	stores["B"].Delete("k", "fromPi", 7)

	gossip := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for _, from := range ids {
				payload, err := stores[from].SyncPayload()
				if err != nil {
					t.Fatal(err)
				}
				for _, to := range ids {
					if from != to {
						net.Send(from, to, payload)
					}
				}
			}
			msgs, err := net.Drain(1000)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				if err := stores[m.To].ApplySync(m.Payload); err != nil {
					t.Fatalf("sync %s->%s: %v", m.From, m.To, err)
				}
			}
		}
	}

	// Gossip under loss + partition: A and B must stay ignorant of each
	// other's direct traffic, but can converge via pi once enough rounds
	// survive the 30% loss.
	gossip(3)

	// Heal, stop losing messages, and finish anti-entropy over a reliable
	// network.
	net.Heal("A", "B")
	net = NewNetwork(Config{Seed: 12, MinDelay: 1, MaxDelay: 1})
	gossip(2)

	want := stores["A"].Fingerprint()
	for _, id := range ids {
		if got := stores[id].Fingerprint(); got != want {
			t.Fatalf("replica %s diverged: %q vs %q", id, got, want)
		}
	}
	// The winning record is the delete at the highest score.
	rows := stores["A"].Select("k", true)
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	delivered, dropped := net.Stats()
	if delivered == 0 {
		t.Fatal("no messages delivered after heal")
	}
	_ = dropped
}
