// Package transport carries synchronization messages between replicas.
//
// Two implementations share one interface: Network, a deterministic
// simulated network with seeded reordering, delay, loss, and partitions
// (standing in for the paper's physical three-machine testbed), and
// TCPTransport, a real socket transport used by the live-replay integration
// tests and examples.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/er-pi/erpi/internal/event"
)

// Message is one replica-to-replica payload.
type Message struct {
	From    event.ReplicaID `json:"from"`
	To      event.ReplicaID `json:"to"`
	Payload []byte          `json:"payload"`
	// Seq is a per-sender sequence number assigned by the transport.
	Seq uint64 `json:"seq"`
}

// Config tunes the simulated network.
type Config struct {
	// Seed drives all nondeterminism; equal seeds give equal behaviour.
	Seed int64
	// MinDelay and MaxDelay bound per-message delivery delay in ticks.
	// MaxDelay > MinDelay introduces reordering.
	MinDelay, MaxDelay int
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// DelayFactor scales delays per receiving replica, modelling
	// heterogeneous node speeds (the paper's Raspberry Pi third replica).
	DelayFactor map[event.ReplicaID]int
}

// SendHook is a fault-injection seam consulted on every outgoing message:
// it may mutate the payload (e.g. truncate it in flight) or report drop to
// discard the message as silently as a lossy link would. The fault package
// installs its scheduled transport faults through this hook.
type SendHook func(from, to event.ReplicaID, payload []byte) (out []byte, drop bool)

// Network is a deterministic discrete-time simulated network. Send enqueues
// a message with a seeded random delay; Tick advances time one step and
// returns the messages due for delivery. Partitions block links until
// healed.
type Network struct {
	mu          sync.Mutex
	cfg         Config
	rng         *rand.Rand
	now         int
	inFlight    []*pendingMessage
	partitioned map[linkKey]bool
	nextSeq     map[event.ReplicaID]uint64
	dropped     int
	delivered   int
	hook        SendHook
}

type pendingMessage struct {
	msg       Message
	deliverAt int
	order     int // FIFO tie-break for equal delivery times
}

type linkKey struct {
	a, b event.ReplicaID
}

func link(a, b event.ReplicaID) linkKey {
	if b < a {
		a, b = b, a
	}
	return linkKey{a: a, b: b}
}

// NewNetwork builds a simulated network.
func NewNetwork(cfg Config) *Network {
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	return &Network{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		partitioned: make(map[linkKey]bool),
		nextSeq:     make(map[event.ReplicaID]uint64),
	}
}

// Send enqueues a message. Messages on partitioned links and randomly
// dropped messages vanish (the sender cannot tell). Returns the assigned
// sequence number.
func (n *Network) Send(from, to event.ReplicaID, payload []byte) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextSeq[from]++
	seq := n.nextSeq[from]
	if n.partitioned[link(from, to)] {
		n.dropped++
		return seq
	}
	if n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb {
		n.dropped++
		return seq
	}
	if n.hook != nil {
		out, drop := n.hook(from, to, payload)
		if drop {
			n.dropped++
			return seq
		}
		payload = out
	}
	delay := n.cfg.MinDelay
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay += n.rng.Intn(n.cfg.MaxDelay - n.cfg.MinDelay + 1)
	}
	if f, ok := n.cfg.DelayFactor[to]; ok && f > 1 {
		delay *= f
	}
	cp := append([]byte(nil), payload...)
	n.inFlight = append(n.inFlight, &pendingMessage{
		msg:       Message{From: from, To: to, Payload: cp, Seq: seq},
		deliverAt: n.now + delay,
		order:     len(n.inFlight),
	})
	return seq
}

// Tick advances simulated time one step and returns the messages delivered
// this step, in deterministic order.
func (n *Network) Tick() []Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now++
	var due []*pendingMessage
	var rest []*pendingMessage
	for _, p := range n.inFlight {
		if p.deliverAt <= n.now {
			due = append(due, p)
		} else {
			rest = append(rest, p)
		}
	}
	n.inFlight = rest
	sort.Slice(due, func(i, j int) bool { return due[i].order < due[j].order })
	out := make([]Message, len(due))
	for i, p := range due {
		out[i] = p.msg
	}
	n.delivered += len(out)
	return out
}

// Drain ticks until no messages remain in flight, returning everything
// delivered. maxTicks guards against infinite loops.
func (n *Network) Drain(maxTicks int) ([]Message, error) {
	var out []Message
	for i := 0; i < maxTicks; i++ {
		out = append(out, n.Tick()...)
		n.mu.Lock()
		empty := len(n.inFlight) == 0
		n.mu.Unlock()
		if empty {
			return out, nil
		}
	}
	return out, fmt.Errorf("transport: %d messages still in flight after %d ticks", n.Pending(), maxTicks)
}

// SetFault installs (or, with nil, removes) a fault-injection hook applied
// to every subsequent Send.
func (n *Network) SetFault(h SendHook) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.hook = h
}

// Partition severs the link between two replicas (both directions).
func (n *Network) Partition(a, b event.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[link(a, b)] = true
}

// Heal restores a severed link.
func (n *Network) Heal(a, b event.ReplicaID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, link(a, b))
}

// Pending returns the number of in-flight messages.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.inFlight)
}

// Stats returns (delivered, dropped) message counts.
func (n *Network) Stats() (delivered, dropped int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}
