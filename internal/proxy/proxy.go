// Package proxy provides ER-π's runtime interception layer (paper §4.1):
// RDL calls made by application code pass through an Interceptor that, in
// record mode, extracts them as distributed events and, in replay mode,
// blocks each call until the active interleaving schedules it.
//
// The interceptor plays the role of the paper's language-specific proxies
// (go/ast rewriting, monkey patching, dynamic proxies); the companion
// package astproxy generates the call-site rewrites that route an existing
// code base through it.
package proxy

import (
	"context"
	"fmt"
	"sync"

	"github.com/er-pi/erpi/internal/event"
)

// Mode selects interceptor behaviour.
type Mode int

// Interceptor modes.
const (
	// Passthrough executes calls directly (ER-π disabled).
	Passthrough Mode = iota + 1
	// Record executes calls and extracts them as events.
	Record
	// Replay blocks each call until the active interleaving schedules it.
	Replay
)

// TurnGate orders event execution during replay. Implementations: LocalGate
// (in-process) and the lockserver-backed distributed sequencer adapter.
type TurnGate interface {
	// WaitTurn blocks until the global schedule reaches the given turn.
	WaitTurn(ctx context.Context, turn int) error
	// Advance hands the schedule to the next turn.
	Advance() error
}

// Interceptor routes RDL calls for one test session. It is shared by all
// replicas of the process (each replica passes its own ReplicaID).
type Interceptor struct {
	mu       sync.Mutex
	mode     Mode
	recorded []event.Event
	// schedule maps event ID -> turn in the active interleaving.
	schedule map[event.ID]int
	// callSeq counts RDL calls per replica during replay, pairing the i-th
	// call at replica R with the i-th recorded event at R.
	callSeq map[event.ReplicaID]int
	// byReplica indexes recorded event IDs per replica in record order.
	byReplica map[event.ReplicaID][]event.ID
	gate      TurnGate
}

// New returns a passthrough interceptor.
func New() *Interceptor {
	return &Interceptor{mode: Passthrough}
}

// Mode returns the current mode.
func (i *Interceptor) Mode() Mode {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.mode
}

// StartRecording clears prior state and enters record mode.
func (i *Interceptor) StartRecording() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.mode = Record
	i.recorded = nil
}

// StopRecording leaves record mode and returns the extracted events.
func (i *Interceptor) StopRecording() []event.Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.mode = Passthrough
	out := make([]event.Event, len(i.recorded))
	copy(out, i.recorded)
	return out
}

// StartReplay enters replay mode for one interleaving: events holds the
// recorded log, order the scheduled interleaving, gate the turn
// coordinator.
func (i *Interceptor) StartReplay(log *event.Log, order []event.ID, gate TurnGate) error {
	if len(order) != log.Len() {
		return fmt.Errorf("proxy: interleaving has %d events, log has %d", len(order), log.Len())
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.mode = Replay
	i.gate = gate
	i.schedule = make(map[event.ID]int, len(order))
	for turn, id := range order {
		i.schedule[id] = turn
	}
	i.callSeq = make(map[event.ReplicaID]int)
	i.byReplica = make(map[event.ReplicaID][]event.ID)
	for _, ev := range log.Events() {
		i.byReplica[ev.Replica] = append(i.byReplica[ev.Replica], ev.ID)
	}
	return nil
}

// StopReplay returns to passthrough.
func (i *Interceptor) StopReplay() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.mode = Passthrough
	i.gate = nil
}

// Call routes one RDL invocation. ev describes the call (ID is ignored in
// record mode and inferred in replay mode); fn performs the actual library
// call.
func (i *Interceptor) Call(ctx context.Context, ev event.Event, fn func() error) error {
	i.mu.Lock()
	mode := i.mode
	switch mode {
	case Record:
		ev.ID = event.ID(len(i.recorded))
		if ev.Lamport == 0 {
			ev.Lamport = uint64(len(i.recorded) + 1)
		}
		if err := ev.Validate(); err != nil {
			i.mu.Unlock()
			return fmt.Errorf("proxy: record: %w", err)
		}
		i.recorded = append(i.recorded, ev)
		i.mu.Unlock()
		return fn()
	case Replay:
		ids := i.byReplica[ev.Replica]
		seq := i.callSeq[ev.Replica]
		if seq >= len(ids) {
			i.mu.Unlock()
			return fmt.Errorf("proxy: replica %s made more calls (%d) than recorded", ev.Replica, seq+1)
		}
		i.callSeq[ev.Replica] = seq + 1
		id := ids[seq]
		turn, ok := i.schedule[id]
		gate := i.gate
		i.mu.Unlock()
		if !ok {
			return fmt.Errorf("proxy: event %d missing from schedule", id)
		}
		if err := gate.WaitTurn(ctx, turn); err != nil {
			return fmt.Errorf("proxy: waiting for turn %d: %w", turn, err)
		}
		if err := fn(); err != nil {
			return err
		}
		return gate.Advance()
	default:
		i.mu.Unlock()
		return fn()
	}
}

// CallScheduled executes fn as the given recorded event during replay,
// waiting for that event's scheduled turn explicitly. This is the replay
// driver's entry point (paper §4.3: "ER-π invokes interleaving events via
// RDL proxies"): unlike Call, which pairs the i-th application call with
// the i-th recorded event, CallScheduled can realize interleavings that
// reorder a replica's own events.
func (i *Interceptor) CallScheduled(ctx context.Context, id event.ID, fn func() error) error {
	i.mu.Lock()
	if i.mode != Replay {
		i.mu.Unlock()
		return fmt.Errorf("proxy: CallScheduled outside replay mode")
	}
	turn, ok := i.schedule[id]
	gate := i.gate
	i.mu.Unlock()
	if !ok {
		return fmt.Errorf("proxy: event %d missing from schedule", id)
	}
	if err := gate.WaitTurn(ctx, turn); err != nil {
		return fmt.Errorf("proxy: waiting for turn %d: %w", turn, err)
	}
	if err := fn(); err != nil {
		return err
	}
	return gate.Advance()
}

// Recorded returns a snapshot of the events recorded so far.
func (i *Interceptor) Recorded() []event.Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]event.Event, len(i.recorded))
	copy(out, i.recorded)
	return out
}

// LocalGate is an in-process TurnGate over a condition variable.
type LocalGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	turn int
}

var _ TurnGate = (*LocalGate)(nil)

// NewLocalGate returns a gate at turn 0.
func NewLocalGate() *LocalGate {
	g := &LocalGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// WaitTurn implements TurnGate.
func (g *LocalGate) WaitTurn(ctx context.Context, turn int) error {
	// Wake all waiters when the context dies so they can observe it.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.turn != turn {
		if err := ctx.Err(); err != nil {
			return err
		}
		if g.turn > turn {
			return fmt.Errorf("proxy: turn %d already passed (at %d)", turn, g.turn)
		}
		g.cond.Wait()
	}
	return nil
}

// Advance implements TurnGate.
func (g *LocalGate) Advance() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.turn++
	g.cond.Broadcast()
	return nil
}

// Reset rewinds the gate to turn 0 for the next interleaving.
func (g *LocalGate) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.turn = 0
	g.cond.Broadcast()
}
