package proxy

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/lockserver"
)

func startLockServer(t *testing.T) (addr string, done func()) {
	t.Helper()
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, func() { _ = srv.Close() }
}

func TestDistPoolSessionKeys(t *testing.T) {
	addr, done := startLockServer(t)
	defer done()
	p := NewDistPool(addr, "live", 3, time.Second)
	defer p.Close()

	if got := p.Session().Key(); got != "live/sess/3/1" {
		t.Fatalf("first session key = %q; want live/sess/3/1", got)
	}
	if got := p.Session().Key(); got != "live/sess/3/2" {
		t.Fatalf("second session key = %q; want live/sess/3/2", got)
	}
}

// A cancelled session's turn progress must be invisible to the next
// epoch: the new session's counter starts at 0 no matter how far the old
// one got, and the old counter can never satisfy the new session's waits.
func TestDistSessionEpochFencing(t *testing.T) {
	addr, done := startLockServer(t)
	defer done()
	p := NewDistPool(addr, "live", 0, time.Second)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s1 := p.Session()
	g1, err := s1.Gate("A")
	if err != nil {
		t.Fatal(err)
	}
	// Drive the stale session's counter to 2.
	for turn := 0; turn < 2; turn++ {
		if err := g1.WaitTurn(ctx, turn); err != nil {
			t.Fatal(err)
		}
		if err := g1.Advance(); err != nil {
			t.Fatal(err)
		}
	}

	s2 := p.Session()
	g2, err := s2.Gate("A")
	if err != nil {
		t.Fatal(err)
	}
	// Fresh epoch: turn 0 is ready with no writes at all.
	if err := g2.WaitTurn(ctx, 0); err != nil {
		t.Fatalf("fresh epoch's turn 0: %v", err)
	}
	if err := g2.Advance(); err != nil {
		t.Fatal(err)
	}
	// The stale epoch is at 2; the fresh one is at 1. Turn 2 must NOT be
	// satisfied by the old counter.
	short, cancelShort := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelShort()
	if err := g2.WaitTurn(short, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitTurn(2) against a fresh epoch = %v; want deadline (stale counter must not leak)", err)
	}
	_ = s1.Close()
	_ = s2.Close()
}

// Closing a session releases a still-held turn mutex immediately instead
// of leaving it to TTL expiry, and drops the session's turn counter.
func TestDistSessionCloseReleasesState(t *testing.T) {
	addr, done := startLockServer(t)
	defer done()
	p := NewDistPool(addr, "live", 0, time.Minute)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	s := p.Session()
	g, err := s.Gate("A")
	if err != nil {
		t.Fatal(err)
	}
	// WaitTurn acquires the session mutex; a failed apply would exit here
	// without Advance, i.e. still holding it.
	if err := g.WaitTurn(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := lockserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ok, err := c.SetNX(s.Key()+":mutex", "rival", time.Second); err != nil || !ok {
		t.Fatalf("mutex still held after session Close (SetNX = %v, %v)", ok, err)
	}
	if _, found, _ := c.Get(s.Key() + ":turn"); found {
		t.Fatal("turn counter survived session Close")
	}
}

// Connections are per replica and reused across epochs, not re-dialed per
// session: a parked blocking wait owns its connection, so replicas must
// not share one, but epochs safely can.
func TestDistPoolReusesClientsAcrossEpochs(t *testing.T) {
	addr, done := startLockServer(t)
	defer done()
	p := NewDistPool(addr, "live", 0, time.Second)
	defer p.Close()

	for i := 0; i < 3; i++ {
		s := p.Session()
		for _, rep := range []event.ReplicaID{"A", "B"} {
			if _, err := s.Gate(rep); err != nil {
				t.Fatal(err)
			}
		}
		_ = s.Close()
	}
	p.mu.Lock()
	n := len(p.clients)
	p.mu.Unlock()
	if n != 2 {
		t.Fatalf("pool holds %d clients after 3 epochs x 2 replicas; want 2", n)
	}
}
