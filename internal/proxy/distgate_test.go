package proxy

import (
	"context"
	"sync"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/lockserver"
)

// TestDistGateEndToEnd is the distributed-replay integration test: three
// replica goroutines, each with its own lock-server connection, replay a
// scheduled interleaving; the distributed sequencer + mutex enforce the
// global order exactly as §4.3 describes.
func TestDistGateEndToEnd(t *testing.T) {
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	log, err := event.NewLog([]event.Event{
		{Kind: event.Update, Replica: "A", Op: "a1"},
		{Kind: event.Update, Replica: "B", Op: "b1"},
		{Kind: event.Update, Replica: "C", Op: "c1"},
		{Kind: event.Update, Replica: "A", Op: "a2"},
		{Kind: event.Update, Replica: "B", Op: "b2"},
		{Kind: event.Update, Replica: "C", Op: "c2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Schedule: all of C first, then B, then A.
	order := []event.ID{2, 5, 1, 4, 0, 3}

	// The coordinator resets the shared turn counter.
	coord, err := lockserver.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := lockserver.NewSequencer(coord, "sess:turn", 1).Reset(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var executed []string

	// Each replica connects separately and replays through its own gate —
	// the distributed analogue of the in-process LocalGate test.
	replicaOps := map[event.ReplicaID][]string{
		"A": {"a1", "a2"},
		"B": {"b1", "b2"},
		"C": {"c1", "c2"},
	}
	gates := make(map[event.ReplicaID]*DistGate)
	clients := make([]*lockserver.Client, 0, len(replicaOps))
	for rep := range replicaOps {
		c, err := lockserver.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		gates[rep] = NewDistGate(c, "sess", string(rep))
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()

	// One interceptor per replica process, as in a real deployment: each
	// shares the same log + schedule but coordinates through its own gate.
	interceptors := make(map[event.ReplicaID]*Interceptor)
	for rep, gate := range gates {
		i := New()
		if err := i.StartReplay(log, order, gate); err != nil {
			t.Fatal(err)
		}
		interceptors[rep] = i
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(replicaOps))
	for rep, ops := range replicaOps {
		wg.Add(1)
		go func(rep event.ReplicaID, ops []string) {
			defer wg.Done()
			i := interceptors[rep]
			for _, op := range ops {
				err := i.Call(context.Background(), event.Event{Kind: event.Update, Replica: rep, Op: op}, func() error {
					mu.Lock()
					executed = append(executed, op)
					mu.Unlock()
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(rep, ops)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	want := []string{"c1", "c2", "b1", "b2", "a1", "a2"}
	if len(executed) != len(want) {
		t.Fatalf("executed %v", executed)
	}
	for i := range want {
		if executed[i] != want[i] {
			t.Fatalf("distributed replay order %v, want %v", executed, want)
		}
	}
}
