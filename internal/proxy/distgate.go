package proxy

import (
	"context"
	"time"

	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/telemetry"
)

// DistGate adapts the lock server's distributed mutex + sequencer into a
// TurnGate, giving replay ordering across OS processes — the paper's
// "distributed lock … deploys a mutex with a shared key managed by a Redis
// server" (§4.3).
//
// The mutex renews its lease in the background while held, so a turn that
// outlives the lock TTL keeps its exclusivity; if the lease is lost anyway
// (e.g. a lock-server wipe), Advance surfaces lockserver.ErrLeaseLost
// instead of silently double-holding.
type DistGate struct {
	seq     *lockserver.Sequencer
	mutex   *lockserver.DMutex
	turnKey string
	// pipelined folds Advance's unlock + increment into one round trip.
	// Off by default: the pipelined pair is not retried on transport
	// errors (INCR is not idempotent), so it is only safe for callers that
	// abandon the whole session on error — the live pool's per-epoch key
	// namespaces make that abandonment free.
	pipelined bool
}

var _ TurnGate = (*DistGate)(nil)

// NewDistGate builds a distributed gate for one holder. key namespaces the
// session; token must be unique per holder (e.g. the replica ID).
func NewDistGate(client *lockserver.Client, key, token string) *DistGate {
	return NewDistGateTTL(client, key, token, 30*time.Second)
}

// NewDistGateTTL is NewDistGate with an explicit lock TTL (tests use short
// TTLs to exercise lease expiry quickly).
func NewDistGateTTL(client *lockserver.Client, key, token string, ttl time.Duration) *DistGate {
	m := lockserver.NewDMutex(client, key+":mutex", token, ttl, time.Millisecond)
	m.AutoRenew(0)
	return &DistGate{
		seq:     lockserver.NewSequencer(client, key+":turn", time.Millisecond),
		mutex:   m,
		turnKey: key + ":turn",
	}
}

// SetMetrics attaches a latency histogram recording time blocked in the
// sequencer's WaitTurn. Call before use; nil records nothing.
func (g *DistGate) SetMetrics(turnWait *telemetry.Histogram) {
	g.seq.SetMetrics(turnWait)
}

// SetBlocking toggles the sequencer's server-side blocking wait (on by
// default; off forces 1ms polling).
func (g *DistGate) SetBlocking(on bool) {
	g.seq.SetBlocking(on)
}

// EnablePipelinedAdvance makes Advance release the mutex and bump the
// counter in one round trip. Only safe when the caller abandons the whole
// session on an Advance error (see DistGate.pipelined).
func (g *DistGate) EnablePipelinedAdvance() {
	g.pipelined = true
}

// Reset rewinds the shared turn counter (call once per interleaving, from
// the coordinator only).
func (g *DistGate) Reset() error { return g.seq.Reset() }

// WaitTurn implements TurnGate: wait for the shared counter, then take the
// mutex so the turn's critical section is exclusive even against stragglers.
func (g *DistGate) WaitTurn(ctx context.Context, turn int) error {
	if err := g.seq.WaitTurn(ctx, int64(turn)); err != nil {
		return err
	}
	return g.mutex.Lock(ctx)
}

// Advance implements TurnGate: release the mutex and bump the counter. A
// lease lost mid-turn comes back wrapping lockserver.ErrLeaseLost.
func (g *DistGate) Advance() error {
	if g.pipelined {
		_, err := g.mutex.UnlockAdvance(g.turnKey)
		return err
	}
	if err := g.mutex.Unlock(); err != nil {
		return err
	}
	_, err := g.seq.Advance()
	return err
}

// Close releases the gate's distributed state best-effort: renewal is
// stopped and a still-held mutex is freed instead of lingering until TTL
// expiry. Safe to call whether or not the mutex is held.
func (g *DistGate) Close() error {
	g.mutex.Abandon()
	return nil
}
