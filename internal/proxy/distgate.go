package proxy

import (
	"context"
	"time"

	"github.com/er-pi/erpi/internal/lockserver"
)

// DistGate adapts the lock server's distributed mutex + sequencer into a
// TurnGate, giving replay ordering across OS processes — the paper's
// "distributed lock … deploys a mutex with a shared key managed by a Redis
// server" (§4.3).
//
// The mutex renews its lease in the background while held, so a turn that
// outlives the lock TTL keeps its exclusivity; if the lease is lost anyway
// (e.g. a lock-server wipe), Advance surfaces lockserver.ErrLeaseLost
// instead of silently double-holding.
type DistGate struct {
	seq   *lockserver.Sequencer
	mutex *lockserver.DMutex
}

var _ TurnGate = (*DistGate)(nil)

// NewDistGate builds a distributed gate for one holder. key namespaces the
// session; token must be unique per holder (e.g. the replica ID).
func NewDistGate(client *lockserver.Client, key, token string) *DistGate {
	return NewDistGateTTL(client, key, token, 30*time.Second)
}

// NewDistGateTTL is NewDistGate with an explicit lock TTL (tests use short
// TTLs to exercise lease expiry quickly).
func NewDistGateTTL(client *lockserver.Client, key, token string, ttl time.Duration) *DistGate {
	m := lockserver.NewDMutex(client, key+":mutex", token, ttl, time.Millisecond)
	m.AutoRenew(0)
	return &DistGate{
		seq:   lockserver.NewSequencer(client, key+":turn", time.Millisecond),
		mutex: m,
	}
}

// Reset rewinds the shared turn counter (call once per interleaving, from
// the coordinator only).
func (g *DistGate) Reset() error { return g.seq.Reset() }

// WaitTurn implements TurnGate: wait for the shared counter, then take the
// mutex so the turn's critical section is exclusive even against stragglers.
func (g *DistGate) WaitTurn(ctx context.Context, turn int) error {
	if err := g.seq.WaitTurn(ctx, int64(turn)); err != nil {
		return err
	}
	return g.mutex.Lock(ctx)
}

// Advance implements TurnGate: release the mutex and bump the counter. A
// lease lost mid-turn comes back wrapping lockserver.ErrLeaseLost.
func (g *DistGate) Advance() error {
	if err := g.mutex.Unlock(); err != nil {
		return err
	}
	_, err := g.seq.Advance()
	return err
}
