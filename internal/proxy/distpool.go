package proxy

import (
	"fmt"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/telemetry"
)

// DistPool owns one live worker's lock-server connections and mints
// epoch-fenced gate sessions for it. Each session namespaces its keys as
// <base>/sess/<worker>/<epoch>, so a stale WaitTurn or Advance from a
// cancelled session lands on keys no later session will ever read: the
// epoch counter only moves forward, and a fresh epoch's keys start absent
// (missing counter = 0), which is exactly the sequencer's reset state.
// That fencing is also what makes the pipelined, non-retried Advance
// safe — an ambiguous failure abandons the epoch, and any stray increment
// it left behind is invisible to the next one.
//
// Clients are per replica and lazily dialed, then reused across epochs: a
// blocking WAITGE parks its whole connection, so replicas must not share
// one (they would serialize behind each other's waits).
type DistPool struct {
	addr   string
	base   string
	worker int
	ttl    time.Duration

	turnWait *telemetry.Histogram
	noBlock  bool
	// hook is installed on every dialed client (fault injection).
	hook lockserver.FaultHook

	mu      sync.Mutex
	clients map[event.ReplicaID]*lockserver.Client
	epoch   int
}

// NewDistPool builds a gate-session factory for one live worker against
// the lock server at addr. base roots the key namespace (e.g. "live");
// ttl is the per-turn mutex lease.
func NewDistPool(addr, base string, worker int, ttl time.Duration) *DistPool {
	return &DistPool{
		addr:    addr,
		base:    base,
		worker:  worker,
		ttl:     ttl,
		clients: make(map[event.ReplicaID]*lockserver.Client),
	}
}

// SetTurnWaitMetrics attaches a histogram recording sequencer turn waits
// for every gate this pool mints. Call before Session.
func (p *DistPool) SetTurnWaitMetrics(h *telemetry.Histogram) {
	p.turnWait = h
}

// DisableBlocking forces all minted gates onto the 1ms polling path (the
// benchmark baseline). Call before Session.
func (p *DistPool) DisableBlocking() {
	p.noBlock = true
}

// SetFaultHook installs a fault-injection hook on every client the pool
// has dialed or will dial. Call before Session for full coverage.
func (p *DistPool) SetFaultHook(h lockserver.FaultHook) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hook = h
	for _, c := range p.clients {
		c.SetFaultHook(h)
	}
}

func (p *DistPool) clientFor(rep event.ReplicaID) (*lockserver.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c, ok := p.clients[rep]; ok {
		return c, nil
	}
	c, err := lockserver.Dial(p.addr)
	if err != nil {
		return nil, err
	}
	if p.hook != nil {
		c.SetFaultHook(p.hook)
	}
	p.clients[rep] = c
	return c, nil
}

// anyClient returns one already-dialed client, or nil.
func (p *DistPool) anyClient() *lockserver.Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.clients {
		return c
	}
	return nil
}

// Session mints the next epoch's gate session. Each call advances the
// worker's epoch, fencing off everything the previous session might still
// do.
func (p *DistPool) Session() *DistSession {
	p.mu.Lock()
	p.epoch++
	epoch := p.epoch
	p.mu.Unlock()
	return &DistSession{
		pool: p,
		key:  fmt.Sprintf("%s/sess/%d/%d", p.base, p.worker, epoch),
	}
}

// Close drops the pool's connections. Sessions minted earlier must be
// closed first.
func (p *DistPool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	for rep, c := range p.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(p.clients, rep)
	}
	return first
}

// DistSession is one epoch's gate namespace: every replica's gate shares
// the session's turn counter and mutex keys, and Close releases whatever
// distributed state the session still holds.
type DistSession struct {
	pool *DistPool
	key  string

	mu    sync.Mutex
	gates []*DistGate
}

// Key returns the session's lock-key namespace (for tests and logs).
func (s *DistSession) Key() string { return s.key }

// Gate builds the session gate for one replica. Replicas of a session
// share keys but not connections.
func (s *DistSession) Gate(rep event.ReplicaID) (TurnGate, error) {
	c, err := s.pool.clientFor(rep)
	if err != nil {
		return nil, err
	}
	g := NewDistGateTTL(c, s.key, string(rep), s.pool.ttl)
	g.SetMetrics(s.pool.turnWait)
	g.SetBlocking(!s.pool.noBlock)
	g.EnablePipelinedAdvance()
	s.mu.Lock()
	s.gates = append(s.gates, g)
	s.mu.Unlock()
	return g, nil
}

// Close tears the session down: every minted gate abandons any held
// mutex, and the turn counter is deleted best-effort. Later epochs never
// read this namespace, so Close is hygiene, not correctness — but without
// it a cancelled session's mutex would pin lock-server memory until TTL
// expiry.
func (s *DistSession) Close() error {
	s.mu.Lock()
	gates := s.gates
	s.gates = nil
	s.mu.Unlock()
	for _, g := range gates {
		_ = g.Close()
	}
	if len(gates) > 0 {
		if c := s.pool.anyClient(); c != nil {
			_, _ = c.Del(s.key + ":turn")
		}
	}
	return nil
}
