package proxy

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
)

func TestRecordMode(t *testing.T) {
	i := New()
	if i.Mode() != Passthrough {
		t.Fatal("fresh interceptor must be passthrough")
	}
	i.StartRecording()
	calls := 0
	err := i.Call(context.Background(), event.Event{Kind: event.Update, Replica: "A", Op: "set.add"}, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = i.Call(context.Background(), event.Event{Kind: event.Update, Replica: "B", Op: "set.remove"}, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
	evs := i.StopRecording()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events", len(evs))
	}
	if evs[0].ID != 0 || evs[1].ID != 1 {
		t.Fatal("IDs must be dense record order")
	}
	if evs[0].Lamport != 1 || evs[1].Lamport != 2 {
		t.Fatal("Lamport stamps must be assigned")
	}
	if i.Mode() != Passthrough {
		t.Fatal("StopRecording must return to passthrough")
	}
}

func TestRecordRejectsInvalidEvent(t *testing.T) {
	i := New()
	i.StartRecording()
	err := i.Call(context.Background(), event.Event{Kind: event.Update}, func() error { return nil })
	if err == nil {
		t.Fatal("invalid event must be rejected in record mode")
	}
}

func TestPassthroughExecutes(t *testing.T) {
	i := New()
	ran := false
	if err := i.Call(context.Background(), event.Event{}, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("passthrough must execute the call")
	}
	if len(i.Recorded()) != 0 {
		t.Fatal("passthrough must not record")
	}
}

// replayLog builds a 4-event log: two updates at A, two at B.
func replayLog(t *testing.T) *event.Log {
	t.Helper()
	log, err := event.NewLog([]event.Event{
		{Kind: event.Update, Replica: "A", Op: "a1"},
		{Kind: event.Update, Replica: "A", Op: "a2"},
		{Kind: event.Update, Replica: "B", Op: "b1"},
		{Kind: event.Update, Replica: "B", Op: "b2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestReplayEnforcesInterleaving runs two replica goroutines, each issuing
// its calls in program order, and checks the interceptor forces the
// scheduled global order across them.
func TestReplayEnforcesInterleaving(t *testing.T) {
	log := replayLog(t)
	// Schedule: B's ops first, then A's.
	order := []event.ID{2, 3, 0, 1}
	i := New()
	gate := NewLocalGate()
	if err := i.StartReplay(log, order, gate); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var executed []string
	runReplica := func(r event.ReplicaID, ops []string) error {
		for _, op := range ops {
			err := i.Call(context.Background(), event.Event{Kind: event.Update, Replica: r, Op: op}, func() error {
				mu.Lock()
				executed = append(executed, op)
				mu.Unlock()
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs <- runReplica("A", []string{"a1", "a2"}) }()
	go func() { defer wg.Done(); errs <- runReplica("B", []string{"b1", "b2"}) }()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"b1", "b2", "a1", "a2"}
	for k := range want {
		if executed[k] != want[k] {
			t.Fatalf("executed = %v, want %v", executed, want)
		}
	}
	i.StopReplay()
	if i.Mode() != Passthrough {
		t.Fatal("StopReplay must return to passthrough")
	}
}

func TestReplayScheduleLengthMismatch(t *testing.T) {
	log := replayLog(t)
	i := New()
	if err := i.StartReplay(log, []event.ID{0, 1}, NewLocalGate()); err == nil {
		t.Fatal("short schedule must be rejected")
	}
}

func TestReplayTooManyCalls(t *testing.T) {
	log, err := event.NewLog([]event.Event{{Kind: event.Update, Replica: "A", Op: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	i := New()
	if err := i.StartReplay(log, []event.ID{0}, NewLocalGate()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := i.Call(ctx, event.Event{Kind: event.Update, Replica: "A"}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := i.Call(ctx, event.Event{Kind: event.Update, Replica: "A"}, func() error { return nil }); err == nil {
		t.Fatal("excess call must be rejected")
	}
}

func TestReplayPropagatesCallError(t *testing.T) {
	log, err := event.NewLog([]event.Event{{Kind: event.Update, Replica: "A", Op: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	i := New()
	if err := i.StartReplay(log, []event.ID{0}, NewLocalGate()); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("boom")
	err = i.Call(context.Background(), event.Event{Kind: event.Update, Replica: "A"}, func() error { return wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestLocalGateOrdering(t *testing.T) {
	g := NewLocalGate()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for turn := 3; turn >= 0; turn-- {
		wg.Add(1)
		go func(turn int) {
			defer wg.Done()
			if err := g.WaitTurn(context.Background(), turn); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, turn)
			mu.Unlock()
			if err := g.Advance(); err != nil {
				t.Error(err)
			}
		}(turn)
	}
	wg.Wait()
	for k, turn := range order {
		if turn != k {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestLocalGateContextCancel(t *testing.T) {
	g := NewLocalGate()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.WaitTurn(ctx, 5); err == nil {
		t.Fatal("blocked wait must respect cancellation")
	}
}

func TestLocalGateTurnPassed(t *testing.T) {
	g := NewLocalGate()
	if err := g.Advance(); err != nil {
		t.Fatal(err)
	}
	if err := g.WaitTurn(context.Background(), 0); err == nil {
		t.Fatal("passed turn must fail fast")
	}
	g.Reset()
	if err := g.WaitTurn(context.Background(), 0); err != nil {
		t.Fatalf("after reset turn 0 must be ready: %v", err)
	}
}
