package forensics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the explain golden file")

// TestExplainGolden pins the full `erpi explain` narrative for a real
// Roshi-2 bundle (testdata/bundle.json was captured by an actual
// violating run). Regenerate with `go test ./internal/forensics -update`
// after deliberate narrative changes.
func TestExplainGolden(t *testing.T) {
	b, err := Load(filepath.Join("testdata", "bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := Explain(&out, b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "explain.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("explain narrative drifted from golden (re-run with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s", out.Bytes(), want)
	}
}

// TestBundleRoundTrip pins that persisting and reloading a bundle loses
// nothing the narrative depends on.
func TestBundleRoundTrip(t *testing.T) {
	b, err := Load(filepath.Join("testdata", "bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, z bytes.Buffer
	if err := Explain(&a, b); err != nil {
		t.Fatal(err)
	}
	if err := Explain(&z, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), z.Bytes()) {
		t.Fatal("narrative changed across a write/load round trip")
	}
}

func TestValidateRejectsBrokenBundles(t *testing.T) {
	good, err := Load(filepath.Join("testdata", "bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(b Bundle) Bundle{
		"wrong version":   func(b Bundle) Bundle { b.Version = 99; return b },
		"no scenario":     func(b Bundle) Bundle { b.Scenario = ""; return b },
		"no interleaving": func(b Bundle) Bundle { b.Interleaving = nil; return b },
		"no events":       func(b Bundle) Bundle { b.Events = nil; return b },
	}
	for name, mutate := range cases {
		broken := mutate(*good)
		if err := broken.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken bundle", name)
		}
	}
}
