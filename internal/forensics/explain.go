package forensics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/er-pi/erpi/internal/telemetry"
)

// Explain renders a bundle as a human-readable causal narrative: which
// delivery ordering diverged from the recorded schedule, where the
// replica states first departed from the baseline run, and how the final
// per-replica states differ. This is what `erpi explain <bundle>` prints.
func Explain(w io.Writer, b *Bundle) error {
	if err := b.Validate(); err != nil {
		return err
	}
	var out strings.Builder

	fmt.Fprintf(&out, "ER-π forensic bundle: %s — interleaving #%d\n", b.Scenario, b.Index)
	fmt.Fprintf(&out, "key: %s\n", b.Key)
	fmt.Fprintf(&out, "mode: %s  seed: %d  events: %d  steps captured: %d\n",
		b.Mode, b.Seed, len(b.Events), len(b.Steps))
	out.WriteByte('\n')

	explainViolations(&out, b)
	explainDelivery(&out, b)
	explainStateDivergence(&out, b)
	explainFinalStates(&out, b)
	explainObservations(&out, b)
	explainFaults(&out, b)
	explainTiming(&out, b)

	_, err := io.WriteString(w, out.String())
	return err
}

func explainViolations(out *strings.Builder, b *Bundle) {
	fmt.Fprintf(out, "violations (%d):\n", len(b.Violations))
	if len(b.Violations) == 0 {
		fmt.Fprintln(out, "  (none recorded — bundle captured outside a violation?)")
	}
	for i, v := range b.Violations {
		fmt.Fprintf(out, "  %d. %s: %s\n", i+1, v.Assertion, v.Error)
	}
	out.WriteByte('\n')
}

// divergencePos returns the first position where the delivered order
// departs from the recorded schedule (-1 when they agree).
func (b *Bundle) divergencePos() int {
	n := len(b.Interleaving)
	if len(b.RecordedOrder) < n {
		n = len(b.RecordedOrder)
	}
	for i := 0; i < n; i++ {
		if b.Interleaving[i] != b.RecordedOrder[i] {
			return i
		}
	}
	if len(b.Interleaving) != len(b.RecordedOrder) {
		return n
	}
	return -1
}

func (b *Bundle) eventLabel(id int) string {
	if ev := b.Event(id); ev != nil {
		return ev.String()
	}
	return fmt.Sprintf("ev%d", id)
}

func explainDelivery(out *strings.Builder, b *Bundle) {
	fmt.Fprintln(out, "delivery divergence:")
	pos := b.divergencePos()
	if pos < 0 {
		fmt.Fprintln(out, "  this interleaving delivers events in the recorded order")
		fmt.Fprintln(out, "  (the violation is not order-induced — check the fault plan below)")
		out.WriteByte('\n')
		return
	}
	fmt.Fprintf(out, "  first diverges from the recorded schedule at step %d:\n", pos)
	if pos < len(b.Interleaving) {
		fmt.Fprintf(out, "    delivered: %s\n", b.eventLabel(b.Interleaving[pos]))
	}
	if pos < len(b.RecordedOrder) {
		fmt.Fprintf(out, "    recorded:  %s\n", b.eventLabel(b.RecordedOrder[pos]))
	}
	// How far does the recorded schedule postpone the event delivered
	// early (or vice versa)?
	if pos < len(b.Interleaving) {
		id := b.Interleaving[pos]
		for j := pos + 1; j < len(b.RecordedOrder); j++ {
			if b.RecordedOrder[j] == id {
				fmt.Fprintf(out, "    %s was recorded %d step(s) later, at step %d\n",
					fmt.Sprintf("ev%d", id), j-pos, j)
				break
			}
		}
	}
	out.WriteByte('\n')
}

func explainStateDivergence(out *strings.Builder, b *Bundle) {
	if len(b.Steps) == 0 {
		return
	}
	fmt.Fprintln(out, "state divergence:")
	if len(b.BaselineStepHashes) == 0 {
		fmt.Fprintln(out, "  (no baseline timeline in bundle)")
		out.WriteByte('\n')
		return
	}
	n := len(b.Steps)
	if len(b.BaselineStepHashes) < n {
		n = len(b.BaselineStepHashes)
	}
	div := -1
	for i := 0; i < n; i++ {
		if b.Steps[i].StateHash != b.BaselineStepHashes[i] {
			div = i
			break
		}
	}
	if div < 0 {
		fmt.Fprintln(out, "  replica states track the recorded run at every captured step;")
		fmt.Fprintln(out, "  the divergence appears only after finalize (see final states)")
		out.WriteByte('\n')
		return
	}
	step := b.Steps[div]
	fmt.Fprintf(out, "  replica states first depart from the recorded run after step %d (%s):\n",
		step.Pos, b.eventLabel(step.EventID))
	for _, rs := range step.Replicas {
		fmt.Fprintf(out, "    %-4s %s\n", rs.Replica+":", shortFP(rs.Fingerprint))
	}
	out.WriteByte('\n')
}

func explainFinalStates(out *strings.Builder, b *Bundle) {
	fmt.Fprintln(out, "final replica states (after finalize):")
	reps := make([]string, 0, len(b.Final.Fingerprints))
	for r := range b.Final.Fingerprints {
		reps = append(reps, r)
	}
	sort.Strings(reps)
	for _, r := range reps {
		fp := b.Final.Fingerprints[r]
		line := fmt.Sprintf("  %-4s %s", r+":", shortFP(fp))
		if b.Baseline != nil {
			base, ok := b.Baseline.Fingerprints[r]
			switch {
			case !ok:
				line += "  (not present in recorded run)"
			case base != fp:
				line += fmt.Sprintf("  DIFFERS from recorded %s", shortFP(base))
			default:
				line += "  (matches recorded run)"
			}
		}
		fmt.Fprintln(out, line)
	}
	conv := fmt.Sprintf("  converged: %v", b.Final.Converged)
	if b.Baseline != nil {
		conv += fmt.Sprintf(" (recorded run: %v)", b.Baseline.Converged)
	}
	fmt.Fprintln(out, conv)
	out.WriteByte('\n')
}

func explainObservations(out *strings.Builder, b *Bundle) {
	if b.Baseline == nil || len(b.Final.Observations) == 0 {
		return
	}
	var ids []int
	for id := range b.Final.Observations {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var diffs []string
	for _, id := range ids {
		got := b.Final.Observations[id]
		want, ok := b.Baseline.Observations[id]
		if ok && got == want {
			continue
		}
		if !ok {
			diffs = append(diffs, fmt.Sprintf("  %s → %q (absent in recorded run)", b.eventLabel(id), got))
			continue
		}
		diffs = append(diffs, fmt.Sprintf("  %s → %q (recorded run: %q)", b.eventLabel(id), got, want))
	}
	if len(diffs) == 0 {
		return
	}
	fmt.Fprintln(out, "observation diffs:")
	for _, d := range diffs {
		fmt.Fprintln(out, d)
	}
	out.WriteByte('\n')
}

func explainFaults(out *strings.Builder, b *Bundle) {
	wrote := false
	if b.Faults != nil && len(b.Faults.Faults) > 0 {
		fmt.Fprintf(out, "fault plan (seed %d):\n", b.Faults.Seed)
		for _, f := range b.Faults.Faults {
			scope := "every interleaving"
			if f.Interleaving != 0 {
				scope = fmt.Sprintf("interleaving #%d", f.Interleaving)
			}
			fmt.Fprintf(out, "  %s in %s\n", f.String(), scope)
		}
		wrote = true
	}
	if len(b.Final.FailedOps) > 0 {
		fmt.Fprintf(out, "failed ops: %s\n", joinEventIDs(b, b.Final.FailedOps))
		wrote = true
	}
	if len(b.Final.DroppedSyncs) > 0 {
		fmt.Fprintf(out, "dropped syncs: %s\n", joinEventIDs(b, b.Final.DroppedSyncs))
		wrote = true
	}
	if wrote {
		out.WriteByte('\n')
	}
}

func joinEventIDs(b *Bundle, ids []int) string {
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, b.eventLabel(id))
	}
	return strings.Join(parts, ", ")
}

func explainTiming(out *strings.Builder, b *Bundle) {
	if len(b.Spans) == 0 {
		return
	}
	type agg struct {
		stage string
		dur   int64
	}
	byStage := make(map[string]int64)
	for _, sp := range b.Spans {
		if int(sp.Index) != b.Index {
			continue
		}
		byStage[telemetry.Stage(sp.Stage).String()] += sp.Dur
	}
	if len(byStage) == 0 {
		return
	}
	rows := make([]agg, 0, len(byStage))
	for s, d := range byStage {
		rows = append(rows, agg{s, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].stage < rows[j].stage })
	fmt.Fprintln(out, "stage timing for this interleaving:")
	for _, r := range rows {
		fmt.Fprintf(out, "  %-18s %v\n", r.stage, time.Duration(r.dur).Round(time.Microsecond))
	}
	out.WriteByte('\n')
}

// shortFP abbreviates long state fingerprints for the narrative while
// keeping short ones verbatim.
func shortFP(fp string) string {
	if len(fp) <= 40 {
		return fp
	}
	return fp[:16] + "…" + fp[len(fp)-16:]
}
