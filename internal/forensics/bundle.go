// Package forensics defines ER-π's violation forensic bundle: a single
// self-contained JSON artifact captured when an interleaving violates an
// assertion, holding everything a developer needs to diagnose the bug
// without re-running the exploration — the event schedule as delivered,
// the recorded baseline order, the fault-arming plan, a per-replica
// canonical-state timeline at every step, the final outcome (observations,
// failed ops, dropped syncs, convergence), a fault-free baseline outcome,
// and the telemetry span slice for the interleaving. The `erpi explain`
// subcommand renders a bundle as a causal narrative (explain.go).
//
// The schema is deliberately flat and engine-agnostic: bundles from the
// sequential engine, the worker pool, live replay, and the distributed
// coordinator are indistinguishable.
package forensics

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/er-pi/erpi/internal/fault"
	"github.com/er-pi/erpi/internal/telemetry"
)

// BundleVersion is the current schema version.
const BundleVersion = 1

// EventRecord is one recorded event, in plain serializable form (kind is
// the wire name: update, sync_req, exec_sync, observe).
type EventRecord struct {
	ID      int      `json:"id"`
	Kind    string   `json:"kind"`
	Replica string   `json:"replica"`
	From    string   `json:"from,omitempty"`
	To      string   `json:"to,omitempty"`
	Op      string   `json:"op,omitempty"`
	Args    []string `json:"args,omitempty"`
}

// String renders the event the way engine diagnostics do.
func (e EventRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ev%d[%s@%s", e.ID, e.Kind, e.Replica)
	if e.From != "" || e.To != "" {
		fmt.Fprintf(&b, " %s->%s", e.From, e.To)
	}
	if e.Op != "" {
		fmt.Fprintf(&b, " %s(%s)", e.Op, strings.Join(e.Args, ","))
	}
	b.WriteByte(']')
	return b.String()
}

// ReplicaState is one replica's state at a timeline step.
type ReplicaState struct {
	Replica string `json:"replica"`
	// Fingerprint is the replica's state digest at this step.
	Fingerprint string `json:"fingerprint"`
	// Snapshot is the replica's canonical serialized state (base64 in the
	// JSON encoding).
	Snapshot []byte `json:"snapshot,omitempty"`
}

// Step is the cluster state after one delivered event of the violating
// interleaving.
type Step struct {
	// Pos is the 0-based position in the interleaving.
	Pos int `json:"pos"`
	// EventID is the event delivered at this position.
	EventID int `json:"event_id"`
	// StateHash is the canonical cluster-state digest after the event
	// (hex SHA-256 of the canonical snapshot encoding).
	StateHash string `json:"state_hash"`
	// Replicas are the per-replica states after the event, sorted by id.
	Replicas []ReplicaState `json:"replicas"`
}

// Violation is one assertion failure, in serializable form.
type Violation struct {
	Assertion string `json:"assertion"`
	Error     string `json:"error"`
}

// FinalState is the outcome of a completed execution (after the
// scenario's finalize/anti-entropy step).
type FinalState struct {
	Fingerprints map[string]string `json:"fingerprints"`
	Converged    bool              `json:"converged"`
	Observations map[int]string    `json:"observations,omitempty"`
	FailedOps    []int             `json:"failed_ops,omitempty"`
	DroppedSyncs []int             `json:"dropped_syncs,omitempty"`
}

// Bundle is the forensic artifact for one violating interleaving.
type Bundle struct {
	Version  int    `json:"version"`
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Seed     int64  `json:"seed"`
	// Index is the 1-based exploration index of the violating
	// interleaving; Key is its stable identity string.
	Index int    `json:"index"`
	Key   string `json:"key"`
	// Interleaving is the delivered event order; RecordedOrder is the
	// order the scenario's log recorded.
	Interleaving  []int `json:"interleaving"`
	RecordedOrder []int `json:"recorded_order"`
	// Events is the full event log, by ID.
	Events     []EventRecord `json:"events"`
	Violations []Violation   `json:"violations"`
	// Faults is the run's fault-arming plan (nil for fault-free runs).
	Faults *fault.Schedule `json:"faults,omitempty"`
	// Steps is the per-step state timeline of the violating order.
	Steps []Step `json:"steps"`
	// Final is the violating execution's outcome; Baseline is the
	// fault-free recorded-order outcome, and BaselineStepHashes its
	// per-step cluster-state digests (aligned with Steps by position).
	Final              FinalState  `json:"final"`
	Baseline           *FinalState `json:"baseline,omitempty"`
	BaselineStepHashes []string    `json:"baseline_step_hashes,omitempty"`
	// Spans is the telemetry span slice for this interleaving (empty when
	// the run had no registry attached).
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// Event returns the record for an event ID (nil when unknown).
func (b *Bundle) Event(id int) *EventRecord {
	for i := range b.Events {
		if b.Events[i].ID == id {
			return &b.Events[i]
		}
	}
	return nil
}

// Validate reports the first structural problem with a loaded bundle.
func (b *Bundle) Validate() error {
	switch {
	case b.Version != BundleVersion:
		return fmt.Errorf("forensics: unsupported bundle version %d (want %d)", b.Version, BundleVersion)
	case b.Scenario == "":
		return fmt.Errorf("forensics: bundle has no scenario name")
	case len(b.Interleaving) == 0:
		return fmt.Errorf("forensics: bundle has no interleaving")
	case len(b.Events) == 0:
		return fmt.Errorf("forensics: bundle has no event log")
	}
	return nil
}

// WriteFile persists a bundle as indented JSON.
func WriteFile(path string, b *Bundle) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("forensics: encode bundle: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a bundle file.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("forensics: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("forensics: parse %s: %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &b, nil
}
