package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// workerSnapshot builds a cumulative report for one fake worker.
func workerSnapshot(name string, explored int64) WorkerReport {
	r := New()
	r.Counter("runner.explored").Add(explored)
	r.Progress().BeginRun(100, 1)
	r.Progress().AddExplored(explored)
	r.StartSpan(StageExecute, 1, 0).End()
	return WorkerReport{
		Worker:         name,
		EpochUnixNanos: r.Tracer().Epoch().UnixNano(),
		Metrics:        r.Snapshot(),
		Progress:       r.Progress().Snapshot(),
		Spans:          r.Tracer().Spans(),
	}
}

func TestFederationCountersSumAcrossWorkers(t *testing.T) {
	local := New()
	local.Counter("runner.explored").Add(5)
	f := NewFederation(local)
	f.Report(workerSnapshot("w1", 10))
	f.Report(workerSnapshot("w2", 20))
	if got := f.Snapshot().Counters["runner.explored"]; got != 35 {
		t.Fatalf("fleet counter = %d, want 35 (5 local + 10 + 20)", got)
	}
	if f.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", f.Workers())
	}
}

func TestFederationReportsAreIdempotent(t *testing.T) {
	f := NewFederation(nil)
	rep := workerSnapshot("w1", 10)
	// A reconnecting worker re-sends its cumulative snapshot; folding it
	// twice must not double-count.
	f.Report(rep)
	f.Report(rep)
	if got := f.Snapshot().Counters["runner.explored"]; got != 10 {
		t.Fatalf("fleet counter = %d after re-sent report, want 10", got)
	}
	// A later snapshot replaces, never adds.
	f.Report(workerSnapshot("w1", 15))
	if got := f.Snapshot().Counters["runner.explored"]; got != 15 {
		t.Fatalf("fleet counter = %d after newer report, want 15", got)
	}
}

func TestFederationProgressBreakdown(t *testing.T) {
	f := NewFederation(New())
	f.SetLeaseSource(func() map[string]int { return map[string]int{"w1": 3} })
	f.Report(workerSnapshot("w1", 10))
	f.Report(workerSnapshot("w2", 20))
	p := f.Progress()
	if p.Explored != 30 {
		t.Fatalf("fleet explored = %d, want 30", p.Explored)
	}
	if len(p.Workers) != 2 || p.Workers[0].Worker != "w1" || p.Workers[1].Worker != "w2" {
		t.Fatalf("worker rows: %+v", p.Workers)
	}
	if p.Workers[0].Leases != 3 || p.Workers[1].Leases != 0 {
		t.Fatalf("lease breakdown: %+v", p.Workers)
	}
	if p.Workers[0].Explored != 10 || p.Workers[1].Explored != 20 {
		t.Fatalf("per-worker explored: %+v", p.Workers)
	}
	if p.Workers[0].SpansRetained != 1 {
		t.Fatalf("span accounting: %+v", p.Workers[0])
	}
}

func TestFederationSpanFeedBounded(t *testing.T) {
	f := NewFederation(nil)
	f.spanCap = 4
	for i := 0; i < 3; i++ {
		rep := workerSnapshot("w1", 1)
		rep.Spans = make([]Span, 3)
		f.Report(rep)
	}
	p := f.Progress()
	if p.Workers[0].SpansRetained != 4 || p.Workers[0].SpansDropped != 5 {
		t.Fatalf("span feed bound: %+v", p.Workers[0])
	}
	if got := len(f.Spans("w1")); got != 4 {
		t.Fatalf("Spans() = %d, want 4", got)
	}
}

func TestFederationTraceHasOneLanePerWorker(t *testing.T) {
	local := New()
	local.StartSpan(StageDispatch, 1, CoordinatorWorker).End()
	f := NewFederation(local)
	f.Report(workerSnapshot("w1", 1))
	f.Report(workerSnapshot("w2", 2))
	var buf bytes.Buffer
	if err := f.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	var processNames []string
	for _, ev := range file.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			processNames = append(processNames, args["name"].(string))
		}
	}
	if len(pids) != 3 {
		t.Fatalf("merged trace has %d process lanes, want 3 (coordinator + 2 workers): %v", len(pids), pids)
	}
	joined := strings.Join(processNames, ",")
	for _, want := range []string{"coordinator", "worker w1", "worker w2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("process lanes %q missing %q", joined, want)
		}
	}
	// Every event timestamp must be non-negative after epoch re-basing.
	for _, ev := range file.TraceEvents {
		if ts, ok := ev["ts"].(float64); ok && ts < 0 {
			t.Fatalf("negative timestamp after re-basing: %+v", ev)
		}
	}
}
