package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live view of one exploration run: how much of the space
// is done, how fast it is moving, and what every worker is doing right
// now. The runner updates it with lock-free atomics; the status server
// snapshots it on demand. All methods are nil-safe no-ops.
type Progress struct {
	start       atomic.Int64 // run start, unix nanos (0 = no run yet)
	doneAt      atomic.Int64 // run end, unix nanos (0 = still running)
	total       atomic.Int64 // exploration budget (cap), 0 = unknown
	explored    atomic.Int64
	resumed     atomic.Int64
	quarantined atomic.Int64
	violations  atomic.Int64
	dedupSat    atomic.Bool

	fuzzGenerations atomic.Int64
	fuzzCorpus      atomic.Int64
	fuzzNovelty     atomic.Int64 // permille: novelty rate × 1000

	mu      sync.Mutex
	workers []atomic.Int64 // per worker: interleaving index in flight, 0 = idle
}

// BeginRun marks the run started with an exploration budget and a worker
// count; it resets per-run state so a registry can observe several runs.
func (p *Progress) BeginRun(total, workers int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.workers = make([]atomic.Int64, workers)
	p.mu.Unlock()
	p.total.Store(int64(total))
	p.explored.Store(0)
	p.resumed.Store(0)
	p.quarantined.Store(0)
	p.violations.Store(0)
	p.dedupSat.Store(false)
	p.fuzzGenerations.Store(0)
	p.fuzzCorpus.Store(0)
	p.fuzzNovelty.Store(0)
	p.doneAt.Store(0)
	p.start.Store(time.Now().UnixNano())
}

// EndRun marks the run finished, freezing the rate and ETA.
func (p *Progress) EndRun() {
	if p == nil {
		return
	}
	p.doneAt.Store(time.Now().UnixNano())
}

// SetWorker records what worker w is executing (0 = idle).
func (p *Progress) SetWorker(w, index int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if w >= 0 && w < len(p.workers) {
		p.workers[w].Store(int64(index))
	}
	p.mu.Unlock()
}

// AddExplored counts n newly assigned interleavings.
func (p *Progress) AddExplored(n int64) {
	if p == nil {
		return
	}
	p.explored.Add(n)
}

// SetResumed records interleavings skipped via journal resume.
func (p *Progress) SetResumed(n int64) {
	if p == nil {
		return
	}
	p.resumed.Store(n)
}

// AddQuarantined counts one quarantined interleaving.
func (p *Progress) AddQuarantined() {
	if p == nil {
		return
	}
	p.quarantined.Add(1)
}

// AddViolations counts n assertion failures.
func (p *Progress) AddViolations(n int64) {
	if p == nil {
		return
	}
	p.violations.Add(n)
}

// SetFuzz publishes a ModeFuzz run's corpus state after one generation
// evolved: completed generations, corpus size, and the last generation's
// novelty rate in permille (novel signatures per thousand executed
// children). Zero-valued outside fuzz runs, which keeps the fields out of
// the /progress payload via omitempty.
func (p *Progress) SetFuzz(generations, corpus, noveltyPermille int64) {
	if p == nil {
		return
	}
	p.fuzzGenerations.Store(generations)
	p.fuzzCorpus.Store(corpus)
	p.fuzzNovelty.Store(noveltyPermille)
}

// SetDedupSaturated marks the run's dedup set as saturated: beyond this
// point dedup is best-effort and an interleaving may execute twice. The
// flag makes a degraded run visible at /progress without log scraping.
func (p *Progress) SetDedupSaturated() {
	if p == nil {
		return
	}
	p.dedupSat.Store(true)
}

// WorkerSnapshot is one worker's instantaneous state.
type WorkerSnapshot struct {
	ID int `json:"id"`
	// Interleaving is the index in flight (0 when idle).
	Interleaving int64  `json:"interleaving"`
	State        string `json:"state"`
}

// ProgressSnapshot is the JSON shape served at /progress.
type ProgressSnapshot struct {
	Running        bool    `json:"running"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Explored       int64   `json:"explored"`
	Total          int64   `json:"total"`
	Resumed        int64   `json:"resumed"`
	Quarantined    int64   `json:"quarantined"`
	Violations     int64   `json:"violations"`
	// DedupSaturated reports the dedup set hit its cap and degraded to
	// best-effort (mirrors Result.DedupSaturated, live instead of at
	// run end).
	DedupSaturated bool `json:"dedup_saturated"`
	// FuzzGenerations / FuzzCorpusSize / FuzzNoveltyRate mirror a ModeFuzz
	// run's corpus evolution (zero and omitted for every other mode).
	// FuzzNoveltyRate is the last generation's novel-signature fraction.
	FuzzGenerations int64            `json:"fuzz_generations,omitempty"`
	FuzzCorpusSize  int64            `json:"fuzz_corpus_size,omitempty"`
	FuzzNoveltyRate float64          `json:"fuzz_novelty_rate,omitempty"`
	PerSecond       float64          `json:"per_second"`
	ETASeconds      float64          `json:"eta_seconds"`
	Workers         []WorkerSnapshot `json:"workers"`
}

// Snapshot captures the current progress. Rate is explored/elapsed; ETA
// extrapolates the remaining budget at that rate (0 when unknowable).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		Explored:        p.explored.Load(),
		Total:           p.total.Load(),
		Resumed:         p.resumed.Load(),
		Quarantined:     p.quarantined.Load(),
		Violations:      p.violations.Load(),
		DedupSaturated:  p.dedupSat.Load(),
		FuzzGenerations: p.fuzzGenerations.Load(),
		FuzzCorpusSize:  p.fuzzCorpus.Load(),
		FuzzNoveltyRate: float64(p.fuzzNovelty.Load()) / 1000,
	}
	start := p.start.Load()
	if start == 0 {
		return s
	}
	end := p.doneAt.Load()
	s.Running = end == 0
	if end == 0 {
		end = time.Now().UnixNano()
	}
	elapsed := time.Duration(end - start)
	s.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		s.PerSecond = float64(s.Explored) / elapsed.Seconds()
	}
	if s.Running && s.PerSecond > 0 && s.Total > s.Explored {
		s.ETASeconds = float64(s.Total-s.Explored) / s.PerSecond
	}
	p.mu.Lock()
	for w := range p.workers {
		idx := p.workers[w].Load()
		state := "idle"
		if idx > 0 {
			state = "executing"
		}
		s.Workers = append(s.Workers, WorkerSnapshot{ID: w, Interleaving: idx, State: state})
	}
	p.mu.Unlock()
	return s
}
