package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: the tracer's spans serialize to the Trace
// Event Format (JSON object form) understood by about://tracing and
// https://ui.perfetto.dev, with one trace thread per engine worker —
// coordinator work on tid 0, worker w on tid w+1 — so pool shard occupancy
// and quiesce barriers are visible as gaps on the timeline.

// traceEvent is one Trace Event Format record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// spanTid maps a span's worker id onto a trace thread id.
func spanTid(worker int32) int { return int(worker) + 1 }

// appendSpanEvents renders spans into trace rows on one trace process
// (pid), shifting every span start by shiftNs (federated lanes re-base
// remote workers' tracer epochs onto the coordinator's).
func appendSpanEvents(file *traceFile, spans []Span, pid int, shiftNs int64) {
	for _, sp := range spans {
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: sp.Stage.String(),
			Cat:  "stage",
			Ph:   "X",
			Ts:   float64(sp.Start+shiftNs) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  pid,
			Tid:  spanTid(sp.Worker),
			Args: map[string]any{"interleaving": sp.Index},
		})
	}
}

// appendLaneMetadata emits the metadata rows naming one trace process and
// its thread lanes (one per engine worker seen in spans).
func appendLaneMetadata(file *traceFile, spans []Span, pid int, process string) {
	file.TraceEvents = append(file.TraceEvents, traceEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  pid,
		Args: map[string]any{"name": process},
	})
	tids := make(map[int]int32) // tid -> worker
	for _, sp := range spans {
		tids[spanTid(sp.Worker)] = sp.Worker
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "coordinator"
		if tids[tid] != CoordinatorWorker {
			name = fmt.Sprintf("worker %d", tids[tid])
		}
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  pid,
			Tid:  tid,
			Args: map[string]any{"name": name},
		})
	}
}

// WriteTrace exports spans as Chrome trace_event JSON.
func WriteTrace(w io.Writer, spans []Span) error {
	file := traceFile{DisplayTimeUnit: "ms"}
	appendSpanEvents(&file, spans, 1, 0)
	appendLaneMetadata(&file, spans, 1, "erpi")
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// WriteTrace exports the registry's retained spans as Chrome trace_event
// JSON. A nil registry writes an empty trace.
func (r *Registry) WriteTrace(w io.Writer) error {
	return WriteTrace(w, r.Tracer().Spans())
}
