package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Fleet-wide telemetry federation (DESIGN.md §4.13): worker processes
// periodically report a cumulative metrics snapshot, a progress snapshot,
// and the span delta recorded since their previous report. The
// coordinator folds the reports into one fleet view — counters and
// histogram buckets sum across workers, per-worker throughput and lag are
// broken out on /progress, and /trace renders a merged Chrome trace with
// one process lane per worker, re-based onto the coordinator's clock.
//
// Reports carry *cumulative* metric snapshots, not increments: the fold
// keeps only the latest snapshot per worker, so a re-sent or replayed
// report (worker reconnects redial with fresh sessions) can never
// double-count. Only the span stream is a delta, and span loss on
// reconnect is acceptable — spans are a bounded diagnostic ring, not an
// accounting surface.

// WorkerReport is one worker process's telemetry report, as carried by
// the coordinator protocol's telemetry message.
type WorkerReport struct {
	// Worker is the reporting worker's protocol name.
	Worker string `json:"worker"`
	// EpochUnixNanos is the worker tracer's epoch as unix nanoseconds;
	// span Start offsets in the report are relative to it.
	EpochUnixNanos int64 `json:"epoch_unix_nanos"`
	// Metrics is the worker registry's cumulative snapshot.
	Metrics Snapshot `json:"metrics"`
	// Progress is the worker's progress snapshot.
	Progress ProgressSnapshot `json:"progress"`
	// Spans are the spans recorded since the worker's previous report.
	Spans []Span `json:"spans,omitempty"`
}

// DefaultFederationSpanCap bounds the spans retained per worker feed.
const DefaultFederationSpanCap = 1 << 13

// workerFeed is one worker's folded state.
type workerFeed struct {
	report   WorkerReport // latest cumulative metrics/progress (Spans unused)
	lastSeen time.Time
	spans    []Span // accumulated span deltas, oldest dropped beyond the cap
	dropped  int
}

// Federation folds worker telemetry reports into a fleet-wide view on
// top of a local (coordinator-side) registry. All methods are safe for
// concurrent use; a nil *Federation is inert.
type Federation struct {
	reg     *Registry // local registry (may be nil)
	spanCap int

	mu     sync.Mutex
	feeds  map[string]*workerFeed
	leases func() map[string]int // optional: live lease counts by worker name
}

// NewFederation builds a federation over the local registry (nil is
// allowed: the fleet view is then purely the workers' reports).
func NewFederation(reg *Registry) *Federation {
	return &Federation{reg: reg, spanCap: DefaultFederationSpanCap, feeds: make(map[string]*workerFeed)}
}

// SetLeaseSource installs the callback supplying live leased-range counts
// per worker name (the coordinator's ledger view), folded into the fleet
// progress breakdown. The callback must not call back into the
// Federation.
func (f *Federation) SetLeaseSource(fn func() map[string]int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.leases = fn
	f.mu.Unlock()
}

// Report folds one worker report: the cumulative metrics/progress replace
// the worker's previous snapshot, the span delta appends to its bounded
// span history.
func (f *Federation) Report(rep WorkerReport) {
	if f == nil || rep.Worker == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	feed, ok := f.feeds[rep.Worker]
	if !ok {
		feed = &workerFeed{}
		f.feeds[rep.Worker] = feed
	}
	feed.spans = append(feed.spans, rep.Spans...)
	if over := len(feed.spans) - f.spanCap; over > 0 {
		feed.dropped += over
		feed.spans = append(feed.spans[:0], feed.spans[over:]...)
	}
	rep.Spans = nil
	feed.report = rep
	feed.lastSeen = time.Now()
}

// Workers returns the number of worker feeds seen so far.
func (f *Federation) Workers() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.feeds)
}

// Snapshot returns the fleet-wide metrics view: the local registry's
// snapshot merged with every worker's latest report (counters and
// histogram buckets sum, gauges take the maximum).
func (f *Federation) Snapshot() Snapshot {
	if f == nil {
		return Snapshot{}
	}
	s := f.reg.Snapshot()
	if s.Counters == nil {
		s = Snapshot{
			Counters:   make(map[string]int64),
			Gauges:     make(map[string]int64),
			Histograms: make(map[string]HistogramSnapshot),
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, name := range f.sortedWorkersLocked() {
		s.Merge(f.feeds[name].report.Metrics)
	}
	return s
}

// FleetWorkerProgress is one worker's row in the fleet progress view.
type FleetWorkerProgress struct {
	Worker string `json:"worker"`
	// Explored/PerSecond/Violations/Quarantined mirror the worker's own
	// progress snapshot.
	Explored    int64   `json:"explored"`
	PerSecond   float64 `json:"per_second"`
	Violations  int64   `json:"violations"`
	Quarantined int64   `json:"quarantined"`
	Running     bool    `json:"running"`
	// Leases is the coordinator ledger's count of ranges currently leased
	// to this worker (0 without a lease source).
	Leases int `json:"leases"`
	// LagSeconds is how long ago the worker last reported; a worker whose
	// lag grows past its heartbeat interval is stalled or gone.
	LagSeconds float64 `json:"lag_seconds"`
	// SpansRetained/SpansDropped account the worker's span feed.
	SpansRetained int `json:"spans_retained"`
	SpansDropped  int `json:"spans_dropped,omitempty"`
}

// FleetProgress is the JSON shape the coordinator's /progress serves: the
// local progress snapshot plus the per-worker breakdown and fleet sums.
type FleetProgress struct {
	Coordinator ProgressSnapshot `json:"coordinator"`
	// Explored/PerSecond/Violations/Quarantined sum the workers' rows.
	Explored    int64                 `json:"explored"`
	PerSecond   float64               `json:"per_second"`
	Violations  int64                 `json:"violations"`
	Quarantined int64                 `json:"quarantined"`
	Workers     []FleetWorkerProgress `json:"workers"`
}

// Progress returns the fleet progress view.
func (f *Federation) Progress() FleetProgress {
	if f == nil {
		return FleetProgress{}
	}
	out := FleetProgress{Coordinator: f.reg.Progress().Snapshot()}
	f.mu.Lock()
	defer f.mu.Unlock()
	var leases map[string]int
	if f.leases != nil {
		leases = f.leases()
	}
	now := time.Now()
	for _, name := range f.sortedWorkersLocked() {
		feed := f.feeds[name]
		p := feed.report.Progress
		row := FleetWorkerProgress{
			Worker:        name,
			Explored:      p.Explored,
			PerSecond:     p.PerSecond,
			Violations:    p.Violations,
			Quarantined:   p.Quarantined,
			Running:       p.Running,
			Leases:        leases[name],
			LagSeconds:    now.Sub(feed.lastSeen).Seconds(),
			SpansRetained: len(feed.spans),
			SpansDropped:  feed.dropped,
		}
		out.Explored += row.Explored
		out.PerSecond += row.PerSecond
		out.Violations += row.Violations
		out.Quarantined += row.Quarantined
		out.Workers = append(out.Workers, row)
	}
	return out
}

// Spans returns one worker's retained span feed (oldest first), e.g. to
// slice a violating interleaving's timing into a forensic bundle.
func (f *Federation) Spans(worker string) []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	feed, ok := f.feeds[worker]
	if !ok {
		return nil
	}
	return append([]Span(nil), feed.spans...)
}

// WriteTrace exports the merged fleet trace as Chrome trace_event JSON:
// the coordinator's own spans on pid 1 and each worker process on its own
// pid (sorted by name), with every worker's span offsets re-based from
// its tracer epoch onto the coordinator's.
func (f *Federation) WriteTrace(w io.Writer) error {
	if f == nil {
		return WriteTrace(w, nil)
	}
	file := traceFile{DisplayTimeUnit: "ms"}
	f.mu.Lock()
	workers := f.sortedWorkersLocked()
	// Re-base everything onto the earliest known epoch so no lane starts
	// at a negative timestamp.
	base := int64(0)
	if f.reg != nil {
		base = f.reg.Tracer().Epoch().UnixNano()
	}
	for _, name := range workers {
		if e := f.feeds[name].report.EpochUnixNanos; base == 0 || (e != 0 && e < base) {
			base = e
		}
	}
	local := f.reg.Tracer().Spans()
	localShift := int64(0)
	if f.reg != nil {
		localShift = f.reg.Tracer().Epoch().UnixNano() - base
	}
	appendSpanEvents(&file, local, 1, localShift)
	appendLaneMetadata(&file, local, 1, "coordinator")
	for i, name := range workers {
		feed := f.feeds[name]
		pid := 2 + i
		shift := feed.report.EpochUnixNanos - base
		appendSpanEvents(&file, feed.spans, pid, shift)
		appendLaneMetadata(&file, feed.spans, pid, "worker "+name)
	}
	f.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

func (f *Federation) sortedWorkersLocked() []string {
	names := make([]string, 0, len(f.feeds))
	for name := range f.feeds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
