package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func promRegistry() *Registry {
	r := New()
	r.Counter("runner.explored").Add(42)
	r.Counter("coordinator.ranges-leased").Add(7)
	r.Counter("fuzz.generations").Add(4)
	r.Gauge("pool.workers").Set(3)
	r.Gauge("fuzz.corpus_size").Set(17)
	r.Gauge("fuzz.novelty_rate_permille").Set(250)
	r.Histogram("stage.execute_ns").Observe(500)
	r.Histogram("stage.execute_ns").Observe(100000)
	return r
}

func TestWritePrometheusValidates(t *testing.T) {
	snap := promRegistry().Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE erpi_runner_explored_total counter",
		"erpi_runner_explored_total 42",
		"# TYPE erpi_coordinator_ranges_leased_total counter",
		"# TYPE erpi_pool_workers gauge",
		"erpi_pool_workers 3",
		"# TYPE erpi_fuzz_generations_total counter",
		"erpi_fuzz_generations_total 4",
		"# TYPE erpi_fuzz_corpus_size gauge",
		"erpi_fuzz_corpus_size 17",
		"# TYPE erpi_fuzz_novelty_rate_permille gauge",
		"erpi_fuzz_novelty_rate_permille 250",
		"# TYPE erpi_stage_execute_ns histogram",
		"erpi_stage_execute_ns_count 2",
		`_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition fails validation: %v", err)
	}
	// Equal snapshots must render byte-identically (sorted output).
	var again bytes.Buffer
	if err := WritePrometheus(&again, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same snapshot differ")
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"empty exposition":    "",
		"bad metric name":     "9bad_name 1\n",
		"bad value":           "erpi_x abc\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"unknown type":        "# TYPE m widget\nm 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket{foo=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"decreasing buckets":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf bucket vs count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
	}
	for name, in := range cases {
		if err := ValidatePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validation accepted %q", name, in)
		}
	}
}

func TestWantsPrometheus(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"*/*", false},
		{"application/json", false},
		{"text/plain", true},
		{"text/plain; version=0.0.4", true},
		{"application/openmetrics-text; version=1.0.0", true},
		{"application/openmetrics-text;version=1.0.0;charset=utf-8,text/plain;version=0.0.4;q=0.5,*/*;q=0.1", true},
		{"text/html, application/json", false},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.accept != "" {
			h.Set("Accept", tc.accept)
		}
		if got := WantsPrometheus(h); got != tc.want {
			t.Errorf("WantsPrometheus(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	srv, err := NewStatusServer("127.0.0.1:0", promRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, srv.URL()+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Default stays JSON, byte-stable across scrapes of an idle registry.
	plain1, ct := get("")
	if !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(plain1), &snap); err != nil {
		t.Fatalf("default /metrics is not the JSON snapshot: %v", err)
	}
	if snap.Counters["runner.explored"] != 42 {
		t.Fatalf("JSON snapshot counters: %v", snap.Counters)
	}
	plain2, _ := get("application/json")
	if plain1 != plain2 {
		t.Fatal("JSON /metrics output is not byte-stable")
	}

	// Prometheus scrapers negotiate the text exposition.
	prom, ct := get("text/plain")
	if ct != PrometheusContentType {
		t.Fatalf("negotiated content type = %q", ct)
	}
	if !strings.Contains(prom, "erpi_runner_explored_total 42") {
		t.Fatalf("prometheus exposition missing counter:\n%s", prom)
	}
	if err := ValidatePrometheus(strings.NewReader(prom)); err != nil {
		t.Fatalf("negotiated exposition invalid: %v", err)
	}
}
