package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for registry
// snapshots. The JSON snapshot stays the default wire shape — Prometheus
// output is selected by Accept-header content negotiation on /metrics —
// so existing scrapers and the byte-stability guarantees of the status
// server are untouched.
//
// Mapping: every metric name is prefixed with "erpi_" and sanitized to
// the Prometheus grammar (dots and dashes become underscores). Counters
// get the conventional "_total" suffix; gauges keep their name;
// histograms expand to cumulative "_bucket{le=...}" series plus "_sum"
// and "_count". Output is sorted by metric name so two snapshots with
// equal values render byte-identically.

// PrometheusContentType is the Content-Type served for the text
// exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WantsPrometheus reports whether an HTTP request's Accept header asks
// for the Prometheus text exposition instead of the default JSON: any
// listed media type of text/plain or application/openmetrics-text (what
// a Prometheus server sends) selects it. An absent Accept header, */*,
// or application/json keeps the JSON default.
func WantsPrometheus(h http.Header) bool {
	for _, accept := range h.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mediaType := strings.TrimSpace(part)
			if i := strings.IndexByte(mediaType, ';'); i >= 0 {
				mediaType = strings.TrimSpace(mediaType[:i])
			}
			switch strings.ToLower(mediaType) {
			case "text/plain", "application/openmetrics-text":
				return true
			}
		}
	}
	return false
}

// promName sanitizes a registry metric name into a Prometheus metric
// name: "erpi_" prefix, with every byte outside [a-zA-Z0-9_:] replaced
// by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("erpi_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format, sorted by metric name.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", pn, bound, cum)
		}
		// The overflow bucket closes the family: le="+Inf" must equal the
		// total observation count.
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}
	return bw.Flush()
}

// ValidatePrometheus checks a text exposition for format violations:
// malformed metric names, labels, or values; samples typed before their
// TYPE line; duplicate TYPE declarations; histogram bucket series whose
// cumulative counts decrease or whose le="+Inf" bucket disagrees with
// _count. It is the format check CI runs against the coordinator's
// /metrics output. Returns nil for a valid exposition.
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)
	samples := 0
	// histogram bookkeeping: family -> last cumulative bucket value, count value
	lastBucket := make(map[string]int64)
	infBucket := make(map[string]int64)
	countVal := make(map[string]int64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment", lineNo)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		family, suffix := promFamily(name, types)
		if typ, ok := types[family]; ok && typ == "histogram" {
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				if le != "+Inf" {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("line %d: bucket le=%q is not a number", lineNo, le)
					}
				}
				if int64(value) < lastBucket[family] {
					return fmt.Errorf("line %d: %s cumulative bucket counts decrease", lineNo, family)
				}
				lastBucket[family] = int64(value)
				if le == "+Inf" {
					infBucket[family] = int64(value)
				}
			case "_count":
				countVal[family] = int64(value)
			case "_sum":
			default:
				return fmt.Errorf("line %d: bare sample %s for histogram family %s", lineNo, name, family)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition has no samples")
	}
	for family, inf := range infBucket {
		if c, ok := countVal[family]; ok && c != inf {
			return fmt.Errorf("histogram %s: le=\"+Inf\" bucket %d != _count %d", family, inf, c)
		}
	}
	return nil
}

// promFamily strips a histogram/summary series suffix, returning the
// declared family name and the suffix ("" when the sample name itself is
// declared or carries no known suffix).
func promFamily(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, s); ok {
			if _, declared := types[base]; declared {
				return base, s
			}
		}
	}
	return name, ""
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line: name[{labels}] value [timestamp].
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = make(map[string]string)
	if rest[i] == '{' {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed sample value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample value %q is not a float", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("sample timestamp %q is not an integer", fields[1])
		}
	}
	return name, labels, value, nil
}

func parsePromLabels(s string, out map[string]string) error {
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) < 2 || s[0] != '"' {
			return fmt.Errorf("label %s value is not quoted", name)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("label %s value is unterminated", name)
		}
		out[name] = s[1:end]
		s = s[end+1:]
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
	}
	return nil
}
