package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	c := r.Counter("explored")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("explored") != c {
		t.Fatal("re-registration must return the same handle")
	}
	g := r.Gauge("workers")
	g.Set(3)
	g.Add(-1)
	g.Max(7)
	g.Max(2) // lower: no effect
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("lat_ns")
	h.Observe(500)                     // bucket 0 (<= 1024)
	h.Observe(2000)                    // bucket 1
	h.ObserveDuration(5 * time.Second) // overflow
	s := r.Snapshot()
	hs := s.Histograms["lat_ns"]
	if hs.Count != 3 || hs.Max != int64(5*time.Second) {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	if hs.Counts[0] != 1 || hs.Counts[1] != 1 || hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", hs.Counts)
	}
	if want := float64(500+2000+int64(5*time.Second)) / 3; hs.Mean() != want {
		t.Fatalf("mean = %f, want %f", hs.Mean(), want)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	r.Progress().AddExplored(1)
	r.Progress().BeginRun(10, 2)
	sp := r.StartSpan(StageExecute, 1, 0)
	sp.End()
	r.ObserveSpan(StageExecute, 1, 0, time.Now(), time.Millisecond)
	if spans := r.Tracer().Spans(); spans != nil {
		t.Fatalf("nil tracer returned spans: %v", spans)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
	if err := r.WriteTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestNilPathZeroAllocations(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		sp := r.StartSpan(StageExecute, 7, 3)
		r.Counter("c").Inc()
		r.Progress().SetWorker(3, 7)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-registry path allocates %v per run, want 0", allocs)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("n").Add(2)
	b.Counter("n").Add(3)
	b.Counter("only_b").Add(1)
	a.Gauge("g").Set(5)
	b.Gauge("g").Set(9)
	a.Histogram("h").Observe(100)
	b.Histogram("h").Observe(5000)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Counters["n"] != 5 || sa.Counters["only_b"] != 1 {
		t.Fatalf("merged counters: %v", sa.Counters)
	}
	if sa.Gauges["g"] != 9 {
		t.Fatalf("merged gauge = %d, want max 9", sa.Gauges["g"])
	}
	h := sa.Histograms["h"]
	if h.Count != 2 || h.Sum != 5100 || h.Max != 5000 {
		t.Fatalf("merged hist: %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged buckets: %v", h.Counts)
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.record(Span{Stage: StageExecute, Index: int32(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := int32(7 + i); sp.Index != want {
			t.Fatalf("span %d has index %d, want %d (oldest-first tail)", i, sp.Index, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestStageSpansFeedHistograms(t *testing.T) {
	r := New()
	sp := r.StartSpan(StageCheckpointReset, 3, 1)
	sp.End()
	hs := r.Snapshot().Histograms["stage.checkpoint-reset_ns"]
	if hs.Count != 1 {
		t.Fatalf("stage histogram count = %d, want 1", hs.Count)
	}
	spans := r.Tracer().Spans()
	if len(spans) != 1 || spans[0].Stage != StageCheckpointReset || spans[0].Index != 3 || spans[0].Worker != 1 {
		t.Fatalf("recorded span: %+v", spans)
	}
}

func TestWriteTraceChromeFormat(t *testing.T) {
	r := New()
	r.StartSpan(StageExecute, 1, 0).End()
	r.StartSpan(StageDispatch, 2, CoordinatorWorker).End()
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var names []string
	var threadNames []string
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "X":
			names = append(names, ev["name"].(string))
		case "M":
			args := ev["args"].(map[string]any)
			threadNames = append(threadNames, args["name"].(string))
		}
	}
	if len(names) != 2 || names[0] != "execute" || names[1] != "dispatch" {
		t.Fatalf("trace events: %v", names)
	}
	joined := strings.Join(threadNames, ",")
	if !strings.Contains(joined, "coordinator") || !strings.Contains(joined, "worker 0") {
		t.Fatalf("thread names: %v", threadNames)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := &Progress{}
	if s := p.Snapshot(); s.Running || s.Explored != 0 {
		t.Fatalf("pre-run snapshot: %+v", s)
	}
	p.BeginRun(100, 2)
	p.AddExplored(10)
	p.AddQuarantined()
	p.AddViolations(2)
	p.SetWorker(0, 11)
	s := p.Snapshot()
	if !s.Running || s.Explored != 10 || s.Total != 100 || s.Quarantined != 1 || s.Violations != 2 {
		t.Fatalf("live snapshot: %+v", s)
	}
	if len(s.Workers) != 2 || s.Workers[0].State != "executing" || s.Workers[1].State != "idle" {
		t.Fatalf("worker states: %+v", s.Workers)
	}
	p.SetFuzz(3, 17, 250)
	s = p.Snapshot()
	if s.FuzzGenerations != 3 || s.FuzzCorpusSize != 17 || s.FuzzNoveltyRate != 0.25 {
		t.Fatalf("fuzz snapshot: %+v", s)
	}
	p.SetWorker(0, 0)
	p.EndRun()
	s = p.Snapshot()
	if s.Running || s.ETASeconds != 0 {
		t.Fatalf("post-run snapshot: %+v", s)
	}
	if s.FuzzGenerations != 3 {
		t.Fatalf("fuzz counters must survive EndRun: %+v", s)
	}
	p.BeginRun(10, 1)
	if s := p.Snapshot(); s.FuzzGenerations != 0 || s.FuzzCorpusSize != 0 || s.FuzzNoveltyRate != 0 {
		t.Fatalf("BeginRun must reset fuzz counters: %+v", s)
	}
}

func TestStatusServerEndpoints(t *testing.T) {
	r := New()
	r.Counter("runner.explored").Add(42)
	r.Progress().BeginRun(50, 1)
	r.Progress().AddExplored(42)
	r.StartSpan(StageExecute, 1, 0).End()
	srv, err := NewStatusServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	var prog ProgressSnapshot
	if err := json.Unmarshal([]byte(get("/progress")), &prog); err != nil {
		t.Fatalf("progress JSON: %v", err)
	}
	if prog.Explored != 42 || prog.Total != 50 {
		t.Fatalf("progress = %+v", prog)
	}
	if !strings.Contains(get("/metrics"), "runner.explored") {
		t.Fatal("metrics endpoint missing counter")
	}
	if !strings.Contains(get("/trace"), `"execute"`) {
		t.Fatal("trace endpoint missing execute span")
	}
	if !strings.Contains(get("/debug/vars"), "erpi") {
		t.Fatal("expvar endpoint missing erpi registry")
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "") {
		t.Fatal("pprof unreachable")
	}
}
