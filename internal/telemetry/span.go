package telemetry

import (
	"sync"
	"time"
)

// Stage names one phase of the exploration pipeline. Spans are recorded
// per stage, keyed by (interleaving index, worker id).
type Stage uint8

// Exploration stages.
const (
	// StageGenerate is the explorer advancing to the next interleaving.
	StageGenerate Stage = iota + 1
	// StagePrune is (re)building the pruned explorer, including
	// ConstraintPoll re-pruning.
	StagePrune
	// StageDedup is the explored-set membership check and insert.
	StageDedup
	// StageDispatch is the coordinator handing an assigned interleaving to
	// a pool worker (the wait measures pool backpressure).
	StageDispatch
	// StageExecute is one interleaving's replay, retries included.
	StageExecute
	// StageFaultInject is arming the fault schedule for one interleaving.
	StageFaultInject
	// StageCheckpointReset is restoring the cluster to its pristine
	// checkpoint before an execution attempt.
	StageCheckpointReset
	// StageAssert is running the assertion set over one outcome.
	StageAssert
	// StageJournalFsync is one durable flush of the progress journal.
	StageJournalFsync
	// StageQuiesce is the pool draining in-flight work at a ConstraintPoll
	// barrier (the visible bubble in the pipeline).
	StageQuiesce
	// StageRestorePrefix is restoring the cluster from a prefix-cache
	// snapshot (or falling back to the genesis checkpoint on a miss)
	// before a suffix execution.
	StageRestorePrefix
	// StageLiveSetup is a live session coming up: minting the epoch's gate
	// namespace and arming the replicas' interceptors.
	StageLiveSetup
	// StageLease is the distributed coordinator granting one interleaving
	// range to a worker (carving fresh work or re-issuing an orphan).
	StageLease
	// StageRangeCommit is the coordinator accepting one range's results:
	// fencing checks, in-order aggregation, and journal/result persistence.
	StageRangeCommit
	// StageFuzzEvolve is the fuzzer folding one fully-classified
	// generation into its corpus at the fuzz quiesce barrier (the
	// per-generation bubble in a ModeFuzz pipeline).
	StageFuzzEvolve

	stageMax = StageFuzzEvolve
)

var stageNames = [...]string{
	StageGenerate:        "generate",
	StagePrune:           "prune",
	StageDedup:           "dedup",
	StageDispatch:        "dispatch",
	StageExecute:         "execute",
	StageFaultInject:     "fault-inject",
	StageCheckpointReset: "checkpoint-reset",
	StageAssert:          "assert",
	StageJournalFsync:    "journal-fsync",
	StageQuiesce:         "quiesce",
	StageRestorePrefix:   "restore-prefix",
	StageLiveSetup:       "live-setup",
	StageLease:           "lease",
	StageRangeCommit:     "range-commit",
	StageFuzzEvolve:      "fuzz-evolve",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) && stageNames[s] != "" {
		return stageNames[s]
	}
	return "unknown"
}

// CoordinatorWorker is the worker id spans use for coordinator-side work
// (generation, dedup, dispatch, assertions).
const CoordinatorWorker = -1

// Span is one recorded stage execution. The JSON tags make spans
// directly serializable — they travel in the coordinator federation's
// wire reports and in forensic bundles.
type Span struct {
	// Stage is the pipeline phase.
	Stage Stage `json:"stage"`
	// Index is the 1-based interleaving index (0 for run-level work).
	Index int32 `json:"index"`
	// Worker is the executing worker id (CoordinatorWorker for the
	// coordinator).
	Worker int32 `json:"worker"`
	// Start is nanoseconds since the tracer's epoch.
	Start int64 `json:"start_ns"`
	// Dur is the span length in nanoseconds.
	Dur int64 `json:"dur_ns"`
}

// DefaultSpanCapacity bounds the tracer ring buffer (1<<15 spans ≈ 1 MiB).
const DefaultSpanCapacity = 1 << 15

// Tracer records spans into a bounded ring buffer: beyond the capacity the
// oldest spans are overwritten, so memory stays constant over arbitrarily
// long runs while the tail — the part a trace viewer usually needs — is
// always intact. Safe for concurrent use.
type Tracer struct {
	epoch    time.Time
	capacity int

	mu   sync.Mutex
	ring []Span
	n    int // total spans ever recorded
}

// NewTracer returns a tracer holding up to capacity spans (<= 0 selects
// DefaultSpanCapacity). The ring is allocated lazily on first record.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{epoch: time.Now(), capacity: capacity}
}

// Epoch is the tracer's time origin: Span.Start offsets are relative to it.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// now returns nanoseconds since the epoch on the monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if t.ring == nil {
		t.ring = make([]Span, t.capacity)
	}
	t.ring[t.n%t.capacity] = sp
	t.n++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= t.capacity {
		return append([]Span(nil), t.ring[:t.n]...)
	}
	out := make([]Span, 0, t.capacity)
	at := t.n % t.capacity
	out = append(out, t.ring[at:]...)
	out = append(out, t.ring[:at]...)
	return out
}

// SpansSince returns the retained spans recorded after the first `since`
// spans ever recorded (oldest first) together with the new total recorded
// count. Feeding the returned total back as the next call's `since` yields
// exactly the spans recorded in between — the delta primitive federation
// reports are built from. Spans the ring already overwrote are silently
// skipped; a `since` beyond the current total returns an empty delta.
func (t *Tracer) SpansSince(since int) ([]Span, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := t.n
	first := since
	if first < 0 {
		first = 0
	}
	if retained := total - t.capacity; first < retained {
		first = retained
	}
	if first >= total {
		return nil, total
	}
	out := make([]Span, 0, total-first)
	for i := first; i < total; i++ {
		out = append(out, t.ring[i%t.capacity])
	}
	return out, total
}

// Dropped reports how many spans the ring has overwritten.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= t.capacity {
		return 0
	}
	return t.n - t.capacity
}

// SpanStart is an in-progress span token returned by StartSpan. It is a
// value type: starting and ending a span performs no heap allocation, and
// the zero SpanStart (from a nil registry) is an inert no-op.
type SpanStart struct {
	tracer *Tracer
	hist   *Histogram
	start  int64
	index  int32
	worker int32
	stage  Stage
}

// StartSpan opens a span for one stage execution. End records it into the
// ring buffer and the per-stage latency histogram.
func (r *Registry) StartSpan(stage Stage, index, worker int) SpanStart {
	if r == nil {
		return SpanStart{}
	}
	return SpanStart{
		tracer: r.tracer,
		hist:   r.stage[stage],
		start:  r.tracer.now(),
		index:  int32(index),
		worker: int32(worker),
		stage:  stage,
	}
}

// End closes the span.
func (s SpanStart) End() {
	if s.tracer == nil {
		return
	}
	dur := s.tracer.now() - s.start
	s.hist.Observe(dur)
	s.tracer.record(Span{Stage: s.stage, Index: s.index, Worker: s.worker, Start: s.start, Dur: dur})
}

// ObserveSpan records an already-measured span (used when the duration is
// known only after the fact, e.g. a journal fsync batch timed inside the
// checkpoint layer).
func (r *Registry) ObserveSpan(stage Stage, index, worker int, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.stage[stage].ObserveDuration(dur)
	off := start.Sub(r.tracer.epoch).Nanoseconds()
	if off < 0 {
		off = 0
	}
	r.tracer.record(Span{Stage: stage, Index: int32(index), Worker: int32(worker), Start: off, Dur: int64(dur)})
}
