// Package telemetry is ER-π's engine-wide observability layer: a
// stdlib-only metrics registry (atomic counters, gauges, and fixed-bucket
// histograms with snapshot/merge, exportable via expvar), a span tracer
// that records one span per exploration stage keyed by (interleaving
// index, worker id) into a bounded ring buffer, a Chrome trace_event
// exporter, a live progress tracker, and an HTTP status server.
//
// Telemetry is strictly observational: the engine behaves byte-identically
// with and without a registry attached (a property pinned by the runner's
// determinism tests). Every type in this package is nil-safe — calling any
// method on a nil *Registry, *Counter, *Gauge, *Histogram, or *Tracer is a
// no-op that performs zero allocations, so instrumented hot loops cost
// nothing when telemetry is off.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Max raises the gauge to n if n is larger (a running maximum).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the histogram bucket upper bounds used for
// duration metrics: powers of four from 1.02µs to ~4.3s, in nanoseconds.
// Fixed buckets keep Observe allocation-free and make snapshots of equal
// shape mergeable bucket-by-bucket across shards.
var DefaultLatencyBounds = []int64{
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
	1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32,
}

// Histogram is a fixed-bucket histogram: len(bounds)+1 atomic buckets (the
// last is overflow), plus count, sum, and max.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns how many values were observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Max    int64   `json:"max"`
}

// Mean returns the average observed value (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts: the upper bound of the bucket holding the rank-q observation,
// with Max standing in for the unbounded overflow bucket. Resolution is
// therefore the bucket layout's, which is all a latency comparison (e.g.
// blocking vs polling turn waits) needs.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Merge folds another snapshot into this one. Bucket counts are summed
// when the bound layouts match; otherwise only the scalar aggregates
// (count, sum, max) merge.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(s.Counts) == len(o.Counts) && boundsEqual(s.Bounds, o.Bounds) {
		for i := range s.Counts {
			s.Counts[i] += o.Counts[i]
		}
	}
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Registry names and owns a run's metrics, its span tracer, and its
// progress tracker. Metric registration (Counter/Gauge/Histogram lookups
// by name) takes a mutex and is meant for setup time; the returned handles
// are lock-free and safe for concurrent use on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	tracer   *Tracer
	progress *Progress
	// stage pre-resolves one latency histogram per exploration stage so
	// span End never takes the registry lock.
	stage [stageMax + 1]*Histogram
}

// New returns an empty registry with a tracer of DefaultSpanCapacity.
func New() *Registry { return NewWithCapacity(DefaultSpanCapacity) }

// NewWithCapacity returns an empty registry whose tracer ring holds up to
// spanCapacity spans (older spans are dropped beyond it).
func NewWithCapacity(spanCapacity int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(spanCapacity),
		progress: &Progress{},
	}
	for st := Stage(1); st <= stageMax; st++ {
		r.stage[st] = r.Histogram("stage." + st.String() + "_ns")
	}
	return r
}

// Counter returns (registering on first use) the named counter. Nil-safe:
// a nil registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram over
// DefaultLatencyBounds.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(DefaultLatencyBounds)
		r.hists[name] = h
	}
	return h
}

// HistogramWithBounds returns (registering on first use) the named
// histogram over the given bucket upper bounds. A histogram keeps the
// bounds it was first registered with; later lookups under the same name
// return the existing histogram regardless of the bounds argument. Use
// this for value distributions that are not latencies (e.g. depths or
// sizes), where DefaultLatencyBounds would lump everything into one
// bucket.
func (r *Registry) HistogramWithBounds(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's span tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Progress returns the registry's live progress tracker (nil for a nil
// registry).
func (r *Registry) Progress() *Progress {
	if r == nil {
		return nil
	}
	return r.progress
}

// Snapshot copies every metric's current value. Safe to call while the
// run is live.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable for
// JSON export and cross-shard merging.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Merge folds another snapshot into this one: counters and histogram
// buckets sum, gauges take the maximum (shard-merge semantics).
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64)
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, h := range o.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			// Deep-copy the counts so later merges don't alias o.
			cp := h
			cp.Counts = append([]int64(nil), h.Counts...)
			s.Histograms[name] = cp
			continue
		}
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Summary renders the snapshot for humans: counters and gauges sorted by
// name, histograms as count/mean/max.
func (s Snapshot) Summary() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-32s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %-32s %d (gauge)\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		if s.Histograms[name].Count > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "  %-32s n=%d mean=%s max=%s\n", name, h.Count,
			time.Duration(h.Mean()).Round(time.Microsecond),
			time.Duration(h.Max).Round(time.Microsecond))
	}
	return b.String()
}
