package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The registry is exported to the process-global expvar namespace under
// one name. expvar.Publish panics on duplicates, so the Func is published
// once and reads whichever registry was bound most recently — sequential
// runs (and tests) can each bind their own registry without conflict.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// PublishExpvar binds reg to the global expvar variable "erpi" (replacing
// any previously bound registry), so /debug/vars serves its live snapshot.
func PublishExpvar(reg *Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("erpi", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
}

// StatusServer serves a run's live observability surface over HTTP:
//
//	/progress      JSON progress snapshot (explored/total, rate, ETA,
//	               quarantined, per-worker state)
//	/metrics       JSON registry snapshot (counters, gauges, histograms)
//	/trace         Chrome trace_event dump of the retained spans
//	/debug/vars    expvar (includes the registry under "erpi")
//	/debug/pprof/  net/http/pprof profiles
type StatusServer struct {
	reg *Registry
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
	// fed, when set, upgrades /progress, /metrics, and /trace to the
	// fleet-wide federated view (coordinator + every reporting worker).
	fed atomic.Pointer[Federation]
}

// NewStatusServer binds addr (host:port; port 0 picks a free port) and
// starts serving reg immediately in a background goroutine.
func NewStatusServer(addr string, reg *Registry) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: status server listen %s: %w", addr, err)
	}
	PublishExpvar(reg)
	s := &StatusServer{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Handle mounts an extra handler on the status server's mux, letting a
// host (e.g. the distributed coordinator's jobs API) extend the same
// observability port. ServeMux registration is lock-protected, so mounting
// after the server started serving is safe.
func (s *StatusServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// ServeFederation switches the server's /progress, /metrics, and /trace
// endpoints to the fleet-wide federated view. Safe to call while serving.
func (s *StatusServer) ServeFederation(f *Federation) { s.fed.Store(f) }

// Addr returns the bound address (resolving a requested port 0).
func (s *StatusServer) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *StatusServer) URL() string { return "http://" + s.Addr() }

// Close stops the server and releases the port.
func (s *StatusServer) Close() error { return s.srv.Close() }

func (s *StatusServer) handleProgress(w http.ResponseWriter, _ *http.Request) {
	if f := s.fed.Load(); f != nil {
		writeJSON(w, f.Progress())
		return
	}
	writeJSON(w, s.reg.Progress().Snapshot())
}

func (s *StatusServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap Snapshot
	if f := s.fed.Load(); f != nil {
		snap = f.Snapshot()
	} else {
		snap = s.reg.Snapshot()
	}
	// Content negotiation: Prometheus scrapers (Accept: text/plain or
	// application/openmetrics-text) get the text exposition; everything
	// else keeps the JSON default, byte-identical to before.
	if WantsPrometheus(r.Header) {
		w.Header().Set("Content-Type", PrometheusContentType)
		if err := WritePrometheus(w, snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, snap)
}

func (s *StatusServer) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="erpi-trace.json"`)
	var err error
	if f := s.fed.Load(); f != nil {
		err = f.WriteTrace(w)
	} else {
		err = s.reg.WriteTrace(w)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
