package coordinator

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"

	"github.com/er-pi/erpi/internal/logx"
)

// resultLine is one aggregated interleaving's durable record: its key, the
// behaviour signature (or quarantine error), and any assertion violations.
// results.log pairs with the checkpoint journal (explored.log): the journal
// says *which* interleavings are committed, results.log says *what they
// did*, and the write ordering invariant — a range's result lines are
// synced before its journal keys are appended — means every journaled key
// has a durable result line, so a resumed coordinator reconstructs the
// digest and violation set without re-executing anything.
type resultLine struct {
	Index      int            `json:"index"`
	Key        string         `json:"key"`
	Sig        string         `json:"sig,omitempty"`
	Attempts   int            `json:"attempts,omitempty"`
	Error      string         `json:"error,omitempty"`
	Subsumed   bool           `json:"subsumed,omitempty"`
	Violations []JobViolation `json:"violations,omitempty"`
}

// JobViolation is one assertion failure, in serializable form.
type JobViolation struct {
	Index     int    `json:"index"`
	Key       string `json:"key,omitempty"`
	Assertion string `json:"assertion"`
	Error     string `json:"error"`
}

const resultLogName = "results.log"

// resultLog is an append-only JSON-lines file in the job's journal dir.
type resultLog struct {
	f *os.File
	w *bufio.Writer
}

func openResultLog(dir string) (*resultLog, error) {
	f, err := os.OpenFile(filepath.Join(dir, resultLogName), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &resultLog{f: f, w: bufio.NewWriter(f)}, nil
}

func (l *resultLog) append(line resultLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(data); err != nil {
		return err
	}
	return l.w.WriteByte('\n')
}

// sync flushes buffered lines to stable storage.
func (l *resultLog) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *resultLog) close() error {
	flushErr := l.w.Flush()
	closeErr := l.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// loadResultLines reads a job dir's result log, skipping torn or corrupt
// lines (a crash mid-append leaves at most one; skipping it only means that
// interleaving is re-executed, which is always safe).
func loadResultLines(dir string) ([]resultLine, error) {
	f, err := os.Open(filepath.Join(dir, resultLogName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []resultLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line resultLine
		if err := json.Unmarshal(raw, &line); err != nil || line.Key == "" {
			logx.L().Warn("skipping corrupt result line",
				"component", "coordinator", "line", lineNo, "dir", dir)
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
