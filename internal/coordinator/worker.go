package coordinator

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// WorkerOptions configures one worker process (or goroutine).
type WorkerOptions struct {
	// Addr is the coordinator's worker address.
	Addr string
	// Name uniquely identifies this worker across the cluster; it is half
	// of every fencing token. Defaults to "w<pid>".
	Name string
	// Job pins the worker to one job id ("" = serve whatever runs).
	Job string
	// Once returns after the first bound job finishes instead of waiting
	// for more work (tests and benchmarks).
	Once bool
	// RetryInterval is the redial/drain backoff (default 250ms).
	RetryInterval time.Duration
	// Telemetry, when set, receives the worker's execution metrics.
	Telemetry *telemetry.Registry
	// TelemetryInterval throttles telemetry reports to the coordinator
	// (default 200ms; negative disables reporting). Reports are forced at
	// range boundaries regardless of the throttle, so the coordinator's
	// fleet view is current whenever a range commits.
	TelemetryInterval time.Duration

	// Test hooks — nil in production.
	//
	// BeforeExecute runs before each interleaving executes; blocking it
	// pauses the worker mid-range (the lease-expiry chaos test).
	BeforeExecute func(index int)
	// BeforeCommit runs before each range commit is sent.
	BeforeCommit func(rangeID int)
	// CrashAfterExecutions > 0 simulates a SIGKILL after that many
	// executions: the lease mutex is orphaned (left to expire, never
	// released), the connection drops, and RunWorker returns
	// ErrWorkerCrashed.
	CrashAfterExecutions int
}

// ErrWorkerCrashed is returned by RunWorker when the CrashAfterExecutions
// hook fired.
var ErrWorkerCrashed = errors.New("coordinator: worker crash injected")

// errRangeAbandoned aborts the current range without failing the worker
// (fenced mid-range, or the lockserver lease was lost).
var errRangeAbandoned = errors.New("range abandoned")

// RunWorker connects to a coordinator and serves it until ctx is done:
// hello → lease ranges → execute each interleaving with full engine
// semantics (runner.Executor) → commit results, heartbeating long ranges
// and holding a per-range lockserver lease when the cluster has one. On
// "done" it rebinds to the next job (or returns, with Once/Job set).
// Transport errors redial; the coordinator requeues whatever was held.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if o.Addr == "" {
		return fmt.Errorf("coordinator: worker needs an Addr")
	}
	if o.Name == "" {
		o.Name = fmt.Sprintf("w%d", os.Getpid())
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = 250 * time.Millisecond
	}
	w := &worker{o: o, executed: 0}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := w.serveOnce(ctx)
		switch {
		case err == nil:
			// A job completed cleanly.
			if o.Once || o.Job != "" {
				return nil
			}
		case errors.Is(err, ErrWorkerCrashed):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Transport or server error: back off and redial.
			if !sleepCtx(ctx, o.RetryInterval) {
				return ctx.Err()
			}
		}
	}
}

type worker struct {
	o        WorkerOptions
	executed int // lifetime execution count (CrashAfterExecutions hook)

	// Telemetry reporting state: the tracer ring position already shipped
	// and the last report time (throttle). Survives redials — metric
	// snapshots are cumulative, so a reconnect never double-counts.
	spanMark   int
	lastReport time.Time
}

// defaultTelemetryInterval is the report throttle when WorkerOptions
// leaves TelemetryInterval zero.
const defaultTelemetryInterval = 200 * time.Millisecond

// report ships the worker's telemetry to the coordinator: cumulative
// metrics and progress plus the span delta since the previous report.
// No-op without a registry (or with reporting disabled); throttled to
// TelemetryInterval unless forced.
func (w *worker) report(sess *session, force bool) error {
	if w.o.Telemetry == nil || w.o.TelemetryInterval < 0 {
		return nil
	}
	interval := w.o.TelemetryInterval
	if interval == 0 {
		interval = defaultTelemetryInterval
	}
	if !force && time.Since(w.lastReport) < interval {
		return nil
	}
	spans, mark := w.o.Telemetry.Tracer().SpansSince(w.spanMark)
	rep := telemetry.WorkerReport{
		Worker:         w.o.Name,
		EpochUnixNanos: w.o.Telemetry.Tracer().Epoch().UnixNano(),
		Metrics:        w.o.Telemetry.Snapshot(),
		Progress:       w.o.Telemetry.Progress().Snapshot(),
		Spans:          spans,
	}
	reply, err := sess.roundTrip(&wireMsg{Type: msgTelemetry, Worker: w.o.Name, Telemetry: &rep})
	if err != nil {
		return err
	}
	if reply.Type != msgOK {
		return fmt.Errorf("coordinator: unexpected telemetry reply %q", reply.Type)
	}
	w.spanMark = mark
	w.lastReport = time.Now()
	return nil
}

// session is one connection's lockstep transport.
type session struct {
	conn net.Conn
	sc   *bufio.Scanner
	w    *bufio.Writer
}

func dialSession(ctx context.Context, addr string) (*session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxWireLine)
	return &session{conn: conn, sc: sc, w: bufio.NewWriter(conn)}, nil
}

// roundTrip sends one message and reads its reply.
func (s *session) roundTrip(m *wireMsg) (*wireMsg, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if _, err := s.w.Write(data); err != nil {
		return nil, err
	}
	if err := s.w.Flush(); err != nil {
		return nil, err
	}
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("coordinator: connection closed")
	}
	var reply wireMsg
	if err := json.Unmarshal(s.sc.Bytes(), &reply); err != nil {
		return nil, err
	}
	if reply.Type == msgError {
		return nil, fmt.Errorf("coordinator: %s", reply.Err)
	}
	return &reply, nil
}

// serveOnce binds to one job and serves it to completion. nil return =
// the job finished (done received); errors are transport/protocol/crash.
func (w *worker) serveOnce(ctx context.Context) error {
	sess, err := dialSession(ctx, w.o.Addr)
	if err != nil {
		return err
	}
	defer sess.conn.Close()
	// Unblock reads when ctx dies mid-roundtrip.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			sess.conn.Close()
		case <-watchDone:
		}
	}()

	// Bind to a job, waiting out drains.
	var hello *wireMsg
	for {
		hello, err = sess.roundTrip(&wireMsg{Type: msgHello, Worker: w.o.Name, Job: w.o.Job})
		if err != nil {
			return err
		}
		switch hello.Type {
		case msgHello:
		case msgDrain:
			if !sleepCtx(ctx, retryDelay(hello.RetryMs, w.o.RetryInterval)) {
				return ctx.Err()
			}
			continue
		case msgDone:
			return nil
		default:
			return fmt.Errorf("coordinator: unexpected hello reply %q", hello.Type)
		}
		break
	}

	spec := hello.Spec
	if spec == nil {
		return fmt.Errorf("coordinator: hello reply has no spec")
	}
	scenario, _, err := spec.build()
	if err != nil {
		return err
	}
	cfg := spec.execConfig()
	cfg.Telemetry = w.o.Telemetry
	exec, err := runner.NewExecutor(scenario, cfg)
	if err != nil {
		return err
	}

	ttl := time.Duration(hello.LeaseTTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	var lock *lockserver.Client
	if hello.LockAddr != "" {
		lock, err = lockserver.Dial(hello.LockAddr)
		if err != nil {
			return err
		}
		defer func() {
			if lock != nil {
				_ = lock.Close()
			}
		}()
	}

	job := hello.Job
	// Seed the coordinator's fleet view as soon as the job binds, before
	// the first range lands.
	if err := w.report(sess, true); err != nil {
		return err
	}
	// Best-effort final flush on every exit path (done, drain, cancel,
	// transport error): reports are cumulative, so a duplicate is folded
	// idempotently, and without it a cancellation racing the last commit
	// would leave the fleet view short of this worker's final ranges.
	defer func() { _ = w.report(sess, true) }()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := w.report(sess, false); err != nil {
			return err
		}
		reply, err := sess.roundTrip(&wireMsg{Type: msgLease})
		if err != nil {
			return err
		}
		switch reply.Type {
		case msgDone:
			return nil
		case msgDrain:
			if !sleepCtx(ctx, retryDelay(reply.RetryMs, w.o.RetryInterval)) {
				return ctx.Err()
			}
			continue
		case msgRange:
		default:
			return fmt.Errorf("coordinator: unexpected lease reply %q", reply.Type)
		}
		err = w.runRange(ctx, sess, exec, lock, job, ttl, reply)
		switch {
		case err == nil:
			// Force a report at the range boundary so fleet counters are
			// current the moment the commit is visible.
			if err := w.report(sess, true); err != nil {
				return err
			}
			continue
		case errors.Is(err, errRangeAbandoned):
			continue
		default:
			return err
		}
	}
}

// runRange executes one granted range under its lease and commits it.
func (w *worker) runRange(ctx context.Context, sess *session, exec *runner.Executor, lock *lockserver.Client, job string, ttl time.Duration, grant *wireMsg) error {
	ils := ilsFromWire(grant.Interleavings)
	token := leaseToken(w.o.Name, grant.Epoch)

	// Take the range's lockserver lease. A previous holder that was
	// SIGKILLed left its key to expire, so allow a couple of TTLs.
	var mutex *lockserver.DMutex
	var lost <-chan struct{}
	if lock != nil {
		key := fmt.Sprintf("erpi/job/%s/range/%d", job, grant.Range)
		mutex = lockserver.NewDMutex(lock, key, token, ttl, ttl/10)
		mutex.AutoRenew(0)
		lockCtx, cancel := context.WithTimeout(ctx, 4*ttl)
		err := mutex.Lock(lockCtx)
		cancel()
		if err != nil {
			// Could not acquire (previous lease still live, or server
			// unreachable): skip; the coordinator will requeue the range.
			return errRangeAbandoned
		}
		lost = mutex.Lost()
	}

	results := make([]wireResult, 0, len(ils))
	lastContact := time.Now()
	for i, il := range ils {
		if err := ctx.Err(); err != nil {
			w.abandon(mutex)
			return err
		}
		select {
		case <-lost:
			// Renewal failed: someone else may hold the range. Stop
			// without committing; fencing protects the ledger anyway.
			return errRangeAbandoned
		default:
		}
		index := grant.Start + i
		if w.o.BeforeExecute != nil {
			w.o.BeforeExecute(index)
		}
		if w.o.CrashAfterExecutions > 0 && w.executed >= w.o.CrashAfterExecutions {
			// Simulated SIGKILL: the lease key is orphaned (expires on its
			// own, exactly like a dead process), the connection just drops.
			if mutex != nil {
				mutex.Orphan()
			}
			sess.conn.Close()
			return ErrWorkerCrashed
		}
		// Heartbeat long ranges so slow executions don't look like death,
		// and stream telemetry so the fleet view tracks mid-range progress.
		if time.Since(lastContact) > ttl/2 {
			hb, err := sess.roundTrip(&wireMsg{Type: msgHeartbeat, Range: grant.Range, Epoch: grant.Epoch})
			if err != nil {
				w.abandon(mutex)
				return err
			}
			lastContact = time.Now()
			if hb.Type == msgFenced {
				w.abandon(mutex)
				return errRangeAbandoned
			}
			if err := w.report(sess, false); err != nil {
				w.abandon(mutex)
				return err
			}
		}
		outcome, attempts, execErr := exec.Execute(ctx, il, index)
		w.executed++
		res := wireResult{Index: index, Key: il.Key(), Attempts: attempts}
		switch {
		case errors.Is(execErr, runner.ErrSubsumed):
			res.Subsumed = true
		case execErr != nil:
			if ctx.Err() != nil {
				w.abandon(mutex)
				return ctx.Err()
			}
			res.Error = execErr.Error()
		default:
			res.Outcome = toWireOutcome(outcome)
		}
		results = append(results, res)
	}

	if w.o.BeforeCommit != nil {
		w.o.BeforeCommit(grant.Range)
	}
	reply, err := sess.roundTrip(&wireMsg{Type: msgCommit, Range: grant.Range, Epoch: grant.Epoch, Results: results})
	if err != nil {
		w.abandon(mutex)
		return err
	}
	switch reply.Type {
	case msgOK:
		if mutex != nil {
			_ = mutex.Unlock()
		}
		return nil
	case msgFenced:
		w.abandon(mutex)
		return errRangeAbandoned
	default:
		w.abandon(mutex)
		return fmt.Errorf("coordinator: unexpected commit reply %q", reply.Type)
	}
}

// abandon stops renewing without blocking on the lock server (the mutex
// may already be lost or the server gone).
func (w *worker) abandon(m *lockserver.DMutex) {
	if m != nil {
		m.Abandon()
	}
}

// retryDelay picks the drain backoff: the server's hint, else the default.
func retryDelay(hintMs int64, def time.Duration) time.Duration {
	if hintMs > 0 {
		return time.Duration(hintMs) * time.Millisecond
	}
	return def
}

// sleepCtx sleeps d unless ctx dies first; reports whether it slept fully.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
