package coordinator

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fuzzSpec is the distributed fuzz workload every test in this file
// leases out: a seeded generation-batched exploration whose corpus lives
// on the coordinator.
func fuzzSpec() JobSpec {
	return JobSpec{
		Bug:                "Roshi-1",
		Mode:               "fuzz",
		Seed:               7,
		FuzzGenerationSize: 16,
		MaxInterleavings:   testCap,
	}
}

// TestDistributedFuzzMatchesSequential pins distributed generation-batched
// fuzzing against the in-process engine: the coordinator owns the corpus,
// carves each generation into leased ranges, holds further carving at the
// generation boundary until every range aggregates, and evolves exactly
// once — so two concurrent workers must land on the sequential run's
// keyed-signature digest and explored count, with zero double commits.
func TestDistributedFuzzMatchesSequential(t *testing.T) {
	spec := fuzzSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 500 * time.Millisecond})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: name, Once: true})
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, j.ID())), wantExplored)
}

// TestDistributedFuzzResume pins the crash-resume trajectory: a
// coordinator restarted mid-fuzz-job replays the journaled results into
// the rebuilt explorer (classifying each already-executed child with its
// recorded signature), so the finished job still matches the sequential
// digest instead of evolving a different corpus after the restart.
func TestDistributedFuzzResume(t *testing.T) {
	spec := fuzzSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 500 * time.Millisecond})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Execute part of the job, then stop the coordinator mid-flight. The
	// crash lands the worker mid-generation, so the restart rebuilds an
	// explorer with a partially classified generation in progress.
	err = RunWorker(context.Background(), WorkerOptions{
		Addr: svc.Addr(), Name: "doomed", CrashAfterExecutions: 40,
	})
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("doomed worker returned %v, want ErrWorkerCrashed", err)
	}
	id := j.ID()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	svc2 := startService(t, Options{JournalRoot: root, LeaseTTL: 500 * time.Millisecond})
	if err := svc2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := svc2.Job(id)
	if !ok {
		t.Fatalf("job %s not restored", id)
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc2.Addr(), Name: "late", Once: true}); err != nil {
		t.Fatalf("late worker: %v", err)
	}
	st := waitDone(t, j2)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch across restart:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
}
