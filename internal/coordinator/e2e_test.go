package coordinator

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMultiProcessSIGKILLSmoke is the end-to-end chaos smoke: a real
// erpi-coordinator serve process (with embedded lockserver), two real
// worker processes over TCP, one of them SIGKILLed mid-exploration — and
// the job must still complete with an outcome digest byte-identical to
// the sequential in-process engine.
func TestMultiProcessSIGKILLSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short")
	}

	// Coarse ranges (64 interleavings per lease) keep the victim holding a
	// lease almost all the time, so the SIGKILL lands mid-range.
	spec := JobSpec{Bug: "Roshi-1", Mode: "dfs", MaxInterleavings: 960, RangeSize: 64}
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	bin := filepath.Join(t.TempDir(), "erpi-coordinator")
	build := exec.Command("go", "build", "-o", bin, "github.com/er-pi/erpi/cmd/erpi-coordinator")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	root := t.TempDir()
	serve := exec.Command(bin, "serve",
		"-journal-root", root,
		"-embed-lock",
		"-lease-ttl", "300ms",
		"-status-addr", "127.0.0.1:0")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := serve.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	t.Cleanup(func() {
		_ = serve.Process.Kill()
		_, _ = serve.Process.Wait()
	})

	var workerAddr, statusURL string
	sc := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	for workerAddr == "" || statusURL == "" {
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				close(lineCh)
			}
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("serve exited before printing its addresses")
			}
			if rest, found := strings.CutPrefix(line, "coordinator listening on "); found {
				workerAddr = rest
			}
			if rest, found := strings.CutPrefix(line, "status: "); found {
				statusURL = strings.TrimSuffix(rest, "/jobs")
			}
		case <-deadline:
			t.Fatal("timed out waiting for serve to print its addresses")
		}
	}

	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(bin, "work", "-addr", workerAddr, "-name", name, "-once")
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %s: %v", name, err)
		}
		return w
	}

	// One kill scenario: submit the job, run the victim alone until it has
	// committed a range AND provably holds a lease (it is the only worker,
	// so a leased range is its), SIGKILL it, then start the survivor to
	// finish the job. Returns the final status and whether the kill landed
	// while the job was still running.
	runAttempt := func(attempt int) (JobStatus, bool) {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(statusURL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode submit: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit = %s (%+v)", resp.Status, st)
		}

		victim := startWorker(fmt.Sprintf("victim-%d", attempt))
		var survivor *exec.Cmd
		defer func() {
			_ = victim.Process.Kill()
			_, _ = victim.Process.Wait()
			if survivor != nil {
				_ = survivor.Process.Kill()
				_ = survivor.Wait()
			}
		}()

		getStatus := func() JobStatus {
			resp, err := http.Get(fmt.Sprintf("%s/jobs/%s", statusURL, st.ID))
			if err != nil {
				t.Fatalf("poll: %v", err)
			}
			defer resp.Body.Close()
			var cur JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
				t.Fatalf("decode poll: %v", err)
			}
			return cur
		}
		killDeadline := time.Now().Add(30 * time.Second)
		for {
			cur := getStatus()
			if (cur.Explored >= spec.RangeSize && cur.RangesLeased >= 1) || cur.State != StateRunning {
				break
			}
			if time.Now().After(killDeadline) {
				t.Fatalf("no progress before kill: %+v", cur)
			}
			time.Sleep(2 * time.Millisecond)
		}
		killedMidRun := getStatus().State == StateRunning
		if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("SIGKILL victim: %v", err)
		}
		_, _ = victim.Process.Wait()
		survivor = startWorker(fmt.Sprintf("survivor-%d", attempt))

		resp, err = http.Get(fmt.Sprintf("%s/jobs/%s?wait=60", statusURL, st.ID))
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		var final JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
			t.Fatalf("decode final: %v", err)
		}
		resp.Body.Close()

		// Completion + digest parity must hold on every attempt.
		if final.State != StateDone {
			t.Fatalf("final state = %s (%+v)", final.State, final)
		}
		if final.Explored != wantExplored {
			t.Fatalf("explored = %d, want %d", final.Explored, wantExplored)
		}
		if final.Digest != wantDigest {
			t.Fatalf("digest mismatch after SIGKILL:\n distributed %s\n sequential  %s", final.Digest, wantDigest)
		}
		assertUniqueKeys(t, journalKeys(t, filepath.Join(root, final.ID)), wantExplored)
		return final, killedMidRun
	}

	// The SIGKILL can land in the narrow window between leases, in which
	// case nothing gets orphaned; retry until the kill provably interrupted
	// a leased range (requeues >= 1).
	for attempt := 1; ; attempt++ {
		final, killedMidRun := runAttempt(attempt)
		if killedMidRun && final.Requeues >= 1 {
			break
		}
		if attempt >= 3 {
			t.Fatalf("no attempt orphaned a range (last: requeues=%d midRun=%v)", final.Requeues, killedMidRun)
		}
		t.Logf("attempt %d: kill missed a leased range (requeues=%d, midRun=%v); retrying", attempt, final.Requeues, killedMidRun)
	}
}
