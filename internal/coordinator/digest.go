package coordinator

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"github.com/er-pi/erpi/internal/runner"
)

// Digest accumulates interleaving-key → outcome-signature pairs and folds
// them into an order-insensitive hash. Two explorations that executed the
// same set of interleavings with the same behaviours produce byte-identical
// sums regardless of execution order, worker count, crashes, or resume —
// it is the parity pin the distributed engine is held to against
// sequential Workers=1 runs.
type Digest struct {
	mu   sync.Mutex
	sigs map[string]string
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{sigs: make(map[string]string)} }

// Observe folds one outcome in; it has the runner.Config.OnOutcome
// signature so a sequential baseline can feed a digest directly.
func (d *Digest) Observe(o *runner.Outcome) {
	d.Add(o.Interleaving.Key(), runner.OutcomeSignature(o))
}

// Add folds a precomputed key/signature pair in (the coordinator's resume
// path replays signatures from results.log without re-executing). Adding
// the same key twice keeps the last signature; equal-behaviour re-executions
// are therefore idempotent.
func (d *Digest) Add(key, sig string) {
	d.mu.Lock()
	d.sigs[key] = sig
	d.mu.Unlock()
}

// Len is the number of distinct interleavings folded in.
func (d *Digest) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.sigs)
}

// Sum renders the digest: sha256 over the sorted key→signature entries.
func (d *Digest) Sum() string {
	d.mu.Lock()
	keys := make([]string, 0, len(d.sigs))
	for k := range d.sigs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(d.sigs[k]))
		h.Write([]byte{'\n'})
	}
	d.mu.Unlock()
	return hex.EncodeToString(h.Sum(nil))
}
