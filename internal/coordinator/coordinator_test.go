package coordinator

import (
	"bufio"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// testCap keeps chaos runs fast: 96 interleavings at rangeSize 8 = 12
// ranges, enough for crashes to land mid-job.
const testCap = 96

func testSpec() JobSpec {
	return JobSpec{Bug: "Roshi-1", Mode: "dfs", MaxInterleavings: testCap}
}

// sequentialBaseline runs the spec through the one-worker in-process
// engine and returns its digest and explored count — the ground truth
// every distributed run is pinned against.
func sequentialBaseline(t *testing.T, spec JobSpec) (string, int) {
	t.Helper()
	scenario, _, err := spec.build()
	if err != nil {
		t.Fatalf("build scenario: %v", err)
	}
	d := NewDigest()
	res, err := runner.Run(scenario, runner.Config{
		Mode:               runner.Mode(spec.Mode),
		Seed:               spec.Seed,
		FuzzGenerationSize: spec.FuzzGenerationSize,
		MaxInterleavings:   spec.MaxInterleavings,
		Workers:            1,
		OnOutcome:          d.Observe,
	})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return d.Sum(), res.Explored
}

func startLockServer(t *testing.T) string {
	t.Helper()
	srv := lockserver.NewServer(lockserver.NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("lockserver: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

func startService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.JournalRoot == "" {
		opts.JournalRoot = t.TempDir()
	}
	if opts.RangeSize == 0 {
		opts.RangeSize = 8
	}
	svc, err := New(opts)
	if err != nil {
		t.Fatalf("coordinator.New: %v", err)
	}
	t.Cleanup(func() { _ = svc.Close() })
	return svc
}

func waitDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job did not finish: %+v", j.Status())
	}
	return j.Status()
}

// journalKeys reads explored.log raw (no dedup) so tests can assert that
// no interleaving was journaled twice — the zero-double-commit pin.
func journalKeys(t *testing.T, dir string) []string {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "explored.log"))
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	var keys []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if sc.Text() != "" {
			keys = append(keys, sc.Text())
		}
	}
	return keys
}

func assertUniqueKeys(t *testing.T, keys []string, want int) {
	t.Helper()
	seen := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			t.Fatalf("interleaving %q journaled twice (double commit)", k)
		}
		seen[k] = struct{}{}
	}
	if want >= 0 && len(keys) != want {
		t.Fatalf("journal has %d keys, want %d", len(keys), want)
	}
}

func TestSingleWorkerMatchesSequential(t *testing.T) {
	spec := testSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 500 * time.Millisecond})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: "w1", Once: true}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, j.ID())), wantExplored)
}

// TestWorkerSIGKILLRecovery is the issue's first chaos pin: one of two
// workers dies mid-range (connection drops, lease key orphaned to expire
// on its own — the faithful SIGKILL simulation), and the survivor finishes
// the job with a digest byte-identical to sequential and zero
// double-committed journal entries.
func TestWorkerSIGKILLRecovery(t *testing.T) {
	spec := testSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	lockAddr := startLockServer(t)
	root := t.TempDir()
	reg := telemetry.New()
	svc := startService(t, Options{
		JournalRoot: root,
		LockAddr:    lockAddr,
		LeaseTTL:    150 * time.Millisecond,
		Telemetry:   reg,
	})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	crashed := make(chan error, 1)
	go func() {
		crashed <- RunWorker(context.Background(), WorkerOptions{
			Addr:                 svc.Addr(),
			Name:                 "victim",
			CrashAfterExecutions: 5,
		})
	}()
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: "survivor", Once: true}); err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if err := <-crashed; !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("victim returned %v, want ErrWorkerCrashed", err)
	}

	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1 (the victim's range must have been orphaned)", st.Requeues)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch after worker kill:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined = %d, want 0", st.Quarantined)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, j.ID())), wantExplored)
}

// TestLeaseExpiryFencesZombieCommit is the issue's second chaos pin: a
// worker pauses just before committing, its lease is expired out from
// under it, the range is requeued and re-executed elsewhere — and when the
// zombie finally commits, the stale epoch is fenced, keeping the journal
// free of double commits.
func TestLeaseExpiryFencesZombieCommit(t *testing.T) {
	spec := testSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	lockAddr := startLockServer(t)
	root := t.TempDir()
	svc := startService(t, Options{
		JournalRoot: root,
		LockAddr:    lockAddr,
		LeaseTTL:    200 * time.Millisecond,
	})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	paused := make(chan int, 1)    // zombie reports the range it holds
	release := make(chan struct{}) // test lets the zombie commit late
	var once sync.Once
	zombieDone := make(chan error, 1)
	go func() {
		zombieDone <- RunWorker(context.Background(), WorkerOptions{
			Addr: svc.Addr(),
			Name: "zombie",
			Once: true,
			BeforeCommit: func(rangeID int) {
				once.Do(func() {
					paused <- rangeID
					<-release
				})
			},
		})
	}()

	var pausedRange int
	select {
	case pausedRange = <-paused:
	case <-time.After(30 * time.Second):
		t.Fatal("zombie never reached its first commit")
	}

	// Expire the zombie's lease: delete its lock key, exactly what the
	// lockserver's TTL sweep would do. The janitor sees the key gone and
	// requeues the range; the zombie's AutoRenew loses the mutex but its
	// commit is already in flight once released.
	lc, err := lockserver.Dial(lockAddr)
	if err != nil {
		t.Fatalf("dial lockserver: %v", err)
	}
	defer lc.Close()
	if _, err := lc.Del(j.LeaseKey(pausedRange)); err != nil {
		t.Fatalf("delete lease key: %v", err)
	}

	// A healthy worker picks up the orphaned range and everything else.
	healthyDone := make(chan error, 1)
	go func() {
		healthyDone <- RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: "healthy", Once: true})
	}()

	st := waitDone(t, j)
	close(release) // zombie wakes and sends its stale commit
	if err := <-zombieDone; err != nil {
		t.Fatalf("zombie: %v", err)
	}
	if err := <-healthyDone; err != nil {
		t.Fatalf("healthy: %v", err)
	}

	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Requeues < 1 {
		t.Fatalf("requeues = %d, want >= 1", st.Requeues)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch after lease expiry:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
	// The zombie's late commit must have been fenced, not journaled.
	if got := j.Status().Fenced; got < 1 {
		t.Fatalf("fence rejections = %d, want >= 1", got)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, j.ID())), wantExplored)
}

// TestCoordinatorResume crash-recovers the coordinator itself: a worker
// dies mid-job, the service shuts down, a fresh service recovers the job
// from its journal — committed ranges replay from results.log, orphaned
// work re-executes — and the final digest still matches sequential with
// the cap honored exactly (no loss, no double count).
func TestCoordinatorResume(t *testing.T) {
	spec := testSpec()
	wantDigest, wantExplored := sequentialBaseline(t, spec)

	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 300 * time.Millisecond})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	jobID := j.ID()
	err = RunWorker(context.Background(), WorkerOptions{
		Addr:                 svc.Addr(),
		Name:                 "doomed",
		CrashAfterExecutions: 40,
	})
	if !errors.Is(err, ErrWorkerCrashed) {
		t.Fatalf("worker returned %v, want ErrWorkerCrashed", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close service: %v", err)
	}

	svc2 := startService(t, Options{JournalRoot: root, LeaseTTL: 300 * time.Millisecond})
	if err := svc2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := svc2.Job(jobID)
	if !ok {
		t.Fatalf("job %s not recovered", jobID)
	}
	if st := j2.Status(); st.Resumed == 0 {
		t.Fatalf("resumed = 0, want > 0 (committed ranges must survive the restart)")
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc2.Addr(), Name: "finisher", Once: true}); err != nil {
		t.Fatalf("finisher: %v", err)
	}
	st := waitDone(t, j2)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d (resume must neither lose nor double-count)", st.Explored, wantExplored)
	}
	if st.Digest != wantDigest {
		t.Fatalf("digest mismatch across coordinator restart:\n distributed %s\n sequential  %s", st.Digest, wantDigest)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, jobID)), wantExplored)

	// A third incarnation restores the finished job read-only.
	if err := svc2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	svc3 := startService(t, Options{JournalRoot: root})
	if err := svc3.Recover(); err != nil {
		t.Fatalf("recover finished: %v", err)
	}
	j3, ok := svc3.Job(jobID)
	if !ok {
		t.Fatal("finished job not recovered")
	}
	if st := j3.Status(); st.State != StateDone || st.Digest != wantDigest {
		t.Fatalf("finished job restored as %s/%s, want done/%s", st.State, st.Digest, wantDigest)
	}
}

// TestPoisonRangeQuarantine drives one range through its full lease budget
// without ever committing; the coordinator must quarantine it and finish
// the job with partial results instead of requeueing forever.
func TestPoisonRangeQuarantine(t *testing.T) {
	spec := JobSpec{Bug: "Roshi-1", Mode: "dfs", MaxInterleavings: 8, RangeSize: 8}
	j, err := openJob("poison", spec, t.TempDir(), 8, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("openJob: %v", err)
	}
	defer j.closeFiles()

	for lease := 1; lease <= maxRangeLeases; lease++ {
		grant := j.lease("flaky")
		if grant.Type != msgRange {
			t.Fatalf("lease %d: got %q, want range", lease, grant.Type)
		}
		if grant.Epoch != lease {
			t.Fatalf("lease %d: epoch = %d, want %d (fencing epoch must bump per lease)", lease, grant.Epoch, lease)
		}
		// The worker goes silent; force the deadline and reap.
		j.mu.Lock()
		j.ranges[grant.Range-1].deadline = time.Now().Add(-time.Second)
		j.mu.Unlock()
		j.reap(time.Now(), nil)
	}
	// The next lease pops the exhausted range, poisons it, and the job —
	// whose whole space was this one range — completes.
	reply := j.lease("flaky")
	if reply.Type != msgDone {
		t.Fatalf("after poison: got %q, want done", reply.Type)
	}
	st := waitDone(t, j)
	if st.Quarantined != 8 {
		t.Fatalf("quarantined = %d, want 8 (the whole poisoned range)", st.Quarantined)
	}
	if st.Requeues != maxRangeLeases {
		t.Fatalf("requeues = %d, want %d", st.Requeues, maxRangeLeases)
	}
}

func TestFencedHeartbeatAndCommit(t *testing.T) {
	spec := JobSpec{Bug: "Roshi-1", Mode: "dfs", MaxInterleavings: 16, RangeSize: 8}
	j, err := openJob("fence", spec, t.TempDir(), 8, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatalf("openJob: %v", err)
	}
	defer j.closeFiles()

	grant := j.lease("w1")
	if grant.Type != msgRange {
		t.Fatalf("lease: got %q", grant.Type)
	}
	// Orphan and re-grant: epoch bumps, old holder is a zombie.
	j.mu.Lock()
	j.ranges[grant.Range-1].deadline = time.Now().Add(-time.Second)
	j.mu.Unlock()
	j.reap(time.Now(), nil)
	regrant := j.lease("w2")
	if regrant.Range != grant.Range || regrant.Epoch != grant.Epoch+1 {
		t.Fatalf("regrant = range %d epoch %d, want range %d epoch %d",
			regrant.Range, regrant.Epoch, grant.Range, grant.Epoch+1)
	}
	if j.heartbeat("w1", grant.Range, grant.Epoch) {
		t.Fatal("stale heartbeat accepted")
	}
	results := make([]wireResult, len(grant.Interleavings))
	ok, err := j.commit("w1", grant.Range, grant.Epoch, results)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if ok {
		t.Fatal("stale commit accepted: zombie double-commit is possible")
	}
	if j.Status().Fenced < 2 {
		t.Fatalf("fenced = %d, want >= 2", j.Status().Fenced)
	}
	// The live holder's heartbeat and commit still work.
	if !j.heartbeat("w2", regrant.Range, regrant.Epoch) {
		t.Fatal("live heartbeat rejected")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"neither", JobSpec{}},
		{"both", JobSpec{Bug: "Roshi-1", Miscon: "CRDTs#4"}},
		{"badmode", JobSpec{Bug: "Roshi-1", Mode: "bogus"}},
	}
	for _, c := range cases {
		spec := c.spec
		if err := spec.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", c.name, c.spec)
		}
	}
	good := JobSpec{Bug: "Roshi-1"}
	if err := good.validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if good.Mode != string(runner.ModeERPi) {
		t.Fatalf("mode defaulted to %q, want erpi", good.Mode)
	}
	// ModeFuzz distributes by generation since the generation-batched
	// fuzzer landed; the spec must validate.
	fz := JobSpec{Bug: "Roshi-1", Mode: "fuzz", FuzzGenerationSize: 16}
	if err := fz.validate(); err != nil {
		t.Fatalf("fuzz spec rejected: %v", err)
	}
}

func TestDigestOrderInsensitive(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	a.Add("1,2,3", "sigA")
	a.Add("3,2,1", "sigB")
	b.Add("3,2,1", "sigB")
	b.Add("1,2,3", "sigA")
	if a.Sum() != b.Sum() {
		t.Fatal("digest depends on insertion order")
	}
	b.Add("1,2,3", "sigA") // idempotent re-add
	if a.Sum() != b.Sum() {
		t.Fatal("digest not idempotent under re-add")
	}
	a.Add("2,1,3", "sigC")
	if a.Sum() == b.Sum() {
		t.Fatal("digest ignored a new entry")
	}
}
