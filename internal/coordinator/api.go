package coordinator

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIHandler returns the jobs HTTP API, mountable on the telemetry status
// server (StatusServer.Handle("/jobs", ...)) or any mux:
//
//	POST   /jobs            submit a JobSpec, returns its JobStatus (201)
//	GET    /jobs            list all jobs
//	GET    /jobs/<id>       one job's status; ?wait=<seconds> blocks until
//	                        the job is terminal or the wait expires
//	DELETE /jobs/<id>       cancel a job
func (s *Service) APIHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		jobs := s.Jobs()
		out := make([]JobStatus, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, j.Status())
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "malformed spec: "+err.Error())
			return
		}
		j, err := s.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, j.Status())
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	switch r.Method {
	case http.MethodGet:
		if secs, _ := strconv.Atoi(r.URL.Query().Get("wait")); secs > 0 {
			t := time.NewTimer(time.Duration(secs) * time.Second)
			select {
			case <-j.Done():
			case <-t.C:
			case <-r.Context().Done():
			}
			t.Stop()
		}
		writeJSON(w, http.StatusOK, j.Status())
	case http.MethodDelete:
		j.cancel()
		writeJSON(w, http.StatusOK, j.Status())
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}
