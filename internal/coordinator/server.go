package coordinator

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/lockserver"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Options configures a coordinator Service.
type Options struct {
	// Addr is the TCP address workers connect to ("127.0.0.1:0" binds an
	// ephemeral port; read it back with Addr()).
	Addr string
	// LockAddr, when non-empty, is the lockserver workers take per-range
	// leases on, and the coordinator's second orphan-detection signal.
	// Empty runs heartbeat-only liveness (single-machine setups).
	LockAddr string
	// JournalRoot is the directory holding one checkpoint journal dir per
	// job. Required: it is the crash-recovery substrate.
	JournalRoot string
	// LeaseTTL is the lockserver lease TTL and the base of the heartbeat
	// grace period (default 2s).
	LeaseTTL time.Duration
	// RangeSize is how many interleavings one lease covers (default 16;
	// JobSpec.RangeSize overrides per job).
	RangeSize int
	// Telemetry, when set, receives coordinator metrics and lease/commit
	// spans.
	Telemetry *telemetry.Registry
}

// svcTel is the coordinator's nil-safe telemetry facade.
type svcTel struct {
	reg         *telemetry.Registry
	workersLive *telemetry.Gauge
	jobsRunning *telemetry.Gauge
	leased      *telemetry.Counter
	committed   *telemetry.Counter
	requeued    *telemetry.Counter
	fenced      *telemetry.Counter
	heartbeats  *telemetry.Counter
	poisoned    *telemetry.Counter
	quarantines *telemetry.Counter
	subsumes    *telemetry.Counter
}

func newSvcTel(reg *telemetry.Registry) *svcTel {
	if reg == nil {
		return nil
	}
	return &svcTel{
		reg:         reg,
		workersLive: reg.Gauge("coordinator.workers_live"),
		jobsRunning: reg.Gauge("coordinator.jobs_running"),
		leased:      reg.Counter("coordinator.ranges_leased"),
		committed:   reg.Counter("coordinator.ranges_committed"),
		requeued:    reg.Counter("coordinator.ranges_requeued"),
		fenced:      reg.Counter("coordinator.fence_rejections"),
		heartbeats:  reg.Counter("coordinator.heartbeats"),
		poisoned:    reg.Counter("coordinator.ranges_poisoned"),
		quarantines: reg.Counter("coordinator.quarantined"),
		subsumes:    reg.Counter("coordinator.subsumed"),
	}
}

func (t *svcTel) span(stage telemetry.Stage) telemetry.SpanStart {
	if t == nil {
		return telemetry.SpanStart{}
	}
	return t.reg.StartSpan(stage, 0, telemetry.CoordinatorWorker)
}

// spans returns the coordinator registry's retained spans (nil without
// telemetry) — the slice forensic bundles embed.
func (t *svcTel) spans() []telemetry.Span {
	if t == nil {
		return nil
	}
	return t.reg.Tracer().Spans()
}

func (t *svcTel) workerJoined() {
	if t != nil {
		t.workersLive.Add(1)
	}
}
func (t *svcTel) workerLeft() {
	if t != nil {
		t.workersLive.Add(-1)
	}
}
func (t *svcTel) jobStarted() {
	if t != nil {
		t.jobsRunning.Add(1)
	}
}
func (t *svcTel) jobFinished() {
	if t != nil {
		t.jobsRunning.Add(-1)
	}
}
func (t *svcTel) rangeLeased() {
	if t != nil {
		t.leased.Inc()
	}
}
func (t *svcTel) rangeCommitted() {
	if t != nil {
		t.committed.Inc()
	}
}
func (t *svcTel) rangeRequeued() {
	if t != nil {
		t.requeued.Inc()
	}
}
func (t *svcTel) fenceRejected() {
	if t != nil {
		t.fenced.Inc()
	}
}
func (t *svcTel) heartbeat() {
	if t != nil {
		t.heartbeats.Inc()
	}
}
func (t *svcTel) rangePoisoned() {
	if t != nil {
		t.poisoned.Inc()
	}
}
func (t *svcTel) quarantined() {
	if t != nil {
		t.quarantines.Inc()
	}
}
func (t *svcTel) subsumed() {
	if t != nil {
		t.subsumes.Inc()
	}
}

// Service is the coordinator: it accepts worker connections, leases
// ranges, aggregates results, and hosts the jobs API.
type Service struct {
	opts Options
	ln   net.Listener
	tel  *svcTel
	fed  *telemetry.Federation

	lockMu sync.Mutex
	lock   *lockserver.Client // lazy janitor client for lease inspection

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string
	nextJob int
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// New starts a coordinator service listening on opts.Addr.
func New(opts Options) (*Service, error) {
	if opts.JournalRoot == "" {
		return nil, fmt.Errorf("coordinator: JournalRoot is required")
	}
	if err := os.MkdirAll(opts.JournalRoot, 0o755); err != nil {
		return nil, err
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 2 * time.Second
	}
	if opts.RangeSize <= 0 {
		opts.RangeSize = 16
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("coordinator: listen: %w", err)
	}
	s := &Service{
		opts: opts,
		ln:   ln,
		tel:  newSvcTel(opts.Telemetry),
		fed:  telemetry.NewFederation(opts.Telemetry),
		jobs: make(map[string]*Job),
		stop: make(chan struct{}),
	}
	s.fed.SetLeaseSource(s.leasesByWorker)
	s.wg.Add(2)
	go s.acceptLoop()
	go s.janitor()
	return s, nil
}

// Addr is the bound worker address.
func (s *Service) Addr() string { return s.ln.Addr().String() }

// Federation is the coordinator's fleet-wide telemetry view, fed by
// worker telemetry reports. Mount it on a status server
// (StatusServer.ServeFederation) to get cluster-level /progress,
// /metrics, and /trace.
func (s *Service) Federation() *telemetry.Federation { return s.fed }

// leasesByWorker counts currently leased ranges per worker name across
// every job — the fleet progress view's ledger column.
func (s *Service) leasesByWorker() map[string]int {
	out := make(map[string]int)
	for _, j := range s.Jobs() {
		j.leasesByWorker(out)
	}
	return out
}

// Submit opens a new job from the spec and starts serving it.
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("coordinator: service closed")
	}
	var id string
	for {
		s.nextJob++
		id = fmt.Sprintf("job-%03d", s.nextJob)
		if _, taken := s.jobs[id]; taken {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.opts.JournalRoot, id)); err == nil {
			continue // dir from a prior incarnation not yet resumed
		}
		break
	}
	j, err := openJob(id, spec, filepath.Join(s.opts.JournalRoot, id), s.opts.RangeSize, s.opts.LeaseTTL, s.tel)
	if err != nil {
		return nil, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.tel.jobStarted()
	return j, nil
}

// Recover reopens every job directory under JournalRoot — the coordinator
// crash-recovery path. Finished jobs restore read-only from their
// manifest; running jobs resume: committed interleavings replay from
// results.log, everything else re-carves from a fresh explorer.
func (s *Service) Recover() error {
	entries, err := os.ReadDir(s.opts.JournalRoot)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range names {
		if _, live := s.jobs[name]; live {
			continue
		}
		var m jobManifest
		dir := filepath.Join(s.opts.JournalRoot, name)
		if err := loadManifest(dir, &m); err != nil {
			continue // not a job dir
		}
		j, err := openJob(name, m.Spec, dir, s.opts.RangeSize, s.opts.LeaseTTL, s.tel)
		if err != nil {
			return fmt.Errorf("coordinator: recover %s: %w", name, err)
		}
		s.jobs[name] = j
		s.order = append(s.order, name)
		if n := numericSuffix(name); n > s.nextJob {
			s.nextJob = n
		}
		if j.Status().State == StateRunning {
			s.tel.jobStarted()
		}
	}
	return nil
}

func loadManifest(dir string, m *jobManifest) error {
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, m)
}

// numericSuffix parses the N of "job-N" names (0 when not of that form).
func numericSuffix(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// Job looks a job up by id.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists jobs in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel terminates a job.
func (s *Service) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Close shuts the service down: stop accepting, stop the janitor, close
// every job's files. Running jobs stay resumable from their journals.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	s.lockMu.Lock()
	if s.lock != nil {
		_ = s.lock.Close()
		s.lock = nil
	}
	s.lockMu.Unlock()
	for _, j := range s.Jobs() {
		j.closeFiles()
	}
	return err
}

func (s *Service) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// janitor periodically reaps orphaned ranges in every running job, using
// heartbeat deadlines and (when a lockserver is configured) lease-key
// inspection.
func (s *Service) janitor() {
	defer s.wg.Done()
	tick := s.opts.LeaseTTL / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			var held func(key, token string) (bool, bool)
			if s.opts.LockAddr != "" {
				held = s.lockHeld
			}
			for _, j := range s.Jobs() {
				j.reap(now, held)
			}
		}
	}
}

// lockHeld reports whether the lease key currently stores the token.
// ok=false means the lookup itself failed and nothing can be concluded.
func (s *Service) lockHeld(key, token string) (bool, bool) {
	s.lockMu.Lock()
	defer s.lockMu.Unlock()
	if s.lock == nil {
		c, err := lockserver.Dial(s.opts.LockAddr)
		if err != nil {
			return false, false
		}
		s.lock = c
	}
	val, found, err := s.lock.Get(key)
	if err != nil {
		_ = s.lock.Close()
		s.lock = nil
		return false, false
	}
	return found && val == token, true
}

// pickJob binds a hello to a job: the named one, or the oldest running job.
func (s *Service) pickJob(want string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if want != "" {
		j, ok := s.jobs[want]
		if !ok {
			return nil, fmt.Errorf("unknown job %q", want)
		}
		return j, nil
	}
	for _, id := range s.order {
		if s.jobs[id].Status().State == StateRunning {
			return s.jobs[id], nil
		}
	}
	return nil, nil // nothing running: caller sends drain
}

// maxWireLine bounds one protocol line. Commits carry a whole range of
// outcomes, so this is generous.
const maxWireLine = 16 * 1024 * 1024

// serveConn runs one worker connection's request/response loop.
func (s *Service) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	// Unblock reads on shutdown.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-s.stop:
			conn.Close()
		case <-done:
		}
	}()

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxWireLine)
	w := bufio.NewWriter(conn)
	send := func(m *wireMsg) bool {
		data, err := json.Marshal(m)
		if err != nil {
			return false
		}
		data = append(data, '\n')
		if _, err := w.Write(data); err != nil {
			return false
		}
		return w.Flush() == nil
	}

	var cur *Job
	worker := ""
	counted := false
	defer func() {
		if cur != nil && worker != "" {
			cur.workerGone(worker)
		}
		if counted {
			s.tel.workerLeft()
		}
	}()

	for sc.Scan() {
		var msg wireMsg
		if err := json.Unmarshal(sc.Bytes(), &msg); err != nil {
			send(&wireMsg{Type: msgError, Err: "malformed message"})
			return
		}
		switch msg.Type {
		case msgHello:
			if msg.Worker == "" {
				send(&wireMsg{Type: msgError, Err: "hello requires a worker name"})
				return
			}
			if cur != nil && worker != "" {
				cur.workerGone(worker) // rebinding releases old holds
			}
			worker = msg.Worker
			if !counted {
				counted = true
				s.tel.workerJoined()
			}
			j, err := s.pickJob(msg.Job)
			if err != nil {
				if !send(&wireMsg{Type: msgError, Err: err.Error()}) {
					return
				}
				continue
			}
			if j == nil {
				cur = nil
				if !send(&wireMsg{Type: msgDrain, RetryMs: s.opts.LeaseTTL.Milliseconds() / 2}) {
					return
				}
				continue
			}
			cur = j
			spec := cur.spec
			if !send(&wireMsg{
				Type:       msgHello,
				Job:        cur.id,
				Spec:       &spec,
				LockAddr:   s.opts.LockAddr,
				LeaseTTLMs: s.opts.LeaseTTL.Milliseconds(),
			}) {
				return
			}
		case msgLease:
			if cur == nil {
				send(&wireMsg{Type: msgError, Err: "lease before hello"})
				return
			}
			if !send(cur.lease(worker)) {
				return
			}
		case msgHeartbeat:
			if cur == nil {
				send(&wireMsg{Type: msgError, Err: "heartbeat before hello"})
				return
			}
			reply := &wireMsg{Type: msgOK, Range: msg.Range}
			if !cur.heartbeat(worker, msg.Range, msg.Epoch) {
				reply.Type = msgFenced
			}
			if !send(reply) {
				return
			}
		case msgTelemetry:
			if msg.Telemetry != nil {
				rep := *msg.Telemetry
				if rep.Worker == "" {
					rep.Worker = worker
				}
				s.fed.Report(rep)
			}
			if !send(&wireMsg{Type: msgOK}) {
				return
			}
		case msgCommit:
			if cur == nil {
				send(&wireMsg{Type: msgError, Err: "commit before hello"})
				return
			}
			ok, err := cur.commit(worker, msg.Range, msg.Epoch, msg.Results)
			reply := &wireMsg{Type: msgOK, Range: msg.Range}
			switch {
			case err != nil:
				reply = &wireMsg{Type: msgError, Range: msg.Range, Err: err.Error()}
			case !ok:
				reply.Type = msgFenced
			}
			if !send(reply) {
				return
			}
		default:
			send(&wireMsg{Type: msgError, Err: fmt.Sprintf("unknown message type %q", msg.Type)})
			return
		}
	}
}
