package coordinator

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// TestJobSpecWireRoundTrip pins the spec's wire coverage mechanically: the
// fixture sets every JobSpec field to a nonzero value (enforced by
// reflection, so adding a field without extending the fixture fails), and
// the JSON round trip must reproduce it exactly — a field missing its json
// tag, or tagged "-", deserializes to zero and breaks DeepEqual. This is
// the test that failed before Subsumption/SubsumptionTableBytes were wired
// through spec.go, and it fails again the next time a Config knob is added
// without wire coverage.
func TestJobSpecWireRoundTrip(t *testing.T) {
	fixture := JobSpec{
		Bug:                   "Roshi-1",
		Miscon:                "CRDTs#4", // mutually exclusive with Bug for validate, fine on the wire
		Mode:                  "dfs",
		Seed:                  42,
		FuzzGenerationSize:    16,
		MaxInterleavings:      96,
		RangeSize:             8,
		StopOnViolation:       true,
		MaxRetries:            3,
		InterleavingTimeoutMs: 250,
		Subsumption:           true,
		SubsumptionTableBytes: 1 << 20,
	}

	v := reflect.ValueOf(fixture)
	tp := v.Type()
	for i := 0; i < tp.NumField(); i++ {
		f := tp.Field(i)
		if v.Field(i).IsZero() {
			t.Errorf("JobSpec.%s: fixture leaves it zero — set it so the round trip actually covers it", f.Name)
		}
		if tag, ok := f.Tag.Lookup("json"); !ok || tag == "-" || tag == "" {
			t.Errorf("JobSpec.%s: missing json tag — field will not survive the hello handshake or manifest", f.Name)
		}
	}

	data, err := json.Marshal(fixture)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back JobSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(fixture, back) {
		t.Fatalf("spec did not survive the wire:\n sent %+v\n got  %+v", fixture, back)
	}
}

// TestRunnerConfigDistributionCoverage forces a decision whenever
// runner.Config grows a field: every field must be categorized as either
// honored by workers (execConfig must set it from a JobSpec field),
// owned by the coordinator side (enumeration/aggregation), or deliberately
// not distributed. An uncategorized field fails the test, so a new
// exploration knob cannot silently default to "workers ignore it" the way
// SubsumptionTable briefly did.
func TestRunnerConfigDistributionCoverage(t *testing.T) {
	honoredByWorker := map[string]bool{
		// Set by JobSpec.execConfig; changing these changes what each
		// worker executes, so they MUST travel on the wire.
		"Mode":                true,
		"Seed":                true,
		"MaxRetries":          true,
		"InterleavingTimeout": true,
		"SubsumptionTable":    true,
	}
	coordinatorSide := map[string]bool{
		// Enumeration and aggregation happen on the coordinator; workers
		// never see these.
		"MaxInterleavings": true, // carve-time cap
		"StopOnViolation":  true, // assertions checked in aggregation order
		"Assertions":       true,
		"OnOutcome":        true, // digest/violation aggregation
		"Journal":          true, // explored.log owned by the job
		"Telemetry":        true, // Options.Telemetry on the service
		// Forensic bundles are captured on the coordinator's aggregation
		// path (Job.captureForensicLocked re-executes locally), never by
		// workers — violations are only known after aggregation.
		"ForensicDir":        true,
		"MaxForensicBundles": true,
		// Fuzz generations are carved, classified, and evolved on the
		// coordinator (JobSpec.FuzzGenerationSize → exploreConfig); workers
		// just execute the leased children.
		"FuzzGenerationSize": true,
	}
	notDistributed := map[string]bool{
		// Per-process or order-dependent machinery the distributed path
		// deliberately replaces or does not (yet) ship to workers.
		"Workers":             true, // pool parallelism — replaced by worker fleet
		"LiveWorkers":         true, // live replay path is not distributed
		"LiveGates":           true,
		"Store":               true, // datalog budget experiment, local only
		"ConstraintPoll":      true, // dynamic re-pruning is coordinator-local
		"PollEvery":           true,
		"Deadline":            true, // job lifetime is lease-managed instead
		"RetryBackoff":        true, // workers use the runner default
		"Faults":              true, // fault schedules not distributed
		"MaxExploredKeys":     true, // dedup owned by the journal
		"PrefixCacheBytes":    true, // per-worker accelerator, not spec-driven
		"PrefixSnapshotEvery": true,
		// Hashing-strategy escape hatches: results are byte-identical with
		// either setting, so distributing them could never change a job's
		// outcome — workers always run the (default) incremental path.
		"FullSnapshotHashing": true,
		"NoPrefixDeltas":      true,
	}

	tp := reflect.TypeOf(runner.Config{})
	for i := 0; i < tp.NumField(); i++ {
		name := tp.Field(i).Name
		n := 0
		for _, set := range []map[string]bool{honoredByWorker, coordinatorSide, notDistributed} {
			if set[name] {
				n++
			}
		}
		switch n {
		case 1:
		case 0:
			t.Errorf("runner.Config.%s is uncategorized: decide whether workers honor it "+
				"(add a JobSpec field + execConfig wiring), the coordinator owns it, or it is "+
				"deliberately not distributed — then record it here", name)
		default:
			t.Errorf("runner.Config.%s appears in %d categories, want exactly 1", name, n)
		}
	}
}

// sequentialSignatureSet runs the spec in-process and returns the
// deduplicated outcome-signature set — the invariant subsumption preserves.
// (The interleaving-keyed Digest is NOT preserved: subsumed interleavings
// contribute no digest entry, which is exactly why parity is asserted on
// the signature set instead.)
func sequentialSignatureSet(t *testing.T, spec JobSpec) []string {
	t.Helper()
	scenario, _, err := spec.build()
	if err != nil {
		t.Fatalf("build scenario: %v", err)
	}
	set := make(map[string]struct{})
	_, err = runner.Run(scenario, runner.Config{
		Mode:             runner.Mode(spec.Mode),
		Seed:             spec.Seed,
		MaxInterleavings: spec.MaxInterleavings,
		Workers:          1,
		OnOutcome: func(o *runner.Outcome) {
			set[runner.OutcomeSignature(o)] = struct{}{}
		},
	})
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestDistributedSubsumptionParity runs the same job with subsumption on:
// the cap accounting must be unchanged (subsumed interleavings consume
// indices and journal entries exactly like executed ones), some
// interleavings must actually be subsumed, the deduplicated signature set
// must equal the sequential baseline's, and the subsumed count must
// survive a coordinator restart via the manifest.
func TestDistributedSubsumptionParity(t *testing.T) {
	baseline := testSpec()
	_, wantExplored := sequentialBaseline(t, baseline)
	wantSigs := sequentialSignatureSet(t, baseline)

	spec := testSpec()
	spec.Subsumption = true

	root := t.TempDir()
	reg := telemetry.New()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 500 * time.Millisecond, Telemetry: reg})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: "w1", Once: true}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := waitDone(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d (subsumed interleavings must still consume the cap)", st.Explored, wantExplored)
	}
	if st.Subsumed == 0 {
		t.Fatal("subsumed = 0: the worker never pruned, so the spec field did not reach runner.Config")
	}
	if st.Subsumed >= st.Explored {
		t.Fatalf("subsumed = %d of %d explored: at least one interleaving must execute as a witness", st.Subsumed, st.Explored)
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined = %d, want 0 (ErrSubsumed must not be treated as an execution error)", st.Quarantined)
	}
	jobDir := filepath.Join(root, j.ID())
	assertUniqueKeys(t, journalKeys(t, jobDir), wantExplored)

	// The durable result lines carry the parity proof: subsumed lines have
	// no signature, executed lines' deduplicated signatures must equal the
	// sequential baseline set.
	lines, err := loadResultLines(jobDir)
	if err != nil {
		t.Fatalf("load result lines: %v", err)
	}
	subsumedLines := 0
	gotSet := make(map[string]struct{})
	for _, line := range lines {
		if line.Subsumed {
			subsumedLines++
			if line.Sig != "" || line.Error != "" {
				t.Fatalf("subsumed line %d carries sig=%q error=%q, want neither", line.Index, line.Sig, line.Error)
			}
			continue
		}
		if line.Error == "" {
			gotSet[line.Sig] = struct{}{}
		}
	}
	if subsumedLines != st.Subsumed {
		t.Fatalf("results.log has %d subsumed lines, status says %d", subsumedLines, st.Subsumed)
	}
	gotSigs := make([]string, 0, len(gotSet))
	for s := range gotSet {
		gotSigs = append(gotSigs, s)
	}
	sort.Strings(gotSigs)
	if !reflect.DeepEqual(gotSigs, wantSigs) {
		t.Fatalf("signature set diverged under subsumption:\n got  %v\n want %v", gotSigs, wantSigs)
	}

	if got := reg.Snapshot().Counters["coordinator.subsumed"]; got != int64(st.Subsumed) {
		t.Fatalf("coordinator.subsumed counter = %d, want %d", got, st.Subsumed)
	}

	// Restart the coordinator: the finished job's subsumed count must be
	// restored from the manifest, and a fresh (unfinished-looking) replay
	// of results.log must classify subsumed lines as subsumed, not as
	// digest entries or quarantines.
	jobID := j.ID()
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	svc2 := startService(t, Options{JournalRoot: root})
	if err := svc2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := svc2.Job(jobID)
	if !ok {
		t.Fatalf("job %s not recovered", jobID)
	}
	st2 := j2.Status()
	if st2.State != StateDone || st2.Subsumed != st.Subsumed || st2.Explored != st.Explored {
		t.Fatalf("restart lost subsumption accounting: got state=%s explored=%d subsumed=%d, want done/%d/%d",
			st2.State, st2.Explored, st2.Subsumed, st.Explored, st.Subsumed)
	}
}

// TestResumeReplaysSubsumedLines exercises the mid-job resume path (no
// terminal manifest): a worker crashes partway through a subsumption-on
// job, the coordinator restarts and rebuilds its counters from results.log
// — subsumed lines must replay into the subsumed counter, not the digest
// or the quarantine count — and a second worker finishes the job with the
// cap honored exactly.
func TestResumeReplaysSubsumedLines(t *testing.T) {
	baseline := testSpec()
	_, wantExplored := sequentialBaseline(t, baseline)

	spec := testSpec()
	spec.Subsumption = true

	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: 300 * time.Millisecond})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	jobID := j.ID()
	// Crash after enough executions that some committed range contains a
	// subsumed interleaving (pruning needs recorded frontiers to fire).
	err = RunWorker(context.Background(), WorkerOptions{
		Addr:                 svc.Addr(),
		Name:                 "doomed",
		CrashAfterExecutions: 40,
	})
	if err == nil {
		t.Fatal("doomed worker finished the whole job; raise the cap or lower the crash point")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	svc2 := startService(t, Options{JournalRoot: root, LeaseTTL: 300 * time.Millisecond})
	if err := svc2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := svc2.Job(jobID)
	if !ok {
		t.Fatalf("job %s not recovered", jobID)
	}
	mid := j2.Status()
	if mid.Resumed == 0 {
		t.Fatal("resumed = 0: crash landed before any commit; tune CrashAfterExecutions")
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc2.Addr(), Name: "finisher", Once: true}); err != nil {
		t.Fatalf("finisher: %v", err)
	}
	st := waitDone(t, j2)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done (%+v)", st.State, st)
	}
	if st.Explored != wantExplored {
		t.Fatalf("explored = %d, want %d (resume must neither lose nor double-count subsumed entries)", st.Explored, wantExplored)
	}
	if st.Subsumed == 0 {
		t.Fatal("subsumed = 0 after resume")
	}
	if st.Quarantined != 0 {
		t.Fatalf("quarantined = %d, want 0 (replayed subsumed lines must not be misread as quarantines)", st.Quarantined)
	}
	assertUniqueKeys(t, journalKeys(t, filepath.Join(root, jobID)), wantExplored)
}
