package coordinator

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestJobsAPI(t *testing.T) {
	svc := startService(t, Options{LeaseTTL: 500 * time.Millisecond})
	srv := httptest.NewServer(svc.APIHandler())
	defer srv.Close()

	// Submit.
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"bug":"Roshi-1","mode":"dfs","max_interleavings":16}`))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs = %s, want 201", resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if st.ID == "" || st.State != StateRunning || st.Label != "Roshi-1" {
		t.Fatalf("submitted status = %+v", st)
	}

	// Bad spec rejected.
	resp, err = http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"mode":"fuzz"}`))
	if err != nil {
		t.Fatalf("POST bad spec: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %s, want 400", resp.Status)
	}

	// List.
	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatalf("GET /jobs: %v", err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	// Get one.
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", st.ID, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job = %s, want 200", resp.Status)
	}
	resp, _ = http.Get(srv.URL + "/jobs/nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown = %s, want 404", resp.Status)
	}

	// Cancel, then a waited GET returns the terminal state immediately.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode cancel: %v", err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("after DELETE state = %s, want cancelled", st.State)
	}
	start := time.Now()
	resp, err = http.Get(srv.URL + "/jobs/" + st.ID + "?wait=30")
	if err != nil {
		t.Fatalf("GET wait: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode wait: %v", err)
	}
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("waited state = %s, want cancelled", st.State)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("?wait blocked on an already-terminal job")
	}
}
