package coordinator

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/checkpoint"
	"github.com/er-pi/erpi/internal/forensics"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/logx"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Job states.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// rangeStatus is a range's position in the lease state machine:
//
//	pending --lease--> leased --commit--> committed
//	   ^                 |
//	   +----requeue------+   (deadline missed, lease expired, worker gone)
//
// Every pending→leased transition bumps the range's fencing epoch; commits
// and heartbeats quoting an older epoch are rejected ("fenced").
type rangeStatus uint8

const (
	rangePending rangeStatus = iota
	rangeLeased
	rangeCommitted
)

// maxRangeLeases is how many times a range may be (re)leased before the
// coordinator declares it poisoned — some interleaving in it keeps killing
// workers — and quarantines the whole range rather than requeue it forever.
const maxRangeLeases = 5

// jobRange is one contiguous slice of the exploration sequence.
type jobRange struct {
	id    int // 1-based, carve order == aggregation order
	start int // global index of ils[0] (1-based exploration position)
	ils   []interleave.Interleaving
	keys  []string

	status    rangeStatus
	epoch     int // fencing token: bumped on every lease
	worker    string
	grantedAt time.Time
	deadline  time.Time // heartbeat deadline; missing it orphans the range
	leases    int       // lifetime lease count (poison detector)
	results   []wireResult
}

// jobManifest is the durable per-job summary (job.json in the journal
// dir), written atomically on every terminal transition and periodically
// during the run.
type jobManifest struct {
	ID             string         `json:"id"`
	Spec           JobSpec        `json:"spec"`
	State          string         `json:"state"`
	Digest         string         `json:"digest,omitempty"`
	Explored       int            `json:"explored"`
	Quarantined    int            `json:"quarantined"`
	Subsumed       int            `json:"subsumed,omitempty"`
	Violations     []JobViolation `json:"violations,omitempty"`
	FirstViolation int            `json:"first_violation,omitempty"`
	Exhausted      bool           `json:"exhausted"`
	Bundles        []string       `json:"bundles,omitempty"`
	Error          string         `json:"error,omitempty"`
}

// JobStatus is a point-in-time snapshot of a job, the unit the jobs API
// serves.
type JobStatus struct {
	ID             string         `json:"id"`
	Label          string         `json:"label"`
	Spec           JobSpec        `json:"spec"`
	State          string         `json:"state"`
	Explored       int            `json:"explored"` // aggregated this session + resumed
	Resumed        int            `json:"resumed"`
	Quarantined    int            `json:"quarantined"`
	Subsumed       int            `json:"subsumed,omitempty"`
	Violations     []JobViolation `json:"violations,omitempty"`
	FirstViolation int            `json:"first_violation,omitempty"`
	Digest         string         `json:"digest,omitempty"` // set once terminal
	Exhausted      bool           `json:"exhausted"`
	RangesPending  int            `json:"ranges_pending"`
	RangesLeased   int            `json:"ranges_leased"`
	Requeues       int            `json:"requeues"`
	Fenced         int            `json:"fence_rejections"`
	// Bundles lists the forensic bundle files captured for this job's
	// violations (under the job's journal directory).
	Bundles []string `json:"bundles,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// genExplorer is the fuzz explorer's generation protocol as the
// coordinator sees it (the runner engines share the same contract): a
// generation of children is enumerated, classified by interleaving key,
// and the corpus evolves only when every emitted child is classified.
// Distributed fuzzing maps the barrier onto range aggregation — carving
// stops at a generation boundary until every carved range has committed
// and aggregated, then the corpus evolves and carving resumes.
type genExplorer interface {
	GenerationEnd() bool
	Pending() int
	Evolve()
	ReportOutcome(key, signature string)
	ReportDropped(key string)
}

// Job is one exploration workload being served to workers. All mutable
// state is guarded by mu; connection goroutines (lease/heartbeat/commit)
// and the janitor (reap/workerGone) contend on it.
type Job struct {
	id  string
	tel *svcTel

	spec      JobSpec
	scenario  runner.Scenario
	asserts   []runner.Assertion
	journal   *checkpoint.Dir
	resLog    *resultLog
	dir       string
	rangeSize int
	leaseTTL  time.Duration

	mu       sync.Mutex
	state    string
	err      error
	explorer interleave.Explorer
	seen     map[string]struct{} // dedup: resumed ∪ carved keys
	// resumedSigs replays classification evidence across restarts
	// (ModeFuzz only): committed key → its original outcome signature, ""
	// for keys that never produced one (subsumed/quarantined). When the
	// regenerated explorer re-emits a resumed key, the original
	// classification is fed back so the corpus trajectory continues
	// exactly where the crashed coordinator left it.
	resumedSigs map[string]string
	resumed     int
	maxNew      int // remaining fresh-interleaving budget
	assigned    int // fresh interleavings carved so far
	noMore      bool
	exhausted   bool

	ranges   []*jobRange
	pendingQ []int // range ids awaiting (re)lease, ascending
	leasedN  int
	nextAgg  int // next range id to aggregate (1-based)

	aggregated     int // interleavings aggregated this session
	quarantined    int
	subsumed       int // interleavings pruned by worker subsumption tables
	violations     []JobViolation
	bundles        []string // forensic bundles captured for violations
	firstViolation int
	fenced         int
	requeues       int
	digest         *Digest
	digestSum      string
	doneCh         chan struct{}
}

// openJob builds (or resumes) a job from its spec and journal directory.
// Resume semantics: keys in explored.log are committed and never re-run —
// their digest contribution and violations replay from results.log —
// while ranges that were leased but never committed simply do not exist in
// the new ledger and get re-carved and re-executed from the explorer.
func openJob(id string, spec JobSpec, dir string, rangeSize int, leaseTTL time.Duration, tel *svcTel) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	scenario, asserts, err := spec.build()
	if err != nil {
		return nil, err
	}
	journal, err := checkpoint.Open(dir)
	if err != nil {
		return nil, err
	}
	if spec.RangeSize > 0 {
		rangeSize = spec.RangeSize
	}
	j := &Job{
		id:        id,
		tel:       tel,
		spec:      spec,
		scenario:  scenario,
		asserts:   asserts,
		journal:   journal,
		dir:       dir,
		rangeSize: rangeSize,
		leaseTTL:  leaseTTL,
		state:     StateRunning,
		seen:      make(map[string]struct{}),
		nextAgg:   1,
		digest:    NewDigest(),
		doneCh:    make(chan struct{}),
	}

	// A terminal manifest means the job already finished: restore it
	// read-only instead of re-opening exploration.
	var m jobManifest
	if err := journal.LoadJSON("job.json", &m); err == nil && m.State != StateRunning && m.State != "" {
		j.state = m.State
		j.digestSum = m.Digest
		j.resumed = m.Explored
		j.quarantined = m.Quarantined
		j.subsumed = m.Subsumed
		j.violations = m.Violations
		j.bundles = m.Bundles
		j.firstViolation = m.FirstViolation
		j.exhausted = m.Exhausted
		j.noMore = true
		close(j.doneCh)
		return j, nil
	}

	if err := journal.SaveLog(scenario.Log); err != nil {
		return nil, err
	}
	prior, err := journal.LoadExplored()
	if err != nil {
		return nil, err
	}
	for key := range prior {
		j.seen[key] = struct{}{}
	}
	j.resumed = len(prior)

	// Replay results.log for committed keys: digest contributions,
	// quarantine counts, and violations survive a coordinator restart
	// without re-executing anything. Lines whose key never reached the
	// journal (crash between result sync and journal append) are dropped —
	// those interleavings re-execute, which is safe because the digest is
	// keyed and last-write-wins.
	lines, err := loadResultLines(dir)
	if err != nil {
		return nil, err
	}
	if runner.Mode(spec.Mode) == runner.ModeFuzz {
		j.resumedSigs = make(map[string]string)
	}
	for _, line := range lines {
		if _, committed := prior[line.Key]; !committed {
			continue
		}
		switch {
		case line.Subsumed:
			j.subsumed++
		case line.Error != "":
			j.quarantined++
		default:
			j.digest.Add(line.Key, line.Sig)
			if j.resumedSigs != nil {
				j.resumedSigs[line.Key] = line.Sig
			}
		}
		for _, v := range line.Violations {
			j.violations = append(j.violations, v)
			if j.firstViolation == 0 || v.Index < j.firstViolation {
				j.firstViolation = v.Index
			}
		}
	}

	maxIL := spec.MaxInterleavings
	switch {
	case maxIL == 0:
		maxIL = runner.DefaultMaxInterleavings
	case maxIL < 0:
		maxIL = int(^uint(0) >> 1)
	}
	j.maxNew = maxIL - j.resumed
	if j.maxNew < 0 {
		j.maxNew = 0
	}

	j.explorer, err = runner.NewExplorer(scenario, spec.exploreConfig())
	if err != nil {
		return nil, err
	}
	j.resLog, err = openResultLog(dir)
	if err != nil {
		return nil, err
	}
	if err := journal.SaveJSON("job.json", jobManifest{ID: id, Spec: spec, State: StateRunning}); err != nil {
		return nil, err
	}
	return j, nil
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// heartbeatGrace is how far past its last contact a leased range may go
// before the janitor requeues it: 2.5 lease TTLs, comfortably beyond the
// worker's ttl/2 heartbeat cadence and one full lockserver lease.
func (j *Job) heartbeatGrace() time.Duration { return j.leaseTTL * 5 / 2 }

// lease grants the worker a range: a requeued orphan first, else a freshly
// carved slice of the exploration sequence. Returns the reply to send.
func (j *Job) lease(worker string) *wireMsg {
	sp := j.tel.span(telemetry.StageLease)
	defer sp.End()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return &wireMsg{Type: msgDone, Job: j.id}
	}

	// Requeued ranges first: orphaned work is the oldest and gates
	// aggregation for everything after it.
	for len(j.pendingQ) > 0 {
		id := j.pendingQ[0]
		j.pendingQ = j.pendingQ[1:]
		r := j.ranges[id-1]
		if r.leases >= maxRangeLeases {
			j.poisonLocked(r)
			continue
		}
		return j.grantLocked(r, worker)
	}

	if !j.noMore {
		if r := j.carveLocked(); r != nil {
			return j.grantLocked(r, worker)
		}
	}
	if j.checkDoneLocked() {
		return &wireMsg{Type: msgDone, Job: j.id}
	}
	// Work is in flight on other workers; nothing leasable right now.
	return &wireMsg{Type: msgDrain, Job: j.id, RetryMs: j.leaseTTL.Milliseconds() / 4}
}

// carveLocked pulls up to rangeSize fresh interleavings from the explorer,
// skipping keys already seen (journal resume, rand-mode repeats). Returns
// nil when the space or the budget is exhausted — or, in ModeFuzz, when a
// generation boundary holds carving until every outstanding range has
// aggregated and classified (the distributed fuzz barrier: lease answers
// msgDrain meanwhile, and the generation evolves once the ledger drains).
func (j *Job) carveLocked() *jobRange {
	ge, isGen := j.explorer.(genExplorer)
	var ils []interleave.Interleaving
	var keys []string
	start := j.assigned + 1
	for len(ils) < j.rangeSize && j.assigned < j.maxNew {
		if isGen && ge.GenerationEnd() {
			// A fuzz generation is fully carved. Stop here — including the
			// range under construction — and only evolve once every carved
			// range has aggregated, so the corpus never sees partial
			// evidence.
			if len(ils) > 0 || j.nextAgg <= len(j.ranges) || ge.Pending() != 0 {
				break
			}
			ge.Evolve()
		}
		il, ok := j.explorer.Next()
		if !ok {
			j.noMore = true
			j.exhausted = true
			break
		}
		key := il.Key()
		if _, dup := j.seen[key]; dup {
			if isGen {
				// A resumed key never re-executes: replay its original
				// classification so the generation still completes with
				// the evidence the first execution produced.
				if sig, ok := j.resumedSigs[key]; ok && sig != "" {
					ge.ReportOutcome(key, sig)
				} else {
					ge.ReportDropped(key)
				}
			}
			continue
		}
		j.seen[key] = struct{}{}
		ils = append(ils, il)
		keys = append(keys, key)
		j.assigned++
	}
	if j.assigned >= j.maxNew {
		j.noMore = true
	}
	if len(ils) == 0 {
		return nil
	}
	r := &jobRange{id: len(j.ranges) + 1, start: start, ils: ils, keys: keys}
	j.ranges = append(j.ranges, r)
	return r
}

func (j *Job) grantLocked(r *jobRange, worker string) *wireMsg {
	r.status = rangeLeased
	r.epoch++
	r.worker = worker
	r.leases++
	r.grantedAt = time.Now()
	r.deadline = r.grantedAt.Add(j.heartbeatGrace())
	j.leasedN++
	j.tel.rangeLeased()
	return &wireMsg{
		Type:          msgRange,
		Job:           j.id,
		Range:         r.id,
		Epoch:         r.epoch,
		Start:         r.start,
		Interleavings: ilsToWire(r.ils),
	}
}

// fenceCheckLocked validates that (rangeID, epoch, worker) names the
// current holder of a live lease. Any mismatch is a fencing rejection: the
// caller is a zombie whose range moved on without it.
func (j *Job) fenceCheckLocked(worker string, rangeID, epoch int) (*jobRange, bool) {
	if rangeID < 1 || rangeID > len(j.ranges) {
		return nil, false
	}
	r := j.ranges[rangeID-1]
	if r.status != rangeLeased || r.epoch != epoch || r.worker != worker {
		return nil, false
	}
	return r, true
}

// heartbeat extends a held range's deadline. A fenced heartbeat tells the
// worker to abandon the range immediately instead of finishing doomed work.
func (j *Job) heartbeat(worker string, rangeID, epoch int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.fenceCheckLocked(worker, rangeID, epoch)
	if !ok {
		j.fenced++
		j.tel.fenceRejected()
		return false
	}
	r.deadline = time.Now().Add(j.heartbeatGrace())
	j.tel.heartbeat()
	return true
}

// commit accepts a range's results if the fencing epoch still matches,
// marks it committed, and aggregates every range that is now contiguous
// from nextAgg. Returns (accepted, fatal error). A false return with nil
// error is a fence rejection — the zombie-double-commit guard: the range
// was requeued (and possibly re-committed by its new holder), so this
// copy of the results is discarded without touching the journal.
func (j *Job) commit(worker string, rangeID, epoch int, results []wireResult) (bool, error) {
	sp := j.tel.span(telemetry.StageRangeCommit)
	defer sp.End()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		// A commit into a finished job is by definition stale — its range
		// was either committed by someone else or will never be needed.
		j.fenced++
		j.tel.fenceRejected()
		return false, nil
	}
	r, ok := j.fenceCheckLocked(worker, rangeID, epoch)
	if !ok {
		j.fenced++
		j.tel.fenceRejected()
		return false, nil
	}
	if len(results) != len(r.ils) {
		// Protocol corruption, not a fence: requeue the range and reject.
		j.requeueLocked(r)
		return false, fmt.Errorf("coordinator: commit for range %d has %d results, want %d", rangeID, len(results), len(r.ils))
	}
	r.status = rangeCommitted
	r.results = results
	r.worker = ""
	j.leasedN--
	j.tel.rangeCommitted()
	if err := j.advanceLocked(); err != nil {
		j.failLocked(err)
		return false, err
	}
	j.checkDoneLocked()
	return true, nil
}

// advanceLocked aggregates committed ranges in carve order — the reorder
// buffer that makes stateful assertions see the exact sequential outcome
// sequence. Durability order per range: result lines are written and
// synced *before* the journal keys are appended, so a journaled key always
// has a durable result line (the resume path depends on it).
func (j *Job) advanceLocked() error {
	ge, isGen := j.explorer.(genExplorer)
	for j.nextAgg <= len(j.ranges) {
		r := j.ranges[j.nextAgg-1]
		if r.status != rangeCommitted {
			break
		}
		lines := make([]resultLine, len(r.results))
		for i := range r.results {
			res := &r.results[i]
			index := r.start + i
			line := resultLine{Index: index, Key: r.keys[i], Attempts: res.Attempts}
			if res.Subsumed {
				// Pruned by the worker's subsumption table: consumes its
				// index and journal slot, contributes nothing to the digest
				// or assertions (its outcome set is covered by a witness).
				line.Subsumed = true
				j.subsumed++
				j.tel.subsumed()
				if isGen {
					ge.ReportDropped(r.keys[i])
				}
			} else if res.Error != "" {
				line.Error = res.Error
				j.quarantined++
				j.tel.quarantined()
				if isGen {
					ge.ReportDropped(r.keys[i])
				}
			} else if res.Outcome != nil {
				outcome := res.Outcome.outcome(index, r.ils[i])
				line.Sig = runner.OutcomeSignature(outcome)
				j.digest.Add(r.keys[i], line.Sig)
				if isGen {
					// Same classification the in-process engines feed back,
					// so the corpus trajectory matches a local run exactly.
					// (Coordinator jobs carry no fault schedule, so there is
					// no fault-armed drop path here.)
					ge.ReportOutcome(r.keys[i], line.Sig)
				}
				for _, a := range j.asserts {
					if err := a.Check(outcome); err != nil {
						v := JobViolation{Index: index, Key: r.keys[i], Assertion: a.Name(), Error: err.Error()}
						line.Violations = append(line.Violations, v)
						j.violations = append(j.violations, v)
						if j.firstViolation == 0 {
							j.firstViolation = index
						}
					}
				}
				if len(line.Violations) > 0 {
					j.captureForensicLocked(index, r.ils[i], line.Violations)
				}
			} else if isGen {
				// A result with no outcome, error, or subsumption marker
				// (protocol edge) still consumes its classification slot.
				ge.ReportDropped(r.keys[i])
			}
			lines[i] = line
			j.aggregated++
		}
		for _, line := range lines {
			if err := j.resLog.append(line); err != nil {
				return err
			}
		}
		if err := j.resLog.sync(); err != nil {
			return err
		}
		for _, il := range r.ils {
			if err := j.journal.AppendExplored(il); err != nil {
				return err
			}
		}
		// Free the aggregated payloads; the ledger entry stays for fencing.
		r.ils, r.results = nil, nil
		j.nextAgg++

		if j.firstViolation > 0 && j.spec.StopOnViolation {
			j.noMore = true
			j.pendingQ = nil
			return nil
		}
	}
	return nil
}

// captureForensicLocked re-executes a violating interleaving locally and
// writes its forensic bundle under the job's journal directory (DESIGN.md
// §4.13). Runs on the aggregation path, so bundles appear in exploration
// index order; failures are logged, never fatal. Bounded by
// runner.DefaultMaxForensicBundles per job.
func (j *Job) captureForensicLocked(index int, il interleave.Interleaving, viols []JobViolation) {
	if len(j.bundles) >= runner.DefaultMaxForensicBundles {
		return
	}
	recs := make([]forensics.Violation, 0, len(viols))
	for _, v := range viols {
		recs = append(recs, forensics.Violation{Assertion: v.Assertion, Error: v.Error})
	}
	b, err := runner.BuildBundle(j.scenario, j.spec.execConfig(), il, index, recs, j.tel.spans())
	if err != nil {
		logx.L().Warn("forensic capture failed",
			"component", "coordinator", "job", j.id, "index", index, "err", err)
		return
	}
	dir := filepath.Join(j.dir, "forensics")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		logx.L().Warn("forensic dir", "component", "coordinator", "dir", dir, "err", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("forensic-%06d.json", index))
	if err := forensics.WriteFile(path, b); err != nil {
		logx.L().Warn("forensic write failed", "component", "coordinator", "path", path, "err", err)
		return
	}
	j.bundles = append(j.bundles, path)
}

// poisonLocked quarantines an entire range that has burned through its
// lease budget — every result is recorded as a quarantine error, so the
// job terminates with partial results instead of requeueing a
// worker-killing interleaving forever.
func (j *Job) poisonLocked(r *jobRange) {
	r.status = rangeCommitted
	r.worker = ""
	r.results = make([]wireResult, len(r.ils))
	for i := range r.results {
		r.results[i] = wireResult{
			Index: r.start + i,
			Key:   r.keys[i],
			Error: fmt.Sprintf("coordinator: range %d abandoned after %d failed leases", r.id, r.leases),
		}
	}
	j.tel.rangePoisoned()
	if err := j.advanceLocked(); err != nil {
		j.failLocked(err)
	}
}

// requeueLocked returns a leased range to the pending queue. The epoch is
// left as-is: it bumps on the next grant, and in the pending state every
// heartbeat/commit fails the status check, so the old holder is fenced
// either way.
func (j *Job) requeueLocked(r *jobRange) {
	if r.status != rangeLeased {
		return
	}
	r.status = rangePending
	r.worker = ""
	j.leasedN--
	j.requeues++
	j.tel.rangeRequeued()
	j.pendingQ = append(j.pendingQ, r.id)
	sort.Ints(j.pendingQ)
}

// reap requeues leased ranges whose heartbeat deadline passed, and — when
// the service has a lockserver client — ranges whose lease key no longer
// holds the granted worker/epoch token (the lease expired or was stolen).
// lockHeld may be nil; it returns whether the key still holds the token,
// and ok=false on lookup failure (in which case only the deadline applies).
func (j *Job) reap(now time.Time, lockHeld func(key, token string) (bool, bool)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	for _, r := range j.ranges {
		if r.status != rangeLeased {
			continue
		}
		if now.After(r.deadline) {
			j.requeueLocked(r)
			continue
		}
		// The lockserver lease is authoritative sooner than the heartbeat
		// grace: once the worker's mutex is gone past one TTL from grant,
		// nothing renews it and the range is orphaned.
		if lockHeld != nil && now.After(r.grantedAt.Add(j.leaseTTL)) {
			held, ok := lockHeld(j.LeaseKey(r.id), leaseToken(r.worker, r.epoch))
			if ok && !held {
				j.requeueLocked(r)
			}
		}
	}
	j.checkDoneLocked()
}

// workerGone requeues every range the named worker holds (TCP disconnect:
// safe to orphan immediately — if the worker is actually alive behind a
// partition, fencing rejects its late commit).
func (j *Job) workerGone(worker string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	for _, r := range j.ranges {
		if r.status == rangeLeased && r.worker == worker {
			j.requeueLocked(r)
		}
	}
	j.checkDoneLocked()
}

// checkDoneLocked completes the job when no work remains anywhere in the
// ledger. Returns whether the job is now (or already was) terminal.
func (j *Job) checkDoneLocked() bool {
	if j.state != StateRunning {
		return true
	}
	if j.noMore && len(j.pendingQ) == 0 && j.leasedN == 0 && j.nextAgg > len(j.ranges) {
		j.completeLocked()
		return true
	}
	// StopOnViolation: aggregation halted; in-flight ranges will fence or
	// commit into the ledger unaggregated, but nothing blocks completion.
	if j.noMore && j.firstViolation > 0 && j.spec.StopOnViolation && len(j.pendingQ) == 0 && j.leasedN == 0 {
		j.completeLocked()
		return true
	}
	return false
}

func (j *Job) completeLocked() {
	j.state = StateDone
	j.digestSum = j.digest.Sum()
	_ = j.journal.Flush()
	j.persistLocked()
	close(j.doneCh)
	j.tel.jobFinished()
}

func (j *Job) failLocked(err error) {
	if j.state != StateRunning {
		return
	}
	j.state = StateFailed
	j.err = err
	j.persistLocked()
	close(j.doneCh)
	j.tel.jobFinished()
}

// cancel terminates the job; workers get done on their next request.
func (j *Job) cancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.state = StateCancelled
	j.digestSum = j.digest.Sum()
	_ = j.journal.Flush()
	j.persistLocked()
	close(j.doneCh)
	j.tel.jobFinished()
}

func (j *Job) persistLocked() {
	m := jobManifest{
		ID:             j.id,
		Spec:           j.spec,
		State:          j.state,
		Digest:         j.digestSum,
		Explored:       j.resumed + j.aggregated,
		Quarantined:    j.quarantined,
		Subsumed:       j.subsumed,
		Violations:     j.violations,
		FirstViolation: j.firstViolation,
		Exhausted:      j.exhausted,
		Bundles:        j.bundles,
	}
	if j.err != nil {
		m.Error = j.err.Error()
	}
	_ = j.journal.SaveJSON("job.json", m)
}

// closeFiles releases the job's file handles (service shutdown).
func (j *Job) closeFiles() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resLog != nil {
		_ = j.resLog.close()
		j.resLog = nil
	}
	_ = j.journal.Close()
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:             j.id,
		Label:          j.spec.label(),
		Spec:           j.spec,
		State:          j.state,
		Explored:       j.resumed + j.aggregated,
		Resumed:        j.resumed,
		Quarantined:    j.quarantined,
		Subsumed:       j.subsumed,
		Violations:     append([]JobViolation(nil), j.violations...),
		FirstViolation: j.firstViolation,
		Exhausted:      j.exhausted,
		RangesPending:  len(j.pendingQ),
		RangesLeased:   j.leasedN,
		Requeues:       j.requeues,
		Fenced:         j.fenced,
		Bundles:        append([]string(nil), j.bundles...),
	}
	if j.state != StateRunning {
		st.Digest = j.digestSum
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Digest returns the job's outcome digest sum. Stable only once the job is
// terminal.
func (j *Job) Digest() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return j.digestSum
	}
	return j.digest.Sum()
}

// leasesByWorker adds this job's currently leased range counts into the
// per-worker tally (the federation's lease source).
func (j *Job) leasesByWorker(out map[string]int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range j.ranges {
		if r.status == rangeLeased && r.worker != "" {
			out[r.worker]++
		}
	}
}

// LeaseKey is the lockserver mutex key guarding a range of this job.
func (j *Job) LeaseKey(rangeID int) string {
	return fmt.Sprintf("erpi/job/%s/range/%d", j.id, rangeID)
}

// leaseToken is the fencing token a worker stores in its lease key:
// worker name plus grant epoch, unique per (re)lease.
func leaseToken(worker string, epoch int) string {
	return fmt.Sprintf("%s/%d", worker, epoch)
}
