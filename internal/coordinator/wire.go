// Package coordinator is the distributed exploration service: it promotes
// the in-process pool's coordinator loop (internal/runner/pool.go) into a
// network service that leases contiguous interleaving ranges to workers —
// local goroutines or remote processes — over a JSON-lines TCP protocol.
//
// The division of labor mirrors the pool exactly: the coordinator owns
// enumeration (one explorer), dedup, the checkpoint journal, and in-order
// aggregation of results; workers own only execution. Ranges carry their
// interleavings inline, so workers never enumerate and the explored set is
// byte-identical to a sequential run no matter how many workers serve it,
// how they crash, or how often ranges are requeued.
//
// Crash tolerance rests on two mechanisms (DESIGN.md §4.10):
//
//   - Liveness: each granted range has a heartbeat deadline on the
//     coordinator and, optionally, an auto-renewed lockserver mutex held
//     by the worker. A silent worker (or an expired lease) marks the
//     range orphaned and requeues it for another worker.
//   - Safety: each grant carries a fencing epoch, bumped on every
//     (re)lease. Commits and heartbeats quoting a stale epoch are
//     rejected, so a zombie worker that wakes up after its range was
//     requeued can never double-commit results.
package coordinator

import (
	"strconv"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/telemetry"
)

// Protocol message types. The worker drives a strict request/response
// lockstep on its connection: every worker→coordinator message gets
// exactly one reply.
const (
	// worker → coordinator
	msgHello     = "hello"     // bind to a job (reply: hello | drain | done | error)
	msgLease     = "lease"     // request a range (reply: range | drain | done | error)
	msgHeartbeat = "heartbeat" // extend a held range's deadline (reply: ok | fenced | error)
	msgCommit    = "commit"    // deliver a range's results (reply: ok | fenced | error)
	msgTelemetry = "telemetry" // report metrics/progress + span delta (reply: ok | error)

	// coordinator → worker
	msgRange  = "range"  // a granted range with its interleavings inline
	msgDrain  = "drain"  // nothing leasable right now; retry after RetryMs
	msgDone   = "done"   // the job is finished (or cancelled); stop serving it
	msgOK     = "ok"     // heartbeat/commit accepted
	msgFenced = "fenced" // stale epoch: the range was requeued; discard local work
	msgError  = "error"  // protocol violation or server-side failure
)

// wireMsg is the single envelope both sides exchange, one JSON object per
// line. Fields are populated per Type; zero fields are omitted.
type wireMsg struct {
	Type string `json:"type"`

	// hello (worker→coordinator): the worker's unique name, and optionally
	// a specific job id to serve ("" = any running job).
	Worker string `json:"worker,omitempty"`
	Job    string `json:"job,omitempty"`

	// hello (coordinator→worker): everything the worker needs to build an
	// identical execution environment.
	Spec       *JobSpec `json:"spec,omitempty"`
	LockAddr   string   `json:"lock_addr,omitempty"`
	LeaseTTLMs int64    `json:"lease_ttl_ms,omitempty"`

	// range / heartbeat / commit: range identity plus the fencing epoch
	// the grant carried.
	Range int `json:"range,omitempty"`
	Epoch int `json:"epoch,omitempty"`

	// range (coordinator→worker): the global index of the first
	// interleaving and the concrete event orders to execute.
	Start         int     `json:"start,omitempty"`
	Interleavings [][]int `json:"interleavings,omitempty"`

	// commit (worker→coordinator): one result per interleaving, in range
	// order.
	Results []wireResult `json:"results,omitempty"`

	// telemetry (worker→coordinator): the worker's cumulative metrics and
	// progress plus its span delta, folded into the coordinator's fleet
	// view. Strictly additive to the protocol: workers that never send it
	// and coordinators that ignore it interoperate unchanged.
	Telemetry *telemetry.WorkerReport `json:"telemetry,omitempty"`

	// drain: how long the worker should wait before retrying.
	RetryMs int64 `json:"retry_ms,omitempty"`

	// error: human-readable cause.
	Err string `json:"error,omitempty"`
}

// wireResult is one interleaving's execution result. Error != "" marks a
// quarantined interleaving (execution kept failing after retries); the
// coordinator counts it and continues, exactly like the in-process engines.
// Subsumed marks an interleaving the worker's subsumption table pruned: no
// outcome and no error, but the index is consumed and journaled so the cap,
// dedup, and resume accounting match a non-pruning run.
type wireResult struct {
	Index    int          `json:"index"`
	Key      string       `json:"key"`
	Outcome  *wireOutcome `json:"outcome,omitempty"`
	Attempts int          `json:"attempts,omitempty"`
	Error    string       `json:"error,omitempty"`
	Subsumed bool         `json:"subsumed,omitempty"`
}

// wireOutcome is runner.Outcome flattened for the wire (string-keyed maps,
// plain int event IDs).
type wireOutcome struct {
	Fingerprints map[string]string `json:"fingerprints,omitempty"`
	Observations map[string]string `json:"observations,omitempty"`
	FailedOps    []int             `json:"failed_ops,omitempty"`
	DroppedSyncs []int             `json:"dropped_syncs,omitempty"`
	Converged    bool              `json:"converged"`
}

func toWireOutcome(o *runner.Outcome) *wireOutcome {
	w := &wireOutcome{Converged: o.Converged}
	if len(o.Fingerprints) > 0 {
		w.Fingerprints = make(map[string]string, len(o.Fingerprints))
		for r, fp := range o.Fingerprints {
			w.Fingerprints[string(r)] = fp
		}
	}
	if len(o.Observations) > 0 {
		w.Observations = make(map[string]string, len(o.Observations))
		for id, v := range o.Observations {
			w.Observations[strconv.Itoa(int(id))] = v
		}
	}
	for _, id := range o.FailedOps {
		w.FailedOps = append(w.FailedOps, int(id))
	}
	for _, id := range o.DroppedSyncs {
		w.DroppedSyncs = append(w.DroppedSyncs, int(id))
	}
	return w
}

// outcome rebuilds the runner.Outcome the coordinator's assertions and
// digest consume. Index and interleaving come from the coordinator's own
// ledger, never from the wire, so a confused worker cannot corrupt them.
func (w *wireOutcome) outcome(index int, il interleave.Interleaving) *runner.Outcome {
	o := &runner.Outcome{
		Index:        index,
		Interleaving: il,
		Converged:    w.Converged,
	}
	if len(w.Fingerprints) > 0 {
		o.Fingerprints = make(map[event.ReplicaID]string, len(w.Fingerprints))
		for r, fp := range w.Fingerprints {
			o.Fingerprints[event.ReplicaID(r)] = fp
		}
	}
	if len(w.Observations) > 0 {
		o.Observations = make(map[event.ID]string, len(w.Observations))
		for k, v := range w.Observations {
			id, err := strconv.Atoi(k)
			if err != nil {
				continue
			}
			o.Observations[event.ID(id)] = v
		}
	}
	for _, id := range w.FailedOps {
		o.FailedOps = append(o.FailedOps, event.ID(id))
	}
	for _, id := range w.DroppedSyncs {
		o.DroppedSyncs = append(o.DroppedSyncs, event.ID(id))
	}
	return o
}

func ilsToWire(ils []interleave.Interleaving) [][]int {
	out := make([][]int, len(ils))
	for i, il := range ils {
		ids := make([]int, len(il))
		for j, id := range il {
			ids[j] = int(id)
		}
		out[i] = ids
	}
	return out
}

func ilsFromWire(raw [][]int) []interleave.Interleaving {
	out := make([]interleave.Interleaving, len(raw))
	for i, ids := range raw {
		il := make(interleave.Interleaving, len(ids))
		for j, id := range ids {
			il[j] = event.ID(id)
		}
		out[i] = il
	}
	return out
}
