package coordinator

import (
	"fmt"
	"time"

	"github.com/er-pi/erpi/internal/bugs"
	"github.com/er-pi/erpi/internal/miscon"
	"github.com/er-pi/erpi/internal/runner"
)

// JobSpec names a workload plus the exploration parameters that must be
// identical on the coordinator (which enumerates) and every worker (which
// executes). It is deliberately data-only — a bug or misconception name,
// not a Scenario — so it serializes into the hello handshake and the
// per-job manifest, and so a coordinator restart rebuilds the exact same
// scenario from it.
type JobSpec struct {
	// Bug names a Table-1 bug benchmark (e.g. "Roshi-1"). Exactly one of
	// Bug and Miscon must be set.
	Bug string `json:"bug,omitempty"`
	// Miscon names a Table-2 misconception scenario (e.g. "CRDTs#4").
	Miscon string `json:"miscon,omitempty"`
	// Mode is the exploration mode (default "erpi"). ModeFuzz distributes
	// by generation: the coordinator owns the corpus, carves each
	// generation's children into leased ranges, classifies the reported
	// signatures in carve order, and evolves the corpus only when a whole
	// generation has aggregated — so the corpus trajectory matches an
	// in-process run with the same seed exactly.
	Mode string `json:"mode,omitempty"`
	// Seed drives rand/fuzz-mode enumeration and retry jitter.
	Seed int64 `json:"seed,omitempty"`
	// FuzzGenerationSize fixes ModeFuzz's generation size (0 = adaptive);
	// runner.Config.FuzzGenerationSize semantics. Part of the spec because
	// coordinator and resumed coordinators must synthesize identical
	// generations.
	FuzzGenerationSize int `json:"fuzz_generation_size,omitempty"`
	// MaxInterleavings caps the job (0 = runner default; negative =
	// unbounded). Like the runner's, the cap is session-wide: journaled
	// interleavings count toward it across coordinator restarts.
	MaxInterleavings int `json:"max_interleavings,omitempty"`
	// RangeSize overrides the service's default lease granularity.
	RangeSize int `json:"range_size,omitempty"`
	// StopOnViolation ends the job at the first assertion failure.
	StopOnViolation bool `json:"stop_on_violation,omitempty"`
	// MaxRetries / InterleavingTimeoutMs tune worker-side execution
	// (runner.Config semantics; 0 retries means the default of 1).
	MaxRetries            int   `json:"max_retries,omitempty"`
	InterleavingTimeoutMs int64 `json:"interleaving_timeout_ms,omitempty"`
	// Subsumption enables state-subsumption pruning on every worker: each
	// worker process keeps a private visited-frontier table and reports
	// skipped interleavings as subsumed (no outcome, no digest entry).
	// Lexicographic modes only — the runner silently ignores it for rand.
	Subsumption bool `json:"subsumption,omitempty"`
	// SubsumptionTableBytes bounds each worker's table (0 with Subsumption
	// set uses DefaultSubsumptionTableBytes).
	SubsumptionTableBytes int64 `json:"subsumption_table_bytes,omitempty"`
}

// DefaultSubsumptionTableBytes is the per-worker subsumption table budget
// when a spec enables Subsumption without sizing it.
const DefaultSubsumptionTableBytes int64 = 16 << 20

// validate rejects specs the service cannot honor.
func (sp *JobSpec) validate() error {
	if (sp.Bug == "") == (sp.Miscon == "") {
		return fmt.Errorf("coordinator: spec must name exactly one of bug or miscon")
	}
	if sp.Mode == "" {
		sp.Mode = string(runner.ModeERPi)
	}
	switch runner.Mode(sp.Mode) {
	case runner.ModeERPi, runner.ModeDFS, runner.ModeRand, runner.ModeFuzz:
	default:
		return fmt.Errorf("coordinator: unknown mode %q", sp.Mode)
	}
	return nil
}

// build resolves the named workload into the scenario and fresh assertion
// instances. Both sides call it: the coordinator for enumeration and
// assertion checking, each worker for execution (assertions are checked
// only on the coordinator, in aggregation order, so stateful detectors see
// the exact sequential outcome sequence).
func (sp *JobSpec) build() (runner.Scenario, []runner.Assertion, error) {
	if sp.Bug != "" {
		b, ok := bugs.ByName(sp.Bug)
		if !ok {
			return runner.Scenario{}, nil, fmt.Errorf("coordinator: unknown bug %q", sp.Bug)
		}
		s, err := b.Build()
		if err != nil {
			return runner.Scenario{}, nil, err
		}
		asserts, err := b.NewAssertions()
		if err != nil {
			return runner.Scenario{}, nil, err
		}
		return s, asserts, nil
	}
	for _, sc := range miscon.All() {
		if sc.Name() == sp.Miscon {
			s, err := sc.Build()
			if err != nil {
				return runner.Scenario{}, nil, err
			}
			return s, sc.NewAssertions(), nil
		}
	}
	return runner.Scenario{}, nil, fmt.Errorf("coordinator: unknown misconception %q", sp.Miscon)
}

// Build resolves the spec's named workload into its scenario and fresh
// assertion instances — the exported face of build for benchmarks and
// external drivers that need the same scenario the cluster runs.
func (sp *JobSpec) Build() (runner.Scenario, []runner.Assertion, error) {
	return sp.build()
}

// execConfig is the runner.Config a worker's Executor runs under. Only
// execution-relevant fields are set; enumeration fields live on the
// coordinator.
func (sp *JobSpec) execConfig() runner.Config {
	cfg := runner.Config{
		Mode:                runner.Mode(sp.Mode),
		Seed:                sp.Seed,
		MaxRetries:          sp.MaxRetries,
		InterleavingTimeout: time.Duration(sp.InterleavingTimeoutMs) * time.Millisecond,
	}
	if sp.Subsumption {
		cfg.SubsumptionTable = sp.SubsumptionTableBytes
		if cfg.SubsumptionTable <= 0 {
			cfg.SubsumptionTable = DefaultSubsumptionTableBytes
		}
	}
	return cfg
}

// exploreConfig is the runner.Config the coordinator's explorer is built
// from (mode + seed drive enumeration; pruning comes from the scenario).
func (sp *JobSpec) exploreConfig() runner.Config {
	return runner.Config{
		Mode:               runner.Mode(sp.Mode),
		Seed:               sp.Seed,
		FuzzGenerationSize: sp.FuzzGenerationSize,
	}
}

// label names the workload for status displays.
func (sp *JobSpec) label() string {
	if sp.Bug != "" {
		return sp.Bug
	}
	return sp.Miscon
}
