package coordinator

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/forensics"
	"github.com/er-pi/erpi/internal/telemetry"
)

// TestFederatedTelemetryAndJobForensics is the issue's end-to-end pin: a
// violating job under a coordinator with two telemetry-reporting workers
// must (1) fold both workers' metrics into the fleet /metrics and
// /progress views with counters that stay monotone and sum across
// workers, (2) serve a Prometheus-valid text exposition under content
// negotiation, (3) merge both workers into the fleet trace, and (4)
// capture a forensic bundle on the coordinator host that `erpi explain`
// renders naming the violated assertion.
func TestFederatedTelemetryAndJobForensics(t *testing.T) {
	spec := JobSpec{Bug: "Roshi-2", Mode: "dfs", MaxInterleavings: testCap}
	reg := telemetry.New()
	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: time.Second, Telemetry: reg})

	status, err := telemetry.NewStatusServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer status.Close()
	status.ServeFederation(svc.Federation())

	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Scrape fleet explored mid-run on a tight cadence; the sequence must
	// be monotone (cumulative per-worker snapshots can never fold into a
	// smaller sum).
	var samples []int64
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		for {
			select {
			case <-j.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := http.Get(status.URL() + "/metrics")
			if err != nil {
				continue
			}
			var snap telemetry.Snapshot
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err == nil {
				samples = append(samples, snap.Counters["runner.explored"])
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = RunWorker(context.Background(), WorkerOptions{
				Addr:              svc.Addr(),
				Name:              fmt.Sprintf("w%d", i+1),
				Once:              true,
				Telemetry:         telemetry.New(),
				TelemetryInterval: 10 * time.Millisecond,
			})
		}(i)
	}
	st := waitDone(t, j)
	wg.Wait()
	<-sampleDone

	if st.State != StateDone {
		t.Fatalf("state = %s (%+v)", st.State, st)
	}
	if st.FirstViolation == 0 {
		t.Fatalf("Roshi-2 did not violate: %+v", st)
	}
	if !sort.SliceIsSorted(samples, func(a, b int) bool { return samples[a] < samples[b] }) {
		t.Fatalf("fleet explored counter not monotone across scrapes: %v", samples)
	}

	// Counters sum across workers: every worker reports its cumulative
	// snapshot after each committed range, so the fleet fold must account
	// for every executed interleaving.
	fed := svc.Federation()
	if fed.Workers() != 2 {
		t.Fatalf("federation folded %d workers, want 2", fed.Workers())
	}
	fleet := fed.Snapshot()
	if got := fleet.Counters["runner.explored"]; got != int64(st.Explored) {
		t.Fatalf("fleet runner.explored = %d, want %d", got, st.Explored)
	}
	var perWorker int64
	for _, row := range fed.Progress().Workers {
		perWorker += row.Explored
	}
	if perWorker != int64(st.Explored) {
		t.Fatalf("per-worker explored rows sum to %d, want %d", perWorker, st.Explored)
	}

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, status.URL()+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// /progress serves the fleet breakdown with one row per worker.
	var prog telemetry.FleetProgress
	body, _ := get("/progress", "")
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("fleet progress JSON: %v", err)
	}
	if len(prog.Workers) != 2 || prog.Explored != int64(st.Explored) {
		t.Fatalf("fleet progress: %+v", prog)
	}

	// /metrics negotiates a valid Prometheus exposition carrying the fleet
	// counter.
	prom, ct := get("/metrics", "text/plain")
	if ct != telemetry.PrometheusContentType {
		t.Fatalf("negotiated content type = %q", ct)
	}
	if err := telemetry.ValidatePrometheus(strings.NewReader(prom)); err != nil {
		t.Fatalf("coordinator /metrics fails Prometheus validation: %v\n%s", err, prom)
	}
	if want := fmt.Sprintf("erpi_runner_explored_total %d", st.Explored); !strings.Contains(prom, want) {
		t.Fatalf("exposition missing %q:\n%s", want, prom)
	}

	// /trace merges one lane per worker.
	trace, _ := get("/trace", "")
	for _, want := range []string{"worker w1", "worker w2"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("fleet trace missing lane %q", want)
		}
	}

	// The violating job captured forensic bundles on the coordinator side.
	if len(st.Bundles) == 0 {
		t.Fatalf("violating job captured no forensic bundles: %+v", st)
	}
	b, err := forensics.Load(st.Bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Index != st.FirstViolation {
		t.Fatalf("first bundle is for #%d, want first violation #%d", b.Index, st.FirstViolation)
	}
	if !strings.HasPrefix(st.Bundles[0], filepath.Join(root, j.ID())) {
		t.Fatalf("bundle %s is outside the job journal %s", st.Bundles[0], filepath.Join(root, j.ID()))
	}
	var narrative bytes.Buffer
	if err := forensics.Explain(&narrative, b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(narrative.String(), st.Violations[0].Assertion) {
		t.Fatalf("explain output does not name the violated assertion %q:\n%s",
			st.Violations[0].Assertion, narrative.String())
	}
}

// TestJobBundlesSurviveManifestRestart pins that a resumed coordinator
// still reports a finished job's bundle paths from its manifest.
func TestJobBundlesSurviveManifestRestart(t *testing.T) {
	spec := JobSpec{Bug: "Roshi-2", Mode: "dfs", MaxInterleavings: testCap, StopOnViolation: true}
	root := t.TempDir()
	svc := startService(t, Options{JournalRoot: root, LeaseTTL: time.Second})
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunWorker(context.Background(), WorkerOptions{Addr: svc.Addr(), Name: "w1", Once: true}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	st := waitDone(t, j)
	if len(st.Bundles) == 0 {
		t.Fatalf("no bundles captured: %+v", st)
	}
	_ = svc.Close()

	svc2 := startService(t, Options{JournalRoot: root, LeaseTTL: time.Second})
	if err := svc2.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j2, ok := svc2.Job(j.ID())
	if !ok {
		t.Fatalf("job %s not recovered", j.ID())
	}
	st2 := j2.Status()
	if len(st2.Bundles) != len(st.Bundles) || st2.Bundles[0] != st.Bundles[0] {
		t.Fatalf("bundles after restart = %v, want %v", st2.Bundles, st.Bundles)
	}
	if _, err := forensics.Load(st2.Bundles[0]); err != nil {
		t.Fatalf("recovered bundle unreadable: %v", err)
	}
}
