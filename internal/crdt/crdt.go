// Package crdt implements the replicated data library (RDL) substrate that
// ER-π's evaluation subjects integrate: state-based conflict-free
// replicated data types with a join (merge) operation that is commutative,
// associative, and idempotent, so that replicas applying the same set of
// updates in any order converge.
//
// The package provides counters (GCounter, PNCounter), sets (GSet,
// TwoPhaseSet, ORSet, LWWSet with Roshi's last-write-wins element
// semantics), registers (LWWRegister, MVRegister), an RGA sequence (with
// both a naive delete+insert Move and a winner-position MoveWins), an
// observed-remove map, and a JSON document built from those pieces.
package crdt

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is a logical timestamp: a Lamport counter with the replica ID as a
// total-order tie breaker. The zero Time is "before everything".
type Time struct {
	Counter uint64 `json:"counter"`
	Replica string `json:"replica"`
}

// Less imposes the total order (counter, then replica).
func (t Time) Less(other Time) bool {
	if t.Counter != other.Counter {
		return t.Counter < other.Counter
	}
	return t.Replica < other.Replica
}

// Equal reports timestamp identity.
func (t Time) Equal(other Time) bool { return t == other }

// IsZero reports whether the timestamp is the bottom element.
func (t Time) IsZero() bool { return t == Time{} }

// String renders "counter@replica".
func (t Time) String() string {
	return strconv.FormatUint(t.Counter, 10) + "@" + t.Replica
}

// ParseTime parses the String form back into a Time.
func ParseTime(s string) (Time, error) {
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return Time{}, fmt.Errorf("crdt: malformed time %q", s)
	}
	c, err := strconv.ParseUint(s[:at], 10, 64)
	if err != nil {
		return Time{}, fmt.Errorf("crdt: malformed time %q: %w", s, err)
	}
	return Time{Counter: c, Replica: s[at+1:]}, nil
}

// Clock issues monotonically increasing Times for one replica and witnesses
// remote times so that later local times dominate everything seen.
type Clock struct {
	replica string
	counter uint64
}

// NewClock returns a clock bound to a replica identity.
func NewClock(replica string) *Clock {
	return &Clock{replica: replica}
}

// Now issues the next local timestamp.
func (c *Clock) Now() Time {
	c.counter++
	return Time{Counter: c.counter, Replica: c.replica}
}

// Witness observes a remote timestamp, advancing the local counter past it.
func (c *Clock) Witness(t Time) {
	if t.Counter > c.counter {
		c.counter = t.Counter
	}
}

// Replica returns the clock's replica identity.
func (c *Clock) Replica() string { return c.replica }

// Counter exposes the current counter (for checkpointing).
func (c *Clock) Counter() uint64 { return c.counter }

// SetCounter restores the counter (for checkpoint reset).
func (c *Clock) SetCounter(n uint64) { c.counter = n }
