package crdt

// GCounter is a grow-only counter: each replica increments its own
// component; the value is the sum; join is the component-wise maximum.
type GCounter struct {
	counts map[string]uint64
}

// NewGCounter returns an empty grow-only counter.
func NewGCounter() *GCounter {
	return &GCounter{counts: make(map[string]uint64)}
}

// Inc adds delta to the component of replica r.
func (g *GCounter) Inc(r string, delta uint64) {
	g.counts[r] += delta
}

// Value returns the counter total.
func (g *GCounter) Value() uint64 {
	var sum uint64
	for _, n := range g.counts {
		sum += n
	}
	return sum
}

// Merge joins another counter into this one (component-wise max).
func (g *GCounter) Merge(other *GCounter) {
	for r, n := range other.counts {
		if n > g.counts[r] {
			g.counts[r] = n
		}
	}
}

// Clone returns an independent copy.
func (g *GCounter) Clone() *GCounter {
	out := NewGCounter()
	for r, n := range g.counts {
		out.counts[r] = n
	}
	return out
}

// Equal reports state identity.
func (g *GCounter) Equal(other *GCounter) bool {
	if len(g.counts) != len(other.counts) {
		// Zero components may legitimately be absent on one side.
		return g.equalSparse(other) && other.equalSparse(g)
	}
	return g.equalSparse(other) && other.equalSparse(g)
}

func (g *GCounter) equalSparse(other *GCounter) bool {
	for r, n := range g.counts {
		if other.counts[r] != n {
			return false
		}
	}
	return true
}

// Components returns a copy of the per-replica counts.
func (g *GCounter) Components() map[string]uint64 {
	out := make(map[string]uint64, len(g.counts))
	for r, n := range g.counts {
		out[r] = n
	}
	return out
}

// PNCounter supports increments and decrements as a pair of GCounters.
type PNCounter struct {
	pos *GCounter
	neg *GCounter
}

// NewPNCounter returns an empty counter.
func NewPNCounter() *PNCounter {
	return &PNCounter{pos: NewGCounter(), neg: NewGCounter()}
}

// Inc adds delta at replica r.
func (p *PNCounter) Inc(r string, delta uint64) { p.pos.Inc(r, delta) }

// Dec subtracts delta at replica r.
func (p *PNCounter) Dec(r string, delta uint64) { p.neg.Inc(r, delta) }

// Value returns the net count (may be negative).
func (p *PNCounter) Value() int64 {
	return int64(p.pos.Value()) - int64(p.neg.Value())
}

// Merge joins another counter into this one.
func (p *PNCounter) Merge(other *PNCounter) {
	p.pos.Merge(other.pos)
	p.neg.Merge(other.neg)
}

// Clone returns an independent copy.
func (p *PNCounter) Clone() *PNCounter {
	return &PNCounter{pos: p.pos.Clone(), neg: p.neg.Clone()}
}

// Equal reports state identity.
func (p *PNCounter) Equal(other *PNCounter) bool {
	return p.pos.Equal(other.pos) && p.neg.Equal(other.neg)
}
