package crdt

import (
	"testing"
	"testing/quick"
)

func ts(c uint64, r string) Time { return Time{Counter: c, Replica: r} }

func TestLWWSetBasic(t *testing.T) {
	s := NewLWWSet(BiasAdd)
	if !s.Add("x", ts(1, "A")) {
		t.Fatal("fresh add must take effect")
	}
	if s.Add("x", ts(1, "A")) {
		t.Fatal("same-stamp add is stale")
	}
	if !s.Contains("x") {
		t.Fatal("x must be live")
	}
	if !s.Remove("x", ts(2, "A")) {
		t.Fatal("newer remove must take effect")
	}
	if s.Contains("x") {
		t.Fatal("x must be dead after newer remove")
	}
	if !s.Deleted("x") {
		t.Fatal("x must report deleted (Roshi #18 field)")
	}
	if s.Deleted("never-seen") {
		t.Fatal("unknown element is not deleted")
	}
}

func TestLWWSetStaleOpsIgnored(t *testing.T) {
	s := NewLWWSet(BiasAdd)
	s.Add("x", ts(5, "A"))
	if s.Add("x", ts(3, "B")) {
		t.Fatal("older add must be ignored")
	}
	s.Remove("x", ts(4, "B"))
	if !s.Contains("x") {
		t.Fatal("older remove must not kill a newer add")
	}
}

func TestLWWSetTieBias(t *testing.T) {
	addWins := NewLWWSet(BiasAdd)
	addWins.Add("x", ts(7, "A"))
	addWins.Remove("x", ts(7, "A"))
	if !addWins.Contains("x") {
		t.Fatal("BiasAdd: element must survive an exact tie")
	}
	remWins := NewLWWSet(BiasRemove)
	remWins.Add("x", ts(7, "A"))
	remWins.Remove("x", ts(7, "A"))
	if remWins.Contains("x") {
		t.Fatal("BiasRemove: element must die on an exact tie")
	}
}

func TestLWWSetTimes(t *testing.T) {
	s := NewLWWSet(BiasAdd)
	s.Add("x", ts(3, "A"))
	s.Remove("x", ts(9, "B"))
	at, ok := s.AddTime("x")
	if !ok || at != ts(3, "A") {
		t.Fatalf("AddTime = %v %v", at, ok)
	}
	rt, ok := s.RemoveTime("x")
	if !ok || rt != ts(9, "B") {
		t.Fatalf("RemoveTime = %v %v", rt, ok)
	}
	if _, ok := s.AddTime("ghost"); ok {
		t.Fatal("AddTime of unknown element")
	}
}

func TestLWWSetMergeCommutes(t *testing.T) {
	mk := func() (*LWWSet, *LWWSet) {
		a := NewLWWSet(BiasAdd)
		b := NewLWWSet(BiasAdd)
		a.Add("x", ts(1, "A"))
		a.Remove("y", ts(4, "A"))
		b.Add("y", ts(3, "B"))
		b.Add("x", ts(2, "B"))
		b.Remove("x", ts(5, "B"))
		return a, b
	}
	a1, b1 := mk()
	a1.Merge(b1)
	a2, b2 := mk()
	b2.Merge(a2)
	if !a1.Equal(b2) {
		t.Fatal("LWW merge must be commutative")
	}
	if a1.Contains("x") {
		t.Fatal("newest op for x is a remove at t=5")
	}
	if a1.Contains("y") {
		t.Fatal("newest op for y is a remove at t=4")
	}
}

// TestLWWSetConvergenceProperty: random op histories distributed over two
// replicas converge regardless of merge order — the eventual-consistency
// guarantee the paper's RDLs provide.
func TestLWWSetConvergenceProperty(t *testing.T) {
	f := func(ops []struct {
		Replica byte
		Add     bool
		Elem    uint8
		Stamp   uint8
	}) bool {
		a, b := NewLWWSet(BiasAdd), NewLWWSet(BiasAdd)
		for _, o := range ops {
			r, target := "A", a
			if o.Replica%2 == 1 {
				r, target = "B", b
			}
			elem := string(rune('a' + o.Elem%4))
			stamp := ts(uint64(o.Stamp), r)
			if o.Add {
				target.Add(elem, stamp)
			} else {
				target.Remove(elem, stamp)
			}
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Merge(b)
		return again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLWWRegister(t *testing.T) {
	r := NewLWWRegister()
	if _, set := r.Get(); set {
		t.Fatal("fresh register must be unset")
	}
	if !r.Set("v1", ts(1, "A")) {
		t.Fatal("first set must win")
	}
	if r.Set("v0", ts(1, "A")) {
		t.Fatal("equal-stamp set is stale")
	}
	if !r.Set("v2", ts(2, "B")) {
		t.Fatal("newer set must win")
	}
	v, _ := r.Get()
	if v != "v2" || r.Stamp() != ts(2, "B") {
		t.Fatalf("Get = %q stamp %v", v, r.Stamp())
	}
	other := NewLWWRegister()
	other.Set("v3", ts(9, "A"))
	r.Merge(other)
	if v, _ := r.Get(); v != "v3" {
		t.Fatal("merge must adopt newer write")
	}
	if !r.Equal(r.Clone()) {
		t.Fatal("Equal(clone) must hold")
	}
}

func TestMVRegisterConcurrentWritesSurvive(t *testing.T) {
	r := NewMVRegister()
	r.Set("a", map[string]uint64{"A": 1})
	r.Set("b", map[string]uint64{"B": 1}) // concurrent with "a"
	vals := r.Values()
	if len(vals) != 2 {
		t.Fatalf("Values = %v, want both concurrent writes", vals)
	}
	// A dominating write replaces both.
	r.Set("c", map[string]uint64{"A": 2, "B": 2})
	vals = r.Values()
	if len(vals) != 1 || vals[0] != "c" {
		t.Fatalf("Values = %v, want [c]", vals)
	}
}

func TestMVRegisterMergeCommutes(t *testing.T) {
	mk := func() (*MVRegister, *MVRegister) {
		a, b := NewMVRegister(), NewMVRegister()
		a.Set("x", map[string]uint64{"A": 1})
		b.Set("y", map[string]uint64{"B": 1})
		return a, b
	}
	a1, b1 := mk()
	a1.Merge(b1)
	a2, b2 := mk()
	b2.Merge(a2)
	if !a1.Equal(b2) {
		t.Fatalf("MV merge not commutative: %v vs %v", a1.Values(), b2.Values())
	}
	if len(a1.Values()) != 2 {
		t.Fatalf("concurrent values = %v, want 2", a1.Values())
	}
}

func TestMVRegisterMergeDominated(t *testing.T) {
	a, b := NewMVRegister(), NewMVRegister()
	a.Set("old", map[string]uint64{"A": 1})
	b.Set("new", map[string]uint64{"A": 2})
	a.Merge(b)
	vals := a.Values()
	if len(vals) != 1 || vals[0] != "new" {
		t.Fatalf("dominated value must vanish, got %v", vals)
	}
}

func TestORMapBasics(t *testing.T) {
	m := NewORMap()
	if !m.Put("k", "v1", ts(1, "A")) {
		t.Fatal("fresh put must win")
	}
	if m.Put("k", "v0", ts(1, "A")) {
		t.Fatal("stale put must lose")
	}
	v, ok := m.Get("k")
	if !ok || v != "v1" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if !m.Remove("k", ts(2, "A")) {
		t.Fatal("remove of live key must succeed")
	}
	if m.Remove("k", ts(3, "A")) {
		t.Fatal("remove of dead key is a failed op")
	}
	if m.Contains("k") {
		t.Fatal("removed key still live")
	}
	// A newer put resurrects the key.
	m.Put("k", "v2", ts(5, "B"))
	if !m.Contains("k") {
		t.Fatal("newer put must beat older remove")
	}
	if m.Len() != 1 || m.Keys()[0] != "k" {
		t.Fatalf("Keys = %v", m.Keys())
	}
}

func TestORMapMergeCommutes(t *testing.T) {
	mk := func() (*ORMap, *ORMap) {
		a, b := NewORMap(), NewORMap()
		a.Put("x", "ax", ts(1, "A"))
		a.Remove("x", ts(2, "A"))
		b.Put("x", "bx", ts(3, "B"))
		b.Put("y", "by", ts(1, "B"))
		return a, b
	}
	a1, b1 := mk()
	a1.Merge(b1)
	a2, b2 := mk()
	b2.Merge(a2)
	if !a1.Equal(b2) {
		t.Fatal("ORMap merge must be commutative")
	}
	if v, _ := a1.Get("x"); v != "bx" {
		t.Fatalf("x = %q, want bx (newest put)", v)
	}
}
