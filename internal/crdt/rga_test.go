package crdt

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestRGAInsertAndOrder(t *testing.T) {
	c := NewClock("A")
	r := NewRGA()
	id1, err := r.InsertAfter(c, HeadID, "one")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InsertAfter(c, id1, "two"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InsertAfter(c, HeadID, "zero"); err != nil {
		t.Fatal(err)
	}
	got := r.Values()
	want := []string{"zero", "one", "two"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRGAInsertAt(t *testing.T) {
	c := NewClock("A")
	r := NewRGA()
	for i, v := range []string{"a", "b", "c"} {
		if _, err := r.InsertAt(c, i, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.InsertAt(c, 1, "x"); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "x", "b", "c"}
	if got := r.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	if _, err := r.InsertAt(c, 99, "y"); err == nil {
		t.Fatal("out-of-range insert must fail")
	}
	if _, err := r.InsertAfter(c, Time{Counter: 999, Replica: "Z"}, "y"); err == nil {
		t.Fatal("insert after unknown origin must fail")
	}
}

func TestRGADelete(t *testing.T) {
	c := NewClock("A")
	r := NewRGA()
	id, _ := r.InsertAfter(c, HeadID, "x")
	if !r.Delete(id) {
		t.Fatal("delete of live element must succeed")
	}
	if r.Delete(id) {
		t.Fatal("double delete is a failed op")
	}
	if r.Len() != 0 {
		t.Fatal("tombstoned element still visible")
	}
	if _, err := r.IDAt(0); err == nil {
		t.Fatal("IDAt past end must fail")
	}
}

func TestRGAConcurrentInsertConverges(t *testing.T) {
	// Both replicas insert at the head concurrently; after mutual merge the
	// order must be identical on both sides.
	ca, cb := NewClock("A"), NewClock("B")
	a, b := NewRGA(), NewRGA()
	if _, err := a.InsertAfter(ca, HeadID, "fromA"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.InsertAfter(cb, HeadID, "fromB"); err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	b.Merge(a)
	if !reflect.DeepEqual(a.Values(), b.Values()) {
		t.Fatalf("divergence: %v vs %v", a.Values(), b.Values())
	}
	if len(a.Values()) != 2 {
		t.Fatalf("Values = %v", a.Values())
	}
}

func TestRGANaiveMoveDuplicates(t *testing.T) {
	// The misconception-#3 hazard: concurrent naive moves of the same
	// element produce duplicates after merge.
	ca, cb := NewClock("A"), NewClock("B")
	a := NewRGA()
	for i, v := range []string{"x", "y", "z"} {
		if _, err := a.InsertAt(ca, i, v); err != nil {
			t.Fatal(err)
		}
	}
	b := a.Clone()
	idA, _ := a.IDAt(0)
	lastA, _ := a.IDAt(2)
	if _, err := a.Move(ca, idA, lastA); err != nil { // A moves x to the end
		t.Fatal(err)
	}
	idB, _ := b.IDAt(0)
	midB, _ := b.IDAt(1)
	if _, err := b.Move(cb, idB, midB); err != nil { // B moves x after y
		t.Fatal(err)
	}
	a.Merge(b)
	b.Merge(a)
	if !reflect.DeepEqual(a.Values(), b.Values()) {
		t.Fatalf("states diverged: %v vs %v", a.Values(), b.Values())
	}
	count := 0
	for _, v := range a.Values() {
		if v == "x" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("naive move should duplicate x (got %d copies): %v", count, a.Values())
	}
}

func TestRGAMoveWinsNoDuplicate(t *testing.T) {
	ca, cb := NewClock("A"), NewClock("B")
	a := NewRGA()
	for i, v := range []string{"x", "y", "z"} {
		if _, err := a.InsertAt(ca, i, v); err != nil {
			t.Fatal(err)
		}
	}
	cb.Witness(Time{Counter: ca.Counter()}) // clocks roughly aligned
	b := a.Clone()
	idA, _ := a.IDAt(0)
	lastA, _ := a.IDAt(2)
	if _, err := a.MoveWins(ca, idA, lastA); err != nil {
		t.Fatal(err)
	}
	idB, _ := b.IDAt(0)
	midB, _ := b.IDAt(1)
	if _, err := b.MoveWins(cb, idB, midB); err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	b.Merge(a)
	if !reflect.DeepEqual(a.Values(), b.Values()) {
		t.Fatalf("states diverged: %v vs %v", a.Values(), b.Values())
	}
	count := 0
	for _, v := range a.Values() {
		if v == "x" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("MoveWins must keep exactly one x, got %d: %v", count, a.Values())
	}
}

func TestRGAMoveErrors(t *testing.T) {
	c := NewClock("A")
	r := NewRGA()
	ghost := Time{Counter: 1, Replica: "Z"}
	if _, err := r.Move(c, ghost, HeadID); err == nil {
		t.Fatal("moving a missing element must fail")
	}
	if _, err := r.MoveWins(c, ghost, HeadID); err == nil {
		t.Fatal("MoveWins of missing element must fail")
	}
}

// TestRGAMergeProperty: merge is commutative and idempotent for randomized
// insert/delete histories on two replicas.
func TestRGAMergeProperty(t *testing.T) {
	f := func(ops []struct {
		Replica byte
		Insert  bool
		Pos     uint8
	}) bool {
		clocks := map[string]*Clock{"A": NewClock("A"), "B": NewClock("B")}
		states := map[string]*RGA{"A": NewRGA(), "B": NewRGA()}
		for i, o := range ops {
			r := "A"
			if o.Replica%2 == 1 {
				r = "B"
			}
			s := states[r]
			if o.Insert || s.Len() == 0 {
				idx := 0
				if s.Len() > 0 {
					idx = int(o.Pos) % (s.Len() + 1)
				}
				if _, err := s.InsertAt(clocks[r], idx, string(rune('a'+i%26))); err != nil {
					return false
				}
			} else {
				id, err := s.IDAt(int(o.Pos) % s.Len())
				if err != nil {
					return false
				}
				s.Delete(id)
			}
		}
		ab := states["A"].Clone()
		ab.Merge(states["B"])
		ba := states["B"].Clone()
		ba.Merge(states["A"])
		if !reflect.DeepEqual(ab.Values(), ba.Values()) {
			return false
		}
		again := ab.Clone()
		again.Merge(states["B"])
		return again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONDocSetGet(t *testing.T) {
	d := NewJSONDoc()
	if err := d.Set([]string{"a", "b"}, "v", ts(1, "A")); err != nil {
		t.Fatal(err)
	}
	v, ok := d.Get([]string{"a", "b"})
	if !ok || v != "v" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if _, ok := d.Get([]string{"a"}); ok {
		t.Fatal("Get of an object node must report absent primitive")
	}
	if _, ok := d.Get([]string{"missing"}); ok {
		t.Fatal("Get of missing path")
	}
	if err := d.Set(nil, "v", ts(2, "A")); err == nil {
		t.Fatal("empty path must fail")
	}
	keys := d.Keys([]string{"a"})
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestJSONDocLWW(t *testing.T) {
	d := NewJSONDoc()
	d.Set([]string{"k"}, "new", ts(5, "A"))
	d.Set([]string{"k"}, "old", ts(3, "B"))
	if v, _ := d.Get([]string{"k"}); v != "new" {
		t.Fatalf("stale write must lose, got %q", v)
	}
	if err := d.Delete([]string{"k"}, ts(4, "B")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get([]string{"k"}); !ok {
		t.Fatal("older delete must not remove newer write")
	}
	if err := d.Delete([]string{"k"}, ts(9, "B")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get([]string{"k"}); ok {
		t.Fatal("newer delete must remove the entry")
	}
}

func TestJSONDocMergeRecursive(t *testing.T) {
	a, b := NewJSONDoc(), NewJSONDoc()
	a.Set([]string{"obj", "x"}, "ax", ts(1, "A"))
	b.Set([]string{"obj", "y"}, "by", ts(2, "B"))
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatalf("merge not commutative: %s vs %s", ab.Snapshot(), ba.Snapshot())
	}
	if v, _ := ab.Get([]string{"obj", "x"}); v != "ax" {
		t.Fatal("recursive merge lost x")
	}
	if v, _ := ab.Get([]string{"obj", "y"}); v != "by" {
		t.Fatal("recursive merge lost y")
	}
}

func TestJSONDocObjectBeatsPrimitiveOnTie(t *testing.T) {
	a, b := NewJSONDoc(), NewJSONDoc()
	a.Set([]string{"k"}, "prim", ts(3, "A"))
	b.SetObject([]string{"k"}, ts(3, "A"))
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatalf("tie resolution not commutative: %s vs %s", ab.Snapshot(), ba.Snapshot())
	}
	if keys := ab.Keys([]string{"k"}); keys == nil {
		t.Fatal("object must win the tie")
	}
}

func TestJSONDocSnapshotCanonical(t *testing.T) {
	d := NewJSONDoc()
	d.Set([]string{"b"}, "2", ts(1, "A"))
	d.Set([]string{"a"}, "1", ts(2, "A"))
	want := `{"a":"1","b":"2"}`
	if got := d.Snapshot(); got != want {
		t.Fatalf("Snapshot = %s, want %s", got, want)
	}
}

func TestJSONDocMergeProperty(t *testing.T) {
	f := func(ops []struct {
		Replica byte
		Key     uint8
		Nested  bool
		Stamp   uint8
	}) bool {
		a, b := NewJSONDoc(), NewJSONDoc()
		for i, o := range ops {
			doc, r := a, "A"
			if o.Replica%2 == 1 {
				doc, r = b, "B"
			}
			key := string(rune('a' + o.Key%3))
			stamp := Time{Counter: uint64(o.Stamp), Replica: r}
			var err error
			if o.Nested {
				err = doc.Set([]string{key, "child"}, "v", stamp)
			} else {
				err = doc.Set([]string{key}, "v", stamp)
			}
			_ = err // path conflicts with newer primitives are legal no-ops
			_ = i
		}
		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Merge(b)
		return again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
