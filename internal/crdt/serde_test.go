package crdt

import (
	"encoding/json"
	"reflect"
	"testing"
)

func roundTrip[T any](t *testing.T, in T, out T) {
	t.Helper()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
}

func TestGCounterJSONRoundTrip(t *testing.T) {
	g := NewGCounter()
	g.Inc("A", 3)
	g.Inc("B", 7)
	var out GCounter
	roundTrip(t, g, &out)
	if !g.Equal(&out) {
		t.Fatal("gcounter round trip lost state")
	}
}

func TestPNCounterJSONRoundTrip(t *testing.T) {
	p := NewPNCounter()
	p.Inc("A", 5)
	p.Dec("B", 2)
	var out PNCounter
	roundTrip(t, p, &out)
	if !p.Equal(&out) || out.Value() != 3 {
		t.Fatal("pncounter round trip lost state")
	}
}

func TestGSetJSONRoundTrip(t *testing.T) {
	g := NewGSet()
	g.Add("x")
	g.Add("y")
	var out GSet
	roundTrip(t, g, &out)
	if !g.Equal(&out) {
		t.Fatal("gset round trip lost state")
	}
}

func TestTwoPhaseSetJSONRoundTrip(t *testing.T) {
	s := NewTwoPhaseSet()
	s.Add("x")
	s.Add("y")
	s.Remove("x")
	var out TwoPhaseSet
	roundTrip(t, s, &out)
	if !s.Equal(&out) {
		t.Fatal("2pset round trip lost state")
	}
	if out.Contains("x") || !out.Contains("y") {
		t.Fatal("2pset membership wrong after round trip")
	}
}

func TestORSetJSONRoundTrip(t *testing.T) {
	c := NewClock("A")
	s := NewORSet()
	s.Add(c, "x")
	s.Add(c, "y")
	s.Remove("x")
	var out ORSet
	roundTrip(t, s, &out)
	if !s.Equal(&out) {
		t.Fatal("orset round trip lost state")
	}
	// Tombstones must survive: merging the original re-add of x must not
	// resurrect it.
	if out.Contains("x") {
		t.Fatal("tombstoned element resurrected")
	}
}

func TestLWWSetJSONRoundTrip(t *testing.T) {
	s := NewLWWSet(BiasRemove)
	s.Add("x", ts(1, "A"))
	s.Remove("x", ts(2, "B"))
	s.Add("y", ts(3, "A"))
	var out LWWSet
	roundTrip(t, s, &out)
	if !s.Equal(&out) {
		t.Fatal("lwwset round trip lost state (bias or stamps)")
	}
}

func TestLWWRegisterJSONRoundTrip(t *testing.T) {
	r := NewLWWRegister()
	r.Set("v", ts(9, "A"))
	var out LWWRegister
	roundTrip(t, r, &out)
	if !r.Equal(&out) {
		t.Fatal("register round trip lost state")
	}
}

func TestORMapJSONRoundTrip(t *testing.T) {
	m := NewORMap()
	m.Put("k", "v", ts(1, "A"))
	m.Put("dead", "x", ts(2, "A"))
	m.Remove("dead", ts(3, "A"))
	var out ORMap
	roundTrip(t, m, &out)
	if !m.Equal(&out) {
		t.Fatal("ormap round trip lost state")
	}
	if out.Contains("dead") {
		t.Fatal("removed key resurrected")
	}
}

func TestRGAJSONRoundTrip(t *testing.T) {
	c := NewClock("A")
	r := NewRGA()
	id1, _ := r.InsertAfter(c, HeadID, "a")
	r.InsertAfter(c, id1, "b")
	id3, _ := r.InsertAfter(c, HeadID, "front")
	r.Delete(id3)
	var out RGA
	roundTrip(t, r, &out)
	if !r.Equal(&out) {
		t.Fatal("rga round trip lost state")
	}
	if !reflect.DeepEqual(r.Values(), out.Values()) {
		t.Fatalf("rga order changed: %v vs %v", r.Values(), out.Values())
	}
}

// TestSerdeJoinEquivalence: decode(encode(x)) merged into an empty state
// equals x merged into an empty state, for the OR-set (the trickiest
// tombstone case).
func TestSerdeJoinEquivalence(t *testing.T) {
	c := NewClock("A")
	s := NewORSet()
	s.Add(c, "x")
	s.Remove("x")
	s.Add(c, "x") // re-add with a fresh tag
	var decoded ORSet
	roundTrip(t, s, &decoded)
	a := NewORSet()
	a.Merge(s)
	b := NewORSet()
	b.Merge(&decoded)
	if !a.Equal(b) {
		t.Fatal("decode(encode(x)) not join-equivalent to x")
	}
}
