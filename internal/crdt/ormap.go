package crdt

import "sort"

// ORMap is an observed-remove map from string keys to LWW registers:
// concurrent puts to the same key resolve by timestamp; removes tombstone
// only the observed write, so a concurrent newer put survives.
type ORMap struct {
	entries map[string]*LWWRegister
	// rems maps key -> timestamp of the latest remove.
	rems map[string]Time
}

// NewORMap returns an empty map.
func NewORMap() *ORMap {
	return &ORMap{
		entries: make(map[string]*LWWRegister),
		rems:    make(map[string]Time),
	}
}

// Put writes key=value at time t. Returns whether the write won.
func (m *ORMap) Put(key, value string, t Time) bool {
	reg, ok := m.entries[key]
	if !ok {
		reg = NewLWWRegister()
		m.entries[key] = reg
	}
	return reg.Set(value, t)
}

// Remove deletes key at time t. Returns false when the key is not live (a
// failed op).
func (m *ORMap) Remove(key string, t Time) bool {
	if !m.Contains(key) {
		return false
	}
	if cur, ok := m.rems[key]; ok && !cur.Less(t) {
		return false
	}
	m.rems[key] = t
	return true
}

// Contains reports whether key is live: its latest put is newer than its
// latest remove.
func (m *ORMap) Contains(key string) bool {
	reg, ok := m.entries[key]
	if !ok {
		return false
	}
	if _, set := reg.Get(); !set {
		return false
	}
	rem, removed := m.rems[key]
	if !removed {
		return true
	}
	return rem.Less(reg.Stamp())
}

// Get returns the live value for key.
func (m *ORMap) Get(key string) (string, bool) {
	if !m.Contains(key) {
		return "", false
	}
	v, _ := m.entries[key].Get()
	return v, true
}

// Keys returns the live keys in sorted order.
func (m *ORMap) Keys() []string {
	out := make([]string, 0, len(m.entries))
	for k := range m.entries {
		if m.Contains(k) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (m *ORMap) Len() int { return len(m.Keys()) }

// Merge joins another map into this one.
func (m *ORMap) Merge(other *ORMap) {
	for k, reg := range other.entries {
		mine, ok := m.entries[k]
		if !ok {
			m.entries[k] = reg.Clone()
			continue
		}
		mine.Merge(reg)
	}
	for k, t := range other.rems {
		if cur, ok := m.rems[k]; !ok || cur.Less(t) {
			m.rems[k] = t
		}
	}
}

// Clone returns an independent copy.
func (m *ORMap) Clone() *ORMap {
	out := NewORMap()
	for k, reg := range m.entries {
		out.entries[k] = reg.Clone()
	}
	for k, t := range m.rems {
		out.rems[k] = t
	}
	return out
}

// Equal reports state identity.
func (m *ORMap) Equal(other *ORMap) bool {
	if len(m.entries) != len(other.entries) || len(m.rems) != len(other.rems) {
		return false
	}
	for k, reg := range m.entries {
		oreg, ok := other.entries[k]
		if !ok || !reg.Equal(oreg) {
			return false
		}
	}
	for k, t := range m.rems {
		if other.rems[k] != t {
			return false
		}
	}
	return true
}
