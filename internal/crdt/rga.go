package crdt

import (
	"fmt"
	"sort"
)

// RGA is a replicated growable array (sequence CRDT). Elements carry unique
// timestamp IDs and reference the element they were inserted after;
// siblings with the same origin order by descending ID, which makes
// linearization independent of delivery order.
//
// Move is provided in two flavours:
//   - Move: the naive delete+insert the paper's misconception #3 warns
//     about — concurrent moves of the same element duplicate it.
//   - MoveWins: moves keep the element's root identity and merges keep only
//     the winning position (the highest ID), following Kleppmann's
//     "designate a particular position as winning".
type RGA struct {
	elems map[Time]*rgaElem
}

type rgaElem struct {
	ID      Time
	Origin  Time // zero Time = list head
	Value   string
	Removed bool
	// Root identifies the logical element across MoveWins relocations; for
	// plain inserts Root == ID.
	Root Time
}

// HeadID is the synthetic origin of elements inserted at the front.
var HeadID = Time{}

// NewRGA returns an empty sequence.
func NewRGA() *RGA {
	return &RGA{elems: make(map[Time]*rgaElem)}
}

// InsertAfter inserts value after the element with the given origin ID
// (HeadID for the front) and returns the new element's ID.
func (r *RGA) InsertAfter(clock *Clock, origin Time, value string) (Time, error) {
	if !origin.IsZero() {
		if _, ok := r.elems[origin]; !ok {
			return Time{}, fmt.Errorf("crdt: rga insert after unknown element %s", origin)
		}
	}
	id := clock.Now()
	r.elems[id] = &rgaElem{ID: id, Origin: origin, Value: value, Root: id}
	return id, nil
}

// InsertAt inserts value so that it becomes the idx-th visible element
// (0 = front). Returns the new element's ID.
func (r *RGA) InsertAt(clock *Clock, idx int, value string) (Time, error) {
	visible := r.visibleIDs()
	if idx < 0 || idx > len(visible) {
		return Time{}, fmt.Errorf("crdt: rga insert index %d out of range [0,%d]", idx, len(visible))
	}
	origin := HeadID
	if idx > 0 {
		origin = visible[idx-1]
	}
	return r.InsertAfter(clock, origin, value)
}

// Delete tombstones the element with the given ID. Returns false when the
// element is unknown or already removed (a failed op).
func (r *RGA) Delete(id Time) bool {
	el, ok := r.elems[id]
	if !ok || el.Removed {
		return false
	}
	el.Removed = true
	return true
}

// Move relocates the element with ID id to come after the element `after`
// using the NAIVE delete+insert strategy: the relocated copy gets a fresh
// identity, so concurrent moves of the same element each create a copy —
// the duplication hazard of misconception #3. Returns the relocated
// element's new ID.
func (r *RGA) Move(clock *Clock, id, after Time) (Time, error) {
	el, ok := r.elems[id]
	if !ok || el.Removed {
		return Time{}, fmt.Errorf("crdt: rga move of missing element %s", id)
	}
	value := el.Value
	if !r.Delete(id) {
		return Time{}, fmt.Errorf("crdt: rga move could not delete %s", id)
	}
	return r.InsertAfter(clock, after, value)
}

// MoveWins relocates an element while preserving its root identity: it
// adds a new placement element for the root and re-resolves winners, so
// exactly one placement per root stays live — the one with the highest ID,
// regardless of the order moves are applied in. This makes MoveWins safe
// for both state-based merge and op-based replay. The source element may
// already be superseded (a concurrent move won); the relocation still
// enters the placement contest. Returns the new placement's ID.
func (r *RGA) MoveWins(clock *Clock, id, after Time) (Time, error) {
	el, ok := r.elems[id]
	if !ok {
		return Time{}, fmt.Errorf("crdt: rga move of unknown element %s", id)
	}
	newID := clock.Now()
	r.elems[newID] = &rgaElem{ID: newID, Origin: after, Value: el.Value, Root: el.Root}
	r.resolveRoots()
	return newID, nil
}

// Values returns the visible values in list order.
func (r *RGA) Values() []string {
	ids := r.visibleIDs()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = r.elems[id].Value
	}
	return out
}

// Len returns the number of visible elements.
func (r *RGA) Len() int { return len(r.visibleIDs()) }

// IDAt returns the ID of the idx-th visible element.
func (r *RGA) IDAt(idx int) (Time, error) {
	ids := r.visibleIDs()
	if idx < 0 || idx >= len(ids) {
		return Time{}, fmt.Errorf("crdt: rga index %d out of range", idx)
	}
	return ids[idx], nil
}

// Merge joins another RGA into this one: union elements by ID, tombstones
// win, and MoveWins roots collapse to the winning position.
func (r *RGA) Merge(other *RGA) {
	for id, oe := range other.elems {
		if mine, ok := r.elems[id]; ok {
			mine.Removed = mine.Removed || oe.Removed
			continue
		}
		cp := *oe
		r.elems[id] = &cp
	}
	r.resolveRoots()
}

// resolveRoots keeps only the highest-ID live element per root identity,
// implementing the winning-position rule for MoveWins.
func (r *RGA) resolveRoots() {
	winners := make(map[Time]Time)
	for id, el := range r.elems {
		if el.Removed {
			continue
		}
		if best, ok := winners[el.Root]; !ok || best.Less(id) {
			winners[el.Root] = id
		}
	}
	for id, el := range r.elems {
		if el.Removed {
			continue
		}
		if winners[el.Root] != id {
			el.Removed = true
		}
	}
}

// LiveByRoot returns the currently live element carrying the given root
// identity (the element a MoveWins relocation preserved).
func (r *RGA) LiveByRoot(root Time) (Time, bool) {
	var best Time
	found := false
	for id, el := range r.elems {
		if el.Removed || el.Root != root {
			continue
		}
		if !found || best.Less(id) {
			best, found = id, true
		}
	}
	return best, found
}

// Clone returns an independent copy.
func (r *RGA) Clone() *RGA {
	out := NewRGA()
	for id, el := range r.elems {
		cp := *el
		out.elems[id] = &cp
	}
	return out
}

// Equal reports state identity (including tombstones).
func (r *RGA) Equal(other *RGA) bool {
	if len(r.elems) != len(other.elems) {
		return false
	}
	for id, el := range r.elems {
		oe, ok := other.elems[id]
		if !ok || *oe != *el {
			return false
		}
	}
	return true
}

// visibleIDs linearizes the sequence: depth-first from the head, siblings
// in descending ID order (the RGA rule), skipping tombstones.
func (r *RGA) visibleIDs() []Time {
	children := make(map[Time][]Time, len(r.elems))
	for id, el := range r.elems {
		children[el.Origin] = append(children[el.Origin], id)
	}
	for _, sibs := range children {
		sort.Slice(sibs, func(i, j int) bool { return sibs[j].Less(sibs[i]) })
	}
	out := make([]Time, 0, len(r.elems))
	var walk func(origin Time)
	walk = func(origin Time) {
		for _, id := range children[origin] {
			if !r.elems[id].Removed {
				out = append(out, id)
			}
			walk(id)
		}
	}
	walk(HeadID)
	return out
}
