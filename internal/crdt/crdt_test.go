package crdt

import (
	"testing"
	"testing/quick"
)

func TestTimeOrder(t *testing.T) {
	a := Time{Counter: 1, Replica: "A"}
	b := Time{Counter: 2, Replica: "A"}
	tie := Time{Counter: 1, Replica: "B"}
	if !a.Less(b) || b.Less(a) {
		t.Error("counter order broken")
	}
	if !a.Less(tie) || tie.Less(a) {
		t.Error("replica tie-break broken")
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Error("Equal broken")
	}
	if !(Time{}).IsZero() || a.IsZero() {
		t.Error("IsZero broken")
	}
}

func TestTimeTotalOrderProperty(t *testing.T) {
	f := func(c1, c2 uint8, r1, r2 bool) bool {
		rep := func(b bool) string {
			if b {
				return "A"
			}
			return "B"
		}
		a := Time{Counter: uint64(c1), Replica: rep(r1)}
		b := Time{Counter: uint64(c2), Replica: rep(r2)}
		// Exactly one of: a<b, b<a, a==b.
		n := 0
		if a.Less(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeStringRoundTrip(t *testing.T) {
	orig := Time{Counter: 42, Replica: "replica-2"}
	parsed, err := ParseTime(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != orig {
		t.Fatalf("round trip: %v != %v", parsed, orig)
	}
	if _, err := ParseTime("noatsign"); err == nil {
		t.Error("malformed time must fail")
	}
	if _, err := ParseTime("x@A"); err == nil {
		t.Error("non-numeric counter must fail")
	}
}

func TestClockMonotonicAndWitness(t *testing.T) {
	c := NewClock("A")
	t1 := c.Now()
	t2 := c.Now()
	if !t1.Less(t2) {
		t.Fatal("clock not monotonic")
	}
	c.Witness(Time{Counter: 100, Replica: "B"})
	t3 := c.Now()
	if t3.Counter != 101 {
		t.Fatalf("after witnessing 100, next = %d, want 101", t3.Counter)
	}
	if c.Replica() != "A" {
		t.Fatal("replica identity lost")
	}
	c.SetCounter(5)
	if c.Counter() != 5 {
		t.Fatal("SetCounter failed")
	}
}

func TestGCounterBasics(t *testing.T) {
	g := NewGCounter()
	g.Inc("A", 3)
	g.Inc("B", 2)
	g.Inc("A", 1)
	if g.Value() != 6 {
		t.Fatalf("Value = %d, want 6", g.Value())
	}
	comp := g.Components()
	if comp["A"] != 4 || comp["B"] != 2 {
		t.Fatalf("Components = %v", comp)
	}
}

func TestGCounterMergeIsMax(t *testing.T) {
	a, b := NewGCounter(), NewGCounter()
	a.Inc("A", 5)
	b.Inc("A", 3)
	b.Inc("B", 7)
	a.Merge(b)
	if a.Value() != 12 {
		t.Fatalf("merged value = %d, want 12 (max(5,3)+7)", a.Value())
	}
}

func TestPNCounter(t *testing.T) {
	p := NewPNCounter()
	p.Inc("A", 10)
	p.Dec("B", 4)
	if p.Value() != 6 {
		t.Fatalf("Value = %d, want 6", p.Value())
	}
	q := p.Clone()
	q.Dec("A", 10)
	if p.Value() != 6 {
		t.Fatal("clone is not independent")
	}
	if q.Value() != -4 {
		t.Fatalf("q = %d, want -4", q.Value())
	}
	p.Merge(q)
	if p.Value() != -4 {
		t.Fatalf("merged = %d, want -4", p.Value())
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("Equal(clone) must hold")
	}
}

// counterOps is a scripted op sequence for convergence property tests.
type counterOps []struct {
	Replica byte
	Inc     bool
	Delta   uint8
}

// TestPNCounterConvergenceProperty: applying the same multiset of ops at
// two replicas in different orders and merging both ways converges.
func TestPNCounterConvergenceProperty(t *testing.T) {
	f := func(ops counterOps) bool {
		a, b := NewPNCounter(), NewPNCounter()
		// a applies in order, b in reverse order.
		apply := func(c *PNCounter, o struct {
			Replica byte
			Inc     bool
			Delta   uint8
		}) {
			r := string(rune('A' + o.Replica%3))
			if o.Inc {
				c.Inc(r, uint64(o.Delta))
			} else {
				c.Dec(r, uint64(o.Delta))
			}
		}
		_ = apply
		// State-based CRDTs converge by merging states, not re-applying
		// ops; model each op at its own replica then cross-merge.
		replicas := map[string]*PNCounter{"A": NewPNCounter(), "B": NewPNCounter(), "C": NewPNCounter()}
		for _, o := range ops {
			r := string(rune('A' + o.Replica%3))
			if o.Inc {
				replicas[r].Inc(r, uint64(o.Delta))
			} else {
				replicas[r].Dec(r, uint64(o.Delta))
			}
		}
		// Merge into a in one order and into b in another.
		a.Merge(replicas["A"])
		a.Merge(replicas["B"])
		a.Merge(replicas["C"])
		b.Merge(replicas["C"])
		b.Merge(replicas["A"])
		b.Merge(replicas["B"])
		b.Merge(replicas["A"]) // idempotence
		return a.Equal(b) && a.Value() == b.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGSetAddFailedOp(t *testing.T) {
	g := NewGSet()
	if !g.Add("x") {
		t.Fatal("first add must succeed")
	}
	if g.Add("x") {
		t.Fatal("duplicate add must fail (failed op)")
	}
	if !g.Contains("x") || g.Len() != 1 {
		t.Fatal("membership broken")
	}
}

func TestGSetMergeUnion(t *testing.T) {
	a, b := NewGSet(), NewGSet()
	a.Add("x")
	b.Add("y")
	a.Merge(b)
	got := a.Elements()
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Elements = %v", got)
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("Equal(clone) must hold")
	}
	if a.Equal(b) {
		t.Fatal("different sets must not be equal")
	}
}

func TestTwoPhaseSetRemoveWins(t *testing.T) {
	s := NewTwoPhaseSet()
	if !s.Add("x") || !s.Remove("x") {
		t.Fatal("add/remove must succeed")
	}
	if s.Add("x") {
		t.Fatal("re-add after remove must fail (2P tombstone)")
	}
	if s.Remove("missing") {
		t.Fatal("removing a missing element must fail")
	}
	if s.Contains("x") {
		t.Fatal("removed element still live")
	}
}

func TestTwoPhaseSetMergeConvergence(t *testing.T) {
	a, b := NewTwoPhaseSet(), NewTwoPhaseSet()
	a.Add("x")
	b.Add("x")
	b.Remove("x")
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatal("2P merge must be commutative")
	}
	if ab.Contains("x") {
		t.Fatal("remove must win")
	}
}

func TestORSetAddWins(t *testing.T) {
	clockA, clockB := NewClock("A"), NewClock("B")
	a, b := NewORSet(), NewORSet()
	a.Add(clockA, "x")
	// Sync x to b, then b removes it while a concurrently re-adds.
	b.Merge(a)
	if !b.Remove("x") {
		t.Fatal("remove of present element must succeed")
	}
	a.Add(clockA, "x") // concurrent re-add with a fresh tag
	_ = clockB
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatal("OR-set merge must be commutative")
	}
	if !ab.Contains("x") {
		t.Fatal("concurrent re-add must win in an OR-set")
	}
}

func TestORSetRemoveFailedOp(t *testing.T) {
	s := NewORSet()
	if s.Remove("ghost") {
		t.Fatal("removing an absent element must fail")
	}
}

func TestORSetElementsSorted(t *testing.T) {
	c := NewClock("A")
	s := NewORSet()
	s.Add(c, "b")
	s.Add(c, "a")
	got := s.Elements()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("Elements = %v", got)
	}
}

// TestMergePropertyAllTypes checks commutativity + idempotence of merge for
// randomized OR-set histories.
func TestORSetConvergenceProperty(t *testing.T) {
	f := func(ops []struct {
		Replica byte
		Add     bool
		Elem    uint8
	}) bool {
		clocks := map[string]*Clock{"A": NewClock("A"), "B": NewClock("B")}
		states := map[string]*ORSet{"A": NewORSet(), "B": NewORSet()}
		for _, o := range ops {
			r := "A"
			if o.Replica%2 == 1 {
				r = "B"
			}
			elem := string(rune('a' + o.Elem%4))
			if o.Add {
				states[r].Add(clocks[r], elem)
			} else {
				states[r].Remove(elem)
			}
		}
		ab := states["A"].Clone()
		ab.Merge(states["B"])
		ba := states["B"].Clone()
		ba.Merge(states["A"])
		if !ab.Equal(ba) {
			return false
		}
		again := ab.Clone()
		again.Merge(states["B"])
		return again.Equal(ab)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
