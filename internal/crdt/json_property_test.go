package crdt

import (
	"math/rand"
	"testing"
)

// jsonOp is one randomized document operation with a fixed stamp, so the
// same multiset of ops can be applied in different orders.
type jsonOp struct {
	kind  int // 0 set, 1 setObject, 2 delete
	path  []string
	value string
	stamp Time
}

func randomJSONOps(rng *rand.Rand, n int) []jsonOp {
	ops := make([]jsonOp, n)
	for i := range ops {
		var path []string
		for d := 0; d <= rng.Intn(3); d++ {
			path = append(path, string(rune('a'+rng.Intn(3))))
		}
		ops[i] = jsonOp{
			kind:  rng.Intn(3),
			path:  path,
			value: string(rune('x' + rng.Intn(3))),
			stamp: Time{Counter: uint64(i + 1), Replica: string(rune('A' + rng.Intn(3)))},
		}
	}
	return ops
}

func applyJSONOp(d *JSONDoc, op jsonOp) {
	switch op.kind {
	case 0:
		_ = d.Set(op.path, op.value, op.stamp)
	case 1:
		_ = d.SetObject(op.path, op.stamp)
	default:
		_ = d.Delete(op.path, op.stamp)
	}
}

// TestJSONDocOpOrderIndependence is the property the op-based Yorkie
// subject needs: applying the same set of stamped operations in ANY order
// yields the same document state. (LWW-with-subtree-replacement designs
// fail this; the stamp-component design must not.)
func TestJSONDocOpOrderIndependence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := randomJSONOps(rng, 12)

		a := NewJSONDoc()
		for _, op := range ops {
			applyJSONOp(a, op)
		}

		shuffled := make([]jsonOp, len(ops))
		copy(shuffled, ops)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		b := NewJSONDoc()
		for _, op := range shuffled {
			applyJSONOp(b, op)
		}

		if !a.Equal(b) {
			t.Fatalf("seed %d: op order changed the state:\n%s\nvs\n%s",
				seed, a.Snapshot(), b.Snapshot())
		}
	}
}

// TestJSONDocOpsCommuteWithMerge: applying half the ops at each of two
// replicas and merging both ways equals applying everything at one
// replica — op-based and state-based propagation agree.
func TestJSONDocOpsCommuteWithMerge(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		ops := randomJSONOps(rng, 10)

		all := NewJSONDoc()
		for _, op := range ops {
			applyJSONOp(all, op)
		}

		left, right := NewJSONDoc(), NewJSONDoc()
		for i, op := range ops {
			if i%2 == 0 {
				applyJSONOp(left, op)
			} else {
				applyJSONOp(right, op)
			}
		}
		left.Merge(right)
		right.Merge(left)

		if !left.Equal(right) {
			t.Fatalf("seed %d: merge not symmetric", seed)
		}
		if !left.Equal(all) {
			t.Fatalf("seed %d: merged state differs from sequential application:\n%s\nvs\n%s",
				seed, left.Snapshot(), all.Snapshot())
		}
	}
}

// TestJSONDocDeleteResurrection: a delete hides an entry, and a newer
// write beneath it resurrects the path, in either application order.
func TestJSONDocDeleteResurrection(t *testing.T) {
	del := jsonOp{kind: 2, path: []string{"a"}, stamp: ts(5, "B")}
	child := jsonOp{kind: 0, path: []string{"a", "c"}, value: "v", stamp: ts(7, "A")}

	x := NewJSONDoc()
	applyJSONOp(x, del)
	applyJSONOp(x, child)
	y := NewJSONDoc()
	applyJSONOp(y, child)
	applyJSONOp(y, del)

	if !x.Equal(y) {
		t.Fatalf("delete/write order changed state: %s vs %s", x.Snapshot(), y.Snapshot())
	}
	if v, ok := x.Get([]string{"a", "c"}); !ok || v != "v" {
		t.Fatalf("newer child write must resurrect the path, got %q %v (%s)", v, ok, x.Snapshot())
	}
	// An older child write stays hidden under the delete.
	oldChild := jsonOp{kind: 0, path: []string{"b", "c"}, value: "v", stamp: ts(3, "A")}
	oldDel := jsonOp{kind: 2, path: []string{"b"}, stamp: ts(9, "B")}
	z := NewJSONDoc()
	applyJSONOp(z, oldChild)
	applyJSONOp(z, oldDel)
	if _, ok := z.Get([]string{"b", "c"}); ok {
		t.Fatal("entry under a newer delete must be hidden")
	}
	if keys := z.Keys([]string{"b"}); keys != nil {
		t.Fatalf("deleted object must not render keys, got %v", keys)
	}
}
