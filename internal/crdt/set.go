package crdt

import "sort"

// GSet is a grow-only set of strings; join is set union.
type GSet struct {
	members map[string]struct{}
}

// NewGSet returns an empty grow-only set.
func NewGSet() *GSet {
	return &GSet{members: make(map[string]struct{})}
}

// Add inserts an element. Returns false if it was already present (the
// "failed op" of the paper's Figure 6).
func (g *GSet) Add(elem string) bool {
	if _, ok := g.members[elem]; ok {
		return false
	}
	g.members[elem] = struct{}{}
	return true
}

// Contains reports membership.
func (g *GSet) Contains(elem string) bool {
	_, ok := g.members[elem]
	return ok
}

// Len returns the number of elements.
func (g *GSet) Len() int { return len(g.members) }

// Elements returns the members in sorted order.
func (g *GSet) Elements() []string {
	out := make([]string, 0, len(g.members))
	for e := range g.members {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Merge joins another set into this one.
func (g *GSet) Merge(other *GSet) {
	for e := range other.members {
		g.members[e] = struct{}{}
	}
}

// Clone returns an independent copy.
func (g *GSet) Clone() *GSet {
	out := NewGSet()
	for e := range g.members {
		out.members[e] = struct{}{}
	}
	return out
}

// Equal reports state identity.
func (g *GSet) Equal(other *GSet) bool {
	if len(g.members) != len(other.members) {
		return false
	}
	for e := range g.members {
		if _, ok := other.members[e]; !ok {
			return false
		}
	}
	return true
}

// TwoPhaseSet supports removal with remove-wins semantics: a removed
// element can never be re-added (its tombstone persists).
type TwoPhaseSet struct {
	added   *GSet
	removed *GSet
}

// NewTwoPhaseSet returns an empty 2P-set.
func NewTwoPhaseSet() *TwoPhaseSet {
	return &TwoPhaseSet{added: NewGSet(), removed: NewGSet()}
}

// Add inserts an element; fails (returns false) if the element was already
// added or is tombstoned.
func (s *TwoPhaseSet) Add(elem string) bool {
	if s.removed.Contains(elem) {
		return false
	}
	return s.added.Add(elem)
}

// Remove tombstones an element; fails if it is not currently present.
func (s *TwoPhaseSet) Remove(elem string) bool {
	if !s.Contains(elem) {
		return false
	}
	return s.removed.Add(elem)
}

// Contains reports live membership.
func (s *TwoPhaseSet) Contains(elem string) bool {
	return s.added.Contains(elem) && !s.removed.Contains(elem)
}

// Elements returns the live members in sorted order.
func (s *TwoPhaseSet) Elements() []string {
	var out []string
	for _, e := range s.added.Elements() {
		if !s.removed.Contains(e) {
			out = append(out, e)
		}
	}
	return out
}

// Merge joins another 2P-set into this one.
func (s *TwoPhaseSet) Merge(other *TwoPhaseSet) {
	s.added.Merge(other.added)
	s.removed.Merge(other.removed)
}

// Clone returns an independent copy.
func (s *TwoPhaseSet) Clone() *TwoPhaseSet {
	return &TwoPhaseSet{added: s.added.Clone(), removed: s.removed.Clone()}
}

// Equal reports state identity.
func (s *TwoPhaseSet) Equal(other *TwoPhaseSet) bool {
	return s.added.Equal(other.added) && s.removed.Equal(other.removed)
}

// ORSet is an observed-remove set: adds create unique tags; removes delete
// only the tags observed at the removing replica, so a concurrent re-add
// survives (add-wins).
type ORSet struct {
	// live maps element -> set of add tags currently alive.
	live map[string]map[Time]struct{}
	// tombs maps removed tags so that merges do not resurrect them.
	tombs map[Time]struct{}
}

// NewORSet returns an empty OR-set.
func NewORSet() *ORSet {
	return &ORSet{
		live:  make(map[string]map[Time]struct{}),
		tombs: make(map[Time]struct{}),
	}
}

// Add inserts elem with a fresh tag from the clock.
func (s *ORSet) Add(clock *Clock, elem string) Time {
	tag := clock.Now()
	if s.live[elem] == nil {
		s.live[elem] = make(map[Time]struct{})
	}
	s.live[elem][tag] = struct{}{}
	return tag
}

// Remove deletes every currently observed tag of elem. Returns false when
// the element is absent (a failed op).
func (s *ORSet) Remove(elem string) bool {
	tags, ok := s.live[elem]
	if !ok || len(tags) == 0 {
		return false
	}
	for tag := range tags {
		s.tombs[tag] = struct{}{}
	}
	delete(s.live, elem)
	return true
}

// Contains reports live membership.
func (s *ORSet) Contains(elem string) bool {
	return len(s.live[elem]) > 0
}

// Elements returns the live members in sorted order.
func (s *ORSet) Elements() []string {
	out := make([]string, 0, len(s.live))
	for e, tags := range s.live {
		if len(tags) > 0 {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Merge joins another OR-set into this one: union of tags minus union of
// tombstones.
func (s *ORSet) Merge(other *ORSet) {
	for tag := range other.tombs {
		s.tombs[tag] = struct{}{}
	}
	for elem, tags := range other.live {
		for tag := range tags {
			if _, dead := s.tombs[tag]; dead {
				continue
			}
			if s.live[elem] == nil {
				s.live[elem] = make(map[Time]struct{})
			}
			s.live[elem][tag] = struct{}{}
		}
	}
	// Drop tags that the merged tombstones kill locally.
	for elem, tags := range s.live {
		for tag := range tags {
			if _, dead := s.tombs[tag]; dead {
				delete(tags, tag)
			}
		}
		if len(tags) == 0 {
			delete(s.live, elem)
		}
	}
}

// Clone returns an independent copy.
func (s *ORSet) Clone() *ORSet {
	out := NewORSet()
	for elem, tags := range s.live {
		cp := make(map[Time]struct{}, len(tags))
		for tag := range tags {
			cp[tag] = struct{}{}
		}
		out.live[elem] = cp
	}
	for tag := range s.tombs {
		out.tombs[tag] = struct{}{}
	}
	return out
}

// Equal reports state identity (live tags and tombstones).
func (s *ORSet) Equal(other *ORSet) bool {
	if len(s.tombs) != len(other.tombs) || len(s.live) != len(other.live) {
		return false
	}
	for tag := range s.tombs {
		if _, ok := other.tombs[tag]; !ok {
			return false
		}
	}
	for elem, tags := range s.live {
		otags, ok := other.live[elem]
		if !ok || len(otags) != len(tags) {
			return false
		}
		for tag := range tags {
			if _, ok := otags[tag]; !ok {
				return false
			}
		}
	}
	return true
}
