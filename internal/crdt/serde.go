package crdt

import (
	"encoding/json"
	"fmt"
)

// This file gives every CRDT a stable JSON form so that replicas can ship
// full states over the wire and the checkpoint store can snapshot them.
// The encodings expose exactly the join-relevant state (including
// tombstones), so decode(encode(x)) is join-equivalent to x.

type gCounterJSON struct {
	Counts map[string]uint64 `json:"counts"`
}

// MarshalJSON implements json.Marshaler.
func (g *GCounter) MarshalJSON() ([]byte, error) {
	return json.Marshal(gCounterJSON{Counts: g.Components()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GCounter) UnmarshalJSON(data []byte) error {
	var w gCounterJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: gcounter: %w", err)
	}
	g.counts = make(map[string]uint64, len(w.Counts))
	for r, n := range w.Counts {
		g.counts[r] = n
	}
	return nil
}

type pnCounterJSON struct {
	Pos *GCounter `json:"pos"`
	Neg *GCounter `json:"neg"`
}

// MarshalJSON implements json.Marshaler.
func (p *PNCounter) MarshalJSON() ([]byte, error) {
	return json.Marshal(pnCounterJSON{Pos: p.pos, Neg: p.neg})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *PNCounter) UnmarshalJSON(data []byte) error {
	w := pnCounterJSON{Pos: NewGCounter(), Neg: NewGCounter()}
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: pncounter: %w", err)
	}
	p.pos, p.neg = w.Pos, w.Neg
	return nil
}

type gSetJSON struct {
	Members []string `json:"members"`
}

// MarshalJSON implements json.Marshaler.
func (g *GSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(gSetJSON{Members: g.Elements()})
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *GSet) UnmarshalJSON(data []byte) error {
	var w gSetJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: gset: %w", err)
	}
	g.members = make(map[string]struct{}, len(w.Members))
	for _, m := range w.Members {
		g.members[m] = struct{}{}
	}
	return nil
}

type twoPhaseSetJSON struct {
	Added   *GSet `json:"added"`
	Removed *GSet `json:"removed"`
}

// MarshalJSON implements json.Marshaler.
func (s *TwoPhaseSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(twoPhaseSetJSON{Added: s.added, Removed: s.removed})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *TwoPhaseSet) UnmarshalJSON(data []byte) error {
	w := twoPhaseSetJSON{Added: NewGSet(), Removed: NewGSet()}
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: 2pset: %w", err)
	}
	s.added, s.removed = w.Added, w.Removed
	return nil
}

type orSetJSON struct {
	// Live maps element -> live add tags.
	Live map[string][]Time `json:"live"`
	// Tombs lists removed tags.
	Tombs []Time `json:"tombs"`
}

// MarshalJSON implements json.Marshaler.
func (s *ORSet) MarshalJSON() ([]byte, error) {
	w := orSetJSON{Live: make(map[string][]Time, len(s.live))}
	for elem, tags := range s.live {
		for tag := range tags {
			w.Live[elem] = append(w.Live[elem], tag)
		}
		sortTimes(w.Live[elem])
	}
	for tag := range s.tombs {
		w.Tombs = append(w.Tombs, tag)
	}
	sortTimes(w.Tombs)
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *ORSet) UnmarshalJSON(data []byte) error {
	var w orSetJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: orset: %w", err)
	}
	s.live = make(map[string]map[Time]struct{}, len(w.Live))
	s.tombs = make(map[Time]struct{}, len(w.Tombs))
	for elem, tags := range w.Live {
		set := make(map[Time]struct{}, len(tags))
		for _, tag := range tags {
			set[tag] = struct{}{}
		}
		s.live[elem] = set
	}
	for _, tag := range w.Tombs {
		s.tombs[tag] = struct{}{}
	}
	return nil
}

type lwwSetJSON struct {
	Bias Bias            `json:"bias"`
	Adds map[string]Time `json:"adds"`
	Rems map[string]Time `json:"rems"`
}

// MarshalJSON implements json.Marshaler.
func (s *LWWSet) MarshalJSON() ([]byte, error) {
	adds, rems := s.Dump()
	return json.Marshal(lwwSetJSON{Bias: s.bias, Adds: adds, Rems: rems})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *LWWSet) UnmarshalJSON(data []byte) error {
	var w lwwSetJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: lwwset: %w", err)
	}
	s.bias = w.Bias
	s.adds = make(map[string]Time, len(w.Adds))
	s.rems = make(map[string]Time, len(w.Rems))
	s.Load(w.Adds, w.Rems)
	return nil
}

type lwwRegisterJSON struct {
	Value string `json:"value"`
	Stamp Time   `json:"stamp"`
	Set   bool   `json:"set"`
}

// MarshalJSON implements json.Marshaler.
func (r *LWWRegister) MarshalJSON() ([]byte, error) {
	return json.Marshal(lwwRegisterJSON{Value: r.value, Stamp: r.stamp, Set: r.set})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *LWWRegister) UnmarshalJSON(data []byte) error {
	var w lwwRegisterJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: lwwregister: %w", err)
	}
	r.value, r.stamp, r.set = w.Value, w.Stamp, w.Set
	return nil
}

type orMapJSON struct {
	Entries map[string]*LWWRegister `json:"entries"`
	Rems    map[string]Time         `json:"rems"`
}

// MarshalJSON implements json.Marshaler.
func (m *ORMap) MarshalJSON() ([]byte, error) {
	return json.Marshal(orMapJSON{Entries: m.entries, Rems: m.rems})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *ORMap) UnmarshalJSON(data []byte) error {
	var w orMapJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: ormap: %w", err)
	}
	m.entries = w.Entries
	if m.entries == nil {
		m.entries = make(map[string]*LWWRegister)
	}
	m.rems = w.Rems
	if m.rems == nil {
		m.rems = make(map[string]Time)
	}
	return nil
}

type rgaElemJSON struct {
	ID      Time   `json:"id"`
	Origin  Time   `json:"origin"`
	Value   string `json:"value"`
	Removed bool   `json:"removed"`
	Root    Time   `json:"root"`
}

type rgaJSON struct {
	Elems []rgaElemJSON `json:"elems"`
}

// MarshalJSON implements json.Marshaler.
func (r *RGA) MarshalJSON() ([]byte, error) {
	w := rgaJSON{Elems: make([]rgaElemJSON, 0, len(r.elems))}
	for _, el := range r.elems {
		w.Elems = append(w.Elems, rgaElemJSON(*el))
	}
	sortRGAElems(w.Elems)
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *RGA) UnmarshalJSON(data []byte) error {
	var w rgaJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("crdt: rga: %w", err)
	}
	r.elems = make(map[Time]*rgaElem, len(w.Elems))
	for _, el := range w.Elems {
		cp := rgaElem(el)
		r.elems[cp.ID] = &cp
	}
	return nil
}

func sortTimes(ts []Time) {
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if ts[j].Less(ts[i]) {
				ts[i], ts[j] = ts[j], ts[i]
			}
		}
	}
}

func sortRGAElems(els []rgaElemJSON) {
	for i := range els {
		for j := i + 1; j < len(els); j++ {
			if els[j].ID.Less(els[i].ID) {
				els[i], els[j] = els[j], els[i]
			}
		}
	}
}
