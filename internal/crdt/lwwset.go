package crdt

import "sort"

// Bias selects the winner when an add and a remove of the same element
// carry exactly equal timestamps.
type Bias int

// Tie-break biases.
const (
	// BiasAdd keeps the element on a timestamp tie (the documented Roshi
	// resolution after issue #11).
	BiasAdd Bias = iota + 1
	// BiasRemove drops the element on a tie.
	BiasRemove
)

// LWWSet is a last-write-wins element set (Roshi's CRDT): every element
// carries the timestamps of its latest add and latest remove; the element
// is present iff the add is newer (subject to Bias on exact ties).
type LWWSet struct {
	bias Bias
	adds map[string]Time
	rems map[string]Time
}

// NewLWWSet returns an empty LWW set with the given tie bias.
func NewLWWSet(bias Bias) *LWWSet {
	return &LWWSet{
		bias: bias,
		adds: make(map[string]Time),
		rems: make(map[string]Time),
	}
}

// Add records an add of elem at time t. Stale adds (older than the current
// add time) are ignored, which keeps the op idempotent and commutative.
// Returns whether the add took effect.
func (s *LWWSet) Add(elem string, t Time) bool {
	if cur, ok := s.adds[elem]; ok && !cur.Less(t) {
		return false
	}
	s.adds[elem] = t
	return true
}

// Remove records a remove of elem at time t. Returns whether it took
// effect.
func (s *LWWSet) Remove(elem string, t Time) bool {
	if cur, ok := s.rems[elem]; ok && !cur.Less(t) {
		return false
	}
	s.rems[elem] = t
	return true
}

// Contains reports live membership under LWW resolution.
func (s *LWWSet) Contains(elem string) bool {
	add, hasAdd := s.adds[elem]
	if !hasAdd {
		return false
	}
	rem, hasRem := s.rems[elem]
	if !hasRem {
		return true
	}
	if add.Equal(rem) {
		return s.bias == BiasAdd
	}
	return rem.Less(add)
}

// Deleted reports whether elem is currently tombstoned (known but not
// live). This is the "deleted" response field of Roshi issue #18.
func (s *LWWSet) Deleted(elem string) bool {
	_, known := s.adds[elem]
	if !known {
		_, known = s.rems[elem]
	}
	return known && !s.Contains(elem)
}

// AddTime returns the latest add timestamp for elem.
func (s *LWWSet) AddTime(elem string) (Time, bool) {
	t, ok := s.adds[elem]
	return t, ok
}

// RemoveTime returns the latest remove timestamp for elem.
func (s *LWWSet) RemoveTime(elem string) (Time, bool) {
	t, ok := s.rems[elem]
	return t, ok
}

// Elements returns the live members in sorted order.
func (s *LWWSet) Elements() []string {
	out := make([]string, 0, len(s.adds))
	for e := range s.adds {
		if s.Contains(e) {
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// Dump exports the full element-timestamp tables (live and tombstoned),
// for serialization. The returned maps are copies.
func (s *LWWSet) Dump() (adds, rems map[string]Time) {
	adds = make(map[string]Time, len(s.adds))
	rems = make(map[string]Time, len(s.rems))
	for e, t := range s.adds {
		adds[e] = t
	}
	for e, t := range s.rems {
		rems[e] = t
	}
	return adds, rems
}

// Load folds exported tables back in (equivalent to merging a set holding
// exactly those records).
func (s *LWWSet) Load(adds, rems map[string]Time) {
	for e, t := range adds {
		s.Add(e, t)
	}
	for e, t := range rems {
		s.Remove(e, t)
	}
}

// Merge joins another LWW set into this one (per-element timestamp max).
func (s *LWWSet) Merge(other *LWWSet) {
	for e, t := range other.adds {
		s.Add(e, t)
	}
	for e, t := range other.rems {
		s.Remove(e, t)
	}
}

// Clone returns an independent copy.
func (s *LWWSet) Clone() *LWWSet {
	out := NewLWWSet(s.bias)
	for e, t := range s.adds {
		out.adds[e] = t
	}
	for e, t := range s.rems {
		out.rems[e] = t
	}
	return out
}

// Equal reports state identity.
func (s *LWWSet) Equal(other *LWWSet) bool {
	if s.bias != other.bias || len(s.adds) != len(other.adds) || len(s.rems) != len(other.rems) {
		return false
	}
	for e, t := range s.adds {
		if other.adds[e] != t {
			return false
		}
	}
	for e, t := range s.rems {
		if other.rems[e] != t {
			return false
		}
	}
	return true
}

// LWWRegister holds a single value with last-write-wins assignment.
type LWWRegister struct {
	value string
	stamp Time
	set   bool
}

// NewLWWRegister returns an empty register.
func NewLWWRegister() *LWWRegister { return &LWWRegister{} }

// Set assigns value at time t; stale writes are ignored. Returns whether
// the write won.
func (r *LWWRegister) Set(value string, t Time) bool {
	if r.set && !r.stamp.Less(t) {
		return false
	}
	r.value, r.stamp, r.set = value, t, true
	return true
}

// Get returns the current value and whether the register was ever set.
func (r *LWWRegister) Get() (string, bool) { return r.value, r.set }

// Stamp returns the timestamp of the winning write.
func (r *LWWRegister) Stamp() Time { return r.stamp }

// Merge joins another register into this one.
func (r *LWWRegister) Merge(other *LWWRegister) {
	if other.set {
		r.Set(other.value, other.stamp)
	}
}

// Clone returns an independent copy.
func (r *LWWRegister) Clone() *LWWRegister {
	cp := *r
	return &cp
}

// Equal reports state identity.
func (r *LWWRegister) Equal(other *LWWRegister) bool {
	return r.set == other.set && r.value == other.value && r.stamp == other.stamp
}

// MVRegister is a multi-value register: concurrent writes are all kept and
// surfaced to the reader for application-level resolution.
type MVRegister struct {
	// versions maps value -> the vector clock of its write.
	versions map[string]map[string]uint64
}

// NewMVRegister returns an empty multi-value register.
func NewMVRegister() *MVRegister {
	return &MVRegister{versions: make(map[string]map[string]uint64)}
}

// Set writes value with the given vector clock, discarding every version
// the clock dominates.
func (r *MVRegister) Set(value string, clock map[string]uint64) {
	for v, vc := range r.versions {
		if dominates(clock, vc) {
			delete(r.versions, v)
		}
	}
	r.versions[value] = cloneVC(clock)
}

// Values returns the surviving concurrent values in sorted order.
func (r *MVRegister) Values() []string {
	out := make([]string, 0, len(r.versions))
	for v := range r.versions {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Merge joins another register: keep every version not dominated by some
// version on the other side.
func (r *MVRegister) Merge(other *MVRegister) {
	for v, vc := range other.versions {
		dominated := false
		for _, mine := range r.versions {
			if dominates(mine, vc) && !vcEqual(mine, vc) {
				dominated = true
				break
			}
		}
		if !dominated {
			r.versions[v] = cloneVC(vc)
		}
	}
	for v, vc := range r.versions {
		for _, theirs := range other.versions {
			if dominates(theirs, vc) && !vcEqual(theirs, vc) {
				delete(r.versions, v)
				break
			}
		}
		_ = vc
	}
}

// Clone returns an independent copy.
func (r *MVRegister) Clone() *MVRegister {
	out := NewMVRegister()
	for v, vc := range r.versions {
		out.versions[v] = cloneVC(vc)
	}
	return out
}

// Equal reports state identity.
func (r *MVRegister) Equal(other *MVRegister) bool {
	if len(r.versions) != len(other.versions) {
		return false
	}
	for v, vc := range r.versions {
		ovc, ok := other.versions[v]
		if !ok || !vcEqual(vc, ovc) {
			return false
		}
	}
	return true
}

func dominates(a, b map[string]uint64) bool {
	for k, n := range b {
		if a[k] < n {
			return false
		}
	}
	return true
}

func vcEqual(a, b map[string]uint64) bool {
	return dominates(a, b) && dominates(b, a)
}

func cloneVC(vc map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(vc))
	for k, n := range vc {
		out[k] = n
	}
	return out
}
