package crdt

import (
	"fmt"
	"sort"
	"strings"
)

// JSONDoc is a convergent JSON-like document: nested string-keyed objects
// with primitive string leaves, modelling the document CRDT of the Yorkie
// subject.
//
// Convergence design: each entry holds INDEPENDENT last-writer-wins
// components — a primitive register (primStamp/prim), an object presence
// stamp (objStamp), a delete stamp (delStamp), and a child map that is
// never discarded. The rendered view is derived from the stamps:
//
//   - an entry is visible iff max(primStamp, objStamp) is newer than
//     delStamp;
//   - a visible entry renders as an object iff objStamp ≥ primStamp
//     (objects win exact ties), else as its primitive value;
//   - writes beneath a path raise every ancestor's objStamp to the write's
//     stamp, so the parent's stamp is the max over its subtree regardless
//     of arrival order.
//
// Because every component updates by max/LWW and children are retained
// under temporarily-hidden entries, applying any set of operations in any
// order — op-based or via Merge — produces the same state: the strong
// eventual consistency property the subject property tests pin.
type JSONDoc struct {
	root *jsonObject
}

type jsonObject struct {
	fields map[string]*jsonEntry
}

type jsonEntry struct {
	prim      string
	primStamp Time
	objStamp  Time
	delStamp  Time
	children  *jsonObject
}

func newJSONObject() *jsonObject {
	return &jsonObject{fields: make(map[string]*jsonEntry)}
}

func (e *jsonEntry) ensureChildren() *jsonObject {
	if e.children == nil {
		e.children = newJSONObject()
	}
	return e.children
}

// visible reports whether the entry renders at all.
func (e *jsonEntry) visible() bool {
	live := e.primStamp
	if live.Less(e.objStamp) {
		live = e.objStamp
	}
	return e.delStamp.Less(live)
}

// isObject reports whether a visible entry renders as an object.
func (e *jsonEntry) isObject() bool {
	return !e.objStamp.IsZero() && !e.objStamp.Less(e.primStamp)
}

// NewJSONDoc returns an empty document.
func NewJSONDoc() *JSONDoc {
	return &JSONDoc{root: newJSONObject()}
}

// Set writes a primitive value at the path (each element one object key),
// raising ancestor object stamps as it descends.
func (d *JSONDoc) Set(path []string, value string, t Time) error {
	if len(path) == 0 {
		return fmt.Errorf("crdt: json set with empty path")
	}
	e := d.descend(path, t)
	if e.primStamp.Less(t) {
		e.prim, e.primStamp = value, t
	}
	return nil
}

// SetObject ensures an object renders at path.
func (d *JSONDoc) SetObject(path []string, t Time) error {
	if len(path) == 0 {
		return fmt.Errorf("crdt: json set-object with empty path")
	}
	e := d.descend(path, t)
	if e.objStamp.Less(t) {
		e.objStamp = t
	}
	return nil
}

// Delete tombstones the entry at path when t is newer than its content.
func (d *JSONDoc) Delete(path []string, t Time) error {
	if len(path) == 0 {
		return fmt.Errorf("crdt: json delete with empty path")
	}
	e := d.descend(path, Time{})
	if e.delStamp.Less(t) {
		e.delStamp = t
	}
	return nil
}

// descend walks/creates the entry at path, raising every traversed
// ancestor's objStamp to t (zero t leaves stamps untouched).
func (d *JSONDoc) descend(path []string, t Time) *jsonEntry {
	obj := d.root
	var e *jsonEntry
	for i, key := range path {
		var ok bool
		e, ok = obj.fields[key]
		if !ok {
			e = &jsonEntry{}
			obj.fields[key] = e
		}
		if i < len(path)-1 {
			// An intermediate node is implicitly an object as of time t.
			if e.objStamp.Less(t) {
				e.objStamp = t
			}
			obj = e.ensureChildren()
		}
	}
	return e
}

// lookup returns the entry at path as the VIEW sees it: every ancestor
// must be visible and render as an object, matching Snapshot's cascading
// of hidden subtrees. Returns nil when the path does not render.
func (d *JSONDoc) lookup(path []string) *jsonEntry {
	obj := d.root
	var e *jsonEntry
	for i, key := range path {
		var ok bool
		e, ok = obj.fields[key]
		if !ok {
			return nil
		}
		if i < len(path)-1 {
			if !e.visible() || !e.isObject() || e.children == nil {
				return nil
			}
			obj = e.children
		}
	}
	return e
}

// Get returns the primitive value at path when the entry is visible and
// renders as a primitive.
func (d *JSONDoc) Get(path []string) (string, bool) {
	if len(path) == 0 {
		return "", false
	}
	e := d.lookup(path)
	if e == nil || !e.visible() || e.isObject() {
		return "", false
	}
	return e.prim, true
}

// Keys returns the sorted visible keys of the object at path (nil path =
// the root object). It returns nil when no visible object renders there.
func (d *JSONDoc) Keys(path []string) []string {
	obj := d.root
	if len(path) > 0 {
		e := d.lookup(path)
		if e == nil || !e.visible() || !e.isObject() {
			return nil
		}
		if e.children == nil {
			return []string{}
		}
		obj = e.children
	}
	out := make([]string, 0, len(obj.fields))
	for k, e := range obj.fields {
		if e.visible() {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Merge joins another document into this one: every component is a max /
// LWW register and children merge recursively.
func (d *JSONDoc) Merge(other *JSONDoc) {
	mergeObjects(d.root, other.root)
}

func mergeObjects(dst, src *jsonObject) {
	for key, se := range src.fields {
		de, ok := dst.fields[key]
		if !ok {
			de = &jsonEntry{}
			dst.fields[key] = de
		}
		if de.primStamp.Less(se.primStamp) {
			de.prim, de.primStamp = se.prim, se.primStamp
		}
		if de.objStamp.Less(se.objStamp) {
			de.objStamp = se.objStamp
		}
		if de.delStamp.Less(se.delStamp) {
			de.delStamp = se.delStamp
		}
		if se.children != nil {
			mergeObjects(de.ensureChildren(), se.children)
		}
	}
}

// Clone returns an independent copy.
func (d *JSONDoc) Clone() *JSONDoc {
	out := NewJSONDoc()
	mergeObjects(out.root, d.root)
	return out
}

// Equal reports full-state identity (stamps and hidden entries included).
func (d *JSONDoc) Equal(other *JSONDoc) bool {
	return objectsEqual(d.root, other.root)
}

func objectsEqual(a, b *jsonObject) bool {
	if len(a.fields) != len(b.fields) {
		return false
	}
	for k, ae := range a.fields {
		be, ok := b.fields[k]
		if !ok {
			return false
		}
		if ae.prim != be.prim || ae.primStamp != be.primStamp ||
			ae.objStamp != be.objStamp || ae.delStamp != be.delStamp {
			return false
		}
		ac, bc := ae.children, be.children
		switch {
		case ac == nil && bc == nil:
		case ac == nil:
			if len(bc.fields) != 0 {
				return false
			}
		case bc == nil:
			if len(ac.fields) != 0 {
				return false
			}
		default:
			if !objectsEqual(ac, bc) {
				return false
			}
		}
	}
	return true
}

// Snapshot renders a canonical single-line representation of the visible
// document values (stamps omitted), useful for assertions and divergence
// reports.
func (d *JSONDoc) Snapshot() string {
	var b strings.Builder
	renderObject(&b, d.root)
	return b.String()
}

func renderObject(b *strings.Builder, obj *jsonObject) {
	b.WriteByte('{')
	keys := make([]string, 0, len(obj.fields))
	for k, e := range obj.fields {
		if e.visible() {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%q:", k)
		e := obj.fields[k]
		if e.isObject() {
			if e.children != nil {
				renderObject(b, e.children)
			} else {
				b.WriteString("{}")
			}
			continue
		}
		fmt.Fprintf(b, "%q", e.prim)
	}
	b.WriteByte('}')
}
