// Package replica provides the replica runtime ER-π replays interleavings
// against: a State interface that every evaluation subject implements, a
// Node binding a state to a replica identity, and a Cluster that manages
// checkpointing and resetting replica states between interleavings
// (paper §4.3: "ER-π checkpoints the replicas' states and resets them prior
// to executing each interleaving").
package replica

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/er-pi/erpi/internal/event"
)

// ErrFailedOp marks an RDL operation rejected by the data structure's
// constraints (e.g. adding an element a set already holds). Failed ops are
// expected outcomes during exhaustive replay — the runner records them
// instead of aborting, and they feed the Failed-Ops pruning algorithm.
var ErrFailedOp = errors.New("replica: operation failed by data-type constraint")

// Op is one RDL operation invoked by application logic, extracted from a
// recorded event during replay.
type Op struct {
	Name string
	Args []string
}

// String renders "name(arg1,arg2)".
func (o Op) String() string {
	if len(o.Args) == 0 {
		return o.Name
	}
	return o.Name + "(" + strings.Join(o.Args, ",") + ")"
}

// State is the contract between ER-π and an application's replicated
// state. Implementations wrap the subject's RDL integration.
type State interface {
	// Apply executes a local RDL operation (an Update or Observe event) and
	// returns its observable result ("" when none).
	Apply(op Op) (string, error)
	// SyncPayload produces the synchronization request this replica would
	// send right now (full state for state-based CRDTs, pending ops for
	// op-based ones).
	SyncPayload() ([]byte, error)
	// ApplySync executes a received synchronization request.
	ApplySync(payload []byte) error
	// Snapshot serializes the state for checkpointing. The snapshot must
	// capture ALL behavior-relevant state — logical clocks, arrival
	// counters, tombstones — not just the observable value: the engine
	// relies on Restore(Snapshot()) resuming execution mid-interleaving
	// with byte-identical behavior (prefix-cache suffix replay, §4.9).
	Snapshot() ([]byte, error)
	// Restore resets the state from a snapshot. After Restore the state
	// must behave exactly as it did when the snapshot was taken.
	Restore(snapshot []byte) error
	// Fingerprint returns a canonical digest of the observable state, used
	// by divergence assertions. Equal states must produce equal
	// fingerprints.
	Fingerprint() string
}

// Versioned is an optional State extension: a monotone counter bumped on
// every mutation (apply, sync, restore). The cluster uses it to prove a
// replica's state unchanged since the last serialization and reuse the
// cached bytes, hash, and fingerprint (DESIGN.md §4.15). An implementation
// may over-count (bump on a no-op) — that only costs a cache miss — but
// must never under-count: a mutation without a bump would let a stale
// snapshot stand in for live state.
type Versioned interface {
	StateVersion() uint64
}

// StateBuf is one replica's serialized state with its SHA-256 digest.
// Bufs are immutable once built and shared freely: consecutive cluster
// snapshots reuse the same *StateBuf for replicas that did not change
// between them, which is what makes the prefix cache's delta accounting
// (charging each distinct buffer once) work.
type StateBuf struct {
	Data []byte
	Hash [sha256.Size]byte
}

func newStateBuf(data []byte) *StateBuf {
	return &StateBuf{Data: data, Hash: sha256.Sum256(data)}
}

// Node binds a State to a replica identity.
type Node struct {
	ID    event.ReplicaID
	State State

	// Version-keyed caches (valid only while the state implements
	// Versioned and its counter still equals the recorded one).
	bufVer uint64
	buf    *StateBuf
	fpVer  uint64
	fp     string
	fpOK   bool
}

// Cluster is the set of replicas one scenario replays against.
type Cluster struct {
	nodes       map[event.ReplicaID]*Node
	checkpoints map[event.ReplicaID]*StateBuf
	ids         []event.ReplicaID
	// full disables incremental reuse (Config escape hatch): every
	// snapshot and fingerprint is recomputed from scratch. The hash
	// DEFINITIONS are identical either way — full mode only trades speed
	// for bisectability, never changes a digest.
	full bool
}

// NewCluster builds a cluster from per-replica states.
func NewCluster(states map[event.ReplicaID]State) *Cluster {
	c := &Cluster{
		nodes:       make(map[event.ReplicaID]*Node, len(states)),
		checkpoints: make(map[event.ReplicaID]*StateBuf),
	}
	for id, st := range states {
		c.nodes[id] = &Node{ID: id, State: st}
	}
	c.ids = make([]event.ReplicaID, 0, len(c.nodes))
	for id := range c.nodes {
		c.ids = append(c.ids, id)
	}
	sort.Slice(c.ids, func(i, j int) bool { return c.ids[i] < c.ids[j] })
	return c
}

// SetFullHashing disables (true) or re-enables (false) incremental state
// reuse. Digests are identical either way; full mode exists so a
// suspected caching bug can be bisected out with one switch.
func (c *Cluster) SetFullHashing(full bool) { c.full = full }

// Node returns the node for a replica.
func (c *Cluster) Node(id event.ReplicaID) (*Node, error) {
	n, ok := c.nodes[id]
	if !ok {
		return nil, fmt.Errorf("replica: unknown replica %s", id)
	}
	return n, nil
}

// IDs returns the sorted replica identities. The slice is shared — do
// not mutate it.
func (c *Cluster) IDs() []event.ReplicaID {
	return c.ids
}

// nodeBuf returns the node's current serialized state, reusing the cached
// buffer when the state's version counter proves it unchanged since the
// last serialization. reused reports a cache hit.
func (c *Cluster) nodeBuf(n *Node) (buf *StateBuf, reused bool, err error) {
	v, versioned := n.State.(Versioned)
	if versioned && !c.full {
		ver := v.StateVersion()
		if n.buf != nil && n.bufVer == ver {
			return n.buf, true, nil
		}
		data, err := n.State.Snapshot()
		if err != nil {
			return nil, false, err
		}
		buf = newStateBuf(data)
		n.buf, n.bufVer = buf, ver
		return buf, false, nil
	}
	data, err := n.State.Snapshot()
	if err != nil {
		return nil, false, err
	}
	return newStateBuf(data), false, nil
}

// adoptBuf records buf as the node's current serialized state, so the
// first snapshot after a restore re-serializes only replicas the suffix
// actually touched.
func (n *Node) adoptBuf(buf *StateBuf) {
	if v, ok := n.State.(Versioned); ok {
		n.buf, n.bufVer = buf, v.StateVersion()
	}
	n.fpOK = false
}

// Checkpoint snapshots every replica's current state.
func (c *Cluster) Checkpoint() error {
	for id, n := range c.nodes {
		buf, _, err := c.nodeBuf(n)
		if err != nil {
			return fmt.Errorf("replica: checkpoint %s: %w", id, err)
		}
		c.checkpoints[id] = buf
	}
	return nil
}

// CheckpointNode snapshots a single replica's current state, leaving the
// other replicas' checkpoints untouched (used by fault injection to model
// per-replica durable storage).
func (c *Cluster) CheckpointNode(id event.ReplicaID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("replica: unknown replica %s", id)
	}
	buf, _, err := c.nodeBuf(n)
	if err != nil {
		return fmt.Errorf("replica: checkpoint %s: %w", id, err)
	}
	c.checkpoints[id] = buf
	return nil
}

// ResetNode restores a single replica to its last checkpoint — the
// crash-recovery primitive: a crashed replica loses its volatile state and
// restarts from durable storage while the others keep running.
func (c *Cluster) ResetNode(id event.ReplicaID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("replica: unknown replica %s", id)
	}
	snap, ok := c.checkpoints[id]
	if !ok {
		return fmt.Errorf("replica: no checkpoint for %s", id)
	}
	if err := n.State.Restore(snap.Data); err != nil {
		return fmt.Errorf("replica: reset %s: %w", id, err)
	}
	n.adoptBuf(snap)
	return nil
}

// Reset restores every replica to the last checkpoint.
func (c *Cluster) Reset() error {
	for id, n := range c.nodes {
		snap, ok := c.checkpoints[id]
		if !ok {
			return fmt.Errorf("replica: no checkpoint for %s", id)
		}
		if err := n.State.Restore(snap.Data); err != nil {
			return fmt.Errorf("replica: reset %s: %w", id, err)
		}
		n.adoptBuf(snap)
	}
	return nil
}

// ClusterSnapshot is a canonical point-in-time serialization of every
// replica's state: replicas appear in sorted ID order, so two clusters in
// equal states always produce snapshots with identical structure. It is
// both the prefix cache's restore unit and the input to state-hash
// subsumption (DESIGN.md §4.12), which is why the ordering must be
// canonical rather than map-iteration incidental.
type ClusterSnapshot struct {
	// IDs are the replica identities in ascending order.
	IDs []event.ReplicaID
	// Bufs holds each replica's serialized state with its per-replica
	// SHA-256, parallel to IDs. Bufs are immutable and may be shared
	// across snapshots (the node-level cache returns the same *StateBuf
	// while a replica is clean).
	Bufs []*StateBuf
	// Bytes is the total size of the snapshot payloads — the unit the
	// prefix cache's byte budget accounts in.
	Bytes int64
	// Dirty counts the replicas that had to be re-serialized to build
	// this snapshot; Reused is the payload bytes served from per-replica
	// caches instead (snapshot.dirty_replicas / snapshot.bytes_reused).
	Dirty  int
	Reused int64
}

// CanonicalSnapshot serializes every replica's current (possibly mid-run)
// state without touching the genesis checkpoints, in canonical sorted-ID
// order. Replicas whose version counter proves them unchanged since their
// last serialization reuse the cached buffer — the per-depth cost is
// O(dirty replicas), not O(cluster).
func (c *Cluster) CanonicalSnapshot() (*ClusterSnapshot, error) {
	snap := &ClusterSnapshot{IDs: c.ids, Bufs: make([]*StateBuf, 0, len(c.nodes))}
	for _, id := range snap.IDs {
		buf, reused, err := c.nodeBuf(c.nodes[id])
		if err != nil {
			return nil, fmt.Errorf("replica: snapshot %s: %w", id, err)
		}
		snap.Bufs = append(snap.Bufs, buf)
		snap.Bytes += int64(len(buf.Data))
		if reused {
			snap.Reused += int64(len(buf.Data))
		} else {
			snap.Dirty++
		}
	}
	return snap, nil
}

// RestoreSnapshot restores every replica from a mid-run snapshot (as
// produced by CanonicalSnapshot). Every node in the cluster must be
// covered; the genesis checkpoints are left untouched. Restored buffers
// are adopted into the per-node caches, so the next CanonicalSnapshot
// re-serializes only replicas the resumed suffix touches.
func (c *Cluster) RestoreSnapshot(snap *ClusterSnapshot) error {
	if len(snap.IDs) != len(c.nodes) {
		return fmt.Errorf("replica: snapshot covers %d replicas, cluster has %d", len(snap.IDs), len(c.nodes))
	}
	for i, id := range snap.IDs {
		n, ok := c.nodes[id]
		if !ok {
			return fmt.Errorf("replica: snapshot for unknown replica %s", id)
		}
		if err := n.State.Restore(snap.Bufs[i].Data); err != nil {
			return fmt.Errorf("replica: restore %s: %w", id, err)
		}
		n.adoptBuf(snap.Bufs[i])
	}
	return nil
}

// AppendCanonical appends the snapshot's canonical byte encoding to b:
// for each replica in sorted ID order, a uvarint-length-prefixed ID
// followed by its uvarint-length-prefixed state snapshot. The encoding is
// injective — length prefixes prevent boundary ambiguity — so two
// snapshots encode identically iff every replica's serialized state is
// identical.
func (s *ClusterSnapshot) AppendCanonical(b []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for i, id := range s.IDs {
		n := binary.PutUvarint(tmp[:], uint64(len(id)))
		b = append(b, tmp[:n]...)
		b = append(b, id...)
		n = binary.PutUvarint(tmp[:], uint64(len(s.Bufs[i].Data)))
		b = append(b, tmp[:n]...)
		b = append(b, s.Bufs[i].Data...)
	}
	return b
}

// AppendHashEncoding appends the snapshot's hash-of-hashes preimage to b:
// for each replica in sorted ID order, a uvarint-length-prefixed ID
// followed by the replica's fixed-size state SHA-256. Two snapshots
// produce equal encodings iff every replica's serialized state hashes
// equal — with SHA-256 collision resistance, iff the states are
// byte-identical, the same soundness AppendCanonical gives at a fraction
// of the bytes (Merkle-CRDT-style composition; DESIGN.md §4.15).
func (s *ClusterSnapshot) AppendHashEncoding(b []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for i, id := range s.IDs {
		n := binary.PutUvarint(tmp[:], uint64(len(id)))
		b = append(b, tmp[:n]...)
		b = append(b, id...)
		b = append(b, s.Bufs[i].Hash[:]...)
	}
	return b
}

// Hash returns the SHA-256 digest over the hash-of-hashes encoding. This
// is THE cluster state digest everywhere (subsumption context hashes,
// forensic step hashes): incremental and full hashing modes compute the
// exact same value, they only differ in how much serialization it costs.
func (s *ClusterSnapshot) Hash() [sha256.Size]byte {
	var stack [192]byte
	return sha256.Sum256(s.AppendHashEncoding(stack[:0]))
}

// nodeFingerprint returns the node's fingerprint through the
// version-keyed cache.
func (c *Cluster) nodeFingerprint(n *Node) string {
	v, versioned := n.State.(Versioned)
	if !versioned || c.full {
		return n.State.Fingerprint()
	}
	ver := v.StateVersion()
	if n.fpOK && n.fpVer == ver {
		return n.fp
	}
	n.fp, n.fpVer, n.fpOK = n.State.Fingerprint(), ver, true
	return n.fp
}

// Fingerprints returns every replica's current state fingerprint,
// reusing cached fingerprints for replicas unchanged since the last call
// (the assert stage re-fingerprints the cluster after Finalize; with
// version tracking that reuses the execution-time work instead of
// re-serializing converged state).
func (c *Cluster) Fingerprints() map[event.ReplicaID]string {
	out := make(map[event.ReplicaID]string, len(c.nodes))
	for id, n := range c.nodes {
		out[id] = c.nodeFingerprint(n)
	}
	return out
}

// Converged reports whether every replica has the same fingerprint.
func (c *Cluster) Converged() bool {
	var first string
	started := false
	for _, n := range c.nodes {
		fp := c.nodeFingerprint(n)
		if !started {
			first, started = fp, true
			continue
		}
		if fp != first {
			return false
		}
	}
	return true
}
