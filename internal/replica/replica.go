// Package replica provides the replica runtime ER-π replays interleavings
// against: a State interface that every evaluation subject implements, a
// Node binding a state to a replica identity, and a Cluster that manages
// checkpointing and resetting replica states between interleavings
// (paper §4.3: "ER-π checkpoints the replicas' states and resets them prior
// to executing each interleaving").
package replica

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/er-pi/erpi/internal/event"
)

// ErrFailedOp marks an RDL operation rejected by the data structure's
// constraints (e.g. adding an element a set already holds). Failed ops are
// expected outcomes during exhaustive replay — the runner records them
// instead of aborting, and they feed the Failed-Ops pruning algorithm.
var ErrFailedOp = errors.New("replica: operation failed by data-type constraint")

// Op is one RDL operation invoked by application logic, extracted from a
// recorded event during replay.
type Op struct {
	Name string
	Args []string
}

// String renders "name(arg1,arg2)".
func (o Op) String() string {
	if len(o.Args) == 0 {
		return o.Name
	}
	return o.Name + "(" + strings.Join(o.Args, ",") + ")"
}

// State is the contract between ER-π and an application's replicated
// state. Implementations wrap the subject's RDL integration.
type State interface {
	// Apply executes a local RDL operation (an Update or Observe event) and
	// returns its observable result ("" when none).
	Apply(op Op) (string, error)
	// SyncPayload produces the synchronization request this replica would
	// send right now (full state for state-based CRDTs, pending ops for
	// op-based ones).
	SyncPayload() ([]byte, error)
	// ApplySync executes a received synchronization request.
	ApplySync(payload []byte) error
	// Snapshot serializes the state for checkpointing. The snapshot must
	// capture ALL behavior-relevant state — logical clocks, arrival
	// counters, tombstones — not just the observable value: the engine
	// relies on Restore(Snapshot()) resuming execution mid-interleaving
	// with byte-identical behavior (prefix-cache suffix replay, §4.9).
	Snapshot() ([]byte, error)
	// Restore resets the state from a snapshot. After Restore the state
	// must behave exactly as it did when the snapshot was taken.
	Restore(snapshot []byte) error
	// Fingerprint returns a canonical digest of the observable state, used
	// by divergence assertions. Equal states must produce equal
	// fingerprints.
	Fingerprint() string
}

// Node binds a State to a replica identity.
type Node struct {
	ID    event.ReplicaID
	State State
}

// Cluster is the set of replicas one scenario replays against.
type Cluster struct {
	nodes       map[event.ReplicaID]*Node
	checkpoints map[event.ReplicaID][]byte
}

// NewCluster builds a cluster from per-replica states.
func NewCluster(states map[event.ReplicaID]State) *Cluster {
	c := &Cluster{
		nodes:       make(map[event.ReplicaID]*Node, len(states)),
		checkpoints: make(map[event.ReplicaID][]byte),
	}
	for id, st := range states {
		c.nodes[id] = &Node{ID: id, State: st}
	}
	return c
}

// Node returns the node for a replica.
func (c *Cluster) Node(id event.ReplicaID) (*Node, error) {
	n, ok := c.nodes[id]
	if !ok {
		return nil, fmt.Errorf("replica: unknown replica %s", id)
	}
	return n, nil
}

// IDs returns the sorted replica identities.
func (c *Cluster) IDs() []event.ReplicaID {
	out := make([]event.ReplicaID, 0, len(c.nodes))
	for id := range c.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checkpoint snapshots every replica's current state.
func (c *Cluster) Checkpoint() error {
	for id, n := range c.nodes {
		snap, err := n.State.Snapshot()
		if err != nil {
			return fmt.Errorf("replica: checkpoint %s: %w", id, err)
		}
		c.checkpoints[id] = snap
	}
	return nil
}

// CheckpointNode snapshots a single replica's current state, leaving the
// other replicas' checkpoints untouched (used by fault injection to model
// per-replica durable storage).
func (c *Cluster) CheckpointNode(id event.ReplicaID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("replica: unknown replica %s", id)
	}
	snap, err := n.State.Snapshot()
	if err != nil {
		return fmt.Errorf("replica: checkpoint %s: %w", id, err)
	}
	c.checkpoints[id] = snap
	return nil
}

// ResetNode restores a single replica to its last checkpoint — the
// crash-recovery primitive: a crashed replica loses its volatile state and
// restarts from durable storage while the others keep running.
func (c *Cluster) ResetNode(id event.ReplicaID) error {
	n, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("replica: unknown replica %s", id)
	}
	snap, ok := c.checkpoints[id]
	if !ok {
		return fmt.Errorf("replica: no checkpoint for %s", id)
	}
	if err := n.State.Restore(snap); err != nil {
		return fmt.Errorf("replica: reset %s: %w", id, err)
	}
	return nil
}

// Reset restores every replica to the last checkpoint.
func (c *Cluster) Reset() error {
	for id, n := range c.nodes {
		snap, ok := c.checkpoints[id]
		if !ok {
			return fmt.Errorf("replica: no checkpoint for %s", id)
		}
		if err := n.State.Restore(snap); err != nil {
			return fmt.Errorf("replica: reset %s: %w", id, err)
		}
	}
	return nil
}

// ClusterSnapshot is a canonical point-in-time serialization of every
// replica's state: replicas appear in sorted ID order, so two clusters in
// equal states always produce snapshots with identical structure. It is
// both the prefix cache's restore unit and the input to state-hash
// subsumption (DESIGN.md §4.12), which is why the ordering must be
// canonical rather than map-iteration incidental.
type ClusterSnapshot struct {
	// IDs are the replica identities in ascending order.
	IDs []event.ReplicaID
	// Snaps holds each replica's serialized state, parallel to IDs.
	Snaps [][]byte
	// Bytes is the total size of the snapshot payloads — the unit the
	// prefix cache's byte budget accounts in.
	Bytes int64
}

// CanonicalSnapshot serializes every replica's current (possibly mid-run)
// state without touching the genesis checkpoints, in canonical sorted-ID
// order.
func (c *Cluster) CanonicalSnapshot() (*ClusterSnapshot, error) {
	snap := &ClusterSnapshot{IDs: c.IDs(), Snaps: make([][]byte, 0, len(c.nodes))}
	for _, id := range snap.IDs {
		data, err := c.nodes[id].State.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("replica: snapshot %s: %w", id, err)
		}
		snap.Snaps = append(snap.Snaps, data)
		snap.Bytes += int64(len(data))
	}
	return snap, nil
}

// RestoreSnapshot restores every replica from a mid-run snapshot (as
// produced by CanonicalSnapshot). Every node in the cluster must be
// covered; the genesis checkpoints are left untouched.
func (c *Cluster) RestoreSnapshot(snap *ClusterSnapshot) error {
	if len(snap.IDs) != len(c.nodes) {
		return fmt.Errorf("replica: snapshot covers %d replicas, cluster has %d", len(snap.IDs), len(c.nodes))
	}
	for i, id := range snap.IDs {
		n, ok := c.nodes[id]
		if !ok {
			return fmt.Errorf("replica: snapshot for unknown replica %s", id)
		}
		if err := n.State.Restore(snap.Snaps[i]); err != nil {
			return fmt.Errorf("replica: restore %s: %w", id, err)
		}
	}
	return nil
}

// AppendCanonical appends the snapshot's canonical byte encoding to b:
// for each replica in sorted ID order, a uvarint-length-prefixed ID
// followed by its uvarint-length-prefixed state snapshot. The encoding is
// injective — length prefixes prevent boundary ambiguity — so two
// snapshots encode identically iff every replica's serialized state is
// identical, which is what makes hashing it sound for state subsumption.
func (s *ClusterSnapshot) AppendCanonical(b []byte) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for i, id := range s.IDs {
		n := binary.PutUvarint(tmp[:], uint64(len(id)))
		b = append(b, tmp[:n]...)
		b = append(b, id...)
		n = binary.PutUvarint(tmp[:], uint64(len(s.Snaps[i])))
		b = append(b, tmp[:n]...)
		b = append(b, s.Snaps[i]...)
	}
	return b
}

// Hash returns the SHA-256 digest of the canonical encoding.
func (s *ClusterSnapshot) Hash() [sha256.Size]byte {
	return sha256.Sum256(s.AppendCanonical(nil))
}

// Fingerprints returns every replica's current state fingerprint.
func (c *Cluster) Fingerprints() map[event.ReplicaID]string {
	out := make(map[event.ReplicaID]string, len(c.nodes))
	for id, n := range c.nodes {
		out[id] = n.State.Fingerprint()
	}
	return out
}

// Converged reports whether every replica has the same fingerprint.
func (c *Cluster) Converged() bool {
	var first string
	started := false
	for _, n := range c.nodes {
		fp := n.State.Fingerprint()
		if !started {
			first, started = fp, true
			continue
		}
		if fp != first {
			return false
		}
	}
	return true
}
