package replica

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/event"
)

// setState is a toy State over a plain string set, used to exercise the
// cluster machinery.
type setState struct {
	members map[string]bool
}

func newSetState() *setState { return &setState{members: make(map[string]bool)} }

func (s *setState) Apply(op Op) (string, error) {
	switch op.Name {
	case "add":
		s.members[op.Args[0]] = true
		return "", nil
	case "read":
		return s.Fingerprint(), nil
	default:
		return "", fmt.Errorf("unknown op %s", op.Name)
	}
}

func (s *setState) SyncPayload() ([]byte, error) { return json.Marshal(s.members) }

func (s *setState) ApplySync(payload []byte) error {
	var other map[string]bool
	if err := json.Unmarshal(payload, &other); err != nil {
		return err
	}
	for k := range other {
		s.members[k] = true
	}
	return nil
}

func (s *setState) Snapshot() ([]byte, error) { return json.Marshal(s.members) }

func (s *setState) Restore(snap []byte) error {
	s.members = make(map[string]bool)
	return json.Unmarshal(snap, &s.members)
}

func (s *setState) Fingerprint() string {
	var keys []string
	for k := range s.members {
		keys = append(keys, k)
	}
	// sort for canonical form
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return strings.Join(keys, ",")
}

func newTestCluster() *Cluster {
	return NewCluster(map[event.ReplicaID]State{
		"A": newSetState(),
		"B": newSetState(),
	})
}

func TestOpString(t *testing.T) {
	if got := (Op{Name: "add", Args: []string{"x", "y"}}).String(); got != "add(x,y)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Op{Name: "read"}).String(); got != "read" {
		t.Fatalf("String = %q", got)
	}
}

func TestClusterNodeLookup(t *testing.T) {
	c := newTestCluster()
	if _, err := c.Node("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node("Z"); err == nil {
		t.Fatal("unknown replica must error")
	}
	ids := c.IDs()
	if len(ids) != 2 || ids[0] != "A" || ids[1] != "B" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestCheckpointAndReset(t *testing.T) {
	c := newTestCluster()
	a, _ := c.Node("A")
	if _, err := a.State.Apply(Op{Name: "add", Args: []string{"base"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.State.Apply(Op{Name: "add", Args: []string{"dirty"}}); err != nil {
		t.Fatal(err)
	}
	if a.State.Fingerprint() != "base,dirty" {
		t.Fatalf("pre-reset fingerprint = %q", a.State.Fingerprint())
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if a.State.Fingerprint() != "base" {
		t.Fatalf("post-reset fingerprint = %q, want base", a.State.Fingerprint())
	}
}

func TestResetWithoutCheckpointFails(t *testing.T) {
	c := newTestCluster()
	if err := c.Reset(); err == nil {
		t.Fatal("reset without checkpoint must fail")
	}
}

func TestConvergedAndFingerprints(t *testing.T) {
	c := newTestCluster()
	if !c.Converged() {
		t.Fatal("fresh identical states must be converged")
	}
	a, _ := c.Node("A")
	if _, err := a.State.Apply(Op{Name: "add", Args: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if c.Converged() {
		t.Fatal("divergent states reported converged")
	}
	fps := c.Fingerprints()
	if fps["A"] != "x" || fps["B"] != "" {
		t.Fatalf("Fingerprints = %v", fps)
	}
	// Sync B from A restores convergence.
	b, _ := c.Node("B")
	payload, err := a.State.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.State.ApplySync(payload); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatal("states must converge after sync")
	}
}
