// Package miscon implements the misconception study of the paper's §6.2
// (RQ2): five commonly held wrong assumptions about replicated data
// libraries are seeded into the evaluation subjects, and ER-π's exhaustive
// replay detects each by violating a property assertion.
//
// The five misconceptions:
//
//	#1 The underlying network ensures causal delivery.
//	#2 The order of List elements is always consistent.
//	#3 Moving items in a List doesn't cause duplication.
//	#4 Sequential IDs are always suitable for creating new items.
//	#5 Multiple replicas in different regions mathematically resolve to
//	   the same state without coordination.
//
// Each scenario pairs a seeding strategy (per §6.2) with the detector the
// paper describes; the covered (subject, misconception) cells reproduce
// Table 2.
package miscon

import (
	"fmt"
	"strings"

	"github.com/er-pi/erpi/internal/check"
	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/prune"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/runner"
	"github.com/er-pi/erpi/internal/subjects/crdts"
	"github.com/er-pi/erpi/internal/subjects/orbit"
	"github.com/er-pi/erpi/internal/subjects/replicadb"
	"github.com/er-pi/erpi/internal/subjects/roshi"
	"github.com/er-pi/erpi/internal/subjects/yorkie"
)

// Scenario is one cell of Table 2.
type Scenario struct {
	// Misconception is the label number (1..5).
	Misconception int
	// Subject names the evaluation subject.
	Subject string
	// Seeding describes how the misconception was seeded (paper §6.2).
	Seeding string
	// Build records the workload.
	Build func() (runner.Scenario, error)
	// NewAssertions returns fresh detector instances.
	NewAssertions func() []runner.Assertion
}

// Name renders "Roshi#1".
func (s *Scenario) Name() string {
	return fmt.Sprintf("%s#%d", s.Subject, s.Misconception)
}

// All returns every covered (subject, misconception) cell in Table-2
// order (by misconception, then subject).
func All() []*Scenario {
	return []*Scenario{
		m1Roshi(), m1Orbit(), m1ReplicaDB(), m1Yorkie(), m1CRDTs(),
		m2Roshi(), m2CRDTs(),
		m3Roshi(), m3CRDTs(),
		m4CRDTs(),
		m5Roshi(), m5Orbit(), m5Yorkie(), m5CRDTs(),
	}
}

// Covered reports whether Table 2 has a checkmark for the cell.
func Covered(subject string, misconception int) bool {
	for _, s := range All() {
		if s.Subject == subject && s.Misconception == misconception {
			return true
		}
	}
	return false
}

// Subjects lists the evaluation subjects in Table-2 row order.
func Subjects() []string {
	return []string{"Roshi", "OrbitDB", "ReplicaDB", "Yorkie", "CRDTs"}
}

func record(name string, newCluster func() (*replica.Cluster, error),
	script func(rec *runner.Recorder), pruning prune.Config,
	finalize func(*replica.Cluster) error) func() (runner.Scenario, error) {
	return func() (runner.Scenario, error) {
		cluster, err := newCluster()
		if err != nil {
			return runner.Scenario{}, err
		}
		rec := runner.NewRecorder(cluster)
		script(rec)
		log, err := rec.Log()
		if err != nil {
			return runner.Scenario{}, fmt.Errorf("miscon: %s: %w", name, err)
		}
		return runner.Scenario{
			Name:       name,
			Log:        log,
			NewCluster: newCluster,
			Pruning:    pruning,
			Finalize:   finalize,
		}, nil
	}
}

func threeOf(mk func(rep string) replica.State) func() (*replica.Cluster, error) {
	return func() (*replica.Cluster, error) {
		return replica.NewCluster(map[event.ReplicaID]replica.State{
			"A": mk("A"), "B": mk("B"), "C": mk("C"),
		}), nil
	}
}

// --- Misconception #1: "the underlying network ensures causal delivery" —
// seeded by disabling the conflict-resolution step so arrival order wins;
// detected by comparing a replica's post-anti-entropy state across
// interleavings (paper: "the replica's state diverges from one
// interleaving to another").

const seed1 = "conflict-resolution step disabled; arrival order wins"

func stateStableDetector(rep event.ReplicaID) func() []runner.Assertion {
	return func() []runner.Assertion {
		return []runner.Assertion{&check.StateStable{Replica: rep}}
	}
}

func m1Roshi() *Scenario {
	newCluster := threeOf(func(string) replica.State { return roshi.New(roshi.Flags{ArrivalWins: true}) })
	return &Scenario{
		Misconception: 1, Subject: "Roshi", Seeding: seed1,
		Build: record("Roshi#1", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "insert", "k", "m", "5")
			rec.Sync("A", "B")
			rec.Update("B", "insert", "k", "m", "3")
			rec.Sync("B", "A")
			rec.Update("B", "delete", "k", "m", "4")
			rec.Sync("B", "A")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, runner.AntiEntropy(2)),
		NewAssertions: stateStableDetector("A"),
	}
}

func m1Orbit() *Scenario {
	// Both devices share one identity: without the causal total order the
	// log linearization follows arrival.
	newCluster := threeOf(func(rep string) replica.State {
		id := rep
		if rep == "A" || rep == "B" {
			id = "W"
		}
		return orbit.New(id, orbit.Flags{BugTieBreaker: true})
	})
	return &Scenario{
		Misconception: 1, Subject: "OrbitDB", Seeding: seed1,
		Build: record("OrbitDB#1", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "append", "p1")
			rec.Update("B", "append", "p2")
			rec.Sync("A", "B")
			rec.Sync("B", "A")
			rec.Sync("A", "C")
			rec.Sync("B", "C")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"C"}}, runner.AntiEntropy(2)),
		NewAssertions: stateStableDetector("C"),
	}
}

func m1ReplicaDB() *Scenario {
	newCluster := threeOf(func(string) replica.State {
		return replicadb.New(replicadb.Flags{NoVersionResolution: true})
	})
	return &Scenario{
		Misconception: 1, Subject: "ReplicaDB", Seeding: seed1,
		Build: record("ReplicaDB#1", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "insert", "k", "va")
			rec.Update("B", "insert", "k", "vb")
			rec.Sync("A", "B")
			rec.Sync("B", "A")
			rec.Update("A", "transferComplete")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, runner.AntiEntropy(2)),
		NewAssertions: stateStableDetector("A"),
	}
}

func m1Yorkie() *Scenario {
	newCluster := threeOf(func(rep string) replica.State {
		return yorkie.New(rep, yorkie.Flags{NoStampResolution: true})
	})
	return &Scenario{
		Misconception: 1, Subject: "Yorkie", Seeding: seed1,
		Build: record("Yorkie#1", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "set", "k", "va")
			rec.Update("B", "set", "k", "vb")
			rec.Sync("A", "B")
			rec.Sync("B", "A")
			rec.Update("C", "set", "other", "x")
			rec.Sync("C", "A")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, runner.AntiEntropy(2)),
		NewAssertions: stateStableDetector("A"),
	}
}

func m1CRDTs() *Scenario {
	newCluster := threeOf(func(rep string) replica.State {
		return crdts.New(rep, crdts.Flags{LastSyncWins: true})
	})
	return &Scenario{
		Misconception: 1, Subject: "CRDTs", Seeding: seed1,
		Build: record("CRDTs#1", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "tag.add", "urgent")
			rec.Update("B", "tag.add", "later")
			rec.Sync("A", "B")
			rec.Sync("B", "A")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, runner.AntiEntropy(2)),
		NewAssertions: stateStableDetector("A"),
	}
}

// --- Misconception #2: "the order of List elements is always consistent"
// — seeded with an unsorted replicated list; detected by checking the list
// order across replicas and interleavings.

const seed2 = "replicated list left unsorted"

func m2Roshi() *Scenario {
	newCluster := threeOf(func(string) replica.State { return roshi.New(roshi.Flags{BugMapOrder: true}) })
	return &Scenario{
		Misconception: 2, Subject: "Roshi", Seeding: seed2,
		Build: record("Roshi#2", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "insert", "k", "x", "5")
			rec.Sync("A", "B")
			rec.Update("B", "insert", "k", "y", "5")
			rec.Sync("B", "A")
			rec.Observe("A", "select", "k")
			rec.Observe("B", "select", "k")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, nil),
		NewAssertions: func() []runner.Assertion {
			return []runner.Assertion{
				&check.ObservationStable{Event: 4},
				&check.ObservationStable{Event: 5},
			}
		},
	}
}

func m2CRDTs() *Scenario {
	newCluster := threeOf(func(rep string) replica.State { return crdts.New(rep, crdts.Flags{}) })
	return &Scenario{
		Misconception: 2, Subject: "CRDTs", Seeding: seed2,
		Build: record("CRDTs#2", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "list.insert", "0", "a")
			rec.Update("B", "list.insert", "0", "b")
			rec.Sync("A", "B")
			rec.Sync("B", "A")
			rec.Observe("A", "list.read")
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, nil),
		NewAssertions: func() []runner.Assertion {
			return []runner.Assertion{&check.ObservationStable{Event: 4}}
		},
	}
}

// --- Misconception #3: "moving items in a List doesn't cause duplication"
// — seeded with a delete+insert move; detected by interleaving concurrent
// moves of the same element and checking for duplicates.

const seed3 = "move implemented as delete followed by insert"

func m3Roshi() *Scenario {
	// Items are positioned members "item#pos"; a move deletes the old
	// position and inserts the new one, so concurrent moves leave two
	// positioned copies of the same logical item.
	newCluster := threeOf(func(string) replica.State { return roshi.New(roshi.Flags{}) })
	return &Scenario{
		Misconception: 3, Subject: "Roshi", Seeding: seed3,
		Build: record("Roshi#3", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "insert", "k", "item#p1", "1") // 0
			rec.Sync("A", "B")                             // 1
			// A moves the item to p2; B concurrently to p3.
			rec.Update("A", "delete", "k", "item#p1", "2") // 2
			rec.Update("A", "insert", "k", "item#p2", "2") // 3
			rec.Update("B", "delete", "k", "item#p1", "3") // 4
			rec.Update("B", "insert", "k", "item#p3", "3") // 5
			rec.Sync("A", "B")                             // 6
			rec.Sync("B", "A")                             // 7
			rec.Observe("A", "select", "k")                // 8
		}, prune.Config{
			Grouping:       prune.GroupSpec{Extra: [][]event.ID{{2, 3}, {4, 5}}},
			TestedReplicas: []event.ReplicaID{"A"},
		}, runner.AntiEntropy(2)),
		NewAssertions: func() []runner.Assertion {
			return []runner.Assertion{check.Custom{
				Label: "no-logical-duplicate",
				Fn: func(o *runner.Outcome) error {
					got, ok := o.Observations[8]
					if !ok {
						return nil
					}
					n := strings.Count(got, "item#")
					if n > 1 {
						return fmt.Errorf("logical item present %d times: %q", n, got)
					}
					return nil
				},
			}}
		},
	}
}

func m3CRDTs() *Scenario {
	newCluster := threeOf(func(rep string) replica.State {
		return crdts.New(rep, crdts.Flags{NaiveMove: true})
	})
	return &Scenario{
		Misconception: 3, Subject: "CRDTs", Seeding: seed3,
		Build: record("CRDTs#3", newCluster, func(rec *runner.Recorder) {
			rec.Update("A", "list.insert", "0", "x") // 0
			rec.Update("A", "list.insert", "1", "y") // 1
			rec.Update("A", "list.insert", "2", "z") // 2
			rec.Sync("A", "B")                       // 3
			rec.Update("A", "list.move", "0", "3")   // 4
			rec.Sync("A", "B")                       // 5
			rec.Update("B", "list.move", "0", "2")   // 6
			rec.Sync("B", "A")                       // 7
			rec.Observe("A", "list.read")            // 8
		}, prune.Config{
			Grouping:       prune.GroupSpec{Extra: [][]event.ID{{0, 1, 2, 3}}},
			TestedReplicas: []event.ReplicaID{"A"},
		}, runner.AntiEntropy(2)),
		NewAssertions: func() []runner.Assertion {
			return []runner.Assertion{check.NoDuplicates{Event: 8}}
		},
	}
}

// --- Misconception #4: "sequential IDs are always suitable for creating
// new items in a to-do list" — seeded with max+1 IDs; detected by
// interleaving concurrent creations and checking for ID clashes.

const seed4 = "to-do IDs generated as highest-known + 1"

func m4CRDTs() *Scenario {
	newCluster := threeOf(func(rep string) replica.State {
		return crdts.New(rep, crdts.Flags{SequentialIDs: true})
	})
	return &Scenario{
		Misconception: 4, Subject: "CRDTs", Seeding: seed4,
		Build: record("CRDTs#4", newCluster, func(rec *runner.Recorder) {
			rec.Observe("A", "todo.create", "buy milk") // 0: returns the ID
			rec.Sync("A", "B")                          // 1
			rec.Observe("B", "todo.create", "walk dog") // 2: returns the ID
			rec.Sync("B", "A")                          // 3
			rec.Observe("A", "todo.read")               // 4
		}, prune.Config{TestedReplicas: []event.ReplicaID{"A"}}, runner.AntiEntropy(2)),
		NewAssertions: func() []runner.Assertion {
			return []runner.Assertion{check.NoClash{EventA: 0, EventB: 2}}
		},
	}
}

// --- Misconception #5: "multiple replicas in different regions
// mathematically resolve to the same state without coordination" — seeded
// by stopping coordination for one replica (the motivating example);
// detected by comparing that replica's state across interleavings.

const seed5 = "coordination stopped for one replica"

func m5Workload(newCluster func() (*replica.Cluster, error), name string,
	script func(rec *runner.Recorder), tested event.ReplicaID) *Scenario {
	return &Scenario{
		Misconception: 5, Subject: strings.Split(name, "#")[0], Seeding: seed5,
		Build:         record(name, newCluster, script, prune.Config{TestedReplicas: []event.ReplicaID{tested}}, nil),
		NewAssertions: stateStableDetector(tested),
	}
}

func m5Roshi() *Scenario {
	newCluster := threeOf(func(string) replica.State { return roshi.New(roshi.Flags{}) })
	return m5Workload(newCluster, "Roshi#5", func(rec *runner.Recorder) {
		rec.Update("A", "insert", "k", "otb", "1")
		rec.Sync("A", "B")
		rec.Update("B", "insert", "k", "ph", "2")
		rec.Update("B", "delete", "k", "otb", "3")
		rec.Sync("B", "A")
		rec.Sync("A", "C") // the only transmission C ever gets
	}, "C")
}

func m5Orbit() *Scenario {
	newCluster := threeOf(func(rep string) replica.State { return orbit.New(rep, orbit.Flags{}) })
	return m5Workload(newCluster, "OrbitDB#5", func(rec *runner.Recorder) {
		rec.Update("A", "append", "a1")
		rec.Sync("A", "B")
		rec.Update("B", "append", "b1")
		rec.Sync("B", "A")
		rec.Sync("A", "C") // C is never synced again
	}, "C")
}

func m5Yorkie() *Scenario {
	newCluster := threeOf(func(rep string) replica.State { return yorkie.New(rep, yorkie.Flags{}) })
	return m5Workload(newCluster, "Yorkie#5", func(rec *runner.Recorder) {
		rec.Update("A", "set", "issues.otb", "open")
		rec.Sync("A", "B")
		rec.Update("B", "deleteKey", "issues.otb")
		rec.Update("B", "set", "issues.ph", "open")
		rec.Sync("B", "A")
		rec.Sync("A", "C")
	}, "C")
}

func m5CRDTs() *Scenario {
	newCluster := threeOf(func(rep string) replica.State { return crdts.New(rep, crdts.Flags{}) })
	return m5Workload(newCluster, "CRDTs#5", func(rec *runner.Recorder) {
		rec.Update("A", "tag.add", "otb")
		rec.Sync("A", "B")
		rec.Update("B", "tag.add", "ph")
		rec.Update("B", "tag.remove", "otb")
		rec.Sync("B", "A")
		rec.Sync("A", "C")
	}, "C")
}
