package miscon

import (
	"testing"

	"github.com/er-pi/erpi/internal/runner"
)

// TestTable2Coverage pins the checkmark matrix of the paper's Table 2.
func TestTable2Coverage(t *testing.T) {
	want := map[string][]int{
		"Roshi":     {1, 2, 3, 5},
		"OrbitDB":   {1, 5},
		"ReplicaDB": {1},
		"Yorkie":    {1, 5},
		"CRDTs":     {1, 2, 3, 4, 5},
	}
	total := 0
	for subject, ms := range want {
		for _, m := range ms {
			if !Covered(subject, m) {
				t.Errorf("missing cell %s#%d", subject, m)
			}
			total++
		}
	}
	if got := len(All()); got != total {
		t.Errorf("scenarios = %d, want %d", got, total)
	}
	// Cells the paper leaves blank must stay blank.
	for _, blank := range []struct {
		subject string
		m       int
	}{{"OrbitDB", 2}, {"OrbitDB", 3}, {"OrbitDB", 4}, {"ReplicaDB", 2},
		{"ReplicaDB", 3}, {"ReplicaDB", 4}, {"ReplicaDB", 5},
		{"Yorkie", 2}, {"Yorkie", 3}, {"Yorkie", 4}, {"Roshi", 4}} {
		if Covered(blank.subject, blank.m) {
			t.Errorf("cell %s#%d should be blank", blank.subject, blank.m)
		}
	}
}

// TestEveryScenarioDetects runs each seeded scenario under ER-π's pruned
// exploration and requires the detector to fire — the RQ2 result.
func TestEveryScenarioDetects(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			s, err := sc.Build()
			if err != nil {
				t.Fatal(err)
			}
			res, err := runner.Run(s, runner.Config{
				Mode:             runner.ModeERPi,
				MaxInterleavings: 2000,
				StopOnViolation:  true,
				Assertions:       sc.NewAssertions(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.FirstViolation == 0 {
				t.Fatalf("misconception not detected in %d interleavings (exhausted=%v)",
					res.Explored, res.Exhausted)
			}
			t.Logf("detected at interleaving %d", res.FirstViolation)
		})
	}
}

// TestScenarioNames sanity-checks naming.
func TestScenarioNames(t *testing.T) {
	for _, sc := range All() {
		if sc.Name() == "" || sc.Seeding == "" {
			t.Errorf("scenario %+v missing name or seeding", sc)
		}
	}
	if len(Subjects()) != 5 {
		t.Error("five subjects expected")
	}
}
