package checkpoint

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

func openDir(t *testing.T) *Dir {
	t.Helper()
	d, err := Open(filepath.Join(t.TempDir(), "session"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSaveLoadLog(t *testing.T) {
	d := openDir(t)
	log, err := event.NewLog([]event.Event{
		{Kind: event.Update, Replica: "A", Op: "add", Args: []string{"x"}},
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveLog(log); err != nil {
		t.Fatal(err)
	}
	loaded, err := d.LoadLog()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d events", loaded.Len())
	}
	ev := loaded.Event(0)
	if ev.Op != "add" || ev.Args[0] != "x" || ev.Replica != "A" {
		t.Fatalf("event mangled: %+v", ev)
	}
}

func TestLoadLogMissing(t *testing.T) {
	d := openDir(t)
	if _, err := d.LoadLog(); err == nil {
		t.Fatal("missing log must error")
	}
}

func TestExploredJournal(t *testing.T) {
	d := openDir(t)
	seen, err := d.LoadExplored()
	if err != nil || len(seen) != 0 {
		t.Fatalf("fresh journal: %v %v", seen, err)
	}
	ils := []interleave.Interleaving{{0, 1, 2}, {2, 1, 0}}
	for _, il := range ils {
		if err := d.AppendExplored(il); err != nil {
			t.Fatal(err)
		}
	}
	seen, err = d.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || !seen["0,1,2"] || !seen["2,1,0"] {
		t.Fatalf("journal = %v", seen)
	}
}

// TestExploredJournalBuffering pins the persistent-handle journal: a
// batch of appends below the sync threshold lives in the write buffer
// (invisible to an external reader) until Flush or Close pushes it out,
// while LoadExplored flushes implicitly so same-process resume never
// misses buffered keys.
func TestExploredJournalBuffering(t *testing.T) {
	d := openDir(t)
	// Count-only policy: this test pins the buffering behavior, which the
	// default age trigger would flush out from under the assertions below.
	d.SetSyncPolicy(0, 0)
	if err := d.AppendExplored(interleave.Interleaving{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	// Below journalSyncEvery nothing is flushed yet: a second Dir over the
	// same path (an external reader) sees an empty journal.
	ext, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	seen, err := ext.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 0 {
		t.Fatalf("buffered append already on disk: %v", seen)
	}
	// The writing Dir itself must see its own buffered appends.
	own, err := d.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(own) != 1 || !own["0,1,2"] {
		t.Fatalf("same-process resume missed buffered keys: %v", own)
	}
	// LoadExplored flushed, so the external reader now sees it too.
	if seen, err = ext.LoadExplored(); err != nil || len(seen) != 1 {
		t.Fatalf("post-flush external read: %v %v", seen, err)
	}

	// Crossing the sync threshold flushes without an explicit call.
	for i := 0; i < journalSyncEvery; i++ {
		if err := d.AppendExplored(interleave.Interleaving{0, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	if seen, err = ext.LoadExplored(); err != nil || len(seen) != 1 {
		t.Fatalf("batch sync did not reach disk: %d keys, %v", len(seen), err)
	}

	// Close flushes the tail and the Dir stays usable afterwards.
	if err := d.AppendExplored(interleave.Interleaving{2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if seen, err = ext.LoadExplored(); err != nil || len(seen) != 2 {
		t.Fatalf("Close did not flush the tail: %v %v", seen, err)
	}
	if err := d.AppendExplored(interleave.Interleaving{1, 0, 2}); err != nil {
		t.Fatalf("append after Close must reopen: %v", err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if seen, err = ext.LoadExplored(); err != nil || len(seen) != 3 {
		t.Fatalf("reopened journal lost the append: %v %v", seen, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Flush and Close on a closed Dir are no-ops.
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// journalBatches collects FsyncObserver batch sizes thread-safely (age
// flushes arrive on a timer goroutine).
type journalBatches struct {
	mu      sync.Mutex
	batches []int
}

func (b *journalBatches) observe(appends int, _ time.Duration) {
	b.mu.Lock()
	b.batches = append(b.batches, appends)
	b.mu.Unlock()
}

func (b *journalBatches) snapshot() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.batches...)
}

// TestJournalGroupCommitCountTrigger pins the count half of the
// group-commit policy: with the age trigger off, exactly the Nth append
// flushes, as one batch of N.
func TestJournalGroupCommitCountTrigger(t *testing.T) {
	d := openDir(t)
	defer d.Close()
	var obs journalBatches
	d.SetFsyncObserver(obs.observe)
	d.SetSyncPolicy(4, 0)
	for i := 0; i < 3; i++ {
		if err := d.AppendExplored(interleave.Interleaving{event.ID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := obs.snapshot(); len(got) != 0 {
		t.Fatalf("flushed before the count trigger: %v", got)
	}
	if err := d.AppendExplored(interleave.Interleaving{3}); err != nil {
		t.Fatal(err)
	}
	if got := obs.snapshot(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("count trigger batches = %v, want [4]", got)
	}
}

// TestJournalGroupCommitAgeTrigger pins the age half: a single append —
// far below the count threshold — reaches disk within the configured age
// bound, as a batch of 1, without any explicit Flush.
func TestJournalGroupCommitAgeTrigger(t *testing.T) {
	d := openDir(t)
	defer d.Close()
	var obs journalBatches
	d.SetFsyncObserver(obs.observe)
	d.SetSyncPolicy(64, 10*time.Millisecond)
	if err := d.AppendExplored(interleave.Interleaving{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := obs.snapshot(); len(got) > 0 {
			if len(got) != 1 || got[0] != 1 {
				t.Fatalf("age trigger batches = %v, want [1]", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("age trigger never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	// The flush was durable: an external reader sees the key.
	ext, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	seen, err := ext.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !seen["0,1,2"] {
		t.Fatalf("age-triggered flush not on disk: %v", seen)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := openDir(t)
	if err := d.SaveSnapshot("A", []byte("state-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := d.LoadSnapshot("A")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state-bytes" {
		t.Fatalf("snapshot = %q", got)
	}
	if _, err := d.LoadSnapshot("missing"); err == nil {
		t.Fatal("missing snapshot must error")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	base := t.TempDir()
	d, err := Open(filepath.Join(base, "a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Path() == "" {
		t.Fatal("empty path")
	}
	if err := d.SaveSnapshot("x", []byte("y")); err != nil {
		t.Fatal(err)
	}
}
