// Package checkpoint persists recorded event logs, generated interleavings,
// and exploration progress to disk (paper §4.2: "having generated all
// possible interleavings, ER-π persists them in a database"), so that an
// interrupted session resumes without regenerating or re-exploring.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
	"github.com/er-pi/erpi/internal/logx"
)

// journalSyncEvery is how many journal appends accumulate before the
// buffered writer is flushed and fsynced. A crash loses at most this many
// keys — each lost key only means that interleaving is re-explored, which
// is always safe — while the amortized cost drops from one open+fsync per
// interleaving to one fsync per batch.
const journalSyncEvery = 64

// journalSyncAge bounds how long an unsynced append may sit in the buffer
// before a flush fires anyway. The count trigger alone is tuned for fast
// scenarios; on slow ones (seconds per interleaving) 63 keys could sit
// volatile for minutes. Group commit is count-OR-age: whichever trips
// first flushes the batch.
const journalSyncAge = 5 * time.Millisecond

// FsyncObserver is notified after each durable journal flush with the
// number of appends the batch covered and how long the flush+fsync took.
// It runs under the Dir's lock and must not call back into the Dir.
// Age-triggered flushes invoke it on a background timer goroutine, so
// implementations must be safe for concurrent use.
type FsyncObserver func(appends int, took time.Duration)

// Dir is an on-disk session directory. The progress journal is held open
// across appends and buffered; call Flush to force durability at a point
// in time and Close when done with the directory.
type Dir struct {
	path string

	mu       sync.Mutex
	journal  *os.File
	buf      *bufio.Writer
	unsynced int
	onFsync  FsyncObserver

	// Group-commit policy: flush after syncEvery appends OR syncAge after
	// the first unsynced append, whichever comes first (syncAge <= 0
	// disables the age trigger). ageTimer is armed on the 0 -> 1 unsynced
	// transition and cleared by every flush; a flush error from the timer
	// goroutine is stashed in asyncErr and surfaced by the next
	// AppendExplored or Flush call.
	syncEvery int
	syncAge   time.Duration
	ageTimer  *time.Timer
	asyncErr  error
}

// SetFsyncObserver installs (or, with nil, removes) the flush callback.
func (d *Dir) SetFsyncObserver(fn FsyncObserver) {
	d.mu.Lock()
	d.onFsync = fn
	d.mu.Unlock()
}

// SetSyncPolicy tunes the journal's group commit: flush after `every`
// appends or once `maxAge` has elapsed since the first unsynced append,
// whichever trips first. every <= 0 restores the default count
// (journalSyncEvery); maxAge < 0 restores the default age
// (journalSyncAge); maxAge == 0 disables the age trigger entirely.
func (d *Dir) SetSyncPolicy(every int, maxAge time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if every <= 0 {
		every = journalSyncEvery
	}
	if maxAge < 0 {
		maxAge = journalSyncAge
	}
	d.syncEvery = every
	d.syncAge = maxAge
}

// Open creates (if needed) and opens a session directory.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	return &Dir{path: path, syncEvery: journalSyncEvery, syncAge: journalSyncAge}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// SaveLog persists the recorded event log.
func (d *Dir) SaveLog(log *event.Log) error {
	data, err := json.MarshalIndent(log.Events(), "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal log: %w", err)
	}
	return d.writeFile("events.json", data)
}

// LoadLog restores a recorded event log.
func (d *Dir) LoadLog() (*event.Log, error) {
	data, err := os.ReadFile(filepath.Join(d.path, "events.json"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read log: %w", err)
	}
	var events []event.Event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("checkpoint: parse log: %w", err)
	}
	log, err := event.NewLog(events)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuild log: %w", err)
	}
	return log, nil
}

// AppendExplored records an explored interleaving key in the progress
// journal (append-only, one key per line). Writes are buffered and group
// committed under the count-or-age policy (see SetSyncPolicy); a torn or
// lost tail is tolerated by LoadExplored's corrupt-line skipping.
func (d *Dir) AppendExplored(il interleave.Interleaving) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.takeAsyncErr(); err != nil {
		return err
	}
	if d.journal == nil {
		f, err := os.OpenFile(filepath.Join(d.path, "explored.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("checkpoint: open journal: %w", err)
		}
		d.journal = f
		d.buf = bufio.NewWriter(f)
	}
	if _, err := fmt.Fprintln(d.buf, il.Key()); err != nil {
		return fmt.Errorf("checkpoint: append journal: %w", err)
	}
	d.unsynced++
	if d.unsynced >= d.syncEvery {
		return d.flushLocked()
	}
	if d.unsynced == 1 && d.syncAge > 0 {
		d.ageTimer = time.AfterFunc(d.syncAge, d.ageFlush)
	}
	return nil
}

// ageFlush is the age-trigger timer callback: flush whatever accumulated
// since the first unsynced append. It runs on the timer goroutine, so a
// flush failure is parked in asyncErr for the next foreground call.
func (d *Dir) ageFlush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.unsynced == 0 {
		return
	}
	if err := d.flushLocked(); err != nil && d.asyncErr == nil {
		d.asyncErr = err
	}
}

// takeAsyncErr returns (and clears) a pending background flush error.
// Callers must hold d.mu.
func (d *Dir) takeAsyncErr() error {
	err := d.asyncErr
	d.asyncErr = nil
	return err
}

// Flush forces buffered journal appends to stable storage.
func (d *Dir) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.takeAsyncErr(); err != nil {
		return err
	}
	return d.flushLocked()
}

// Close flushes and closes the journal handle. The Dir stays usable: a
// later append reopens the journal.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.journal == nil {
		return nil
	}
	flushErr := d.flushLocked()
	closeErr := d.journal.Close()
	d.journal = nil
	d.buf = nil
	if flushErr != nil {
		return flushErr
	}
	if closeErr != nil {
		return fmt.Errorf("checkpoint: close journal: %w", closeErr)
	}
	return nil
}

func (d *Dir) flushLocked() error {
	if d.ageTimer != nil {
		d.ageTimer.Stop()
		d.ageTimer = nil
	}
	if d.journal == nil {
		return nil
	}
	appends := d.unsynced
	start := time.Now()
	if err := d.buf.Flush(); err != nil {
		return fmt.Errorf("checkpoint: flush journal: %w", err)
	}
	if err := d.journal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync journal: %w", err)
	}
	d.unsynced = 0
	if d.onFsync != nil && appends > 0 {
		d.onFsync(appends, time.Since(start))
	}
	return nil
}

// LoadExplored returns the set of explored interleaving keys. Lines that
// are not well-formed keys — the typical artifact of a crash mid-append
// leaving a truncated or garbage tail — are skipped with a warning rather
// than poisoning the resume: a skipped key only means that interleaving is
// re-explored, which is always safe.
func (d *Dir) LoadExplored() (map[string]bool, error) {
	// Make same-process appends visible: resume within one process (e.g.
	// two sessions sharing a Dir) must see keys still in the write buffer.
	if err := d.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]bool)
	f, err := os.Open(filepath.Join(d.path, "explored.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return out, nil
		}
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if line == "" {
			continue
		}
		if !validKey(line) {
			logx.L().Warn("skipping corrupt journal line",
				"component", "checkpoint", "line", lineNo, "content", line)
			continue
		}
		out[line] = true
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: scan journal: %w", err)
	}
	return out, nil
}

// validKey reports whether line has the shape of an interleaving key:
// comma-separated decimal event IDs (see interleave.Interleaving.Key).
func validKey(line string) bool {
	digits := 0
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case c >= '0' && c <= '9':
			digits++
		case c == ',':
			if digits == 0 {
				return false // empty field: leading comma or ",,"
			}
			digits = 0
		default:
			return false
		}
	}
	return digits > 0 // non-empty final field, rejects trailing comma
}

// SaveJSON atomically persists v as indented JSON under name — the
// manifest primitive the distributed coordinator uses for per-job state
// (job.json) that must never be observed torn.
func (d *Dir) SaveJSON(name string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal %s: %w", name, err)
	}
	return d.writeFile(name, data)
}

// LoadJSON restores a value persisted by SaveJSON. A missing file returns
// os.ErrNotExist (callers distinguish "fresh dir" from corruption).
func (d *Dir) LoadJSON(name string, v any) error {
	data, err := os.ReadFile(filepath.Join(d.path, name))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("checkpoint: parse %s: %w", name, err)
	}
	return nil
}

// SaveSnapshot persists a replica state snapshot under a name.
func (d *Dir) SaveSnapshot(name string, snapshot []byte) error {
	return d.writeFile("state-"+name+".snap", snapshot)
}

// LoadSnapshot restores a named replica snapshot.
func (d *Dir) LoadSnapshot(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(d.path, "state-"+name+".snap"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read snapshot %s: %w", name, err)
	}
	return data, nil
}

// writeFile writes atomically via a temp file + rename.
func (d *Dir) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(d.path, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(d.path, name)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename %s: %w", name, err)
	}
	return nil
}
