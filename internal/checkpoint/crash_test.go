package checkpoint

import (
	"fmt"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// ils returns n distinct single-digit-free interleavings (keys "i,i+1").
func ils(n int) []interleave.Interleaving {
	out := make([]interleave.Interleaving, n)
	for i := range out {
		out[i] = interleave.Interleaving{event.ID(i), event.ID(i + 1)}
	}
	return out
}

// TestJournalCrashAtGroupCommitBoundary simulates a process kill exactly at
// the group-commit boundary: under the count-or-age policy with the age
// trigger disabled, appends past the last count flush sit only in the
// write buffer. A kill drops them; the keys flushed by the count trigger
// must all survive, and a resume over the reopened journal must neither
// lose a synced key nor double-count a re-appended one.
func TestJournalCrashAtGroupCommitBoundary(t *testing.T) {
	d := openDir(t)
	// Count-only policy at the default batch size: the first 64 appends
	// flush at #64, appends 65..70 stay volatile.
	d.SetSyncPolicy(journalSyncEvery, 0)
	all := ils(journalSyncEvery + 6)
	for _, il := range all {
		if err := d.AppendExplored(il); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: the file handle goes away without a flush, losing the
	// buffered tail — exactly what SIGKILL does to the page of an
	// unflushed bufio.Writer.
	d.mu.Lock()
	_ = d.journal.Close()
	d.journal = nil
	d.buf = nil
	d.unsynced = 0
	d.mu.Unlock()

	// Resume in a fresh Dir over the same path.
	re, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	seen, err := re.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != journalSyncEvery {
		t.Fatalf("recovered %d keys, want exactly %d (the synced batch)", len(seen), journalSyncEvery)
	}
	for i := 0; i < journalSyncEvery; i++ {
		if !seen[all[i].Key()] {
			t.Fatalf("synced key %q lost in crash", all[i].Key())
		}
	}
	for i := journalSyncEvery; i < len(all); i++ {
		if seen[all[i].Key()] {
			t.Fatalf("unsynced key %q survived the crash; the test harness is wrong", all[i].Key())
		}
	}

	// The resumed session re-explores only what was lost, appending those
	// keys again. After it finishes, the journal holds every key exactly
	// once from a dedup standpoint: no loss, no double count.
	for _, il := range all {
		if seen[il.Key()] {
			continue // resume skips journaled keys
		}
		if err := re.AppendExplored(il); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Flush(); err != nil {
		t.Fatal(err)
	}
	final, err := re.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(all) {
		t.Fatalf("after resume: %d keys, want %d", len(final), len(all))
	}
	for _, il := range all {
		if !final[il.Key()] {
			t.Fatalf("key %q missing after resume", il.Key())
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCrashTornTail writes a torn final line (a partial append with
// no newline, the other SIGKILL artifact) and checks the resume skips only
// that line.
func TestJournalCrashTornTail(t *testing.T) {
	d := openDir(t)
	d.SetSyncPolicy(1, 0) // flush every append so the good lines are durable
	good := ils(5)
	for _, il := range good {
		if err := d.AppendExplored(il); err != nil {
			t.Fatal(err)
		}
	}
	// Torn tail: half a key, no terminator, straight into the file.
	d.mu.Lock()
	fmt.Fprint(d.buf, "12,") // trailing comma: fails validKey
	_ = d.buf.Flush()
	d.mu.Unlock()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	seen, err := re.LoadExplored()
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(good) {
		t.Fatalf("recovered %d keys, want %d (torn tail must be skipped, not fatal)", len(seen), len(good))
	}
}
