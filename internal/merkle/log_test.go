package merkle

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendAndHeads(t *testing.T) {
	l := NewLog("A", TieBreakIdentityHash)
	e1 := l.Append("op1")
	if !e1.Verify() {
		t.Fatal("fresh entry must verify")
	}
	if heads := l.Heads(); len(heads) != 1 || heads[0] != e1.Hash {
		t.Fatalf("Heads = %v", heads)
	}
	e2 := l.Append("op2")
	if len(e2.Parents) != 1 || e2.Parents[0] != e1.Hash {
		t.Fatalf("e2 parents = %v, want [e1]", e2.Parents)
	}
	if heads := l.Heads(); len(heads) != 1 || heads[0] != e2.Hash {
		t.Fatalf("Heads after e2 = %v", heads)
	}
	if l.Clock() != 2 || l.Len() != 2 {
		t.Fatalf("clock=%d len=%d", l.Clock(), l.Len())
	}
}

func TestVerifyDetectsMutation(t *testing.T) {
	l := NewLog("A", TieBreakIdentityHash)
	e := l.Append("original")
	e.Payload = "tampered"
	if e.Verify() {
		t.Fatal("mutated entry must fail verification (OrbitDB #583)")
	}
}

func TestJoinConvergence(t *testing.T) {
	a := NewLog("A", TieBreakIdentityHash)
	b := NewLog("B", TieBreakIdentityHash)
	a.Append("a1")
	b.Append("b1")
	if err := a.Join(b.Entries()); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(a.Entries()); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("logs must converge after mutual join")
	}
	if !reflect.DeepEqual(a.Payloads(), b.Payloads()) {
		t.Fatalf("linearization differs: %v vs %v", a.Payloads(), b.Payloads())
	}
	// Two concurrent roots -> two heads until someone appends on top.
	if heads := a.Heads(); len(heads) != 2 {
		t.Fatalf("Heads = %v, want 2 concurrent heads", heads)
	}
	a.Append("a2")
	if heads := a.Heads(); len(heads) != 1 {
		t.Fatalf("append must subsume both heads, got %v", heads)
	}
}

func TestJoinRejectsTamperedEntry(t *testing.T) {
	a := NewLog("A", TieBreakIdentityHash)
	b := NewLog("B", TieBreakIdentityHash)
	a.Append("x")
	entries := a.Entries()
	entries[0].Payload = "evil"
	if err := b.Join(entries); err == nil {
		t.Fatal("join must reject entries failing verification")
	}
}

func TestJoinWitnessesClock(t *testing.T) {
	a := NewLog("A", TieBreakIdentityHash)
	b := NewLog("B", TieBreakIdentityHash)
	for i := 0; i < 5; i++ {
		a.Append("x")
	}
	if err := b.Join(a.Entries()); err != nil {
		t.Fatal(err)
	}
	e := b.Append("mine")
	if e.Clock != 6 {
		t.Fatalf("clock after join = %d, want 6", e.Clock)
	}
}

func TestMaxClockSkewGuard(t *testing.T) {
	// Craft a far-future entry (the OrbitDB #512 scenario).
	evil := NewLog("E", TieBreakIdentityHash)
	evil.clock = 1 << 40
	evil.Append("future")

	open := NewLog("A", TieBreakIdentityHash) // no guard
	if err := open.Join(evil.Entries()); err != nil {
		t.Fatalf("unguarded log must accept any clock: %v", err)
	}
	if open.Clock() <= 1<<40 {
		t.Fatal("clock must jump to the far future — the halt hazard")
	}

	guarded := NewLog("B", TieBreakIdentityHash)
	guarded.MaxClockSkew = 1000
	err := guarded.Join(evil.Entries())
	var skew *ErrClockSkew
	if !errors.As(err, &skew) {
		t.Fatalf("guarded log must reject far-future clocks, got %v", err)
	}
	if skew.EntryClock <= skew.LocalClock {
		t.Fatal("skew error fields inconsistent")
	}
}

func TestOrderedTotalOrderConverges(t *testing.T) {
	// Same entries joined in different orders linearize identically with
	// the identity+hash tie break.
	a := NewLog("A", TieBreakIdentityHash)
	b := NewLog("B", TieBreakIdentityHash)
	c := NewLog("C", TieBreakIdentityHash)
	a.Append("pa")
	b.Append("pb")
	c.Append("pc") // all three have clock=1: tie-break territory
	l1 := NewLog("X", TieBreakIdentityHash)
	l2 := NewLog("Y", TieBreakIdentityHash)
	for _, src := range []*Log{a, b, c} {
		if err := l1.Join(src.Entries()); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []*Log{c, a, b} {
		if err := l2.Join(src.Entries()); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(l1.Payloads(), l2.Payloads()) {
		t.Fatalf("total order diverged: %v vs %v", l1.Payloads(), l2.Payloads())
	}
}

func TestGetAndEntriesAreCopies(t *testing.T) {
	l := NewLog("A", TieBreakIdentityHash)
	e := l.Append("x")
	got, ok := l.Get(e.Hash)
	if !ok {
		t.Fatal("Get missed an existing entry")
	}
	got.Payload = "mutated"
	again, _ := l.Get(e.Hash)
	if again.Payload != "x" {
		t.Fatal("Get must return a copy")
	}
	if _, ok := l.Get("nope"); ok {
		t.Fatal("Get of unknown hash")
	}
}

func TestCloneIndependence(t *testing.T) {
	l := NewLog("A", TieBreakIdentityHash)
	l.Append("x")
	cp := l.Clone()
	cp.Append("y")
	if l.Len() != 1 || cp.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", l.Len(), cp.Len())
	}
	if !l.Clone().Equal(l) {
		t.Fatal("clone must equal original")
	}
}

// TestJoinProperty: joining any subsets in any order yields the same entry
// set (join is a semilattice merge).
func TestJoinProperty(t *testing.T) {
	f := func(payloads []string, order uint8) bool {
		if len(payloads) == 0 {
			return true
		}
		if len(payloads) > 6 {
			payloads = payloads[:6]
		}
		writers := []*Log{
			NewLog("A", TieBreakIdentityHash),
			NewLog("B", TieBreakIdentityHash),
		}
		for i, p := range payloads {
			writers[i%2].Append(p)
		}
		x := NewLog("X", TieBreakIdentityHash)
		y := NewLog("Y", TieBreakIdentityHash)
		if err := x.Join(writers[0].Entries()); err != nil {
			return false
		}
		if err := x.Join(writers[1].Entries()); err != nil {
			return false
		}
		if err := y.Join(writers[1].Entries()); err != nil {
			return false
		}
		if err := y.Join(writers[0].Entries()); err != nil {
			return false
		}
		if err := y.Join(writers[0].Entries()); err != nil { // idempotent
			return false
		}
		return x.Equal(y) && reflect.DeepEqual(x.Payloads(), y.Payloads())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
