// Package merkle implements a Merkle-CRDT operation log: a content-
// addressed DAG of entries with Lamport clocks, joined by set union, as
// used by the OrbitDB evaluation subject (Sanjuan et al., "Merkle-CRDTs:
// Merkle-DAGs meet CRDTs").
//
// Each entry hashes its payload, Lamport clock, writer identity, and parent
// hashes; the log's heads are the entries no other entry references. Joins
// union the entry sets, so replicas that exchange heads converge to the
// same DAG; a total-order comparator linearizes the DAG for readers.
package merkle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Entry is one immutable node of the Merkle DAG.
type Entry struct {
	// Hash is the content address (hex SHA-256 of the canonical encoding).
	Hash string `json:"hash"`
	// Payload is the opaque operation carried by the entry.
	Payload string `json:"payload"`
	// Clock is the entry's Lamport timestamp.
	Clock uint64 `json:"clock"`
	// Identity names the writer.
	Identity string `json:"identity"`
	// Parents are the hashes of the log heads at append time.
	Parents []string `json:"parents,omitempty"`
}

// canonical returns the deterministic byte encoding that is hashed.
func (e *Entry) canonical() string {
	parents := make([]string, len(e.Parents))
	copy(parents, e.Parents)
	sort.Strings(parents)
	return fmt.Sprintf("payload=%q clock=%d id=%q parents=%s",
		e.Payload, e.Clock, e.Identity, strings.Join(parents, ","))
}

// ComputeHash returns the content address of the entry's current fields.
func (e *Entry) ComputeHash() string {
	sum := sha256.Sum256([]byte(e.canonical()))
	return hex.EncodeToString(sum[:])
}

// Verify reports whether the stored hash matches the entry contents — the
// integrity check that OrbitDB issue #583 ("head hash didn't match the
// contents") violates.
func (e *Entry) Verify() bool {
	return e.Hash == e.ComputeHash()
}

// TieBreak selects the total-order comparator used to linearize entries
// with equal clocks.
type TieBreak int

// Comparator modes.
const (
	// TieBreakIdentityHash orders equal-clock entries by identity, then by
	// hash — a total order (the fix for OrbitDB issue #513).
	TieBreakIdentityHash TieBreak = iota + 1
	// TieBreakIdentityOnly orders equal-clock entries by identity only;
	// entries with the same clock AND identity have no defined order and
	// fall back to internal arrival order — the defect of OrbitDB issue
	// #513 (arrival order is deterministic for a given history but varies
	// with the interleaving, which is exactly the reported hazard).
	TieBreakIdentityOnly
)

// Log is a replica's view of the Merkle-CRDT log.
type Log struct {
	identity string
	clock    uint64
	entries  map[string]*Entry
	tie      TieBreak
	// arrival records the order entries entered this replica's DAG; the
	// TieBreakIdentityOnly comparator falls back to it.
	arrival        map[string]int
	arrivalCounter int
	// MaxClockSkew, when non-zero, rejects joined entries whose clock runs
	// further than this ahead of the local clock. A zero value accepts any
	// clock — the behaviour that lets OrbitDB issue #512 ("Lamport clock
	// set far into future making db progress halt") happen.
	MaxClockSkew uint64
}

// NewLog returns an empty log for a writer identity.
func NewLog(identity string, tie TieBreak) *Log {
	return &Log{
		identity: identity,
		entries:  make(map[string]*Entry),
		tie:      tie,
		arrival:  make(map[string]int),
	}
}

// Identity returns the writer identity.
func (l *Log) Identity() string { return l.identity }

// Clock returns the current Lamport clock.
func (l *Log) Clock() uint64 { return l.clock }

// Len returns the number of entries in the DAG.
func (l *Log) Len() int { return len(l.entries) }

// Append adds a new entry with the given payload on top of the current
// heads and returns it.
func (l *Log) Append(payload string) *Entry {
	l.clock++
	e := &Entry{
		Payload:  payload,
		Clock:    l.clock,
		Identity: l.identity,
		Parents:  l.Heads(),
	}
	e.Hash = e.ComputeHash()
	l.entries[e.Hash] = e
	l.arrivalCounter++
	l.arrival[e.Hash] = l.arrivalCounter
	return e
}

// Heads returns the hashes of entries not referenced as anyone's parent,
// sorted for determinism.
func (l *Log) Heads() []string {
	referenced := make(map[string]bool)
	for _, e := range l.entries {
		for _, p := range e.Parents {
			referenced[p] = true
		}
	}
	var heads []string
	for h := range l.entries {
		if !referenced[h] {
			heads = append(heads, h)
		}
	}
	sort.Strings(heads)
	return heads
}

// ErrClockSkew reports a joined entry rejected by the MaxClockSkew guard.
type ErrClockSkew struct {
	EntryClock uint64
	LocalClock uint64
	Limit      uint64
}

func (e *ErrClockSkew) Error() string {
	return fmt.Sprintf("merkle: entry clock %d exceeds local clock %d by more than %d",
		e.EntryClock, e.LocalClock, e.Limit)
}

// Join merges entries from another replica. Entries failing hash
// verification are rejected; when MaxClockSkew is set, far-future clocks
// are rejected too. The local clock witnesses every accepted entry.
func (l *Log) Join(entries []*Entry) error {
	for _, e := range entries {
		if !e.Verify() {
			return fmt.Errorf("merkle: join rejected entry %s: hash mismatch", shortHash(e.Hash))
		}
		if l.MaxClockSkew > 0 && e.Clock > l.clock+l.MaxClockSkew {
			return &ErrClockSkew{EntryClock: e.Clock, LocalClock: l.clock, Limit: l.MaxClockSkew}
		}
	}
	for _, e := range entries {
		if _, ok := l.entries[e.Hash]; ok {
			continue
		}
		cp := *e
		cp.Parents = append([]string(nil), e.Parents...)
		l.entries[e.Hash] = &cp
		l.arrivalCounter++
		l.arrival[e.Hash] = l.arrivalCounter
		if e.Clock > l.clock {
			l.clock = e.Clock
		}
	}
	return nil
}

// Entries returns every entry (copy) in local arrival order — the order a
// peer streams its log to others, which keeps replay deterministic.
func (l *Log) Entries() []*Entry {
	out := make([]*Entry, 0, len(l.entries))
	for _, e := range l.entries {
		cp := *e
		cp.Parents = append([]string(nil), e.Parents...)
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool {
		return l.arrival[out[i].Hash] < l.arrival[out[j].Hash]
	})
	return out
}

// Get returns the entry with the given hash.
func (l *Log) Get(hash string) (*Entry, bool) {
	e, ok := l.entries[hash]
	if !ok {
		return nil, false
	}
	cp := *e
	cp.Parents = append([]string(nil), e.Parents...)
	return &cp, true
}

// Ordered returns the entries linearized by (clock, tie-break). With
// TieBreakIdentityOnly, entries sharing clock and identity order by local
// arrival — the OrbitDB #513 defect: replicas that received them in
// different orders disagree.
func (l *Log) Ordered() []*Entry {
	out := l.Entries()
	switch l.tie {
	case TieBreakIdentityOnly:
		// Deliberately NOT a total order over entry contents: equal
		// (clock, identity) entries fall back to local arrival order, so
		// two replicas that received them in different orders read the
		// log differently.
		sort.Slice(out, func(i, j int) bool {
			if out[i].Clock != out[j].Clock {
				return out[i].Clock < out[j].Clock
			}
			if out[i].Identity != out[j].Identity {
				return out[i].Identity < out[j].Identity
			}
			return l.arrival[out[i].Hash] < l.arrival[out[j].Hash]
		})
	default:
		sort.Slice(out, func(i, j int) bool {
			if out[i].Clock != out[j].Clock {
				return out[i].Clock < out[j].Clock
			}
			if out[i].Identity != out[j].Identity {
				return out[i].Identity < out[j].Identity
			}
			return out[i].Hash < out[j].Hash
		})
	}
	return out
}

// Payloads returns the linearized payloads.
func (l *Log) Payloads() []string {
	ordered := l.Ordered()
	out := make([]string, len(ordered))
	for i, e := range ordered {
		out[i] = e.Payload
	}
	return out
}

// Clone returns an independent copy of the log.
func (l *Log) Clone() *Log {
	out := NewLog(l.identity, l.tie)
	out.clock = l.clock
	out.MaxClockSkew = l.MaxClockSkew
	out.arrivalCounter = l.arrivalCounter
	for h, e := range l.entries {
		cp := *e
		cp.Parents = append([]string(nil), e.Parents...)
		out.entries[h] = &cp
		out.arrival[h] = l.arrival[h]
	}
	return out
}

// Equal reports whether two logs hold the same entry set.
func (l *Log) Equal(other *Log) bool {
	if len(l.entries) != len(other.entries) {
		return false
	}
	for h := range l.entries {
		if _, ok := other.entries[h]; !ok {
			return false
		}
	}
	return true
}

func shortHash(h string) string {
	if len(h) > 8 {
		return h[:8]
	}
	return h
}
