package prune

import (
	"math/big"
	"testing"
	"testing/quick"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

func mustLog(t *testing.T, evs []event.Event) *event.Log {
	t.Helper()
	log, err := event.NewLog(evs)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// townReportLog reproduces the motivating example of paper §2.3: seven
// events across residents A and B plus the municipality M.
//
//	0 ev_I       update@A    add(otb)
//	1 sync(I)    exec_sync   A→B
//	2 ev_II      update@B    add(ph)
//	3 sync(II)   exec_sync   B→A
//	4 ev_III     update@B    remove(otb)
//	5 sync(III)  exec_sync   B→A
//	6 ev_IV      sync_req    A→M (transmit problem set)
func townReportLog(t *testing.T) *event.Log {
	t.Helper()
	return mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"otb"}},
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B", Carries: []event.ID{0}},
		{Kind: event.Update, Replica: "B", Op: "set.add", Args: []string{"ph"}},
		{Kind: event.SyncExec, Replica: "A", From: "B", To: "A", Carries: []event.ID{2}},
		{Kind: event.Update, Replica: "B", Op: "set.remove", Args: []string{"otb"}},
		{Kind: event.SyncExec, Replica: "A", From: "B", To: "A", Carries: []event.ID{4}},
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "M", Op: "transmit"},
	})
}

func townReportConfig() Config {
	return Config{
		Grouping:       GroupSpec{Extra: [][]event.ID{{0, 1}, {2, 3}, {4, 5}}},
		TestedReplicas: []event.ReplicaID{"M"},
	}
}

// TestMotivatingExampleCounts checks the paper's headline numbers for §2.3
// and §3.1: 7 events → 5040 raw interleavings, grouping → 4! = 24,
// replica-specific → 19, a 265× reduction.
func TestMotivatingExampleCounts(t *testing.T) {
	log := townReportLog(t)
	if got := interleave.Factorial(log.Len()); got.Cmp(big.NewInt(5040)) != 0 {
		t.Fatalf("raw space = %s, want 5040", got)
	}
	space, err := GroupedSpace(log, townReportConfig().Grouping)
	if err != nil {
		t.Fatal(err)
	}
	if space.NumUnits() != 4 {
		t.Fatalf("grouping produced %d units, want 4", space.NumUnits())
	}
	if space.Size().Cmp(big.NewInt(24)) != 0 {
		t.Fatalf("grouped space = %s, want 24", space.Size())
	}
	res, err := CountPruned(log, townReportConfig(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surviving.Cmp(big.NewInt(19)) != 0 {
		t.Fatalf("pruned interleavings = %s, want 19 (paper §3.1)", res.Surviving)
	}
	// 5040/19 = 265 (floor), the paper's reduction claim.
	if red := 5040 / 19; red != 265 {
		t.Fatalf("reduction = %d, want 265", red)
	}
}

// TestMotivatingExampleExplorer verifies the lazy explorer yields exactly
// the 19 surviving interleavings, all distinct, each a permutation of all
// seven events.
func TestMotivatingExampleExplorer(t *testing.T) {
	log := townReportLog(t)
	ex, err := NewExplorer(log, townReportConfig())
	if err != nil {
		t.Fatal(err)
	}
	ils := interleave.Collect(ex, 0)
	if len(ils) != 19 {
		t.Fatalf("explorer yielded %d interleavings, want 19", len(ils))
	}
	seen := map[string]bool{}
	for _, il := range ils {
		if len(il) != 7 {
			t.Fatalf("interleaving %v has %d events, want 7", il, len(il))
		}
		if seen[il.Key()] {
			t.Fatalf("duplicate interleaving %v", il)
		}
		seen[il.Key()] = true
	}
}

// TestEventGroupingFigure3 reproduces the paper's Figure 3: eight events
// with two sync_req/exec_sync pairs group into six units, reducing the
// space 8!/6! = 56 times.
func TestEventGroupingFigure3(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "u1"},             // ev1
		{Kind: event.Update, Replica: "A", Op: "u2"},             // ev2
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"}, // ev3
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"}, // ev4
		{Kind: event.Update, Replica: "B", Op: "u5"},             // ev5
		{Kind: event.Update, Replica: "B", Op: "u6"},             // ev6
		{Kind: event.SyncSend, Replica: "B", From: "B", To: "A"}, // ev7
		{Kind: event.SyncExec, Replica: "A", From: "B", To: "A"}, // ev8
	})
	units, err := Group(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 6 {
		t.Fatalf("grouping produced %d units, want 6", len(units))
	}
	raw := interleave.Factorial(8)
	grouped := interleave.Factorial(6)
	factor := new(big.Int).Div(raw, grouped)
	if factor.Cmp(big.NewInt(56)) != 0 {
		t.Fatalf("reduction factor = %s, want 56", factor)
	}
}

// TestReplicaSpecificFigure4 reproduces Figure 4: with four events at
// replica A unable to impact tested replica B once they trail A's last sync
// to B, their 4! orderings merge, pruning 4!−1 = 23 interleavings from the
// affected classes.
func TestReplicaSpecificFigure4(t *testing.T) {
	// Unit alphabet: one sync pair A→B (impacts B), four A-local updates.
	log := mustLog(t, []event.Event{
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"}, // 0
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"}, // 1
		{Kind: event.Update, Replica: "A", Op: "p"},              // 2
		{Kind: event.Update, Replica: "A", Op: "q"},              // 3
		{Kind: event.Update, Replica: "A", Op: "r"},              // 4
		{Kind: event.Update, Replica: "A", Op: "s"},              // 5
	})
	space, err := GroupedSpace(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if space.NumUnits() != 5 {
		t.Fatalf("units = %d, want 5", space.NumUnits())
	}
	filter := NewReplicaSpecific(space, "B")
	res := interleave.Count(space, []interleave.Filter{filter}, 0, 1)
	// 5! = 120 total. Classes where all four A-updates trail the sync pair:
	// 4! = 24 merge into 1, pruning 23.
	want := big.NewInt(120 - 23)
	if res.Surviving.Cmp(want) != 0 {
		t.Fatalf("surviving = %s, want %s (pruned 23, Figure 4)", res.Surviving, want)
	}
}

// TestIndependenceFigure5 reproduces Figure 5: three mutually independent
// list updates merge their 3! orderings into one, pruning 5.
func TestIndependenceFigure5(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "list.set", Args: []string{"idxA"}},
		{Kind: event.Update, Replica: "B", Op: "list.set", Args: []string{"idxB"}},
		{Kind: event.Update, Replica: "C", Op: "list.set", Args: []string{"idxC"}},
	})
	space, err := GroupedSpace(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewIndependence(space, []event.ID{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := interleave.Count(space, []interleave.Filter{f}, 0, 1)
	if res.Surviving.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("surviving = %s, want 1 (3! merged, pruning 5, Figure 5)", res.Surviving)
	}
}

// TestIndependenceInterference checks that an interfering event between
// independent events blocks the merge.
func TestIndependenceInterference(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "ind1"},  // 0 independent
		{Kind: event.Update, Replica: "B", Op: "ind2"},  // 1 independent
		{Kind: event.Update, Replica: "C", Op: "other"}, // 2 interferes
	})
	space, err := GroupedSpace(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewIndependence(space, []event.ID{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := interleave.Count(space, []interleave.Filter{f}, 0, 1)
	// 3! = 6 total. Classes merge only when 0 and 1 are adjacent (no
	// interfering unit between): [0 1 2]/[1 0 2], [2 0 1]/[2 1 0] → merge 2
	// pairs, pruning 2. With the interferer in the middle ([0 2 1], [1 2 0])
	// no merge.
	if res.Surviving.Cmp(big.NewInt(4)) != 0 {
		t.Fatalf("surviving = %s, want 4", res.Surviving)
	}
	// Declaring event 2 non-interfering re-enables the full merge: 3! → 1
	// class for orderings of {0,1} with 2 anywhere between... each distinct
	// placement of 2 yields one canonical representative: 3 survive.
	f2, err := NewIndependence(space, []event.ID{0, 1}, []event.ID{2})
	if err != nil {
		t.Fatal(err)
	}
	res2 := interleave.Count(space, []interleave.Filter{f2}, 0, 1)
	if res2.Surviving.Cmp(big.NewInt(3)) != 0 {
		t.Fatalf("surviving with inert interferer = %s, want 3", res2.Surviving)
	}
}

// TestFailedOpsFigure6 reproduces Figure 6: after predecessors fill the
// set, the three doomed ops remove(ε), add(α), remove(σ) merge their 3!
// orderings, pruning 5 per class.
func TestFailedOpsFigure6(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"alpha"}},    // 0 pred
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"beta"}},     // 1 pred
		{Kind: event.Update, Replica: "B", Op: "set.remove", Args: []string{"eps"}},   // 2 fails
		{Kind: event.Update, Replica: "B", Op: "set.add", Args: []string{"alpha"}},    // 3 fails
		{Kind: event.Update, Replica: "B", Op: "set.remove", Args: []string{"sigma"}}, // 4 fails
	})
	space, err := GroupedSpace(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFailedOps(space, FailedOpsSpec{
		Predecessors: []event.ID{0, 1},
		Successors:   []event.ID{2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := interleave.Count(space, []interleave.Filter{f}, 0, 1)
	// 5! = 120. Orderings with both preds before all three successors:
	// choose positions... preds occupy first two slots in some order (2!)
	// and succs the rest (3!): 12 such perms; they merge by successor order
	// (3! → 1): 12 → 2·1 = 2, pruning 10 (two classes × 5, Figure 6's 5 per
	// class).
	want := big.NewInt(120 - 10)
	if res.Surviving.Cmp(want) != 0 {
		t.Fatalf("surviving = %s, want %s", res.Surviving, want)
	}
}

func TestGroupMergesUserAndSyncGroups(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "u"},              // 0
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"}, // 1
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"}, // 2
		{Kind: event.Update, Replica: "B", Op: "v"},              // 3
	})
	// User groups the update with its sync send; the automatic pair (1,2)
	// must merge transitively into one unit {0,1,2}.
	units, err := Group(log, GroupSpec{Extra: [][]event.ID{{0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2", len(units))
	}
	if len(units[0].Events) != 3 || units[0].Events[0] != 0 || units[0].Events[2] != 2 {
		t.Fatalf("merged unit = %v, want [0 1 2]", units[0].Events)
	}
}

func TestGroupValidation(t *testing.T) {
	log := mustLog(t, []event.Event{{Kind: event.Update, Replica: "A"}})
	if _, err := Group(log, GroupSpec{Extra: [][]event.ID{{}}}); err == nil {
		t.Error("empty group must be rejected")
	}
	if _, err := Group(log, GroupSpec{Extra: [][]event.ID{{5}}}); err == nil {
		t.Error("out-of-range group must be rejected")
	}
}

func TestGroupDisableSyncPairs(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"},
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"},
	})
	units, err := Group(log, GroupSpec{DisableSyncPairs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("units = %d, want 2 with sync pairing disabled", len(units))
	}
}

// TestPruningSoundness is the core safety property: every interleaving the
// pruned explorer drops must be equivalent (under the declared constraints)
// to some surviving interleaving. We verify the structural half on the
// motivating example: every dropped interleaving maps, by the canonical
// reordering the rules define, onto a surviving one.
func TestPruningSoundness(t *testing.T) {
	log := townReportLog(t)
	cfg := townReportConfig()
	space, filters, err := Build(log, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate all 24 grouped permutations; partition into surviving and
	// dropped.
	surviving := map[string]bool{}
	var dropped []interleave.Interleaving
	dfs := interleave.NewDFS(space)
	for {
		il, ok := dfs.Next()
		if !ok {
			break
		}
		perm := permOf(space, il)
		if canonical(perm, filters) {
			surviving[il.Key()] = true
		} else {
			dropped = append(dropped, il)
		}
	}
	if len(surviving) != 19 {
		t.Fatalf("surviving = %d, want 19", len(surviving))
	}
	if len(dropped) != 5 {
		t.Fatalf("dropped = %d, want 5", len(dropped))
	}
	// Every dropped interleaving has ev_IV (event 6) first; its canonical
	// representative (free suffix ascending) must be in the surviving set.
	for _, il := range dropped {
		if il[0] != 6 {
			t.Fatalf("dropped interleaving %v does not start with ev_IV", il)
		}
	}
	canon := interleave.Interleaving{6, 0, 1, 2, 3, 4, 5}
	if !surviving[canon.Key()] {
		t.Fatalf("canonical representative %v missing from survivors", canon)
	}
}

func permOf(space *interleave.Space, il interleave.Interleaving) []int {
	var perm []int
	seen := map[int]bool{}
	for _, id := range il {
		u := space.UnitOf(id)
		if !seen[u] {
			seen[u] = true
			perm = append(perm, u)
		}
	}
	return perm
}

func canonical(perm []int, filters []interleave.Filter) bool {
	for _, f := range filters {
		if ok, _ := f.Canonical(perm); !ok {
			return false
		}
	}
	return true
}

// TestFiltersAcceptExactlyOnePerClass is a property test: for random small
// spaces with a random independent set, the Independence filter accepts at
// least one permutation out of every full-space enumeration class.
func TestFiltersAcceptExactlyOnePerClass(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed%3) + 3 // 3..5 units
		evs := make([]event.Event, n)
		for i := range evs {
			evs[i] = event.Event{Kind: event.Update, Replica: event.ReplicaID(string(rune('A' + i)))}
		}
		log, err := event.NewLog(evs)
		if err != nil {
			return false
		}
		space := interleave.NewSpace(log)
		ind := []event.ID{0, 1}
		filter, err := NewIndependence(space, ind, nil)
		if err != nil {
			return false
		}
		// Each equivalence class must keep >= 1 representative: count
		// survivors and verify every survivor is genuinely canonical and
		// total classes <= survivors <= n!.
		res := interleave.Count(space, []interleave.Filter{filter}, 0, int64(seed))
		return res.Surviving.Sign() > 0 && res.Surviving.Cmp(space.Size()) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalFiltersMatchBruteForce pins the incremental
// CanonicalFrom path — what the pruned DFS explorer drives via its
// dirty-index tracking — against the brute-force path of
// interleave/count.go: stateless Canonical applied to every permutation
// of the space. The enumerations must be identical in content and order
// for each filter alone and for all of them chained, and the explorer's
// yield count must equal Count's exact enumeration.
func TestIncrementalFiltersMatchBruteForce(t *testing.T) {
	// Eight events exercising all three rules at once: two predecessor
	// adds at A, a sync pair A→B (grouping into one unit), two doomed ops
	// at B, and two mutually independent updates at C.
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"alpha"}},  // 0 pred
		{Kind: event.Update, Replica: "A", Op: "set.add", Args: []string{"beta"}},   // 1 pred
		{Kind: event.SyncSend, Replica: "A", From: "A", To: "B"},                    // 2 ┐ one unit,
		{Kind: event.SyncExec, Replica: "B", From: "A", To: "B"},                    // 3 ┘ impacts B
		{Kind: event.Update, Replica: "B", Op: "set.remove", Args: []string{"eps"}}, // 4 doomed
		{Kind: event.Update, Replica: "B", Op: "set.add", Args: []string{"alpha"}},  // 5 doomed
		{Kind: event.Update, Replica: "C", Op: "list.set", Args: []string{"idx1"}},  // 6 independent
		{Kind: event.Update, Replica: "C", Op: "list.set", Args: []string{"idx2"}},  // 7 independent
	})
	space, err := GroupedSpace(log, GroupSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if space.NumUnits() != 7 {
		t.Fatalf("units = %d, want 7", space.NumUnits())
	}
	// Filter constructors; each case builds fresh instances for the
	// incremental explorer and for the stateless oracle, so incremental
	// state can never leak between the two paths.
	mk := map[string]func() interleave.Filter{
		"replica-specific": func() interleave.Filter {
			return NewReplicaSpecific(space, "B")
		},
		"independence": func() interleave.Filter {
			f, err := NewIndependence(space, []event.ID{6, 7}, nil)
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
		"failed-ops": func() interleave.Filter {
			f, err := NewFailedOps(space, FailedOpsSpec{
				Predecessors: []event.ID{0, 1},
				Successors:   []event.ID{4, 5},
			})
			if err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
	cases := map[string][]string{
		"replica-specific": {"replica-specific"},
		"independence":     {"independence"},
		"failed-ops":       {"failed-ops"},
		"chained":          {"replica-specific", "independence", "failed-ops"},
	}
	for name, chain := range cases {
		t.Run(name, func(t *testing.T) {
			build := func() []interleave.Filter {
				out := make([]interleave.Filter, len(chain))
				for i, c := range chain {
					out[i] = mk[c]()
					if _, ok := out[i].(interleave.IncrementalFilter); !ok {
						t.Fatalf("%s does not implement IncrementalFilter", c)
					}
				}
				return out
			}
			// Brute force: full DFS enumeration, stateless Canonical.
			oracle := build()
			var want []string
			dfs := interleave.NewDFS(space)
			for {
				il, ok := dfs.Next()
				if !ok {
					break
				}
				if canonical(dfs.Perm(), oracle) {
					want = append(want, il.Key())
				}
			}
			// Incremental: the pruned explorer's CanonicalFrom path.
			var got []string
			for _, il := range interleave.Collect(interleave.NewPruned(space, build()...), 0) {
				got = append(got, il.Key())
			}
			if len(got) != len(want) {
				t.Fatalf("incremental explorer yielded %d interleavings, brute force %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("enumeration diverges at %d: incremental %s, brute force %s", i, got[i], want[i])
				}
			}
			// Vacuousness guards: the filters must actually prune, and the
			// count must agree with count.go's exact enumeration.
			total := space.Size()
			if int64(len(want)) >= total.Int64() || len(want) == 0 {
				t.Fatalf("pin is vacuous: %d of %s survive", len(want), total)
			}
			res := interleave.Count(space, build(), 0, 1)
			if res.Surviving.Cmp(big.NewInt(int64(len(want)))) != 0 {
				t.Fatalf("Count = %s, explorer = %d", res.Surviving, len(want))
			}
		})
	}
}

func TestConfigMerge(t *testing.T) {
	a := Config{TestedReplicas: []event.ReplicaID{"A"}}
	b := Config{
		Grouping:        GroupSpec{Extra: [][]event.ID{{0, 1}}},
		IndependentSets: []IndependenceSpec{{Events: []event.ID{2, 3}}},
		FailedOps:       []FailedOpsSpec{{Predecessors: []event.ID{0}, Successors: []event.ID{1}}},
	}
	a.Merge(b)
	if len(a.Grouping.Extra) != 1 || len(a.IndependentSets) != 1 || len(a.FailedOps) != 1 || len(a.TestedReplicas) != 1 {
		t.Fatalf("merge lost fields: %+v", a)
	}
}

func TestFailedOpsValidation(t *testing.T) {
	log := mustLog(t, []event.Event{
		{Kind: event.Update, Replica: "A"},
		{Kind: event.Update, Replica: "B"},
	})
	space := interleave.NewSpace(log)
	if _, err := NewFailedOps(space, FailedOpsSpec{Predecessors: []event.ID{0}, Successors: []event.ID{0}}); err == nil {
		t.Error("event in both roles must be rejected")
	}
	if _, err := NewFailedOps(space, FailedOpsSpec{Successors: []event.ID{9}}); err == nil {
		t.Error("unknown successor must be rejected")
	}
}

func TestAblateStages(t *testing.T) {
	log := townReportLog(t)
	cfg := townReportConfig()
	results, err := Ablate(log, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("ablation stages = %d, want 2 (grouping + replica-specific)", len(results))
	}
	if results[0].Stage != StageGrouping {
		t.Fatalf("first stage = %s", results[0].Stage)
	}
	// Grouping alone: 5040/24 = 210×.
	if results[0].Reduction < 209 || results[0].Reduction > 211 {
		t.Fatalf("grouping reduction = %f, want 210", results[0].Reduction)
	}
	// Replica-specific on grouped space: 5040/19 ≈ 265×.
	if results[1].Reduction < 264 || results[1].Reduction > 266 {
		t.Fatalf("replica-specific reduction = %f, want ≈265", results[1].Reduction)
	}
}
