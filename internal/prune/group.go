// Package prune implements ER-π's four pruning algorithms (paper §3):
//
//  1. Event Grouping (Algorithm 1) — sync_req/exec_sync pairs and
//     user-specified groups become single schedulable units.
//  2. Replica-Specific (Algorithm 2) — orderings of the complete trailing
//     block of units that cannot impact the tested replica are merged.
//  3. Event Independence (Algorithm 3) — orderings of developer-declared
//     mutually independent events are merged when no interfering event
//     lies between them.
//  4. Failed Ops (Algorithm 4) — orderings of operations doomed to fail
//     (because conflicting predecessors already executed) are merged.
//
// Grouping transforms the event list into units; the other three rules are
// interleave.Filter implementations that accept exactly one canonical
// representative per equivalence class of interleavings, so that a lazy
// explorer never materializes the merged duplicates.
package prune

import (
	"fmt"
	"sort"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// GroupSpec configures Event Grouping (Algorithm 1).
type GroupSpec struct {
	// DisableSyncPairs turns off the automatic pairing of sync_req with the
	// matching exec_sync in the same (sender, receiver) pair.
	DisableSyncPairs bool
	// Extra lists developer-specified groups (paper: spec_group); each
	// inner slice is a set of event IDs to fuse into one unit. Groups that
	// share events with each other or with an automatic sync pair are
	// merged transitively.
	Extra [][]event.ID
}

// Group applies Event Grouping to a recorded log and returns the unit
// partition. Events inside a unit keep their recording order.
func Group(log *event.Log, spec GroupSpec) ([]interleave.Unit, error) {
	uf := newUnionFind(log.Len())
	if !spec.DisableSyncPairs {
		for _, pair := range log.SyncPairs() {
			uf.union(int(pair[0]), int(pair[1]))
		}
	}
	for _, g := range spec.Extra {
		if len(g) == 0 {
			return nil, fmt.Errorf("prune: empty user group")
		}
		for _, id := range g {
			if int(id) < 0 || int(id) >= log.Len() {
				return nil, fmt.Errorf("prune: group references unknown event %d", id)
			}
			uf.union(int(g[0]), int(id))
		}
	}
	members := make(map[int][]event.ID)
	for i := 0; i < log.Len(); i++ {
		root := uf.find(i)
		members[root] = append(members[root], event.ID(i))
	}
	roots := make([]int, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	units := make([]interleave.Unit, 0, len(roots))
	for _, root := range roots {
		ids := members[root]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		units = append(units, interleave.Unit{Events: ids})
	}
	// Deterministic unit order: by first member event.
	sort.Slice(units, func(i, j int) bool { return units[i].Events[0] < units[j].Events[0] })
	return units, nil
}

// GroupedSpace is a convenience combining Group and NewGroupedSpace.
func GroupedSpace(log *event.Log, spec GroupSpec) (*interleave.Space, error) {
	units, err := Group(log, spec)
	if err != nil {
		return nil, err
	}
	return interleave.NewGroupedSpace(log, units)
}

type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Smaller root wins, keeping unit identity anchored at the earliest
	// member event for deterministic output.
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
