package prune

import (
	"fmt"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// UnitImpacts reports whether unit ui can impact the state observed at
// replica r: it contains an event executing at r, or a synchronization
// (send or exec) delivering into r. This is the impact notion of
// replica-specific pruning — a transmission *toward* r determines what r
// receives even though it executes at the sender.
func UnitImpacts(space *interleave.Space, ui int, r event.ReplicaID) bool {
	for _, id := range space.Units()[ui].Events {
		ev := space.Log().Event(id)
		if ev.Replica == r {
			return true
		}
		if ev.IsSync() && ev.To == r {
			return true
		}
	}
	return false
}

// ReplicaSpecific implements Algorithm 2. For a tested replica r, consider
// an interleaving whose trailing block — everything after the last unit
// that impacts r — consists of ALL the units that cannot impact r. Those
// trailing units can no longer influence anything observable at r, so all
// orderings of the block are equivalent; the filter accepts only the
// representative with the block in ascending unit order.
//
// This is exactly the situation of the paper's Figure 4 (replica A's four
// events after its last sync to B merge, pruning 4!−1 = 23) and of the
// motivating example ("ev_IV first" merges 3! orders, 24 → 19).
type ReplicaSpecific struct {
	impacting []bool // per unit index
	freeCount int
	replica   event.ReplicaID
}

var _ interleave.Filter = (*ReplicaSpecific)(nil)

// NewReplicaSpecific builds the filter for a tested replica.
func NewReplicaSpecific(space *interleave.Space, r event.ReplicaID) *ReplicaSpecific {
	n := space.NumUnits()
	f := &ReplicaSpecific{impacting: make([]bool, n), replica: r}
	for ui := 0; ui < n; ui++ {
		f.impacting[ui] = UnitImpacts(space, ui, r)
		if !f.impacting[ui] {
			f.freeCount++
		}
	}
	return f
}

// Name implements interleave.Filter.
func (f *ReplicaSpecific) Name() string {
	return fmt.Sprintf("replica-specific(%s)", f.replica)
}

// Canonical implements interleave.Filter.
func (f *ReplicaSpecific) Canonical(perm []int) (bool, int) {
	if f.freeCount == 0 {
		return true, 0
	}
	// Locate the last impacting unit.
	last := -1
	for i, u := range perm {
		if f.impacting[u] {
			last = i
		}
	}
	if len(perm)-(last+1) != f.freeCount {
		// The trailing block does not contain all free units: not a merged
		// class, the interleaving stands for itself.
		return true, 0
	}
	// Canonical representative: free suffix ascending by unit index.
	for i := last + 2; i < len(perm); i++ {
		if perm[i-1] > perm[i] {
			return false, i + 1
		}
	}
	return true, 0
}

// Independence implements Algorithm 3 for one developer-declared set of
// mutually independent events. When no interfering unit lies between the
// first and the last of the independent units, permuting the independent
// units among their positions cannot change any outcome, so the filter
// accepts only the ascending-order representative.
type Independence struct {
	name string
	// member[u] is true for units holding an independent event.
	member []bool
	// inert[u] is true for units known not to interact with the independent
	// set (developer-declared); inert units between independent units do
	// not break the merge.
	inert []bool
}

var _ interleave.Filter = (*Independence)(nil)

// NewIndependence builds the filter. independent and nonInterfering are
// event IDs; a unit is a member if it contains any independent event, and
// inert if all of its events are declared non-interfering.
func NewIndependence(space *interleave.Space, independent, nonInterfering []event.ID) (*Independence, error) {
	n := space.NumUnits()
	f := &Independence{
		name:   fmt.Sprintf("independence(%d events)", len(independent)),
		member: make([]bool, n),
		inert:  make([]bool, n),
	}
	for _, id := range independent {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: independent event %d not in space", id)
		}
		f.member[ui] = true
	}
	inertIDs := make(map[event.ID]bool, len(nonInterfering))
	for _, id := range nonInterfering {
		inertIDs[id] = true
	}
	units := space.Units()
	for ui := range units {
		if f.member[ui] {
			continue
		}
		all := true
		for _, id := range units[ui].Events {
			if !inertIDs[id] {
				all = false
				break
			}
		}
		f.inert[ui] = all && len(units[ui].Events) > 0
	}
	return f, nil
}

// Name implements interleave.Filter.
func (f *Independence) Name() string { return f.name }

// Canonical implements interleave.Filter.
func (f *Independence) Canonical(perm []int) (bool, int) {
	first, last := -1, -1
	for i, u := range perm {
		if f.member[u] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first == last {
		return true, 0
	}
	// Interfering unit between the first and last independent unit keeps
	// the interleaving un-merged.
	for i := first + 1; i < last; i++ {
		u := perm[i]
		if !f.member[u] && !f.inert[u] {
			return true, 0
		}
	}
	// Canonical: independent units in ascending unit order.
	prev := -1
	for i := first; i <= last; i++ {
		u := perm[i]
		if !f.member[u] {
			continue
		}
		if u < prev {
			return false, 0
		}
		prev = u
	}
	return true, 0
}

// FailedOpsSpec declares a Failed Ops constraint (Algorithm 4):
// Predecessors are the events whose successful execution dooms every
// Successor to fail (e.g. elements already added to a set make a duplicate
// add and a remove of a missing element fail).
type FailedOpsSpec struct {
	Predecessors []event.ID
	Successors   []event.ID
}

// FailedOps implements Algorithm 4. In interleavings where every
// predecessor occurs before every successor, all successors fail, so
// permutations of the successors among their positions are equivalent; the
// filter accepts only the ascending representative.
type FailedOps struct {
	name string
	pred []bool
	succ []bool
}

var _ interleave.Filter = (*FailedOps)(nil)

// NewFailedOps builds the filter from a spec.
func NewFailedOps(space *interleave.Space, spec FailedOpsSpec) (*FailedOps, error) {
	n := space.NumUnits()
	f := &FailedOps{
		name: fmt.Sprintf("failed-ops(%dp,%ds)", len(spec.Predecessors), len(spec.Successors)),
		pred: make([]bool, n),
		succ: make([]bool, n),
	}
	for _, id := range spec.Predecessors {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: predecessor event %d not in space", id)
		}
		f.pred[ui] = true
	}
	for _, id := range spec.Successors {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: successor event %d not in space", id)
		}
		if f.pred[ui] {
			return nil, fmt.Errorf("prune: event %d is both predecessor and successor", id)
		}
		f.succ[ui] = true
	}
	return f, nil
}

// Name implements interleave.Filter.
func (f *FailedOps) Name() string { return f.name }

// Canonical implements interleave.Filter.
func (f *FailedOps) Canonical(perm []int) (bool, int) {
	lastPred, firstSucc := -1, -1
	for i, u := range perm {
		if f.pred[u] {
			lastPred = i
		}
		if f.succ[u] && firstSucc < 0 {
			firstSucc = i
		}
	}
	if firstSucc < 0 || lastPred < 0 || lastPred > firstSucc {
		// Not every predecessor precedes every successor: the successors
		// are not uniformly doomed, no merge.
		return true, 0
	}
	// Canonical: successor units ascending.
	prev := -1
	for _, u := range perm {
		if !f.succ[u] {
			continue
		}
		if u < prev {
			return false, 0
		}
		prev = u
	}
	return true, 0
}
