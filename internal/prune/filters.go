package prune

import (
	"fmt"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// UnitImpacts reports whether unit ui can impact the state observed at
// replica r: it contains an event executing at r, or a synchronization
// (send or exec) delivering into r. This is the impact notion of
// replica-specific pruning — a transmission *toward* r determines what r
// receives even though it executes at the sender.
func UnitImpacts(space *interleave.Space, ui int, r event.ReplicaID) bool {
	for _, id := range space.Units()[ui].Events {
		ev := space.Log().Event(id)
		if ev.Replica == r {
			return true
		}
		if ev.IsSync() && ev.To == r {
			return true
		}
	}
	return false
}

// ReplicaSpecific implements Algorithm 2. For a tested replica r, consider
// an interleaving whose trailing block — everything after the last unit
// that impacts r — consists of ALL the units that cannot impact r. Those
// trailing units can no longer influence anything observable at r, so all
// orderings of the block are equivalent; the filter accepts only the
// representative with the block in ascending unit order.
//
// This is exactly the situation of the paper's Figure 4 (replica A's four
// events after its last sync to B merge, pruning 4!−1 = 23) and of the
// motivating example ("ev_IV first" merges 3! orders, 24 → 19).
type ReplicaSpecific struct {
	impacting []bool // per unit index
	freeCount int
	replica   event.ReplicaID

	// Incremental state for CanonicalFrom: prefix scans over the most
	// recently evaluated permutation. Entry i depends only on perm[:i+1],
	// so when the explorer reports perm[:from] unchanged, entries below
	// from are still valid.
	lastImp  []int // last position whose unit impacts the replica, -1 if none
	lastDesc []int // last descent position j (perm[j-1] > perm[j]), 0 if none
}

var _ interleave.Filter = (*ReplicaSpecific)(nil)
var _ interleave.IncrementalFilter = (*ReplicaSpecific)(nil)

// NewReplicaSpecific builds the filter for a tested replica.
func NewReplicaSpecific(space *interleave.Space, r event.ReplicaID) *ReplicaSpecific {
	n := space.NumUnits()
	f := &ReplicaSpecific{impacting: make([]bool, n), replica: r}
	for ui := 0; ui < n; ui++ {
		f.impacting[ui] = UnitImpacts(space, ui, r)
		if !f.impacting[ui] {
			f.freeCount++
		}
	}
	return f
}

// Name implements interleave.Filter.
func (f *ReplicaSpecific) Name() string {
	return fmt.Sprintf("replica-specific(%s)", f.replica)
}

// Canonical implements interleave.Filter.
func (f *ReplicaSpecific) Canonical(perm []int) (bool, int) {
	if f.freeCount == 0 {
		return true, 0
	}
	// Locate the last impacting unit.
	last := -1
	for i, u := range perm {
		if f.impacting[u] {
			last = i
		}
	}
	if len(perm)-(last+1) != f.freeCount {
		// The trailing block does not contain all free units: not a merged
		// class, the interleaving stands for itself.
		return true, 0
	}
	// Canonical representative: free suffix ascending by unit index.
	for i := last + 2; i < len(perm); i++ {
		if perm[i-1] > perm[i] {
			return false, i + 1
		}
	}
	return true, 0
}

// CanonicalFrom implements interleave.IncrementalFilter: identical to
// Canonical, but reuses the prefix scans of the previous call for
// positions below from.
func (f *ReplicaSpecific) CanonicalFrom(perm []int, from int) (bool, int) {
	if f.freeCount == 0 || len(perm) == 0 {
		return true, 0
	}
	n := len(perm)
	if f.lastImp == nil {
		f.lastImp = make([]int, n)
		f.lastDesc = make([]int, n)
		from = 0
	}
	if from > n {
		from = n
	}
	for i := from; i < n; i++ {
		li, ld := -1, 0
		if i > 0 {
			li, ld = f.lastImp[i-1], f.lastDesc[i-1]
		}
		if f.impacting[perm[i]] {
			li = i
		}
		if i > 0 && perm[i-1] > perm[i] {
			ld = i
		}
		f.lastImp[i], f.lastDesc[i] = li, ld
	}
	last := f.lastImp[n-1]
	if n-(last+1) != f.freeCount {
		return true, 0
	}
	// The free suffix is ascending iff no descent occurs past last+1.
	if f.lastDesc[n-1] <= last+1 {
		return true, 0
	}
	// Rejected: report the shortest non-canonical prefix, exactly as
	// Canonical does. The scan is bounded by the free-suffix length.
	for i := last + 2; i < n; i++ {
		if perm[i-1] > perm[i] {
			return false, i + 1
		}
	}
	return true, 0
}

// Independence implements Algorithm 3 for one developer-declared set of
// mutually independent events. When no interfering unit lies between the
// first and the last of the independent units, permuting the independent
// units among their positions cannot change any outcome, so the filter
// accepts only the ascending-order representative.
type Independence struct {
	name string
	// member[u] is true for units holding an independent event.
	member []bool
	// inert[u] is true for units known not to interact with the independent
	// set (developer-declared); inert units between independent units do
	// not break the merge.
	inert []bool

	// Incremental state for CanonicalFrom (prefix scans, entry i depends
	// only on perm[:i+1]).
	firstMem []int  // first member position, -1 if none yet
	lastMem  []int  // last member position, -1 if none yet
	lastBad  []int  // last interfering (non-member, non-inert) position, -1 if none
	memVal   []int  // unit index of the last member seen, -1 if none
	memViol  []bool // a member pair out of ascending unit order exists
}

var _ interleave.Filter = (*Independence)(nil)
var _ interleave.IncrementalFilter = (*Independence)(nil)

// NewIndependence builds the filter. independent and nonInterfering are
// event IDs; a unit is a member if it contains any independent event, and
// inert if all of its events are declared non-interfering.
func NewIndependence(space *interleave.Space, independent, nonInterfering []event.ID) (*Independence, error) {
	n := space.NumUnits()
	f := &Independence{
		name:   fmt.Sprintf("independence(%d events)", len(independent)),
		member: make([]bool, n),
		inert:  make([]bool, n),
	}
	for _, id := range independent {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: independent event %d not in space", id)
		}
		f.member[ui] = true
	}
	inertIDs := make(map[event.ID]bool, len(nonInterfering))
	for _, id := range nonInterfering {
		inertIDs[id] = true
	}
	units := space.Units()
	for ui := range units {
		if f.member[ui] {
			continue
		}
		all := true
		for _, id := range units[ui].Events {
			if !inertIDs[id] {
				all = false
				break
			}
		}
		f.inert[ui] = all && len(units[ui].Events) > 0
	}
	return f, nil
}

// Name implements interleave.Filter.
func (f *Independence) Name() string { return f.name }

// Canonical implements interleave.Filter.
func (f *Independence) Canonical(perm []int) (bool, int) {
	first, last := -1, -1
	for i, u := range perm {
		if f.member[u] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first == last {
		return true, 0
	}
	// Interfering unit between the first and last independent unit keeps
	// the interleaving un-merged.
	for i := first + 1; i < last; i++ {
		u := perm[i]
		if !f.member[u] && !f.inert[u] {
			return true, 0
		}
	}
	// Canonical: independent units in ascending unit order.
	prev := -1
	for i := first; i <= last; i++ {
		u := perm[i]
		if !f.member[u] {
			continue
		}
		if u < prev {
			return false, 0
		}
		prev = u
	}
	return true, 0
}

// CanonicalFrom implements interleave.IncrementalFilter: identical to
// Canonical, but reuses the prefix scans of the previous call for
// positions below from.
func (f *Independence) CanonicalFrom(perm []int, from int) (bool, int) {
	n := len(perm)
	if n == 0 {
		return true, 0
	}
	if f.firstMem == nil {
		f.firstMem = make([]int, n)
		f.lastMem = make([]int, n)
		f.lastBad = make([]int, n)
		f.memVal = make([]int, n)
		f.memViol = make([]bool, n)
		from = 0
	}
	if from > n {
		from = n
	}
	for i := from; i < n; i++ {
		fm, lm, lb, mv := -1, -1, -1, -1
		viol := false
		if i > 0 {
			fm, lm, lb, mv = f.firstMem[i-1], f.lastMem[i-1], f.lastBad[i-1], f.memVal[i-1]
			viol = f.memViol[i-1]
		}
		u := perm[i]
		switch {
		case f.member[u]:
			if fm < 0 {
				fm = i
			}
			lm = i
			if mv >= 0 && u < mv {
				viol = true
			}
			mv = u
		case !f.inert[u]:
			lb = i
		}
		f.firstMem[i], f.lastMem[i], f.lastBad[i], f.memVal[i] = fm, lm, lb, mv
		f.memViol[i] = viol
	}
	first, last := f.firstMem[n-1], f.lastMem[n-1]
	if first < 0 || first == last {
		return true, 0
	}
	// An interfering unit strictly between first and last keeps the
	// interleaving un-merged; position last itself is a member, so any
	// interferer at index <= last and > first sits strictly between.
	if f.lastBad[last] > first {
		return true, 0
	}
	if f.memViol[n-1] {
		return false, 0
	}
	return true, 0
}

// FailedOpsSpec declares a Failed Ops constraint (Algorithm 4):
// Predecessors are the events whose successful execution dooms every
// Successor to fail (e.g. elements already added to a set make a duplicate
// add and a remove of a missing element fail).
type FailedOpsSpec struct {
	Predecessors []event.ID
	Successors   []event.ID
}

// FailedOps implements Algorithm 4. In interleavings where every
// predecessor occurs before every successor, all successors fail, so
// permutations of the successors among their positions are equivalent; the
// filter accepts only the ascending representative.
type FailedOps struct {
	name string
	pred []bool
	succ []bool

	// Incremental state for CanonicalFrom (prefix scans, entry i depends
	// only on perm[:i+1]).
	lastPred  []int  // last predecessor position, -1 if none yet
	firstSucc []int  // first successor position, -1 if none yet
	succVal   []int  // unit index of the last successor seen, -1 if none
	succViol  []bool // a successor pair out of ascending unit order exists
}

var _ interleave.Filter = (*FailedOps)(nil)
var _ interleave.IncrementalFilter = (*FailedOps)(nil)

// NewFailedOps builds the filter from a spec.
func NewFailedOps(space *interleave.Space, spec FailedOpsSpec) (*FailedOps, error) {
	n := space.NumUnits()
	f := &FailedOps{
		name: fmt.Sprintf("failed-ops(%dp,%ds)", len(spec.Predecessors), len(spec.Successors)),
		pred: make([]bool, n),
		succ: make([]bool, n),
	}
	for _, id := range spec.Predecessors {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: predecessor event %d not in space", id)
		}
		f.pred[ui] = true
	}
	for _, id := range spec.Successors {
		ui := space.UnitOf(id)
		if ui < 0 {
			return nil, fmt.Errorf("prune: successor event %d not in space", id)
		}
		if f.pred[ui] {
			return nil, fmt.Errorf("prune: event %d is both predecessor and successor", id)
		}
		f.succ[ui] = true
	}
	return f, nil
}

// Name implements interleave.Filter.
func (f *FailedOps) Name() string { return f.name }

// Canonical implements interleave.Filter.
func (f *FailedOps) Canonical(perm []int) (bool, int) {
	lastPred, firstSucc := -1, -1
	for i, u := range perm {
		if f.pred[u] {
			lastPred = i
		}
		if f.succ[u] && firstSucc < 0 {
			firstSucc = i
		}
	}
	if firstSucc < 0 || lastPred < 0 || lastPred > firstSucc {
		// Not every predecessor precedes every successor: the successors
		// are not uniformly doomed, no merge.
		return true, 0
	}
	// Canonical: successor units ascending.
	prev := -1
	for _, u := range perm {
		if !f.succ[u] {
			continue
		}
		if u < prev {
			return false, 0
		}
		prev = u
	}
	return true, 0
}

// CanonicalFrom implements interleave.IncrementalFilter: identical to
// Canonical, but reuses the prefix scans of the previous call for
// positions below from.
func (f *FailedOps) CanonicalFrom(perm []int, from int) (bool, int) {
	n := len(perm)
	if n == 0 {
		return true, 0
	}
	if f.lastPred == nil {
		f.lastPred = make([]int, n)
		f.firstSucc = make([]int, n)
		f.succVal = make([]int, n)
		f.succViol = make([]bool, n)
		from = 0
	}
	if from > n {
		from = n
	}
	for i := from; i < n; i++ {
		lp, fs, sv := -1, -1, -1
		viol := false
		if i > 0 {
			lp, fs, sv = f.lastPred[i-1], f.firstSucc[i-1], f.succVal[i-1]
			viol = f.succViol[i-1]
		}
		u := perm[i]
		if f.pred[u] {
			lp = i
		}
		if f.succ[u] {
			if fs < 0 {
				fs = i
			}
			if sv >= 0 && u < sv {
				viol = true
			}
			sv = u
		}
		f.lastPred[i], f.firstSucc[i], f.succVal[i] = lp, fs, sv
		f.succViol[i] = viol
	}
	lastPred, firstSucc := f.lastPred[n-1], f.firstSucc[n-1]
	if firstSucc < 0 || lastPred < 0 || lastPred > firstSucc {
		return true, 0
	}
	if f.succViol[n-1] {
		return false, 0
	}
	return true, 0
}
