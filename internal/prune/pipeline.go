package prune

import (
	"fmt"
	"math/big"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/interleave"
)

// IndependenceSpec declares one set of mutually independent events plus the
// events known not to interact with them (Algorithm 3 inputs).
type IndependenceSpec struct {
	Events         []event.ID `json:"events"`
	NonInterfering []event.ID `json:"non_interfering,omitempty"`
}

// Config aggregates every pruning input for a recorded segment. Grouping
// and TestedReplicas come from the initial run (paper §3.1: "for initial
// pruning, ER-π applies Event Grouping and Replica Specific pruning");
// IndependentSets and FailedOps arrive later from developer-provided
// constraints (paper §4.5).
type Config struct {
	Grouping        GroupSpec          `json:"grouping"`
	TestedReplicas  []event.ReplicaID  `json:"tested_replicas,omitempty"`
	IndependentSets []IndependenceSpec `json:"independent_sets,omitempty"`
	FailedOps       []FailedOpsSpec    `json:"failed_ops,omitempty"`
}

// Merge folds additional constraints (e.g. from a constraints file picked
// up at runtime) into the config.
func (c *Config) Merge(other Config) {
	c.Grouping.Extra = append(c.Grouping.Extra, other.Grouping.Extra...)
	c.TestedReplicas = append(c.TestedReplicas, other.TestedReplicas...)
	c.IndependentSets = append(c.IndependentSets, other.IndependentSets...)
	c.FailedOps = append(c.FailedOps, other.FailedOps...)
}

// Build converts a recorded log plus pruning config into the grouped unit
// space and the filter chain for the pruned explorer.
func Build(log *event.Log, cfg Config) (*interleave.Space, []interleave.Filter, error) {
	space, err := GroupedSpace(log, cfg.Grouping)
	if err != nil {
		return nil, nil, fmt.Errorf("prune: grouping: %w", err)
	}
	var filters []interleave.Filter
	for _, r := range cfg.TestedReplicas {
		filters = append(filters, NewReplicaSpecific(space, r))
	}
	for _, spec := range cfg.IndependentSets {
		f, err := NewIndependence(space, spec.Events, spec.NonInterfering)
		if err != nil {
			return nil, nil, err
		}
		filters = append(filters, f)
	}
	for _, spec := range cfg.FailedOps {
		f, err := NewFailedOps(space, spec)
		if err != nil {
			return nil, nil, err
		}
		filters = append(filters, f)
	}
	return space, filters, nil
}

// NewExplorer builds the fully pruned ER-π explorer for a log and config.
func NewExplorer(log *event.Log, cfg Config) (*interleave.DFSExplorer, error) {
	space, filters, err := Build(log, cfg)
	if err != nil {
		return nil, err
	}
	return interleave.NewPruned(space, filters...), nil
}

// CountPruned returns the surviving-interleaving count under the full
// config (exact for small unit counts, sampled otherwise).
func CountPruned(log *event.Log, cfg Config, sampleSize int, seed int64) (interleave.CountResult, error) {
	space, filters, err := Build(log, cfg)
	if err != nil {
		return interleave.CountResult{}, err
	}
	return interleave.Count(space, filters, sampleSize, seed), nil
}

// AblationStage names one pruning algorithm for ablation reporting.
type AblationStage string

// Stage names used by the Figure-9 ablation.
const (
	StageNone         AblationStage = "none"
	StageGrouping     AblationStage = "grouping"
	StageReplica      AblationStage = "replica-specific"
	StageIndependence AblationStage = "independence"
	StageFailedOps    AblationStage = "failed-ops"
)

// AblationResult reports the surviving count with exactly one algorithm
// enabled (plus grouping, which defines the unit alphabet for the others
// exactly as in the paper's pipeline).
type AblationResult struct {
	Stage     AblationStage
	Count     interleave.CountResult
	Reduction float64 // vs. the ungrouped n! baseline
}

// Ablate measures each algorithm's individual contribution to problem-space
// reduction (paper Figure 9). The baseline is the ungrouped n! space.
// Grouping is measured alone; each filter-based algorithm is measured on
// the grouped space with only its own filters active.
func Ablate(log *event.Log, cfg Config, sampleSize int, seed int64) ([]AblationResult, error) {
	baseline := interleave.Factorial(log.Len())
	out := make([]AblationResult, 0, 4)

	appendStage := func(stage AblationStage, space *interleave.Space, filters []interleave.Filter) {
		res := interleave.Count(space, filters, sampleSize, seed)
		red := 0.0
		if res.Surviving.Sign() > 0 {
			// Reduction relative to the ungrouped n! baseline.
			q := new(big.Float).Quo(new(big.Float).SetInt(baseline), new(big.Float).SetInt(res.Surviving))
			red, _ = q.Float64()
		}
		out = append(out, AblationResult{Stage: stage, Count: res, Reduction: red})
	}

	grouped, err := GroupedSpace(log, cfg.Grouping)
	if err != nil {
		return nil, err
	}
	appendStage(StageGrouping, grouped, nil)

	for _, r := range cfg.TestedReplicas {
		appendStage(StageReplica, grouped, []interleave.Filter{NewReplicaSpecific(grouped, r)})
	}
	var indepFilters []interleave.Filter
	for _, spec := range cfg.IndependentSets {
		f, err := NewIndependence(grouped, spec.Events, spec.NonInterfering)
		if err != nil {
			return nil, err
		}
		indepFilters = append(indepFilters, f)
	}
	if len(indepFilters) > 0 {
		appendStage(StageIndependence, grouped, indepFilters)
	}
	var failedFilters []interleave.Filter
	for _, spec := range cfg.FailedOps {
		f, err := NewFailedOps(grouped, spec)
		if err != nil {
			return nil, err
		}
		failedFilters = append(failedFilters, f)
	}
	if len(failedFilters) > 0 {
		appendStage(StageFailedOps, grouped, failedFilters)
	}
	return out, nil
}
