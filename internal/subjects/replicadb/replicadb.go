// Package replicadb re-implements the replication core of ReplicaDB
// (evaluation subject 3): bulk data transfer between a source table and a
// sink table, with complete and incremental replication modes and a
// bounded fetch buffer feeding parallel sink writers.
//
// Two seedable defects reproduce the paper's ReplicaDB bug benchmarks:
//
//   - BugUnboundedBuffer (issue #79, "out of memory error"): the fetch
//     path ignores the buffer bound, so interleavings in which fetches
//     outpace sink drains grow the buffer past the memory budget.
//   - BugMissTombstones (issue #23, "deleted records aren't getting
//     deleted from the sink tables"): incremental mode transfers only row
//     upserts, so deletes that land after the snapshot cut never reach
//     the sink.
package replicadb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/er-pi/erpi/internal/replica"
)

// Flags seed the known defects.
type Flags struct {
	BugUnboundedBuffer bool `json:"bug_unbounded_buffer"`
	BugMissTombstones  bool `json:"bug_miss_tombstones"`
	// NoVersionResolution disables version-based conflict resolution on
	// sync: incoming rows overwrite unconditionally (misconception #1
	// seed — relying on delivery order instead of the resolution step).
	NoVersionResolution bool `json:"no_version_resolution"`
	// BufferLimit is the fetch-buffer budget in rows (default 4).
	BufferLimit int `json:"buffer_limit,omitempty"`
}

// row is one record. Version orders cross-replica upserts (LWW); Seq is
// the local apply order, the basis of incremental snapshot cuts — a row
// adopted from a peer is a NEW local change even though its Version is
// old, so the two counters must be distinct.
type row struct {
	Key     string `json:"key"`
	Value   string `json:"value"`
	Version uint64 `json:"version"`
	Deleted bool   `json:"deleted"`
	Seq     uint64 `json:"seq,omitempty"`
}

// Node is one replica running a ReplicaDB instance: it owns a source
// table, a sink table, and the transfer machinery between them. Sync
// between replicas exchanges source tables (the upstream replication
// path).
type Node struct {
	flags   Flags
	version uint64
	source  map[string]*row
	sink    map[string]*row
	// buffer is the in-flight fetch buffer between source reads and sink
	// writes.
	buffer []*row
	// peakBuffer tracks the high-water mark (the OOM metric of issue #79).
	peakBuffer int
	// seq is the local apply-order counter.
	seq uint64
	// snapshotCut is the Seq bound of the last snapshot-based incremental
	// transfer.
	snapshotCut uint64
	// stateVer counts mutations for snapshot-cache invalidation
	// (replica.Versioned) — distinct from version, which orders LWW row
	// conflicts. readSink/readSource/peakBuffer are pure and leave it
	// untouched.
	stateVer uint64
}

var (
	_ replica.State     = (*Node)(nil)
	_ replica.Versioned = (*Node)(nil)
)

// StateVersion implements replica.Versioned.
func (n *Node) StateVersion() uint64 { return n.stateVer }

// New returns an empty node.
func New(flags Flags) *Node {
	if flags.BufferLimit == 0 {
		flags.BufferLimit = 4
	}
	return &Node{
		flags:  flags,
		source: make(map[string]*row),
		sink:   make(map[string]*row),
	}
}

// Insert upserts a source row.
func (n *Node) Insert(key, value string) {
	n.version++
	n.seq++
	n.source[key] = &row{Key: key, Value: value, Version: n.version, Seq: n.seq}
}

// Delete tombstones a source row; fails when absent.
func (n *Node) Delete(key string) error {
	r, ok := n.source[key]
	if !ok || r.Deleted {
		return replica.ErrFailedOp
	}
	n.version++
	n.seq++
	r.Deleted = true
	r.Version = n.version
	r.Seq = n.seq
	return nil
}

// Fetch moves up to batch source rows into the transfer buffer. With
// BugUnboundedBuffer the buffer bound is ignored; otherwise a fetch that
// would exceed the bound fails (back-pressure).
func (n *Node) Fetch(batch int) error {
	if !n.flags.BugUnboundedBuffer && len(n.buffer)+batch > n.flags.BufferLimit {
		return replica.ErrFailedOp // back-pressure: retry after drain
	}
	rows := n.sourceRows()
	start := 0
	// Naive cursor: refetch from the top is fine for the model; the
	// buffer-growth behaviour is what the defect exercises.
	for i := 0; i < batch && start+i < len(rows); i++ {
		cp := *rows[start+i]
		n.buffer = append(n.buffer, &cp)
	}
	if len(n.buffer) > n.peakBuffer {
		n.peakBuffer = len(n.buffer)
	}
	return nil
}

// Drain writes every buffered row into the sink and empties the buffer.
func (n *Node) Drain() {
	for _, r := range n.buffer {
		n.applySink(r)
	}
	n.buffer = n.buffer[:0]
}

// TransferComplete replicates the full source table (upserts and deletes)
// into the sink.
func (n *Node) TransferComplete() {
	for _, r := range n.source {
		cp := *r
		n.applySink(&cp)
	}
	n.snapshotCut = n.seq
}

// TransferIncremental replicates rows changed since the last snapshot cut.
// With BugMissTombstones, deleted rows are skipped (issue #23).
func (n *Node) TransferIncremental() {
	for _, r := range n.source {
		if r.Seq <= n.snapshotCut {
			continue
		}
		if r.Deleted && n.flags.BugMissTombstones {
			continue // defect: deletes never reach the sink
		}
		cp := *r
		n.applySink(&cp)
	}
	n.snapshotCut = n.seq
}

func (n *Node) applySink(r *row) {
	cur, ok := n.sink[r.Key]
	if ok && cur.Version >= r.Version {
		return
	}
	n.sink[r.Key] = r
}

// PeakBuffer returns the buffer high-water mark.
func (n *Node) PeakBuffer() int { return n.peakBuffer }

// SinkRows renders the live sink contents canonically.
func (n *Node) SinkRows() string { return renderRows(n.sink) }

// SourceRows renders the live source contents canonically.
func (n *Node) SourceRows() string { return renderRows(n.source) }

func (n *Node) sourceRows() []*row {
	out := make([]*row, 0, len(n.source))
	for _, r := range n.source {
		if !r.Deleted {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func renderRows(table map[string]*row) string {
	keys := make([]string, 0, len(table))
	for k, r := range table {
		if !r.Deleted {
			keys = append(keys, k+"="+r.Value)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// Apply implements replica.State. Ops:
//
//	insert(key, value)       upsert a source row
//	delete(key)              tombstone a source row
//	fetch(batch)             buffer rows for transfer
//	drain()                  flush the buffer into the sink
//	transferComplete()       full-table replication
//	transferIncremental()    changed-rows replication
//	readSink()               -> canonical sink contents
//	readSource()             -> canonical source contents
//	peakBuffer()             -> high-water mark of the fetch buffer
func (n *Node) Apply(op replica.Op) (string, error) {
	switch op.Name {
	case "readSink", "readSource", "peakBuffer":
	default:
		n.stateVer++
	}
	switch op.Name {
	case "insert":
		n.Insert(op.Args[0], op.Args[1])
		return "", nil
	case "delete":
		return "", n.Delete(op.Args[0])
	case "fetch":
		batch, err := strconv.Atoi(op.Args[0])
		if err != nil {
			return "", fmt.Errorf("replicadb: bad batch: %w", err)
		}
		return "", n.Fetch(batch)
	case "drain":
		n.Drain()
		return "", nil
	case "transferComplete":
		n.TransferComplete()
		return "", nil
	case "transferIncremental":
		n.TransferIncremental()
		return "", nil
	case "readSink":
		return n.SinkRows(), nil
	case "readSource":
		return n.SourceRows(), nil
	case "peakBuffer":
		return strconv.Itoa(n.peakBuffer), nil
	default:
		return "", fmt.Errorf("replicadb: unknown op %s", op.Name)
	}
}

// syncPayload carries the source table between replicas.
type syncPayload struct {
	Rows    []row  `json:"rows"`
	Version uint64 `json:"version"`
}

// SyncPayload implements replica.State.
func (n *Node) SyncPayload() ([]byte, error) {
	p := syncPayload{Version: n.version}
	for _, r := range n.source {
		cp := *r
		cp.Seq = 0 // Seq is local apply order; receivers assign their own
		p.Rows = append(p.Rows, cp)
	}
	sort.Slice(p.Rows, func(i, j int) bool { return p.Rows[i].Key < p.Rows[j].Key })
	return json.Marshal(p)
}

// ApplySync implements replica.State: LWW-merge remote source rows.
func (n *Node) ApplySync(payload []byte) error {
	n.stateVer++
	var p syncPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return fmt.Errorf("replicadb: sync payload: %w", err)
	}
	for i := range p.Rows {
		r := p.Rows[i]
		cur, ok := n.source[r.Key]
		if n.flags.NoVersionResolution || !ok || cur.Version < r.Version {
			cp := r
			n.seq++
			cp.Seq = n.seq // adopted rows are fresh local changes
			n.source[r.Key] = &cp
		}
	}
	if p.Version > n.version {
		n.version = p.Version
	}
	return nil
}

type snapshot struct {
	Source      []row  `json:"source"`
	Sink        []row  `json:"sink"`
	Buffer      []row  `json:"buffer,omitempty"`
	PeakBuffer  int    `json:"peak_buffer,omitempty"`
	Version     uint64 `json:"version"`
	Seq         uint64 `json:"seq"`
	SnapshotCut uint64 `json:"snapshot_cut"`
}

// Snapshot implements replica.State. The encoding is canonical: equal
// logical states always serialize to identical bytes (tables sorted by
// key; the buffer keeps its in-flight order, which IS state — Drain
// applies it in order).
func (n *Node) Snapshot() ([]byte, error) {
	snap := snapshot{Version: n.version, Seq: n.seq, SnapshotCut: n.snapshotCut, PeakBuffer: n.peakBuffer}
	for _, r := range n.source {
		snap.Source = append(snap.Source, *r)
	}
	for _, r := range n.sink {
		snap.Sink = append(snap.Sink, *r)
	}
	sort.Slice(snap.Source, func(i, j int) bool { return snap.Source[i].Key < snap.Source[j].Key })
	sort.Slice(snap.Sink, func(i, j int) bool { return snap.Sink[i].Key < snap.Sink[j].Key })
	for _, r := range n.buffer {
		snap.Buffer = append(snap.Buffer, *r)
	}
	return json.Marshal(snap)
}

// Restore implements replica.State.
func (n *Node) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("replicadb: snapshot: %w", err)
	}
	fresh := New(n.flags)
	fresh.version = snap.Version
	fresh.seq = snap.Seq
	fresh.snapshotCut = snap.SnapshotCut
	fresh.peakBuffer = snap.PeakBuffer
	for i := range snap.Source {
		cp := snap.Source[i]
		fresh.source[cp.Key] = &cp
	}
	for i := range snap.Sink {
		cp := snap.Sink[i]
		fresh.sink[cp.Key] = &cp
	}
	for i := range snap.Buffer {
		cp := snap.Buffer[i]
		fresh.buffer = append(fresh.buffer, &cp)
	}
	ver := n.stateVer + 1
	*n = *fresh
	n.stateVer = ver
	return nil
}

// Fingerprint implements replica.State: source and sink contents (the
// sink-matches-source invariant is the issue-#23 detector).
func (n *Node) Fingerprint() string {
	return "src{" + n.SourceRows() + "}sink{" + n.SinkRows() + "}"
}
