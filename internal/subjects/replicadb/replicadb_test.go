package replicadb

import (
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

func TestInsertTransferComplete(t *testing.T) {
	n := New(Flags{})
	n.Insert("k1", "v1")
	n.Insert("k2", "v2")
	n.TransferComplete()
	if got := n.SinkRows(); got != "k1=v1,k2=v2" {
		t.Fatalf("SinkRows = %q", got)
	}
}

func TestDeletePropagatesInCompleteMode(t *testing.T) {
	n := New(Flags{})
	n.Insert("k", "v")
	n.TransferComplete()
	if err := n.Delete("k"); err != nil {
		t.Fatal(err)
	}
	n.TransferComplete()
	if got := n.SinkRows(); got != "" {
		t.Fatalf("sink must drop deleted rows, got %q", got)
	}
}

func TestDeleteMissingIsFailedOp(t *testing.T) {
	n := New(Flags{})
	if err := n.Delete("ghost"); err != replica.ErrFailedOp {
		t.Fatalf("err = %v, want failed op", err)
	}
}

func TestIncrementalPropagatesTombstonesWhenCorrect(t *testing.T) {
	n := New(Flags{})
	n.Insert("k", "v")
	n.TransferComplete()
	if err := n.Delete("k"); err != nil {
		t.Fatal(err)
	}
	n.TransferIncremental()
	if got := n.SinkRows(); got != "" {
		t.Fatalf("incremental must propagate the delete, got %q", got)
	}
}

func TestBugMissTombstones(t *testing.T) {
	n := New(Flags{BugMissTombstones: true})
	n.Insert("k", "v")
	n.TransferComplete()
	if err := n.Delete("k"); err != nil {
		t.Fatal(err)
	}
	n.TransferIncremental()
	if got := n.SinkRows(); got != "k=v" {
		t.Fatalf("seeded issue #23: deleted record must linger in sink, got %q", got)
	}
	// The invariant detector: source and sink disagree.
	if n.SourceRows() == n.SinkRows() {
		t.Fatal("source and sink must diverge under the defect")
	}
}

func TestFetchBackPressure(t *testing.T) {
	n := New(Flags{BufferLimit: 2})
	n.Insert("a", "1")
	n.Insert("b", "2")
	n.Insert("c", "3")
	if err := n.Fetch(2); err != nil {
		t.Fatal(err)
	}
	if err := n.Fetch(2); err != replica.ErrFailedOp {
		t.Fatalf("over-limit fetch = %v, want back-pressure failed op", err)
	}
	n.Drain()
	if err := n.Fetch(2); err != nil {
		t.Fatalf("fetch after drain must succeed: %v", err)
	}
	if n.PeakBuffer() != 2 {
		t.Fatalf("PeakBuffer = %d, want 2", n.PeakBuffer())
	}
}

func TestBugUnboundedBuffer(t *testing.T) {
	n := New(Flags{BugUnboundedBuffer: true, BufferLimit: 2})
	n.Insert("a", "1")
	n.Insert("b", "2")
	n.Insert("c", "3")
	for i := 0; i < 5; i++ {
		if err := n.Fetch(3); err != nil {
			t.Fatal(err)
		}
	}
	if n.PeakBuffer() <= 2 {
		t.Fatalf("seeded issue #79: buffer must blow past the limit, peak = %d", n.PeakBuffer())
	}
}

func TestApplyOps(t *testing.T) {
	n := New(Flags{})
	ops := []replica.Op{
		{Name: "insert", Args: []string{"k", "v"}},
		{Name: "fetch", Args: []string{"1"}},
		{Name: "drain"},
		{Name: "transferComplete"},
		{Name: "transferIncremental"},
	}
	for _, op := range ops {
		if _, err := n.Apply(op); err != nil {
			t.Fatalf("%s: %v", op.Name, err)
		}
	}
	out, err := n.Apply(replica.Op{Name: "readSink"})
	if err != nil || out != "k=v" {
		t.Fatalf("readSink = %q, %v", out, err)
	}
	out, err = n.Apply(replica.Op{Name: "peakBuffer"})
	if err != nil || out != "1" {
		t.Fatalf("peakBuffer = %q, %v", out, err)
	}
	if _, err := n.Apply(replica.Op{Name: "nope"}); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func TestSyncLWWMerge(t *testing.T) {
	a, b := New(Flags{}), New(Flags{})
	a.Insert("k", "old")
	b.Insert("k", "newer")
	b.Insert("k", "newest") // version 2 at b
	pa, err := a.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(pa); err != nil {
		t.Fatal(err)
	}
	if a.SourceRows() != b.SourceRows() {
		t.Fatalf("sources diverged: %q vs %q", a.SourceRows(), b.SourceRows())
	}
	if a.SourceRows() != "k=newest" {
		t.Fatalf("LWW lost: %q", a.SourceRows())
	}
}

func TestSnapshotRestore(t *testing.T) {
	n := New(Flags{})
	n.Insert("k", "v")
	n.TransferComplete()
	snap, err := n.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	n.Insert("extra", "x")
	n.TransferComplete()
	if err := n.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if n.Fingerprint() != "src{k=v}sink{k=v}" {
		t.Fatalf("restore lost state: %q", n.Fingerprint())
	}
}
