// Incremental-hashing property suite (DESIGN.md §4.15): the replay hot
// path serves canonical snapshots from per-replica version-keyed caches,
// so a subject that mutates state without bumping its StateVersion would
// silently ship stale bytes — context hashes would go wrong without any
// behavioral test failing. This file drives every subject through long
// randomized op/sync/checkpoint/reset/restore sequences on two lockstep
// clusters — one incremental, one forced to full re-serialization — and
// pins that their canonical snapshots, hash-of-hashes digests, and
// fingerprints never diverge, and that restoring from a delta (buffer-
// sharing) snapshot equals restoring from a full one.
package canon

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"github.com/er-pi/erpi/internal/event"
	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/subjects/crdts"
	"github.com/er-pi/erpi/internal/subjects/orbit"
	"github.com/er-pi/erpi/internal/subjects/replicadb"
	"github.com/er-pi/erpi/internal/subjects/roshi"
	"github.com/er-pi/erpi/internal/subjects/yorkie"
)

// incCase is one subject variant under randomized exercise: a state
// factory and a generator of ops valid for that subject (ops may fail
// with deterministic errors; both lockstep clusters must agree).
type incCase struct {
	name  string
	fresh func(id string) replica.State
	op    func(r *rand.Rand) replica.Op
}

// incCases covers every subject twice: default flags plus the bug-flag
// variant whose mutation pattern is hardest on version counting (orbit's
// BugMutateAfterHash mutates entries inside SyncPayload; the
// misconception-#1 flags rewrite state wholesale on sync).
func incCases() []incCase {
	keys := []string{"feed", "likes", "saved"}
	members := []string{"m1", "m2", "m3", "m4"}
	words := []string{"alpha", "beta", "gamma", "delta"}

	roshiOp := func(r *rand.Rand) replica.Op {
		k, m := keys[r.Intn(len(keys))], members[r.Intn(len(members))]
		score := strconv.Itoa(r.Intn(16))
		switch r.Intn(4) {
		case 0:
			return replica.Op{Name: "delete", Args: []string{k, m, score}}
		case 1:
			return replica.Op{Name: "selectAll", Args: []string{k}}
		default:
			return replica.Op{Name: "insert", Args: []string{k, m, score}}
		}
	}
	crdtsOp := func(r *rand.Rand) replica.Op {
		w := words[r.Intn(len(words))]
		switch r.Intn(7) {
		case 0:
			return replica.Op{Name: "todo.create", Args: []string{w}}
		case 1:
			return replica.Op{Name: "tag.add", Args: []string{w}}
		case 2:
			return replica.Op{Name: "tag.remove", Args: []string{w}}
		case 3:
			return replica.Op{Name: "counter.inc", Args: []string{strconv.Itoa(1 + r.Intn(4))}}
		case 4:
			return replica.Op{Name: "counter.dec", Args: []string{strconv.Itoa(1 + r.Intn(2))}}
		case 5:
			return replica.Op{Name: "list.insert", Args: []string{strconv.Itoa(r.Intn(3)), w}}
		default:
			return replica.Op{Name: "list.read"}
		}
	}
	dbOp := func(r *rand.Rand) replica.Op {
		k := "k" + strconv.Itoa(r.Intn(6))
		switch r.Intn(7) {
		case 0:
			return replica.Op{Name: "delete", Args: []string{k}}
		case 1:
			return replica.Op{Name: "fetch", Args: []string{strconv.Itoa(1 + r.Intn(3))}}
		case 2:
			return replica.Op{Name: "drain"}
		case 3:
			return replica.Op{Name: "transferComplete"}
		case 4:
			return replica.Op{Name: "transferIncremental"}
		case 5:
			return replica.Op{Name: "readSink"}
		default:
			return replica.Op{Name: "insert", Args: []string{k, words[r.Intn(len(words))]}}
		}
	}
	orbitOp := func(r *rand.Rand) replica.Op {
		switch r.Intn(6) {
		case 0:
			return replica.Op{Name: "read"}
		case 1:
			return replica.Op{Name: "verify"}
		case 2:
			return replica.Op{Name: "flush"}
		case 3:
			return replica.Op{Name: "reopen"}
		default:
			return replica.Op{Name: "append", Args: []string{words[r.Intn(len(words))]}}
		}
	}
	yorkieOp := func(r *rand.Rand) replica.Op {
		w := words[r.Intn(len(words))]
		switch r.Intn(5) {
		case 0:
			return replica.Op{Name: "setObject", Args: []string{"meta"}}
		case 1:
			return replica.Op{Name: "deleteKey", Args: []string{"k" + strconv.Itoa(r.Intn(3))}}
		case 2:
			return replica.Op{Name: "arrInsert", Args: []string{"0", w}}
		case 3:
			return replica.Op{Name: "read", Args: []string{"k0"}}
		default:
			return replica.Op{Name: "set", Args: []string{"k" + strconv.Itoa(r.Intn(3)), w}}
		}
	}

	return []incCase{
		{"roshi", func(string) replica.State { return roshi.New(roshi.Flags{}) }, roshiOp},
		{"roshi/arrival-wins", func(string) replica.State { return roshi.New(roshi.Flags{ArrivalWins: true}) }, roshiOp},
		{"crdts", func(id string) replica.State { return crdts.New(id, crdts.Flags{}) }, crdtsOp},
		{"crdts/last-sync-wins", func(id string) replica.State { return crdts.New(id, crdts.Flags{LastSyncWins: true}) }, crdtsOp},
		{"replicadb", func(string) replica.State { return replicadb.New(replicadb.Flags{}) }, dbOp},
		{"replicadb/no-resolution", func(string) replica.State { return replicadb.New(replicadb.Flags{NoVersionResolution: true}) }, dbOp},
		{"orbit", func(id string) replica.State { return orbit.New(id, orbit.Flags{}) }, orbitOp},
		{"orbit/mutate-after-hash", func(id string) replica.State { return orbit.New(id, orbit.Flags{BugMutateAfterHash: true}) }, orbitOp},
		{"yorkie", func(id string) replica.State { return yorkie.New(id, yorkie.Flags{}) }, yorkieOp},
		{"yorkie/no-stamp-resolution", func(id string) replica.State { return yorkie.New(id, yorkie.Flags{NoStampResolution: true}) }, yorkieOp},
	}
}

var incReplicas = []event.ReplicaID{"A", "B", "C"}

func newIncCluster(c incCase, full bool) *replica.Cluster {
	states := make(map[event.ReplicaID]replica.State, len(incReplicas))
	for _, id := range incReplicas {
		states[id] = c.fresh(string(id))
	}
	cl := replica.NewCluster(states)
	cl.SetFullHashing(full)
	return cl
}

// compareClusters pins property (a): the incremental cluster's canonical
// snapshot — bytes, per-replica buffer hashes, and the hash-of-hashes
// digest — is identical to the full-recompute cluster's.
func compareClusters(t *testing.T, step int, inc, ref *replica.Cluster) (*replica.ClusterSnapshot, *replica.ClusterSnapshot) {
	t.Helper()
	si, err := inc.CanonicalSnapshot()
	if err != nil {
		t.Fatalf("step %d: incremental snapshot: %v", step, err)
	}
	sr, err := ref.CanonicalSnapshot()
	if err != nil {
		t.Fatalf("step %d: full snapshot: %v", step, err)
	}
	if si.Hash() != sr.Hash() {
		t.Fatalf("step %d: incremental hash diverged from full recompute:\n inc: %x\n ref: %x",
			step, si.Hash(), sr.Hash())
	}
	if !bytes.Equal(si.AppendCanonical(nil), sr.AppendCanonical(nil)) {
		t.Fatalf("step %d: canonical bytes diverged between incremental and full snapshots", step)
	}
	if got, want := fmt.Sprint(inc.Fingerprints()), fmt.Sprint(ref.Fingerprints()); got != want {
		t.Fatalf("step %d: cached fingerprints diverged:\n inc: %s\n ref: %s", step, got, want)
	}
	if inc.Converged() != ref.Converged() {
		t.Fatalf("step %d: convergence verdict diverged", step)
	}
	return si, sr
}

// TestIncrementalHashingParity is the randomized lockstep exercise: two
// clusters per subject variant — incremental vs. forced-full — run the
// same op/sync/checkpoint/reset/restore sequence from a fixed seed, and
// every probe point must agree on all digests. Dirty accounting is also
// sanity-checked: the incremental cluster must actually reuse buffers.
func TestIncrementalHashingParity(t *testing.T) {
	const steps = 400
	for _, c := range incCases() {
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(0x5eed + int64(len(c.name))))
			inc := newIncCluster(c, false)
			ref := newIncCluster(c, true)
			if err := inc.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := ref.Checkpoint(); err != nil {
				t.Fatal(err)
			}

			type captured struct {
				step     int
				inc, ref *replica.ClusterSnapshot
			}
			var caps []captured
			var reused int64

			for step := 0; step < steps; step++ {
				switch k := r.Intn(20); {
				case k < 11: // apply one op on one replica, both clusters
					id := incReplicas[r.Intn(len(incReplicas))]
					op := c.op(r)
					ni, _ := inc.Node(id)
					nr, _ := ref.Node(id)
					_, errI := ni.State.Apply(op)
					_, errR := nr.State.Apply(op)
					if (errI == nil) != (errR == nil) {
						t.Fatalf("step %d: op %s error diverged: inc=%v ref=%v", step, op.Name, errI, errR)
					}
				case k < 15: // sync src -> dst, both clusters
					src := incReplicas[r.Intn(len(incReplicas))]
					dst := incReplicas[r.Intn(len(incReplicas))]
					if src == dst {
						continue
					}
					var errs [2]error
					for i, cl := range []*replica.Cluster{inc, ref} {
						ns, _ := cl.Node(src)
						nd, _ := cl.Node(dst)
						payload, err := ns.State.SyncPayload()
						if err != nil {
							t.Fatalf("step %d: sync payload: %v", step, err)
						}
						// Syncs may fail by subject constraint (e.g. orbit's
						// clock-skew guard); that is part of the exercised
						// surface — both clusters just have to agree.
						errs[i] = nd.State.ApplySync(payload)
					}
					if (errs[0] == nil) != (errs[1] == nil) {
						t.Fatalf("step %d: sync error diverged: inc=%v ref=%v", step, errs[0], errs[1])
					}
				case k < 16: // re-checkpoint one replica
					id := incReplicas[r.Intn(len(incReplicas))]
					if err := inc.CheckpointNode(id); err != nil {
						t.Fatal(err)
					}
					if err := ref.CheckpointNode(id); err != nil {
						t.Fatal(err)
					}
				case k < 17: // crash-restore one replica to its checkpoint
					id := incReplicas[r.Intn(len(incReplicas))]
					if err := inc.ResetNode(id); err != nil {
						t.Fatal(err)
					}
					if err := ref.ResetNode(id); err != nil {
						t.Fatal(err)
					}
				case k < 18 && len(caps) > 0: // rewind both clusters to a captured snapshot
					cp := caps[r.Intn(len(caps))]
					if err := inc.RestoreSnapshot(cp.inc); err != nil {
						t.Fatal(err)
					}
					if err := ref.RestoreSnapshot(cp.ref); err != nil {
						t.Fatal(err)
					}
				default: // probe: snapshots must agree; keep them for later rewinds
					si, sr := compareClusters(t, step, inc, ref)
					reused += si.Reused
					if sr.Dirty != len(incReplicas) && len(caps) > 0 {
						t.Fatalf("step %d: full-hashing cluster reported %d dirty, want all %d",
							step, sr.Dirty, len(incReplicas))
					}
					caps = append(caps, captured{step, si, sr})
				}
			}

			si, _ := compareClusters(t, steps, inc, ref)
			if reused+si.Reused == 0 {
				t.Fatal("incremental cluster never reused a cached buffer — version counting is not wired")
			}

			// Property (b): restoring a FRESH cluster from a delta
			// (buffer-sharing) snapshot equals restoring one from the full
			// cluster's independently serialized snapshot — including
			// snapshots captured long before later mutations, which pins
			// StateBuf immutability.
			for _, cp := range caps {
				fromDelta := newIncCluster(c, false)
				if err := fromDelta.RestoreSnapshot(cp.inc); err != nil {
					t.Fatalf("restore from delta snapshot (step %d): %v", cp.step, err)
				}
				fromFull := newIncCluster(c, false)
				if err := fromFull.RestoreSnapshot(cp.ref); err != nil {
					t.Fatalf("restore from full snapshot (step %d): %v", cp.step, err)
				}
				compareClusters(t, cp.step, fromDelta, fromFull)
				sd, err := fromDelta.CanonicalSnapshot()
				if err != nil {
					t.Fatal(err)
				}
				if sd.Hash() != cp.inc.Hash() {
					t.Fatalf("snapshot from step %d did not survive later mutation: restore hash %x, captured %x",
						cp.step, sd.Hash(), cp.inc.Hash())
				}
			}
		})
	}
}
