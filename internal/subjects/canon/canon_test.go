// Package canon audits snapshot canonicality across every evaluation
// subject: the state-subsumption pruning layer hashes canonical cluster
// snapshots, so two replicas in the same logical state MUST serialize to
// identical bytes, and a Restore(Snapshot()) round trip must be a byte
// fixpoint. A subject that leaks incidental state (map iteration order,
// arrival counters nothing reads) into its snapshot would silently
// disable subsumption — equal frontiers would never hash equal — without
// failing any behavioral test. This suite pins the encoding itself.
package canon

import (
	"bytes"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
	"github.com/er-pi/erpi/internal/subjects/crdts"
	"github.com/er-pi/erpi/internal/subjects/orbit"
	"github.com/er-pi/erpi/internal/subjects/replicadb"
	"github.com/er-pi/erpi/internal/subjects/roshi"
	"github.com/er-pi/erpi/internal/subjects/yorkie"
)

func snap(t *testing.T, s replica.State) []byte {
	t.Helper()
	data, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return data
}

func apply(t *testing.T, s replica.State, name string, args ...string) {
	t.Helper()
	if _, err := s.Apply(replica.Op{Name: name, Args: args}); err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
}

func syncInto(t *testing.T, dst, src replica.State) {
	t.Helper()
	payload, err := src.SyncPayload()
	if err != nil {
		t.Fatalf("SyncPayload: %v", err)
	}
	if err := dst.ApplySync(payload); err != nil {
		t.Fatalf("ApplySync: %v", err)
	}
}

// canonCase builds the same logical state two ways (different op or sync
// arrival orders) plus a fresh zero-state instance for round trips.
type canonCase struct {
	name  string
	a, b  func(t *testing.T) replica.State
	fresh func() replica.State
}

// checkCanonical runs the three properties on one construction:
//
//  1. determinism: Snapshot() twice on one instance is byte-identical;
//  2. round trip: Snapshot → Restore (fresh instance) → Snapshot is a
//     byte fixpoint;
//  3. canonicality: both constructions of the logical state — and their
//     restored copies — snapshot to identical bytes.
func checkCanonical(t *testing.T, c canonCase) {
	x, y := c.a(t), c.b(t)
	if fx, fy := x.Fingerprint(), y.Fingerprint(); fx != fy {
		t.Fatalf("constructions disagree on logical state:\n a: %s\n b: %s", fx, fy)
	}
	sx := snap(t, x)
	if again := snap(t, x); !bytes.Equal(sx, again) {
		t.Errorf("Snapshot not deterministic:\n 1st: %s\n 2nd: %s", sx, again)
	}
	restored := c.fresh()
	if err := restored.Restore(sx); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if sr := snap(t, restored); !bytes.Equal(sx, sr) {
		t.Errorf("Restore(Snapshot()) not a byte fixpoint:\n before: %s\n after:  %s", sx, sr)
	}
	if sy := snap(t, y); !bytes.Equal(sx, sy) {
		t.Errorf("equal logical states snapshot differently:\n a: %s\n b: %s", sx, sy)
	}
}

// TestSubjectSnapshotsCanonical drives every subject through two arrival
// orders of the same payload set. For the state-based and stamped-op
// subjects the merge is commutative, so both instances are the same
// replica in the same logical state; the snapshots must match bytewise.
func TestSubjectSnapshotsCanonical(t *testing.T) {
	cases := []canonCase{
		{
			name: "crdts",
			a:    func(t *testing.T) replica.State { return crdtsMerged(t, false) },
			b:    func(t *testing.T) replica.State { return crdtsMerged(t, true) },
			fresh: func() replica.State {
				return crdts.New("A", crdts.Flags{})
			},
		},
		{
			name: "roshi",
			a:    func(t *testing.T) replica.State { return roshiApplied(t, false) },
			b:    func(t *testing.T) replica.State { return roshiApplied(t, true) },
			fresh: func() replica.State {
				return roshi.New(roshi.Flags{})
			},
		},
		{
			name: "orbit",
			a:    func(t *testing.T) replica.State { return orbitMerged(t, false) },
			b:    func(t *testing.T) replica.State { return orbitMerged(t, true) },
			fresh: func() replica.State {
				return orbit.New("A", orbit.Flags{})
			},
		},
		{
			name: "yorkie",
			a:    func(t *testing.T) replica.State { return yorkieMerged(t, false) },
			b:    func(t *testing.T) replica.State { return yorkieMerged(t, true) },
			fresh: func() replica.State {
				return yorkie.New("A", yorkie.Flags{})
			},
		},
		{
			// replicadb assigns a local Seq per applied change, so different
			// op orders are genuinely different states; both instances run
			// the identical sequence. Go's randomized map iteration still
			// exercises the table-ordering property across runs.
			name: "replicadb",
			a:    func(t *testing.T) replica.State { return replicadbApplied(t) },
			b:    func(t *testing.T) replica.State { return replicadbApplied(t) },
			fresh: func() replica.State {
				return replicadb.New(replicadb.Flags{})
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkCanonical(t, c) })
	}
}

// crdtsMerged builds replica A after merging payloads from peers B and C
// (state-based sync; merge order must not matter).
func crdtsMerged(t *testing.T, swapped bool) replica.State {
	t.Helper()
	b := crdts.New("B", crdts.Flags{})
	apply(t, b, "todo.create", "write spec")
	apply(t, b, "tag.add", "urgent")
	apply(t, b, "counter.inc", "3")
	apply(t, b, "list.insert", "0", "alpha")
	c := crdts.New("C", crdts.Flags{})
	apply(t, c, "todo.create", "review spec")
	apply(t, c, "tag.add", "later")
	apply(t, c, "counter.dec", "1")
	apply(t, c, "list.insert", "0", "beta")

	a := crdts.New("A", crdts.Flags{})
	if swapped {
		syncInto(t, a, c)
		syncInto(t, a, b)
	} else {
		syncInto(t, a, b)
		syncInto(t, a, c)
	}
	return a
}

// roshiApplied builds a store from one batch of LWW ops applied in two
// different orders (score-based resolution is order-independent).
func roshiApplied(t *testing.T, reversed bool) replica.State {
	t.Helper()
	ops := []replica.Op{
		{Name: "insert", Args: []string{"feed", "track-1", "5"}},
		{Name: "insert", Args: []string{"feed", "track-2", "3"}},
		{Name: "delete", Args: []string{"feed", "track-1", "7"}},
		{Name: "insert", Args: []string{"likes", "track-9", "4"}},
	}
	s := roshi.New(roshi.Flags{})
	if reversed {
		for i := len(ops) - 1; i >= 0; i-- {
			apply(t, s, ops[i].Name, ops[i].Args...)
		}
	} else {
		for _, op := range ops {
			apply(t, s, op.Name, op.Args...)
		}
	}
	return s
}

// orbitMerged builds peer A after joining the DAGs of peers B and C in
// either order (the entry set, not arrival order, is the state).
func orbitMerged(t *testing.T, swapped bool) replica.State {
	t.Helper()
	b := orbit.New("B", orbit.Flags{})
	apply(t, b, "append", "b1")
	apply(t, b, "append", "b2")
	c := orbit.New("C", orbit.Flags{})
	apply(t, c, "append", "c1")

	a := orbit.New("A", orbit.Flags{})
	if swapped {
		syncInto(t, a, c)
		syncInto(t, a, b)
	} else {
		syncInto(t, a, b)
		syncInto(t, a, c)
	}
	return a
}

// yorkieMerged builds doc A after receiving the op logs of docs B and C
// in either order (stamped ops replay by causal order, not arrival).
func yorkieMerged(t *testing.T, swapped bool) replica.State {
	t.Helper()
	b := yorkie.New("B", yorkie.Flags{})
	apply(t, b, "set", "title", "draft")
	apply(t, b, "arrInsert", "0", "x")
	c := yorkie.New("C", yorkie.Flags{})
	apply(t, c, "set", "owner", "carol")
	apply(t, c, "arrInsert", "0", "y")

	a := yorkie.New("A", yorkie.Flags{})
	if swapped {
		syncInto(t, a, c)
		syncInto(t, a, b)
	} else {
		syncInto(t, a, b)
		syncInto(t, a, c)
	}
	return a
}

// replicadbApplied runs a fixed op sequence that leaves rows in source,
// sink, AND the in-flight fetch buffer — all three tables must appear in
// the snapshot in canonical order.
func replicadbApplied(t *testing.T) replica.State {
	t.Helper()
	n := replicadb.New(replicadb.Flags{})
	apply(t, n, "insert", "k1", "v1")
	apply(t, n, "insert", "k3", "v3")
	apply(t, n, "insert", "k2", "v2")
	apply(t, n, "transferComplete")
	apply(t, n, "insert", "k4", "v4")
	apply(t, n, "fetch", "2")
	return n
}

// TestReplicaDBBufferSurvivesRoundTrip pins the behavioral half of the
// replicadb fix: the fetch buffer and its high-water mark are state, so a
// node restored mid-transfer must drain exactly what the original would
// have drained. Before the fix the snapshot dropped both, so a prefix-
// cache restore silently emptied the pipeline.
func TestReplicaDBBufferSurvivesRoundTrip(t *testing.T) {
	n := replicadb.New(replicadb.Flags{})
	apply(t, n, "insert", "k1", "v1")
	apply(t, n, "insert", "k2", "v2")
	apply(t, n, "fetch", "2")

	restored := replicadb.New(replicadb.Flags{})
	if err := restored.Restore(snap(t, n)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := restored.PeakBuffer(), n.PeakBuffer(); got != want {
		t.Errorf("restored peak buffer = %d, want %d", got, want)
	}
	apply(t, n, "drain")
	apply(t, restored, "drain")
	if got, want := restored.Fingerprint(), n.Fingerprint(); got != want {
		t.Errorf("drain after restore diverged:\n restored: %s\n original: %s", got, want)
	}
	if restored.SinkRows() == "" {
		t.Errorf("restored node drained an empty buffer: buffered rows were lost in the snapshot")
	}
}
