package yorkie

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

func apply(t *testing.T, d *Doc, name string, args ...string) string {
	t.Helper()
	out, err := d.Apply(replica.Op{Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return out
}

func syncInto(t *testing.T, dst, src *Doc) {
	t.Helper()
	payload, err := src.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplySync(payload); err != nil {
		t.Fatal(err)
	}
}

func TestSetRead(t *testing.T) {
	d := New("A", Flags{})
	apply(t, d, "set", "title", "hello")
	apply(t, d, "set", "meta.author", "alice")
	got := apply(t, d, "read")
	for _, want := range []string{`"title":"hello"`, `"meta":{"author":"alice"}`} {
		if !strings.Contains(got, want) {
			t.Fatalf("read = %s missing %s", got, want)
		}
	}
}

func TestDeleteKey(t *testing.T) {
	d := New("A", Flags{})
	apply(t, d, "set", "k", "v")
	apply(t, d, "deleteKey", "k")
	if got := apply(t, d, "read"); strings.Contains(got, "k") {
		t.Fatalf("delete failed: %s", got)
	}
}

func TestConcurrentEditsConverge(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	apply(t, a, "set", "x", "fromA")
	apply(t, b, "set", "y", "fromB")
	syncInto(t, a, b)
	syncInto(t, b, a)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestNestedSetCorrectRemoteApply(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	apply(t, a, "setObject", "profile")
	apply(t, a, "set", "profile.name", "alice")
	syncInto(t, b, a)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("correct nested set must converge: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestBugNestedSetDiverges(t *testing.T) {
	// The defect fires only when the nested setObject overtakes the
	// creation of its parent: B creates "profile", A creates
	// "profile.avatar"; C receives A's ops BEFORE B's.
	flags := Flags{BugNestedSet: true}
	a, b, c := New("A", flags), New("B", flags), New("C", flags)
	apply(t, b, "setObject", "profile")
	// A creates the nested object WITHOUT knowing B's op: A's payload then
	// carries only its own ops, so the avatar op's parent is implicitly
	// created locally but missing at a fresh receiver. The leading set
	// gives A's ops higher Lamport counters than B's profile op, so the
	// flattened placeholder wins LWW resolution against it.
	apply(t, a, "set", "title", "doc")
	apply(t, a, "setObject", "profile.avatar")
	syncInto(t, c, a) // avatar op arrives at C with no parent: flattened
	syncInto(t, c, b) // parent arrives too late
	if !strings.Contains(c.Fingerprint(), "[object]") {
		t.Fatalf("receiver must hold the flat placeholder: %q", c.Fingerprint())
	}
	syncInto(t, a, b)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("seeded issue #663: out-of-order remote apply must diverge")
	}
	// Causal-order delivery stays correct even with the flag.
	d := New("D", flags)
	syncInto(t, d, b)
	syncInto(t, d, a)
	if !strings.Contains(d.Fingerprint(), `"avatar":{}`) {
		t.Fatalf("causal-order delivery must nest correctly: %q", d.Fingerprint())
	}
}

func TestArrayInsertConverges(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	apply(t, a, "arrInsert", "0", "x")
	apply(t, a, "arrInsert", "1", "y")
	syncInto(t, b, a)
	apply(t, b, "arrInsert", "1", "mid")
	syncInto(t, a, b)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if got := apply(t, a, "readArr"); got != "x,mid,y" {
		t.Fatalf("readArr = %q", got)
	}
}

func TestMoveAfterConvergesWhenFixed(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	for i, v := range []string{"x", "y", "z"} {
		apply(t, a, "arrInsert", itoa(i), v)
	}
	syncInto(t, b, a)
	// Concurrent moves of the same element to different places.
	apply(t, a, "arrMove", "0", "3") // x to the end
	apply(t, b, "arrMove", "0", "2") // x after y
	syncInto(t, a, b)
	syncInto(t, b, a)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fixed MoveAfter must converge: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	count := strings.Count(apply(t, a, "readArr"), "x")
	if count != 1 {
		t.Fatalf("fixed MoveAfter must keep one x, got %d (%q)", count, apply(t, a, "readArr"))
	}
}

func TestBugMoveAfterDiverges(t *testing.T) {
	flags := Flags{BugMoveAfter: true}
	a, b := New("A", flags), New("B", flags)
	for i, v := range []string{"x", "y", "z"} {
		apply(t, a, "arrInsert", itoa(i), v)
	}
	syncInto(t, b, a)
	apply(t, a, "arrMove", "0", "3")
	apply(t, b, "arrMove", "0", "2")
	syncInto(t, a, b)
	syncInto(t, b, a)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("seeded issue #676: naive MoveAfter must not converge")
	}
}

func TestMoveOfMissingElementIsFailedOp(t *testing.T) {
	d := New("A", Flags{})
	if _, err := d.Apply(replica.Op{Name: "arrMove", Args: []string{"0", "1"}}); err != replica.ErrFailedOp {
		t.Fatalf("err = %v, want failed op", err)
	}
}

func TestSyncIdempotent(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	apply(t, a, "set", "k", "v")
	syncInto(t, b, a)
	fp := b.Fingerprint()
	syncInto(t, b, a)
	syncInto(t, b, a)
	if b.Fingerprint() != fp {
		t.Fatal("repeated sync must be idempotent")
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New("A", Flags{})
	apply(t, d, "set", "k", "v")
	apply(t, d, "arrInsert", "0", "item")
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fp := d.Fingerprint()
	apply(t, d, "set", "k2", "v2")
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() != fp {
		t.Fatalf("restore lost state: %q vs %q", d.Fingerprint(), fp)
	}
}

func itoa(n int) string { return string(rune('0' + n)) }
