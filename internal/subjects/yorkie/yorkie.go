// Package yorkie re-implements the replication core of Yorkie (evaluation
// subject 4): a document store whose JSON-like documents support
// collaborative editing through CRDTs — nested objects with last-write-wins
// fields (internal/crdt.JSONDoc) and arrays with RGA semantics
// (internal/crdt.RGA).
//
// Two seedable defects reproduce the paper's Yorkie bug benchmarks:
//
//   - BugMoveAfter (issue #676, "Document doesn't converge when using
//     Array.MoveAfter"): array moves use the naive delete+insert, so
//     concurrent moves of the same element duplicate it and replicas
//     disagree.
//   - BugNestedSet (issue #663, "Modify the set operation to handle
//     nested object values"): the remote-apply path of a set op flattens
//     nested object values to a primitive, so replicas that received the
//     op via sync diverge from the replica that executed it locally.
package yorkie

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/er-pi/erpi/internal/crdt"
	"github.com/er-pi/erpi/internal/replica"
)

// Flags seed the known defects.
type Flags struct {
	BugMoveAfter bool `json:"bug_move_after"`
	BugNestedSet bool `json:"bug_nested_set"`
	// NoStampResolution re-stamps remote ops with the receiver's local
	// clock, so writes resolve by arrival order instead of their original
	// causality (misconception #1 seed).
	NoStampResolution bool `json:"no_stamp_resolution"`
}

// docOp is one replicated document operation (op-based sync).
type docOp struct {
	Kind  string    `json:"kind"` // set, setObject, delete, arrInsert, arrMove
	Path  []string  `json:"path,omitempty"`
	Value string    `json:"value,omitempty"`
	Stamp crdt.Time `json:"stamp"`
	// Array op fields: element identities resolved at record time, so
	// remote application is position-independent.
	ElemID  crdt.Time `json:"elem_id,omitempty"`
	AfterID crdt.Time `json:"after_id,omitempty"`
	// Remote marks an op applied via sync (the buggy code path of issue
	// #663 differs between local and remote application).
	Remote bool `json:"remote,omitempty"`
}

// Doc is one replica's document: a JSON tree plus a single shared array
// (the collaborative list of the document).
type Doc struct {
	flags Flags
	clock *crdt.Clock
	tree  *crdt.JSONDoc
	arr   *crdt.RGA
	// opLog holds every op this replica originated or applied, for
	// op-based synchronization.
	opLog []docOp
	// applied dedups ops by stamp.
	applied map[crdt.Time]bool
	// ver counts mutations for snapshot-cache invalidation
	// (replica.Versioned). Every Apply advances the Lamport clock — even
	// reads stamp — so every op bumps it.
	ver uint64
}

var (
	_ replica.State     = (*Doc)(nil)
	_ replica.Versioned = (*Doc)(nil)
)

// StateVersion implements replica.Versioned.
func (d *Doc) StateVersion() uint64 { return d.ver }

// New returns an empty document for a replica identity.
func New(identity string, flags Flags) *Doc {
	return &Doc{
		flags:   flags,
		clock:   crdt.NewClock(identity),
		tree:    crdt.NewJSONDoc(),
		arr:     crdt.NewRGA(),
		applied: make(map[crdt.Time]bool),
	}
}

// applyOp executes one doc op against local state.
func (d *Doc) applyOp(op docOp) error {
	if d.applied[op.Stamp] {
		return nil // idempotent
	}
	d.applied[op.Stamp] = true
	d.clock.Witness(op.Stamp)
	if op.Remote && d.flags.NoStampResolution {
		// Misconception #1 seed: the receiver re-stamps the op, so the
		// write wins or loses by arrival order, not causality.
		op.Stamp = d.clock.Now()
	}
	switch op.Kind {
	case "set":
		return treeErr(d.tree.Set(op.Path, op.Value, op.Stamp))
	case "setObject":
		if op.Remote && d.flags.BugNestedSet && len(op.Path) > 1 && d.tree.Keys(op.Path[:len(op.Path)-1]) == nil {
			// Defect (issue #663): the remote-apply path handles a nested
			// object set correctly only when the parent object already
			// exists; when the op overtakes the parent's creation it
			// stores a flat primitive placeholder instead, so the
			// receiving replica's tree diverges from the sender's — but
			// only in interleavings where the syncs arrive out of causal
			// order.
			return treeErr(d.tree.Set(op.Path, "[object]", op.Stamp))
		}
		return treeErr(d.tree.SetObject(op.Path, op.Stamp))
	case "delete":
		return treeErr(d.tree.Delete(op.Path, op.Stamp))
	case "arrInsert":
		d.insertArrWithStamp(op.AfterID, op.Value, op.Stamp)
		return nil
	case "arrMove":
		return d.moveArr(op)
	default:
		return fmt.Errorf("yorkie: unknown doc op %q", op.Kind)
	}
}

// insertArrWithStamp inserts into the RGA reusing the op's stamp as the
// element ID so that all replicas allocate identical IDs.
func (d *Doc) insertArrWithStamp(origin crdt.Time, value string, stamp crdt.Time) {
	// The RGA allocates IDs from its clock; drive the clock to just below
	// the stamp so the allocated ID equals the stamp.
	tmp := crdt.NewClock(stamp.Replica)
	tmp.SetCounter(stamp.Counter - 1)
	if _, err := d.arr.InsertAfter(tmp, origin, value); err != nil {
		// Origin missing (concurrent edits): insert at head, convergent
		// because the ID is still the stamp.
		_, _ = d.arr.InsertAfter(tmp, crdt.HeadID, value)
	}
}

func (d *Doc) moveArr(op docOp) error {
	tmp := crdt.NewClock(op.Stamp.Replica)
	tmp.SetCounter(op.Stamp.Counter - 1)
	if d.flags.BugMoveAfter {
		// Defect (issue #676): MoveAfter = delete + fresh insert. A
		// concurrent move already tombstoned the element, so the remote
		// op fails and each replica keeps only its own relocation — the
		// document never converges.
		if _, err := d.arr.Move(tmp, op.ElemID, op.AfterID); err != nil {
			return replica.ErrFailedOp
		}
		return nil
	}
	// Fixed path: MoveWins adds a placement for the element's root and the
	// highest placement ID wins deterministically, so concurrent moves
	// reconcile identically at every replica.
	if _, err := d.arr.MoveWins(tmp, op.ElemID, op.AfterID); err != nil {
		return replica.ErrFailedOp
	}
	return nil
}

// record runs an op locally and logs it for synchronization.
func (d *Doc) record(op docOp) error {
	if err := d.applyOp(op); err != nil {
		return err
	}
	d.opLog = append(d.opLog, op)
	return nil
}

// Apply implements replica.State. Ops:
//
//	set(path, value)        set a primitive at a dotted path
//	setObject(path)         set a nested object at a dotted path
//	deleteKey(path)         delete the entry at a dotted path
//	arrInsert(index, value) insert into the document array
//	arrMove(index, to)      move an array element (MoveAfter)
//	read()                  -> document snapshot
//	readArr()               -> array contents
func (d *Doc) Apply(op replica.Op) (string, error) {
	d.ver++
	stamp := d.clock.Now()
	switch op.Name {
	case "set":
		return "", d.record(docOp{Kind: "set", Path: splitPath(op.Args[0]), Value: op.Args[1], Stamp: stamp})
	case "setObject":
		return "", d.record(docOp{Kind: "setObject", Path: splitPath(op.Args[0]), Stamp: stamp})
	case "deleteKey":
		return "", d.record(docOp{Kind: "delete", Path: splitPath(op.Args[0]), Stamp: stamp})
	case "arrInsert":
		idx, err := strconv.Atoi(op.Args[0])
		if err != nil {
			return "", fmt.Errorf("yorkie: bad index: %w", err)
		}
		after, err := d.originAt(idx)
		if err != nil {
			return "", replica.ErrFailedOp
		}
		return "", d.record(docOp{Kind: "arrInsert", AfterID: after, Value: op.Args[1], Stamp: stamp})
	case "arrMove":
		idx, err := strconv.Atoi(op.Args[0])
		if err != nil {
			return "", fmt.Errorf("yorkie: bad index: %w", err)
		}
		to, err := strconv.Atoi(op.Args[1])
		if err != nil {
			return "", fmt.Errorf("yorkie: bad target: %w", err)
		}
		if idx >= d.arr.Len() || d.arr.Len() == 0 {
			return "", replica.ErrFailedOp
		}
		elem, err := d.arr.IDAt(idx)
		if err != nil {
			return "", replica.ErrFailedOp
		}
		after, err := d.originAt(to)
		if err != nil || after == elem {
			after = crdt.HeadID
		}
		return "", d.record(docOp{Kind: "arrMove", ElemID: elem, AfterID: after, Stamp: stamp})
	case "read":
		return d.tree.Snapshot(), nil
	case "readArr":
		return strings.Join(d.arr.Values(), ","), nil
	default:
		return "", fmt.Errorf("yorkie: unknown op %s", op.Name)
	}
}

func splitPath(s string) []string { return strings.Split(s, ".") }

// treeErr maps JSON-tree path conflicts (e.g. a path blocked by a newer
// primitive) to failed ops: during exhaustive replay these are legitimate
// consequences of reordering, not fatal errors.
func treeErr(err error) error {
	if err != nil {
		return replica.ErrFailedOp
	}
	return nil
}

// originAt resolves "insert so the element lands at visible index idx"
// into the ID of the element it follows (HeadID for the front). Indexes
// past the end clamp to append-at-tail.
func (d *Doc) originAt(idx int) (crdt.Time, error) {
	if idx <= 0 || d.arr.Len() == 0 {
		return crdt.HeadID, nil
	}
	if idx > d.arr.Len() {
		idx = d.arr.Len()
	}
	return d.arr.IDAt(idx - 1)
}

// SyncPayload implements replica.State: the full op log, marked remote so
// the receiver runs the remote-apply path.
func (d *Doc) SyncPayload() ([]byte, error) {
	ops := make([]docOp, len(d.opLog))
	copy(ops, d.opLog)
	for i := range ops {
		ops[i].Remote = true
	}
	return json.Marshal(ops)
}

// ApplySync implements replica.State: apply the remote ops (idempotently)
// and adopt them into the local op log for further propagation.
func (d *Doc) ApplySync(payload []byte) error {
	d.ver++
	var ops []docOp
	if err := json.Unmarshal(payload, &ops); err != nil {
		return fmt.Errorf("yorkie: sync payload: %w", err)
	}
	for _, op := range ops {
		if d.applied[op.Stamp] {
			continue
		}
		if err := d.applyOp(op); err != nil && err != replica.ErrFailedOp {
			return err
		}
		d.opLog = append(d.opLog, op)
	}
	return nil
}

type snapshot struct {
	OpLog []docOp `json:"op_log"`
	Clock uint64  `json:"clock"`
}

// Snapshot implements replica.State: the op log replays deterministically.
//
// With correct semantics the log is serialized sorted by stamp, which
// makes the encoding canonical: replicas that applied the same op set in
// different sync orders snapshot to identical bytes. Stamp order is a
// topological order of causality — an op's issuer witnessed every stamp
// it references (AfterID, parent creation), so references always sort
// before their dependents and the replay is faithful. Each seeded defect
// flag makes remote application arrival-order-dependent, so under any
// flag the log keeps its insertion order verbatim.
func (d *Doc) Snapshot() ([]byte, error) {
	ops := d.opLog
	if !d.flags.BugMoveAfter && !d.flags.BugNestedSet && !d.flags.NoStampResolution {
		ops = make([]docOp, len(d.opLog))
		copy(ops, d.opLog)
		sort.Slice(ops, func(i, j int) bool { return ops[i].Stamp.Less(ops[j].Stamp) })
	}
	return json.Marshal(snapshot{OpLog: ops, Clock: d.clock.Counter()})
}

// Restore implements replica.State.
func (d *Doc) Restore(data []byte) error {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("yorkie: snapshot: %w", err)
	}
	fresh := New(d.clock.Replica(), d.flags)
	for _, op := range snap.OpLog {
		if err := fresh.applyOp(op); err != nil && err != replica.ErrFailedOp {
			return fmt.Errorf("yorkie: snapshot replay: %w", err)
		}
		fresh.opLog = append(fresh.opLog, op)
	}
	fresh.clock.SetCounter(snap.Clock)
	ver := d.ver + 1
	*d = *fresh
	d.ver = ver
	return nil
}

// Fingerprint implements replica.State: tree plus array contents.
func (d *Doc) Fingerprint() string {
	return d.tree.Snapshot() + "|[" + strings.Join(d.arr.Values(), ",") + "]"
}
