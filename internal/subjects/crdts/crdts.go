// Package crdts re-implements the evaluation paper's fifth subject: a
// plain collection of replicated data structures (after the java "crdts"
// library) with application logic layered on top — a to-do list, a shared
// set, a counter, and a collaborative list in one replicated workspace.
//
// The to-do application supports two ID strategies: sequential IDs
// (increment the highest known ID — the misconception #4 hazard, clashing
// under concurrent creation) and replica-unique IDs (the AMC-recommended
// fix). The collaborative list exposes unsorted reads (misconception #2)
// and a move operation with a naive delete+insert variant
// (misconception #3).
package crdts

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/er-pi/erpi/internal/crdt"
	"github.com/er-pi/erpi/internal/replica"
)

// Flags configure the application-logic hazards.
type Flags struct {
	// SequentialIDs uses max+1 to-do IDs (misconception #4) instead of
	// replica-unique IDs.
	SequentialIDs bool `json:"sequential_ids"`
	// NaiveMove moves list items by delete+insert (misconception #3).
	NaiveMove bool `json:"naive_move"`
	// LastSyncWins replaces the merge-based sync with wholesale state
	// overwrite (misconception #1 seed: no conflict resolution).
	LastSyncWins bool `json:"last_sync_wins"`
}

// Workspace is one replica of the collection app.
type Workspace struct {
	flags Flags
	clock *crdt.Clock
	// todos maps to-do ID -> title (LWW per key).
	todos *crdt.ORMap
	// tags is a shared OR-set.
	tags *crdt.ORSet
	// counter is a shared PN-counter.
	counter *crdt.PNCounter
	// list is the collaborative list.
	list *crdt.RGA
	// seq tracks the highest to-do ID this replica has seen (the
	// sequential-ID strategy's source of clashes).
	seq int
	// ver counts mutations for snapshot-cache invalidation
	// (replica.Versioned). The four read ops never advance the clock, so
	// they leave it untouched; every other op bumps it, even on failure —
	// some failing ops (todo.done) still advance the clock.
	ver uint64
}

var (
	_ replica.State     = (*Workspace)(nil)
	_ replica.Versioned = (*Workspace)(nil)
)

// StateVersion implements replica.Versioned.
func (w *Workspace) StateVersion() uint64 { return w.ver }

// New returns an empty workspace for a replica identity.
func New(identity string, flags Flags) *Workspace {
	return &Workspace{
		flags:   flags,
		clock:   crdt.NewClock(identity),
		todos:   crdt.NewORMap(),
		tags:    crdt.NewORSet(),
		counter: crdt.NewPNCounter(),
		list:    crdt.NewRGA(),
	}
}

// CreateTodo adds a to-do item and returns its generated ID.
func (w *Workspace) CreateTodo(title string) string {
	var id string
	if w.flags.SequentialIDs {
		// Misconception #4: concurrent creators both see the same highest
		// ID and both produce highest+1.
		w.seq++
		id = strconv.Itoa(w.seq)
	} else {
		id = w.clock.Now().String()
	}
	w.todos.Put(id, title, w.clock.Now())
	if n, err := strconv.Atoi(id); err == nil && n > w.seq {
		w.seq = n
	}
	return id
}

// Apply implements replica.State. Ops:
//
//	todo.create(title)         -> generated ID
//	todo.done(id)              remove a to-do
//	todo.read()                -> "id:title,..."
//	tag.add(tag) / tag.remove(tag) / tag.read()
//	counter.inc(n) / counter.dec(n) / counter.read()
//	list.insert(idx, v) / list.move(from, to) / list.read()
func (w *Workspace) Apply(op replica.Op) (string, error) {
	switch op.Name {
	case "todo.read", "tag.read", "counter.read", "list.read":
	default:
		w.ver++
	}
	switch op.Name {
	case "todo.create":
		return w.CreateTodo(op.Args[0]), nil
	case "todo.done":
		if !w.todos.Remove(op.Args[0], w.clock.Now()) {
			return "", replica.ErrFailedOp
		}
		return "", nil
	case "todo.read":
		return w.renderTodos(), nil
	case "tag.add":
		w.tags.Add(w.clock, op.Args[0])
		return "", nil
	case "tag.remove":
		if !w.tags.Remove(op.Args[0]) {
			return "", replica.ErrFailedOp
		}
		return "", nil
	case "tag.read":
		return strings.Join(w.tags.Elements(), ","), nil
	case "counter.inc":
		n, err := strconv.ParseUint(op.Args[0], 10, 32)
		if err != nil {
			return "", fmt.Errorf("crdts: bad delta: %w", err)
		}
		w.counter.Inc(w.clock.Replica(), n)
		return "", nil
	case "counter.dec":
		n, err := strconv.ParseUint(op.Args[0], 10, 32)
		if err != nil {
			return "", fmt.Errorf("crdts: bad delta: %w", err)
		}
		w.counter.Dec(w.clock.Replica(), n)
		return "", nil
	case "counter.read":
		return strconv.FormatInt(w.counter.Value(), 10), nil
	case "list.insert":
		idx, err := strconv.Atoi(op.Args[0])
		if err != nil {
			return "", fmt.Errorf("crdts: bad index: %w", err)
		}
		if idx > w.list.Len() {
			idx = w.list.Len()
		}
		if _, err := w.list.InsertAt(w.clock, idx, op.Args[1]); err != nil {
			return "", replica.ErrFailedOp
		}
		return "", nil
	case "list.move":
		return "", w.moveListItem(op.Args[0], op.Args[1])
	case "list.read":
		return strings.Join(w.list.Values(), ","), nil
	default:
		return "", fmt.Errorf("crdts: unknown op %s", op.Name)
	}
}

func (w *Workspace) moveListItem(fromArg, toArg string) error {
	from, err := strconv.Atoi(fromArg)
	if err != nil {
		return fmt.Errorf("crdts: bad index: %w", err)
	}
	to, err := strconv.Atoi(toArg)
	if err != nil {
		return fmt.Errorf("crdts: bad index: %w", err)
	}
	if from >= w.list.Len() || w.list.Len() == 0 {
		return replica.ErrFailedOp
	}
	id, err := w.list.IDAt(from)
	if err != nil {
		return replica.ErrFailedOp
	}
	after := crdt.HeadID
	if to > 0 {
		if to > w.list.Len() {
			to = w.list.Len()
		}
		afterID, err := w.list.IDAt(to - 1)
		if err != nil {
			return replica.ErrFailedOp
		}
		if afterID != id {
			after = afterID
		}
	}
	if w.flags.NaiveMove {
		_, err = w.list.Move(w.clock, id, after)
	} else {
		_, err = w.list.MoveWins(w.clock, id, after)
	}
	if err != nil {
		return replica.ErrFailedOp
	}
	return nil
}

func (w *Workspace) renderTodos() string {
	keys := w.todos.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		v, _ := w.todos.Get(k)
		parts = append(parts, k+":"+v)
	}
	return strings.Join(parts, ",")
}

// serialized is the JSON wire/snapshot form of the workspace; the
// component CRDTs carry their own join-complete encodings.
type serialized struct {
	Todos   *crdt.ORMap     `json:"todos"`
	Tags    *crdt.ORSet     `json:"tags"`
	Counter *crdt.PNCounter `json:"counter"`
	List    *crdt.RGA       `json:"list"`
	Seq     int             `json:"seq"`
	Clock   uint64          `json:"clock"`
}

// SyncPayload implements replica.State.
func (w *Workspace) SyncPayload() ([]byte, error) { return w.Snapshot() }

// ApplySync implements replica.State: merge the remote workspace (or,
// with LastSyncWins, overwrite it wholesale).
func (w *Workspace) ApplySync(payload []byte) error {
	w.ver++
	if w.flags.LastSyncWins {
		return w.decodeInto(payload)
	}
	other := New(w.clock.Replica(), w.flags)
	if err := other.decodeInto(payload); err != nil {
		return err
	}
	w.todos.Merge(other.todos)
	w.tags.Merge(other.tags)
	w.counter.Merge(other.counter)
	w.list.Merge(other.list)
	if other.seq > w.seq {
		w.seq = other.seq
	}
	if other.clock.Counter() > w.clock.Counter() {
		w.clock.SetCounter(other.clock.Counter())
	}
	return nil
}

// Snapshot implements replica.State.
func (w *Workspace) Snapshot() ([]byte, error) {
	return json.Marshal(serialized{
		Todos:   w.todos,
		Tags:    w.tags,
		Counter: w.counter,
		List:    w.list,
		Seq:     w.seq,
		Clock:   w.clock.Counter(),
	})
}

func (w *Workspace) decodeInto(data []byte) error {
	s := serialized{
		Todos:   crdt.NewORMap(),
		Tags:    crdt.NewORSet(),
		Counter: crdt.NewPNCounter(),
		List:    crdt.NewRGA(),
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("crdts: snapshot: %w", err)
	}
	w.todos, w.tags, w.counter, w.list = s.Todos, s.Tags, s.Counter, s.List
	w.seq = s.Seq
	w.clock.SetCounter(s.Clock)
	return nil
}

// Restore implements replica.State.
func (w *Workspace) Restore(snapshot []byte) error {
	fresh := New(w.clock.Replica(), w.flags)
	if err := fresh.decodeInto(snapshot); err != nil {
		return err
	}
	ver := w.ver + 1
	*w = *fresh
	w.ver = ver
	return nil
}

// Fingerprint implements replica.State.
func (w *Workspace) Fingerprint() string {
	var b strings.Builder
	b.WriteString("todos{")
	b.WriteString(w.renderTodos())
	b.WriteString("}tags{")
	b.WriteString(strings.Join(w.tags.Elements(), ","))
	b.WriteString("}counter{")
	b.WriteString(strconv.FormatInt(w.counter.Value(), 10))
	b.WriteString("}list{")
	b.WriteString(strings.Join(w.list.Values(), ","))
	b.WriteString("}")
	return b.String()
}
