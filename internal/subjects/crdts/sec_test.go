package crdts

import (
	"math/rand"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

// TestStrongEventualConsistencyProperty drives the corrected subject with
// randomized op histories and randomized partial synchronization, then
// runs two full anti-entropy rounds: all replicas must converge for every
// seed — the strong-eventual-consistency guarantee the bug detectors rely
// on for their no-false-positive property.
func TestStrongEventualConsistencyProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reps := []string{"A", "B", "C"}
		states := map[string]replica.State{}
		for _, r := range reps {
			states[r] = New(r, Flags{})
		}
		for step := 0; step < 30; step++ {
			r := reps[rng.Intn(len(reps))]
			if rng.Intn(4) == 0 { // partial sync to a random peer
				to := reps[rng.Intn(len(reps))]
				if to == r {
					continue
				}
				payload, err := states[r].SyncPayload()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := states[to].ApplySync(payload); err != nil && err != replica.ErrFailedOp {
					t.Fatalf("seed %d: %v", seed, err)
				}
				continue
			}
			op := randomOp(rng, step)
			if _, err := states[r].Apply(op); err != nil && err != replica.ErrFailedOp {
				t.Fatalf("seed %d: op %v: %v", seed, op, err)
			}
		}
		for round := 0; round < 2; round++ {
			for _, from := range reps {
				payload, err := states[from].SyncPayload()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, to := range reps {
					if to == from {
						continue
					}
					if err := states[to].ApplySync(payload); err != nil && err != replica.ErrFailedOp {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			}
		}
		want := states["A"].Fingerprint()
		for _, r := range reps {
			if got := states[r].Fingerprint(); got != want {
				t.Fatalf("seed %d: replica %s diverged:\n%s\nvs\n%s", seed, r, got, want)
			}
		}
	}
}

// randomOp picks a random workspace operation.
func randomOp(rng *rand.Rand, step int) replica.Op {
	tag := string(rune('a' + rng.Intn(3)))
	switch rng.Intn(5) {
	case 0:
		return replica.Op{Name: "tag.add", Args: []string{tag}}
	case 1:
		return replica.Op{Name: "tag.remove", Args: []string{tag}}
	case 2:
		return replica.Op{Name: "counter.inc", Args: []string{"2"}}
	case 3:
		return replica.Op{Name: "list.insert", Args: []string{"0", tag}}
	default:
		return replica.Op{Name: "todo.create", Args: []string{tag}}
	}
}
