package crdts

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

func apply(t *testing.T, w *Workspace, name string, args ...string) string {
	t.Helper()
	out, err := w.Apply(replica.Op{Name: name, Args: args})
	if err != nil {
		t.Fatalf("%s(%v): %v", name, args, err)
	}
	return out
}

func syncBoth(t *testing.T, a, b *Workspace) {
	t.Helper()
	pa, err := a.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(pa); err != nil {
		t.Fatal(err)
	}
}

func TestTodoUniqueIDsNoClash(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	ida := apply(t, a, "todo.create", "buy milk")
	idb := apply(t, b, "todo.create", "walk dog")
	if ida == idb {
		t.Fatalf("replica-unique IDs must not clash: %q", ida)
	}
	syncBoth(t, a, b)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	todos := apply(t, a, "todo.read")
	if !strings.Contains(todos, "buy milk") || !strings.Contains(todos, "walk dog") {
		t.Fatalf("todos lost: %q", todos)
	}
}

func TestTodoSequentialIDsClash(t *testing.T) {
	flags := Flags{SequentialIDs: true}
	a, b := New("A", flags), New("B", flags)
	ida := apply(t, a, "todo.create", "buy milk")
	idb := apply(t, b, "todo.create", "walk dog")
	if ida != idb {
		t.Fatalf("misconception #4 seed: both replicas must generate the same ID, got %q %q", ida, idb)
	}
	syncBoth(t, a, b)
	// The clash overwrites one title: only one of the two survives.
	todos := apply(t, a, "todo.read")
	if strings.Contains(todos, "buy milk") && strings.Contains(todos, "walk dog") {
		t.Fatalf("clash must lose one todo, got %q", todos)
	}
}

func TestTodoDone(t *testing.T) {
	w := New("A", Flags{})
	id := apply(t, w, "todo.create", "task")
	apply(t, w, "todo.done", id)
	if got := apply(t, w, "todo.read"); got != "" {
		t.Fatalf("todo.read = %q", got)
	}
	if _, err := w.Apply(replica.Op{Name: "todo.done", Args: []string{"ghost"}}); err != replica.ErrFailedOp {
		t.Fatalf("done of missing todo = %v, want failed op", err)
	}
}

func TestTagsAndCounter(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	apply(t, a, "tag.add", "urgent")
	apply(t, b, "tag.add", "later")
	apply(t, a, "counter.inc", "5")
	apply(t, b, "counter.dec", "2")
	syncBoth(t, a, b)
	if got := apply(t, a, "tag.read"); got != "later,urgent" {
		t.Fatalf("tag.read = %q", got)
	}
	if got := apply(t, b, "counter.read"); got != "3" {
		t.Fatalf("counter.read = %q", got)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if _, err := a.Apply(replica.Op{Name: "tag.remove", Args: []string{"ghost"}}); err != replica.ErrFailedOp {
		t.Fatalf("remove of missing tag = %v, want failed op", err)
	}
}

func TestListInsertAndMove(t *testing.T) {
	w := New("A", Flags{})
	for i, v := range []string{"a", "b", "c"} {
		apply(t, w, "list.insert", itoa(i), v)
	}
	apply(t, w, "list.move", "0", "3")
	if got := apply(t, w, "list.read"); got != "b,c,a" {
		t.Fatalf("list.read = %q", got)
	}
	if _, err := w.Apply(replica.Op{Name: "list.move", Args: []string{"9", "0"}}); err != replica.ErrFailedOp {
		t.Fatalf("move out of range = %v, want failed op", err)
	}
}

func TestNaiveMoveDuplicatesAcrossReplicas(t *testing.T) {
	flags := Flags{NaiveMove: true}
	a, b := New("A", flags), New("B", flags)
	for i, v := range []string{"x", "y", "z"} {
		apply(t, a, "list.insert", itoa(i), v)
	}
	syncBoth(t, a, b)
	apply(t, a, "list.move", "0", "3")
	apply(t, b, "list.move", "0", "2")
	syncBoth(t, a, b)
	listA := apply(t, a, "list.read")
	if strings.Count(listA, "x") != 2 {
		t.Fatalf("misconception #3 seed: concurrent naive moves must duplicate, got %q", listA)
	}
}

func TestMoveWinsNoDuplicateAcrossReplicas(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	for i, v := range []string{"x", "y", "z"} {
		apply(t, a, "list.insert", itoa(i), v)
	}
	syncBoth(t, a, b)
	apply(t, a, "list.move", "0", "3")
	apply(t, b, "list.move", "0", "2")
	syncBoth(t, a, b)
	syncBoth(t, a, b)
	listA := apply(t, a, "list.read")
	if strings.Count(listA, "x") != 1 {
		t.Fatalf("winner-move must keep one x, got %q", listA)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
}

func TestSnapshotRestore(t *testing.T) {
	w := New("A", Flags{})
	apply(t, w, "todo.create", "task")
	apply(t, w, "tag.add", "urgent")
	apply(t, w, "counter.inc", "3")
	apply(t, w, "list.insert", "0", "item")
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fp := w.Fingerprint()
	apply(t, w, "counter.inc", "100")
	if err := w.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if w.Fingerprint() != fp {
		t.Fatalf("restore lost state: %q vs %q", w.Fingerprint(), fp)
	}
}

func TestUnknownOp(t *testing.T) {
	w := New("A", Flags{})
	if _, err := w.Apply(replica.Op{Name: "bogus"}); err == nil {
		t.Fatal("unknown op must fail")
	}
}

func itoa(n int) string { return string(rune('0' + n)) }
