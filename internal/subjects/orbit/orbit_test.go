package orbit

import (
	"strings"
	"testing"

	"github.com/er-pi/erpi/internal/replica"
)

func TestAppendRead(t *testing.T) {
	db := New("A", Flags{})
	if err := db.Append("op1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Append("op2"); err != nil {
		t.Fatal(err)
	}
	got := db.Read()
	if len(got) != 2 || got[0] != "op1" || got[1] != "op2" {
		t.Fatalf("Read = %v", got)
	}
}

func TestSyncConvergence(t *testing.T) {
	a, b := New("A", Flags{}), New("B", Flags{})
	if err := a.Append("pa"); err != nil {
		t.Fatal(err)
	}
	if err := b.Append("pb"); err != nil {
		t.Fatal(err)
	}
	pa, err := a.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(pa); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("divergence: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if !strings.HasSuffix(a.Fingerprint(), "|ok") {
		t.Fatalf("integrity broken: %q", a.Fingerprint())
	}
}

func TestBugTieBreakerArrivalDependent(t *testing.T) {
	// Two entries with equal clock AND equal identity: with the defect the
	// read order depends on internal arrival; without it the hash breaks
	// the tie canonically.
	build := func(flags Flags, reverse bool) string {
		writer1 := New("W", flags)
		writer1.Append("p1")
		writer2 := New("W", flags) // same identity, independent log: clock=1
		writer2.Append("p2")
		reader := New("R", flags)
		p1, _ := writer1.SyncPayload()
		p2, _ := writer2.SyncPayload()
		if reverse {
			p1, p2 = p2, p1
		}
		if err := reader.ApplySync(p1); err != nil {
			t.Fatal(err)
		}
		if err := reader.ApplySync(p2); err != nil {
			t.Fatal(err)
		}
		return strings.Join(reader.Read(), ",")
	}
	good1 := build(Flags{}, false)
	good2 := build(Flags{}, true)
	if good1 != good2 {
		t.Fatalf("total order must be arrival-independent: %q vs %q", good1, good2)
	}
	// The buggy tie-breaker falls back to map iteration order, which Go
	// randomizes: across several attempts the orders must disagree at
	// least once.
	diverged := false
	for i := 0; i < 32 && !diverged; i++ {
		if build(Flags{BugTieBreaker: true}, false) != build(Flags{BugTieBreaker: true}, true) {
			diverged = true
		}
	}
	if !diverged {
		t.Log("warning: buggy tie-breaker did not diverge in 32 attempts (map order coincided)")
	}
}

func TestBugFutureClockHaltsProgress(t *testing.T) {
	attacker := New("E", Flags{BugFutureClock: true})
	attacker.AppendWithClock("future", 1<<40)
	payload, err := attacker.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}

	// Unguarded victim accepts the entry and its clock jumps to the far
	// future (issue #512).
	victim := New("V", Flags{BugFutureClock: true})
	if err := victim.ApplySync(payload); err != nil {
		t.Fatal(err)
	}
	out, err := victim.Apply(replica.Op{Name: "clockBelow", Args: []string{"1000000"}})
	if err != nil {
		t.Fatal(err)
	}
	if out == "ok" {
		t.Fatal("victim clock must have jumped past the limit")
	}

	// Guarded store rejects the join (surfaced as a failed op).
	guarded := New("G", Flags{})
	if err := guarded.ApplySync(payload); err != replica.ErrFailedOp {
		t.Fatalf("guarded join = %v, want failed op", err)
	}
}

func TestBugStaleHeadCacheRejectsAppend(t *testing.T) {
	a := New("A", Flags{BugStaleHeadCache: true})
	b := New("B", Flags{})
	if err := a.Append("a1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Append("b1"); err != nil {
		t.Fatal(err)
	}
	pb, err := b.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	// The join changed the live heads but not the cache: the next append
	// fails although write access is granted (issue #1153).
	if err := a.Append("a2"); err != replica.ErrFailedOp {
		t.Fatalf("append after join = %v, want failed op", err)
	}
	// Without the defect the same sequence succeeds.
	c := New("C", Flags{})
	if err := c.Append("c1"); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplySync(pb); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("c2"); err != nil {
		t.Fatalf("correct store must append after join: %v", err)
	}
}

func TestBugMutateAfterHashCorruptsSync(t *testing.T) {
	a := New("A", Flags{BugMutateAfterHash: true})
	b := New("B", Flags{})
	if err := a.Append("fresh"); err != nil {
		t.Fatal(err)
	}
	// Sync BEFORE the seal: the unsealed entry is annotated after hashing
	// and the receiver rejects it (issue #583).
	payload, err := a.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(payload); err != replica.ErrFailedOp {
		t.Fatalf("sync of mutated entry = %v, want failed op", err)
	}
	// Seal first, then sync: no corruption.
	a2 := New("A2", Flags{BugMutateAfterHash: true})
	if err := a2.Append("fresh"); err != nil {
		t.Fatal(err)
	}
	a2.Seal()
	payload2, err := a2.SyncPayload()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplySync(payload2); err != nil {
		t.Fatalf("sealed sync must succeed: %v", err)
	}
}

func TestBugLockLeak(t *testing.T) {
	db := New("A", Flags{BugLockLeak: true})
	if err := db.Append("w"); err != nil {
		t.Fatal(err)
	}
	// Close interleaves before the flush: the lock leaks.
	db.Close()
	db.Flush() // too late — no-op after close under the defect
	if err := db.Reopen(); err == nil {
		t.Fatal("reopen after leaked lock must fail (issue #557)")
	}
	// Correct order: flush then close.
	good := New("B", Flags{BugLockLeak: true})
	if err := good.Append("w"); err != nil {
		t.Fatal(err)
	}
	good.Flush()
	good.Close()
	if err := good.Reopen(); err != nil {
		t.Fatalf("clean reopen failed: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	db := New("A", Flags{})
	if err := db.Append("p1"); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Append("p2"); err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := db.Read(); len(got) != 1 || got[0] != "p1" {
		t.Fatalf("restore lost state: %v", got)
	}
}

func TestClosedAppendIsFailedOp(t *testing.T) {
	db := New("A", Flags{})
	db.Close()
	if err := db.Append("x"); err != replica.ErrFailedOp {
		t.Fatalf("append on closed repo = %v, want failed op", err)
	}
}
